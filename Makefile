# Convenience targets; scripts/check.sh is the canonical tier-1 gate.

GO ?= go

.PHONY: build vet test race bench check bench-report

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# Regenerate BENCH_PR1.json (timings, allocations, headline metrics,
# sequential-vs-parallel sweep wall clock).
bench-report:
	$(GO) run ./cmd/bench -o BENCH_PR1.json

check:
	sh scripts/check.sh
