# Convenience targets; scripts/check.sh is the canonical tier-1 gate
# (also run by .github/workflows/ci.yml).

GO ?= go

.PHONY: build vet lint test race bench check bench-report serve golden chaos-smoke crashtest campaignsmoke clusterkill diffuzzsmoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Determinism-contract static analysis (DESIGN.md §10): map-iteration
# order in encoded output, wall-clock reads in sim packages,
# ctx.Err()-after-cancel ordering, metric-name drift.
lint:
	$(GO) run ./cmd/reprolint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# Regenerate BENCH_PR7.json (timings, allocations, headline metrics,
# sequential-vs-parallel sweep wall clock, warm-vs-cold campaign
# cells/sec, serve-daemon cold/hit/429 split, warm-restart recovery
# latency).
bench-report:
	$(GO) run ./cmd/bench -o BENCH_PR7.json

# Kill–restart recovery harness: SIGKILL a real daemon mid-campaign,
# restart it, assert no acked job lost and no divergent bytes.
crashtest:
	sh scripts/crashtest.sh

# Campaign orchestrator smoke: a 1000-cell generator campaign over
# HTTP (streamed, resubmitted, SIGKILL-resumed) must match the local
# in-process fold byte for byte.
campaignsmoke:
	sh scripts/campaignsmoke.sh

# Differential fuzzing smoke: 500 generated scenarios where the DES
# never beats the analytic bound, a planted bound-tightening bug is
# caught and minimized, and the served diffuzz campaign matches the
# local fold byte for byte.
diffuzzsmoke:
	sh scripts/diffuzzsmoke.sh

# Cluster kill oracle: a 3-node consistent-hash ring loses a SIGKILLed
# member mid-campaign without losing an acked job or a byte of the
# final aggregate; a wiped replacement recovers warm via peer fetch.
clusterkill:
	sh scripts/clusterkill.sh

# Run the simulation daemon on :8080 (see README "Server mode").
serve:
	$(GO) run ./cmd/served

# Rewrite the golden files after intentional serialization changes.
golden:
	$(GO) test ./internal/report ./internal/viz -update

# Short deterministic chaos campaign: every fault model under the
# monitor must pass the temporal-independence oracle, and the ablated
# babbling-idiot campaign must fail it (proves the oracle still bites).
chaos-smoke:
	$(GO) run ./cmd/chaos -smoke -events 80

check:
	sh scripts/check.sh
