package repro

// Allocation-budget regression tests for the zero-alloc engine core
// (DESIGN.md §11). These are tier-1: scripts/check.sh runs them in a
// dedicated non-race pass (the race detector's instrumentation
// allocates, so the budgets only hold without it). The budgets are
// deliberately loose multiples of the measured steady state — they
// exist to catch an accidental return to O(events) allocation, not to
// pin exact counts.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/engine"
	"repro/internal/hv"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/workload"
)

// TestAllocBudgetDESStep pins the DES hot path: once the event freelist
// and queue backing array are warm, scheduling and firing an event
// allocates nothing.
func TestAllocBudgetDESStep(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unstable under -race; scripts/check.sh runs this without it")
	}
	sim := des.New()
	nop := func() {}
	// Warm the freelist and the queue's backing array.
	for i := 0; i < 64; i++ {
		sim.After(simtime.Microsecond, "warm", nop)
	}
	sim.Drain()
	allocs := testing.AllocsPerRun(200, func() {
		sim.After(simtime.Microsecond, "tick", nop)
		sim.Drain()
	})
	if allocs != 0 {
		t.Fatalf("DES schedule+fire allocates %.1f per event, want 0", allocs)
	}
}

// TestAllocBudgetFig6Cell pins the macro path: one Fig. 6a-shaped cell
// (2000 IRQs through the full pipeline) on a warm arena must cost O(1)
// allocations — scenario assembly, one fresh monitor and the copied-out
// result — not O(events). Before the arena core this cell cost ~8700
// allocations (BENCH_PR4.json: 26191 across three loads).
func TestAllocBudgetFig6Cell(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unstable under -race; scripts/check.sh runs this without it")
	}
	lambda := simtime.Micros(1344)
	arrivals := workload.Timestamps(workload.Exponential(rng.New(1), lambda, 2000))
	cell := func() core.Scenario {
		return core.Scenario{
			Partitions: []core.PartitionSpec{
				{Name: "app1", Slot: simtime.Micros(6000)},
				{Name: "app2", Slot: simtime.Micros(6000)},
				{Name: "hk", Slot: simtime.Micros(2000)},
			},
			Mode:   hv.Monitored,
			Policy: hv.ResumeAcrossSlots,
			IRQs: []core.IRQSpec{{
				Name: "t0", Partition: 0,
				CTH: simtime.Micros(6), CBH: simtime.Micros(30),
				Arrivals: arrivals, DMin: lambda,
			}},
		}
	}
	arena := engine.NewArena()
	if _, err := arena.Run(cell()); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := arena.Run(cell()); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 120 {
		t.Fatalf("warm Fig6a cell allocates %.0f per run, want O(1) (≤ 120)", allocs)
	}
}
