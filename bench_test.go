package repro

// One benchmark per table/figure of the paper's evaluation (§6 and
// Appendix A), plus micro-benchmarks of the hot paths (simulation step,
// monitor check, busy-window analysis) and ablation benches for the
// design choices called out in DESIGN.md §5. The figure benches report
// the reproduced headline metrics via b.ReportMetric so `go test
// -bench=.` regenerates the paper's numbers alongside the timing.

import (
	"runtime"
	"testing"

	"repro/internal/analysis"
	"repro/internal/arm"
	"repro/internal/core"
	"repro/internal/curves"
	"repro/internal/des"
	"repro/internal/experiments"
	"repro/internal/guestos"
	"repro/internal/hv"
	"repro/internal/monitor"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/tracerec"
	"repro/internal/workload"
)

func benchFig6Cfg() experiments.Fig6Config {
	cfg := experiments.DefaultFig6()
	cfg.EventsPerLoad = 2000 // statistics-preserving reduction
	return cfg
}

// BenchmarkFig6a regenerates Figure 6a: latency histogram with
// monitoring disabled (original top handler).
func BenchmarkFig6a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(experiments.Fig6a, benchFig6Cfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Summary.Mean.MicrosF(), "mean_µs")
		b.ReportMetric(r.Summary.Max.MicrosF(), "max_µs")
		b.ReportMetric(100*r.Summary.Share(tracerec.Delayed), "delayed_%")
	}
}

// BenchmarkFig6b regenerates Figure 6b: monitoring enabled, arrivals may
// violate dmin.
func BenchmarkFig6b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(experiments.Fig6b, benchFig6Cfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Summary.Mean.MicrosF(), "mean_µs")
		b.ReportMetric(100*r.Summary.Share(tracerec.Interposed), "interposed_%")
		b.ReportMetric(100*r.Summary.Share(tracerec.Delayed), "delayed_%")
	}
}

// BenchmarkFig6c regenerates Figure 6c: monitoring enabled with a
// dmin-conforming arrival stream.
func BenchmarkFig6c(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(experiments.Fig6c, benchFig6Cfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Summary.Mean.MicrosF(), "mean_µs")
		b.ReportMetric(100*r.Summary.Share(tracerec.Interposed), "interposed_%")
	}
}

// BenchmarkFig7 regenerates Figure 7: the ECU-trace testcase with the
// self-learning δ⁻[5] monitor and four load bounds (Appendix A).
func BenchmarkFig7(b *testing.B) {
	cfg := experiments.DefaultFig7()
	cfg.ECU.Events = 4000
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Graphs[0].RunAvg, "run_avg_a_µs")
		b.ReportMetric(r.Graphs[1].RunAvg, "run_avg_b_µs")
		b.ReportMetric(r.Graphs[2].RunAvg, "run_avg_c_µs")
		b.ReportMetric(r.Graphs[3].RunAvg, "run_avg_d_µs")
	}
}

// BenchmarkOverheadTable regenerates the §6.2 memory/runtime overhead
// table, including the context-switch increase of scenario 2.
func BenchmarkOverheadTable(b *testing.B) {
	cfg := benchFig6Cfg()
	cfg.EventsPerLoad = 1000
	for i := 0; i < b.N; i++ {
		r, err := experiments.Overhead(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.CumIncreasePct, "ctx_increase_%")
		b.ReportMetric(r.Costs.CtxSwitch.MicrosF(), "C_ctx_µs")
	}
}

// BenchmarkAnalysisBounds evaluates the worst-case latency bounds of
// eqs. (11)–(16) — the analytic result the evaluation validates.
func BenchmarkAnalysisBounds(b *testing.B) {
	irq := analysis.IRQ{
		Name: "timer0",
		CTH:  simtime.Micros(6),
		CBH:  simtime.Micros(30),
		Model: curves.PJD{
			Period: simtime.Micros(1344),
			Jitter: simtime.Micros(200),
			DMin:   simtime.Micros(1344),
		},
	}
	tdma := analysis.TDMA{Cycle: simtime.Micros(14000), Slot: simtime.Micros(6000)}
	costs := arm.DefaultCosts()
	var cmp analysis.Comparison
	var err error
	for i := 0; i < b.N; i++ {
		cmp, err = analysis.Compare(irq, tdma, costs, nil, analysis.DefaultHorizon)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cmp.Classic.WCRT.MicrosF(), "classic_µs")
	b.ReportMetric(cmp.Interposed.WCRT.MicrosF(), "interposed_µs")
}

// BenchmarkAblationSlotEndPolicy compares the three slot-end collision
// policies on the scenario-3 workload (DESIGN.md §5): mean latency and
// the delayed share each policy leaves behind.
func BenchmarkAblationSlotEndPolicy(b *testing.B) {
	for _, pol := range []hv.SlotEndPolicy{hv.DenyNearSlotEnd, hv.SplitOnSlotEnd, hv.ResumeAcrossSlots} {
		b.Run(pol.String(), func(b *testing.B) {
			cfg := benchFig6Cfg()
			cfg.Policy = pol
			for i := 0; i < b.N; i++ {
				r, err := experiments.Fig6(experiments.Fig6c, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.Summary.Mean.MicrosF(), "mean_µs")
				b.ReportMetric(100*r.Summary.Share(tracerec.Delayed), "delayed_%")
			}
		})
	}
}

// BenchmarkAblationMonitorLength sweeps the δ⁻ length l on the ECU trace:
// each additional entry adds a burst constraint, trading admitted grants
// for a tighter multi-event interference guarantee (see EXPERIMENTS.md).
func BenchmarkAblationMonitorLength(b *testing.B) {
	trace, err := workload.ECUTrace(workload.ECUConfig{Events: 3000, Seed: 17})
	if err != nil {
		b.Fatal(err)
	}
	for _, l := range []int{1, 2, 5, 10} {
		b.Run(string(rune('0'+l/10))+string(rune('0'+l%10)), func(b *testing.B) {
			learn := len(trace) / 10
			recorded, err := curves.DeltaFromTrace(trace[:learn], l)
			if err != nil {
				b.Fatal(err)
			}
			bound := recorded.ScaleDistances(2)
			for i := 0; i < b.N; i++ {
				sc := core.Scenario{
					Partitions: []core.PartitionSpec{
						{Name: "app1", Slot: simtime.Micros(6000)},
						{Name: "app2", Slot: simtime.Micros(6000)},
						{Name: "hk", Slot: simtime.Micros(2000)},
					},
					Mode:   hv.Monitored,
					Policy: hv.ResumeAcrossSlots,
					IRQs: []core.IRQSpec{{
						Name: "ecu", Partition: 0,
						CTH: simtime.Micros(6), CBH: simtime.Micros(30),
						Arrivals: trace,
						Learn:    &core.LearnSpec{L: l, Events: learn, Bound: bound},
					}},
				}
				res, err := core.Run(sc)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Summary.Mean.MicrosF(), "mean_µs")
				b.ReportMetric(float64(res.Stats.InterposedGrants), "grants")
			}
		})
	}
}

// BenchmarkFig6aParallel is BenchmarkFig6a with the per-load runs fanned
// out over the worker pool (internal/runner). The headline metrics must
// match BenchmarkFig6a exactly — parallelism is not allowed to change
// results, only wall clock.
func BenchmarkFig6aParallel(b *testing.B) {
	cfg := benchFig6Cfg()
	cfg.Workers = runtime.GOMAXPROCS(0)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(experiments.Fig6a, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Summary.Mean.MicrosF(), "mean_µs")
		b.ReportMetric(r.Summary.Max.MicrosF(), "max_µs")
		b.ReportMetric(100*r.Summary.Share(tracerec.Delayed), "delayed_%")
	}
}

// BenchmarkSimulationThroughput measures raw simulator speed: simulated
// IRQs per wall-clock second through the full monitored pipeline.
func BenchmarkSimulationThroughput(b *testing.B) {
	lambda := simtime.Micros(1344)
	arrivals := workload.Timestamps(workload.Exponential(rng.New(1), lambda, 2000))
	sc := core.Scenario{
		Partitions: []core.PartitionSpec{
			{Name: "app1", Slot: simtime.Micros(6000)},
			{Name: "app2", Slot: simtime.Micros(6000)},
			{Name: "hk", Slot: simtime.Micros(2000)},
		},
		Mode:   hv.Monitored,
		Policy: hv.ResumeAcrossSlots,
		IRQs: []core.IRQSpec{{
			Name: "t0", Partition: 0,
			CTH: simtime.Micros(6), CBH: simtime.Micros(30),
			Arrivals: arrivals, DMin: lambda,
		}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(sc); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(arrivals)*b.N)/b.Elapsed().Seconds(), "IRQs/s")
}

// BenchmarkMonitorCheck measures the δ⁻ monitor's admission check — the
// operation the paper bounds at ~10–100 cycles on the target.
func BenchmarkMonitorCheck(b *testing.B) {
	m := monitor.NewDMin(simtime.Micros(100))
	t := simtime.Time(0)
	for i := 0; i < b.N; i++ {
		t = t.Add(simtime.Micros(150))
		if m.Check(t) == monitor.Conforming {
			m.Commit(t)
		}
	}
}

// BenchmarkMonitorCheckL5 measures the l = 5 variant used in Appendix A.
func BenchmarkMonitorCheckL5(b *testing.B) {
	d, err := curves.NewDelta([]simtime.Duration{
		simtime.Micros(10), simtime.Micros(50), simtime.Micros(120),
		simtime.Micros(250), simtime.Micros(500),
	})
	if err != nil {
		b.Fatal(err)
	}
	m := monitor.New(d)
	t := simtime.Time(0)
	for i := 0; i < b.N; i++ {
		t = t.Add(simtime.Micros(130))
		if m.Check(t) == monitor.Conforming {
			m.Commit(t)
		}
	}
}

// BenchmarkBusyWindow measures one busy-window fixed-point iteration.
func BenchmarkBusyWindow(b *testing.B) {
	tdma := analysis.TDMA{Cycle: simtime.Micros(14000), Slot: simtime.Micros(6000)}
	model := curves.PJD{Period: simtime.Micros(1344), Jitter: simtime.Micros(200), DMin: simtime.Micros(1344)}
	inf := func(dt simtime.Duration) simtime.Duration {
		return tdma.Interference(dt) + simtime.Duration(model.EtaPlus(dt))*simtime.Micros(6)
	}
	for i := 0; i < b.N; i++ {
		if _, err := analysis.BusyWindow(3, simtime.Micros(30), inf, analysis.DefaultHorizon); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkECUTrace measures synthetic trace generation.
func BenchmarkECUTrace(b *testing.B) {
	cfg := workload.ECUConfig{Events: 11000, Seed: 1}
	for i := 0; i < b.N; i++ {
		if _, err := workload.ECUTrace(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDESEventThroughput measures raw kernel speed: self-
// rescheduling events per second.
func BenchmarkDESEventThroughput(b *testing.B) {
	sim := des.New()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			sim.After(simtime.Microsecond, "tick", tick)
		}
	}
	sim.After(simtime.Microsecond, "tick", tick)
	b.ResetTimer()
	sim.Drain()
}

// BenchmarkDESCancel measures lazy cancellation: schedule two events,
// cancel one, fire the other. The cancel itself is O(1); the canceled
// entry is reclaimed on pop (mark-and-skip).
func BenchmarkDESCancel(b *testing.B) {
	sim := des.New()
	nop := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		keep := sim.After(simtime.Microsecond, "keep", nop)
		drop := sim.After(2*simtime.Microsecond, "drop", nop)
		sim.Cancel(drop)
		_ = keep
		sim.Drain()
	}
}

// BenchmarkGuestOSAdvance measures guest scheduling over supply windows.
func BenchmarkGuestOSAdvance(b *testing.B) {
	g := guestos.New("bench")
	mustAdd := func(t guestos.Task) {
		if _, err := g.AddTask(t); err != nil {
			b.Fatal(err)
		}
	}
	mustAdd(guestos.Task{Name: "a", Period: 5 * simtime.Millisecond, WCET: simtime.Millisecond})
	mustAdd(guestos.Task{Name: "b", Period: 11 * simtime.Millisecond, WCET: 2 * simtime.Millisecond})
	mustAdd(guestos.Task{Name: "bg"})
	b.ResetTimer()
	var t simtime.Time
	for i := 0; i < b.N; i++ {
		g.Advance(t, t.Add(6*simtime.Millisecond))
		t = t.Add(14 * simtime.Millisecond)
	}
}

// BenchmarkMonitorLearning measures Algorithm 1's per-IRQ cost at l = 5.
func BenchmarkMonitorLearning(b *testing.B) {
	m, err := monitor.NewLearning(5)
	if err != nil {
		b.Fatal(err)
	}
	t := simtime.Time(0)
	for i := 0; i < b.N; i++ {
		t = t.Add(simtime.Micros(130))
		m.Learn(t)
	}
}

// BenchmarkSupplyBound measures the multi-window sbf evaluation.
func BenchmarkSupplyBound(b *testing.B) {
	sched, err := analysis.NewSchedule(simtime.Micros(20000), []analysis.Window{
		{Start: simtime.Micros(1000), End: simtime.Micros(4000)},
		{Start: simtime.Micros(8000), End: simtime.Micros(9000)},
		{Start: simtime.Micros(15000), End: simtime.Micros(19000)},
	}, simtime.Micros(50))
	if err != nil {
		b.Fatal(err)
	}
	var sink simtime.Duration
	for i := 0; i < b.N; i++ {
		sink += sched.Supply(simtime.Duration(i%100000) * simtime.Microsecond)
	}
	_ = sink
}
