// Command ablation runs the design-choice studies of DESIGN.md §5 and
// prints comparison tables:
//
//   - slot-end collision policy (deny / split / resume) on the Fig. 6c
//     workload,
//   - monitor condition length l on the synthetic ECU trace,
//   - bottom-handler WCET sweep showing how the §6.2 context-switch
//     increase depends on the unpublished C_BH.
//
// Usage:
//
//	ablation [-events N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/curves"
	"repro/internal/experiments"
	"repro/internal/hv"
	"repro/internal/simtime"
	"repro/internal/tracerec"
	"repro/internal/workload"
)

func main() {
	events := flag.Int("events", 2000, "IRQs per configuration")
	flag.Parse()

	policyStudy(*events)
	fmt.Println()
	monitorLengthStudy(*events)
	fmt.Println()
	cbhStudy(*events)
}

func policyStudy(events int) {
	fmt.Println("== Slot-end collision policy (Fig. 6c workload) ==")
	fmt.Printf("%-22s %10s %10s %12s %8s %8s\n", "policy", "mean µs", "max µs", "delayed %", "split", "resumed")
	for _, pol := range []hv.SlotEndPolicy{hv.DenyNearSlotEnd, hv.SplitOnSlotEnd, hv.ResumeAcrossSlots} {
		cfg := experiments.DefaultFig6()
		cfg.EventsPerLoad = events
		cfg.Policy = pol
		r, err := experiments.Fig6(experiments.Fig6c, cfg)
		if err != nil {
			fatal(err)
		}
		var split, resumed uint64
		for _, pl := range r.PerLoad {
			split += pl.Result.Stats.SplitGrants
			resumed += pl.Result.Stats.ResumedGrants
		}
		fmt.Printf("%-22s %10.1f %10.1f %12.2f %8d %8d\n",
			pol, r.Summary.Mean.MicrosF(), r.Summary.Max.MicrosF(),
			100*r.Summary.Share(tracerec.Delayed), split, resumed)
	}
}

func monitorLengthStudy(events int) {
	fmt.Println("== Monitor condition length l (ECU trace, bound = recorded × 2) ==")
	trace, err := workload.ECUTrace(workload.ECUConfig{Events: events, Seed: 17})
	if err != nil {
		fatal(err)
	}
	learn := len(trace) / 10
	fmt.Printf("%-6s %10s %12s %12s\n", "l", "mean µs", "grants", "violations")
	for _, l := range []int{1, 2, 3, 5, 8} {
		recorded, err := curves.DeltaFromTrace(trace[:learn], l)
		if err != nil {
			fatal(err)
		}
		bound := recorded.ScaleDistances(2)
		sc := core.Scenario{
			Partitions: []core.PartitionSpec{
				{Name: "app1", Slot: simtime.Micros(6000)},
				{Name: "app2", Slot: simtime.Micros(6000)},
				{Name: "hk", Slot: simtime.Micros(2000)},
			},
			Mode:   hv.Monitored,
			Policy: hv.ResumeAcrossSlots,
			IRQs: []core.IRQSpec{{
				Name: "ecu", Partition: 0,
				CTH: simtime.Micros(6), CBH: simtime.Micros(30),
				Arrivals: trace,
				Learn:    &core.LearnSpec{L: l, Events: learn, Bound: bound},
			}},
		}
		res, err := core.Run(sc)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-6d %10.1f %12d %12d\n",
			l, res.Summary.Mean.MicrosF(), res.Stats.InterposedGrants, res.Stats.DeniedViolation)
	}
}

func cbhStudy(events int) {
	fmt.Println("== C_BH sweep: context-switch increase of scenario 2 (§6.2) ==")
	fmt.Printf("%-10s %14s %14s %12s\n", "C_BH µs", "λ=dmin µs", "ctx increase", "grants")
	for _, cbhUs := range []int64{30, 100, 200, 400, 800} {
		cfg := experiments.DefaultFig6()
		cfg.EventsPerLoad = events / 2
		cfg.CBH = simtime.Micros(cbhUs)
		cfg.Loads = []float64{0.01}
		r, err := experiments.Overhead(cfg)
		if err != nil {
			fatal(err)
		}
		ol := r.PerLoad[0]
		fmt.Printf("%-10d %14.1f %+13.1f%% %12d\n",
			cbhUs, ol.Lambda.MicrosF(), ol.IncreasePct, ol.Grants)
	}
	fmt.Println("(the paper's ~10% matches C_BH in the several-hundred-µs range)")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ablation: %v\n", err)
	os.Exit(1)
}
