// Command ablation runs the design-choice studies of DESIGN.md §5 and
// prints comparison tables:
//
//   - slot-end collision policy (deny / split / resume) on the Fig. 6c
//     workload,
//   - monitor condition length l on the synthetic ECU trace,
//   - bottom-handler WCET sweep showing how the §6.2 context-switch
//     increase depends on the unpublished C_BH.
//
// The cells of each study are independent simulations; they fan out
// across the worker pool (internal/runner) and print in grid order, so
// the output is identical for any -workers value.
//
// Usage:
//
//	ablation [-events N] [-workers N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/curves"
	"repro/internal/experiments"
	"repro/internal/hv"
	"repro/internal/runner"
	"repro/internal/simtime"
	"repro/internal/tracerec"
	"repro/internal/workload"
)

var workers = flag.Int("workers", runner.Default(), "worker pool size for the study cells (1 = sequential; output is identical)")

func main() {
	events := flag.Int("events", 2000, "IRQs per configuration")
	flag.Parse()

	policyStudy(*events)
	fmt.Println()
	monitorLengthStudy(*events)
	fmt.Println()
	cbhStudy(*events)
}

func policyStudy(events int) {
	fmt.Println("== Slot-end collision policy (Fig. 6c workload) ==")
	fmt.Printf("%-22s %10s %10s %12s %8s %8s\n", "policy", "mean µs", "max µs", "delayed %", "split", "resumed")
	policies := []hv.SlotEndPolicy{hv.DenyNearSlotEnd, hv.SplitOnSlotEnd, hv.ResumeAcrossSlots}
	rows, err := runner.Map(*workers, len(policies), func(i int) (string, error) {
		cfg := experiments.DefaultFig6()
		cfg.EventsPerLoad = events
		cfg.Policy = policies[i]
		// The outer cell grid already saturates the pool.
		cfg.Workers = 1
		r, err := experiments.Fig6(experiments.Fig6c, cfg)
		if err != nil {
			return "", err
		}
		var split, resumed uint64
		for _, pl := range r.PerLoad {
			split += pl.Result.Stats.SplitGrants
			resumed += pl.Result.Stats.ResumedGrants
		}
		return fmt.Sprintf("%-22s %10.1f %10.1f %12.2f %8d %8d",
			policies[i], r.Summary.Mean.MicrosF(), r.Summary.Max.MicrosF(),
			100*r.Summary.Share(tracerec.Delayed), split, resumed), nil
	})
	if err != nil {
		fatal(err)
	}
	for _, row := range rows {
		fmt.Println(row)
	}
}

func monitorLengthStudy(events int) {
	fmt.Println("== Monitor condition length l (ECU trace, bound = recorded × 2) ==")
	trace, err := workload.ECUTrace(workload.ECUConfig{Events: events, Seed: 17})
	if err != nil {
		fatal(err)
	}
	learn := len(trace) / 10
	fmt.Printf("%-6s %10s %12s %12s\n", "l", "mean µs", "grants", "violations")
	lengths := []int{1, 2, 3, 5, 8}
	rows, err := runner.Map(*workers, len(lengths), func(i int) (string, error) {
		l := lengths[i]
		recorded, err := curves.DeltaFromTrace(trace[:learn], l)
		if err != nil {
			return "", err
		}
		bound := recorded.ScaleDistances(2)
		sc := core.Scenario{
			Partitions: []core.PartitionSpec{
				{Name: "app1", Slot: simtime.Micros(6000)},
				{Name: "app2", Slot: simtime.Micros(6000)},
				{Name: "hk", Slot: simtime.Micros(2000)},
			},
			Mode:   hv.Monitored,
			Policy: hv.ResumeAcrossSlots,
			IRQs: []core.IRQSpec{{
				Name: "ecu", Partition: 0,
				CTH: simtime.Micros(6), CBH: simtime.Micros(30),
				Arrivals: trace,
				Learn:    &core.LearnSpec{L: l, Events: learn, Bound: bound},
			}},
		}
		res, err := core.Run(sc)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%-6d %10.1f %12d %12d",
			l, res.Summary.Mean.MicrosF(), res.Stats.InterposedGrants, res.Stats.DeniedViolation), nil
	})
	if err != nil {
		fatal(err)
	}
	for _, row := range rows {
		fmt.Println(row)
	}
}

func cbhStudy(events int) {
	fmt.Println("== C_BH sweep: context-switch increase of scenario 2 (§6.2) ==")
	fmt.Printf("%-10s %14s %14s %12s\n", "C_BH µs", "λ=dmin µs", "ctx increase", "grants")
	cbhs := []int64{30, 100, 200, 400, 800}
	rows, err := runner.Map(*workers, len(cbhs), func(i int) (string, error) {
		cbhUs := cbhs[i]
		cfg := experiments.DefaultFig6()
		cfg.EventsPerLoad = events / 2
		cfg.CBH = simtime.Micros(cbhUs)
		cfg.Loads = []float64{0.01}
		cfg.Workers = 1
		r, err := experiments.Overhead(cfg)
		if err != nil {
			return "", err
		}
		ol := r.PerLoad[0]
		return fmt.Sprintf("%-10d %14.1f %+13.1f%% %12d",
			cbhUs, ol.Lambda.MicrosF(), ol.IncreasePct, ol.Grants), nil
	})
	if err != nil {
		fatal(err)
	}
	for _, row := range rows {
		fmt.Println(row)
	}
	fmt.Println("(the paper's ~10% matches C_BH in the several-hundred-µs range)")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ablation: %v\n", err)
	os.Exit(1)
}
