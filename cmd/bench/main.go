// Command bench regenerates the performance evidence for the zero-alloc
// engine core, the parallel experiment engine, the DES hot path and the
// serve daemon: min-of-N ns/op and allocs/op of the macro benchmarks,
// the reproduced headline metrics (proof the optimisation did not
// change a single result), the sequential-vs-parallel wall clock of the
// sweep grid (reported honestly: on a single-CPU host the "parallel"
// run falls back to the inline sequential path and says so), the
// warm-prefix campaign cost (snapshot fork vs cold replay per cell),
// the campaign orchestrator's end-to-end cells/sec (warm Runner vs cold
// reference, byte-verified), and the daemon's cold vs cache-hit request
// cost plus its admission split under queue saturation. The
// measurements are written as JSON so they can be committed next to the
// code that produced them and diffed against earlier PRs' evidence by
// scripts/benchdiff.sh.
//
// Usage:
//
//	bench [-o BENCH_PR7.json] [-events N] [-workers N] [-samples N] [-quick]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/hv"
	"repro/internal/rng"
	"repro/internal/runner"
	"repro/internal/simtime"
	"repro/internal/sweep"
	"repro/internal/tracerec"
	"repro/internal/workload"
)

// benchEntry is one benchmark's timing plus the domain metrics it
// reproduces (the b.ReportMetric values of the equivalent bench_test.go
// benchmark).
type benchEntry struct {
	NsPerOp     int64              `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type sweepTiming struct {
	Events      int     `json:"events"`
	Workers     int     `json:"workers"`
	SequentialS float64 `json:"sequential_s"`
	ParallelS   float64 `json:"parallel_s"`
	Speedup     float64 `json:"speedup"`
	// SequentialFallback is true when the "parallel" run resolved to
	// one worker and therefore took the runner's inline sequential path
	// — no pool, no goroutines. On such hosts the speedup compares the
	// sequential loop against itself; reporting it as parallelism would
	// be dishonest (the measured <1 "speedup" of earlier PRs was pool
	// overhead on a single CPU, since removed by the inline path).
	SequentialFallback bool `json:"sequential_fallback"`
}

// campaignTiming is the warm-prefix fork measurement: the per-cell cost
// of a sweep campaign whose cells share a warm prefix, forked from a
// DES snapshot (engine.ForkCampaign) versus replayed cold from cycle
// zero. Cells are verified byte-identical between the two paths before
// timing is reported.
type campaignTiming struct {
	Cells         int     `json:"cells"`
	PrefixEvents  int     `json:"prefix_events"`
	SuffixEvents  int     `json:"suffix_events"`
	ColdPerCellMs float64 `json:"cold_per_cell_ms"`
	WarmPerCellMs float64 `json:"warm_per_cell_ms"`
	Speedup       float64 `json:"speedup"`
}

type report struct {
	GoVersion  string                `json:"go_version"`
	NumCPU     int                   `json:"num_cpu"`
	GOMAXPROCS int                   `json:"gomaxprocs"`
	Samples    int                   `json:"samples"`
	Benchmarks map[string]benchEntry `json:"benchmarks"`
	Sweep      sweepTiming           `json:"sweep_wallclock"`
	Campaign   campaignTiming        `json:"warm_prefix_campaign"`
	Orch       orchestratorTiming    `json:"campaign_orchestrator"`
	Server     serverTiming          `json:"server"`
	Notes      string                `json:"notes"`
}

func main() {
	out := flag.String("o", "BENCH_PR7.json", "output file (- for stdout)")
	events := flag.Int("events", 1500, "IRQs per sweep point for the wall-clock comparison")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker count for the parallel wall-clock run")
	samples := flag.Int("samples", 3, "per-benchmark repetitions; min-of-N is reported")
	quick := flag.Bool("quick", false, "reduced sizes for CI regression gating (scripts/benchdiff.sh)")
	flag.Parse()
	if *quick {
		*events = 400
		if *samples > 2 {
			*samples = 2
		}
	}

	r := report{
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Samples:    *samples,
		Benchmarks: map[string]benchEntry{},
		Notes: "headline metrics must match the seed values byte for byte; " +
			"timings are min-of-N; sequential_fallback marks a 1-worker " +
			"host where the parallel run is the inline sequential path.",
	}

	fmt.Fprintln(os.Stderr, "bench: Fig6a ...")
	r.Benchmarks["Fig6a"] = runN(*samples, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := experiments.Fig6(experiments.Fig6a, benchFig6Cfg())
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.Summary.Mean.MicrosF(), "mean_µs")
			b.ReportMetric(res.Summary.Max.MicrosF(), "max_µs")
			b.ReportMetric(100*res.Summary.Share(tracerec.Delayed), "delayed_%")
		}
	})
	fmt.Fprintln(os.Stderr, "bench: SimulationThroughput ...")
	r.Benchmarks["SimulationThroughput"] = runN(*samples, benchSimulationThroughput)
	fmt.Fprintln(os.Stderr, "bench: ArenaThroughput ...")
	r.Benchmarks["ArenaThroughput"] = runN(*samples, benchArenaThroughput)
	fmt.Fprintln(os.Stderr, "bench: DESEventThroughput ...")
	r.Benchmarks["DESEventThroughput"] = runN(*samples, benchDESEventThroughput)

	fmt.Fprintln(os.Stderr, "bench: sweep wall clock ...")
	r.Sweep = sweepWallClock(*events, *workers)
	fmt.Fprintln(os.Stderr, "bench: warm-prefix campaign ...")
	r.Campaign = campaignBench(*samples)
	fmt.Fprintln(os.Stderr, "bench: campaign orchestrator ...")
	r.Orch = orchestratorBench(*samples, *quick)
	fmt.Fprintln(os.Stderr, "bench: serve daemon ...")
	r.Server = serverBench(*events)

	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %s\n", *out)
}

// runN executes fn under the testing harness n times and reports the
// minimum of each measurement — the standard defence against scheduler
// noise when benchmarking on shared machines (the minimum is the run
// with the least interference; the domain metrics are deterministic and
// identical across samples).
func runN(n int, fn func(b *testing.B)) benchEntry {
	var e benchEntry
	for s := 0; s < n; s++ {
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			fn(b)
		})
		if s == 0 {
			e = benchEntry{
				NsPerOp:     res.NsPerOp(),
				AllocsPerOp: res.AllocsPerOp(),
				BytesPerOp:  res.AllocedBytesPerOp(),
			}
			if len(res.Extra) > 0 {
				e.Metrics = map[string]float64{}
				for k, v := range res.Extra {
					e.Metrics[k] = v
				}
			}
			continue
		}
		e.NsPerOp = min(e.NsPerOp, res.NsPerOp())
		e.AllocsPerOp = min(e.AllocsPerOp, res.AllocsPerOp())
		e.BytesPerOp = min(e.BytesPerOp, res.AllocedBytesPerOp())
	}
	return e
}

func benchFig6Cfg() experiments.Fig6Config {
	cfg := experiments.DefaultFig6()
	cfg.EventsPerLoad = 2000
	return cfg
}

func benchSimulationThroughput(b *testing.B) {
	lambda := simtime.Micros(1344)
	arrivals := workload.Timestamps(workload.Exponential(rng.New(1), lambda, 2000))
	sc := core.Scenario{
		Partitions: []core.PartitionSpec{
			{Name: "app1", Slot: simtime.Micros(6000)},
			{Name: "app2", Slot: simtime.Micros(6000)},
			{Name: "hk", Slot: simtime.Micros(2000)},
		},
		Mode:   hv.Monitored,
		Policy: hv.ResumeAcrossSlots,
		IRQs: []core.IRQSpec{{
			Name: "t0", Partition: 0,
			CTH: simtime.Micros(6), CBH: simtime.Micros(30),
			Arrivals: arrivals, DMin: lambda,
		}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// benchArenaThroughput is benchSimulationThroughput on the zero-alloc
// arena path: the same monitored pipeline with the per-worker arena
// reused across iterations, so steady-state allocs/op measure the
// engine core, not system construction.
func benchArenaThroughput(b *testing.B) {
	lambda := simtime.Micros(1344)
	arrivals := workload.Timestamps(workload.Exponential(rng.New(1), lambda, 2000))
	sc := core.Scenario{
		Partitions: []core.PartitionSpec{
			{Name: "app1", Slot: simtime.Micros(6000)},
			{Name: "app2", Slot: simtime.Micros(6000)},
			{Name: "hk", Slot: simtime.Micros(2000)},
		},
		Mode:   hv.Monitored,
		Policy: hv.ResumeAcrossSlots,
		IRQs: []core.IRQSpec{{
			Name: "t0", Partition: 0,
			CTH: simtime.Micros(6), CBH: simtime.Micros(30),
			Arrivals: arrivals, DMin: lambda,
		}},
	}
	arena := engine.NewArena()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := arena.Run(sc); err != nil {
			b.Fatal(err)
		}
	}
}

func benchDESEventThroughput(b *testing.B) {
	sim := des.New()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			sim.After(simtime.Microsecond, "tick", tick)
		}
	}
	sim.After(simtime.Microsecond, "tick", tick)
	b.ResetTimer()
	sim.Drain()
}

// sweepWallClock times the full four-sweep grid once sequentially and
// once with the requested worker count.
func sweepWallClock(events, workers int) sweepTiming {
	runAll := func(w int) float64 {
		b := sweep.DefaultBaseline()
		b.Events = events
		b.Workers = w
		start := time.Now()
		if _, err := sweep.DMin(b, []int64{200, 500, 1000, 1344, 2000, 4000, 8000, 16000}); err != nil {
			fatal(err)
		}
		if _, err := sweep.SlotLength(b, []int64{1000, 2000, 4000, 6000, 9000, 12000}); err != nil {
			fatal(err)
		}
		if _, err := sweep.Load(b, []float64{0.005, 0.01, 0.02, 0.05, 0.10, 0.20}); err != nil {
			fatal(err)
		}
		if _, err := sweep.CBH(b, []int64{10, 30, 60, 120, 240}); err != nil {
			fatal(err)
		}
		return time.Since(start).Seconds()
	}
	st := sweepTiming{Events: events, Workers: workers}
	st.SequentialS = runAll(1)
	st.ParallelS = runAll(workers)
	if st.ParallelS > 0 {
		st.Speedup = st.SequentialS / st.ParallelS
	}
	// runner.Resolve collapses workers <= 1 to the inline sequential
	// path; say so instead of presenting a self-comparison as speedup.
	st.SequentialFallback = runner.Resolve(workers) <= 1
	return st
}

// campaignBench measures the warm-prefix fork primitive: a sweep-style
// campaign whose cells share one warm prefix, run once cold (every cell
// replays prefix + suffix from cycle zero on a fresh system) and once
// warm (cells fork from a DES snapshot of the completed prefix). Cell
// results are verified identical before any timing is reported.
func campaignBench(samples int) campaignTiming {
	const (
		cells        = 16
		prefixEvents = 2000
		suffixEvents = 150
	)
	lambda := simtime.Micros(1344)
	prefix := workload.Timestamps(workload.ExponentialClamped(rng.New(2014), lambda, lambda, prefixEvents))
	mkScenario := func() core.Scenario {
		return core.Scenario{
			Partitions: []core.PartitionSpec{
				{Name: "app1", Slot: simtime.Micros(6000)},
				{Name: "app2", Slot: simtime.Micros(6000)},
				{Name: "hk", Slot: simtime.Micros(2000)},
			},
			Mode:   hv.Monitored,
			Policy: hv.ResumeAcrossSlots,
			IRQs: []core.IRQSpec{{
				Name: "t0", Partition: 0,
				CTH: simtime.Micros(6), CBH: simtime.Micros(30),
				Arrivals: prefix, DMin: lambda,
			}},
		}
	}

	// The per-cell suffixes start just past the fork point; build them
	// once from a throwaway campaign so both paths see identical times.
	probe, err := engine.NewArena().ForkCampaign(mkScenario())
	if err != nil {
		fatal(err)
	}
	suffixes := make([][][]simtime.Time, cells)
	for c := range suffixes {
		sfx := workload.Timestamps(workload.ExponentialClamped(
			rng.NewStream(2014, uint64(c)+1), lambda, lambda, suffixEvents))
		for i := range sfx {
			sfx[i] = sfx[i].Add(probe.Now().Sub(0) + simtime.Micros(500))
		}
		suffixes[c] = [][]simtime.Time{sfx}
	}

	coldCell := func(c int) *core.Result {
		sc := mkScenario()
		sys, err := core.Build(sc)
		if err != nil {
			fatal(err)
		}
		if err := sys.RunToCompletion(core.Horizon(sc)); err != nil {
			fatal(err)
		}
		sfx := suffixes[c][0]
		if err := sys.ExtendArrivals(0, sfx); err != nil {
			fatal(err)
		}
		if err := sys.RunToCompletion(sfx[len(sfx)-1].Add(1000 * sc.CycleLength())); err != nil {
			fatal(err)
		}
		return core.ReportOwned(sys)
	}

	ct := campaignTiming{Cells: cells, PrefixEvents: prefixEvents, SuffixEvents: suffixEvents}
	for s := 0; s < samples; s++ {
		start := time.Now()
		var cold []*core.Result
		for c := 0; c < cells; c++ {
			cold = append(cold, coldCell(c))
		}
		coldMs := time.Since(start).Seconds() * 1000 / cells

		start = time.Now()
		camp, err := engine.NewArena().ForkCampaign(mkScenario())
		if err != nil {
			fatal(err)
		}
		var warm []*core.Result
		for c := 0; c < cells; c++ {
			res, err := camp.Cell(suffixes[c])
			if err != nil {
				fatal(err)
			}
			warm = append(warm, res)
		}
		warmMs := time.Since(start).Seconds() * 1000 / cells

		for c := range cold {
			if !reflect.DeepEqual(cold[c].Log.Records, warm[c].Log.Records) ||
				!reflect.DeepEqual(cold[c].Stats, warm[c].Stats) {
				fatal(fmt.Errorf("campaign cell %d: warm fork diverges from cold replay", c))
			}
		}
		if s == 0 || coldMs < ct.ColdPerCellMs {
			ct.ColdPerCellMs = coldMs
		}
		if s == 0 || warmMs < ct.WarmPerCellMs {
			ct.WarmPerCellMs = warmMs
		}
	}
	if ct.WarmPerCellMs > 0 {
		ct.Speedup = ct.ColdPerCellMs / ct.WarmPerCellMs
	}
	return ct
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "bench: %v\n", err)
	os.Exit(1)
}
