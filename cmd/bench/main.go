// Command bench regenerates the performance evidence for the parallel
// experiment engine, the DES hot-path optimisation and the serve
// daemon: ns/op and allocs/op of the macro benchmarks, the reproduced
// headline metrics (proof the optimisation did not change a single
// result), the sequential-vs-parallel wall clock of the sweep grid,
// and the daemon's cold vs cache-hit request cost plus its admission
// split under queue saturation. The measurements are written as JSON
// so they can be committed next to the code that produced them.
//
// Usage:
//
//	bench [-o BENCH_PR4.json] [-events N] [-workers N]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/experiments"
	"repro/internal/hv"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/sweep"
	"repro/internal/tracerec"
	"repro/internal/workload"
)

// benchEntry is one benchmark's timing plus the domain metrics it
// reproduces (the b.ReportMetric values of the equivalent bench_test.go
// benchmark).
type benchEntry struct {
	NsPerOp     int64              `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type sweepTiming struct {
	Events      int     `json:"events"`
	Workers     int     `json:"workers"`
	SequentialS float64 `json:"sequential_s"`
	ParallelS   float64 `json:"parallel_s"`
	Speedup     float64 `json:"speedup"`
}

type report struct {
	GoVersion  string                `json:"go_version"`
	NumCPU     int                   `json:"num_cpu"`
	GOMAXPROCS int                   `json:"gomaxprocs"`
	Benchmarks map[string]benchEntry `json:"benchmarks"`
	Sweep      sweepTiming           `json:"sweep_wallclock"`
	Server     serverTiming          `json:"server"`
	Notes      string                `json:"notes"`
}

func main() {
	out := flag.String("o", "BENCH_PR4.json", "output file (- for stdout)")
	events := flag.Int("events", 1500, "IRQs per sweep point for the wall-clock comparison")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker count for the parallel wall-clock run")
	flag.Parse()

	r := report{
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: map[string]benchEntry{},
		Notes: "headline metrics must match the seed values byte for byte; " +
			"speedup is bounded by num_cpu (1 on a single-core host).",
	}

	fmt.Fprintln(os.Stderr, "bench: Fig6a ...")
	r.Benchmarks["Fig6a"] = run(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := experiments.Fig6(experiments.Fig6a, benchFig6Cfg())
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.Summary.Mean.MicrosF(), "mean_µs")
			b.ReportMetric(res.Summary.Max.MicrosF(), "max_µs")
			b.ReportMetric(100*res.Summary.Share(tracerec.Delayed), "delayed_%")
		}
	})
	fmt.Fprintln(os.Stderr, "bench: SimulationThroughput ...")
	r.Benchmarks["SimulationThroughput"] = run(benchSimulationThroughput)
	fmt.Fprintln(os.Stderr, "bench: DESEventThroughput ...")
	r.Benchmarks["DESEventThroughput"] = run(benchDESEventThroughput)

	fmt.Fprintln(os.Stderr, "bench: sweep wall clock ...")
	r.Sweep = sweepWallClock(*events, *workers)
	fmt.Fprintln(os.Stderr, "bench: serve daemon ...")
	r.Server = serverBench(*events)

	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %s\n", *out)
}

// run executes fn under the testing harness and folds the result into a
// benchEntry, including the ReportMetric extras.
func run(fn func(b *testing.B)) benchEntry {
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	})
	e := benchEntry{
		NsPerOp:     res.NsPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
	}
	if len(res.Extra) > 0 {
		e.Metrics = map[string]float64{}
		for k, v := range res.Extra {
			e.Metrics[k] = v
		}
	}
	return e
}

func benchFig6Cfg() experiments.Fig6Config {
	cfg := experiments.DefaultFig6()
	cfg.EventsPerLoad = 2000
	return cfg
}

func benchSimulationThroughput(b *testing.B) {
	lambda := simtime.Micros(1344)
	arrivals := workload.Timestamps(workload.Exponential(rng.New(1), lambda, 2000))
	sc := core.Scenario{
		Partitions: []core.PartitionSpec{
			{Name: "app1", Slot: simtime.Micros(6000)},
			{Name: "app2", Slot: simtime.Micros(6000)},
			{Name: "hk", Slot: simtime.Micros(2000)},
		},
		Mode:   hv.Monitored,
		Policy: hv.ResumeAcrossSlots,
		IRQs: []core.IRQSpec{{
			Name: "t0", Partition: 0,
			CTH: simtime.Micros(6), CBH: simtime.Micros(30),
			Arrivals: arrivals, DMin: lambda,
		}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(sc); err != nil {
			b.Fatal(err)
		}
	}
}

func benchDESEventThroughput(b *testing.B) {
	sim := des.New()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			sim.After(simtime.Microsecond, "tick", tick)
		}
	}
	sim.After(simtime.Microsecond, "tick", tick)
	b.ResetTimer()
	sim.Drain()
}

// sweepWallClock times the full four-sweep grid once sequentially and
// once with the requested worker count.
func sweepWallClock(events, workers int) sweepTiming {
	runAll := func(w int) float64 {
		b := sweep.DefaultBaseline()
		b.Events = events
		b.Workers = w
		start := time.Now()
		if _, err := sweep.DMin(b, []int64{200, 500, 1000, 1344, 2000, 4000, 8000, 16000}); err != nil {
			fatal(err)
		}
		if _, err := sweep.SlotLength(b, []int64{1000, 2000, 4000, 6000, 9000, 12000}); err != nil {
			fatal(err)
		}
		if _, err := sweep.Load(b, []float64{0.005, 0.01, 0.02, 0.05, 0.10, 0.20}); err != nil {
			fatal(err)
		}
		if _, err := sweep.CBH(b, []int64{10, 30, 60, 120, 240}); err != nil {
			fatal(err)
		}
		return time.Since(start).Seconds()
	}
	st := sweepTiming{Events: events, Workers: workers}
	st.SequentialS = runAll(1)
	st.ParallelS = runAll(workers)
	if st.ParallelS > 0 {
		st.Speedup = st.SequentialS / st.ParallelS
	}
	return st
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "bench: %v\n", err)
	os.Exit(1)
}
