package main

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/campaign"
	rprt "repro/internal/report"
)

// orchestratorTiming is the campaign-orchestrator section of the bench
// report: end-to-end cells/sec through the generator-expansion →
// execute → encode path, once cold (every cell replays its prefix from
// cycle zero) and once warm (cells of a prefix group fork from one DES
// snapshot via campaign.Runner). Warm must be sublinear in the prefix:
// its per-cell cost is the suffix plus a rewind, independent of
// prefix length, which is what makes million-cell campaigns viable.
// Every warm cell document is verified byte-identical to its cold
// counterpart before any timing is reported.
type orchestratorTiming struct {
	Cells         int     `json:"cells"`
	PrefixEvents  int     `json:"prefix_events"`
	SuffixEvents  int     `json:"suffix_events"`
	ColdCellsPerS float64 `json:"cold_cells_per_s"`
	WarmCellsPerS float64 `json:"warm_cells_per_s"`
	Speedup       float64 `json:"speedup"`
}

// orchestratorBench expands a campaign spec and times the two execution
// paths over the full cell list in expansion order.
func orchestratorBench(samples int, quick bool) orchestratorTiming {
	sp := campaign.Spec{
		Faults:       []string{"babbling-idiot", "stuck-line", "jitter-drift"},
		Intensities:  campaign.IntensityRange{Min: 0.25, Max: 1.0, Steps: 2},
		Seeds:        campaign.SeedRange{Base: 1, Count: 2},
		PrefixEvents: 2000,
		SuffixEvents: 150,
	}
	if quick {
		sp.PrefixEvents, sp.SuffixEvents = 400, 60
		sp.Seeds.Count = 1
	}
	if err := sp.Normalize(); err != nil {
		fatal(err)
	}
	cells := sp.Expand()
	ot := orchestratorTiming{
		Cells:        len(cells),
		PrefixEvents: sp.PrefixEvents,
		SuffixEvents: sp.SuffixEvents,
	}

	runPath := func(run func(campaign.CellSpec) (*campaign.CellResult, error)) ([][]byte, float64) {
		start := time.Now()
		bodies := make([][]byte, len(cells))
		for i, c := range cells {
			res, err := run(sp.CellSpec(c))
			if err != nil {
				fatal(err)
			}
			body, err := rprt.EncodeCell(res)
			if err != nil {
				fatal(err)
			}
			bodies[i] = body
		}
		return bodies, float64(len(cells)) / time.Since(start).Seconds()
	}

	for s := 0; s < samples; s++ {
		cold, coldRate := runPath(campaign.RunCellCold)
		r := campaign.NewRunner()
		warm, warmRate := runPath(r.Run)
		for i := range cold {
			if !bytes.Equal(cold[i], warm[i]) {
				fatal(fmt.Errorf("campaign cell %d: warm document diverges from cold", i))
			}
		}
		if coldRate > ot.ColdCellsPerS {
			ot.ColdCellsPerS = coldRate
		}
		if warmRate > ot.WarmCellsPerS {
			ot.WarmCellsPerS = warmRate
		}
	}
	if ot.ColdCellsPerS > 0 {
		ot.Speedup = ot.WarmCellsPerS / ot.ColdCellsPerS
	}
	return ot
}
