package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/serve"
)

// serverTiming is the serve-daemon section of the bench report: the
// cost of a cold (computed) request, the throughput of cache hits for
// the same spec, and the admission split once the bounded queue
// saturates.
type serverTiming struct {
	Events          int     `json:"events"`
	ColdMs          float64 `json:"cold_ms"`
	HitMeanMs       float64 `json:"hit_mean_ms"`
	HitReqPerSec    float64 `json:"hit_req_per_s"`
	SaturationPosts int     `json:"saturation_posts"`
	Accepted        int64   `json:"accepted"`
	Rejected        int64   `json:"rejected"`
	QueueSize       int     `json:"queue_size"`
	// Warm restart (PR 4): daemon with a -data-dir is stopped cleanly
	// and a fresh instance opened on the same directory; the time spans
	// store+journal open, journal replay and the first request, which
	// must be served from the durable store (X-Cache: store) without
	// recomputation.
	WarmRestartMs  float64 `json:"warm_restart_ms"`
	WarmCacheState string  `json:"warm_cache_state"`
}

// serverBench measures the daemon end to end over loopback HTTP: one
// worker so admission behaviour is deterministic, a small queue so
// saturation is reachable with few posts.
func serverBench(events int) serverTiming {
	const queueSize = 8
	reg := metrics.NewRegistry()
	s, err := serve.New(serve.Options{Workers: 1, QueueSize: queueSize, Registry: reg})
	if err != nil {
		fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(spec string) *http.Response {
		resp, err := http.Post(ts.URL+"/v1/experiments", "application/json", strings.NewReader(spec))
		if err != nil {
			fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	st := serverTiming{Events: events, QueueSize: queueSize}
	spec := fmt.Sprintf(`{"kind": "fig6a", "events": %d, "wait": true}`, events)

	// Cold: computed on a miss, fills the cache.
	start := time.Now()
	if resp := post(spec); resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("cold request: %s", resp.Status))
	}
	st.ColdMs = float64(time.Since(start).Microseconds()) / 1000

	// Hits: the identical spec served from the cache.
	const hitN = 300
	start = time.Now()
	for i := 0; i < hitN; i++ {
		if resp := post(spec); resp.Header.Get("X-Cache") != "hit" {
			fatal(fmt.Errorf("request %d missed the cache", i))
		}
	}
	hitDur := time.Since(start)
	st.HitMeanMs = float64(hitDur.Microseconds()) / 1000 / hitN
	if secs := hitDur.Seconds(); secs > 0 {
		st.HitReqPerSec = hitN / secs
	}

	// Saturation: pin the single worker with one heavy job, then blast
	// a concurrent burst of twice the queue bound. Sequential posting
	// cannot saturate the queue here — on a single-CPU host the
	// in-process client is scheduled behind the computing worker and
	// never outruns it.
	heavy := fmt.Sprintf(`{"kind": "fig6a", "events": %d, "seed": 99}`, 20*events)
	if resp := post(heavy); resp.StatusCode != http.StatusAccepted {
		fatal(fmt.Errorf("heavy request: %s", resp.Status))
	}
	const burst = 2 * queueSize
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			post(fmt.Sprintf(`{"kind": "fig6a", "events": 150, "seed": %d}`, seed))
		}(i + 1)
	}
	wg.Wait()
	st.SaturationPosts = burst
	st.Accepted = reg.Counter("repro_server_jobs_accepted_total").Value()
	st.Rejected = reg.Counter("repro_server_jobs_rejected_total").Value()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		fatal(err)
	}

	st.WarmRestartMs, st.WarmCacheState = warmRestartBench(events)
	return st
}

// warmRestartBench measures the crash-safety payoff: a durable daemon
// computes one result, shuts down cleanly, and a fresh instance on the
// same data directory answers the identical spec. The measured span is
// restart (store index + journal open + replay) plus the first
// request, which must come from the durable store — recomputing would
// cost ColdMs again.
func warmRestartBench(events int) (ms float64, cacheState string) {
	dir, err := os.MkdirTemp("", "bench-warm-*")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)
	spec := fmt.Sprintf(`{"kind": "fig6a", "events": %d, "wait": true}`, events)

	post := func(ts *httptest.Server) *http.Response {
		resp, err := http.Post(ts.URL+"/v1/experiments", "application/json", strings.NewReader(spec))
		if err != nil {
			fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	s1, err := serve.New(serve.Options{Workers: 1, DataDir: dir, Registry: metrics.NewRegistry()})
	if err != nil {
		fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	if resp := post(ts1); resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("warm-restart seed request: %s", resp.Status))
	}
	ts1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		fatal(err)
	}

	start := time.Now()
	s2, err := serve.New(serve.Options{Workers: 1, DataDir: dir, Registry: metrics.NewRegistry()})
	if err != nil {
		fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	resp := post(ts2)
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("warm-restart request: %s", resp.Status))
	}
	cacheState = resp.Header.Get("X-Cache")
	if cacheState != "store" {
		fatal(fmt.Errorf("warm-restart request not served from the durable store (X-Cache: %q)", cacheState))
	}
	if err := s2.Shutdown(ctx); err != nil {
		fatal(err)
	}
	return float64(elapsed.Microseconds()) / 1000, cacheState
}
