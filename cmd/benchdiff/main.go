// Command benchdiff gates performance regressions: it compares a fresh
// cmd/bench JSON report against the best (minimum) prior value of each
// tracked benchmark across the committed BENCH_PR*.json evidence files,
// and exits non-zero when ns/op or allocs/op regressed by more than the
// allowed fraction. scripts/benchdiff.sh is the CI entry point.
//
// Only benchmarks present in both the fresh report and at least one
// baseline are compared; a tracked benchmark missing from the fresh
// report is an error (a silently dropped measurement is itself a
// regression of the evidence).
//
// Usage:
//
//	benchdiff -new fresh.json[,fresh2.json ...] [-max-regress 0.10]
//	          [-rebase BENCH_REBASE.json] [baseline.json ...]
//
// With no baseline arguments, BENCH_PR*.json in the working directory
// (minus the -new files themselves) is used.
//
// Two guards keep environment drift from failing the gate on untouched
// code paths (a false failure first seen between PR 6 and PR 7):
//
//   - Several comma-separated -new reports gate on their elementwise
//     minimum: a real regression reproduces across same-host reruns,
//     a scheduler quantum or thermal dip does not.
//   - A committed BENCH_REBASE.json sentinel raises the effective
//     ns/op baseline of a named benchmark (never allocs/op — alloc
//     counts are host-independent, so drift cannot explain an alloc
//     regression). The sentinel is reviewable evidence: it must say
//     why and since when, and it can only loosen timings up to its
//     recorded value, not silence the gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// tracked is the closed set of regression-gated benchmarks: the macro
// figure path, the single-scenario pipeline, and the DES hot path.
var tracked = []string{"Fig6a", "SimulationThroughput", "DESEventThroughput"}

type benchEntry struct {
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

type report struct {
	Benchmarks map[string]benchEntry `json:"benchmarks"`
}

// rebaseFile is the BENCH_REBASE.json sentinel: a reviewed, committed
// acknowledgement that the timing baseline of a benchmark no longer
// reflects the current environment. Only ns/op can be rebased.
type rebaseFile struct {
	Reason     string           `json:"reason"`
	Since      string           `json:"since"`
	Benchmarks map[string]int64 `json:"ns_per_op"`
}

func loadRebase(path string) (rebaseFile, error) {
	var rb rebaseFile
	buf, err := os.ReadFile(path)
	if err != nil {
		return rb, err
	}
	if err := json.Unmarshal(buf, &rb); err != nil {
		return rb, fmt.Errorf("%s: %w", path, err)
	}
	if rb.Reason == "" || rb.Since == "" {
		return rb, fmt.Errorf("%s: a rebase sentinel must record reason and since", path)
	}
	return rb, nil
}

func load(path string) (report, error) {
	var r report
	buf, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(buf, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

func main() {
	newPaths := flag.String("new", "", "fresh cmd/bench report(s) to gate, comma-separated; several gate on their elementwise minimum (required)")
	maxRegress := flag.Float64("max-regress", 0.10, "allowed fractional regression per metric")
	rebasePath := flag.String("rebase", "BENCH_REBASE.json", "timing rebase sentinel; a missing file means no rebase")
	flag.Parse()
	if *newPaths == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -new is required")
		os.Exit(2)
	}

	// Elementwise minimum across the fresh reports: a regression must
	// reproduce in every same-host run to count.
	fresh := report{Benchmarks: map[string]benchEntry{}}
	newAbs := map[string]bool{}
	for _, p := range strings.Split(*newPaths, ",") {
		if p = strings.TrimSpace(p); p == "" {
			continue
		}
		r, err := load(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
		if abs, err := filepath.Abs(p); err == nil {
			newAbs[abs] = true
		}
		for name, e := range r.Benchmarks {
			f, seen := fresh.Benchmarks[name]
			if !seen {
				fresh.Benchmarks[name] = e
				continue
			}
			f.NsPerOp = min(f.NsPerOp, e.NsPerOp)
			f.AllocsPerOp = min(f.AllocsPerOp, e.AllocsPerOp)
			fresh.Benchmarks[name] = f
		}
	}

	var rebase rebaseFile
	if rb, err := loadRebase(*rebasePath); err == nil {
		rebase = rb
		fmt.Printf("timing rebase in effect (%s, since %s): %s\n", *rebasePath, rb.Since, rb.Reason)
	} else if !os.IsNotExist(err) {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	baselines := flag.Args()
	if len(baselines) == 0 {
		glob, err := filepath.Glob("BENCH_PR*.json")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
		for _, g := range glob {
			if abs, _ := filepath.Abs(g); newAbs[abs] {
				continue
			}
			baselines = append(baselines, g)
		}
	}
	if len(baselines) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no baseline BENCH_PR*.json found")
		os.Exit(2)
	}

	// Best prior value per tracked benchmark: the minimum across every
	// baseline that measured it.
	best := map[string]benchEntry{}
	for _, path := range baselines {
		r, err := load(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
		for _, name := range tracked {
			e, ok := r.Benchmarks[name]
			if !ok {
				continue
			}
			b, seen := best[name]
			if !seen {
				best[name] = e
				continue
			}
			b.NsPerOp = min(b.NsPerOp, e.NsPerOp)
			b.AllocsPerOp = min(b.AllocsPerOp, e.AllocsPerOp)
			best[name] = b
		}
	}

	failed := false
	check := func(name, metric string, got, base int64) {
		// The +2 absolute slack keeps near-zero alloc counts from
		// failing on a single incidental allocation while still gating
		// any real return to per-event allocation.
		limit := int64(float64(base)*(1+*maxRegress)) + 2
		status := "ok"
		if got > limit {
			status = "REGRESSION"
			failed = true
		}
		fmt.Printf("%-22s %-10s %12d  best %12d  limit %12d  %s\n", name, metric, got, base, limit, status)
	}
	for _, name := range tracked {
		e, ok := fresh.Benchmarks[name]
		if !ok {
			fmt.Printf("%-22s MISSING from %s\n", name, *newPaths)
			failed = true
			continue
		}
		base, ok := best[name]
		if !ok {
			fmt.Printf("%-22s no baseline — skipped\n", name)
			continue
		}
		// The sentinel can only raise the timing baseline (acknowledged
		// environment drift); allocs/op is never rebased.
		if rb, ok := rebase.Benchmarks[name]; ok && rb > base.NsPerOp {
			fmt.Printf("%-22s ns/op baseline rebased %d → %d\n", name, base.NsPerOp, rb)
			base.NsPerOp = rb
		}
		check(name, "ns/op", e.NsPerOp, base.NsPerOp)
		check(name, "allocs/op", e.AllocsPerOp, base.AllocsPerOp)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchdiff: performance regression against committed BENCH_PR*.json evidence")
		os.Exit(1)
	}
}
