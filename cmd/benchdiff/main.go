// Command benchdiff gates performance regressions: it compares a fresh
// cmd/bench JSON report against the best (minimum) prior value of each
// tracked benchmark across the committed BENCH_PR*.json evidence files,
// and exits non-zero when ns/op or allocs/op regressed by more than the
// allowed fraction. scripts/benchdiff.sh is the CI entry point.
//
// Only benchmarks present in both the fresh report and at least one
// baseline are compared; a tracked benchmark missing from the fresh
// report is an error (a silently dropped measurement is itself a
// regression of the evidence).
//
// Usage:
//
//	benchdiff -new BENCH_PR6.json [-max-regress 0.10] [baseline.json ...]
//
// With no baseline arguments, BENCH_PR*.json in the working directory
// (minus the -new file itself) is used.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
)

// tracked is the closed set of regression-gated benchmarks: the macro
// figure path, the single-scenario pipeline, and the DES hot path.
var tracked = []string{"Fig6a", "SimulationThroughput", "DESEventThroughput"}

type benchEntry struct {
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

type report struct {
	Benchmarks map[string]benchEntry `json:"benchmarks"`
}

func load(path string) (report, error) {
	var r report
	buf, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(buf, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

func main() {
	newPath := flag.String("new", "", "fresh cmd/bench report to gate (required)")
	maxRegress := flag.Float64("max-regress", 0.10, "allowed fractional regression per metric")
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -new is required")
		os.Exit(2)
	}
	fresh, err := load(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	baselines := flag.Args()
	if len(baselines) == 0 {
		glob, err := filepath.Glob("BENCH_PR*.json")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
		newAbs, _ := filepath.Abs(*newPath)
		for _, g := range glob {
			if abs, _ := filepath.Abs(g); abs == newAbs {
				continue
			}
			baselines = append(baselines, g)
		}
	}
	if len(baselines) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no baseline BENCH_PR*.json found")
		os.Exit(2)
	}

	// Best prior value per tracked benchmark: the minimum across every
	// baseline that measured it.
	best := map[string]benchEntry{}
	for _, path := range baselines {
		r, err := load(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
		for _, name := range tracked {
			e, ok := r.Benchmarks[name]
			if !ok {
				continue
			}
			b, seen := best[name]
			if !seen {
				best[name] = e
				continue
			}
			b.NsPerOp = min(b.NsPerOp, e.NsPerOp)
			b.AllocsPerOp = min(b.AllocsPerOp, e.AllocsPerOp)
			best[name] = b
		}
	}

	failed := false
	check := func(name, metric string, got, base int64) {
		// The +2 absolute slack keeps near-zero alloc counts from
		// failing on a single incidental allocation while still gating
		// any real return to per-event allocation.
		limit := int64(float64(base)*(1+*maxRegress)) + 2
		status := "ok"
		if got > limit {
			status = "REGRESSION"
			failed = true
		}
		fmt.Printf("%-22s %-10s %12d  best %12d  limit %12d  %s\n", name, metric, got, base, limit, status)
	}
	for _, name := range tracked {
		e, ok := fresh.Benchmarks[name]
		if !ok {
			fmt.Printf("%-22s MISSING from %s\n", name, *newPath)
			failed = true
			continue
		}
		base, ok := best[name]
		if !ok {
			fmt.Printf("%-22s no baseline — skipped\n", name)
			continue
		}
		check(name, "ns/op", e.NsPerOp, base.NsPerOp)
		check(name, "allocs/op", e.AllocsPerOp, base.AllocsPerOp)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchdiff: performance regression against committed BENCH_PR*.json evidence")
		os.Exit(1)
	}
}
