// Command campaign runs a million-cell generator campaign (DESIGN.md
// §12) and prints its final aggregate document.
//
// Without -addr the expansion is folded in-process: the generator spec
// expands to cells, each cell runs on the warm-prefix path across a
// local worker pool, and the aggregate goes to stdout. With -addr the
// spec is submitted to a serve daemon over HTTP; progress chunks are
// streamed to stderr and the final aggregate — fetched by its content
// address, so the bytes are exactly the stored document — goes to
// stdout. Both paths print byte-identical output for the same spec:
// that equivalence is the orchestrator's core contract, and
// scripts/campaignsmoke.sh holds the daemon to it.
//
// Usage:
//
//	campaign [-spec file|-] [-faults a,b] [-intensity-min F] [-intensity-max F]
//	         [-steps N] [-seed-base N] [-seeds N] [-prefix-seed N]
//	         [-prefix-events N] [-suffix-events N]
//	         [-workers N] [-addr http://host:port[,http://host2:port]] [-o file]
//
// With several comma-separated addresses the client routes by the
// campaign's ring key, hedges reads against a second replica, and
// fails over when the coordinator dies (see internal/serve/client's
// ClusterClient).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/serve/client"
)

func main() {
	specPath := flag.String("spec", "", "generator spec JSON file (- for stdin); overrides the inline spec flags")
	faultsFlag := flag.String("faults", "", "comma-separated fault models (empty = every registered model)")
	intMin := flag.Float64("intensity-min", 0, "intensity sweep lower bound")
	intMax := flag.Float64("intensity-max", 0, "intensity sweep upper bound")
	steps := flag.Int("steps", 0, "intensity sweep steps")
	seedBase := flag.Uint64("seed-base", 0, "first seed of the per-cell seed sweep")
	seeds := flag.Int("seeds", 0, "seeds per (fault, intensity) point")
	prefixSeed := flag.Uint64("prefix-seed", 0, "shared warm-prefix stream seed (0 = default)")
	prefixEvents := flag.Int("prefix-events", 0, "shared warm-prefix length in events (0 = default)")
	suffixEvents := flag.Int("suffix-events", 0, "per-cell adversarial suffix length (0 = default)")
	workers := flag.Int("workers", runner.Default(), "local fold worker pool (ignored with -addr)")
	addr := flag.String("addr", "", "serve daemon base URL(s), comma-separated; empty folds the campaign in-process, several addresses use ring-aware routing with hedged reads")
	retries := flag.Int("retries", 0, "retryable-failure budget when polling the daemon (0 = client default; raise to ride long restarts)")
	out := flag.String("o", "-", "output file for the aggregate document (- for stdout)")
	flag.Parse()

	sp, err := loadSpec(*specPath, campaign.Spec{
		Faults:       splitFaults(*faultsFlag),
		Intensities:  campaign.IntensityRange{Min: *intMin, Max: *intMax, Steps: *steps},
		Seeds:        campaign.SeedRange{Base: *seedBase, Count: *seeds},
		PrefixSeed:   *prefixSeed,
		PrefixEvents: *prefixEvents,
		SuffixEvents: *suffixEvents,
	})
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var body []byte
	switch addrs := splitAddrs(*addr); len(addrs) {
	case 0:
		body, err = runLocal(ctx, sp, *workers)
	case 1:
		body, err = runRemote(ctx, sp, addrs[0], *retries)
	default:
		body, err = runCluster(ctx, sp, addrs, *retries)
	}
	if err != nil {
		fatal(err)
	}
	if *out == "-" {
		os.Stdout.Write(body)
		return
	}
	if err := os.WriteFile(*out, body, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "campaign: wrote %s\n", *out)
}

// loadSpec resolves the generator spec: a JSON document when -spec is
// given, the inline flag values otherwise. Validation and defaults are
// campaign.Spec.Normalize's business either way.
func loadSpec(path string, inline campaign.Spec) (campaign.Spec, error) {
	sp := inline
	if path != "" {
		var raw []byte
		var err error
		if path == "-" {
			raw, err = io.ReadAll(os.Stdin)
		} else {
			raw, err = os.ReadFile(path)
		}
		if err != nil {
			return sp, err
		}
		sp = campaign.Spec{}
		dec := json.NewDecoder(strings.NewReader(string(raw)))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&sp); err != nil {
			return sp, fmt.Errorf("campaign: parse spec %s: %w", path, err)
		}
	}
	if err := sp.Normalize(); err != nil {
		return sp, err
	}
	if sp.Kind == campaign.KindDiffuzz {
		fmt.Fprintf(os.Stderr, "campaign: %d cells (%d scenario classes × %d seeds)\n",
			sp.Cells(), len(sp.Classes), sp.Seeds.Count)
	} else {
		fmt.Fprintf(os.Stderr, "campaign: %d cells (%d fault models × %d intensities × %d seeds)\n",
			sp.Cells(), len(sp.Faults), sp.Intensities.Steps, sp.Seeds.Count)
	}
	return sp, nil
}

// splitAddrs turns the -addr flag into a list of base URLs: empty →
// local fold, one URL → single-daemon client, several (comma-
// separated) → ring-aware cluster client.
func splitAddrs(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func splitFaults(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// runLocal folds the whole expansion in-process and encodes the
// aggregate — the reference the served path is byte-compared against.
func runLocal(ctx context.Context, sp campaign.Spec, workers int) ([]byte, error) {
	agg, err := campaign.Fold(ctx, sp, workers)
	if err != nil {
		return nil, err
	}
	return report.EncodeCampaign(agg)
}

// runRemote submits the spec to a daemon, follows the campaign to a
// terminal state (streaming when possible, polling as the fallback —
// the poll loop rides daemon restarts), and returns the stored
// aggregate bytes fetched by content address.
func runRemote(ctx context.Context, sp campaign.Spec, addr string, retries int) ([]byte, error) {
	c, err := client.New(client.Options{BaseURL: addr, MaxRetries: retries})
	if err != nil {
		return nil, err
	}
	camp, res, err := c.SubmitCampaign(ctx, sp)
	if err != nil {
		return nil, err
	}
	if res != nil { // already finished: answered straight from the store
		fmt.Fprintf(os.Stderr, "campaign: cache %s\n", res.CacheSource)
		return res.Body, nil
	}
	fmt.Fprintf(os.Stderr, "campaign: accepted as %s (%d cells)\n", camp.ID, camp.TotalCells)

	final, streamErr := streamProgress(ctx, c, camp.ID)
	if streamErr != nil {
		// A dropped stream is not a failed campaign: the poll path
		// resumes across daemon restarts and resolves aged-out
		// campaigns through the store.
		fmt.Fprintf(os.Stderr, "campaign: stream dropped (%v); polling\n", streamErr)
		final, err = c.AwaitCampaign(ctx, camp.ID, camp.Key)
		if err != nil {
			return nil, err
		}
	}
	if final.Status != "done" {
		return nil, fmt.Errorf("campaign %s finished %s: %s", camp.ID, final.Status, final.Error)
	}
	return c.ResultByKey(ctx, final.Key)
}

// runCluster submits the spec through the ring-aware client: the
// campaign routes to its key's ring owner, reads hedge against a
// second replica, and a dead coordinator fails over to the next
// member. Node names are synthesized from the address list order.
func runCluster(ctx context.Context, sp campaign.Spec, addrs []string, retries int) ([]byte, error) {
	nodes := make([]client.ClusterNode, len(addrs))
	for i, a := range addrs {
		nodes[i] = client.ClusterNode{Name: fmt.Sprintf("n%d", i+1), URL: a}
	}
	cc, err := client.NewCluster(client.ClusterOptions{
		Nodes:    nodes,
		Template: client.Options{MaxRetries: retries},
	})
	if err != nil {
		return nil, err
	}
	last := time.Time{}
	body, err := cc.RunCampaign(ctx, sp, func(cv *client.Campaign) error {
		if cv.Terminal() || time.Since(last) >= time.Second {
			fmt.Fprintf(os.Stderr, "campaign: %s %s %d/%d cells, %d violations\n",
				cv.ID, cv.Status, cv.Done, cv.TotalCells, cv.Violations)
			last = time.Now()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if h, f := cc.Hedged(), cc.Failovers(); h > 0 || f > 0 {
		fmt.Fprintf(os.Stderr, "campaign: ring reads hedged %d time(s), failed over %d time(s)\n", h, f)
	}
	return body, nil
}

// streamProgress follows the campaign's NDJSON stream, narrating
// progress to stderr at most once a second, and returns the terminal
// view.
func streamProgress(ctx context.Context, c *client.Client, id string) (*client.Campaign, error) {
	var final *client.Campaign
	last := time.Time{}
	err := c.StreamCampaign(ctx, id, func(cv *client.Campaign) error {
		if cv.Terminal() || time.Since(last) >= time.Second {
			fmt.Fprintf(os.Stderr, "campaign: %s %s %d/%d cells, %d violations\n",
				cv.ID, cv.Status, cv.Done, cv.TotalCells, cv.Violations)
			last = time.Now()
		}
		if cv.Terminal() {
			final = cv
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if final == nil {
		return nil, fmt.Errorf("campaign %s: stream ended without a terminal chunk", id)
	}
	return final, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
	os.Exit(1)
}
