// Command chaos runs the adversarial fault-injection campaign: every
// fault model in internal/faults aimed at the paper's reference system
// across an intensity sweep, with the temporal-independence oracle
// (internal/hv) judging each run against the eq. (14) interference
// budget, the analytic victim-latency bound and the demotion counter
// identities. Failed runs print a one-line reproducer.
//
// Usage:
//
//	chaos [-faults a,b,...] [-intensities 0.25,0.5,1] [-events N]
//	      [-seed S] [-workers N] [-disable-monitor] [-json] [-svg FILE]
//	chaos -smoke
//
// The exit status is 0 iff every run upheld every invariant (with
// -disable-monitor, failures are the expected outcome and are still
// reported through the exit status — scripts asserting the ablation
// *fails* should test for a non-zero exit).
//
// -smoke is the CI self-test: a short monitored campaign over every
// fault model must pass, and the same babbling-idiot campaign with the
// monitor ablated must fail the eq. (14) invariant — proving the
// oracle detects regressions rather than rubber-stamping runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/faults"
	"repro/internal/hv"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/tracerec"
	"repro/internal/viz"
)

func main() {
	faultList := flag.String("faults", "", "comma-separated fault models (default: all registered)")
	intensityList := flag.String("intensities", "", "comma-separated intensities in [0,1] (default: 0.25,0.5,1)")
	events := flag.Int("events", 300, "attacker arrivals per run")
	seed := flag.Uint64("seed", 1, "campaign seed")
	workers := flag.Int("workers", runner.Default(), "worker pool size (output is worker-count independent)")
	disable := flag.Bool("disable-monitor", false, "ablate the activation monitor (runs are expected to fail)")
	jsonOut := flag.Bool("json", false, "emit the stable JSON encoding instead of the table")
	svgPath := flag.String("svg", "", "write an interference-vs-budget SVG to this file")
	smoke := flag.Bool("smoke", false, "CI self-test: monitored campaign passes AND ablated campaign fails")
	flag.Parse()

	if *smoke {
		os.Exit(runSmoke(*events, *seed, *workers))
	}

	cfg := faults.Config{
		Events:         *events,
		Seed:           *seed,
		Workers:        *workers,
		DisableMonitor: *disable,
	}
	if *faultList != "" {
		cfg.Faults = strings.Split(*faultList, ",")
	}
	if *intensityList != "" {
		for _, s := range strings.Split(*intensityList, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "chaos: bad intensity %q: %v\n", s, err)
				os.Exit(2)
			}
			cfg.Intensities = append(cfg.Intensities, v)
		}
	}

	res, err := faults.Run(context.Background(), cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
		os.Exit(1)
	}

	if *jsonOut {
		buf, err := report.EncodeChaos(res)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
			os.Exit(1)
		}
		os.Stdout.Write(buf)
	} else {
		writeTable(res)
	}
	if *svgPath != "" {
		if err := writeSVG(*svgPath, res); err != nil {
			fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *svgPath)
	}
	if res.FailedRuns > 0 {
		os.Exit(1)
	}
}

func writeTable(res *faults.Result) {
	fmt.Printf("chaos campaign: %d runs, seed %d, %d events/run, monitor %s\n\n",
		len(res.Runs), res.Seed, res.Events, map[bool]string{false: "on", true: "OFF (ablation)"}[res.DisableMonitor])
	fmt.Printf("%-22s %-9s %7s %7s %14s %14s %14s %14s  %s\n",
		"fault", "intensity", "grants", "denied", "interfere(µs)", "budget(µs)", "victim(µs)", "bound(µs)", "verdict")
	for _, r := range res.Runs {
		verdict := "PASS"
		if !r.Oracle.OK() {
			verdict = "FAIL " + r.Oracle.Violations[0].Invariant
		}
		fmt.Printf("%-22s %-9g %7d %7d %14.1f %14.1f %14.1f %14.1f  %s\n",
			r.Fault, r.Intensity, r.Grants, r.DeniedViolation,
			r.Interference.MicrosF(), r.Budget.MicrosF(),
			r.VictimMaxLatency.MicrosF(), r.VictimLatencyBound.MicrosF(), verdict)
	}
	fmt.Println()
	for _, r := range res.Runs {
		if r.Repro != nil {
			fmt.Printf("reproducer: %s\n", r.Repro)
		}
	}
	fmt.Printf("%d/%d runs failed\n", res.FailedRuns, len(res.Runs))
}

func writeSVG(path string, res *faults.Result) error {
	interference := tracerec.Series{Name: "max victim interference (µs)"}
	budget := tracerec.Series{Name: "eq. (14) budget (µs)"}
	for _, r := range res.Runs {
		interference.Y = append(interference.Y, r.Interference.MicrosF())
		budget.Y = append(budget.Y, r.Budget.MicrosF())
	}
	// viz.SeriesSVG needs ≥ 2 points to draw a line; a single-cell
	// campaign plots as a flat segment.
	if len(res.Runs) == 1 {
		interference.Y = append(interference.Y, interference.Y[0])
		budget.Y = append(budget.Y, budget.Y[0])
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := viz.SeriesSVG(f, []tracerec.Series{interference, budget},
		"Chaos campaign — interference vs eq. (14) budget per run",
		"campaign run index", "µs"); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runSmoke is the dual self-test wired into `make chaos-smoke`.
func runSmoke(events int, seed uint64, workers int) int {
	ctx := context.Background()

	on, err := faults.Run(ctx, faults.Config{Events: events, Seed: seed, Workers: workers})
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos -smoke: monitored campaign: %v\n", err)
		return 1
	}
	if on.FailedRuns > 0 {
		fmt.Fprintf(os.Stderr, "chaos -smoke: monitored campaign FAILED %d/%d runs:\n", on.FailedRuns, len(on.Runs))
		for _, r := range on.Runs {
			if r.Repro != nil {
				fmt.Fprintf(os.Stderr, "  %s\n", r.Repro)
			}
		}
		return 1
	}

	off, err := faults.Run(ctx, faults.Config{
		Faults:         []string{"babbling-idiot"},
		Events:         events,
		Seed:           seed,
		Workers:        workers,
		DisableMonitor: true,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos -smoke: ablated campaign: %v\n", err)
		return 1
	}
	for _, r := range off.Runs {
		var eq14 bool
		for _, v := range r.Oracle.Violations {
			if v.Invariant == hv.InvariantInterference {
				eq14 = true
			}
		}
		if !eq14 || r.Repro == nil {
			fmt.Fprintf(os.Stderr,
				"chaos -smoke: ORACLE REGRESSION: ablated babbling-idiot@%g did not fail the %s invariant\n",
				r.Intensity, hv.InvariantInterference)
			return 1
		}
	}
	fmt.Printf("chaos-smoke ok: %d monitored runs passed; %d ablated runs failed the %s invariant as expected\n",
		len(on.Runs), len(off.Runs), hv.InvariantInterference)
	return 0
}
