// Command diffuzz runs a differential fuzzing sweep in-process:
// random scenarios (internal/diffuzz) checked against the analytic
// temporal-independence bounds with the DES as the adversarial oracle,
// folded into the same campaign aggregate document a served "diffuzz"
// campaign streams (scripts/diffuzzsmoke.sh holds the two to byte
// identity).
//
// -plant injects a known bound-tightening bug into the checker — the
// harness self-test: the sweep must then find violations, and each
// retained reproducer is delta-debugged to a minimal counterexample.
// Violations exit 1, so the no-plant invocation doubles as a soundness
// gate.
//
// Usage:
//
//	diffuzz [-classes a,b] [-seeds N] [-seed-base N] [-events N]
//	        [-workers N] [-plant drop-blocking] [-json] [-o file]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/campaign"
	"repro/internal/diffuzz"
	"repro/internal/engine"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/simtime"
)

func main() {
	classesFlag := flag.String("classes", "", "comma-separated scenario classes (empty = every class)")
	seeds := flag.Int("seeds", 100, "seeds per class")
	seedBase := flag.Uint64("seed-base", 1, "first seed of the sweep")
	events := flag.Int("events", 0, "arrivals per generated stream (0 = default)")
	workers := flag.Int("workers", runner.Default(), "worker pool size (output is worker-count independent)")
	plant := flag.String("plant", "", "inject a known checker bug (self-test); \"drop-blocking\" drops the eq. (14) blocking term")
	jsonOut := flag.Bool("json", false, "emit the stable campaign JSON instead of the table")
	out := flag.String("o", "-", "output file (- for stdout)")
	flag.Parse()

	opt := diffuzz.Options{Plant: *plant}
	if err := opt.Validate(); err != nil {
		fatal(err)
	}
	spec := campaign.Spec{
		Kind:   campaign.KindDiffuzz,
		Seeds:  campaign.SeedRange{Base: *seedBase, Count: *seeds},
		Events: *events,
	}
	if *classesFlag != "" {
		spec.Classes = strings.Split(*classesFlag, ",")
	}

	agg, err := fold(context.Background(), spec, *workers, opt)
	if err != nil {
		fatal(err)
	}
	reps, err := minimizeRepros(agg, opt)
	if err != nil {
		fatal(err)
	}

	w := io.Writer(os.Stdout)
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if *jsonOut {
		buf, err := report.EncodeCampaign(agg)
		if err != nil {
			fatal(err)
		}
		w.Write(buf)
	} else {
		writeTable(w, agg)
	}
	for _, r := range reps {
		fmt.Fprintf(os.Stderr, "minimized %s/%d: %d sources, %d partitions, %d tasks, %d checks -> %s\n",
			r.Spec.Class, r.Spec.Seed, len(r.Spec.Srcs), len(r.Spec.Parts), r.Spec.Tasks(),
			r.Stats.Checks, r.Fingerprint)
	}
	if agg.Violations > 0 || agg.Errors > 0 {
		os.Exit(1)
	}
}

// fold is campaign.Fold with check options threaded through — with no
// plant it computes exactly the aggregate a served diffuzz campaign
// converges to.
func fold(ctx context.Context, spec campaign.Spec, workers int, opt diffuzz.Options) (*campaign.Aggregate, error) {
	agg, err := campaign.NewAggregate(spec)
	if err != nil {
		return nil, err
	}
	cells := agg.Spec.Expand()
	results, err := runner.MapCtxPool(ctx, workers, len(cells), engine.NewArena,
		func(a *engine.SimArena, i int) (*campaign.CellResult, error) {
			return campaign.RunDiffuzzCell(a, agg.Spec.CellSpec(cells[i]), opt)
		})
	if err != nil {
		return nil, err
	}
	for i, cr := range results {
		if err := agg.MergeCell(i, cr); err != nil {
			return nil, err
		}
	}
	return agg, nil
}

// minimizeRepros delta-debugs each retained violating cell to a
// minimal counterexample.
func minimizeRepros(agg *campaign.Aggregate, opt diffuzz.Options) ([]diffuzz.Reproducer, error) {
	if len(agg.Repros) == 0 {
		return nil, nil
	}
	a := engine.NewArena()
	var reps []diffuzz.Reproducer
	for _, r := range agg.Repros {
		spec, err := diffuzz.Generate(r.Class, r.Seed, agg.Spec.Events)
		if err != nil {
			return nil, err
		}
		rep, err := diffuzz.Minimize(a, spec, opt)
		if err != nil {
			return nil, fmt.Errorf("minimize %s/%d: %w", r.Class, r.Seed, err)
		}
		reps = append(reps, rep)
	}
	return reps, nil
}

func writeTable(w io.Writer, agg *campaign.Aggregate) {
	fmt.Fprintf(w, "diffuzz sweep: %d scenarios (%d classes x %d seeds), %d events/stream\n\n",
		agg.TotalCells, len(agg.Spec.Classes), agg.Spec.Seeds.Count, agg.Spec.Events)
	fmt.Fprintf(w, "%-10s %6s %8s %11s %8s %8s %13s %13s\n",
		"class", "cells", "invalid", "violations", "grants", "denied", "min gap(µs)", "mean gap(µs)")
	us := func(cycles int64) float64 { return simtime.Duration(cycles).MicrosF() }
	for i := range agg.Buckets {
		b := &agg.Buckets[i]
		fmt.Fprintf(w, "%-10s %6d %8d %11d %8d %8d %13.3f %13.3f\n",
			b.Class, b.Cells, b.Invalid, b.Violations, b.Grants, b.Denied,
			us(b.MinGapCycles), us(b.MeanGapCycles()))
	}
	fmt.Fprintf(w, "\ntotal: %d violations, %d errors, %d invalid; tightness over %d checks: min %.3fµs mean %.3fµs\n",
		agg.Violations, agg.Errors, agg.Invalid, agg.GapCount,
		us(agg.MinGapCycles), us(agg.MeanGapCycles()))
	for _, r := range agg.Repros {
		fmt.Fprintf(w, "reproducer: class=%s seed=%d events=%d %s fingerprint=%s\n",
			r.Class, r.Seed, agg.Spec.Events, r.Violation, r.Fingerprint)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "diffuzz: %v\n", err)
	os.Exit(1)
}
