// Command fig6 regenerates the latency histograms of Figure 6 (§6.1):
// 15000 IRQs at loads 1/5/10 % through the TDMA-scheduled hypervisor with
// the original top handler (a), the monitored modified handler (b), and
// the monitored handler with a dmin-conforming arrival stream (c).
//
// Usage:
//
//	fig6 [-scenario a|b|c|all] [-events N] [-csv] [-seed S] [-workers N]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiments"
	"repro/internal/runner"
	"repro/internal/viz"
)

func main() {
	scenario := flag.String("scenario", "all", "sub-figure to run: a, b, c or all")
	events := flag.Int("events", 5000, "IRQs per interrupt load")
	seed := flag.Uint64("seed", 2014, "workload seed")
	csv := flag.Bool("csv", false, "emit the histogram as CSV instead of ASCII art")
	svgDir := flag.String("svg", "", "additionally write fig6<x>.svg files into this directory")
	workers := flag.Int("workers", runner.Default(), "worker pool size for the per-load runs (1 = sequential; output is identical)")
	flag.Parse()

	cfg := experiments.DefaultFig6()
	cfg.EventsPerLoad = *events
	cfg.Seed = *seed
	cfg.Workers = *workers

	var variants []experiments.Fig6Variant
	switch *scenario {
	case "a":
		variants = []experiments.Fig6Variant{experiments.Fig6a}
	case "b":
		variants = []experiments.Fig6Variant{experiments.Fig6b}
	case "c":
		variants = []experiments.Fig6Variant{experiments.Fig6c}
	case "all":
		variants = []experiments.Fig6Variant{experiments.Fig6a, experiments.Fig6b, experiments.Fig6c}
	default:
		fmt.Fprintf(os.Stderr, "fig6: unknown scenario %q\n", *scenario)
		os.Exit(2)
	}

	for _, v := range variants {
		res, err := experiments.Fig6(v, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fig6: %v\n", err)
			os.Exit(1)
		}
		if *csv {
			fmt.Printf("# figure 6%c\n", v)
			res.Histogram.WriteCSV(os.Stdout)
		} else {
			res.Write(os.Stdout)
		}
		if *svgDir != "" {
			path := filepath.Join(*svgDir, fmt.Sprintf("fig6%c.svg", v))
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fig6: %v\n", err)
				os.Exit(1)
			}
			title := fmt.Sprintf("Figure 6%c — IRQ latency histogram (%d IRQs)", v, res.Summary.Count)
			if err := viz.HistogramSVG(f, res.Histogram, title); err != nil {
				fmt.Fprintf(os.Stderr, "fig6: %v\n", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "fig6: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", path)
		}
		fmt.Println()
	}
}
