// Command fig7 regenerates the Appendix A testcase (Figure 7): an
// automotive-ECU activation trace drives the IRQ source, the first 10 %
// trains a self-learning δ⁻[5] monitor, and four predefined bounds —
// non-binding, 25 %, 12.5 % and 6.25 % of the recorded load — shape the
// interposed interrupt handling of the remaining 90 %.
//
// Usage:
//
//	fig7 [-events N] [-csv] [-downsample K] [-window W] [-workers N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/runner"
	"repro/internal/tracerec"
	"repro/internal/viz"
)

func main() {
	events := flag.Int("events", 11000, "trace length in activations")
	csv := flag.Bool("csv", false, "emit the average-latency series as CSV")
	downsample := flag.Int("downsample", 50, "CSV downsampling factor")
	window := flag.Int("window", 500, "sliding window of the average-latency series")
	svgPath := flag.String("svg", "", "additionally write the figure as SVG to this path")
	workers := flag.Int("workers", runner.Default(), "worker pool size for the per-bound runs (1 = sequential; output is identical)")
	flag.Parse()

	cfg := experiments.DefaultFig7()
	cfg.ECU.Events = *events
	cfg.Window = *window
	cfg.Workers = *workers

	res, err := experiments.Fig7(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fig7: %v\n", err)
		os.Exit(1)
	}
	if *svgPath != "" {
		var series []tracerec.Series
		for i, g := range res.Graphs {
			series = append(series, tracerec.Series{
				Name: fmt.Sprintf("%c) %.2f%% load", 'a'+i, 100*g.LoadFraction),
				Y:    tracerec.Downsample(g.Series, *downsample),
			})
		}
		f, err := os.Create(*svgPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fig7: %v\n", err)
			os.Exit(1)
		}
		title := fmt.Sprintf("Figure 7 — average IRQ latency, ECU trace (%d activations)", len(res.Trace))
		if err := viz.SeriesSVG(f, series, title, "IRQ events (downsampled)", "avg latency (µs)"); err != nil {
			fmt.Fprintf(os.Stderr, "fig7: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "fig7: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *svgPath)
	}
	if *csv {
		res.SeriesCSV(os.Stdout, *downsample)
		return
	}
	res.Write(os.Stdout)
}
