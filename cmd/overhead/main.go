// Command overhead regenerates the memory and runtime overhead table of
// §6.2: the reference implementation's code/data footprint, the charged
// C_Mon / C_sched / C_ctx costs, and the measured context-switch increase
// of scenario 2 (dmin = λ) against the unmodified hypervisor.
//
// Usage:
//
//	overhead [-events N] [-workers N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/runner"
)

func main() {
	events := flag.Int("events", 5000, "IRQs per interrupt load")
	workers := flag.Int("workers", runner.Default(), "worker pool size for the per-load baseline/monitored pairs (1 = sequential; output is identical)")
	flag.Parse()

	cfg := experiments.DefaultFig6()
	cfg.EventsPerLoad = *events
	cfg.Workers = *workers

	res, err := experiments.Overhead(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "overhead: %v\n", err)
		os.Exit(1)
	}
	res.Write(os.Stdout)
}
