// Command report runs the complete evaluation and emits a Markdown
// paper-vs-measured reproduction report to stdout — the generated
// counterpart of the curated EXPERIMENTS.md.
//
// Usage:
//
//	report [-reduced]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/report"
)

func main() {
	reduced := flag.Bool("reduced", false, "run at reduced scale (faster)")
	flag.Parse()

	opts := report.Defaults()
	if *reduced {
		opts = report.Reduced()
	}
	if err := report.Generate(os.Stdout, opts); err != nil {
		fmt.Fprintf(os.Stderr, "report: %v\n", err)
		os.Exit(1)
	}
}
