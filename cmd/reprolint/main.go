// Command reprolint runs the determinism-contract analyzer suite
// (DESIGN.md §10) over `go vet`-style package patterns:
//
//	go run ./cmd/reprolint ./...
//
// It prints file:line:col diagnostics and exits 1 when findings exist,
// 2 when analysis itself fails, 0 on a clean tree. Genuine false
// positives are suppressed in source with
//
//	//reprolint:allow <analyzer> <reason>
//
// on the offending line or the line above. scripts/check.sh runs this
// as part of the tier-1 gate.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: reprolint [packages]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	n, err := lint.Run(os.Stdout, lint.All(), patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "reprolint: %d finding(s)\n", n)
		os.Exit(1)
	}
}
