// Command reprolint runs the determinism-contract analyzer suite
// (DESIGN.md §10, §15) over `go vet`-style package patterns:
//
//	go run ./cmd/reprolint ./...
//
// It prints file:line:col diagnostics and exits 1 when findings exist,
// 2 when analysis itself fails, 0 on a clean tree. With -json the
// findings are emitted as one JSON array (file, line, col, message,
// analyzer) for machine consumption; -list prints the analyzer roster
// and exits. Genuine false positives are suppressed in source with
//
//	//reprolint:allow <analyzer> <reason>
//
// on the offending line or the line above. scripts/check.sh runs this
// as part of the tier-1 gate.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "print the analyzer names and documentation, then exit")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array instead of file:line:col lines")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: reprolint [-list] [-json] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	run := lint.Run
	if *asJSON {
		run = lint.RunJSON
	}
	n, err := run(os.Stdout, lint.All(), patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "reprolint: %d finding(s)\n", n)
		os.Exit(1)
	}
}
