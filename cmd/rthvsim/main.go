// Command rthvsim runs a hypervisor simulation described by a JSON
// configuration and prints latency statistics, the handling-mode split
// and interference accounting.
//
// Usage:
//
//	rthvsim -config system.json [-histogram] [-binus 50]
//	rthvsim -example            # print an example configuration
//
// All durations in the configuration are in microseconds. See
// internal/config for the schema: partitions (or an explicit ARINC653-
// style window schedule), IRQ sources with generated or explicit arrival
// streams, shared subscribers, and dmin / δ⁻ / self-learning monitoring
// conditions.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/schedtrace"
	"repro/internal/simtime"
)

func main() {
	path := flag.String("config", "", "JSON system configuration")
	example := flag.Bool("example", false, "print an example configuration and exit")
	histogram := flag.Bool("histogram", false, "print a latency histogram")
	binUs := flag.Int64("binus", 50, "histogram bin width in µs")
	ganttUs := flag.Int64("gantt", 0, "render a Gantt chart of the first N µs of the run")
	flag.Parse()

	if *example {
		fmt.Println(config.Example)
		return
	}
	if *path == "" {
		fmt.Fprintln(os.Stderr, "rthvsim: -config is required (see -example)")
		os.Exit(2)
	}
	raw, err := os.ReadFile(*path)
	if err != nil {
		fatal(err)
	}
	file, err := config.Parse(raw)
	if err != nil {
		fatal(err)
	}
	sc, err := file.Scenario()
	if err != nil {
		fatal(err)
	}
	var tracer *schedtrace.Recorder
	if *ganttUs > 0 {
		tracer = &schedtrace.Recorder{Limit: 1 << 20}
		sc.Tracer = tracer
	}
	res, err := core.Run(sc)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("simulated %.3f ms, %d IRQ deliveries\n", res.Duration.MicrosF()/1000, res.Summary.Count)
	res.Summary.WriteSummary(os.Stdout)
	st := res.Stats
	fmt.Printf("context switches: %d (TDMA %d, interposed grants %d, resumed %d, split %d)\n",
		st.CtxSwitches, st.TDMASwitches, st.InterposedGrants, st.ResumedGrants, st.SplitGrants)
	fmt.Printf("denials: violation %d, fit %d, busy %d, learning %d, pending %d, unmonitored %d\n",
		st.DeniedViolation, st.DeniedFit, st.DeniedBusy, st.DeniedLearning, st.DeniedPending, st.DeniedNoMonitor)
	for _, p := range res.Partitions {
		fmt.Printf("partition %-14s guest %10.1fµs  own-BH %9.1fµs  stolen: interposed %9.1fµs  top %9.1fµs\n",
			p.Name, p.GuestTime.MicrosF(), p.BHTime.MicrosF(), p.StolenInterposed.MicrosF(), p.StolenTop.MicrosF())
	}
	for _, s := range res.Sources {
		lost := ""
		if s.Lost > 0 {
			lost = fmt.Sprintf("  LOST %d (non-counting IRQ flags)", s.Lost)
		}
		fmt.Printf("source %-16s raised %6d%s\n", s.Name, s.Raised, lost)
	}
	if *histogram {
		max := res.Summary.Max + simtime.Micros(*binUs)
		res.Log.NewHistogram(simtime.Micros(*binUs), max).WriteASCII(os.Stdout, 60)
	}
	if tracer != nil {
		var names []string
		for _, p := range res.Partitions {
			names = append(names, p.Name)
		}
		to := simtime.Time(simtime.Micros(*ganttUs))
		step := simtime.Duration(to) / 100
		if step <= 0 {
			step = simtime.Microsecond
		}
		fmt.Println()
		tracer.Gantt(os.Stdout, 0, to, step, names)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rthvsim: %v\n", err)
	os.Exit(1)
}
