// Command schedcheck statically verifies a configured system: for every
// partition with a periodic guest task set it computes worst-case
// response-time bounds under the full demand of the paper's architecture
// — TDMA supply loss, IRQ top handlers, own bottom handlers, and foreign
// interposed bottom handlers bounded by their monitoring conditions
// (eq. 14) — and reports whether every deadline is met.
//
// Usage:
//
//	schedcheck -config system.json
//
// Exit status 0: schedulable; 1: a deadline bound is violated;
// 2: configuration error.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/config"
	"repro/internal/holistic"
)

func main() {
	path := flag.String("config", "", "JSON system configuration")
	flag.Parse()
	if *path == "" {
		fmt.Fprintln(os.Stderr, "schedcheck: -config is required")
		os.Exit(2)
	}
	raw, err := os.ReadFile(*path)
	if err != nil {
		fatal(err)
	}
	file, err := config.Parse(raw)
	if err != nil {
		fatal(err)
	}
	specs, err := file.HolisticSpecs()
	if err != nil {
		fatal(err)
	}
	if len(specs) == 0 {
		fmt.Println("no partitions with periodic guest tasks — nothing to check")
		return
	}
	allOK := true
	for _, spec := range specs {
		res, err := holistic.Analyze(spec, analysis.DefaultHorizon)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("partition %s:\n", res.Partition)
		for _, tb := range res.Tasks {
			status := "OK"
			if !tb.Schedulable {
				status = "DEADLINE MISS POSSIBLE"
				allOK = false
			}
			fmt.Printf("  %-16s WCRT ≤ %10.1fµs  deadline %10.1fµs  (busy period %d jobs)  %s\n",
				tb.Name, tb.WCRT.MicrosF(), tb.Deadline.MicrosF(), tb.Q, status)
		}
	}
	if !allOK {
		os.Exit(1)
	}
	fmt.Println("system schedulable: every guest deadline bound holds under the")
	fmt.Println("configured interposed-IRQ interference (eq. 14).")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "schedcheck: %v\n", err)
	os.Exit(2)
}
