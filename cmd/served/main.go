// Command served runs the simulation daemon: experiments as a service
// over HTTP, backed by a shared worker pool, a bounded job queue with
// backpressure and a content-addressed result cache (see
// internal/serve).
//
// Usage:
//
//	served [-addr :8080] [-workers N] [-queue N] [-cache N] [-job-timeout D]
//	       [-job-retention N] [-data-dir DIR] [-fsync] [-store-max-bytes N]
//	       [-cluster-members FILE -cluster-self NAME] [-cluster-replicas N]
//
// With -cluster-members the daemon joins a consistent-hash ring of
// peers (see internal/cluster): results are fetched from replicas
// before recomputing, campaign cells scatter to their ring owners, and
// a graceful drain hands unfinished journal records to a successor.
//
// Endpoints:
//
//	POST /v1/experiments  submit a job (429 + Retry-After when the queue is full)
//	POST /v1/chaos        submit a fault-injection campaign
//	GET  /v1/jobs/{id}    job status, result inline when done
//	GET  /healthz         liveness: 200 while the process serves HTTP, even
//	                      during drain and journal replay
//	GET  /readyz          readiness: 503 during journal replay and drain
//	GET  /metrics         Prometheus-style counters, gauges and histograms
//
// With -data-dir the daemon is crash-safe: accepted jobs are appended
// to a write-ahead journal before they are acked and results live in a
// disk-backed content-addressed store, so a SIGKILL loses nothing — on
// restart the journal is replayed (a torn final record is dropped, not
// fatal), interrupted jobs re-run (short-circuiting on results that
// already reached the store) and finished results are served without
// recomputation. /readyz gates until the replayed backlog is back in
// the queue.
//
// SIGINT/SIGTERM trigger a graceful drain: submissions are refused,
// queued and running jobs finish (bounded by -drain-timeout), the
// journal is compacted so the next start replays nothing, then the
// process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", runner.Default(), "worker pool size (jobs run concurrently; each job is sequential)")
	queue := flag.Int("queue", 64, "job queue bound; beyond it submissions get 429")
	cacheSize := flag.Int("cache", 128, "result cache entries (in-memory LRU tier)")
	jobTimeout := flag.Duration("job-timeout", 5*time.Minute, "per-job deadline; expired jobs are cancelled (504)")
	retention := flag.Int("job-retention", 256, "finished jobs kept pollable via GET /v1/jobs/{id}; older records are dropped (404)")
	retryAfter := flag.Duration("retry-after", time.Second, "backoff advice on 429 responses")
	drainTimeout := flag.Duration("drain-timeout", time.Minute, "graceful-shutdown bound before in-flight jobs are cancelled")
	dataDir := flag.String("data-dir", "", "durability root (result store + job journal); empty = memory only")
	fsync := flag.Bool("fsync", false, "fsync journal appends and store writes (power-loss durability at a latency cost)")
	storeMax := flag.Int64("store-max-bytes", 0, "durable store byte budget; cold entries beyond it are deleted (0 = 256 MiB)")
	clusterMembers := flag.String("cluster-members", "", "path to a JSON ring membership file ([{\"name\":...,\"url\":...}]); empty = single node")
	clusterSelf := flag.String("cluster-self", "", "this node's name in the membership file (required with -cluster-members)")
	clusterReplicas := flag.Int("cluster-replicas", 0, "ring replicas per key (0 = 2, clamped to the member count)")
	heartbeat := flag.Duration("cluster-heartbeat", time.Second, "peer liveness probe interval")
	flag.Parse()

	var cl *cluster.Cluster
	if *clusterMembers != "" {
		members, err := cluster.LoadMembers(*clusterMembers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "served: %v\n", err)
			os.Exit(1)
		}
		cl, err = cluster.New(cluster.Config{
			Self:              *clusterSelf,
			Members:           members,
			Replicas:          *clusterReplicas,
			HeartbeatInterval: *heartbeat,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "served: %v\n", err)
			os.Exit(1)
		}
	}

	s, err := serve.New(serve.Options{
		Workers:       *workers,
		QueueSize:     *queue,
		CacheSize:     *cacheSize,
		JobTimeout:    *jobTimeout,
		RetryAfter:    *retryAfter,
		JobRetention:  *retention,
		DataDir:       *dataDir,
		Fsync:         *fsync,
		StoreMaxBytes: *storeMax,
		Cluster:       cl,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "served: %v\n", err)
		os.Exit(1)
	}
	if cl != nil {
		cl.Start()
		defer cl.Stop()
		fmt.Fprintf(os.Stderr, "served: cluster node %q in a ring of %d (replicas %d)\n",
			cl.Self(), len(cl.Members()), cl.ReplicaCount())
	}
	srv := &http.Server{Addr: *addr, Handler: s.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "served: listening on %s (%d workers, queue %d, cache %d)\n",
		*addr, *workers, *queue, *cacheSize)
	if *dataDir != "" {
		reg := metrics.Default()
		fmt.Fprintf(os.Stderr, "served: durable under %s (fsync %v): replayed %d journaled job(s), %d torn tail(s) dropped\n",
			*dataDir, *fsync,
			reg.Counter("repro_journal_replayed_jobs_total").Value(),
			reg.Counter("repro_journal_torn_tail_total").Value())
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "served: %v — draining (bound %s)\n", sig, *drainTimeout)
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "served: %v\n", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "served: drain incomplete, in-flight jobs cancelled: %v\n", err)
	} else if *dataDir != "" {
		fmt.Fprintln(os.Stderr, "served: drain clean, journal compacted")
	}
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "served: http shutdown: %v\n", err)
	}
	fmt.Fprintln(os.Stderr, "served: bye")
}
