// Command served runs the simulation daemon: experiments as a service
// over HTTP, backed by a shared worker pool, a bounded job queue with
// backpressure and a content-addressed result cache (see
// internal/serve).
//
// Usage:
//
//	served [-addr :8080] [-workers N] [-queue N] [-cache N] [-job-timeout D] [-job-retention N]
//
// Endpoints:
//
//	POST /v1/experiments  submit a job (429 + Retry-After when the queue is full)
//	GET  /v1/jobs/{id}    job status, result inline when done
//	GET  /healthz         liveness (503 while draining)
//	GET  /metrics         Prometheus-style counters, gauges and histograms
//
// SIGINT/SIGTERM trigger a graceful drain: submissions are refused,
// queued and running jobs finish (bounded by -drain-timeout), then the
// process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/runner"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", runner.Default(), "worker pool size (jobs run concurrently; each job is sequential)")
	queue := flag.Int("queue", 64, "job queue bound; beyond it submissions get 429")
	cacheSize := flag.Int("cache", 128, "result cache entries (LRU)")
	jobTimeout := flag.Duration("job-timeout", 5*time.Minute, "per-job deadline; expired jobs are cancelled (504)")
	retention := flag.Int("job-retention", 256, "finished jobs kept pollable via GET /v1/jobs/{id}; older records are dropped (404)")
	retryAfter := flag.Duration("retry-after", time.Second, "backoff advice on 429 responses")
	drainTimeout := flag.Duration("drain-timeout", time.Minute, "graceful-shutdown bound before in-flight jobs are cancelled")
	flag.Parse()

	s := serve.New(serve.Options{
		Workers:      *workers,
		QueueSize:    *queue,
		CacheSize:    *cacheSize,
		JobTimeout:   *jobTimeout,
		RetryAfter:   *retryAfter,
		JobRetention: *retention,
	})
	srv := &http.Server{Addr: *addr, Handler: s.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "served: listening on %s (%d workers, queue %d, cache %d)\n",
		*addr, *workers, *queue, *cacheSize)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "served: %v — draining (bound %s)\n", sig, *drainTimeout)
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "served: %v\n", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "served: drain incomplete, in-flight jobs cancelled: %v\n", err)
	}
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "served: http shutdown: %v\n", err)
	}
	fmt.Fprintln(os.Stderr, "served: bye")
}
