// Command sweep explores the design space of the interposed-IRQ
// mechanism around the paper's platform: monitoring distance, subscriber
// slot length, interrupt load and bottom-handler WCET, each as a table
// of latency / interference / overhead responses.
//
// Usage:
//
//	sweep [-events N] [-which dmin|slot|load|cbh|all] [-workers N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/runner"
	"repro/internal/sweep"
)

func main() {
	events := flag.Int("events", 1500, "IRQs per point")
	which := flag.String("which", "all", "sweep to run: dmin, slot, load, cbh or all")
	workers := flag.Int("workers", runner.Default(), "worker pool size for the grid points (1 = sequential; output is identical)")
	flag.Parse()

	b := sweep.DefaultBaseline()
	b.Events = *events
	b.Workers = *workers

	run := func(name string, f func() (*sweep.Result, error)) {
		r, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %s: %v\n", name, err)
			os.Exit(1)
		}
		r.Write(os.Stdout)
		fmt.Println()
	}

	if *which == "dmin" || *which == "all" {
		run("dmin", func() (*sweep.Result, error) {
			return sweep.DMin(b, []int64{200, 500, 1000, 1344, 2000, 4000, 8000, 16000})
		})
	}
	if *which == "slot" || *which == "all" {
		run("slot", func() (*sweep.Result, error) {
			return sweep.SlotLength(b, []int64{1000, 2000, 4000, 6000, 9000, 12000})
		})
	}
	if *which == "load" || *which == "all" {
		run("load", func() (*sweep.Result, error) {
			return sweep.Load(b, []float64{0.005, 0.01, 0.02, 0.05, 0.10, 0.20})
		})
	}
	if *which == "cbh" || *which == "all" {
		run("cbh", func() (*sweep.Result, error) {
			return sweep.CBH(b, []int64{10, 30, 60, 120, 240})
		})
	}
}
