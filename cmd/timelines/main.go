// Command timelines regenerates the paper's timing diagrams (Figure 3:
// delayed interrupt handling; Figure 5: interposed interrupt handling)
// as Gantt charts produced by the hypervisor simulation itself.
//
// Usage:
//
//	timelines
package main

import (
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	if err := experiments.Timelines(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "timelines: %v\n", err)
		os.Exit(1)
	}
}
