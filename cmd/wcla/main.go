// Command wcla (worst-case latency analysis) evaluates the analytic side
// of the paper: the busy-window IRQ latency bounds of eqs. (11)–(12) for
// classic TDMA handling, eq. (16) for conforming interposed handling and
// the violating-IRQ case of §5.1, plus the interference bound of eq. (14),
// for a parameterised system.
//
// Usage:
//
//	wcla [-slot1 µs] [-slot2 µs] [-slothk µs] [-cth µs] [-cbh µs]
//	     [-period µs] [-jitter µs] [-dmin µs]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/arm"
	"repro/internal/curves"
	"repro/internal/simtime"
)

func main() {
	slot1 := flag.Int64("slot1", 6000, "subscriber partition slot length in µs")
	slot2 := flag.Int64("slot2", 6000, "second application partition slot length in µs")
	slothk := flag.Int64("slothk", 2000, "housekeeping partition slot length in µs")
	cth := flag.Int64("cth", 6, "top handler WCET in µs")
	cbh := flag.Int64("cbh", 30, "bottom handler WCET in µs")
	period := flag.Int64("period", 1344, "IRQ activation period in µs")
	jitter := flag.Int64("jitter", 200, "IRQ activation jitter in µs")
	dmin := flag.Int64("dmin", 1344, "monitoring condition dmin in µs")
	budget := flag.Int64("budget", 0, "derive the minimal dmin admitting this interference budget (µs per TDMA cycle); 0 = skip")
	flag.Parse()

	model := curves.PJD{
		Period: simtime.Micros(*period),
		Jitter: simtime.Micros(*jitter),
		DMin:   simtime.Micros(*dmin),
	}
	if err := model.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "wcla: %v\n", err)
		os.Exit(2)
	}
	irq := analysis.IRQ{
		Name:  "irq0",
		CTH:   simtime.Micros(*cth),
		CBH:   simtime.Micros(*cbh),
		Model: model,
	}
	tdma := analysis.TDMA{
		Cycle: simtime.Micros(*slot1 + *slot2 + *slothk),
		Slot:  simtime.Micros(*slot1),
	}
	costs := arm.DefaultCosts()

	cmp, err := analysis.Compare(irq, tdma, costs, nil, analysis.DefaultHorizon)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wcla: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("system: T_TDMA = %.0fµs, T_i = %.0fµs; C_TH = %.1fµs, C_BH = %.1fµs\n",
		tdma.Cycle.MicrosF(), tdma.Slot.MicrosF(), irq.CTH.MicrosF(), irq.CBH.MicrosF())
	fmt.Printf("activation model: P = %.0fµs, J = %.0fµs, dmin = %.0fµs\n",
		model.Period.MicrosF(), model.Jitter.MicrosF(), model.DMin.MicrosF())
	fmt.Printf("C'_BH = %.2fµs (eq. 13), C'_TH = %.2fµs (eq. 15)\n",
		costs.EffectiveBH(irq.CBH).MicrosF(), costs.EffectiveTH(irq.CTH).MicrosF())
	fmt.Println()
	fmt.Printf("worst-case IRQ latency, classic TDMA handling (eq. 12):   %9.1fµs (q* = %d)\n",
		cmp.Classic.WCRT.MicrosF(), cmp.Classic.CriticalQ)
	fmt.Printf("worst-case IRQ latency, interposed conforming (eq. 16):   %9.1fµs (q* = %d)\n",
		cmp.Interposed.WCRT.MicrosF(), cmp.Interposed.CriticalQ)
	fmt.Printf("worst-case IRQ latency, monitored but violating (§5.1):   %9.1fµs (q* = %d)\n",
		cmp.Violating.WCRT.MicrosF(), cmp.Violating.CriticalQ)
	if cmp.Interposed.WCRT > 0 {
		fmt.Printf("improvement (classic / interposed):                        %9.1f×\n",
			float64(cmp.Classic.WCRT)/float64(cmp.Interposed.WCRT))
	}
	fmt.Println()
	fmt.Println("interference bound on other partitions (eq. 14), I(Δt) = ⌈Δt/dmin⌉·C'_BH:")
	for _, dt := range []simtime.Duration{simtime.Micros(1000), simtime.Micros(6000), simtime.Micros(14000), simtime.Millis(100)} {
		bound := analysis.InterposedInterference(dt, model.DMin, costs, irq.CBH)
		fmt.Printf("  Δt = %8.0fµs: I ≤ %9.1fµs (%5.2f%% of the window)\n",
			dt.MicrosF(), bound.MicrosF(), 100*float64(bound)/float64(dt))
	}

	// Expected (average-case) latencies for uniformly arriving IRQs.
	avg := analysis.AverageModel{
		Cycle: tdma.Cycle,
		Slot:  tdma.Slot,
		CTH:   irq.CTH,
		CBH:   irq.CBH,
		Costs: costs,
	}
	if err := avg.Validate(); err == nil {
		fmt.Println()
		fmt.Println("expected average latency (uniform arrivals over the cycle):")
		fmt.Printf("  unmonitored (Fig. 6a regime):     %9.1fµs\n", avg.Unmonitored().MicrosF())
		fmt.Printf("  monitored, all conforming (6c):   %9.1fµs  (%.1f× improvement)\n",
			avg.Monitored(1).MicrosF(), avg.Improvement())
	}

	// Budget inversion: the smallest dmin admitting a per-cycle
	// interference budget (eq. 2 → eq. 14).
	if *budget > 0 {
		fmt.Println()
		got, err := analysis.MinDMinForBudget(tdma.Cycle, simtime.Micros(*budget), costs, irq.CBH)
		if err != nil {
			fmt.Printf("budget %dµs per cycle: %v\n", *budget, err)
		} else {
			fmt.Printf("budget %dµs per cycle of %.0fµs → minimal admissible dmin = %.1fµs\n",
				*budget, tdma.Cycle.MicrosF(), got.MicrosF())
		}
	}
}
