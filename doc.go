// Package repro is a from-scratch Go reproduction of
//
//	Beckert, Neukirchner, Ernst, Petters:
//	"Sufficient Temporal Independence and Improved Interrupt Latencies
//	 in a Real-Time Hypervisor", DAC 2014 (CISTER-TR-140303).
//
// The repository contains a cycle-accurate discrete-event simulation of a
// TDMA-scheduled real-time hypervisor (uC/OS-MMU style) with monitored
// interposed interrupt handling, the compositional busy-window analysis
// of the paper (eqs. 3–16), the δ⁻ activation monitor with self-learning
// (Appendix A), and harnesses that regenerate every figure and table of
// the evaluation. See README.md for an overview and DESIGN.md for the
// system inventory and per-experiment index.
package repro
