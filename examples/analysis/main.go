// Analysis: a worked walk-through of the paper's formal machinery
// (§4 and §5.1) on a two-source system — arrival curves, the q-event
// busy window of eq. (3), the busy-period bound Q of eq. (4), and the
// three latency bounds (classic eq. 12, interposed eq. 16, violating),
// followed by a simulation of the same system to show the bounds hold.
//
// Run with: go run ./examples/analysis
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/arm"
	"repro/internal/core"
	"repro/internal/curves"
	"repro/internal/hv"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/workload"
)

func main() {
	// The IRQ under analysis: period 3 ms, jitter 500 µs, dmin 1 ms.
	model := curves.PJD{
		Period: 3 * simtime.Millisecond,
		Jitter: simtime.Micros(500),
		DMin:   simtime.Millisecond,
	}
	irq := analysis.IRQ{
		Name:  "sensor",
		CTH:   simtime.Micros(8),
		CBH:   simtime.Micros(50),
		Model: model,
	}
	// One interfering source contributes top-handler load (eq. 9).
	other := analysis.IRQ{
		Name:  "uart",
		CTH:   simtime.Micros(4),
		CBH:   simtime.Micros(20),
		Model: curves.Sporadic{DMin: simtime.Micros(800)},
	}
	tdma := analysis.TDMA{Cycle: simtime.Micros(14000), Slot: simtime.Micros(6000)}
	costs := arm.DefaultCosts()

	fmt.Println("== Event model of the analysed source ==")
	fmt.Printf("%8s %12s    %10s %8s\n", "q", "δ⁻(q)", "Δt", "η⁺(Δt)")
	for q := int64(1); q <= 5; q++ {
		dt := simtime.Duration(q) * simtime.Millisecond
		fmt.Printf("%8d %10.0fµs    %8.0fµs %8d\n",
			q, model.DeltaMin(q).MicrosF(), dt.MicrosF(), model.EtaPlus(dt))
	}

	fmt.Println("\n== Busy windows, classic TDMA handling (eq. 11) ==")
	cmp, err := analysis.Compare(irq, tdma, costs, []analysis.IRQ{other}, analysis.DefaultHorizon)
	if err != nil {
		log.Fatalf("analysis: %v", err)
	}
	for q, r := range cmp.Classic.PerQ {
		fmt.Printf("  q=%d: W(q) − δ⁻(q) = %.1fµs\n", q+1, simtime.Duration(r).MicrosF())
	}
	fmt.Printf("busy period spans Q = %d activations (eq. 4)\n", cmp.Classic.Q)

	fmt.Println("\n== Worst-case latency bounds ==")
	fmt.Printf("classic TDMA handling (eq. 12):       %8.1fµs\n", cmp.Classic.WCRT.MicrosF())
	fmt.Printf("interposed, conforming (eq. 16):      %8.1fµs\n", cmp.Interposed.WCRT.MicrosF())
	fmt.Printf("monitored but violating (§5.1):       %8.1fµs\n", cmp.Violating.WCRT.MicrosF())

	// Simulate the same system and compare maxima against the bounds.
	const events = 3000
	gen := rng.New(11)
	var dist []simtime.Duration
	for i := 0; i < events; i++ {
		// Period with uniform jitter, respecting dmin — a concrete
		// trace admitted by the PJD model.
		d := model.Period - model.Jitter + simtime.Duration(gen.Int63n(int64(2*model.Jitter)))
		if d < model.DMin {
			d = model.DMin
		}
		dist = append(dist, d)
	}
	arrivals := workload.Timestamps(dist)
	uartArr := workload.Timestamps(workload.ExponentialClamped(rng.New(12), simtime.Micros(2000), simtime.Micros(800), events))

	for _, mode := range []hv.Mode{hv.Original, hv.Monitored} {
		sc := core.Scenario{
			Partitions: []core.PartitionSpec{
				{Name: "app1", Slot: simtime.Micros(6000)},
				{Name: "app2", Slot: simtime.Micros(6000)},
				{Name: "housekeeping", Slot: simtime.Micros(2000)},
			},
			Mode:   mode,
			Policy: hv.ResumeAcrossSlots,
			IRQs: []core.IRQSpec{
				{Name: "sensor", Partition: 0, CTH: irq.CTH, CBH: irq.CBH, Arrivals: arrivals, DMin: model.DMin},
				{Name: "uart", Partition: 1, CTH: other.CTH, CBH: other.CBH, Arrivals: uartArr, DMin: simtime.Micros(800)},
			},
		}
		res, err := core.Run(sc)
		if err != nil {
			log.Fatalf("analysis: %v", err)
		}
		var maxSensor simtime.Duration
		for _, rec := range res.Log.Records {
			if rec.Source == 0 && rec.Latency() > maxSensor {
				maxSensor = rec.Latency()
			}
		}
		bound := cmp.Classic.WCRT
		if mode == hv.Monitored {
			// With a conforming stream the violating bound never
			// applies, but the classic bound is still the safe
			// envelope for direct IRQs cut by their own slot end.
			bound = cmp.Violating.WCRT
		}
		fmt.Printf("\nsimulated (%s): sensor max latency %.1fµs — analytic envelope %.1fµs → %v\n",
			mode, maxSensor.MicrosF(), bound.MicrosF(), maxSensor <= bound)
	}
}
