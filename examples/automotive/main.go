// Automotive: the Appendix A use case as a library consumer would write
// it. A synthetic engine-ECU activation trace (crank-synchronous task,
// OSEK time-triggered tasks, CAN bursts) drives an IRQ source whose
// monitoring condition is *learned* from the first 10 % of the trace
// (Algorithm 1) and then bounded so the interposed load stays within a
// budget (Algorithm 2). The example sweeps the admitted load and prints
// how the average latency degrades gracefully toward classic TDMA
// handling — the Fig. 7 experiment in miniature.
//
// Run with: go run ./examples/automotive
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/curves"
	"repro/internal/hv"
	"repro/internal/simtime"
	"repro/internal/tracerec"
	"repro/internal/workload"
)

func main() {
	trace, err := workload.ECUTrace(workload.ECUConfig{Events: 6000, Seed: 99})
	if err != nil {
		log.Fatalf("automotive: %v", err)
	}
	const l = 5
	learnEvents := len(trace) / 10

	// What Algorithm 1 will converge to on the learning segment —
	// computed here only to derive the bounds, exactly as the paper
	// defines its δ⁻_b relative to the recorded function.
	recorded, err := curves.DeltaFromTrace(trace[:learnEvents], l)
	if err != nil {
		log.Fatalf("automotive: %v", err)
	}
	fmt.Printf("ECU trace: %d activations over %.1f s; learning on first %d\n",
		len(trace), simtime.Duration(trace[len(trace)-1]).MicrosF()/1e6, learnEvents)
	fmt.Printf("recorded δ⁻[%d] (µs):", l)
	for _, d := range recorded.Dist {
		fmt.Printf(" %.0f", d.MicrosF())
	}
	fmt.Println()
	fmt.Println()

	for _, admitted := range []float64{1.0, 0.5, 0.25, 0.125, 0.0625} {
		var bound *curves.Delta
		if admitted >= 1 {
			zeros := make([]simtime.Duration, l)
			bound, _ = curves.NewDelta(zeros) // never binds
		} else {
			bound = recorded.ScaleDistances(1 / admitted)
		}

		sc := core.Scenario{
			Partitions: []core.PartitionSpec{
				{Name: "powertrain", Slot: simtime.Micros(6000)},
				{Name: "infotainment", Slot: simtime.Micros(6000)},
				{Name: "housekeeping", Slot: simtime.Micros(2000)},
			},
			Mode:   hv.Monitored,
			Policy: hv.ResumeAcrossSlots,
			IRQs: []core.IRQSpec{{
				Name:      "can0",
				Partition: 0,
				CTH:       simtime.Micros(6),
				CBH:       simtime.Micros(30),
				Arrivals:  trace,
				Learn:     &core.LearnSpec{L: l, Events: learnEvents, Bound: bound},
			}},
		}
		res, err := core.Run(sc)
		if err != nil {
			log.Fatalf("automotive: %v", err)
		}

		// Average latency of the monitored (post-learning) phase.
		var sum float64
		var n int
		for i, rec := range res.Log.Records {
			if i >= learnEvents {
				sum += rec.Latency().MicrosF()
				n++
			}
		}
		s := res.Summary
		fmt.Printf("admitted load %6.2f%%: run-phase avg %7.1fµs  (interposed %4.1f%%, delayed %4.1f%%, grants %d)\n",
			100*admitted, sum/float64(n),
			100*s.Share(tracerec.Interposed), 100*s.Share(tracerec.Delayed),
			res.Stats.InterposedGrants)
	}
	fmt.Println()
	fmt.Println("Tighter bounds admit fewer interposed bottom handlers, trading latency")
	fmt.Println("for a smaller guaranteed interference on the other partitions (eq. 14).")
}
