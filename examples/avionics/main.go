// Avionics: an ARINC653/IMA-style configuration demonstrating the
// paper's core safety argument — *sufficient temporal independence*
// (eq. 2). A flight-control partition runs a hard real-time guest task
// set; a separate I/O partition subscribes a monitored network IRQ whose
// bottom handlers may be interposed into the flight-control partition's
// slots. The example measures how much the guest tasks actually suffer
// and checks it against the enforced interference bound of eq. (14).
//
// Run with: go run ./examples/avionics
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/arm"
	"repro/internal/core"
	"repro/internal/guestos"
	"repro/internal/hv"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/workload"
)

func buildGuest() *guestos.OS {
	g := guestos.New("flight-control")
	mustAdd := func(t guestos.Task) {
		if _, err := g.AddTask(t); err != nil {
			log.Fatalf("avionics: %v", err)
		}
	}
	// Priorities by declaration order (rate-monotonic).
	mustAdd(guestos.Task{Name: "attitude-loop", Period: 20 * simtime.Millisecond, WCET: 2 * simtime.Millisecond})
	mustAdd(guestos.Task{Name: "actuator-cmd", Period: 40 * simtime.Millisecond, WCET: 3 * simtime.Millisecond})
	mustAdd(guestos.Task{Name: "nav-filter", Period: 80 * simtime.Millisecond, WCET: 5 * simtime.Millisecond})
	mustAdd(guestos.Task{Name: "background", Period: 0}) // soaks idle time
	return g
}

func main() {
	const events = 4000
	dmin := simtime.Micros(2000)
	arrivals := workload.Timestamps(workload.ExponentialClamped(rng.New(3), simtime.Micros(2500), dmin, events))
	costs := arm.DefaultCosts()
	cbh := simtime.Micros(40)

	run := func(mode hv.Mode) (*core.Result, *guestos.OS) {
		guest := buildGuest()
		sc := core.Scenario{
			Partitions: []core.PartitionSpec{
				{Name: "flight-control", Slot: simtime.Micros(10000), Guest: guest},
				{Name: "io", Slot: simtime.Micros(5000)},
				{Name: "maintenance", Slot: simtime.Micros(5000)},
			},
			Mode:   mode,
			Policy: hv.ResumeAcrossSlots,
			IRQs: []core.IRQSpec{{
				Name:      "afdx-rx",
				Partition: 1, // the I/O partition owns the bottom handler
				CTH:       simtime.Micros(8),
				CBH:       cbh,
				Arrivals:  arrivals,
				DMin:      dmin,
			}},
		}
		res, err := core.Run(sc)
		if err != nil {
			log.Fatalf("avionics: %v", err)
		}
		if err := guest.SanityCheck(); err != nil {
			log.Fatalf("avionics: guest invariants: %v", err)
		}
		return res, guest
	}

	fmt.Println("IMA configuration: flight-control (10 ms slot) | io (5 ms) | maintenance (5 ms)")
	fmt.Printf("monitored AFDX IRQ → io partition, dmin = %.0fµs, C_BH = %.0fµs\n\n", dmin.MicrosF(), cbh.MicrosF())

	resOrig, guestOrig := run(hv.Original)
	resMon, guestMon := run(hv.Monitored)

	fmt.Printf("%-15s %14s %14s %14s\n", "guest task", "WCRT isolated", "WCRT interposed", "delta")
	for p := 0; p < guestOrig.Tasks()-1; p++ {
		a, b := guestOrig.Stats(p), guestMon.Stats(p)
		fmt.Printf("task %-10d %12.1fµs %12.1fµs %+12.1fµs\n",
			p, a.WCRT.MicrosF(), b.WCRT.MicrosF(), (b.WCRT - a.WCRT).MicrosF())
	}

	fc := resMon.Partitions[0]
	fmt.Printf("\nIRQ latency: original mean %.1fµs → monitored mean %.1fµs\n",
		resOrig.Summary.Mean.MicrosF(), resMon.Summary.Mean.MicrosF())
	fmt.Printf("flight-control time stolen by interposed handlers: %.1fµs over %.1fms\n",
		fc.StolenInterposed.MicrosF(), resMon.Duration.MicrosF()/1000)

	bound := analysis.InterposedInterference(resMon.Duration, dmin, costs, cbh)
	fmt.Printf("eq. (14) bound over the same window:               %.1fµs\n", bound.MicrosF())
	if fc.StolenInterposed <= bound {
		fmt.Println("→ measured interference is within the enforced bound: sufficient")
		fmt.Println("  temporal independence holds while IRQ latency improves.")
	} else {
		fmt.Println("→ BOUND VIOLATED — this would be a bug in the hypervisor model.")
	}
}
