// Overrun: failure injection against the safety mechanism. A misbehaving
// driver's bottom handler overruns its declared WCET on every invocation.
// Under interposed handling the hypervisor enforces the C_BH budget (§5:
// the scheduler is called after at most C_BHi), so the victim partitions
// lose no more than the eq. (14) bound computed from the *declared* WCET
// — sufficient temporal independence survives the fault, while the
// misbehaving source only hurts itself (its remnants finish in its own
// slot).
//
// Run with: go run ./examples/overrun
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/arm"
	"repro/internal/core"
	"repro/internal/hv"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/workload"
)

func main() {
	const events = 2500
	dmin := simtime.Micros(2000)
	cbh := simtime.Micros(40) // declared WCET
	arrivals := workload.Timestamps(workload.ExponentialClamped(rng.New(13), simtime.Micros(2500), dmin, events))
	costs := arm.DefaultCosts()

	fmt.Println("Failure injection: every bottom handler overruns its declared WCET.")
	fmt.Printf("declared C_BH = %.0fµs, dmin = %.0fµs → eq.14 budget C'_BH = %.1fµs per dmin\n\n",
		cbh.MicrosF(), dmin.MicrosF(), costs.EffectiveBH(cbh).MicrosF())

	fmt.Printf("%-14s %12s %12s %16s %16s %10s\n",
		"actual BH", "mean µs", "max µs", "victim loss µs", "eq.14 bound µs", "cuts")
	for _, factor := range []float64{1.0, 1.5, 3.0, 8.0} {
		actual := make([]simtime.Duration, events)
		for i := range actual {
			actual[i] = simtime.FromMicrosF(cbh.MicrosF() * factor)
		}
		sc := core.Scenario{
			Partitions: []core.PartitionSpec{
				{Name: "driver", Slot: simtime.Micros(6000)},
				{Name: "control", Slot: simtime.Micros(6000)},
				{Name: "housekeeping", Slot: simtime.Micros(2000)},
			},
			Mode:   hv.Monitored,
			Policy: hv.ResumeAcrossSlots,
			IRQs: []core.IRQSpec{{
				Name: "nic", Partition: 0,
				CTH: simtime.Micros(6), CBH: cbh,
				ActualBH: actual,
				Arrivals: arrivals,
				DMin:     dmin,
			}},
		}
		res, err := core.Run(sc)
		if err != nil {
			log.Fatalf("overrun: %v", err)
		}
		// The worst loss any victim partition suffered.
		var victimLoss simtime.Duration
		for i, p := range res.Partitions {
			if i == 0 {
				continue
			}
			if p.StolenInterposed > victimLoss {
				victimLoss = p.StolenInterposed
			}
		}
		bound := analysis.InterposedInterference(res.Duration, dmin, costs, cbh+sc.CostModel().QueuePop)
		status := "within bound"
		if victimLoss > bound {
			status = "BOUND VIOLATED"
		}
		fmt.Printf("%13.1fx %12.1f %12.1f %16.1f %16.1f %10d  %s\n",
			factor, res.Summary.Mean.MicrosF(), res.Summary.Max.MicrosF(),
			victimLoss.MicrosF(), bound.MicrosF(), res.Stats.BudgetCuts, status)
	}
	fmt.Println()
	fmt.Println("The overrunning driver's own latency degrades (its remnants wait for its")
	fmt.Println("slot), but the other partitions' interference stays under the enforced")
	fmt.Println("budget regardless of how badly the handler misbehaves.")
}
