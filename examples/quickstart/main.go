// Quickstart: build the paper's three-partition system, subscribe one
// timer IRQ source to partition 1, and compare the three handling modes —
// original TDMA handling (Fig. 4a), monitored interposed handling
// (Fig. 4b), and monitored handling with a conforming arrival stream —
// on the same workload.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/hv"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/workload"
)

func main() {
	// The §6.1 platform: two 6000 µs application partitions plus a
	// 2000 µs housekeeping partition → T_TDMA = 14000 µs.
	partitions := []core.PartitionSpec{
		{Name: "app1", Slot: simtime.Micros(6000)},
		{Name: "app2", Slot: simtime.Micros(6000)},
		{Name: "housekeeping", Slot: simtime.Micros(2000)},
	}

	// One timer IRQ source: exponential interarrival with mean
	// λ = 1344 µs (≈ 10 % bottom-handler load), 5000 events.
	const events = 5000
	lambda := simtime.Micros(1344)
	src := rng.New(7)
	arrivals := workload.Timestamps(workload.Exponential(src, lambda, events))
	clamped := workload.Timestamps(workload.ExponentialClamped(rng.New(7), lambda, lambda, events))

	run := func(label string, mode hv.Mode, dmin simtime.Duration, arr []simtime.Time) {
		sc := core.Scenario{
			Partitions: partitions,
			Mode:       mode,
			Policy:     hv.ResumeAcrossSlots,
			IRQs: []core.IRQSpec{{
				Name:      "timer0",
				Partition: 0, // app1 processes the bottom handler
				CTH:       simtime.Micros(6),
				CBH:       simtime.Micros(30),
				Arrivals:  arr,
				DMin:      dmin,
			}},
		}
		res, err := core.Run(sc)
		if err != nil {
			log.Fatalf("quickstart: %v", err)
		}
		fmt.Printf("%-42s ", label+":")
		res.Summary.WriteSummary(os.Stdout)
	}

	fmt.Println("Interrupt latency through a TDMA real-time hypervisor (DAC'14 reproduction)")
	fmt.Println()
	run("original handling (Fig. 4a)", hv.Original, 0, arrivals)
	run("monitored, arbitrary arrivals (Fig. 4b)", hv.Monitored, lambda, arrivals)
	run("monitored, arrivals conform to dmin", hv.Monitored, lambda, clamped)
	fmt.Println()
	fmt.Println("Direct IRQs hit their own slot; interposed IRQs run in foreign slots under")
	fmt.Println("the dmin monitoring condition; delayed IRQs wait for their TDMA slot.")
}
