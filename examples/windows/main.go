// Windows: an ARINC653-style major frame with *multiple windows per
// partition* and a *shared* IRQ — the two generalisations beyond the
// paper's single-slot-per-partition setup. It compares three ways to get
// low interrupt latency for a control partition:
//
//  1. the paper's baseline: one slot per partition, delayed handling,
//  2. the classic systems answer: split the partition's slot into two
//     windows per cycle (halving the worst-case wait, but doubling
//     partition switches for *everyone*),
//  3. the paper's answer: keep the long slots and interpose under a
//     dmin monitor (paying only per actually-arriving IRQ).
//
// Run with: go run ./examples/windows
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
	"repro/internal/curves"
	"repro/internal/hv"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/workload"
)

func main() {
	const events = 3000
	dmin := simtime.Micros(2000)
	arrivals := workload.Timestamps(workload.ExponentialClamped(rng.New(5), simtime.Micros(2400), dmin, events))
	// A diagnostics IRQ every 50 ms that both application partitions
	// must observe (shared).
	diag := workload.PeriodicJitter(rng.New(6), 50*simtime.Millisecond, simtime.Millisecond, simtime.Micros(700), events/20)

	type variant struct {
		name    string
		windows []core.WindowSpec
		mode    hv.Mode
	}
	variants := []variant{
		{"baseline: single slots, delayed handling", nil, hv.Original},
		{"split windows (2 per cycle), delayed handling", []core.WindowSpec{
			{Partition: 0, Length: simtime.Micros(3000)},
			{Partition: 1, Length: simtime.Micros(3000)},
			{Partition: 2, Length: simtime.Micros(1000)},
			{Partition: 0, Length: simtime.Micros(3000)},
			{Partition: 1, Length: simtime.Micros(3000)},
			{Partition: 2, Length: simtime.Micros(1000)},
		}, hv.Original},
		{"single slots, interposed handling (the paper)", nil, hv.Monitored},
	}

	model := curves.Sporadic{DMin: dmin}
	fmt.Println("Control IRQ → partition 0; shared diagnostics IRQ → partitions 0 and 1.")
	fmt.Printf("%-48s %10s %10s %12s %10s\n", "variant", "mean µs", "p99 µs", "wc-bound µs", "ctx/cycle")
	for _, v := range variants {
		sc := core.Scenario{
			Partitions: []core.PartitionSpec{
				{Name: "control", Slot: simtime.Micros(6000)},
				{Name: "telemetry", Slot: simtime.Micros(6000)},
				{Name: "housekeeping", Slot: simtime.Micros(2000)},
			},
			Windows: v.windows,
			Mode:    v.mode,
			Policy:  hv.ResumeAcrossSlots,
			IRQs: []core.IRQSpec{
				{
					Name: "control-irq", Partition: 0,
					CTH: simtime.Micros(6), CBH: simtime.Micros(30),
					Arrivals: arrivals,
					DMin:     dmin,
				},
				{
					Name: "diag", Partition: 0, SharedWith: []int{1},
					CTH: simtime.Micros(4), CBH: simtime.Micros(10),
					Arrivals: diag,
				},
			},
		}
		res, err := core.Run(sc)
		if err != nil {
			log.Fatalf("windows: %v", err)
		}
		// Latency stats of the control IRQ only.
		var sum float64
		var n int
		var lats []simtime.Duration
		for _, rec := range res.Log.Records {
			if rec.Source == 0 {
				sum += rec.Latency().MicrosF()
				lats = append(lats, rec.Latency())
				n++
			}
		}
		p99 := percentile(lats, 0.99)

		// Analytic worst-case bound for the variant.
		var bound simtime.Duration
		if v.mode == hv.Monitored {
			cmp, err := core.Analyze(sc, 0, model)
			if err != nil {
				log.Fatalf("windows: %v", err)
			}
			bound = cmp.Violating.WCRT // safe envelope incl. violations
		} else {
			r, err := core.AnalyzeSchedule(sc, 0, model)
			if err != nil {
				log.Fatalf("windows: %v", err)
			}
			bound = r.WCRT
		}
		cycles := float64(res.Duration) / float64(sc.CycleLength())
		fmt.Printf("%-48s %10.1f %10.1f %12.1f %10.1f\n",
			v.name, sum/float64(n), p99.MicrosF(), bound.MicrosF(),
			float64(res.Stats.CtxSwitches)/cycles)
	}
	fmt.Println()
	fmt.Println("Splitting windows helps the worst case but taxes every cycle with extra")
	fmt.Println("switches; interposing pays per IRQ and wins on both mean and p99.")
}

func percentile(lats []simtime.Duration, p float64) simtime.Duration {
	if len(lats) == 0 {
		return 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	idx := int(p*float64(len(lats))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(lats) {
		idx = len(lats) - 1
	}
	return lats[idx]
}
