module repro

// Intentionally dependency-free: the build container has no module
// proxy, so golang.org/x/tools (which cmd/reprolint would otherwise
// use for go/analysis + go/packages) cannot be pinned here;
// internal/lint/analysis and internal/lint/load reimplement the
// minimal surface from the stdlib instead (DESIGN.md §10).
// scripts/check.sh gates `go mod tidy` drift so any future dependency
// must arrive pinned with a committed go.sum.

go 1.22
