// Package analysis implements the worst-case timing analysis of §4 and
// §5.1 of the paper: busy-window response-time analysis (Lehoczky 1990,
// Schliecker et al. 2008) specialised to TDMA-scheduled hypervisor
// partitions, the worst-case IRQ latency of the classic delayed handling
// scheme (eqs. 6–12), the interposed scheme (eqs. 13–16), and the bounded
// interference interposed handling imposes on other partitions (eq. 14).
//
// All functions are pure: they consume event models (internal/curves) and
// WCET constants and produce bounds. The simulation (internal/hv) is the
// independent check — integration tests assert that simulated latencies
// and interference never exceed the bounds computed here.
package analysis

import (
	"errors"
	"fmt"

	"repro/internal/arm"
	"repro/internal/curves"
	"repro/internal/simtime"
)

// ErrUnbounded is returned when a busy-window iteration does not converge
// below the horizon, i.e. the configuration is overloaded and no finite
// bound exists.
var ErrUnbounded = errors.New("analysis: busy window does not converge (overload)")

// DefaultHorizon bounds busy-window fixed-point iteration. One hour of
// simulated time is far beyond any busy window of the paper's systems.
const DefaultHorizon = simtime.Duration(3600) * simtime.Second

// maxQ caps the number of activations examined when searching the
// busy period (eq. 4).
const maxQ = 1 << 16

// Interference maps a window length Δt to an upper bound on the
// processing time stolen from the analysed entity within that window.
type Interference func(dt simtime.Duration) simtime.Duration

// BusyWindow computes the q-event busy time W(q) of eq. (3): the fixed
// point of
//
//	W = q·C + I(W)
//
// starting from W = q·C. It returns ErrUnbounded when the iteration
// exceeds horizon.
func BusyWindow(q int64, c simtime.Duration, inf Interference, horizon simtime.Duration) (simtime.Duration, error) {
	if q <= 0 {
		return 0, fmt.Errorf("analysis: busy window for non-positive q=%d", q)
	}
	w := simtime.Duration(q) * c
	for {
		next := simtime.Duration(q)*c + inf(w)
		if next < w {
			return 0, fmt.Errorf("analysis: interference not monotonic at W=%v", w)
		}
		if next == w {
			return w, nil
		}
		if next > horizon {
			return 0, ErrUnbounded
		}
		w = next
	}
}

// ResponseTimeResult carries the outcome of a busy-period analysis.
type ResponseTimeResult struct {
	// WCRT is the worst-case response time R of eq. (5) / eq. (12).
	WCRT simtime.Duration
	// Q is the number of activations in the longest busy period
	// (eq. 4).
	Q int64
	// PerQ holds W(q) − δ⁻(q) for q = 1..Q; PerQ[Q-1] is the candidate
	// of the last examined activation. Useful for plotting and tests.
	PerQ []simtime.Duration
	// CriticalQ is the q at which the WCRT is attained.
	CriticalQ int64
}

// ResponseTime runs the full multiple-activation analysis of eqs. (3)–(5):
// it extends q while the q-th activation arrives before the (q−1)-event
// busy window ends (eq. 4) and maximises W(q) − δ⁻(q) (eq. 5).
func ResponseTime(c simtime.Duration, model curves.Model, inf Interference, horizon simtime.Duration) (ResponseTimeResult, error) {
	var res ResponseTimeResult
	var prevW simtime.Duration
	for q := int64(1); q <= maxQ; q++ {
		if q > 1 && model.DeltaMin(q) > prevW {
			// eq. (4): activation q arrives after the previous busy
			// window closed; the busy period has ended.
			break
		}
		w, err := BusyWindow(q, c, inf, horizon)
		if err != nil {
			return res, err
		}
		r := w - model.DeltaMin(q)
		res.PerQ = append(res.PerQ, r)
		if r > res.WCRT {
			res.WCRT = r
			res.CriticalQ = q
		}
		res.Q = q
		prevW = w
	}
	if res.Q == maxQ {
		return res, ErrUnbounded
	}
	return res, nil
}

// TDMA describes the slot assignment relevant to one IRQ source: the
// total cycle length and the length of the slot in which the source's
// bottom handler may execute.
type TDMA struct {
	Cycle simtime.Duration // T_TDMA: sum of all slot lengths
	Slot  simtime.Duration // T_i: the subscriber partition's slot
	// SlotEntry is the context-switch overhead paid at the start of
	// the subscriber's slot before any bottom handler runs. Eq. (8)
	// states its TDMA term includes context-switch overhead (citing
	// Tindell & Clark); modelling it explicitly keeps T_i the nominal
	// slot length. Zero reproduces the bare eq. (8).
	SlotEntry simtime.Duration
}

// Validate reports whether the TDMA parameters are consistent. The
// returned error wraps ErrInvalidSystem.
func (t TDMA) Validate() error {
	if t.Cycle <= 0 {
		return invalidf(ReasonBadTDMA, "tdma", "cycle %v must be positive", t.Cycle)
	}
	if t.Slot <= 0 || t.Slot > t.Cycle {
		return invalidf(ReasonBadTDMA, "tdma", "slot %v must be in (0, cycle %v]", t.Slot, t.Cycle)
	}
	if t.SlotEntry < 0 || t.SlotEntry >= t.Slot {
		return invalidf(ReasonBadTDMA, "tdma", "entry overhead %v does not fit slot %v", t.SlotEntry, t.Slot)
	}
	return nil
}

// Interference returns I_TDMA(Δt) of eq. (8): the worst-case processing
// time lost to other partitions (including context-switch overhead)
// within any window of length Δt, following Tindell & Clark's holistic
// TDMA bound: ⌈Δt/T_TDMA⌉ · (T_TDMA − T_i + C_entry).
func (t TDMA) Interference(dt simtime.Duration) simtime.Duration {
	return simtime.Duration(simtime.CeilDiv(dt, t.Cycle)) * (t.Cycle - t.Slot + t.SlotEntry)
}

// IRQ describes one interrupt source for the latency analysis.
type IRQ struct {
	Name string
	// CTH is the top-handler WCET C_TH (hypervisor context).
	CTH simtime.Duration
	// CBH is the bottom-handler WCET C_BH (partition context).
	CBH simtime.Duration
	// Model bounds the source's activations (η⁺ / δ⁻).
	Model curves.Model
}

// Cost returns C_i = C_TH + C_BH of eq. (6).
func (i IRQ) Cost() simtime.Duration { return i.CTH + i.CBH }

// topHandlerInterference returns I_THj(Δt) of eq. (9): interference from
// the top handlers of other IRQ sources.
func topHandlerInterference(others []IRQ, dt simtime.Duration) simtime.Duration {
	var sum simtime.Duration
	for _, o := range others {
		sum += simtime.Duration(o.Model.EtaPlus(dt)) * o.CTH
	}
	return sum
}

// ClassicLatency computes the worst-case IRQ latency of the unmodified
// TDMA handling scheme, eqs. (11)–(12):
//
//	W(q) = q·C_BH + η⁺(W)·C_TH + ⌈W/T⌉·(T−T_i) + Σ_j η⁺_j(W)·C_THj
//	R    = max_q ( W(q) − δ⁻(q) )
//
// others lists every interfering IRQ source (top handlers only — their
// bottom handlers run in their own slots, which are already covered by
// the TDMA interference term).
func ClassicLatency(irq IRQ, tdma TDMA, others []IRQ, horizon simtime.Duration) (ResponseTimeResult, error) {
	return ClassicLatencyUnder(irq, tdma, others, nil, horizon)
}

// ClassicLatencyUnder generalises ClassicLatency with an additional
// interference term folded into the busy window — typically the
// eq. (14) budget of foreign interposed bottom handlers stealing from
// the subscriber's own slots, which the plain eq. (11) TDMA term does
// not cover. This is the victim-side bound of the temporal-independence
// oracle (internal/hv): the victim's measured latency under a monitored
// adversary must stay below it. extra == nil reduces to ClassicLatency.
func ClassicLatencyUnder(irq IRQ, tdma TDMA, others []IRQ, extra Interference, horizon simtime.Duration) (ResponseTimeResult, error) {
	if err := ValidateSystem(irq, others); err != nil {
		return ResponseTimeResult{}, err
	}
	if err := tdma.Validate(); err != nil {
		return ResponseTimeResult{}, err
	}
	inf := func(dt simtime.Duration) simtime.Duration {
		own := simtime.Duration(irq.Model.EtaPlus(dt)) * irq.CTH
		total := own + tdma.Interference(dt) + topHandlerInterference(others, dt)
		if extra != nil {
			total += extra(dt)
		}
		return total
	}
	return ResponseTime(irq.CBH, irq.Model, inf, horizon)
}

// InterposedLatency computes the worst-case IRQ latency for interrupts
// that satisfy the monitoring condition under the modified top handler,
// eq. (16):
//
//	W(q) = q·C'_BH + η⁺(W)·C'_TH + Σ_j η⁺_j(W)·C_THj
//
// with C'_BH = C_BH + C_sched + 2·C_ctx (eq. 13) and C'_TH = C_TH + C_Mon
// (eq. 15). The TDMA interference term of eq. (11) is dropped: a
// conforming IRQ never waits for its slot.
func InterposedLatency(irq IRQ, costs arm.CostModel, others []IRQ, horizon simtime.Duration) (ResponseTimeResult, error) {
	if err := ValidateSystem(irq, others); err != nil {
		return ResponseTimeResult{}, err
	}
	cbh := costs.EffectiveBH(irq.CBH)
	cth := costs.EffectiveTH(irq.CTH)
	inf := func(dt simtime.Duration) simtime.Duration {
		own := simtime.Duration(irq.Model.EtaPlus(dt)) * cth
		return own + topHandlerInterference(others, dt)
	}
	return ResponseTime(cbh, irq.Model, inf, horizon)
}

// ViolatingLatency computes the worst-case latency for interrupts that
// violate the monitoring condition under the modified top handler
// (§5.1 case 2): delayed handling as in eq. (11) but with the extended
// top-handler WCET C'_TH = C_TH + C_Mon, since the monitoring function
// runs for every foreign-slot IRQ regardless of the verdict.
func ViolatingLatency(irq IRQ, tdma TDMA, costs arm.CostModel, others []IRQ, horizon simtime.Duration) (ResponseTimeResult, error) {
	if err := ValidateSystem(irq, others); err != nil {
		return ResponseTimeResult{}, err
	}
	if err := tdma.Validate(); err != nil {
		return ResponseTimeResult{}, err
	}
	cth := costs.EffectiveTH(irq.CTH)
	inf := func(dt simtime.Duration) simtime.Duration {
		own := simtime.Duration(irq.Model.EtaPlus(dt)) * cth
		return own + tdma.Interference(dt) + topHandlerInterference(others, dt)
	}
	return ResponseTime(irq.CBH, irq.Model, inf, horizon)
}

// InterposedInterference returns I_interposed(Δt) of eq. (14): the
// worst-case processing time interposed bottom handlers of a source
// monitored with minimum distance dmin can steal from another partition
// within any window of length Δt:
//
//	I(Δt) = ⌈Δt/dmin⌉ · C'_BH
func InterposedInterference(dt, dmin simtime.Duration, costs arm.CostModel, cbh simtime.Duration) simtime.Duration {
	if dmin <= 0 {
		panic("analysis: InterposedInterference with non-positive dmin")
	}
	return simtime.Duration(simtime.CeilDiv(dt, dmin)) * costs.EffectiveBH(cbh)
}

// InterposedInterferenceDelta generalises eq. (14) to an l-entry δ⁻
// monitoring condition (Appendix A): at most η⁺_cond(Δt) conforming
// activations fit in Δt, each charging C'_BH.
func InterposedInterferenceDelta(dt simtime.Duration, cond *curves.Delta, costs arm.CostModel, cbh simtime.Duration) simtime.Duration {
	return simtime.Duration(cond.EtaPlus(dt)) * costs.EffectiveBH(cbh)
}

// PartitionBudgetCheck verifies sufficient temporal independence per
// eq. (2): over the window dt, the summed interference bound of all
// monitored sources must not exceed the allowance budget. It returns the
// total interference and whether it is within budget.
func PartitionBudgetCheck(dt simtime.Duration, budget simtime.Duration, costs arm.CostModel, sources []IRQSourceBound) (simtime.Duration, bool) {
	var total simtime.Duration
	for _, s := range sources {
		total += InterposedInterferenceDelta(dt, s.Cond, costs, s.CBH)
	}
	return total, total <= budget
}

// IRQSourceBound pairs a monitored source's bottom-handler WCET with its
// enforced monitoring condition, for partition budget checks.
type IRQSourceBound struct {
	Name string
	CBH  simtime.Duration
	Cond *curves.Delta
}

// MinDMinForBudget inverts eq. (14): it returns the smallest monitoring
// distance dmin such that interposed interference within any window of
// length dt stays at or below budget. This is how a system designer
// derives the monitoring condition from a partition's interference
// allowance (eq. 2). It returns an error when even a single grant per
// window (dmin ≥ dt) exceeds the budget.
func MinDMinForBudget(dt, budget simtime.Duration, costs arm.CostModel, cbh simtime.Duration) (simtime.Duration, error) {
	cbhEff := costs.EffectiveBH(cbh)
	if cbhEff <= 0 {
		return 0, errors.New("analysis: non-positive effective bottom-handler cost")
	}
	if budget < cbhEff {
		return 0, fmt.Errorf("analysis: budget %v cannot admit even one grant of %v per window", budget, cbhEff)
	}
	// ⌈dt/dmin⌉ ≤ ⌊budget/C'_BH⌋ =: k ⟺ dmin ≥ ⌈dt/k⌉.
	k := int64(budget / cbhEff)
	dmin := simtime.Duration(simtime.CeilDiv(dt, simtime.Duration(k)))
	if dmin < 1 {
		dmin = 1
	}
	return dmin, nil
}

// Comparison summarises the three latency bounds for one source — the
// quantity the evaluation (§6.1) validates by measurement.
type Comparison struct {
	Classic    ResponseTimeResult // unmodified handling, eq. (12)
	Interposed ResponseTimeResult // conforming IRQs, eq. (16)
	Violating  ResponseTimeResult // non-conforming IRQs under monitoring
}

// Compare computes all three bounds for a source in one call.
func Compare(irq IRQ, tdma TDMA, costs arm.CostModel, others []IRQ, horizon simtime.Duration) (Comparison, error) {
	var cmp Comparison
	var err error
	if cmp.Classic, err = ClassicLatency(irq, tdma, others, horizon); err != nil {
		return cmp, fmt.Errorf("classic: %w", err)
	}
	if cmp.Interposed, err = InterposedLatency(irq, costs, others, horizon); err != nil {
		return cmp, fmt.Errorf("interposed: %w", err)
	}
	if cmp.Violating, err = ViolatingLatency(irq, tdma, costs, others, horizon); err != nil {
		return cmp, fmt.Errorf("violating: %w", err)
	}
	return cmp, nil
}
