package analysis

import (
	"errors"
	"testing"

	"repro/internal/arm"
	"repro/internal/curves"
	"repro/internal/simtime"
)

func us(v int64) simtime.Duration { return simtime.Micros(v) }

func TestBusyWindowNoInterference(t *testing.T) {
	none := func(simtime.Duration) simtime.Duration { return 0 }
	w, err := BusyWindow(3, us(10), none, DefaultHorizon)
	if err != nil {
		t.Fatal(err)
	}
	if w != us(30) {
		t.Fatalf("W(3) = %v, want 30µs", w)
	}
}

func TestBusyWindowHandComputed(t *testing.T) {
	// Task C = 10µs interfered by a periodic 100µs source with C = 20µs
	// (closed-window η⁺ = ⌊Δt/P⌋+1):
	// W = 10 + 20·η⁺(W): W₀=10 → 10+20·1=30 → 10+20·1=30. Fixed point 30.
	other := curves.Periodic{Period: us(100)}
	inf := func(dt simtime.Duration) simtime.Duration {
		return simtime.Duration(other.EtaPlus(dt)) * us(20)
	}
	w, err := BusyWindow(1, us(10), inf, DefaultHorizon)
	if err != nil {
		t.Fatal(err)
	}
	if w != us(30) {
		t.Fatalf("W(1) = %v, want 30µs", w)
	}
	// q=4: W = 40 + 20·η⁺(W): 40+20=60 → 40+20=60. η⁺(60)=1 → 60.
	w, err = BusyWindow(4, us(10), inf, DefaultHorizon)
	if err != nil {
		t.Fatal(err)
	}
	if w != us(60) {
		t.Fatalf("W(4) = %v, want 60µs", w)
	}
}

func TestBusyWindowOverload(t *testing.T) {
	// Interferer consumes more than the full processor.
	inf := func(dt simtime.Duration) simtime.Duration { return dt + us(1) }
	_, err := BusyWindow(1, us(10), inf, us(100000))
	if !errors.Is(err, ErrUnbounded) {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
}

func TestBusyWindowRejectsBadQ(t *testing.T) {
	none := func(simtime.Duration) simtime.Duration { return 0 }
	if _, err := BusyWindow(0, us(10), none, DefaultHorizon); err == nil {
		t.Fatal("q=0 accepted")
	}
}

func TestResponseTimeSingleActivation(t *testing.T) {
	m := curves.Sporadic{DMin: us(1000)}
	none := func(simtime.Duration) simtime.Duration { return 0 }
	res, err := ResponseTime(us(10), m, none, DefaultHorizon)
	if err != nil {
		t.Fatal(err)
	}
	if res.WCRT != us(10) || res.Q != 1 {
		t.Fatalf("WCRT = %v, Q = %d", res.WCRT, res.Q)
	}
}

func TestResponseTimeBusyPeriodExtension(t *testing.T) {
	// Dense arrivals (dmin = 5µs) with C = 10µs: each busy window
	// grows faster than arrivals separate; with an eventually idle
	// system the busy period must still terminate because δ⁻ grows
	// linearly at 5µs… it does not (C > dmin ⇒ overload).
	m := curves.Sporadic{DMin: us(5)}
	none := func(simtime.Duration) simtime.Duration { return 0 }
	_, err := ResponseTime(us(10), m, none, us(1000000))
	if !errors.Is(err, ErrUnbounded) {
		t.Fatalf("overloaded source: err = %v, want ErrUnbounded", err)
	}
	// C < dmin converges with Q small.
	res, err := ResponseTime(us(3), m, none, DefaultHorizon)
	if err != nil {
		t.Fatal(err)
	}
	if res.WCRT != us(3) {
		t.Fatalf("WCRT = %v, want 3µs", res.WCRT)
	}
}

func TestTDMAInterference(t *testing.T) {
	tdma := TDMA{Cycle: us(14000), Slot: us(6000)}
	if err := tdma.Validate(); err != nil {
		t.Fatal(err)
	}
	// eq. (8): ⌈Δt/T⌉·(T−Ti).
	cases := []struct {
		dt   simtime.Duration
		want simtime.Duration
	}{
		{0, 0},
		{us(1), us(8000)},
		{us(14000), us(8000)},
		{us(14001), us(16000)},
		{us(28000), us(16000)},
	}
	for _, c := range cases {
		if got := tdma.Interference(c.dt); got != c.want {
			t.Errorf("I_TDMA(%v) = %v, want %v", c.dt, got, c.want)
		}
	}
}

func TestTDMAValidate(t *testing.T) {
	bad := []TDMA{
		{Cycle: 0, Slot: 0},
		{Cycle: us(10), Slot: 0},
		{Cycle: us(10), Slot: us(20)},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func paperIRQ() IRQ {
	return IRQ{
		Name: "timer0",
		CTH:  us(6),
		CBH:  us(30),
		Model: curves.PJD{
			Period: us(1344),
			Jitter: us(100),
			DMin:   us(1344),
		},
	}
}

func paperTDMA() TDMA { return TDMA{Cycle: us(14000), Slot: us(6000)} }

func TestClassicLatencyDominatedByTDMA(t *testing.T) {
	res, err := ClassicLatency(paperIRQ(), paperTDMA(), nil, DefaultHorizon)
	if err != nil {
		t.Fatal(err)
	}
	// §4: worst-case latency is dominated by the TDMA cycle:
	// at least T_TDMA − T_i, at most a little more than one cycle.
	if res.WCRT < us(8000) {
		t.Fatalf("classic WCRT = %v < T−Ti", res.WCRT)
	}
	if res.WCRT > us(15000) {
		t.Fatalf("classic WCRT = %v suspiciously large", res.WCRT)
	}
}

func TestInterposedLatencyIndependentOfTDMA(t *testing.T) {
	costs := arm.DefaultCosts()
	res, err := InterposedLatency(paperIRQ(), costs, nil, DefaultHorizon)
	if err != nil {
		t.Fatal(err)
	}
	// eq. (16): no TDMA term. Must be on the order of C'_BH + C'_TH.
	lower := costs.EffectiveBH(us(30))
	upper := 3 * lower
	if res.WCRT < lower || res.WCRT > upper {
		t.Fatalf("interposed WCRT = %v, want in [%v, %v]", res.WCRT, lower, upper)
	}
}

func TestInterposedLatencySingleEvent(t *testing.T) {
	// Exactly C'_BH + C'_TH for a single activation with no interferers.
	costs := arm.DefaultCosts()
	irq := paperIRQ()
	res, err := InterposedLatency(irq, costs, nil, DefaultHorizon)
	if err != nil {
		t.Fatal(err)
	}
	want := costs.EffectiveBH(irq.CBH) + costs.EffectiveTH(irq.CTH)
	if res.PerQ[0] != want {
		t.Fatalf("W(1) = %v, want %v", res.PerQ[0], want)
	}
}

func TestViolatingLatencyAtLeastClassic(t *testing.T) {
	costs := arm.DefaultCosts()
	irq := paperIRQ()
	classic, err := ClassicLatency(irq, paperTDMA(), nil, DefaultHorizon)
	if err != nil {
		t.Fatal(err)
	}
	viol, err := ViolatingLatency(irq, paperTDMA(), costs, nil, DefaultHorizon)
	if err != nil {
		t.Fatal(err)
	}
	// §5.1 observation 3: violating IRQs pay the monitoring overhead
	// on top of the classic bound.
	if viol.WCRT < classic.WCRT {
		t.Fatalf("violating WCRT %v < classic %v", viol.WCRT, classic.WCRT)
	}
	if viol.WCRT > classic.WCRT+us(100) {
		t.Fatalf("violating WCRT %v too far above classic %v", viol.WCRT, classic.WCRT)
	}
}

func TestTopHandlerInterferenceAccounted(t *testing.T) {
	// Adding an interfering source must not decrease any bound.
	costs := arm.DefaultCosts()
	other := IRQ{
		Name:  "uart",
		CTH:   us(4),
		CBH:   us(20),
		Model: curves.Sporadic{DMin: us(500)},
	}
	base, err := Compare(paperIRQ(), paperTDMA(), costs, nil, DefaultHorizon)
	if err != nil {
		t.Fatal(err)
	}
	with, err := Compare(paperIRQ(), paperTDMA(), costs, []IRQ{other}, DefaultHorizon)
	if err != nil {
		t.Fatal(err)
	}
	if with.Classic.WCRT < base.Classic.WCRT {
		t.Error("classic bound decreased with interferer")
	}
	if with.Interposed.WCRT < base.Interposed.WCRT {
		t.Error("interposed bound decreased with interferer")
	}
	if with.Interposed.WCRT == base.Interposed.WCRT {
		t.Error("interferer had no effect on interposed bound")
	}
}

func TestInterposedInterferenceEq14(t *testing.T) {
	costs := arm.DefaultCosts()
	cbh := us(30)
	dmin := us(1000)
	cbhEff := costs.EffectiveBH(cbh)
	cases := []struct {
		dt   simtime.Duration
		mult int64
	}{
		{us(1), 1}, {us(1000), 1}, {us(1001), 2}, {us(10000), 10},
	}
	for _, c := range cases {
		want := simtime.Duration(c.mult) * cbhEff
		if got := InterposedInterference(c.dt, dmin, costs, cbh); got != want {
			t.Errorf("I(%v) = %v, want %v", c.dt, got, want)
		}
	}
}

func TestInterposedInterferenceDeltaGeneralisation(t *testing.T) {
	costs := arm.DefaultCosts()
	cbh := us(30)
	// An l=1 δ⁻ must agree with the dmin closed form.
	d, err := curves.NewDelta([]simtime.Duration{us(1000)})
	if err != nil {
		t.Fatal(err)
	}
	for _, dt := range []simtime.Duration{us(1), us(500), us(1000), us(5000)} {
		a := InterposedInterference(dt, us(1000), costs, cbh)
		b := InterposedInterferenceDelta(dt, d, costs, cbh)
		// Closed form uses ⌈Δt/dmin⌉; the δ⁻ dual uses closed
		// windows (⌊Δt/dmin⌋+1) — equal except at exact multiples.
		if b < a {
			t.Errorf("δ⁻ bound %v below closed form %v at Δt=%v", b, a, dt)
		}
		if b > a+simtime.Duration(costs.EffectiveBH(cbh)) {
			t.Errorf("δ⁻ bound %v too far above closed form %v at Δt=%v", b, a, dt)
		}
	}
}

func TestPartitionBudgetCheck(t *testing.T) {
	costs := arm.DefaultCosts()
	d, _ := curves.NewDelta([]simtime.Duration{us(1000)})
	srcs := []IRQSourceBound{
		{Name: "a", CBH: us(30), Cond: d},
		{Name: "b", CBH: us(50), Cond: d},
	}
	total, ok := PartitionBudgetCheck(us(1000), us(10000), costs, srcs)
	wantTotal := 2*costs.EffectiveBH(us(30)) + 2*costs.EffectiveBH(us(50))
	if total != wantTotal {
		t.Fatalf("total = %v, want %v", total, wantTotal)
	}
	if !ok {
		t.Fatal("within-budget case rejected")
	}
	if _, ok := PartitionBudgetCheck(us(1000), us(100), costs, srcs); ok {
		t.Fatal("over-budget case accepted")
	}
}

func TestCompareImprovementFactor(t *testing.T) {
	// The paper's headline: interposed worst-case latency is
	// independent of the TDMA cycle — for the evaluation platform an
	// order of magnitude or more below the classic bound.
	cmp, err := Compare(paperIRQ(), paperTDMA(), arm.DefaultCosts(), nil, DefaultHorizon)
	if err != nil {
		t.Fatal(err)
	}
	factor := float64(cmp.Classic.WCRT) / float64(cmp.Interposed.WCRT)
	if factor < 10 {
		t.Fatalf("improvement factor = %.1f, want ≥ 10", factor)
	}
}

func TestClassicLatencyInvalidTDMA(t *testing.T) {
	if _, err := ClassicLatency(paperIRQ(), TDMA{}, nil, DefaultHorizon); err == nil {
		t.Fatal("invalid TDMA accepted")
	}
}

func TestResponseTimeMonotoneInC(t *testing.T) {
	m := curves.Sporadic{DMin: us(1000)}
	none := func(simtime.Duration) simtime.Duration { return 0 }
	var prev simtime.Duration
	for c := int64(1); c <= 500; c += 37 {
		res, err := ResponseTime(us(c), m, none, DefaultHorizon)
		if err != nil {
			t.Fatal(err)
		}
		if res.WCRT < prev {
			t.Fatalf("WCRT not monotone in C at C=%dµs", c)
		}
		prev = res.WCRT
	}
}
