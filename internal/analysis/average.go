package analysis

import (
	"errors"

	"repro/internal/arm"
	"repro/internal/simtime"
)

// AverageModel predicts the *expected* IRQ latency of the three handling
// schemes for a source whose arrivals are uniformly distributed over the
// TDMA cycle — the quantity Fig. 6 reports as "Avg. IRQ latency". The
// paper measures it; this model derives it, so measured and predicted
// averages can be cross-checked (they agree within a few percent, see
// the tests).
//
// Ingredients, for a subscriber slot T_i in a cycle T:
//
//   - an arrival is *direct* with probability T_i/T and completes after
//     C_TH + C_BH (plus queue operations),
//   - a *delayed* arrival waits for the subscriber's next slot start:
//     uniformly distributed over (0, T−T_i], expected (T−T_i)/2, plus
//     the slot-entry switch and handler costs,
//   - an *interposed* arrival completes after the grant chain
//     C'_TH + C_sched + C_ctx + C_BH.
type AverageModel struct {
	Cycle simtime.Duration // T_TDMA
	Slot  simtime.Duration // T_i
	CTH   simtime.Duration
	CBH   simtime.Duration
	Costs arm.CostModel
}

// Validate reports whether the model parameters are consistent.
func (m AverageModel) Validate() error {
	if m.Cycle <= 0 || m.Slot <= 0 || m.Slot > m.Cycle {
		return errors.New("analysis: AverageModel needs 0 < slot ≤ cycle")
	}
	if m.CTH <= 0 || m.CBH <= 0 {
		return errors.New("analysis: AverageModel needs positive handler costs")
	}
	return nil
}

// DirectShare returns the probability that a uniformly arriving IRQ
// lands in its subscriber's slot.
func (m AverageModel) DirectShare() float64 {
	return float64(m.Slot) / float64(m.Cycle)
}

// DirectLatency is the expected latency of a direct IRQ (no queueing).
func (m AverageModel) DirectLatency() simtime.Duration {
	return m.CTH + m.Costs.QueuePush + m.Costs.QueuePop + m.CBH
}

// DelayedLatency is the expected latency of a delayed IRQ: half the
// foreign interval plus slot entry and handler costs.
func (m AverageModel) DelayedLatency() simtime.Duration {
	wait := (m.Cycle - m.Slot) / 2
	return m.CTH + m.Costs.QueuePush + wait + m.Costs.CtxSwitch + m.Costs.QueuePop + m.CBH
}

// InterposedLatency is the expected latency of an interposed IRQ: the
// grant chain up to bottom-handler completion (the switch-back happens
// after the measurement point).
func (m AverageModel) InterposedLatency() simtime.Duration {
	return m.CTH + m.Costs.QueuePush + m.Costs.Monitor +
		m.Costs.Sched + m.Costs.CtxSwitch + m.Costs.QueuePop + m.CBH
}

// Unmonitored predicts the Fig. 6a average: direct share at direct
// latency, the rest delayed.
func (m AverageModel) Unmonitored() simtime.Duration {
	d := m.DirectShare()
	return avg(
		weight{d, m.DirectLatency()},
		weight{1 - d, m.DelayedLatency()},
	)
}

// Monitored predicts the Fig. 6b/6c average given the fraction of
// *foreign-slot* arrivals that conform to the monitoring condition
// (conforming = 1 reproduces scenario 3; the Poisson grant-renewal
// fraction reproduces scenario 2).
func (m AverageModel) Monitored(conforming float64) simtime.Duration {
	if conforming < 0 {
		conforming = 0
	}
	if conforming > 1 {
		conforming = 1
	}
	d := m.DirectShare()
	foreign := 1 - d
	return avg(
		weight{d, m.DirectLatency()},
		weight{foreign * conforming, m.InterposedLatency()},
		weight{foreign * (1 - conforming), m.DelayedLatency()},
	)
}

// Improvement predicts the Fig. 6 headline factor: unmonitored average
// over fully-conforming monitored average.
func (m AverageModel) Improvement() float64 {
	mon := m.Monitored(1)
	if mon <= 0 {
		return 0
	}
	return float64(m.Unmonitored()) / float64(mon)
}

type weight struct {
	p float64
	v simtime.Duration
}

func avg(ws ...weight) simtime.Duration {
	var sum float64
	for _, w := range ws {
		sum += w.p * float64(w.v)
	}
	return simtime.Duration(sum)
}
