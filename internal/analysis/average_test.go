package analysis

import (
	"testing"

	"repro/internal/arm"
	"repro/internal/simtime"
)

func paperAverage() AverageModel {
	return AverageModel{
		Cycle: us(14000),
		Slot:  us(6000),
		CTH:   us(6),
		CBH:   us(30),
		Costs: arm.DefaultCosts(),
	}
}

func TestAverageModelValidate(t *testing.T) {
	if err := paperAverage().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := paperAverage()
	bad.Slot = us(20000)
	if bad.Validate() == nil {
		t.Error("slot > cycle accepted")
	}
	bad = paperAverage()
	bad.CTH = 0
	if bad.Validate() == nil {
		t.Error("zero CTH accepted")
	}
}

func TestAverageModelComponents(t *testing.T) {
	m := paperAverage()
	if s := m.DirectShare(); s < 0.42 || s > 0.44 {
		t.Errorf("direct share = %.3f, want 6/14", s)
	}
	// Direct: 6 + 0.2 + 0.2 + 30 = 36.4 µs.
	if got := m.DirectLatency(); got != simtime.FromMicrosF(36.4) {
		t.Errorf("direct latency = %v", got)
	}
	// Delayed expectation ≈ 4000 + overheads ≈ 4086 µs.
	if got := m.DelayedLatency(); got < us(4080) || got > us(4095) {
		t.Errorf("delayed latency = %v, want ≈ 4086µs", got)
	}
	// Interposed ≈ 91.4 µs (matches the p50 the simulation measures).
	if got := m.InterposedLatency(); got != simtime.FromMicrosF(91.425) {
		t.Errorf("interposed latency = %v", got)
	}
}

func TestAverageModelPredictions(t *testing.T) {
	m := paperAverage()
	// Unmonitored ≈ 0.43·36.4 + 0.57·4086 ≈ 2350 µs (the simulation
	// measures ~2370 µs; the paper reports ~2500 µs).
	un := m.Unmonitored()
	if un < us(2200) || un > us(2500) {
		t.Errorf("unmonitored avg = %v, want ≈ 2350µs", un)
	}
	// Fully conforming ≈ 0.43·36.4 + 0.57·91.4 ≈ 68 µs — below the
	// simulated 90 µs, which includes queueing and remnant effects.
	mon := m.Monitored(1)
	if mon < us(60) || mon > us(80) {
		t.Errorf("monitored avg = %v, want ≈ 68µs", mon)
	}
	// Partial conformance interpolates monotonically.
	prev := mon
	for _, c := range []float64{0.8, 0.5, 0.2, 0.0} {
		v := m.Monitored(c)
		if v < prev {
			t.Errorf("Monitored(%.1f) = %v not monotone", c, v)
		}
		prev = v
	}
	// Monitored(0) = everything foreign delayed = unmonitored plus the
	// C_Mon overhead share; allow the small delta.
	if diff := m.Monitored(0) - un; diff < 0 || diff > us(1) {
		t.Errorf("Monitored(0) − Unmonitored = %v, want ≈ C_Mon share", diff)
	}
	// The predicted improvement factor is in the order of the paper's
	// 16× and our simulated ~26×.
	if f := m.Improvement(); f < 10 || f > 60 {
		t.Errorf("improvement = %.1f", f)
	}
}

func TestAverageModelClamping(t *testing.T) {
	m := paperAverage()
	if m.Monitored(-1) != m.Monitored(0) {
		t.Error("conforming < 0 not clamped")
	}
	if m.Monitored(2) != m.Monitored(1) {
		t.Error("conforming > 1 not clamped")
	}
}
