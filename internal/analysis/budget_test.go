package analysis

import (
	"testing"
	"testing/quick"

	"repro/internal/arm"
	"repro/internal/simtime"
)

func TestMinDMinForBudgetRoundTrip(t *testing.T) {
	costs := arm.DefaultCosts()
	cbh := us(30)
	dt := us(10000)
	for _, budgetUs := range []int64{140, 300, 700, 1400, 5000} {
		budget := us(budgetUs)
		dmin, err := MinDMinForBudget(dt, budget, costs, cbh)
		if err != nil {
			t.Fatalf("budget %v: %v", budget, err)
		}
		// The returned dmin must actually satisfy the budget…
		if got := InterposedInterference(dt, dmin, costs, cbh); got > budget {
			t.Fatalf("budget %v: dmin %v yields interference %v", budget, dmin, got)
		}
		// …and be minimal: one cycle less must violate it (unless
		// dmin is already one cycle).
		if dmin > 1 {
			if got := InterposedInterference(dt, dmin-1, costs, cbh); got <= budget {
				t.Fatalf("budget %v: dmin %v not minimal (dmin-1 gives %v)", budget, dmin, got)
			}
		}
	}
}

func TestMinDMinForBudgetTooSmall(t *testing.T) {
	costs := arm.DefaultCosts()
	// Budget below one effective bottom handler: impossible.
	if _, err := MinDMinForBudget(us(1000), us(10), costs, us(30)); err == nil {
		t.Fatal("impossible budget accepted")
	}
}

func TestMinDMinForBudgetProperty(t *testing.T) {
	costs := arm.DefaultCosts()
	f := func(dtRaw, budgetRaw uint16, cbhRaw uint8) bool {
		dt := us(int64(dtRaw)%50000 + 100)
		cbh := us(int64(cbhRaw)%200 + 1)
		budget := costs.EffectiveBH(cbh) + us(int64(budgetRaw)%100000)
		dmin, err := MinDMinForBudget(dt, budget, costs, cbh)
		if err != nil {
			return false
		}
		return InterposedInterference(dt, dmin, costs, cbh) <= budget
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMinDMinForBudgetMonotone(t *testing.T) {
	// A larger budget never requires a larger dmin.
	costs := arm.DefaultCosts()
	dt := us(14000)
	cbh := us(30)
	prev := simtime.Infinity
	for budgetUs := int64(150); budgetUs <= 5000; budgetUs += 135 {
		dmin, err := MinDMinForBudget(dt, us(budgetUs), costs, cbh)
		if err != nil {
			t.Fatal(err)
		}
		if dmin > prev {
			t.Fatalf("dmin not monotone at budget %dµs", budgetUs)
		}
		prev = dmin
	}
}
