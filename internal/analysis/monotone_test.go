package analysis

import (
	"testing"

	"repro/internal/arm"
	"repro/internal/curves"
	"repro/internal/rng"
	"repro/internal/simtime"
)

// randModel draws a random well-formed event model: sporadic, periodic,
// PJD, or an explicit δ⁻ prefix.
func randModel(src *rng.Source) curves.Model {
	base := simtime.Micros(200 + int64(src.Intn(4800)))
	switch src.Intn(4) {
	case 0:
		return curves.Sporadic{DMin: base}
	case 1:
		return curves.Periodic{Period: base}
	case 2:
		period := base + simtime.Micros(500)
		return curves.PJD{
			Period: period,
			Jitter: simtime.Micros(int64(src.Intn(1000))),
			DMin:   period / simtime.Duration(1+src.Intn(4)),
		}
	default:
		l := 2 + src.Intn(3)
		dist := make([]simtime.Duration, l)
		d := base
		for i := range dist {
			dist[i] = d
			d += simtime.Micros(int64(src.Intn(2000)))
		}
		return &curves.Delta{Dist: dist}
	}
}

func randIRQ(src *rng.Source, name string) IRQ {
	return IRQ{
		Name:  name,
		CTH:   simtime.Micros(1 + int64(src.Intn(12))),
		CBH:   simtime.Micros(5 + int64(src.Intn(60))),
		Model: randModel(src),
	}
}

// TestBoundsMonotoneInLoad: adding an interrupt source never decreases
// a victim's analytic bound — a self-consistency oracle independent of
// the DES. ErrUnbounded is the top element: once the system overloads,
// adding more load must keep it overloaded.
func TestBoundsMonotoneInLoad(t *testing.T) {
	costs := arm.DefaultCosts()
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		src := rng.NewStream(0xD1FF, uint64(trial))
		victim := randIRQ(src, "victim")
		cycle := simtime.Micros(4000 + int64(src.Intn(16000)))
		slot := cycle / simtime.Duration(2+src.Intn(3))
		tdma := TDMA{Cycle: cycle, Slot: slot, SlotEntry: simtime.Micros(int64(src.Intn(50)))}

		nOthers := 1 + src.Intn(4)
		others := make([]IRQ, 0, nOthers)
		for i := 0; i < nOthers; i++ {
			others = append(others, randIRQ(src, "other"))
		}

		for name, bound := range map[string]func(sub []IRQ) (simtime.Duration, error){
			"classic": func(sub []IRQ) (simtime.Duration, error) {
				r, err := ClassicLatency(victim, tdma, sub, DefaultHorizon)
				return r.WCRT, err
			},
			"interposed": func(sub []IRQ) (simtime.Duration, error) {
				r, err := InterposedLatency(victim, costs, sub, DefaultHorizon)
				return r.WCRT, err
			},
			"violating": func(sub []IRQ) (simtime.Duration, error) {
				r, err := ViolatingLatency(victim, tdma, costs, sub, DefaultHorizon)
				return r.WCRT, err
			},
		} {
			prev := simtime.Duration(-1)
			prevUnbounded := false
			for k := 0; k <= len(others); k++ {
				w, err := bound(others[:k])
				if err != nil {
					// Overload: every heavier prefix must stay overloaded.
					prevUnbounded = true
					continue
				}
				if prevUnbounded {
					t.Fatalf("trial %d %s: bound became finite (%v) after being unbounded with fewer sources", trial, name, w)
				}
				if w < prev {
					t.Fatalf("trial %d %s: bound decreased from %v to %v when adding source %d", trial, name, prev, w, k)
				}
				prev = w
			}
		}
	}
}
