package analysis

import (
	"errors"

	"repro/internal/arm"
	"repro/internal/curves"
	"repro/internal/simtime"
)

// OutputModel propagates an event model through a processing stage, the
// standard step of compositional performance analysis (Richter 2004):
// if activations following the input model are served with response
// times in [RMin, RMax], the *completion* stream — e.g. the bottom-
// handler completions that activate a guest task — follows the input
// period with an additional response-time jitter of RMax − RMin, and
// consecutive completions can be no closer than the stage's minimum
// service time.
//
// This closes the analysis chain of the reproduction end to end:
// hardware IRQ model → (hypervisor stage, eqs. 11/16) → guest activation
// model → guest response-time analysis (internal/guestos).
func OutputModel(in curves.PJD, rMin, rMax simtime.Duration) (curves.PJD, error) {
	if err := in.Validate(); err != nil {
		return curves.PJD{}, err
	}
	if rMin < 0 || rMax < rMin {
		return curves.PJD{}, errors.New("analysis: need 0 ≤ RMin ≤ RMax")
	}
	out := curves.PJD{
		Period: in.Period,
		Jitter: in.Jitter + (rMax - rMin),
		DMin:   rMin,
	}
	if in.DMin < out.DMin {
		// The input stream's own spacing can be tighter than the
		// service time floor only if service pipelines — it does not
		// on a single CPU, so the floor is max(service, 0)… but the
		// completion spacing can also never exceed the input's dmin
		// plus queue effects; keep the conservative smaller bound.
		out.DMin = minDur(out.DMin, in.DMin)
	}
	if out.DMin > out.Period {
		out.DMin = out.Period
	}
	if out.DMin < 1 {
		out.DMin = 1
	}
	if err := out.Validate(); err != nil {
		return curves.PJD{}, err
	}
	return out, nil
}

func minDur(a, b simtime.Duration) simtime.Duration {
	if a < b {
		return a
	}
	return b
}

// InterposedOutputModel derives the guest-activation event model for a
// monitored source processed by interposed handling: response times span
// [best case, eq. 16 bound]. The best case is the uncontended grant
// chain (C'_TH + C_sched + C_ctx + C_BH).
func InterposedOutputModel(irq IRQ, in curves.PJD, costs arm.CostModel, others []IRQ, horizon simtime.Duration) (curves.PJD, error) {
	res, err := InterposedLatency(irq, costs, others, horizon)
	if err != nil {
		return curves.PJD{}, err
	}
	best := costs.EffectiveTH(irq.CTH) + costs.Sched + costs.CtxSwitch + irq.CBH
	if best > res.WCRT {
		best = res.WCRT
	}
	return OutputModel(in, best, res.WCRT)
}
