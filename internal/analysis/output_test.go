package analysis

import (
	"testing"

	"repro/internal/arm"
	"repro/internal/curves"
)

func TestOutputModelJitterPropagation(t *testing.T) {
	in := curves.PJD{Period: us(1000), Jitter: us(100), DMin: us(800)}
	out, err := OutputModel(in, us(50), us(250))
	if err != nil {
		t.Fatal(err)
	}
	if out.Period != in.Period {
		t.Errorf("period changed: %v", out.Period)
	}
	// Output jitter = input jitter + response-time jitter.
	if out.Jitter != us(100)+us(200) {
		t.Errorf("jitter = %v, want 300µs", out.Jitter)
	}
	// Completion spacing floored at the minimum service time (or the
	// input dmin if tighter).
	if out.DMin != us(50) {
		t.Errorf("dmin = %v, want 50µs", out.DMin)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOutputModelZeroJitterService(t *testing.T) {
	// Constant response time adds no jitter.
	in := curves.PJD{Period: us(1000), Jitter: 0, DMin: us(1000)}
	out, err := OutputModel(in, us(100), us(100))
	if err != nil {
		t.Fatal(err)
	}
	if out.Jitter != 0 {
		t.Errorf("jitter = %v, want 0", out.Jitter)
	}
}

func TestOutputModelValidation(t *testing.T) {
	in := curves.PJD{Period: us(1000), DMin: us(500)}
	if _, err := OutputModel(in, us(200), us(100)); err == nil {
		t.Error("RMax < RMin accepted")
	}
	if _, err := OutputModel(in, -1, us(100)); err == nil {
		t.Error("negative RMin accepted")
	}
	if _, err := OutputModel(curves.PJD{}, 0, 0); err == nil {
		t.Error("invalid input model accepted")
	}
}

func TestOutputModelConservative(t *testing.T) {
	// The output η⁺ must dominate the input η⁺ (completions can burst
	// more than arrivals, never less often over long windows).
	in := curves.PJD{Period: us(1000), Jitter: us(200), DMin: us(700)}
	out, err := OutputModel(in, us(30), us(400))
	if err != nil {
		t.Fatal(err)
	}
	for dt := us(0); dt <= us(20000); dt += us(333) {
		if out.EtaPlus(dt) < in.EtaPlus(dt) {
			t.Fatalf("output η⁺(%v) = %d below input %d", dt, out.EtaPlus(dt), in.EtaPlus(dt))
		}
	}
}

func TestInterposedOutputModel(t *testing.T) {
	costs := arm.DefaultCosts()
	irq := paperIRQ()
	in := irq.Model.(curves.PJD)
	out, err := InterposedOutputModel(irq, in, costs, nil, DefaultHorizon)
	if err != nil {
		t.Fatal(err)
	}
	if out.Period != in.Period {
		t.Errorf("period = %v", out.Period)
	}
	if out.Jitter <= in.Jitter {
		t.Error("no response-time jitter propagated")
	}
	// The guest task activated by this stream can be analysed with the
	// standard busy-window machinery — a quick consistency check.
	if err := curves.CheckModel(out, 32, us(20000)); err != nil {
		t.Fatal(err)
	}
}
