package analysis

import (
	"fmt"
	"sort"

	"repro/internal/arm"
	"repro/internal/curves"
	"repro/internal/simtime"
)

// Window is one execution window of a partition inside the TDMA cycle,
// as a half-open interval [Start, End) relative to the cycle start.
// ARINC653-style schedules give a partition several windows per major
// frame; the single-slot model of eq. (8) is the special case of one
// window per cycle.
type Window struct {
	Start simtime.Duration
	End   simtime.Duration
}

// Len returns the window length.
func (w Window) Len() simtime.Duration { return w.End - w.Start }

// Schedule is the cyclic window schedule of one partition. It provides
// the supply bound function sbf(Δt) — the minimum processing time the
// partition receives in any window of length Δt — and the corresponding
// interference bound I(Δt) = Δt − sbf(Δt), which generalises eq. (8) to
// multi-window schedules.
type Schedule struct {
	Cycle   simtime.Duration
	Windows []Window
	// Entry is the context-switch overhead consumed at the start of
	// each window before the partition can execute (the SlotEntry of
	// the single-slot model).
	Entry simtime.Duration
}

// NewSchedule validates and normalises a schedule: windows sorted,
// non-overlapping, inside [0, cycle).
func NewSchedule(cycle simtime.Duration, windows []Window, entry simtime.Duration) (*Schedule, error) {
	if cycle <= 0 {
		return nil, invalidf(ReasonBadTDMA, "schedule", "cycle %v must be positive", cycle)
	}
	if len(windows) == 0 {
		return nil, invalidf(ReasonOverlappingWindows, "schedule", "needs at least one window")
	}
	ws := append([]Window(nil), windows...)
	sort.Slice(ws, func(i, j int) bool { return ws[i].Start < ws[j].Start })
	for i, w := range ws {
		if w.Start < 0 || w.End > cycle || w.Len() <= 0 {
			return nil, invalidf(ReasonOverlappingWindows, "schedule", "window %d [%v,%v) invalid for cycle %v", i, w.Start, w.End, cycle)
		}
		if i > 0 && w.Start < ws[i-1].End {
			return nil, invalidf(ReasonOverlappingWindows, "schedule", "window %d overlaps its predecessor", i)
		}
		if entry < 0 || entry >= w.Len() {
			return nil, invalidf(ReasonBadTDMA, "schedule", "entry overhead %v does not fit window %d", entry, i)
		}
	}
	return &Schedule{Cycle: cycle, Windows: ws, Entry: entry}, nil
}

// TotalSupplyPerCycle returns the usable processing time per cycle
// (window lengths minus entry overheads).
func (s *Schedule) TotalSupplyPerCycle() simtime.Duration {
	var sum simtime.Duration
	for _, w := range s.Windows {
		sum += w.Len() - s.Entry
	}
	return sum
}

// supplyFrom returns the processing time supplied in [offset, offset+dt)
// where offset is relative to the cycle start. The entry overhead is
// charged at each window start; joining a window mid-way (offset inside
// a window) supplies the remainder without a new entry charge only if
// offset lies past the entry region.
func (s *Schedule) supplyFrom(offset simtime.Time, dt simtime.Duration) simtime.Duration {
	var got simtime.Duration
	t := offset
	end := offset.Add(dt)
	for t < end {
		cycleBase := simtime.Time(int64(t) / int64(s.Cycle) * int64(s.Cycle))
		rel := simtime.Duration(t - cycleBase)
		// Find the window containing or following rel.
		advanced := false
		for _, w := range s.Windows {
			usableStart := w.Start + s.Entry
			if rel >= w.End {
				continue
			}
			from := simtime.MaxT(t, cycleBase.Add(usableStart))
			to := simtime.MinT(end, cycleBase.Add(w.End))
			if to > from {
				got += to.Sub(from)
			}
			t = cycleBase.Add(w.End)
			advanced = true
			if t >= end {
				return got
			}
			rel = w.End
		}
		if !advanced {
			// Past the last window: jump to the next cycle.
			t = cycleBase.Add(s.Cycle)
		}
	}
	return got
}

// Supply returns sbf(Δt): the minimum processing time the partition is
// guaranteed within any window of length Δt, minimised over all start
// phases. The minimum is attained when the window starts right at the
// end of one of the partition's windows (critical instants), so only
// those offsets are evaluated.
func (s *Schedule) Supply(dt simtime.Duration) simtime.Duration {
	if dt <= 0 {
		return 0
	}
	min := simtime.Infinity
	for _, w := range s.Windows {
		got := s.supplyFrom(simtime.Time(w.End), dt)
		if got < min {
			min = got
		}
	}
	return min
}

// Interference returns the generalised TDMA interference
// I(Δt) = Δt − sbf(Δt). For a single window of length T_i in a cycle T
// with zero entry overhead this coincides with eq. (8) up to the ceil
// granularity (it is at least as tight).
func (s *Schedule) Interference(dt simtime.Duration) simtime.Duration {
	return dt - s.Supply(dt)
}

// SingleSlot builds the schedule corresponding to the paper's model: one
// window of length slot at the start of the cycle.
func SingleSlot(cycle, slot, entry simtime.Duration) (*Schedule, error) {
	return NewSchedule(cycle, []Window{{Start: 0, End: slot}}, entry)
}

// ClassicLatencySchedule is ClassicLatency with the generalised
// multi-window interference bound instead of eq. (8).
func ClassicLatencySchedule(irq IRQ, sched *Schedule, others []IRQ, horizon simtime.Duration) (ResponseTimeResult, error) {
	return ClassicLatencyScheduleUnder(irq, sched, others, nil, horizon)
}

// ClassicLatencyScheduleUnder is to ClassicLatencySchedule what
// ClassicLatencyUnder is to ClassicLatency: the multi-window bound with
// an additional interference term (typically the eq. (14) budget of
// foreign interposed bottom handlers) folded into the busy window.
func ClassicLatencyScheduleUnder(irq IRQ, sched *Schedule, others []IRQ, extra Interference, horizon simtime.Duration) (ResponseTimeResult, error) {
	if err := ValidateSystem(irq, others); err != nil {
		return ResponseTimeResult{}, err
	}
	if sched == nil || len(sched.Windows) == 0 {
		return ResponseTimeResult{}, invalidf(ReasonOverlappingWindows, "schedule", "nil or empty schedule")
	}
	inf := func(dt simtime.Duration) simtime.Duration {
		own := simtime.Duration(irq.Model.EtaPlus(dt)) * irq.CTH
		total := own + sched.Interference(dt) + topHandlerInterference(others, dt)
		if extra != nil {
			total += extra(dt)
		}
		return total
	}
	return ResponseTime(irq.CBH, irq.Model, inf, horizon)
}

// MonitoredSource describes an interfering source whose bottom handlers
// may be interposed: its monitoring condition bounds the grant stream.
type MonitoredSource struct {
	Name string
	// CTH is charged per activation (top handler, with monitoring).
	CTH simtime.Duration
	// CBHEff is C'_BH (eq. 13) charged per grant.
	CBHEff simtime.Duration
	// Arrive bounds the activation stream (top handlers).
	Arrive curves.Model
	// Grants bounds the grant stream (interposed bottom handlers).
	Grants curves.Model
}

// InterposedLatencyMulti extends eq. (16) to systems where several
// monitored sources interpose: the analysed source additionally suffers
// the interposed bottom handlers of every other monitored source, each
// bounded by its own monitoring condition. The paper analyses a single
// monitored source; this is the natural compositional extension.
func InterposedLatencyMulti(irq IRQ, costs arm.CostModel, monitored []MonitoredSource, horizon simtime.Duration) (ResponseTimeResult, error) {
	if err := ValidateIRQ(irq); err != nil {
		return ResponseTimeResult{}, err
	}
	for _, m := range monitored {
		field := fmt.Sprintf("monitored %q", m.Name)
		if err := ValidateModel(field+" arrivals", m.Arrive); err != nil {
			return ResponseTimeResult{}, err
		}
		if err := ValidateModel(field+" grants", m.Grants); err != nil {
			return ResponseTimeResult{}, err
		}
	}
	cbh := costs.EffectiveBH(irq.CBH)
	cth := costs.EffectiveTH(irq.CTH)
	inf := func(dt simtime.Duration) simtime.Duration {
		own := simtime.Duration(irq.Model.EtaPlus(dt)) * cth
		var foreign simtime.Duration
		for _, m := range monitored {
			foreign += simtime.Duration(m.Arrive.EtaPlus(dt)) * m.CTH
			foreign += simtime.Duration(m.Grants.EtaPlus(dt)) * m.CBHEff
		}
		return own + foreign
	}
	return ResponseTime(cbh, irq.Model, inf, horizon)
}
