package analysis

import (
	"testing"
	"testing/quick"

	"repro/internal/arm"
	"repro/internal/curves"
	"repro/internal/simtime"
)

func TestNewScheduleValidation(t *testing.T) {
	if _, err := NewSchedule(0, []Window{{0, us(10)}}, 0); err == nil {
		t.Error("zero cycle accepted")
	}
	if _, err := NewSchedule(us(100), nil, 0); err == nil {
		t.Error("empty schedule accepted")
	}
	if _, err := NewSchedule(us(100), []Window{{us(10), us(5)}}, 0); err == nil {
		t.Error("inverted window accepted")
	}
	if _, err := NewSchedule(us(100), []Window{{0, us(200)}}, 0); err == nil {
		t.Error("window past cycle accepted")
	}
	if _, err := NewSchedule(us(100), []Window{{0, us(50)}, {us(40), us(60)}}, 0); err == nil {
		t.Error("overlapping windows accepted")
	}
	if _, err := NewSchedule(us(100), []Window{{0, us(10)}}, us(10)); err == nil {
		t.Error("entry consuming the window accepted")
	}
	s, err := NewSchedule(us(100), []Window{{us(50), us(70)}, {0, us(20)}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Windows[0].Start != 0 {
		t.Error("windows not sorted")
	}
}

func TestSingleSlotSupplyWorstPhase(t *testing.T) {
	// The paper's system: slot 6000 of cycle 14000, no entry overhead.
	s, err := SingleSlot(us(14000), us(6000), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Worst phase starts right after the slot: zero supply for
	// 8000 µs, then full rate.
	if got := s.Supply(us(8000)); got != 0 {
		t.Fatalf("sbf(8000) = %v, want 0", got)
	}
	if got := s.Supply(us(9000)); got != us(1000) {
		t.Fatalf("sbf(9000) = %v, want 1000µs", got)
	}
	if got := s.Supply(us(14000)); got != us(6000) {
		t.Fatalf("sbf(14000) = %v, want 6000µs", got)
	}
	if got := s.Supply(us(28000)); got != us(12000) {
		t.Fatalf("sbf(28000) = %v, want 12000µs", got)
	}
}

func TestSingleSlotInterferenceMatchesEq8(t *testing.T) {
	// For the single-window case, the supply-based interference is at
	// least as tight as eq. (8) and never smaller than the exact
	// worst-case wait.
	sched, _ := SingleSlot(us(14000), us(6000), 0)
	tdma := TDMA{Cycle: us(14000), Slot: us(6000)}
	for dt := us(1); dt <= us(50000); dt += us(777) {
		sup := sched.Interference(dt)
		eq8 := tdma.Interference(dt)
		if sup > eq8 {
			t.Fatalf("supply bound %v looser than eq.8 %v at Δt=%v", sup, eq8, dt)
		}
	}
}

func TestMultiWindowSupplyBeatsSingleSlot(t *testing.T) {
	// Splitting a partition's 6000 µs into two 3000 µs windows halves
	// the worst-case gap: sbf must dominate the single-slot one.
	single, _ := SingleSlot(us(14000), us(6000), 0)
	split, err := NewSchedule(us(14000), []Window{{0, us(3000)}, {us(7000), us(10000)}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Largest no-supply gap: [10000, 14000+0) = 4000 µs.
	if got := split.Supply(us(4000)); got != 0 {
		t.Fatalf("split sbf(4000) = %v, want 0", got)
	}
	if got := split.Supply(us(5000)); got != us(1000) {
		t.Fatalf("split sbf(5000) = %v, want 1000", got)
	}
	for dt := us(100); dt <= us(30000); dt += us(333) {
		if split.Supply(dt) < single.Supply(dt) {
			t.Fatalf("split supply below single-slot at Δt=%v", dt)
		}
	}
}

func TestEntryOverheadReducesSupply(t *testing.T) {
	with, _ := SingleSlot(us(14000), us(6000), us(50))
	without, _ := SingleSlot(us(14000), us(6000), 0)
	if with.TotalSupplyPerCycle() != us(5950) {
		t.Fatalf("supply per cycle = %v", with.TotalSupplyPerCycle())
	}
	for dt := us(100); dt <= us(30000); dt += us(500) {
		if with.Supply(dt) > without.Supply(dt) {
			t.Fatalf("entry overhead increased supply at Δt=%v", dt)
		}
	}
	// Worst phase now includes the entry region: 8050 µs without
	// supply.
	if got := with.Supply(us(8050)); got != 0 {
		t.Fatalf("sbf(8050) = %v, want 0", got)
	}
}

func TestSupplyProperties(t *testing.T) {
	sched, err := NewSchedule(us(20000), []Window{
		{us(1000), us(4000)},
		{us(8000), us(9000)},
		{us(15000), us(19000)},
	}, us(50))
	if err != nil {
		t.Fatal(err)
	}
	// Monotone, 1-Lipschitz, and long-run rate = supply per cycle.
	prev := simtime.Duration(0)
	for dt := us(0); dt <= us(100000); dt += us(997) {
		got := sched.Supply(dt)
		if got < prev {
			t.Fatalf("sbf decreasing at Δt=%v", dt)
		}
		if got > dt {
			t.Fatalf("sbf(%v) = %v exceeds window", dt, got)
		}
		prev = got
	}
	perCycle := sched.TotalSupplyPerCycle()
	tenCycles := sched.Supply(10 * sched.Cycle)
	if tenCycles < 9*perCycle || tenCycles > 10*perCycle {
		t.Fatalf("long-run supply %v vs per-cycle %v", tenCycles, perCycle)
	}
}

func TestSupplyBruteForceProperty(t *testing.T) {
	// Against brute-force minimisation over a fine offset grid: the
	// critical-instant evaluation must never report MORE supply than
	// any offset actually provides.
	sched, err := NewSchedule(us(1000), []Window{
		{us(100), us(300)},
		{us(600), us(700)},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw uint16) bool {
		dt := simtime.Duration(raw%5000) * simtime.Microsecond
		sbf := sched.Supply(dt)
		for off := simtime.Time(0); off < simtime.Time(sched.Cycle); off += simtime.Time(us(13)) {
			if got := sched.supplyFrom(off, dt); got < sbf {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestClassicLatencySchedule(t *testing.T) {
	irq := paperIRQ()
	single, _ := SingleSlot(us(14000), us(6000), 0)
	res, err := ClassicLatencySchedule(irq, single, nil, DefaultHorizon)
	if err != nil {
		t.Fatal(err)
	}
	eq8, err := ClassicLatency(irq, paperTDMA(), nil, DefaultHorizon)
	if err != nil {
		t.Fatal(err)
	}
	// The supply-based bound is at least as tight as eq. (8).
	if res.WCRT > eq8.WCRT {
		t.Fatalf("schedule bound %v looser than eq.8 bound %v", res.WCRT, eq8.WCRT)
	}
	if res.WCRT < us(8000) {
		t.Fatalf("schedule bound %v below the TDMA gap", res.WCRT)
	}
	// Splitting the slot halves the worst-case latency.
	split, _ := NewSchedule(us(14000), []Window{{0, us(3000)}, {us(7000), us(10000)}}, 0)
	resSplit, err := ClassicLatencySchedule(irq, split, nil, DefaultHorizon)
	if err != nil {
		t.Fatal(err)
	}
	if resSplit.WCRT >= res.WCRT {
		t.Fatalf("split-window bound %v not below single-slot %v", resSplit.WCRT, res.WCRT)
	}
}

func TestInterposedLatencyMulti(t *testing.T) {
	costs := arm.DefaultCosts()
	irq := paperIRQ()
	base, err := InterposedLatency(irq, costs, nil, DefaultHorizon)
	if err != nil {
		t.Fatal(err)
	}
	// Adding a monitored interferer raises the bound by its grants'
	// C'_BH share.
	other := MonitoredSource{
		Name:   "net",
		CTH:    costs.EffectiveTH(us(4)),
		CBHEff: costs.EffectiveBH(us(20)),
		Arrive: curves.Sporadic{DMin: us(2000)},
		Grants: curves.Sporadic{DMin: us(2000)},
	}
	multi, err := InterposedLatencyMulti(irq, costs, []MonitoredSource{other}, DefaultHorizon)
	if err != nil {
		t.Fatal(err)
	}
	if multi.WCRT <= base.WCRT {
		t.Fatalf("multi bound %v not above single-source bound %v", multi.WCRT, base.WCRT)
	}
	// With no monitored interferers it degenerates to eq. (16).
	same, err := InterposedLatencyMulti(irq, costs, nil, DefaultHorizon)
	if err != nil {
		t.Fatal(err)
	}
	if same.WCRT != base.WCRT {
		t.Fatalf("degenerate multi bound %v != eq.16 bound %v", same.WCRT, base.WCRT)
	}
}
