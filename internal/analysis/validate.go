package analysis

import (
	"errors"
	"fmt"

	"repro/internal/curves"
)

// ErrInvalidSystem is the sentinel all input-validation failures wrap:
// callers that feed generated or untrusted systems into the analysis
// (the differential fuzzer, the serve daemon) use errors.Is against it
// to distinguish "this scenario is malformed" from "this scenario is
// overloaded" (ErrUnbounded) or "the bound was violated".
var ErrInvalidSystem = errors.New("analysis: invalid system")

// Validation reasons — stable machine-readable classes for the
// malformed-input families the analysis rejects.
const (
	// ReasonNilModel: an IRQ without an event model.
	ReasonNilModel = "nil-model"
	// ReasonZeroPeriod: a periodic/PJD model with a non-positive period
	// (or a sporadic model with a non-positive minimum distance) —
	// η⁺ would be unbounded in any window.
	ReasonZeroPeriod = "zero-period"
	// ReasonNonMonotoneDelta: a δ⁻ function that is empty, negative, or
	// not non-decreasing in q — DeltaMin would silently return garbage.
	ReasonNonMonotoneDelta = "non-monotone-delta"
	// ReasonDegenerateDelta: an all-zero δ⁻ prefix, which admits
	// unbounded bursts and has no η⁺ dual.
	ReasonDegenerateDelta = "degenerate-delta"
	// ReasonNegativeCost: a negative handler WCET.
	ReasonNegativeCost = "negative-cost"
	// ReasonBadTDMA: inconsistent cycle/slot/entry parameters.
	ReasonBadTDMA = "bad-tdma"
	// ReasonOverlappingWindows: a multi-window schedule whose windows
	// overlap, exceed the cycle, or are empty.
	ReasonOverlappingWindows = "overlapping-windows"
)

// ValidationError is the typed rejection the analysis entry points
// return for malformed systems. It wraps ErrInvalidSystem.
type ValidationError struct {
	Reason string // one of the Reason* constants
	Field  string // which input was malformed, e.g. `irq "net"`
	Detail string
}

func (e *ValidationError) Error() string {
	if e.Field == "" {
		return fmt.Sprintf("analysis: invalid system (%s): %s", e.Reason, e.Detail)
	}
	return fmt.Sprintf("analysis: invalid system (%s): %s: %s", e.Reason, e.Field, e.Detail)
}

// Is makes errors.Is(err, ErrInvalidSystem) true for every ValidationError.
func (e *ValidationError) Is(target error) bool { return target == ErrInvalidSystem }

func invalidf(reason, field, format string, args ...any) *ValidationError {
	return &ValidationError{Reason: reason, Field: field, Detail: fmt.Sprintf(format, args...)}
}

// ValidateModel rejects event models whose η⁺/δ⁻ would panic or
// silently produce wrong bounds: non-positive periods and minimum
// distances, and malformed δ⁻ functions. Model types the analysis does
// not know are accepted — they are responsible for their own
// consistency.
func ValidateModel(field string, m curves.Model) error {
	switch v := m.(type) {
	case nil:
		return invalidf(ReasonNilModel, field, "no event model")
	case curves.Periodic:
		if v.Period <= 0 {
			return invalidf(ReasonZeroPeriod, field, "period %v must be positive", v.Period)
		}
	case curves.PJD:
		if v.Period <= 0 {
			return invalidf(ReasonZeroPeriod, field, "period %v must be positive", v.Period)
		}
		if err := v.Validate(); err != nil {
			return invalidf(ReasonZeroPeriod, field, "%v", err)
		}
	case curves.Sporadic:
		if v.DMin <= 0 {
			return invalidf(ReasonZeroPeriod, field, "minimum distance %v must be positive", v.DMin)
		}
	case *curves.Delta:
		return validateDelta(field, v)
	}
	return nil
}

// validateDelta rejects δ⁻ functions NewDelta would refuse — plus the
// degenerate all-zero prefix NewDelta accepts but whose η⁺ panics.
// Checking here catches Delta values built directly (Dist literal,
// decoded JSON) that never went through NewDelta.
func validateDelta(field string, d *curves.Delta) error {
	if d == nil || len(d.Dist) == 0 {
		return invalidf(ReasonNonMonotoneDelta, field, "empty δ⁻ function")
	}
	for i, v := range d.Dist {
		if v < 0 {
			return invalidf(ReasonNonMonotoneDelta, field, "δ⁻[%d] = %v is negative", i, v)
		}
		if i > 0 && v < d.Dist[i-1] {
			return invalidf(ReasonNonMonotoneDelta, field, "δ⁻ not non-decreasing at index %d (%v < %v)", i, v, d.Dist[i-1])
		}
	}
	if d.Dist[len(d.Dist)-1] <= 0 {
		return invalidf(ReasonDegenerateDelta, field, "all-zero δ⁻ admits unbounded bursts")
	}
	return nil
}

// ValidateIRQ rejects an IRQ with negative handler WCETs or a malformed
// event model.
func ValidateIRQ(irq IRQ) error {
	field := fmt.Sprintf("irq %q", irq.Name)
	if irq.CTH < 0 || irq.CBH < 0 {
		return invalidf(ReasonNegativeCost, field, "handler WCETs C_TH=%v C_BH=%v must be non-negative", irq.CTH, irq.CBH)
	}
	return ValidateModel(field, irq.Model)
}

// ValidateSystem validates the analysed source and every interferer in
// one call — the precondition of the latency entry points.
func ValidateSystem(irq IRQ, others []IRQ) error {
	if err := ValidateIRQ(irq); err != nil {
		return err
	}
	for _, o := range others {
		if err := ValidateIRQ(o); err != nil {
			return err
		}
	}
	return nil
}
