package analysis

import (
	"errors"
	"testing"

	"repro/internal/arm"
	"repro/internal/curves"
	"repro/internal/simtime"
)

// wellFormed returns a baseline valid system the rejection tests mutate.
func wellFormedIRQ() (IRQ, TDMA) {
	irq := IRQ{Name: "victim", CTH: us(6), CBH: us(30), Model: curves.Sporadic{DMin: us(1000)}}
	tdma := TDMA{Cycle: us(10000), Slot: us(4000), SlotEntry: us(60)}
	return irq, tdma
}

// TestValidationRejections: each malformed-input family is rejected
// with a typed ValidationError carrying the right reason, from every
// latency entry point — never a panic, never a silent bound.
func TestValidationRejections(t *testing.T) {
	costs := arm.DefaultCosts()
	cases := []struct {
		name   string
		mutate func(irq *IRQ, tdma *TDMA)
		reason string
	}{
		{"nil model", func(irq *IRQ, _ *TDMA) { irq.Model = nil }, ReasonNilModel},
		{"zero period", func(irq *IRQ, _ *TDMA) { irq.Model = curves.Periodic{} }, ReasonZeroPeriod},
		{"negative period", func(irq *IRQ, _ *TDMA) { irq.Model = curves.Periodic{Period: -us(5)} }, ReasonZeroPeriod},
		{"zero-period pjd", func(irq *IRQ, _ *TDMA) { irq.Model = curves.PJD{Period: 0, Jitter: us(10)} }, ReasonZeroPeriod},
		{"pjd dmin over period", func(irq *IRQ, _ *TDMA) {
			irq.Model = curves.PJD{Period: us(100), DMin: us(200)}
		}, ReasonZeroPeriod},
		{"zero-dmin sporadic", func(irq *IRQ, _ *TDMA) { irq.Model = curves.Sporadic{} }, ReasonZeroPeriod},
		{"empty delta", func(irq *IRQ, _ *TDMA) { irq.Model = &curves.Delta{} }, ReasonNonMonotoneDelta},
		{"non-monotone delta", func(irq *IRQ, _ *TDMA) {
			irq.Model = &curves.Delta{Dist: []simtime.Duration{us(300), us(100)}}
		}, ReasonNonMonotoneDelta},
		{"negative delta entry", func(irq *IRQ, _ *TDMA) {
			irq.Model = &curves.Delta{Dist: []simtime.Duration{-us(1), us(100)}}
		}, ReasonNonMonotoneDelta},
		{"degenerate all-zero delta", func(irq *IRQ, _ *TDMA) {
			irq.Model = &curves.Delta{Dist: []simtime.Duration{0, 0, 0}}
		}, ReasonDegenerateDelta},
		{"negative cth", func(irq *IRQ, _ *TDMA) { irq.CTH = -us(1) }, ReasonNegativeCost},
		{"negative cbh", func(irq *IRQ, _ *TDMA) { irq.CBH = -us(1) }, ReasonNegativeCost},
		{"zero cycle", func(_ *IRQ, tdma *TDMA) { tdma.Cycle = 0 }, ReasonBadTDMA},
		{"slot exceeds cycle", func(_ *IRQ, tdma *TDMA) { tdma.Slot = tdma.Cycle + 1 }, ReasonBadTDMA},
		{"entry swallows slot", func(_ *IRQ, tdma *TDMA) { tdma.SlotEntry = tdma.Slot }, ReasonBadTDMA},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			irq, tdma := wellFormedIRQ()
			tc.mutate(&irq, &tdma)
			for entry, run := range map[string]func() error{
				"classic": func() error {
					_, err := ClassicLatency(irq, tdma, nil, DefaultHorizon)
					return err
				},
				"violating": func() error {
					_, err := ViolatingLatency(irq, tdma, costs, nil, DefaultHorizon)
					return err
				},
			} {
				err := run()
				if err == nil {
					t.Fatalf("%s: malformed system accepted", entry)
				}
				if !errors.Is(err, ErrInvalidSystem) {
					t.Fatalf("%s: error %v does not wrap ErrInvalidSystem", entry, err)
				}
				var verr *ValidationError
				if !errors.As(err, &verr) {
					t.Fatalf("%s: error %T is not a ValidationError", entry, err)
				}
				if verr.Reason != tc.reason {
					t.Fatalf("%s: reason %q, want %q", entry, verr.Reason, tc.reason)
				}
			}
		})
	}
}

// TestValidationInterferers: a malformed interferer poisons the system
// just like a malformed victim.
func TestValidationInterferers(t *testing.T) {
	irq, tdma := wellFormedIRQ()
	bad := IRQ{Name: "attacker", CTH: us(6), CBH: us(30), Model: curves.Periodic{}}
	if _, err := ClassicLatency(irq, tdma, []IRQ{bad}, DefaultHorizon); !errors.Is(err, ErrInvalidSystem) {
		t.Fatalf("classic with malformed interferer: %v, want ErrInvalidSystem", err)
	}
	if _, err := InterposedLatency(irq, arm.DefaultCosts(), []IRQ{bad}, DefaultHorizon); !errors.Is(err, ErrInvalidSystem) {
		t.Fatalf("interposed with malformed interferer: %v, want ErrInvalidSystem", err)
	}
}

// TestValidationSchedule: overlapping and out-of-range windows are
// rejected with the overlapping-windows reason.
func TestValidationSchedule(t *testing.T) {
	cases := []struct {
		name    string
		cycle   simtime.Duration
		windows []Window
		reason  string
	}{
		{"overlap", us(10000), []Window{{0, us(4000)}, {us(3000), us(6000)}}, ReasonOverlappingWindows},
		{"beyond cycle", us(10000), []Window{{us(8000), us(12000)}}, ReasonOverlappingWindows},
		{"empty window", us(10000), []Window{{us(2000), us(2000)}}, ReasonOverlappingWindows},
		{"no windows", us(10000), nil, ReasonOverlappingWindows},
		{"zero cycle", 0, []Window{{0, us(1000)}}, ReasonBadTDMA},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewSchedule(tc.cycle, tc.windows, 0)
			if !errors.Is(err, ErrInvalidSystem) {
				t.Fatalf("error %v does not wrap ErrInvalidSystem", err)
			}
			var verr *ValidationError
			if !errors.As(err, &verr) || verr.Reason != tc.reason {
				t.Fatalf("error %v, want reason %q", err, tc.reason)
			}
		})
	}
}

// TestValidationAcceptsWellFormed: the baseline system still passes and
// produces a finite bound.
func TestValidationAcceptsWellFormed(t *testing.T) {
	irq, tdma := wellFormedIRQ()
	res, err := ClassicLatency(irq, tdma, nil, DefaultHorizon)
	if err != nil {
		t.Fatalf("well-formed system rejected: %v", err)
	}
	if res.WCRT <= 0 {
		t.Fatalf("WCRT = %v, want positive", res.WCRT)
	}
}
