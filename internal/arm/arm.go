// Package arm models the cost structure of the paper's evaluation
// platform: an ARM926ej-s at 200 MHz running uC/OS-MMU (§6).
//
// The simulation does not interpret ARM instructions; it charges time.
// Every overhead the paper quantifies — monitor execution, scheduler
// manipulation, context-switch cache/TLB invalidation and writeback — is
// carried here as a cycle cost so that internal/hv and internal/analysis
// consume one consistent set of constants.
package arm

import "repro/internal/simtime"

// CyclesPerInstr is the nominal cycles-per-instruction of the ARM926ej-s
// for the hypervisor's (mostly load/store and branch) code paths. The
// paper reports overheads in instruction counts; the ARM9 five-stage
// pipeline sustains close to one instruction per cycle from TCM/cache,
// so the model charges 1 cycle per instruction.
const CyclesPerInstr = 1

// Instruction counts and cycle costs measured in §6.2 of the paper.
const (
	// MonitorInstr is the worst-case instruction count of the
	// monitoring function C_Mon (including the call into the scheduler
	// when the IRQ is interposed): 128 instructions.
	MonitorInstr = 128
	// SchedInstr is the instruction count of the scheduler
	// manipulation for interposed bottom handlers, C_sched: 877
	// instructions.
	SchedInstr = 877
	// CtxSwitchInstr is the measured per-context-switch overhead for
	// invalidation of caches and TLB on ARMv5: ~5000 instructions.
	CtxSwitchInstr = 5000
	// CtxSwitchWritebackCycles is the additional cache-writeback cost
	// per context switch for the paper's memory layout: ~5000 cycles.
	CtxSwitchWritebackCycles = 5000
)

// Code and data footprint of the modification, in bytes (gcc -O1), from
// §6.2. These are reporting constants for the overhead table; the Go
// reproduction has no comparable footprint.
const (
	CodeBytesTotal      = 1120
	CodeBytesScheduler  = 392
	CodeBytesTopHandler = 456
	CodeBytesMonitor    = 272
	DataBytesMonitor    = 28
)

// CostModel is the set of WCETs the hypervisor simulation charges for
// its own operations. All values are durations at the simulated clock.
type CostModel struct {
	// Monitor is C_Mon: executing the monitoring function in the
	// modified top handler (eq. 15).
	Monitor simtime.Duration
	// Sched is C_sched: manipulating the partition scheduler to
	// interpose a bottom handler (eq. 13).
	Sched simtime.Duration
	// CtxSwitch is C_ctx: one full partition context switch, including
	// cache/TLB invalidation and writeback (eq. 13 charges two of
	// these per interposed IRQ).
	CtxSwitch simtime.Duration
	// QueuePush is the cost of pushing an IRQ event into a partition's
	// interrupt queue from the top handler; part of C_TH.
	QueuePush simtime.Duration
	// QueuePop is the cost of the partition-side check/pop of its
	// interrupt queue before dispatching a bottom handler.
	QueuePop simtime.Duration
}

// Instr returns the duration of n instructions under the model's nominal
// CPI.
func Instr(n int64) simtime.Duration {
	return simtime.Cycles(n * CyclesPerInstr)
}

// DefaultCosts returns the cost model with the paper's measured §6.2
// values.
func DefaultCosts() CostModel {
	return CostModel{
		Monitor:   Instr(MonitorInstr),
		Sched:     Instr(SchedInstr),
		CtxSwitch: Instr(CtxSwitchInstr) + simtime.Cycles(CtxSwitchWritebackCycles),
		QueuePush: Instr(40),
		QueuePop:  Instr(40),
	}
}

// ZeroCosts returns a cost model with every overhead zero; used by tests
// that check pure scheduling logic without overhead noise.
func ZeroCosts() CostModel { return CostModel{} }

// InterposedOverhead returns the overhead added on top of a bottom
// handler when it is interposed: C_sched + 2·C_ctx (eq. 13).
func (c CostModel) InterposedOverhead() simtime.Duration {
	return c.Sched + 2*c.CtxSwitch
}

// EffectiveBH returns C'_BH = C_BH + C_sched + 2·C_ctx (eq. 13): the
// execution time an interposed bottom handler effectively imposes on the
// interrupted partition.
func (c CostModel) EffectiveBH(cbh simtime.Duration) simtime.Duration {
	return cbh + c.InterposedOverhead()
}

// EffectiveTH returns C'_TH = C_TH + C_Mon (eq. 15): the top-handler
// WCET under the modified handler, which runs the monitoring function
// for every IRQ arriving outside its subscriber's slot.
func (c CostModel) EffectiveTH(cth simtime.Duration) simtime.Duration {
	return cth + c.Monitor
}
