package arm

import (
	"testing"

	"repro/internal/simtime"
)

func TestPaperConstants(t *testing.T) {
	// §6.2 of the paper.
	if MonitorInstr != 128 {
		t.Errorf("C_Mon = %d instr, want 128", MonitorInstr)
	}
	if SchedInstr != 877 {
		t.Errorf("C_sched = %d instr, want 877", SchedInstr)
	}
	if CtxSwitchInstr != 5000 {
		t.Errorf("C_ctx = %d instr, want ~5000", CtxSwitchInstr)
	}
	if CtxSwitchWritebackCycles != 5000 {
		t.Errorf("writeback = %d cycles, want ~5000", CtxSwitchWritebackCycles)
	}
	if CodeBytesTotal != 1120 {
		t.Errorf("code total = %d B, want 1120", CodeBytesTotal)
	}
	if CodeBytesScheduler+CodeBytesTopHandler+CodeBytesMonitor != CodeBytesTotal {
		t.Errorf("code parts %d+%d+%d != total %d",
			CodeBytesScheduler, CodeBytesTopHandler, CodeBytesMonitor, CodeBytesTotal)
	}
	if DataBytesMonitor != 28 {
		t.Errorf("data = %d B, want 28", DataBytesMonitor)
	}
}

func TestInstr(t *testing.T) {
	// 1 cycle per instruction at 200 MHz: 200 instructions = 1 µs.
	if got := Instr(200); got != simtime.Microsecond {
		t.Fatalf("Instr(200) = %v, want 1µs", got)
	}
}

func TestDefaultCosts(t *testing.T) {
	c := DefaultCosts()
	if c.Monitor != simtime.Cycles(128) {
		t.Errorf("Monitor = %v", c.Monitor)
	}
	if c.Sched != simtime.Cycles(877) {
		t.Errorf("Sched = %v", c.Sched)
	}
	// 5000 instructions + 5000 writeback cycles = 10000 cycles = 50 µs.
	if c.CtxSwitch != simtime.Micros(50) {
		t.Errorf("CtxSwitch = %v, want 50µs", c.CtxSwitch)
	}
	if c.QueuePush <= 0 || c.QueuePop <= 0 {
		t.Error("queue costs must be positive in the default model")
	}
}

func TestEffectiveBH(t *testing.T) {
	// eq. (13): C'_BH = C_BH + C_sched + 2·C_ctx.
	c := DefaultCosts()
	cbh := simtime.Micros(30)
	want := cbh + c.Sched + 2*c.CtxSwitch
	if got := c.EffectiveBH(cbh); got != want {
		t.Fatalf("EffectiveBH = %v, want %v", got, want)
	}
	if got := c.InterposedOverhead(); got != c.Sched+2*c.CtxSwitch {
		t.Fatalf("InterposedOverhead = %v", got)
	}
}

func TestEffectiveTH(t *testing.T) {
	// eq. (15): C'_TH = C_TH + C_Mon.
	c := DefaultCosts()
	cth := simtime.Micros(6)
	if got := c.EffectiveTH(cth); got != cth+c.Monitor {
		t.Fatalf("EffectiveTH = %v", got)
	}
}

func TestZeroCosts(t *testing.T) {
	z := ZeroCosts()
	if z.EffectiveBH(simtime.Micros(10)) != simtime.Micros(10) {
		t.Fatal("ZeroCosts must add nothing")
	}
	if z.EffectiveTH(simtime.Micros(10)) != simtime.Micros(10) {
		t.Fatal("ZeroCosts must add nothing")
	}
}
