package campaign

import (
	"fmt"
	"sort"
)

// MaxRepros bounds the reproducer list an aggregate retains: the
// MaxRepros violating cells with the lowest cell indices. Retention by
// minimum index is itself commutative — the set an aggregate ends up
// with does not depend on merge order.
const MaxRepros = 16

// Repro is one retained violation: the replay recipe for a failing
// cell, in aggregate form.
type Repro struct {
	// Index is the cell's position in the campaign's deterministic
	// expansion order.
	Index int    `json:"index"`
	Fault string `json:"fault"`
	// Class identifies a diffuzz cell's scenario class (Fault empty).
	Class     string  `json:"class,omitempty"`
	Intensity float64 `json:"intensity"`
	Seed      uint64  `json:"seed"`
	// Violation and Fingerprint come straight from the cell result.
	Violation   string `json:"violation"`
	Fingerprint string `json:"fingerprint,omitempty"`
}

// BucketAgg is the per-fault×intensity aggregate: one row of the
// campaign's sweep table. All numeric state is integral so the fold is
// exact and order-independent.
type BucketAgg struct {
	Fault string `json:"fault"`
	// Class keys the bucket of a diffuzz campaign (Fault stays empty).
	Class     string  `json:"class,omitempty"`
	Intensity float64 `json:"intensity"`
	// Cells/Errors/Violations count merged cells, run failures and
	// failed eq. (14) verdicts in this bucket.
	Cells      int `json:"cells"`
	Errors     int `json:"errors"`
	Violations int `json:"violations"`
	// Victim suffix latency over the bucket's cells, in CPU cycles.
	// Min/Max/Sum are meaningful iff Count > 0.
	Count     int64 `json:"count"`
	MinCycles int64 `json:"min_cycles"`
	MaxCycles int64 `json:"max_cycles"`
	SumCycles int64 `json:"sum_cycles"`
	// Shaping counters summed over the bucket's cells.
	Grants uint64 `json:"grants"`
	Denied uint64 `json:"denied"`
	// Bound tightness over the bucket's diffuzz cells: gap = bound −
	// observed, per checked victim. Min/Sum meaningful iff GapCount > 0.
	GapCount     int64 `json:"gap_count,omitempty"`
	MinGapCycles int64 `json:"min_gap_cycles,omitempty"`
	SumGapCycles int64 `json:"sum_gap_cycles,omitempty"`
	// Invalid counts scenarios the analysis rejected as malformed.
	Invalid int `json:"invalid,omitempty"`
}

// MeanCycles returns the bucket's mean latency, truncated.
func (b *BucketAgg) MeanCycles() int64 {
	if b.Count == 0 {
		return 0
	}
	return b.SumCycles / b.Count
}

// MeanGapCycles returns the bucket's mean tightness gap, truncated.
func (b *BucketAgg) MeanGapCycles() int64 {
	if b.GapCount == 0 {
		return 0
	}
	return b.SumGapCycles / b.GapCount
}

// Aggregate is the campaign's streaming summary: a commutative monoid
// over cell results, folded as cells complete in whatever order the
// queue drains them. Because every operation is an integer sum, a
// min/max, a sketch bucket add or min-index reproducer retention, the
// final state — and therefore its encoding — is byte-identical for
// every merge order over the same cells, which is what makes campaigns
// resumable: a SIGKILLed run refolds stored results and lands on the
// same bytes.
//
// An Aggregate is single-writer; the serve tier serialises merges under
// its campaign lock.
type Aggregate struct {
	Spec       Spec
	TotalCells int
	// Done counts merged cells (success or failure); the campaign is
	// complete when Done == TotalCells.
	Done       int
	Errors     int
	Violations int

	// Campaign-wide victim suffix latency (cycles) and shaping totals.
	Count     int64
	MinCycles int64
	MaxCycles int64
	SumCycles int64
	Grants    uint64
	Denied    uint64

	// Campaign-wide bound tightness (diffuzz campaigns) and invalid-
	// scenario count. Min/Sum meaningful iff GapCount > 0.
	GapCount     int64
	MinGapCycles int64
	SumGapCycles int64
	Invalid      int

	// Latency is the campaign-wide percentile sketch.
	Latency Sketch
	// Buckets is the fault×intensity sweep table in expansion order —
	// a fixed slice, never a map, so iteration is deterministic.
	Buckets []BucketAgg
	// Repros holds the ≤ MaxRepros lowest-index violations, ascending.
	Repros []Repro

	merged []bool
}

// NewAggregate returns the empty aggregate for a spec, normalizing it.
func NewAggregate(spec Spec) (*Aggregate, error) {
	if err := spec.Normalize(); err != nil {
		return nil, err
	}
	a := &Aggregate{
		Spec:       spec,
		TotalCells: spec.Cells(),
		Buckets:    make([]BucketAgg, 0, spec.Buckets()),
		merged:     make([]bool, spec.Cells()),
	}
	if spec.Kind == KindDiffuzz {
		for _, c := range spec.Classes {
			a.Buckets = append(a.Buckets, BucketAgg{Class: c})
		}
		return a, nil
	}
	for _, f := range spec.Faults {
		for _, in := range spec.Intensities.Values() {
			a.Buckets = append(a.Buckets, BucketAgg{Fault: f, Intensity: in})
		}
	}
	return a, nil
}

// Complete reports whether every cell has been merged.
func (a *Aggregate) Complete() bool { return a.Done == a.TotalCells }

// MeanCycles returns the campaign-wide mean latency, truncated.
func (a *Aggregate) MeanCycles() int64 {
	if a.Count == 0 {
		return 0
	}
	return a.SumCycles / a.Count
}

// MeanGapCycles returns the campaign-wide mean tightness gap, truncated.
func (a *Aggregate) MeanGapCycles() int64 {
	if a.GapCount == 0 {
		return 0
	}
	return a.SumGapCycles / a.GapCount
}

func (a *Aggregate) claim(index int) (*BucketAgg, error) {
	if index < 0 || index >= a.TotalCells {
		return nil, fmt.Errorf("campaign: cell index %d outside [0, %d)", index, a.TotalCells)
	}
	if a.merged[index] {
		return nil, fmt.Errorf("campaign: cell %d merged twice", index)
	}
	a.merged[index] = true
	a.Done++
	return &a.Buckets[index/a.Spec.Seeds.Count], nil
}

// MergeCell folds one completed cell into the aggregate. Each index may
// be merged exactly once; a second merge is an orchestration bug and is
// rejected rather than silently double-counted.
func (a *Aggregate) MergeCell(index int, cr *CellResult) error {
	b, err := a.claim(index)
	if err != nil {
		return err
	}
	b.Cells++
	if !cr.Pass {
		a.Violations++
		b.Violations++
		a.retain(Repro{
			Index:       index,
			Fault:       cr.Spec.Fault,
			Class:       cr.Spec.Class,
			Intensity:   cr.Spec.Intensity,
			Seed:        cr.Spec.Seed,
			Violation:   cr.Violation,
			Fingerprint: cr.Fingerprint,
		})
	}
	if cr.Invalid {
		a.Invalid++
		b.Invalid++
	}
	if cr.GapCount > 0 {
		if a.GapCount == 0 || cr.MinGapCycles < a.MinGapCycles {
			a.MinGapCycles = cr.MinGapCycles
		}
		a.GapCount += cr.GapCount
		a.SumGapCycles += cr.SumGapCycles
		if b.GapCount == 0 || cr.MinGapCycles < b.MinGapCycles {
			b.MinGapCycles = cr.MinGapCycles
		}
		b.GapCount += cr.GapCount
		b.SumGapCycles += cr.SumGapCycles
	}
	if cr.Count > 0 {
		if a.Count == 0 || cr.MinCycles < a.MinCycles {
			a.MinCycles = cr.MinCycles
		}
		if cr.MaxCycles > a.MaxCycles {
			a.MaxCycles = cr.MaxCycles
		}
		a.Count += cr.Count
		a.SumCycles += cr.SumCycles
		if b.Count == 0 || cr.MinCycles < b.MinCycles {
			b.MinCycles = cr.MinCycles
		}
		if cr.MaxCycles > b.MaxCycles {
			b.MaxCycles = cr.MaxCycles
		}
		b.Count += cr.Count
		b.SumCycles += cr.SumCycles
	}
	a.Grants += cr.Grants
	a.Denied += cr.Denied
	b.Grants += cr.Grants
	b.Denied += cr.Denied
	a.Latency.MergePairs(cr.Sketch)
	return nil
}

// MergeFailure records a cell whose run failed outright (no result).
// The cell still counts toward completion so a campaign with a broken
// cell terminates instead of hanging.
func (a *Aggregate) MergeFailure(index int, msg string) error {
	b, err := a.claim(index)
	if err != nil {
		return err
	}
	_ = msg // the per-cell error lives in the job record, not the fold
	b.Cells++
	b.Errors++
	a.Errors++
	return nil
}

// retain inserts r keeping Repros ascending by index and bounded by
// MaxRepros — i.e. the MaxRepros lowest-index violations survive.
func (a *Aggregate) retain(r Repro) {
	i := sort.Search(len(a.Repros), func(i int) bool { return a.Repros[i].Index >= r.Index })
	a.Repros = append(a.Repros, Repro{})
	copy(a.Repros[i+1:], a.Repros[i:])
	a.Repros[i] = r
	if len(a.Repros) > MaxRepros {
		a.Repros = a.Repros[:MaxRepros]
	}
}
