// Package campaign is the million-cell orchestration layer (DESIGN.md
// §12): a client submits one small *generator spec* — scenario template
// × fault model × intensity range × seed range — and the daemon expands
// it deterministically into individually journaled, content-addressed
// cells that flow through the ordinary serve queue/store machinery,
// grouped so cells sharing a warm prefix fork from one DES snapshot
// (engine.ForkCampaign) instead of each paying the cold run.
//
// Everything here is a pure function of the spec: expansion order,
// per-cell rng streams, the fork point, and the aggregate fold are all
// deterministic, so a campaign's final aggregate is byte-identical
// whether its cells ran in-process sequentially, across a worker pool,
// or across a SIGKILL + journal-replay resume. The aggregate is a
// commutative monoid (integer sums, mins, maxes, sketch bucket adds,
// min-cell-index reproducer retention), which is what buys fold-order
// independence without coordinating completion order.
package campaign

import (
	"fmt"

	"repro/internal/diffuzz"
	"repro/internal/faults"
)

// Campaign kinds. The zero value selects the original chaos fault
// sweep, keeping every pre-existing spec's content address stable.
const (
	// KindChaos is the fault-injection sweep over the §6.1 reference
	// system (the canonical empty string).
	KindChaos = ""
	// KindDiffuzz is the differential-fuzz sweep: every cell generates a
	// random system (internal/diffuzz) and checks the analytic bounds
	// against the DES, folding bound tightness into the aggregate.
	KindDiffuzz = "diffuzz"
)

// Expansion bounds: a generator spec is refused, not truncated, beyond
// these — silent truncation would make the aggregate lie about
// coverage.
const (
	// MaxCells bounds one campaign's expansion.
	MaxCells = 1 << 20
	// MaxEvents bounds the per-cell prefix and suffix workload sizes.
	MaxEvents = 50_000
)

// IntensityRange is an inclusive linear sweep: Steps values from Min to
// Max (Steps == 1 selects just Min). Values are generated with the
// fixed formula Min + i·(Max−Min)/(Steps−1), so the same range always
// expands to bit-identical float64 intensities.
type IntensityRange struct {
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Steps int     `json:"steps"`
}

// Values expands the range.
func (r IntensityRange) Values() []float64 {
	out := make([]float64, r.Steps)
	for i := range out {
		if r.Steps == 1 {
			out[i] = r.Min
			continue
		}
		out[i] = r.Min + (r.Max-r.Min)*float64(i)/float64(r.Steps-1)
	}
	return out
}

// SeedRange is the consecutive seed sweep [Base, Base+Count).
type SeedRange struct {
	Base  uint64 `json:"base"`
	Count int    `json:"count"`
}

// Spec is the generator: the entire campaign in one document. Cell
// ordering is part of the contract — cells expand fault-major, then by
// intensity step, then by seed — so cell index i always names the same
// computation for the same spec.
type Spec struct {
	// Kind selects the campaign family: KindChaos (the zero value) or
	// KindDiffuzz. Kind-specific fields must stay zero for the other
	// kind so every spec naming the same campaign has one form.
	Kind string `json:"kind,omitempty"`
	// Classes lists diffuzz scenario classes in sweep order; empty
	// selects every registered class. KindDiffuzz only.
	Classes []string `json:"classes,omitempty"`
	// Events is the per-stream arrival count of each diffuzz cell; 0
	// selects diffuzz.DefaultEvents. KindDiffuzz only.
	Events int `json:"events,omitempty"`
	// Faults lists fault model names (internal/faults registry) in
	// sweep order; empty selects every registered model.
	Faults []string `json:"faults,omitempty"`
	// Intensities is the per-fault intensity sweep; the zero value
	// selects {0.25 … 1.0 in 4 steps}.
	Intensities IntensityRange `json:"intensities,omitempty"`
	// Seeds is the per-(fault, intensity) seed sweep; the zero value
	// selects the single seed 1.
	Seeds SeedRange `json:"seeds,omitempty"`
	// PrefixSeed derives the shared warm-up streams; 0 selects 2014.
	PrefixSeed uint64 `json:"prefix_seed,omitempty"`
	// PrefixEvents is the length of the shared benign prefix every cell
	// forks from; 0 selects 400.
	PrefixEvents int `json:"prefix_events,omitempty"`
	// SuffixEvents is the per-cell adversarial suffix length; 0
	// selects 120.
	SuffixEvents int `json:"suffix_events,omitempty"`
}

// Normalize validates sp and fills defaults so every spec naming the
// same campaign reduces to one canonical form — the precondition for
// the campaign's content address.
func (sp *Spec) Normalize() error {
	switch sp.Kind {
	case KindChaos:
		if len(sp.Classes) != 0 || sp.Events != 0 {
			return fmt.Errorf("campaign: classes/events are diffuzz-sweep fields")
		}
	case KindDiffuzz:
		return sp.normalizeDiffuzz()
	default:
		return fmt.Errorf("campaign: unknown kind %q", sp.Kind)
	}
	if len(sp.Faults) == 0 {
		sp.Faults = faults.Names()
	}
	seen := map[string]bool{}
	for _, f := range sp.Faults {
		if _, ok := faults.Lookup(f); !ok {
			return fmt.Errorf("campaign: unknown fault model %q (have %v)", f, faults.Names())
		}
		if seen[f] {
			return fmt.Errorf("campaign: fault model %q listed twice", f)
		}
		seen[f] = true
	}
	if sp.Intensities == (IntensityRange{}) {
		sp.Intensities = IntensityRange{Min: 0.25, Max: 1.0, Steps: 4}
	}
	ir := sp.Intensities
	if ir.Steps < 1 {
		return fmt.Errorf("campaign: intensity steps must be >= 1, got %d", ir.Steps)
	}
	if ir.Min < 0 || ir.Max > 1 || ir.Min > ir.Max {
		return fmt.Errorf("campaign: intensity range [%g, %g] outside 0 <= min <= max <= 1", ir.Min, ir.Max)
	}
	if ir.Steps == 1 && ir.Min != ir.Max {
		return fmt.Errorf("campaign: a 1-step intensity range needs min == max, got [%g, %g]", ir.Min, ir.Max)
	}
	if sp.Seeds == (SeedRange{}) {
		sp.Seeds = SeedRange{Base: 1, Count: 1}
	}
	if sp.Seeds.Count < 1 {
		return fmt.Errorf("campaign: seed count must be >= 1, got %d", sp.Seeds.Count)
	}
	if sp.PrefixSeed == 0 {
		sp.PrefixSeed = 2014
	}
	if sp.PrefixEvents == 0 {
		sp.PrefixEvents = 400
	}
	if sp.SuffixEvents == 0 {
		sp.SuffixEvents = 120
	}
	if sp.PrefixEvents < 1 || sp.PrefixEvents > MaxEvents {
		return fmt.Errorf("campaign: prefix events %d outside [1, %d]", sp.PrefixEvents, MaxEvents)
	}
	if sp.SuffixEvents < 1 || sp.SuffixEvents > MaxEvents {
		return fmt.Errorf("campaign: suffix events %d outside [1, %d]", sp.SuffixEvents, MaxEvents)
	}
	if n := sp.Cells(); n > MaxCells {
		return fmt.Errorf("campaign: spec expands to %d cells, above the %d-cell bound", n, MaxCells)
	}
	return nil
}

// normalizeDiffuzz is Normalize for KindDiffuzz: the sweep axes are
// scenario class × seed, the chaos-sweep fields must stay zero, and the
// intensity range collapses to the single step the bucket arithmetic
// (index / Seeds.Count) expects.
func (sp *Spec) normalizeDiffuzz() error {
	if len(sp.Faults) != 0 {
		return fmt.Errorf("campaign: a diffuzz campaign sweeps classes, not faults")
	}
	if sp.PrefixSeed != 0 || sp.PrefixEvents != 0 || sp.SuffixEvents != 0 {
		return fmt.Errorf("campaign: prefix/suffix are chaos-sweep fields")
	}
	one := IntensityRange{Steps: 1}
	if sp.Intensities == (IntensityRange{}) {
		sp.Intensities = one
	}
	if sp.Intensities != one {
		return fmt.Errorf("campaign: a diffuzz campaign takes no intensity sweep")
	}
	if len(sp.Classes) == 0 {
		sp.Classes = diffuzz.Classes()
	}
	seen := map[string]bool{}
	for _, c := range sp.Classes {
		if !diffuzz.ValidClass(c) {
			return fmt.Errorf("campaign: unknown scenario class %q (have %v)", c, diffuzz.Classes())
		}
		if seen[c] {
			return fmt.Errorf("campaign: scenario class %q listed twice", c)
		}
		seen[c] = true
	}
	if sp.Events == 0 {
		sp.Events = diffuzz.DefaultEvents
	}
	if sp.Events < 2 || sp.Events > diffuzz.MaxEvents {
		return fmt.Errorf("campaign: events %d outside [2, %d]", sp.Events, diffuzz.MaxEvents)
	}
	if sp.Seeds == (SeedRange{}) {
		sp.Seeds = SeedRange{Base: 1, Count: 1}
	}
	if sp.Seeds.Count < 1 {
		return fmt.Errorf("campaign: seed count must be >= 1, got %d", sp.Seeds.Count)
	}
	if n := sp.Cells(); n > MaxCells {
		return fmt.Errorf("campaign: spec expands to %d cells, above the %d-cell bound", n, MaxCells)
	}
	return nil
}

// Cells returns the expansion size without expanding.
func (sp *Spec) Cells() int {
	if sp.Kind == KindDiffuzz {
		return len(sp.Classes) * sp.Seeds.Count
	}
	return len(sp.Faults) * sp.Intensities.Steps * sp.Seeds.Count
}

// Buckets returns the number of aggregation buckets: fault×intensity
// for a chaos sweep, one per scenario class for a diffuzz sweep.
func (sp *Spec) Buckets() int {
	if sp.Kind == KindDiffuzz {
		return len(sp.Classes)
	}
	return len(sp.Faults) * sp.Intensities.Steps
}

// Cell identifies one expanded campaign cell. Its computation is fully
// described by the CellSpec it maps to; Index fixes its place in the
// deterministic cell order (and thereby its aggregation bucket,
// Index / Seeds.Count).
type Cell struct {
	Index     int
	Fault     string
	Class     string
	Intensity float64
	Seed      uint64
}

// Expand enumerates the campaign deterministically: fault-major (chaos)
// or class-major (diffuzz), then intensity step, then seed. The caller
// must have Normalized sp.
func (sp *Spec) Expand() []Cell {
	cells := make([]Cell, 0, sp.Cells())
	if sp.Kind == KindDiffuzz {
		for _, c := range sp.Classes {
			for s := 0; s < sp.Seeds.Count; s++ {
				cells = append(cells, Cell{
					Index: len(cells),
					Class: c,
					Seed:  sp.Seeds.Base + uint64(s),
				})
			}
		}
		return cells
	}
	intensities := sp.Intensities.Values()
	for _, f := range sp.Faults {
		for _, in := range intensities {
			for s := 0; s < sp.Seeds.Count; s++ {
				cells = append(cells, Cell{
					Index:     len(cells),
					Fault:     f,
					Intensity: in,
					Seed:      sp.Seeds.Base + uint64(s),
				})
			}
		}
	}
	return cells
}

// CellSpec maps one expanded cell to its standalone, content-addressable
// computation document. Index is deliberately absent: two campaigns (or
// two cells) naming the same computation tuple dedupe to one job.
func (sp *Spec) CellSpec(c Cell) CellSpec {
	if sp.Kind == KindDiffuzz {
		return CellSpec{
			Kind:   KindDiffuzz,
			Class:  c.Class,
			Seed:   c.Seed,
			Events: sp.Events,
		}
	}
	return CellSpec{
		Fault:        c.Fault,
		Intensity:    c.Intensity,
		Seed:         c.Seed,
		PrefixSeed:   sp.PrefixSeed,
		PrefixEvents: sp.PrefixEvents,
		SuffixEvents: sp.SuffixEvents,
	}
}
