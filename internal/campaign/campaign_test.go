package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"testing"
)

func testSpec() Spec {
	return Spec{
		Faults:       []string{"babbling-idiot", "stuck-line"},
		Intensities:  IntensityRange{Min: 0.25, Max: 1.0, Steps: 2},
		Seeds:        SeedRange{Base: 1, Count: 2},
		PrefixEvents: 60,
		SuffixEvents: 25,
	}
}

// TestSpecNormalizeDefaults pins the default grammar.
func TestSpecNormalizeDefaults(t *testing.T) {
	var sp Spec
	if err := sp.Normalize(); err != nil {
		t.Fatal(err)
	}
	if len(sp.Faults) != 5 || sp.Intensities.Steps != 4 || sp.Seeds.Count != 1 ||
		sp.PrefixSeed != 2014 || sp.PrefixEvents != 400 || sp.SuffixEvents != 120 {
		t.Fatalf("unexpected defaults: %+v", sp)
	}
	if sp.Cells() != 20 || sp.Buckets() != 20 {
		t.Fatalf("default expansion: cells %d buckets %d", sp.Cells(), sp.Buckets())
	}
}

// TestSpecNormalizeRejects pins the validation errors.
func TestSpecNormalizeRejects(t *testing.T) {
	bad := []Spec{
		{Faults: []string{"no-such-model"}},
		{Faults: []string{"babbling-idiot", "babbling-idiot"}},
		{Intensities: IntensityRange{Min: 0.5, Max: 0.25, Steps: 2}},
		{Intensities: IntensityRange{Min: 0, Max: 2, Steps: 2}},
		{Intensities: IntensityRange{Min: 0.2, Max: 0.8, Steps: 1}},
		{Seeds: SeedRange{Base: 1, Count: -1}},
		{PrefixEvents: MaxEvents + 1},
		{SuffixEvents: -3},
		{Faults: []string{"babbling-idiot"}, Intensities: IntensityRange{Min: 0, Max: 1, Steps: 1 << 12}, Seeds: SeedRange{Base: 1, Count: 1 << 10}},
	}
	for i, sp := range bad {
		if err := sp.Normalize(); err == nil {
			t.Errorf("spec %d: expected a validation error, got none (%+v)", i, sp)
		}
	}
}

// TestExpandDeterministic pins the cell ordering contract: fault-major,
// then intensity, then seed, with the bucket index = cell/seedCount.
func TestExpandDeterministic(t *testing.T) {
	sp := testSpec()
	if err := sp.Normalize(); err != nil {
		t.Fatal(err)
	}
	cells := sp.Expand()
	if len(cells) != 8 {
		t.Fatalf("expanded %d cells, want 8", len(cells))
	}
	want := []Cell{
		{Index: 0, Fault: "babbling-idiot", Intensity: 0.25, Seed: 1},
		{Index: 1, Fault: "babbling-idiot", Intensity: 0.25, Seed: 2},
		{Index: 2, Fault: "babbling-idiot", Intensity: 1.0, Seed: 1},
		{Index: 3, Fault: "babbling-idiot", Intensity: 1.0, Seed: 2},
		{Index: 4, Fault: "stuck-line", Intensity: 0.25, Seed: 1},
		{Index: 5, Fault: "stuck-line", Intensity: 0.25, Seed: 2},
		{Index: 6, Fault: "stuck-line", Intensity: 1.0, Seed: 1},
		{Index: 7, Fault: "stuck-line", Intensity: 1.0, Seed: 2},
	}
	for i, c := range cells {
		if c != want[i] {
			t.Fatalf("cell %d = %+v, want %+v", i, c, want[i])
		}
	}
	again := sp.Expand()
	for i := range cells {
		if cells[i] != again[i] {
			t.Fatalf("expansion not deterministic at cell %d", i)
		}
	}
}

// TestCellSpecDedupeAcrossCampaigns pins that CellSpec excludes the
// campaign context: the same (fault, intensity, seed, prefix, suffix)
// tuple from two different specs is the same document, so the serve
// tier dedupes it.
func TestCellSpecDedupeAcrossCampaigns(t *testing.T) {
	a := testSpec()
	if err := a.Normalize(); err != nil {
		t.Fatal(err)
	}
	b := a
	b.Faults = []string{"stuck-line"} // different campaign shape
	if err := b.Normalize(); err != nil {
		t.Fatal(err)
	}
	ca := a.CellSpec(a.Expand()[4]) // stuck-line @0.25 seed 1 in a
	cb := b.CellSpec(b.Expand()[0]) // the same cell in b
	if ca != cb {
		t.Fatalf("identical cells differ across campaigns: %+v vs %+v", ca, cb)
	}
	ja, _ := json.Marshal(ca)
	jb, _ := json.Marshal(cb)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("cell documents differ: %s vs %s", ja, jb)
	}
}

// TestWarmColdByteIdentity is the fork-equivalence check at the
// campaign layer: for every cell of a small campaign, the warm-prefix
// Runner and the cold two-phase reference produce byte-identical wire
// documents.
func TestWarmColdByteIdentity(t *testing.T) {
	sp := testSpec()
	if err := sp.Normalize(); err != nil {
		t.Fatal(err)
	}
	r := NewRunner()
	for _, c := range sp.Expand() {
		cs := sp.CellSpec(c)
		warm, err := r.Run(cs)
		if err != nil {
			t.Fatalf("warm cell %d: %v", c.Index, err)
		}
		cold, err := RunCellCold(cs)
		if err != nil {
			t.Fatalf("cold cell %d: %v", c.Index, err)
		}
		jw, _ := json.Marshal(warm)
		jc, _ := json.Marshal(cold)
		if !bytes.Equal(jw, jc) {
			t.Fatalf("cell %d (%s@%g seed %d): warm fork diverges from cold replay\nwarm: %s\ncold: %s",
				c.Index, c.Fault, c.Intensity, c.Seed, jw, jc)
		}
		if warm.Count == 0 {
			t.Fatalf("cell %d: no suffix victim deliveries recorded", c.Index)
		}
	}
}

// TestRunnerDeterministic pins that re-running a cell on the same
// Runner (snapshot restore path) and on a fresh Runner (new fork)
// yields identical documents.
func TestRunnerDeterministic(t *testing.T) {
	sp := testSpec()
	if err := sp.Normalize(); err != nil {
		t.Fatal(err)
	}
	cs := sp.CellSpec(sp.Expand()[3])
	r := NewRunner()
	a, err := r.Run(cs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(cs) // same runner, restore path
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewRunner().Run(cs) // fresh fork
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	jc, _ := json.Marshal(c)
	if !bytes.Equal(ja, jb) || !bytes.Equal(ja, jc) {
		t.Fatalf("cell result not stable across runs:\n%s\n%s\n%s", ja, jb, jc)
	}
}

// TestAggregateShuffledFold is the campaign-layer commutativity
// property: merging the same cell results in any completion order
// yields a byte-identical encoded aggregate.
func TestAggregateShuffledFold(t *testing.T) {
	sp := testSpec()
	agg, err := NewAggregate(sp)
	if err != nil {
		t.Fatal(err)
	}
	cells := agg.Spec.Expand()
	r := NewRunner()
	results := make([]*CellResult, len(cells))
	for i, c := range cells {
		if results[i], err = r.Run(agg.Spec.CellSpec(c)); err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
	}
	fold := func(order []int) []byte {
		a, err := NewAggregate(sp)
		if err != nil {
			t.Fatal(err)
		}
		for _, i := range order {
			if err := a.MergeCell(i, results[i]); err != nil {
				t.Fatal(err)
			}
		}
		if !a.Complete() {
			t.Fatal("aggregate not complete after merging every cell")
		}
		buf, err := json.Marshal(encodableAggregate(a))
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	sequential := make([]int, len(cells))
	for i := range sequential {
		sequential[i] = i
	}
	reference := fold(sequential)
	rnd := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		if got := fold(rnd.Perm(len(cells))); !bytes.Equal(got, reference) {
			t.Fatalf("trial %d: shuffled fold diverges\ngot:  %s\nwant: %s", trial, got, reference)
		}
	}
}

// encodableAggregate projects the aggregate's exported state into a
// json.Marshal-able view (the Sketch itself is opaque; its pairs are
// the wire form).
func encodableAggregate(a *Aggregate) any {
	return struct {
		Done, Errors, Violations    int
		Count, MinCycles, MaxCycles int64
		SumCycles                   int64
		Grants, Denied              uint64
		Sketch                      []SketchBucket
		Buckets                     []BucketAgg
		Repros                      []Repro
	}{
		a.Done, a.Errors, a.Violations,
		a.Count, a.MinCycles, a.MaxCycles, a.SumCycles,
		a.Grants, a.Denied, a.Latency.Pairs(), a.Buckets, a.Repros,
	}
}

// TestAggregateRejectsDoubleMerge pins the orchestration guard.
func TestAggregateRejectsDoubleMerge(t *testing.T) {
	sp := testSpec()
	agg, err := NewAggregate(sp)
	if err != nil {
		t.Fatal(err)
	}
	cr := &CellResult{Spec: agg.Spec.CellSpec(agg.Spec.Expand()[0]), Pass: true}
	if err := agg.MergeCell(0, cr); err != nil {
		t.Fatal(err)
	}
	if err := agg.MergeCell(0, cr); err == nil {
		t.Fatal("double merge accepted")
	}
	if err := agg.MergeFailure(99, "nope"); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if err := agg.MergeFailure(1, "cell exploded"); err != nil {
		t.Fatal(err)
	}
	if agg.Errors != 1 || agg.Done != 2 {
		t.Fatalf("errors %d done %d, want 1 and 2", agg.Errors, agg.Done)
	}
}

// TestReproRetention pins min-index retention: with more violations
// than MaxRepros, the lowest indices survive regardless of merge order.
func TestReproRetention(t *testing.T) {
	sp := Spec{
		Faults:      []string{"babbling-idiot"},
		Intensities: IntensityRange{Min: 0.5, Max: 0.5, Steps: 1},
		Seeds:       SeedRange{Base: 1, Count: MaxRepros + 9},
	}
	agg, err := NewAggregate(sp)
	if err != nil {
		t.Fatal(err)
	}
	order := rand.New(rand.NewSource(5)).Perm(agg.TotalCells)
	for _, i := range order {
		cr := &CellResult{
			Spec:      agg.Spec.CellSpec(agg.Spec.Expand()[i]),
			Pass:      false,
			Violation: "synthetic",
		}
		if err := agg.MergeCell(i, cr); err != nil {
			t.Fatal(err)
		}
	}
	if len(agg.Repros) != MaxRepros {
		t.Fatalf("retained %d repros, want %d", len(agg.Repros), MaxRepros)
	}
	for i, r := range agg.Repros {
		if r.Index != i {
			t.Fatalf("repro %d has index %d; lowest indices should survive", i, r.Index)
		}
	}
}

// TestFoldMatchesManualMerge pins Fold against a by-hand sequential
// run+merge, across worker counts.
func TestFoldMatchesManualMerge(t *testing.T) {
	sp := testSpec()
	seq, err := Fold(context.Background(), sp, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Fold(context.Background(), sp, 4)
	if err != nil {
		t.Fatal(err)
	}
	js, _ := json.Marshal(encodableAggregate(seq))
	jp, _ := json.Marshal(encodableAggregate(par))
	if !bytes.Equal(js, jp) {
		t.Fatalf("parallel fold diverges from sequential:\n%s\n%s", js, jp)
	}
	if !seq.Complete() || seq.Done != 8 {
		t.Fatalf("fold incomplete: %+v", seq)
	}
}
