package campaign

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/curves"
	"repro/internal/diffuzz"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/hv"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/workload"
)

// Cell scenario constants: the paper's §6.1 reference system, matching
// the internal/faults chaos campaign. Every cell in a campaign runs
// this platform; only the arrival streams differ, which is what lets
// all cells sharing (PrefixSeed, PrefixEvents) fork from one warm
// snapshot — the scenario the snapshot was built for is identical.
const (
	slotApp1Us         = 6000 // attacker partition slot
	slotApp2Us         = 6000 // victim partition slot
	slotHousekeepingUs = 2000
	attackerDMinUs     = 1344 // the paper's l = 1 monitoring condition
	handlerCTHUs       = 6
	handlerCBHUs       = 30
	victimMeanUs       = 2500 // benign victim interarrival mean
	victimDMinUs       = 500  // benign victim clamp
	// suffixLeadUs separates the fork point from the first suffix
	// arrival, so suffixes never precede the snapshot clock.
	suffixLeadUs = 500
)

// Actor indices in the cell scenario (IRQ index == partition index).
const (
	cellAttacker = 0
	cellVictim   = 1
)

// Stream ids: the prefix draws from PrefixSeed so every cell of a
// campaign shares it bit for bit; the suffix draws from the cell Seed.
const (
	streamPrefixAttacker = 0
	streamPrefixVictim   = 1
	streamSuffixAttacker = 2
	streamSuffixVictim   = 3
)

// CellSpec is one campaign cell as a standalone computation document —
// the unit that is journaled, content-addressed and deduped by the
// serve tier. All fields are explicit (campaign expansion fills them),
// so the same document always names the same simulation.
type CellSpec struct {
	// Kind and the diffuzz axes mirror Spec.Kind: the zero Kind is a
	// chaos cell (all new fields omitted, so pre-existing cell documents
	// keep their content addresses bit for bit).
	Kind   string `json:"kind,omitempty"`
	Class  string `json:"class,omitempty"`
	Events int    `json:"events,omitempty"`

	Fault        string  `json:"fault"`
	Intensity    float64 `json:"intensity"`
	Seed         uint64  `json:"seed"`
	PrefixSeed   uint64  `json:"prefix_seed"`
	PrefixEvents int     `json:"prefix_events"`
	SuffixEvents int     `json:"suffix_events"`
}

// Validate rejects documents outside the cell grammar.
func (cs CellSpec) Validate() error {
	switch cs.Kind {
	case KindDiffuzz:
		if !diffuzz.ValidClass(cs.Class) {
			return fmt.Errorf("campaign: unknown scenario class %q (have %v)", cs.Class, diffuzz.Classes())
		}
		if cs.Events < 2 || cs.Events > diffuzz.MaxEvents {
			return fmt.Errorf("campaign: events %d outside [2, %d]", cs.Events, diffuzz.MaxEvents)
		}
		if cs.Fault != "" || cs.Intensity != 0 || cs.PrefixSeed != 0 || cs.PrefixEvents != 0 || cs.SuffixEvents != 0 {
			return fmt.Errorf("campaign: chaos-sweep fields must stay zero in a diffuzz cell")
		}
		return nil
	case KindChaos:
	default:
		return fmt.Errorf("campaign: unknown cell kind %q", cs.Kind)
	}
	if cs.Class != "" || cs.Events != 0 {
		return fmt.Errorf("campaign: class/events are diffuzz-cell fields")
	}
	if _, ok := faults.Lookup(cs.Fault); !ok {
		return fmt.Errorf("campaign: unknown fault model %q (have %v)", cs.Fault, faults.Names())
	}
	if cs.Intensity < 0 || cs.Intensity > 1 {
		return fmt.Errorf("campaign: intensity %g outside [0, 1]", cs.Intensity)
	}
	if cs.PrefixEvents < 2 || cs.PrefixEvents > MaxEvents {
		return fmt.Errorf("campaign: prefix events %d outside [2, %d]", cs.PrefixEvents, MaxEvents)
	}
	if cs.SuffixEvents < 1 || cs.SuffixEvents > MaxEvents {
		return fmt.Errorf("campaign: suffix events %d outside [1, %d]", cs.SuffixEvents, MaxEvents)
	}
	return nil
}

// GroupKey names the warm-prefix group: cells with equal keys share the
// prefix scenario byte for byte and may fork from one snapshot. Diffuzz
// cells share no prefix — every cell is its own scenario — and run cold
// in the worker's arena.
func (cs CellSpec) GroupKey() string {
	if cs.Kind == KindDiffuzz {
		return "diffuzz"
	}
	return fmt.Sprintf("prefix/%d/%d", cs.PrefixSeed, cs.PrefixEvents)
}

// prefixScenario builds the shared warm prefix: the reference platform
// with benign, conforming streams on both sources. It depends only on
// (PrefixSeed, PrefixEvents) — the GroupKey.
func prefixScenario(prefixSeed uint64, prefixEvents int) core.Scenario {
	us := simtime.Micros
	dmin := us(attackerDMinUs)
	asrc := rng.NewStream(prefixSeed, streamPrefixAttacker)
	vsrc := rng.NewStream(prefixSeed, streamPrefixVictim)
	return core.Scenario{
		Partitions: []core.PartitionSpec{
			{Name: "app1", Slot: us(slotApp1Us)},
			{Name: "app2", Slot: us(slotApp2Us)},
			{Name: "housekeeping", Slot: us(slotHousekeepingUs)},
		},
		IRQs: []core.IRQSpec{
			{
				Name: "attacker", Partition: cellAttacker,
				CTH: us(handlerCTHUs), CBH: us(handlerCBHUs),
				DMin:     dmin,
				Arrivals: workload.Timestamps(workload.ExponentialClamped(asrc, 2*dmin, dmin, prefixEvents)),
			},
			{
				Name: "victim", Partition: cellVictim,
				CTH: us(handlerCTHUs), CBH: us(handlerCBHUs),
				Arrivals: workload.Timestamps(workload.ExponentialClamped(vsrc, us(victimMeanUs), us(victimDMinUs), prefixEvents)),
			},
		},
		Mode:   hv.Monitored,
		Policy: hv.DenyNearSlotEnd,
	}
}

// suffixes generates the cell's adversarial continuation: the fault
// model's stream on the attacker and a fresh benign stream on the
// victim, both shifted past the fork point. A pure function of
// (CellSpec, forkT); forkT itself is a pure function of the prefix, so
// the suffix streams are reproducible from the spec alone.
func (cs CellSpec) suffixes(forkT simtime.Time) ([][]simtime.Time, error) {
	model, ok := faults.Lookup(cs.Fault)
	if !ok {
		return nil, fmt.Errorf("campaign: unknown fault model %q", cs.Fault)
	}
	shift := forkT.Sub(0) + simtime.Micros(suffixLeadUs)
	adv := model.Arrivals(rng.NewStream(cs.Seed, streamSuffixAttacker), faults.Params{
		DMin:      simtime.Micros(attackerDMinUs),
		Events:    cs.SuffixEvents,
		Intensity: cs.Intensity,
	})
	atk := make([]simtime.Time, len(adv))
	for i, t := range adv {
		atk[i] = t.Add(shift)
	}
	vic := workload.Timestamps(workload.ExponentialClamped(
		rng.NewStream(cs.Seed, streamSuffixVictim),
		simtime.Micros(victimMeanUs), simtime.Micros(victimDMinUs), cs.SuffixEvents))
	for i := range vic {
		vic[i] = vic[i].Add(shift)
	}
	return [][]simtime.Time{atk, vic}, nil
}

// fullScenario is the cell's prefix scenario with the suffixes appended
// to each source's arrivals — the single-phase equivalent of the warm
// fork, used for the analytic verdict and the failure fingerprint.
func (cs CellSpec) fullScenario(sfx [][]simtime.Time) core.Scenario {
	sc := prefixScenario(cs.PrefixSeed, cs.PrefixEvents)
	irqs := make([]core.IRQSpec, len(sc.IRQs))
	copy(irqs, sc.IRQs)
	for i := range irqs {
		merged := make([]simtime.Time, 0, len(irqs[i].Arrivals)+len(sfx[i]))
		merged = append(merged, irqs[i].Arrivals...)
		merged = append(merged, sfx[i]...)
		irqs[i].Arrivals = merged
	}
	sc.IRQs = irqs
	return sc
}

// CellResult is the cell's wire document: everything the aggregation
// tier folds, in integer cycles and sparse sketch buckets so the fold
// is exact and order-independent. It is the byte payload stored under
// the cell's content address.
type CellResult struct {
	Spec CellSpec `json:"spec"`
	// ForkUs is the fork-point clock (µs, truncated) — diagnostic only.
	ForkUs int64 `json:"fork_us"`

	// Victim latency over the cell's own (suffix) deliveries, in CPU
	// cycles. Min/Max/Sum are meaningful iff Count > 0.
	Count     int64          `json:"count"`
	MinCycles int64          `json:"min_cycles"`
	MaxCycles int64          `json:"max_cycles"`
	SumCycles int64          `json:"sum_cycles"`
	Sketch    []SketchBucket `json:"sketch,omitempty"`

	// Shaping counters over the whole run (prefix + suffix).
	Grants uint64 `json:"grants"`
	Denied uint64 `json:"denied"`

	// The eq. (14) verdict: worst observed cross-partition interference
	// vs the whole-run analytic budget, and the victim's measured worst
	// latency vs its analytic bound. BoundCycles 0 with a note means the
	// analysis declined and the latency check was skipped.
	InterferenceCycles int64  `json:"interference_cycles"`
	BudgetCycles       int64  `json:"budget_cycles"`
	VictimMaxCycles    int64  `json:"victim_max_cycles"`
	BoundCycles        int64  `json:"bound_cycles,omitempty"`
	BoundNote          string `json:"bound_note,omitempty"`

	// Differential-fuzz cells (Spec.Kind KindDiffuzz) additionally fold
	// bound tightness: per checked victim, gap = analytic bound −
	// observed worst latency, in cycles. Min/Sum are meaningful iff
	// GapCount > 0. Invalid marks scenarios the analysis rejected as
	// malformed (counted, not failed).
	GapCount     int64 `json:"gap_count,omitempty"`
	MinGapCycles int64 `json:"min_gap_cycles,omitempty"`
	SumGapCycles int64 `json:"sum_gap_cycles,omitempty"`
	Invalid      bool  `json:"invalid,omitempty"`

	Pass bool `json:"pass"`
	// Violation and Fingerprint are set iff the verdict failed:
	// Violation says which check broke, Fingerprint is the content
	// address of the exact single-phase scenario that reproduces it.
	Violation   string `json:"violation,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
}

// MeanCycles returns the mean suffix latency, truncated.
func (cr *CellResult) MeanCycles() int64 {
	if cr.Count == 0 {
		return 0
	}
	return cr.SumCycles / cr.Count
}

// cellBudget is the eq. (14) interference budget of the cell scenario:
// one monitored source (the attacker, l = 1 at dmin), so the budget
// over Δt is η⁺(Δt) · C'_BH with the dispatcher's queue pop folded into
// the per-grant cost — the analytic mirror of the hv oracle's budget.
func cellBudget(sc core.Scenario, dt simtime.Duration) simtime.Duration {
	costs := sc.CostModel()
	cond, err := curves.NewDelta([]simtime.Duration{simtime.Micros(attackerDMinUs)})
	if err != nil {
		panic(fmt.Sprintf("campaign: l=1 condition: %v", err))
	}
	return analysis.InterposedInterferenceDelta(dt, cond, costs, sc.IRQs[cellAttacker].CBH+costs.QueuePop)
}

// deriveResult reduces a raw simulation result to the cell's wire
// document. It is a pure function of (spec, fork point, suffixes,
// result): no clocks, no maps, no floats in any summed quantity — the
// preconditions for the aggregate's byte-identical fold.
func deriveResult(cs CellSpec, forkT simtime.Time, sfx [][]simtime.Time, res *core.Result) (*CellResult, error) {
	cr := &CellResult{
		Spec:   cs,
		ForkUs: int64(forkT) / int64(simtime.Microsecond),
		Grants: res.Stats.InterposedGrants,
		Denied: res.Stats.DeniedViolation,
	}

	// Suffix victim latencies: the deliveries this cell added beyond the
	// shared prefix.
	var sk Sketch
	var victimMax simtime.Duration
	for _, r := range res.Log.Records {
		if r.Source != cellVictim {
			continue
		}
		lat := r.Latency()
		if lat > victimMax {
			victimMax = lat
		}
		if !r.Arrival.After(forkT) {
			continue // shared-prefix delivery, identical in every cell
		}
		sk.Add(lat.Micros())
		if cr.Count == 0 || int64(lat) < cr.MinCycles {
			cr.MinCycles = int64(lat)
		}
		if int64(lat) > cr.MaxCycles {
			cr.MaxCycles = int64(lat)
		}
		cr.SumCycles += int64(lat)
		cr.Count++
	}
	cr.Sketch = sk.Pairs()
	cr.VictimMaxCycles = int64(victimMax)

	// Verdict (a): worst cross-partition interference vs the whole-run
	// eq. (14) budget.
	full := cs.fullScenario(sfx)
	var interference simtime.Duration
	for i, p := range res.Partitions {
		if i != cellAttacker && p.StolenInterposed > interference {
			interference = p.StolenInterposed
		}
	}
	budget := cellBudget(full, res.Duration)
	cr.InterferenceCycles = int64(interference)
	cr.BudgetCycles = int64(budget)

	// Verdict (b): measured victim latency vs the analytic
	// delayed-handling bound with the adversary's budget folded in.
	victimModel, err := curves.DeltaFromTrace(full.IRQs[cellVictim].Arrivals, 16)
	if err != nil {
		cr.BoundNote = fmt.Sprintf("victim trace model: %v", err)
	} else {
		extra := func(dt simtime.Duration) simtime.Duration { return cellBudget(full, dt) }
		rt, err := core.ClassicBoundUnder(full, cellVictim, victimModel, extra)
		if err != nil {
			cr.BoundNote = fmt.Sprintf("victim bound: %v", err)
		} else {
			cr.BoundCycles = int64(rt.WCRT)
		}
	}

	cr.Pass = true
	switch {
	case interference > budget:
		cr.Pass = false
		cr.Violation = fmt.Sprintf("interference %v exceeds eq. (14) budget %v", interference, budget)
	case cr.BoundCycles > 0 && cr.VictimMaxCycles > cr.BoundCycles:
		cr.Pass = false
		cr.Violation = fmt.Sprintf("victim latency %v exceeds analytic bound %v",
			victimMax, simtime.Duration(cr.BoundCycles))
	}
	if !cr.Pass {
		fp, err := core.Fingerprint(full)
		if err != nil {
			fp = fmt.Sprintf("unavailable: %v", err)
		}
		cr.Fingerprint = fp
	}
	return cr, nil
}

// Runner executes cells on the warm-prefix path: the first cell of a
// prefix group pays the cold prefix run and snapshots it
// (engine.ForkCampaign); every later cell of the group rewinds and pays
// only its suffix. Like the arena it wraps, a Runner is
// single-goroutine — fan-out creates one Runner per worker.
type Runner struct {
	arena    *engine.SimArena
	groupKey string
	camp     *engine.Campaign
}

// NewRunner returns a fresh runner with its own arena.
func NewRunner() *Runner { return &Runner{arena: engine.NewArena()} }

// Run executes one cell and derives its wire document. Results are
// byte-identical to RunCellCold for the same spec — the warm/cold
// equivalence test holds it to that.
func (r *Runner) Run(cs CellSpec) (*CellResult, error) {
	if err := cs.Validate(); err != nil {
		return nil, err
	}
	if cs.Kind == KindDiffuzz {
		return runDiffuzzCell(r.arena, cs)
	}
	if gk := cs.GroupKey(); r.camp == nil || r.groupKey != gk {
		camp, err := r.arena.ForkCampaign(prefixScenario(cs.PrefixSeed, cs.PrefixEvents))
		if err != nil {
			return nil, fmt.Errorf("campaign: prefix fork: %w", err)
		}
		r.camp, r.groupKey = camp, gk
	}
	forkT := r.camp.Now()
	sfx, err := cs.suffixes(forkT)
	if err != nil {
		return nil, err
	}
	res, err := r.camp.Cell(sfx)
	if err != nil {
		return nil, fmt.Errorf("campaign: cell %s@%g seed %d: %w", cs.Fault, cs.Intensity, cs.Seed, err)
	}
	return deriveResult(cs, forkT, sfx, res)
}

// runDiffuzzCell executes one differential-fuzz cell: generate the
// (class, seed) scenario, run it through both the analytic bounds and
// the DES under the eq. (14) oracle, and reduce the differential
// outcome to the cell wire document. No planted bugs here — campaign
// cells always check the real bounds; the plant is a local self-test
// of the smoke harness (internal/diffuzz.Options).
func runDiffuzzCell(a *engine.SimArena, cs CellSpec) (*CellResult, error) {
	return RunDiffuzzCell(a, cs, diffuzz.Options{})
}

// RunDiffuzzCell is runDiffuzzCell with explicit check options — the
// entry point cmd/diffuzz uses so its planted-bug self-test can fold
// the same cell documents the campaign path produces.
func RunDiffuzzCell(a *engine.SimArena, cs CellSpec, opt diffuzz.Options) (*CellResult, error) {
	out, err := diffuzz.CheckSeed(a, cs.Class, cs.Seed, cs.Events, opt)
	if err != nil {
		return nil, err
	}
	cr := &CellResult{
		Spec:               cs,
		Grants:             out.Grants,
		Denied:             out.DeniedViolation,
		InterferenceCycles: int64(out.Interference),
		BudgetCycles:       int64(out.Budget),
		GapCount:           int64(out.GapCount),
		MinGapCycles:       int64(out.MinGap),
		SumGapCycles:       int64(out.SumGap),
		Invalid:            out.Invalid,
		Pass:               out.OK,
	}
	if v := out.Violation(); v != nil {
		cr.Violation = v.String()
		cr.Fingerprint = out.Fingerprint
	}
	return cr, nil
}

// RunCellCold executes one cell without the snapshot path: prefix run
// from cycle zero on a fresh system, then the suffix as a plain
// two-phase extension. The reference implementation the warm path is
// verified against.
func RunCellCold(cs CellSpec) (*CellResult, error) {
	if err := cs.Validate(); err != nil {
		return nil, err
	}
	if cs.Kind == KindDiffuzz {
		return runDiffuzzCell(engine.NewArena(), cs)
	}
	sc := prefixScenario(cs.PrefixSeed, cs.PrefixEvents)
	sys, err := core.Build(sc)
	if err != nil {
		return nil, err
	}
	if err := sys.RunToCompletion(core.Horizon(sc)); err != nil {
		return nil, err
	}
	forkT := sys.Now()
	sfx, err := cs.suffixes(forkT)
	if err != nil {
		return nil, err
	}
	last := forkT
	for i, s := range sfx {
		if len(s) == 0 {
			continue
		}
		if err := sys.ExtendArrivals(i, s); err != nil {
			return nil, err
		}
		if t := s[len(s)-1]; t > last {
			last = t
		}
	}
	if err := sys.RunToCompletion(last.Add(1000 * sc.CycleLength())); err != nil {
		return nil, err
	}
	if err := sys.CheckInvariants(); err != nil {
		return nil, err
	}
	return deriveResult(cs, forkT, sfx, core.ReportOwned(sys))
}
