package campaign

import (
	"context"

	"repro/internal/runner"
)

// Fold runs an entire campaign in-process — expansion, warm-prefix cell
// runs, deterministic merge — and returns the final aggregate. It is
// the reference implementation the served streaming path is verified
// against: for the same spec, the daemon's final aggregate must encode
// to the same bytes as Fold's.
//
// Cells fan out over a worker pool (one Runner, hence one arena and one
// warm fork, per worker); the merge happens in cell order afterwards,
// which by the aggregate's commutativity is equivalent to any
// completion-order fold.
func Fold(ctx context.Context, spec Spec, workers int) (*Aggregate, error) {
	agg, err := NewAggregate(spec)
	if err != nil {
		return nil, err
	}
	cells := agg.Spec.Expand()
	results, err := runner.MapCtxPool(ctx, workers, len(cells), NewRunner,
		func(r *Runner, i int) (*CellResult, error) {
			return r.Run(agg.Spec.CellSpec(cells[i]))
		})
	if err != nil {
		return nil, err
	}
	for i, cr := range results {
		if err := agg.MergeCell(i, cr); err != nil {
			return nil, err
		}
	}
	return agg, nil
}
