package campaign

import (
	"fmt"
	"math"
	"math/bits"
)

// The latency percentile sketch: a fixed-resolution logarithmic
// histogram over microsecond latencies whose merge is associative and
// commutative by construction (bucket counts are unsigned integer
// sums). Campaign aggregation folds cell sketches in whatever order
// cells complete, so the merge being a commutative monoid is what makes
// the final aggregate byte-identical to a sequential fold in cell
// order — the property the shuffle tests in sketch_test.go pin.
//
// Bucket layout (HDR-histogram style): values below sketchSub get one
// bucket each (exact); above that, every power-of-two octave is split
// into sketchSub sub-buckets, so the relative quantile error is bounded
// by 1/sketchSub (6.25%). Bucket indexing is pure integer arithmetic —
// no floats — so two sketches built from the same values are identical
// on every platform.

// sketchSub is the per-octave sub-bucket count (and the width of the
// exact low range).
const sketchSub = 16

// sketchBuckets bounds the index range for any int64 microsecond value:
// the highest octave exponent is 63-5 = 58, so indices stay below
// 59*sketchSub + sketchSub.
const sketchBuckets = 60 * sketchSub

// Sketch is a mergeable latency histogram. The zero value is empty and
// ready to use.
type Sketch struct {
	counts [sketchBuckets]uint64
	count  uint64
}

// sketchBucket maps a non-negative microsecond value to its bucket.
func sketchBucket(us int64) int {
	if us < 0 {
		us = 0
	}
	if us < sketchSub {
		return int(us)
	}
	// us ∈ [sketchSub<<e, sketchSub<<(e+1)): Len64(sketchSub) is 5,
	// so e = Len64(us) - 5 and us>>e ∈ [sketchSub, 2·sketchSub).
	e := bits.Len64(uint64(us)) - 5
	return e*sketchSub + int(us>>uint(e))
}

// sketchLower returns the smallest microsecond value mapping to bucket
// idx — the value Quantile reports for ranks landing in it.
func sketchLower(idx int) int64 {
	if idx < sketchSub {
		return int64(idx)
	}
	e := idx/sketchSub - 1
	m := idx - e*sketchSub // ∈ [sketchSub, 2·sketchSub)
	return int64(m) << uint(e)
}

// Add records one latency observation, in microseconds.
func (s *Sketch) Add(us int64) {
	s.counts[sketchBucket(us)]++
	s.count++
}

// AddBucket folds n observations directly into bucket idx — the merge
// entry point for sparse cell sketches. Out-of-range indices are
// clamped into the top bucket so corrupt input cannot panic the fold.
func (s *Sketch) AddBucket(idx int, n uint64) {
	if idx < 0 {
		idx = 0
	}
	if idx >= sketchBuckets {
		idx = sketchBuckets - 1
	}
	s.counts[idx] += n
	s.count += n
}

// Merge folds o into s. Merge is associative and commutative: any fold
// order over the same multiset of sketches yields identical state.
func (s *Sketch) Merge(o *Sketch) {
	for i, n := range o.counts {
		s.counts[i] += n
	}
	s.count += o.count
}

// Count returns the number of observations.
func (s *Sketch) Count() uint64 { return s.count }

// Quantile returns the lower bound (µs) of the bucket holding the
// q-quantile observation, for q in [0, 1]. An empty sketch reports 0.
func (s *Sketch) Quantile(q float64) int64 {
	if s.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, n := range s.counts {
		cum += n
		if cum >= rank {
			return sketchLower(i)
		}
	}
	return sketchLower(sketchBuckets - 1)
}

// SketchBucket is one non-empty bucket of a sparse sketch encoding.
type SketchBucket struct {
	Bucket int    `json:"b"`
	Count  uint64 `json:"n"`
}

// Pairs returns the sketch as sparse (bucket, count) pairs in ascending
// bucket order — the stable wire form cell results carry.
func (s *Sketch) Pairs() []SketchBucket {
	var out []SketchBucket
	for i, n := range s.counts {
		if n != 0 {
			out = append(out, SketchBucket{Bucket: i, Count: n})
		}
	}
	return out
}

// MergePairs folds a sparse sketch encoding into s.
func (s *Sketch) MergePairs(pairs []SketchBucket) {
	for _, p := range pairs {
		s.AddBucket(p.Bucket, p.Count)
	}
}

// Equal reports whether two sketches hold identical state.
func (s *Sketch) Equal(o *Sketch) bool {
	return s.count == o.count && s.counts == o.counts
}

// String summarises the sketch for logs.
func (s *Sketch) String() string {
	return fmt.Sprintf("sketch{n=%d p50=%dµs p99=%dµs}", s.count, s.Quantile(0.5), s.Quantile(0.99))
}
