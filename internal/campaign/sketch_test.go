package campaign

import (
	"math/rand"
	"testing"
)

// TestSketchBucketMonotone pins the bucket map: indices are monotone in
// the value, every bucket's lower bound maps back to itself, and the
// relative error of the reported quantile bound is within 1/sketchSub.
func TestSketchBucketMonotone(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 2, 15, 16, 17, 31, 32, 100, 1000, 4095, 4096, 1 << 20, 1 << 40, 1<<62 - 1} {
		idx := sketchBucket(v)
		if idx < prev {
			t.Fatalf("bucket index not monotone: value %d maps to %d, previous was %d", v, idx, prev)
		}
		prev = idx
		if idx < 0 || idx >= sketchBuckets {
			t.Fatalf("value %d maps outside the bucket range: %d", v, idx)
		}
		lo := sketchLower(idx)
		if lo > v {
			t.Fatalf("bucket %d lower bound %d exceeds member value %d", idx, lo, v)
		}
		if sketchBucket(lo) != idx {
			t.Fatalf("lower bound %d of bucket %d maps to bucket %d", lo, idx, sketchBucket(lo))
		}
		// Relative error bound: the sub-bucket width is at most
		// v/sketchSub (overflow-safe form of the 1/sketchSub guarantee).
		if v-lo > v/sketchSub {
			t.Fatalf("bucket %d lower bound %d too far below value %d", idx, lo, v)
		}
	}
}

// TestSketchQuantile checks quantiles against a dense value set where
// the exact answer is known.
func TestSketchQuantile(t *testing.T) {
	var s Sketch
	for v := int64(0); v < 1000; v++ {
		s.Add(v)
	}
	if got := s.Quantile(0); got != 0 {
		t.Fatalf("q0 = %d, want 0", got)
	}
	// The q-quantile of 0..999 is ~q·1000; the sketch reports the bucket
	// lower bound, so allow the 1/sketchSub relative slack.
	for _, q := range []float64{0.5, 0.9, 0.99, 1} {
		got := s.Quantile(q)
		exact := int64(q*1000) - 1
		if exact < 0 {
			exact = 0
		}
		if got > exact || exact-got > exact/sketchSub {
			t.Fatalf("q%.2f = %d, exact %d: outside sketch tolerance", q, got, exact)
		}
	}
	var empty Sketch
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty sketch q50 = %d, want 0", got)
	}
}

// TestSketchMergeCommutes is the property test the aggregate's
// determinism rests on: folding any permutation of any partition of a
// value multiset yields identical sketch state.
func TestSketchMergeCommutes(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	parts := make([]*Sketch, 20)
	var reference Sketch
	for i := range parts {
		parts[i] = &Sketch{}
		for j := 0; j < 50; j++ {
			v := rnd.Int63n(1 << uint(rnd.Intn(40)))
			parts[i].Add(v)
			reference.Add(v)
		}
	}
	for trial := 0; trial < 10; trial++ {
		order := rnd.Perm(len(parts))
		var folded Sketch
		// Alternate between dense Merge and the sparse wire form so both
		// paths are covered by the same property.
		for _, i := range order {
			if trial%2 == 0 {
				folded.Merge(parts[i])
			} else {
				folded.MergePairs(parts[i].Pairs())
			}
		}
		if !folded.Equal(&reference) {
			t.Fatalf("trial %d: shuffled fold diverges from sequential fold (order %v)", trial, order)
		}
	}
}

// TestSketchMergeAssociates checks (a⊕b)⊕c == a⊕(b⊕c) explicitly.
func TestSketchMergeAssociates(t *testing.T) {
	mk := func(seed int64) *Sketch {
		rnd := rand.New(rand.NewSource(seed))
		s := &Sketch{}
		for i := 0; i < 100; i++ {
			s.Add(rnd.Int63n(1 << 30))
		}
		return s
	}
	a, b, c := mk(1), mk(2), mk(3)

	var left Sketch
	left.Merge(a)
	left.Merge(b)
	left.Merge(c)

	var bc Sketch
	bc.Merge(b)
	bc.Merge(c)
	var right Sketch
	right.Merge(a)
	right.Merge(&bc)

	if !left.Equal(&right) {
		t.Fatal("merge is not associative")
	}
}

// TestSketchPairsRoundTrip pins the sparse wire form: Pairs is sorted,
// minimal, and rebuilds identical state.
func TestSketchPairsRoundTrip(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	var s Sketch
	for i := 0; i < 500; i++ {
		s.Add(rnd.Int63n(1 << 35))
	}
	pairs := s.Pairs()
	for i, p := range pairs {
		if p.Count == 0 {
			t.Fatalf("pair %d has zero count", i)
		}
		if i > 0 && pairs[i-1].Bucket >= p.Bucket {
			t.Fatalf("pairs not strictly ascending at %d", i)
		}
	}
	var back Sketch
	back.MergePairs(pairs)
	if !back.Equal(&s) {
		t.Fatal("pairs round trip diverges")
	}
}
