// Package cluster turns independent serve daemons into a ring sharing
// one content-addressed keyspace. It owns the three cluster-local
// mechanisms and nothing else — the serve daemon composes them:
//
//   - a deterministic consistent-hash ring (ring.go) mapping every
//     job/cell/campaign key to an owner plus replicas, identical on
//     every node and every client that knows the member names;
//   - heartbeat liveness with hysteresis (health.go), fed by an active
//     /healthz prober and passively by every peer operation;
//   - the peer HTTP operations: fetch a stored result by content
//     address (checksum-verified end to end via the internal/store
//     frame), dispatch a job to its ring owner, and hand off journal
//     records to a successor during drain.
//
// The correctness argument is the repo's standing one: keys identify
// bytes exactly, so *any* routing decision — owner, replica, failover,
// re-own after a death — yields byte-identical results. The ring is an
// efficiency structure (who probably has it / who should compute it),
// never a consistency structure; no operation in this package can
// change what bytes a key names.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/store"
)

// Node is one ring member: a stable name (the ring hashes names, so
// renaming a node reshuffles its keys) and the base URL its serve
// daemon answers on.
type Node struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// Config describes this node's view of the cluster. Zero values
// select the defaults noted per field.
type Config struct {
	// Self is this node's name; must appear in Members. Empty Self
	// with non-empty Members is a client-side (ring-only) config.
	Self string
	// Members is the static seed membership, self included. Names must
	// be unique and non-empty.
	Members []Node
	// Replicas is the replica-set size per key (owner included). It is
	// clamped to the member count. 0 = 2.
	Replicas int
	// HeartbeatInterval paces the active /healthz prober started by
	// Start. 0 = 1s.
	HeartbeatInterval time.Duration
	// ProbeTimeout bounds one heartbeat probe. 0 = 1s.
	ProbeTimeout time.Duration
	// SuspectAfter is the consecutive-failure count that demotes a
	// peer alive → suspect. 0 = 2.
	SuspectAfter int
	// DeadAfter is the further consecutive failures that demote
	// suspect → dead (so a peer dies after SuspectAfter+DeadAfter
	// straight failures). 0 = 2.
	DeadAfter int
	// ReviveAfter is the consecutive-success count that promotes a
	// suspect or dead peer back to alive. 0 = 2.
	ReviveAfter int
	// FetchTimeout bounds one peer store fetch. 0 = 2s.
	FetchTimeout time.Duration
	// DispatchTimeout bounds one remote job dispatch (the remote
	// computes synchronously under it). 0 = 2 minutes.
	DispatchTimeout time.Duration
	// DispatchRetries bounds how many 429/503 refusals one dispatch
	// rides before giving up (the caller then re-owns the work
	// locally). 0 = 20.
	DispatchRetries int
	// ScatterWidth bounds concurrent remote cell dispatches per
	// campaign feeder. 0 = 16.
	ScatterWidth int
	// HTTP is the transport for every peer operation. nil =
	// http.DefaultClient.
	HTTP *http.Client
	// Registry receives the cluster metrics; nil = metrics.Default().
	Registry *metrics.Registry
}

func (c *Config) fill() error {
	if len(c.Members) == 0 {
		return errors.New("cluster: empty membership")
	}
	seen := make(map[string]bool, len(c.Members))
	selfSeen := false
	for _, n := range c.Members {
		if n.Name == "" {
			return errors.New("cluster: member with empty name")
		}
		if seen[n.Name] {
			return fmt.Errorf("cluster: duplicate member %q", n.Name)
		}
		seen[n.Name] = true
		if n.Name == c.Self {
			selfSeen = true
		}
	}
	if c.Self != "" && !selfSeen {
		return fmt.Errorf("cluster: self %q not in membership", c.Self)
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.Replicas > len(c.Members) {
		c.Replicas = len(c.Members)
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 2
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 2
	}
	if c.ReviveAfter <= 0 {
		c.ReviveAfter = 2
	}
	if c.FetchTimeout <= 0 {
		c.FetchTimeout = 2 * time.Second
	}
	if c.DispatchTimeout <= 0 {
		c.DispatchTimeout = 2 * time.Minute
	}
	if c.DispatchRetries <= 0 {
		c.DispatchRetries = 20
	}
	if c.ScatterWidth <= 0 {
		c.ScatterWidth = 16
	}
	if c.HTTP == nil {
		c.HTTP = http.DefaultClient
	}
	if c.Registry == nil {
		c.Registry = metrics.Default()
	}
	return nil
}

// LoadMembers reads a static membership file: a JSON array of
// {"name": ..., "url": ...} objects. Trailing slashes on URLs are
// trimmed so base+path concatenation is uniform.
func LoadMembers(path string) ([]Node, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: membership: %w", err)
	}
	var members []Node
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&members); err != nil {
		return nil, fmt.Errorf("cluster: membership %s: %w", path, err)
	}
	for i := range members {
		members[i].URL = strings.TrimRight(members[i].URL, "/")
	}
	return members, nil
}

// Cluster is one node's runtime view of the ring: routing, liveness
// and the peer operations. Safe for concurrent use.
type Cluster struct {
	cfg    Config
	ring   *Ring
	health *health
	urls   map[string]string // name → base URL

	stop      chan struct{}
	probeDone chan struct{}
	started   bool

	peerFetchHits    *metrics.Counter
	peerFetchMisses  *metrics.Counter
	checksumFailures *metrics.Counter
	dispatches       *metrics.Counter
	dispatchFailures *metrics.Counter
}

// New validates cfg and builds the cluster view. The heartbeat prober
// is not running yet — call Start (and Stop on the way down); passive
// liveness from peer operations works either way.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	names := make([]string, 0, len(cfg.Members))
	urls := make(map[string]string, len(cfg.Members))
	var peers []string
	for _, n := range cfg.Members {
		names = append(names, n.Name)
		urls[n.Name] = strings.TrimRight(n.URL, "/")
		if n.Name != cfg.Self {
			peers = append(peers, n.Name)
		}
	}
	reg := cfg.Registry
	c := &Cluster{
		cfg:              cfg,
		ring:             NewRing(names),
		health:           newHealth(peers, cfg.SuspectAfter, cfg.DeadAfter, cfg.ReviveAfter, reg),
		urls:             urls,
		stop:             make(chan struct{}),
		probeDone:        make(chan struct{}),
		peerFetchHits:    reg.Counter("repro_cluster_peer_fetch_hits_total"),
		peerFetchMisses:  reg.Counter("repro_cluster_peer_fetch_misses_total"),
		checksumFailures: reg.Counter("repro_cluster_peer_checksum_failures_total"),
		dispatches:       reg.Counter("repro_cluster_dispatch_total"),
		dispatchFailures: reg.Counter("repro_cluster_dispatch_failures_total"),
	}
	return c, nil
}

// Start launches the heartbeat prober. Idempotent.
func (c *Cluster) Start() {
	if c.started {
		return
	}
	c.started = true
	go c.probeLoop(c.cfg.HeartbeatInterval)
}

// Stop halts the prober (if started) and waits for it to exit.
func (c *Cluster) Stop() {
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	if c.started {
		<-c.probeDone
	}
}

// Self returns this node's name ("" for a client-side view).
func (c *Cluster) Self() string { return c.cfg.Self }

// Ring exposes the routing function (for ring-aware clients).
func (c *Cluster) Ring() *Ring { return c.ring }

// Members returns the membership in sorted-name order.
func (c *Cluster) Members() []Node {
	out := make([]Node, 0, len(c.urls))
	for _, name := range c.ring.Members() {
		out = append(out, Node{Name: name, URL: c.urls[name]})
	}
	return out
}

// URL returns a member's base URL ("" for unknown names).
func (c *Cluster) URL(name string) string { return c.urls[name] }

// Replicas returns the key's replica set (owner first) at the
// configured replication factor.
func (c *Cluster) Replicas(key string) []string { return c.ring.Replicas(key, c.cfg.Replicas) }

// Owner returns the key's ring owner.
func (c *Cluster) Owner(key string) string { return c.ring.Owner(key) }

// ReplicaCount returns the configured replica-set size per key.
func (c *Cluster) ReplicaCount() int { return c.cfg.Replicas }

// ScatterWidth returns the per-campaign remote-dispatch concurrency
// bound.
func (c *Cluster) ScatterWidth() int { return c.cfg.ScatterWidth }

// Usable reports whether work should be routed to name (self is
// always usable; dead peers are not).
func (c *Cluster) Usable(name string) bool {
	if name == c.cfg.Self {
		return true
	}
	return c.health.Usable(name)
}

// PeerState reports a peer's liveness state.
func (c *Cluster) PeerState(name string) string {
	if name == c.cfg.Self {
		return StateAlive
	}
	return c.health.State(name)
}

// Report feeds a passive liveness observation (e.g. a transport error
// from a peer operation outside this package).
func (c *Cluster) Report(name string, ok bool) { c.health.Report(name, ok) }

// maxPeerResultBytes bounds one fetched peer entry. Result documents
// are figure- or aggregate-sized; 64 MiB is generous headroom, not a
// real limit.
const maxPeerResultBytes = 64 << 20

// FetchResult asks the cluster for a stored result by content address
// before any cold recompute: the key's replicas are tried first (they
// should have it), then every other usable member (content addressing
// makes any copy authoritative — e.g. a campaign coordinator holds
// replicas of every cell it merged). The transported frame is the
// store's own on-disk framing, so the checksum verified here covers
// the peer's disk read *and* the network transfer. A frame that fails
// verification counts as a checksum failure and the next member is
// tried; the serving node quarantines its copy on its own (store.Get
// semantics).
//
// Returns the body, the serving member's name, and whether any member
// had verified bytes.
func (c *Cluster) FetchResult(ctx context.Context, key string) ([]byte, string, bool) {
	for _, name := range c.fetchOrder(key) {
		body, ok := c.fetchFrom(ctx, name, key)
		if ok {
			c.peerFetchHits.Inc()
			return body, name, true
		}
		if ctx.Err() != nil {
			break
		}
	}
	c.peerFetchMisses.Inc()
	return nil, "", false
}

// fetchOrder is FetchResult's candidate list: the key's replicas in
// ring order, then the remaining members in sorted order; self and
// dead peers are skipped.
func (c *Cluster) fetchOrder(key string) []string {
	var order []string
	seen := make(map[string]bool, len(c.urls))
	add := func(name string) {
		if name == c.cfg.Self || seen[name] || !c.health.Usable(name) {
			return
		}
		seen[name] = true
		order = append(order, name)
	}
	for _, name := range c.Replicas(key) {
		add(name)
	}
	for _, name := range c.ring.Members() {
		add(name)
	}
	return order
}

// fetchFrom retrieves and verifies one member's copy of key.
func (c *Cluster) fetchFrom(ctx context.Context, name, key string) ([]byte, bool) {
	url := c.urls[name]
	if url == "" {
		return nil, false
	}
	fctx, cancel := context.WithTimeout(ctx, c.cfg.FetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(fctx, http.MethodGet, url+"/v1/peer/results/"+key, nil)
	if err != nil {
		return nil, false
	}
	resp, err := c.cfg.HTTP.Do(req)
	if err != nil {
		c.health.Report(name, false)
		return nil, false
	}
	defer resp.Body.Close()
	c.health.Report(name, true)
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	frame, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerResultBytes+1))
	if err != nil || len(frame) > maxPeerResultBytes {
		return nil, false
	}
	body, ok := store.DecodeFrame(frame)
	if !ok {
		c.checksumFailures.Inc()
		return nil, false
	}
	return body, true
}

// Dispatch posts one job spec to a member's /v1/experiments and
// returns the result body. The spec must carry "wait": true — the
// dispatch is synchronous by design (the caller is a campaign feeder
// holding a merge slot). 429/503 refusals are ridden with the
// server's Retry-After advice (bounded by DispatchRetries); transport
// errors and every other status fail the dispatch, after which the
// caller re-owns the work locally. Byte-identity makes that failover
// free of coordination: whoever computes the cell, the bytes match.
func (c *Cluster) Dispatch(ctx context.Context, name string, spec any) ([]byte, error) {
	url := c.urls[name]
	if url == "" {
		return nil, fmt.Errorf("cluster: unknown member %q", name)
	}
	payload, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("cluster: encoding dispatch spec: %w", err)
	}
	c.dispatches.Inc()
	dctx, cancel := context.WithTimeout(ctx, c.cfg.DispatchTimeout)
	defer cancel()
	for attempt := 0; ; attempt++ {
		body, retryAfter, err := c.dispatchOnce(dctx, url, name, payload)
		if err == nil {
			return body, nil
		}
		if retryAfter < 0 || attempt >= c.cfg.DispatchRetries {
			c.dispatchFailures.Inc()
			return nil, err
		}
		select {
		case <-dctx.Done():
			c.dispatchFailures.Inc()
			return nil, dctx.Err()
		case <-time.After(retryAfter):
		}
	}
}

// dispatchOnce runs one POST attempt. retryAfter < 0 means the error
// is terminal; otherwise it is the backoff before the next attempt.
func (c *Cluster) dispatchOnce(ctx context.Context, url, name string, payload []byte) ([]byte, time.Duration, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/v1/experiments", bytes.NewReader(payload))
	if err != nil {
		return nil, -1, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.cfg.HTTP.Do(req)
	if err != nil {
		c.health.Report(name, false)
		return nil, -1, fmt.Errorf("cluster: dispatch to %s: %w", name, err)
	}
	defer resp.Body.Close()
	c.health.Report(name, true)
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerResultBytes))
	if err != nil {
		return nil, -1, fmt.Errorf("cluster: dispatch to %s: %w", name, err)
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return body, 0, nil
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		backoff := 50 * time.Millisecond
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			backoff = time.Duration(secs) * time.Second
		}
		return nil, backoff, fmt.Errorf("cluster: dispatch to %s refused: %d", name, resp.StatusCode)
	default:
		return nil, -1, fmt.Errorf("cluster: dispatch to %s: status %d: %s",
			name, resp.StatusCode, strings.TrimSpace(string(body)))
	}
}

// Handoff ships a batch of journal records (as a serve-encoded JSON
// body) to a member's /v1/peer/handoff. Returns how many records the
// receiver adopted.
func (c *Cluster) Handoff(ctx context.Context, name string, body []byte) (int, error) {
	url := c.urls[name]
	if url == "" {
		return 0, fmt.Errorf("cluster: unknown member %q", name)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/v1/peer/handoff", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.cfg.HTTP.Do(req)
	if err != nil {
		c.health.Report(name, false)
		return 0, fmt.Errorf("cluster: handoff to %s: %w", name, err)
	}
	defer resp.Body.Close()
	c.health.Report(name, true)
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("cluster: handoff to %s: status %d: %s",
			name, resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	var ack struct {
		Adopted int `json:"adopted"`
	}
	if err := json.Unmarshal(raw, &ack); err != nil {
		return 0, fmt.Errorf("cluster: handoff to %s: %w", name, err)
	}
	return ack.Adopted, nil
}
