package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/store"
)

// testCluster builds a 3-member cluster view for "self" with two
// httptest peers. Handlers may be nil (always-404 peer).
func testCluster(t *testing.T, h1, h2 http.Handler) (*Cluster, *metrics.Registry) {
	t.Helper()
	if h1 == nil {
		h1 = http.NotFoundHandler()
	}
	if h2 == nil {
		h2 = http.NotFoundHandler()
	}
	s1 := httptest.NewServer(h1)
	s2 := httptest.NewServer(h2)
	t.Cleanup(s1.Close)
	t.Cleanup(s2.Close)
	reg := metrics.NewRegistry()
	c, err := New(Config{
		Self: "self",
		Members: []Node{
			{Name: "self", URL: "http://127.0.0.1:1"}, // never dialed
			{Name: "p1", URL: s1.URL},
			{Name: "p2", URL: s2.URL},
		},
		FetchTimeout:    2 * time.Second,
		DispatchTimeout: 5 * time.Second,
		Registry:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, reg
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty membership accepted")
	}
	if _, err := New(Config{Self: "x", Members: []Node{{Name: "a", URL: "u"}}}); err == nil {
		t.Fatal("self outside membership accepted")
	}
	if _, err := New(Config{Members: []Node{{Name: "a", URL: "u"}, {Name: "a", URL: "v"}}}); err == nil {
		t.Fatal("duplicate member accepted")
	}
	c, err := New(Config{Self: "a", Members: []Node{{Name: "a", URL: "u"}, {Name: "b", URL: "v"}}})
	if err != nil {
		t.Fatal(err)
	}
	if c.ReplicaCount() != 2 {
		t.Fatalf("default replicas %d", c.ReplicaCount())
	}
}

func TestLoadMembers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "members.json")
	if err := os.WriteFile(path, []byte(`[
		{"name": "n1", "url": "http://h1:8080/"},
		{"name": "n2", "url": "http://h2:8080"}
	]`), 0o644); err != nil {
		t.Fatal(err)
	}
	members, err := LoadMembers(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []Node{{Name: "n1", URL: "http://h1:8080"}, {Name: "n2", URL: "http://h2:8080"}}
	if !reflect.DeepEqual(members, want) {
		t.Fatalf("got %v want %v", members, want)
	}
	if _, err := LoadMembers(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte(`[{"name": "n", "url": "u", "extra": 1}]`), 0o644)
	if _, err := LoadMembers(bad); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestFetchResultVerifiedHit(t *testing.T) {
	body := []byte(`{"figure": "6a"}`)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/peer/results/{key}", func(w http.ResponseWriter, r *http.Request) {
		if r.PathValue("key") != "k1" {
			http.NotFound(w, r)
			return
		}
		w.Write(store.EncodeFrame(body))
	})
	c, reg := testCluster(t, mux, mux)
	got, from, ok := c.FetchResult(context.Background(), "k1")
	if !ok {
		t.Fatal("fetch missed")
	}
	if string(got) != string(body) {
		t.Fatalf("body %q", got)
	}
	if from != "p1" && from != "p2" {
		t.Fatalf("served by %q", from)
	}
	if reg.Counter("repro_cluster_peer_fetch_hits_total").Value() != 1 {
		t.Fatal("hit not counted")
	}
	if _, _, ok := c.FetchResult(context.Background(), "absent"); ok {
		t.Fatal("absent key fetched")
	}
	if reg.Counter("repro_cluster_peer_fetch_misses_total").Value() != 1 {
		t.Fatal("miss not counted")
	}
}

func TestFetchResultChecksumMismatchSkipsPeer(t *testing.T) {
	good := []byte("good-bytes")
	corrupt := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		frame := store.EncodeFrame(good)
		frame[len(frame)-1] ^= 0xff // flip a body byte: checksum now wrong
		w.Write(frame)
	})
	honest := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(store.EncodeFrame(good))
	})
	// Both handlers answer every key; whichever order the ring tries,
	// the corrupt frame must be rejected and the honest copy returned.
	c, reg := testCluster(t, corrupt, honest)
	// Force a deterministic order: make p1 (corrupt) first by trying
	// keys until p1 leads the fetch order.
	key := ""
	for _, k := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		if c.fetchOrder(k)[0] == "p1" {
			key = k
			break
		}
	}
	if key == "" {
		t.Fatal("no key routed to p1 first")
	}
	got, from, ok := c.FetchResult(context.Background(), key)
	if !ok || string(got) != string(good) {
		t.Fatalf("fetch = %q, %v", got, ok)
	}
	if from != "p2" {
		t.Fatalf("served by %q, want honest p2", from)
	}
	if reg.Counter("repro_cluster_peer_checksum_failures_total").Value() != 1 {
		t.Fatal("checksum failure not counted")
	}
}

func TestFetchSkipsDeadPeers(t *testing.T) {
	var hits1, hits2 atomic.Int64
	count := func(n *atomic.Int64) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			n.Add(1)
			http.NotFound(w, r)
		})
	}
	c, _ := testCluster(t, count(&hits1), count(&hits2))
	for i := 0; i < 4; i++ {
		c.Report("p1", false)
	}
	if c.PeerState("p1") != StateDead {
		t.Fatalf("setup: p1 = %s", c.PeerState("p1"))
	}
	c.FetchResult(context.Background(), "k")
	if hits1.Load() != 0 {
		t.Fatal("dead peer was dialed")
	}
	if hits2.Load() == 0 {
		t.Fatal("live peer was not dialed")
	}
}

func TestDispatchRetriesRefusalsThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	busyThenOK := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/experiments" {
			http.NotFound(w, r)
			return
		}
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Write([]byte("result"))
	})
	c, reg := testCluster(t, busyThenOK, nil)
	got, err := c.Dispatch(context.Background(), "p1", map[string]any{"kind": "fig6a", "wait": true})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "result" {
		t.Fatalf("body %q", got)
	}
	if calls.Load() != 3 {
		t.Fatalf("calls %d", calls.Load())
	}
	if reg.Counter("repro_cluster_dispatch_total").Value() != 1 {
		t.Fatal("dispatch not counted")
	}
}

func TestDispatchTerminalStatusFails(t *testing.T) {
	bad := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no such kind", http.StatusBadRequest)
	})
	c, reg := testCluster(t, bad, nil)
	if _, err := c.Dispatch(context.Background(), "p1", map[string]any{}); err == nil {
		t.Fatal("400 dispatch succeeded")
	}
	if reg.Counter("repro_cluster_dispatch_failures_total").Value() != 1 {
		t.Fatal("failure not counted")
	}
	if _, err := c.Dispatch(context.Background(), "nobody", map[string]any{}); err == nil {
		t.Fatal("unknown member dispatch succeeded")
	}
}

func TestDispatchTransportErrorReportsFailure(t *testing.T) {
	c, _ := testCluster(t, nil, nil)
	// Point p1 at a closed port by rebuilding with an unreachable URL.
	c2, err := New(Config{
		Self: "self",
		Members: []Node{
			{Name: "self", URL: "http://127.0.0.1:1"},
			{Name: "p1", URL: "http://127.0.0.1:1"},
		},
		Registry: metrics.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = c
	if _, err := c2.Dispatch(context.Background(), "p1", map[string]any{}); err == nil {
		t.Fatal("unreachable dispatch succeeded")
	}
	if c2.PeerState("p1") == StateDead {
		t.Fatal("single transport error already dead (no hysteresis)")
	}
	if _, err := c2.Dispatch(context.Background(), "p1", map[string]any{}); err == nil {
		t.Fatal("unreachable dispatch succeeded")
	}
	if got := c2.PeerState("p1"); got != StateSuspect {
		t.Fatalf("after 2 transport errors: %s, want suspect", got)
	}
}

func TestHandoff(t *testing.T) {
	var gotBody atomic.Value
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/peer/handoff", func(w http.ResponseWriter, r *http.Request) {
		b := make([]byte, r.ContentLength)
		r.Body.Read(b)
		gotBody.Store(string(b))
		w.Write([]byte(`{"adopted": 2}`))
	})
	c, _ := testCluster(t, mux, nil)
	n, err := c.Handoff(context.Background(), "p1", []byte(`{"records": []}`))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("adopted %d", n)
	}
	if gotBody.Load() != `{"records": []}` {
		t.Fatalf("peer saw %q", gotBody.Load())
	}
}

func TestProberMarksDeadAndRevives(t *testing.T) {
	up := atomic.Bool{}
	flaky := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !up.Load() {
			// Hijack and slam the connection so the probe sees a
			// transport error rather than an HTTP response.
			hj, _ := w.(http.Hijacker)
			conn, _, _ := hj.Hijack()
			conn.Close()
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	healthy := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusOK) })
	s1 := httptest.NewServer(flaky)
	s2 := httptest.NewServer(healthy)
	t.Cleanup(s1.Close)
	t.Cleanup(s2.Close)
	c, err := New(Config{
		Self: "self",
		Members: []Node{
			{Name: "self", URL: "http://127.0.0.1:1"},
			{Name: "p1", URL: s1.URL},
			{Name: "p2", URL: s2.URL},
		},
		HeartbeatInterval: 5 * time.Millisecond,
		ProbeTimeout:      time.Second,
		Registry:          metrics.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	waitState := func(name, want string) {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if c.PeerState(name) == want {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("%s never reached %s (now %s)", name, want, c.PeerState(name))
	}
	waitState("p1", StateDead)
	if c.PeerState("p2") != StateAlive {
		t.Fatalf("p2 = %s", c.PeerState("p2"))
	}
	up.Store(true)
	waitState("p1", StateAlive)
}
