package cluster

import (
	"context"
	"net/http"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Peer liveness: a per-peer state machine fed by both an active HTTP
// heartbeat (GET /healthz on an interval) and passive reports from the
// peer operations themselves (a dispatch that gets connection-refused
// is evidence; so is one that gets any HTTP answer at all). The
// machine has hysteresis in both directions — consecutive failures to
// fall, consecutive successes to rise — so a single dropped probe
// never reroutes the keyspace and a single lucky packet never routes
// work back to a flapping node.
//
//	alive --SuspectAfter consecutive failures--> suspect
//	suspect --DeadAfter further failures-------> dead
//	suspect/dead --ReviveAfter successes-------> alive
//
// "Suspect" still receives work (it may just be slow); "dead" is
// routed around — peer fetches skip it, scattered cells are re-owned,
// and the ring-aware client fails writes over to the next replica.
// Everything is monotonic per report: no timers fire inside the state
// machine, so tests drive it deterministically through Report.

// Peer states.
const (
	StateAlive   = "alive"
	StateSuspect = "suspect"
	StateDead    = "dead"
)

type peerHealth struct {
	state string
	fails int // consecutive probe/operation failures
	succs int // consecutive successes while not alive
}

// health tracks liveness for every peer (never self). Safe for
// concurrent use.
type health struct {
	mu    sync.Mutex
	peers map[string]*peerHealth

	suspectAfter int
	deadAfter    int
	reviveAfter  int

	alive       *metrics.Gauge
	transitions *metrics.Counter
}

func newHealth(peers []string, suspectAfter, deadAfter, reviveAfter int, reg *metrics.Registry) *health {
	h := &health{
		peers:        make(map[string]*peerHealth, len(peers)),
		suspectAfter: suspectAfter,
		deadAfter:    deadAfter,
		reviveAfter:  reviveAfter,
		alive:        reg.Gauge("repro_cluster_peers_alive"),
		transitions:  reg.Counter("repro_cluster_health_transitions_total"),
	}
	for _, p := range peers {
		// Optimistic start: a fresh node must not route around peers it
		// has simply never probed yet.
		h.peers[p] = &peerHealth{state: StateAlive}
	}
	h.alive.Set(int64(len(peers)))
	return h
}

// Report feeds one observation about a peer into the state machine.
// Unknown names (not in the membership) are ignored.
func (h *health) Report(name string, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	p := h.peers[name]
	if p == nil {
		return
	}
	before := p.state
	if ok {
		p.fails = 0
		if p.state == StateAlive {
			p.succs = 0
		} else {
			p.succs++
			if p.succs >= h.reviveAfter {
				p.state = StateAlive
				p.succs = 0
			}
		}
	} else {
		p.succs = 0
		p.fails++
		switch p.state {
		case StateAlive:
			if p.fails >= h.suspectAfter {
				p.state = StateSuspect
			}
		case StateSuspect:
			if p.fails >= h.suspectAfter+h.deadAfter {
				p.state = StateDead
			}
		}
	}
	if p.state != before {
		h.transitions.Inc()
		switch {
		case before != StateDead && p.state == StateDead:
			h.alive.Add(-1)
		case before == StateDead && p.state != StateDead:
			h.alive.Add(1)
		}
	}
}

// State returns a peer's current state (StateAlive for unknown names:
// self and strangers are not routed around).
func (h *health) State(name string) string {
	h.mu.Lock()
	defer h.mu.Unlock()
	if p := h.peers[name]; p != nil {
		return p.state
	}
	return StateAlive
}

// Usable reports whether work should still be routed to name: every
// state except dead.
func (h *health) Usable(name string) bool { return h.State(name) != StateDead }

// probeLoop runs the active heartbeat until stop closes: every
// interval, each peer's /healthz is probed and the result reported.
// Probes run sequentially — cluster memberships are small and the
// probe timeout short — so one loop iteration is bounded by
// len(peers) × timeout.
func (c *Cluster) probeLoop(interval time.Duration) {
	defer close(c.probeDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
		for _, n := range c.cfg.Members {
			if n.Name == c.cfg.Self {
				continue
			}
			c.health.Report(n.Name, c.probe(n) == nil)
		}
	}
}

// probe is one heartbeat: GET {peer}/healthz within the probe timeout.
// Any HTTP response counts as alive — /healthz answers 200 even while
// draining or replaying, and a 5xx from a half-up process is still a
// process.
func (c *Cluster) probe(n Node) error {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.URL+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.cfg.HTTP.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}
