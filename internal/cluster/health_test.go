package cluster

import (
	"testing"

	"repro/internal/metrics"
)

func newTestHealth(t *testing.T) (*health, *metrics.Registry) {
	t.Helper()
	reg := metrics.NewRegistry()
	return newHealth([]string{"p1", "p2"}, 2, 2, 2, reg), reg
}

func report(h *health, name string, ok bool, n int) {
	for i := 0; i < n; i++ {
		h.Report(name, ok)
	}
}

func TestHealthHysteresisDown(t *testing.T) {
	h, _ := newTestHealth(t)
	if got := h.State("p1"); got != StateAlive {
		t.Fatalf("initial state %s", got)
	}
	h.Report("p1", false)
	if got := h.State("p1"); got != StateAlive {
		t.Fatalf("one failure demoted to %s", got)
	}
	h.Report("p1", false)
	if got := h.State("p1"); got != StateSuspect {
		t.Fatalf("after 2 failures: %s, want suspect", got)
	}
	if !h.Usable("p1") {
		t.Fatal("suspect peer must still be usable")
	}
	h.Report("p1", false)
	if got := h.State("p1"); got != StateSuspect {
		t.Fatalf("after 3 failures: %s, want still suspect", got)
	}
	h.Report("p1", false)
	if got := h.State("p1"); got != StateDead {
		t.Fatalf("after 4 failures: %s, want dead", got)
	}
	if h.Usable("p1") {
		t.Fatal("dead peer must not be usable")
	}
}

func TestHealthHysteresisUp(t *testing.T) {
	h, _ := newTestHealth(t)
	report(h, "p1", false, 4)
	if got := h.State("p1"); got != StateDead {
		t.Fatalf("setup: %s", got)
	}
	h.Report("p1", true)
	if got := h.State("p1"); got != StateDead {
		t.Fatalf("one success revived to %s", got)
	}
	h.Report("p1", true)
	if got := h.State("p1"); got != StateAlive {
		t.Fatalf("after 2 successes: %s, want alive", got)
	}
}

func TestHealthNoFlappingOnAlternation(t *testing.T) {
	h, _ := newTestHealth(t)
	// Strict alternation never reaches 2 consecutive of anything, so
	// the peer must stay alive forever.
	for i := 0; i < 50; i++ {
		h.Report("p1", i%2 == 0)
		if got := h.State("p1"); got != StateAlive {
			t.Fatalf("iteration %d: flapped to %s", i, got)
		}
	}
}

func TestHealthMetrics(t *testing.T) {
	h, reg := newTestHealth(t)
	alive := reg.Gauge("repro_cluster_peers_alive")
	if got := alive.Value(); got != 2 {
		t.Fatalf("initial alive gauge %d", got)
	}
	report(h, "p1", false, 4) // alive → suspect → dead
	if got := alive.Value(); got != 1 {
		t.Fatalf("alive gauge after death %d", got)
	}
	report(h, "p1", true, 2) // dead → alive
	if got := alive.Value(); got != 2 {
		t.Fatalf("alive gauge after revival %d", got)
	}
	if got := reg.Counter("repro_cluster_health_transitions_total").Value(); got != 3 {
		t.Fatalf("transitions %d, want 3", got)
	}
}

func TestHealthUnknownPeerAlwaysAlive(t *testing.T) {
	h, _ := newTestHealth(t)
	report(h, "stranger", false, 10)
	if got := h.State("stranger"); got != StateAlive {
		t.Fatalf("unknown peer state %s", got)
	}
}
