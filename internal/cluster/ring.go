package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// The consistent-hash ring: a pure, deterministic function from
// (membership, key) to an ordered replica set. Every node — server or
// client — that knows the same member names computes the same owner
// for every key, with no coordination and no shared state; that is
// what lets a ring-aware client route cold submissions to the node
// that will own the bytes, and lets a campaign coordinator scatter
// cells without asking anyone.
//
// Layout: each member contributes ringVnodes virtual points, hashed
// from "name#i", onto a 64-bit circle. A key hashes to a point and
// walks clockwise collecting the first n *distinct* member names —
// owner first, then the replicas. Virtual points smooth the load
// (the expected share of a member is 1/len(members) ± a few percent)
// and make membership changes minimal: removing a node reassigns only
// the keys it owned, never shuffles survivors among themselves.
//
// Two virtual points can collide on the circle (64-bit hashes — rare
// but not impossible, and the ring must not depend on luck). Ties are
// broken per key by rendezvous hashing: the colliding members are
// ordered by hash(key, name), so the winner is still a deterministic
// function of the key, not of sort incidentals like name order.

// ringVnodes is the virtual-point count per member. 64 keeps the
// per-member load share within a few percent of uniform for small
// rings while the sorted point array stays tiny (3 nodes = 192
// points).
const ringVnodes = 64

// Ring maps content-addressed keys to an ordered set of member names.
// Immutable after NewRing; safe for concurrent use.
type Ring struct {
	points  []ringPoint // sorted by point, ties by name (stable build order)
	members []string    // sorted unique member names
}

type ringPoint struct {
	point uint64
	node  string
}

// NewRing builds a ring over the given member names. Duplicate names
// collapse; order does not matter (the ring is a function of the name
// *set*). An empty membership yields a ring that answers nil.
func NewRing(members []string) *Ring {
	seen := make(map[string]bool, len(members))
	var uniq []string
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		uniq = append(uniq, m)
	}
	sort.Strings(uniq)
	r := &Ring{members: uniq}
	for _, m := range uniq {
		for i := 0; i < ringVnodes; i++ {
			r.points = append(r.points, ringPoint{
				point: hash64("vnode", m, itoa(i)),
				node:  m,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].point != r.points[j].point {
			return r.points[i].point < r.points[j].point
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Members returns the sorted member names the ring was built over.
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// Owner returns the key's owning member ("" on an empty ring).
func (r *Ring) Owner(key string) string {
	reps := r.Replicas(key, 1)
	if len(reps) == 0 {
		return ""
	}
	return reps[0]
}

// Replicas returns the first n distinct members clockwise from the
// key's point: the owner, then the replica set, in deterministic
// preference order. n is clamped to the member count.
func (r *Ring) Replicas(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	kp := hash64("key", key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].point >= kp })
	out := make([]string, 0, n)
	taken := make(map[string]bool, n)
	for walked := 0; walked < len(r.points) && len(out) < n; {
		i := (start + walked) % len(r.points)
		// Gather the run of points with an identical hash and order it
		// by per-key rendezvous score, so a collision never decides
		// ownership by name-sort accident.
		run := []string{r.points[i].node}
		for walked+len(run) < len(r.points) {
			j := (start + walked + len(run)) % len(r.points)
			if r.points[j].point != r.points[i].point {
				break
			}
			run = append(run, r.points[j].node)
		}
		if len(run) > 1 {
			sort.Slice(run, func(a, b int) bool {
				return rendezvousScore(key, run[a]) > rendezvousScore(key, run[b])
			})
		}
		for _, node := range run {
			if !taken[node] {
				taken[node] = true
				out = append(out, node)
				if len(out) == n {
					break
				}
			}
		}
		walked += len(run)
	}
	return out
}

// rendezvousScore is the tie-break weight of node for key: highest
// score wins among virtual points that collide on the circle.
func rendezvousScore(key, node string) uint64 {
	return hash64("rendezvous", key, node)
}

// hash64 is the ring's hash: the first 8 bytes of a SHA-256 over the
// NUL-joined parts. SHA-256 keeps the point distribution uniform and
// the ring identical across architectures and Go versions (no
// maphash-style per-process seeding).
func hash64(parts ...string) uint64 {
	h := sha256.New()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return binary.BigEndian.Uint64(h.Sum(nil)[:8])
}

// itoa avoids strconv for the one hot build loop (and keeps the vnode
// label stable and obvious: decimal index).
func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}
