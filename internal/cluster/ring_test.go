package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%04d", i)
	}
	return keys
}

func TestRingDeterministicAcrossBuildOrder(t *testing.T) {
	a := NewRing([]string{"n1", "n2", "n3"})
	b := NewRing([]string{"n3", "n1", "n2", "n1"}) // shuffled + duplicate
	if !reflect.DeepEqual(a.Members(), b.Members()) {
		t.Fatalf("members differ: %v vs %v", a.Members(), b.Members())
	}
	for _, k := range ringKeys(500) {
		ra, rb := a.Replicas(k, 2), b.Replicas(k, 2)
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("key %s: replicas differ: %v vs %v", k, ra, rb)
		}
	}
}

func TestRingReplicasDistinctAndClamped(t *testing.T) {
	r := NewRing([]string{"n1", "n2", "n3"})
	for _, k := range ringKeys(200) {
		reps := r.Replicas(k, 5) // asks for more than members: clamps to 3
		if len(reps) != 3 {
			t.Fatalf("key %s: got %d replicas, want 3", k, len(reps))
		}
		seen := map[string]bool{}
		for _, n := range reps {
			if seen[n] {
				t.Fatalf("key %s: duplicate replica %s in %v", k, n, reps)
			}
			seen[n] = true
		}
		if reps[0] != r.Owner(k) {
			t.Fatalf("key %s: owner %s != first replica %s", k, r.Owner(k), reps[0])
		}
	}
}

func TestRingLoadRoughlyUniform(t *testing.T) {
	members := []string{"n1", "n2", "n3"}
	r := NewRing(members)
	counts := map[string]int{}
	const n = 3000
	for _, k := range ringKeys(n) {
		counts[r.Owner(k)]++
	}
	for _, m := range members {
		share := float64(counts[m]) / n
		// 64 vnodes: expect 1/3 ± a wide tolerance; the point is no node
		// is starved or doubled, not statistical perfection.
		if share < 0.20 || share > 0.47 {
			t.Fatalf("member %s owns %.1f%% of keys (counts %v)", m, share*100, counts)
		}
	}
}

func TestRingRemovalOnlyRemapsVictimKeys(t *testing.T) {
	full := NewRing([]string{"n1", "n2", "n3"})
	without := NewRing([]string{"n1", "n3"})
	for _, k := range ringKeys(1000) {
		before := full.Owner(k)
		after := without.Owner(k)
		if before != "n2" && after != before {
			t.Fatalf("key %s: owner moved %s → %s though n2 never owned it", k, before, after)
		}
		if before == "n2" && after == "n2" {
			t.Fatalf("key %s: still owned by removed member", k)
		}
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	if got := NewRing(nil).Owner("k"); got != "" {
		t.Fatalf("empty ring owner = %q, want empty", got)
	}
	if got := NewRing(nil).Replicas("k", 2); got != nil {
		t.Fatalf("empty ring replicas = %v, want nil", got)
	}
	solo := NewRing([]string{"only"})
	if got := solo.Owner("k"); got != "only" {
		t.Fatalf("solo owner = %q", got)
	}
	if got := solo.Replicas("k", 3); len(got) != 1 || got[0] != "only" {
		t.Fatalf("solo replicas = %v", got)
	}
}

func TestRingCollisionTieBreakIsPerKey(t *testing.T) {
	// Force a collision run artificially: two members whose vnode point
	// sets we override by constructing the ring by hand.
	r := &Ring{members: []string{"a", "b"}}
	r.points = []ringPoint{
		{point: 100, node: "a"},
		{point: 100, node: "b"},
	}
	// Both keys land before point 100 and hit the colliding run; the
	// rendezvous order must be a function of the key. Find two keys
	// with opposite winners to prove it is not name-sorted.
	winners := map[string]bool{}
	for _, k := range ringKeys(64) {
		reps := r.Replicas(k, 2)
		if len(reps) != 2 {
			t.Fatalf("key %s: %v", k, reps)
		}
		if want := rendezvousWinner(k); reps[0] != want {
			t.Fatalf("key %s: winner %s, want rendezvous winner %s", k, reps[0], want)
		}
		winners[reps[0]] = true
	}
	if len(winners) != 2 {
		t.Fatalf("all 64 keys picked the same collision winner %v — tie-break not per-key", winners)
	}
}

func rendezvousWinner(key string) string {
	if rendezvousScore(key, "a") > rendezvousScore(key, "b") {
		return "a"
	}
	return "b"
}
