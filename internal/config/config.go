// Package config loads simulated-system descriptions from JSON and
// translates them into core Scenarios. It is the configuration surface
// of cmd/rthvsim; all durations are given in microseconds, matching the
// paper's reporting unit.
package config

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/curves"
	"repro/internal/guestos"
	"repro/internal/hv"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/workload"
)

// File is the JSON schema of a simulated system.
type File struct {
	// Mode: "original" (Fig. 4a) or "monitored" (Fig. 4b).
	Mode string `json:"mode"`
	// Policy: "deny", "split" or "resume" (see hv.SlotEndPolicy).
	Policy string `json:"policy"`
	// Seed drives every generated workload deterministically.
	Seed       uint64      `json:"seed"`
	Partitions []Partition `json:"partitions"`
	// Windows optionally defines an explicit ARINC653-style cyclic
	// window schedule (entries reference partitions by index).
	Windows []WindowEntry `json:"windows,omitempty"`
	IRQs    []IRQ         `json:"irqs"`
}

// Partition declares one TDMA partition, optionally with a guest task
// set (uC/OS-II-style fixed priorities by declaration order).
type Partition struct {
	Name   string `json:"name"`
	SlotUs int64  `json:"slot_us"`
	Tasks  []Task `json:"tasks,omitempty"`
}

// Task declares one guest task.
type Task struct {
	Name       string  `json:"name"`
	PeriodUs   float64 `json:"period_us,omitempty"` // 0 + !Sporadic = background
	WCETUs     float64 `json:"wcet_us,omitempty"`
	JitterUs   float64 `json:"jitter_us,omitempty"` // analysis-only release jitter
	DeadlineUs float64 `json:"deadline_us,omitempty"`
	Sporadic   bool    `json:"sporadic,omitempty"`
}

// WindowEntry is one window of an explicit schedule.
type WindowEntry struct {
	Partition int   `json:"partition"`
	LengthUs  int64 `json:"length_us"`
}

// IRQ declares one IRQ source.
type IRQ struct {
	Name      string `json:"name"`
	Partition int    `json:"partition"`
	// SharedWith lists further subscriber partitions (shared IRQ,
	// never interposed).
	SharedWith []int   `json:"shared_with,omitempty"`
	CTHUs      float64 `json:"cth_us"`
	CBHUs      float64 `json:"cbh_us"`

	// Workload: either explicit arrivals or a generator.
	ArrivalsUs []float64 `json:"arrivals_us,omitempty"`
	Generator  string    `json:"generator,omitempty"` // exponential | exponential-clamped | periodic | ecu
	Events     int       `json:"events,omitempty"`
	MeanUs     float64   `json:"mean_us,omitempty"`
	PeriodUs   float64   `json:"period_us,omitempty"`
	JitterUs   float64   `json:"jitter_us,omitempty"`

	// Monitoring condition: dmin (l = 1), an explicit δ⁻, or a
	// self-learning monitor (Appendix A).
	DMinUs  float64   `json:"dmin_us,omitempty"`
	DeltaUs []float64 `json:"delta_us,omitempty"`
	Learn   *Learn    `json:"learn,omitempty"`
	// SignalsTask couples the source to a sporadic guest task of the
	// subscriber partition (task index); nil = no coupling.
	SignalsTask *int `json:"signals_task,omitempty"`
}

// Learn configures the Appendix A self-learning monitor.
type Learn struct {
	L      int `json:"l"`
	Events int `json:"events"`
	// BoundUs is δ⁻_b; all zeros (or omitted entries) means a
	// non-binding bound. Must have exactly L entries when present.
	BoundUs []float64 `json:"bound_us,omitempty"`
}

// Example is a commented reference configuration (printed by
// `rthvsim -example`).
const Example = `{
  "mode": "monitored",
  "policy": "resume",
  "seed": 42,
  "partitions": [
    {"name": "app1", "slot_us": 6000},
    {"name": "app2", "slot_us": 6000},
    {"name": "housekeeping", "slot_us": 2000}
  ],
  "irqs": [
    {
      "name": "timer0", "partition": 0,
      "cth_us": 6, "cbh_us": 30,
      "generator": "exponential", "events": 5000, "mean_us": 1344,
      "dmin_us": 1344
    }
  ]
}`

// Parse decodes a JSON document into a File. Unknown fields are
// rejected so typos in configuration keys surface immediately.
func Parse(data []byte) (*File, error) {
	var f File
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	return &f, nil
}

// Scenario translates the file into a runnable core.Scenario.
func (f *File) Scenario() (core.Scenario, error) {
	var sc core.Scenario
	switch f.Mode {
	case "", "original":
		sc.Mode = hv.Original
	case "monitored":
		sc.Mode = hv.Monitored
	default:
		return sc, fmt.Errorf("config: unknown mode %q", f.Mode)
	}
	switch f.Policy {
	case "", "deny":
		sc.Policy = hv.DenyNearSlotEnd
	case "split":
		sc.Policy = hv.SplitOnSlotEnd
	case "resume":
		sc.Policy = hv.ResumeAcrossSlots
	default:
		return sc, fmt.Errorf("config: unknown policy %q", f.Policy)
	}
	if len(f.Partitions) == 0 {
		return sc, errors.New("config: at least one partition required")
	}
	for _, p := range f.Partitions {
		spec := core.PartitionSpec{Name: p.Name, Slot: simtime.Micros(p.SlotUs)}
		if len(p.Tasks) > 0 {
			g := guestos.New(p.Name)
			for _, t := range p.Tasks {
				if _, err := g.AddTask(guestos.Task{
					Name:     t.Name,
					Period:   simtime.FromMicrosF(t.PeriodUs),
					WCET:     simtime.FromMicrosF(t.WCETUs),
					Deadline: simtime.FromMicrosF(t.DeadlineUs),
					Sporadic: t.Sporadic,
				}); err != nil {
					return sc, fmt.Errorf("config: partition %q task %q: %w", p.Name, t.Name, err)
				}
			}
			spec.Guest = g
		}
		sc.Partitions = append(sc.Partitions, spec)
	}
	for _, w := range f.Windows {
		sc.Windows = append(sc.Windows, core.WindowSpec{
			Partition: w.Partition, Length: simtime.Micros(w.LengthUs),
		})
	}
	for i, q := range f.IRQs {
		spec, err := f.irqSpec(q, uint64(i)) //nolint:gosec
		if err != nil {
			return sc, fmt.Errorf("config: irq %q: %w", q.Name, err)
		}
		sc.IRQs = append(sc.IRQs, spec)
	}
	return sc, nil
}

func (f *File) irqSpec(q IRQ, stream uint64) (core.IRQSpec, error) {
	spec := core.IRQSpec{
		Name:       q.Name,
		Partition:  q.Partition,
		SharedWith: q.SharedWith,
		CTH:        simtime.FromMicrosF(q.CTHUs),
		CBH:        simtime.FromMicrosF(q.CBHUs),
	}
	arrivals, err := f.arrivals(q, stream)
	if err != nil {
		return spec, err
	}
	spec.Arrivals = arrivals

	conditions := 0
	if q.DMinUs > 0 {
		spec.DMin = simtime.FromMicrosF(q.DMinUs)
		conditions++
	}
	if len(q.DeltaUs) > 0 {
		dist := make([]simtime.Duration, len(q.DeltaUs))
		for j, v := range q.DeltaUs {
			dist[j] = simtime.FromMicrosF(v)
		}
		d, err := curves.NewDelta(dist)
		if err != nil {
			return spec, err
		}
		spec.Condition = d
		conditions++
	}
	if q.Learn != nil {
		if q.Learn.L <= 0 || q.Learn.Events <= 0 {
			return spec, errors.New("learn needs positive l and events")
		}
		boundDist := make([]simtime.Duration, q.Learn.L)
		if len(q.Learn.BoundUs) > 0 {
			if len(q.Learn.BoundUs) != q.Learn.L {
				return spec, fmt.Errorf("bound_us has %d entries, want l=%d", len(q.Learn.BoundUs), q.Learn.L)
			}
			for j, v := range q.Learn.BoundUs {
				boundDist[j] = simtime.FromMicrosF(v)
			}
		}
		bound, err := curves.NewDelta(boundDist)
		if err != nil {
			return spec, err
		}
		spec.Learn = &core.LearnSpec{L: q.Learn.L, Events: q.Learn.Events, Bound: bound}
		conditions++
	}
	if conditions > 1 {
		return spec, errors.New("multiple monitoring conditions")
	}
	if q.SignalsTask != nil {
		spec.SignalsGuest = true
		spec.GuestTask = *q.SignalsTask
	}
	return spec, nil
}

func (f *File) arrivals(q IRQ, stream uint64) ([]simtime.Time, error) {
	if len(q.ArrivalsUs) > 0 {
		out := make([]simtime.Time, len(q.ArrivalsUs))
		for i, v := range q.ArrivalsUs {
			out[i] = simtime.Time(simtime.FromMicrosF(v))
			if i > 0 && out[i] < out[i-1] {
				return nil, errors.New("explicit arrivals not sorted")
			}
		}
		return out, nil
	}
	if q.Events <= 0 {
		return nil, errors.New("generator needs positive events")
	}
	src := rng.NewStream(f.Seed, stream+1)
	switch q.Generator {
	case "exponential":
		if q.MeanUs <= 0 {
			return nil, errors.New("exponential needs mean_us")
		}
		return workload.Timestamps(workload.Exponential(src, simtime.FromMicrosF(q.MeanUs), q.Events)), nil
	case "exponential-clamped":
		if q.MeanUs <= 0 || q.DMinUs <= 0 {
			return nil, errors.New("exponential-clamped needs mean_us and dmin_us")
		}
		return workload.Timestamps(workload.ExponentialClamped(src,
			simtime.FromMicrosF(q.MeanUs), simtime.FromMicrosF(q.DMinUs), q.Events)), nil
	case "periodic":
		if q.PeriodUs <= 0 {
			return nil, errors.New("periodic needs period_us")
		}
		return workload.PeriodicJitter(src, simtime.FromMicrosF(q.PeriodUs),
			simtime.FromMicrosF(q.JitterUs), 0, q.Events), nil
	case "ecu":
		return workload.ECUTrace(workload.ECUConfig{Events: q.Events, Seed: f.Seed ^ (stream + 1)})
	case "":
		return nil, errors.New("no arrivals and no generator")
	default:
		return nil, fmt.Errorf("unknown generator %q", q.Generator)
	}
}
