package config

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/hv"
	"repro/internal/simtime"
)

func TestParseExample(t *testing.T) {
	f, err := Parse([]byte(Example))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := f.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Mode != hv.Monitored || sc.Policy != hv.ResumeAcrossSlots {
		t.Fatalf("mode/policy = %v/%v", sc.Mode, sc.Policy)
	}
	if len(sc.Partitions) != 3 || len(sc.IRQs) != 1 {
		t.Fatal("shape")
	}
	if sc.IRQs[0].DMin != simtime.Micros(1344) {
		t.Fatalf("dmin = %v", sc.IRQs[0].DMin)
	}
	if len(sc.IRQs[0].Arrivals) != 5000 {
		t.Fatalf("arrivals = %d", len(sc.IRQs[0].Arrivals))
	}
	// And it actually runs.
	f.IRQs[0].Events = 200
	sc, _ = mustScenario(t, f)
	if _, err := core.Run(sc); err != nil {
		t.Fatal(err)
	}
}

func mustScenario(t *testing.T, f *File) (core.Scenario, error) {
	t.Helper()
	sc, err := f.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	return sc, nil
}

func TestParseRejectsUnknownFields(t *testing.T) {
	if _, err := Parse([]byte(`{"mode": "original", "bogus": 1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestParseRejectsBadJSON(t *testing.T) {
	if _, err := Parse([]byte(`{`)); err == nil {
		t.Fatal("truncated JSON accepted")
	}
}

func TestScenarioValidation(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"bad mode", `{"mode":"turbo","partitions":[{"name":"a","slot_us":100}],"irqs":[]}`},
		{"bad policy", `{"policy":"maybe","partitions":[{"name":"a","slot_us":100}],"irqs":[]}`},
		{"no partitions", `{"partitions":[],"irqs":[]}`},
		{"no workload", `{"partitions":[{"name":"a","slot_us":100}],
			"irqs":[{"name":"x","partition":0,"cth_us":1,"cbh_us":1}]}`},
		{"bad generator", `{"partitions":[{"name":"a","slot_us":100}],
			"irqs":[{"name":"x","partition":0,"cth_us":1,"cbh_us":1,"generator":"magic","events":5}]}`},
		{"exp without mean", `{"partitions":[{"name":"a","slot_us":100}],
			"irqs":[{"name":"x","partition":0,"cth_us":1,"cbh_us":1,"generator":"exponential","events":5}]}`},
		{"unsorted arrivals", `{"partitions":[{"name":"a","slot_us":100}],
			"irqs":[{"name":"x","partition":0,"cth_us":1,"cbh_us":1,"arrivals_us":[5,3]}]}`},
		{"two conditions", `{"partitions":[{"name":"a","slot_us":100}],
			"irqs":[{"name":"x","partition":0,"cth_us":1,"cbh_us":1,"arrivals_us":[1],
			"dmin_us":5,"delta_us":[5]}]}`},
		{"learn bound mismatch", `{"partitions":[{"name":"a","slot_us":100}],
			"irqs":[{"name":"x","partition":0,"cth_us":1,"cbh_us":1,"arrivals_us":[1],
			"learn":{"l":3,"events":10,"bound_us":[1,2]}}]}`},
	}
	for _, c := range cases {
		f, err := Parse([]byte(c.json))
		if err != nil {
			continue // parse-level rejection also counts
		}
		if _, err := f.Scenario(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestExplicitArrivalsAndDelta(t *testing.T) {
	f, err := Parse([]byte(`{
		"mode": "monitored",
		"partitions": [{"name":"a","slot_us":6000},{"name":"b","slot_us":6000}],
		"irqs": [{
			"name":"x","partition":0,"cth_us":6,"cbh_us":30,
			"arrivals_us":[100, 2100, 9000],
			"delta_us":[500, 1500]
		}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := f.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if sc.IRQs[0].Condition == nil || sc.IRQs[0].Condition.Len() != 2 {
		t.Fatal("δ⁻ condition not wired")
	}
	if sc.IRQs[0].Arrivals[1] != simtime.Time(simtime.Micros(2100)) {
		t.Fatal("explicit arrivals not converted")
	}
	res, err := core.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Count != 3 {
		t.Fatalf("records = %d", res.Summary.Count)
	}
}

func TestWindowsAndShared(t *testing.T) {
	f, err := Parse([]byte(`{
		"partitions": [{"name":"a","slot_us":0},{"name":"b","slot_us":0}],
		"windows": [
			{"partition":0,"length_us":2000},
			{"partition":1,"length_us":4000},
			{"partition":0,"length_us":2000}
		],
		"irqs": [{
			"name":"can","partition":0,"shared_with":[1],
			"cth_us":6,"cbh_us":20,
			"generator":"periodic","period_us":3000,"events":20
		}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := f.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Windows) != 3 {
		t.Fatal("windows not wired")
	}
	if sc.CycleLength() != simtime.Micros(8000) {
		t.Fatalf("cycle = %v", sc.CycleLength())
	}
	res, err := core.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Shared source: two deliveries per arrival.
	if res.Summary.Count != 40 {
		t.Fatalf("records = %d, want 40", res.Summary.Count)
	}
}

func TestLearnConfig(t *testing.T) {
	f, err := Parse([]byte(`{
		"mode": "monitored", "policy": "resume", "seed": 3,
		"partitions": [{"name":"a","slot_us":6000},{"name":"b","slot_us":6000}],
		"irqs": [{
			"name":"ecu","partition":0,"cth_us":6,"cbh_us":30,
			"generator":"ecu","events":800,
			"learn":{"l":5,"events":80}
		}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := f.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if sc.IRQs[0].Learn == nil || sc.IRQs[0].Learn.L != 5 {
		t.Fatal("learn spec not wired")
	}
	res, err := core.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.InterposedGrants == 0 {
		t.Fatal("learned monitor never granted")
	}
}

func TestDeterministicAcrossParses(t *testing.T) {
	run := func() simtime.Duration {
		f, err := Parse([]byte(Example))
		if err != nil {
			t.Fatal(err)
		}
		f.IRQs[0].Events = 300
		sc, err := f.Scenario()
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		return res.Summary.Mean
	}
	if run() != run() {
		t.Fatal("same config produced different results")
	}
}

func TestExampleIsValidJSON(t *testing.T) {
	if !strings.Contains(Example, "partitions") {
		t.Fatal("example lost its content")
	}
	if _, err := Parse([]byte(Example)); err != nil {
		t.Fatalf("example does not parse: %v", err)
	}
}
