package config

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/curves"
	"repro/internal/holistic"
	"repro/internal/simtime"
)

// HolisticSpecs derives the static schedulability model of the
// configured system: one holistic.PartitionSpec per partition that
// declares periodic guest tasks. IRQ sources contribute demand with
// models taken from their monitoring condition when present, otherwise
// fitted conservatively from their (generated) arrival stream.
func (f *File) HolisticSpecs() ([]holistic.PartitionSpec, error) {
	sc, err := f.Scenario()
	if err != nil {
		return nil, err
	}
	costs := sc.CostModel()
	cycle := sc.CycleLength()

	// IRQ demand per source, shared by all partitions.
	type srcDemand struct {
		d   holistic.IRQDemand
		sub int
	}
	var demands []srcDemand
	for i, q := range sc.IRQs {
		model, err := sourceModel(q)
		if err != nil {
			return nil, fmt.Errorf("config: irq %q: %w", q.Name, err)
		}
		d := holistic.IRQDemand{
			Name:  q.Name,
			CTH:   q.CTH + costs.QueuePush,
			CBH:   q.CBH + costs.QueuePop,
			Model: model,
		}
		if q.DMin > 0 {
			d.Cond = curves.Sporadic{DMin: q.DMin}
			d.CTH = costs.EffectiveTH(q.CTH) + costs.QueuePush
		}
		if q.Condition != nil {
			d.Cond = q.Condition
			d.CTH = costs.EffectiveTH(q.CTH) + costs.QueuePush
		}
		demands = append(demands, srcDemand{d: d, sub: q.Partition})
		_ = i
	}

	var specs []holistic.PartitionSpec
	for pi, p := range f.Partitions {
		var tasks []holistic.TaskSpec
		for _, t := range p.Tasks {
			if t.Sporadic || t.PeriodUs <= 0 {
				continue // background / externally activated
			}
			tasks = append(tasks, holistic.TaskSpec{
				Name:     t.Name,
				Period:   simtime.FromMicrosF(t.PeriodUs),
				Jitter:   simtime.FromMicrosF(t.JitterUs),
				WCET:     simtime.FromMicrosF(t.WCETUs),
				Deadline: simtime.FromMicrosF(t.DeadlineUs),
			})
		}
		if len(tasks) == 0 {
			continue
		}
		windows := sc.PartitionWindows(pi)
		sched, err := analysis.NewSchedule(cycle, windows, costs.CtxSwitch)
		if err != nil {
			return nil, fmt.Errorf("config: partition %q schedule: %w", p.Name, err)
		}
		spec := holistic.PartitionSpec{
			Name:     p.Name,
			Schedule: sched,
			Tasks:    tasks,
			Costs:    costs,
		}
		for _, sd := range demands {
			d := sd.d
			d.SubscribedHere = sd.sub == pi
			spec.IRQs = append(spec.IRQs, d)
		}
		specs = append(specs, spec)
	}
	return specs, nil
}

// sourceModel derives a conservative activation model for one source.
func sourceModel(q core.IRQSpec) (curves.Model, error) {
	switch {
	case q.DMin > 0:
		return curves.Sporadic{DMin: q.DMin}, nil
	case q.Condition != nil:
		return q.Condition, nil
	case len(q.Arrivals) >= 2:
		return curves.FitPJD(q.Arrivals, 8)
	default:
		// A single-shot source: effectively one event per window.
		return curves.Sporadic{DMin: simtime.Infinity / 2}, nil
	}
}
