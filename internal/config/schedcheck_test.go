package config

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/holistic"
)

const guestConfig = `{
  "mode": "monitored",
  "policy": "resume",
  "seed": 42,
  "partitions": [
    {"name": "flight", "slot_us": 10000, "tasks": [
      {"name": "attitude", "period_us": 20000, "wcet_us": 2000},
      {"name": "nav", "period_us": 40000, "wcet_us": 4000},
      {"name": "rx-task", "sporadic": true, "wcet_us": 200},
      {"name": "bg"}
    ]},
    {"name": "io", "slot_us": 4000}
  ],
  "irqs": [
    {"name": "afdx", "partition": 1, "cth_us": 8, "cbh_us": 40,
     "generator": "exponential-clamped", "events": 1200, "mean_us": 2600, "dmin_us": 2000},
    {"name": "sensor", "partition": 0, "cth_us": 6, "cbh_us": 20,
     "generator": "periodic", "period_us": 5000, "events": 1200, "dmin_us": 4500,
     "signals_task": 2}
  ]
}`

func TestGuestTasksWired(t *testing.T) {
	f, err := Parse([]byte(guestConfig))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := f.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	g := sc.Partitions[0].Guest
	if g == nil {
		t.Fatal("guest not built")
	}
	if g.Tasks() != 4 {
		t.Fatalf("guest tasks = %d", g.Tasks())
	}
	task, ok := g.TaskInfo(2)
	if !ok || !task.Sporadic {
		t.Fatal("sporadic task not wired")
	}
	if !sc.IRQs[1].SignalsGuest || sc.IRQs[1].GuestTask != 2 {
		t.Fatal("signals_task not wired")
	}
}

func TestHolisticSpecsDerivation(t *testing.T) {
	f, err := Parse([]byte(guestConfig))
	if err != nil {
		t.Fatal(err)
	}
	specs, err := f.HolisticSpecs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 {
		t.Fatalf("specs = %d, want 1 (only flight has periodic tasks)", len(specs))
	}
	spec := specs[0]
	if spec.Name != "flight" || len(spec.Tasks) != 2 {
		t.Fatalf("spec = %+v", spec)
	}
	if len(spec.IRQs) != 2 {
		t.Fatalf("IRQ demands = %d", len(spec.IRQs))
	}
	// The sensor source is subscribed here; afdx is foreign and
	// monitored.
	var foreignMonitored, subscribed bool
	for _, q := range spec.IRQs {
		if q.Name == "afdx" && !q.SubscribedHere && q.Cond != nil {
			foreignMonitored = true
		}
		if q.Name == "sensor" && q.SubscribedHere {
			subscribed = true
		}
	}
	if !foreignMonitored || !subscribed {
		t.Fatalf("demand flags wrong: %+v", spec.IRQs)
	}
}

// TestScheckBoundsEnvelopeConfiguredSimulation closes the loop: the
// static bounds derived from the JSON must envelope the guest WCRTs the
// simulation of the very same JSON measures.
func TestScheckBoundsEnvelopeConfiguredSimulation(t *testing.T) {
	f, err := Parse([]byte(guestConfig))
	if err != nil {
		t.Fatal(err)
	}
	specs, err := f.HolisticSpecs()
	if err != nil {
		t.Fatal(err)
	}
	bounds, err := holistic.Analyze(specs[0], analysis.DefaultHorizon)
	if err != nil {
		t.Fatal(err)
	}
	if !bounds.Schedulable {
		t.Fatalf("config analysed unschedulable: %+v", bounds.Tasks)
	}

	sc, err := f.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.InterposedGrants == 0 {
		t.Fatal("nothing interposed; test is vacuous")
	}
	guest := sc.Partitions[0].Guest
	if err := guest.SanityCheck(); err != nil {
		t.Fatal(err)
	}
	for i, tb := range bounds.Tasks {
		st := guest.Stats(i)
		if st.Completions == 0 {
			t.Fatalf("task %s never completed", tb.Name)
		}
		if st.WCRT > tb.WCRT {
			t.Errorf("task %s: measured WCRT %v exceeds static bound %v", tb.Name, st.WCRT, tb.WCRT)
		}
		if st.Misses != 0 {
			t.Errorf("task %s missed %d deadlines in a schedulable config", tb.Name, st.Misses)
		}
	}
}

func TestBadGuestTaskRejected(t *testing.T) {
	f, err := Parse([]byte(`{
		"partitions": [{"name":"a","slot_us":1000,"tasks":[
			{"name":"bad","period_us":10,"wcet_us":20}
		]}],
		"irqs": []
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Scenario(); err == nil {
		t.Fatal("WCET > period accepted")
	}
}
