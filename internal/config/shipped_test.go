package config

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

// TestShippedConfigs loads every configuration file shipped under
// configs/ — they are user-facing documentation and must stay valid —
// and runs a reduced version of each end to end.
func TestShippedConfigs(t *testing.T) {
	dir := filepath.Join("..", "..", "configs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("configs directory missing: %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("no shipped configs")
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".json" {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			raw, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			f, err := Parse(raw)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			// Reduce workload sizes for test speed.
			for i := range f.IRQs {
				if f.IRQs[i].Events > 600 {
					f.IRQs[i].Events = 600
				}
				if f.IRQs[i].Learn != nil && f.IRQs[i].Learn.Events > 60 {
					f.IRQs[i].Learn.Events = 60
				}
			}
			sc, err := f.Scenario()
			if err != nil {
				t.Fatalf("scenario: %v", err)
			}
			res, err := core.Run(sc)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.Summary.Count == 0 {
				t.Fatal("no records")
			}
			// Configs with guest task sets must also pass the static
			// check derivation.
			if specs, err := f.HolisticSpecs(); err != nil {
				t.Fatalf("holistic specs: %v", err)
			} else {
				_ = specs
			}
		})
	}
}
