// Canonical scenario serialization and content addressing.
//
// A Scenario is fully deterministic: given the same partitions, IRQ
// streams, monitoring conditions, cost model, mode and policy, Run
// produces bit-identical results. That makes a scenario's canonical
// byte encoding a *content address* for its results — two requests
// whose scenarios encode identically are guaranteed to produce the
// same output, so a cache keyed by Fingerprint is exact, not an
// approximation (the property internal/serve builds on).
//
// The canonical form is JSON with a fixed field order (Go struct
// marshalling), all durations/timestamps in integer simtime cycles,
// and every semantic field of the scenario included: partitions with
// their guest task sets, explicit windows, IRQ specs with the full
// arrival streams, monitoring conditions, cost model, mode and policy.
// Two fields are deliberately excluded: Tracer (a runtime observer,
// not part of the simulated system) and any guest *runtime* state (a
// scenario is hashed before it runs; reconstruction yields fresh
// guests, as config loading does).
package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/arm"
	"repro/internal/curves"
	"repro/internal/guestos"
	"repro/internal/hv"
	"repro/internal/simtime"
)

// canonVersion tags the canonical encoding itself; bump when the
// encoding (not the simulation) changes shape.
const canonVersion = 1

type canonTask struct {
	Name     string `json:"name"`
	Period   int64  `json:"period"`
	WCET     int64  `json:"wcet"`
	Offset   int64  `json:"offset"`
	Deadline int64  `json:"deadline"`
	Sporadic bool   `json:"sporadic"`
}

type canonPartition struct {
	Name  string      `json:"name"`
	Slot  int64       `json:"slot"`
	Tasks []canonTask `json:"tasks,omitempty"`
}

type canonWindow struct {
	Partition int   `json:"partition"`
	Length    int64 `json:"length"`
}

type canonLearn struct {
	L      int     `json:"l"`
	Events int     `json:"events"`
	Bound  []int64 `json:"bound,omitempty"`
}

type canonIRQ struct {
	Name         string      `json:"name"`
	Partition    int         `json:"partition"`
	SharedWith   []int       `json:"shared_with,omitempty"`
	CTH          int64       `json:"cth"`
	CBH          int64       `json:"cbh"`
	Arrivals     []int64     `json:"arrivals"`
	DMin         int64       `json:"dmin,omitempty"`
	Condition    []int64     `json:"condition,omitempty"`
	Learn        *canonLearn `json:"learn,omitempty"`
	SignalsGuest bool        `json:"signals_guest,omitempty"`
	GuestTask    int         `json:"guest_task,omitempty"`
	ActualBH     []int64     `json:"actual_bh,omitempty"`
}

type canonCosts struct {
	Monitor   int64 `json:"monitor"`
	Sched     int64 `json:"sched"`
	CtxSwitch int64 `json:"ctx_switch"`
	QueuePush int64 `json:"queue_push"`
	QueuePop  int64 `json:"queue_pop"`
}

type canonScenario struct {
	Version    int              `json:"v"`
	Mode       string           `json:"mode"`
	Policy     string           `json:"policy"`
	Partitions []canonPartition `json:"partitions"`
	Windows    []canonWindow    `json:"windows,omitempty"`
	IRQs       []canonIRQ       `json:"irqs"`
	Costs      *canonCosts      `json:"costs,omitempty"`
	// DisableMonitor is semantic state (it changes results), so it
	// belongs in the fingerprint pre-image; omitempty keeps every
	// pre-existing encoding byte-identical.
	DisableMonitor bool `json:"disable_monitor,omitempty"`
}

func durs(in []simtime.Duration) []int64 {
	if in == nil {
		return nil
	}
	out := make([]int64, len(in))
	for i, d := range in {
		out[i] = int64(d)
	}
	return out
}

func times(in []simtime.Time) []int64 {
	out := make([]int64, len(in))
	for i, t := range in {
		out[i] = int64(t)
	}
	return out
}

func modeString(m hv.Mode) (string, error) {
	switch m {
	case hv.Original:
		return "original", nil
	case hv.Monitored:
		return "monitored", nil
	}
	return "", fmt.Errorf("core: unknown mode %d", int(m))
}

func policyString(p hv.SlotEndPolicy) (string, error) {
	switch p {
	case hv.DenyNearSlotEnd:
		return "deny", nil
	case hv.SplitOnSlotEnd:
		return "split", nil
	case hv.ResumeAcrossSlots:
		return "resume", nil
	}
	return "", fmt.Errorf("core: unknown slot-end policy %d", int(p))
}

// CanonicalJSON returns the canonical byte encoding of the scenario:
// the Fingerprint pre-image, and a lossless description (modulo Tracer
// and guest runtime state) that ScenarioFromCanonicalJSON inverts.
// Encoding the reconstructed scenario yields byte-identical output.
func (sc Scenario) CanonicalJSON() ([]byte, error) {
	c := canonScenario{Version: canonVersion, DisableMonitor: sc.DisableMonitor}
	var err error
	if c.Mode, err = modeString(sc.Mode); err != nil {
		return nil, err
	}
	if c.Policy, err = policyString(sc.Policy); err != nil {
		return nil, err
	}
	for _, p := range sc.Partitions {
		cp := canonPartition{Name: p.Name, Slot: int64(p.Slot)}
		if p.Guest != nil {
			for i := 0; i < p.Guest.Tasks(); i++ {
				t, ok := p.Guest.TaskInfo(i)
				if !ok {
					return nil, fmt.Errorf("core: partition %q: task %d vanished", p.Name, i)
				}
				cp.Tasks = append(cp.Tasks, canonTask{
					Name:     t.Name,
					Period:   int64(t.Period),
					WCET:     int64(t.WCET),
					Offset:   int64(t.Offset),
					Deadline: int64(t.Deadline),
					Sporadic: t.Sporadic,
				})
			}
		}
		c.Partitions = append(c.Partitions, cp)
	}
	for _, w := range sc.Windows {
		c.Windows = append(c.Windows, canonWindow{Partition: w.Partition, Length: int64(w.Length)})
	}
	for _, q := range sc.IRQs {
		cq := canonIRQ{
			Name:         q.Name,
			Partition:    q.Partition,
			SharedWith:   q.SharedWith,
			CTH:          int64(q.CTH),
			CBH:          int64(q.CBH),
			Arrivals:     times(q.Arrivals),
			DMin:         int64(q.DMin),
			SignalsGuest: q.SignalsGuest,
			GuestTask:    q.GuestTask,
			ActualBH:     durs(q.ActualBH),
		}
		if q.Condition != nil {
			cq.Condition = durs(q.Condition.Dist)
		}
		if q.Learn != nil {
			cl := &canonLearn{L: q.Learn.L, Events: q.Learn.Events}
			if q.Learn.Bound != nil {
				cl.Bound = durs(q.Learn.Bound.Dist)
			}
			cq.Learn = cl
		}
		c.IRQs = append(c.IRQs, cq)
	}
	if sc.Costs != nil {
		c.Costs = &canonCosts{
			Monitor:   int64(sc.Costs.Monitor),
			Sched:     int64(sc.Costs.Sched),
			CtxSwitch: int64(sc.Costs.CtxSwitch),
			QueuePush: int64(sc.Costs.QueuePush),
			QueuePop:  int64(sc.Costs.QueuePop),
		}
	}
	return json.Marshal(c)
}

// ScenarioFromCanonicalJSON reconstructs a scenario from its canonical
// encoding. Unknown fields are rejected, so a corrupted or future
// encoding fails loudly instead of silently dropping state.
func ScenarioFromCanonicalJSON(data []byte) (Scenario, error) {
	var c canonScenario
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return Scenario{}, fmt.Errorf("core: canonical decode: %w", err)
	}
	if c.Version != canonVersion {
		return Scenario{}, fmt.Errorf("core: canonical encoding v%d, want v%d", c.Version, canonVersion)
	}
	var sc Scenario
	sc.DisableMonitor = c.DisableMonitor
	switch c.Mode {
	case "original":
		sc.Mode = hv.Original
	case "monitored":
		sc.Mode = hv.Monitored
	default:
		return Scenario{}, fmt.Errorf("core: unknown mode %q", c.Mode)
	}
	switch c.Policy {
	case "deny":
		sc.Policy = hv.DenyNearSlotEnd
	case "split":
		sc.Policy = hv.SplitOnSlotEnd
	case "resume":
		sc.Policy = hv.ResumeAcrossSlots
	default:
		return Scenario{}, fmt.Errorf("core: unknown policy %q", c.Policy)
	}
	for _, cp := range c.Partitions {
		spec := PartitionSpec{Name: cp.Name, Slot: simtime.Duration(cp.Slot)}
		if len(cp.Tasks) > 0 {
			g := guestos.New(cp.Name)
			for _, ct := range cp.Tasks {
				if _, err := g.AddTask(guestos.Task{
					Name:     ct.Name,
					Period:   simtime.Duration(ct.Period),
					WCET:     simtime.Duration(ct.WCET),
					Offset:   simtime.Duration(ct.Offset),
					Deadline: simtime.Duration(ct.Deadline),
					Sporadic: ct.Sporadic,
				}); err != nil {
					return Scenario{}, fmt.Errorf("core: partition %q task %q: %w", cp.Name, ct.Name, err)
				}
			}
			spec.Guest = g
		}
		sc.Partitions = append(sc.Partitions, spec)
	}
	for _, cw := range c.Windows {
		sc.Windows = append(sc.Windows, WindowSpec{Partition: cw.Partition, Length: simtime.Duration(cw.Length)})
	}
	for _, cq := range c.IRQs {
		q := IRQSpec{
			Name:         cq.Name,
			Partition:    cq.Partition,
			SharedWith:   cq.SharedWith,
			CTH:          simtime.Duration(cq.CTH),
			CBH:          simtime.Duration(cq.CBH),
			DMin:         simtime.Duration(cq.DMin),
			SignalsGuest: cq.SignalsGuest,
			GuestTask:    cq.GuestTask,
		}
		q.Arrivals = make([]simtime.Time, len(cq.Arrivals))
		for i, v := range cq.Arrivals {
			q.Arrivals[i] = simtime.Time(v)
		}
		if cq.ActualBH != nil {
			q.ActualBH = make([]simtime.Duration, len(cq.ActualBH))
			for i, v := range cq.ActualBH {
				q.ActualBH[i] = simtime.Duration(v)
			}
		}
		if cq.Condition != nil {
			dist := make([]simtime.Duration, len(cq.Condition))
			for i, v := range cq.Condition {
				dist[i] = simtime.Duration(v)
			}
			d, err := curves.NewDelta(dist)
			if err != nil {
				return Scenario{}, fmt.Errorf("core: irq %q condition: %w", cq.Name, err)
			}
			q.Condition = d
		}
		if cq.Learn != nil {
			ls := &LearnSpec{L: cq.Learn.L, Events: cq.Learn.Events}
			if cq.Learn.Bound != nil {
				dist := make([]simtime.Duration, len(cq.Learn.Bound))
				for i, v := range cq.Learn.Bound {
					dist[i] = simtime.Duration(v)
				}
				b, err := curves.NewDelta(dist)
				if err != nil {
					return Scenario{}, fmt.Errorf("core: irq %q learn bound: %w", cq.Name, err)
				}
				ls.Bound = b
			}
			q.Learn = ls
		}
		sc.IRQs = append(sc.IRQs, q)
	}
	if c.Costs != nil {
		sc.Costs = &arm.CostModel{
			Monitor:   simtime.Duration(c.Costs.Monitor),
			Sched:     simtime.Duration(c.Costs.Sched),
			CtxSwitch: simtime.Duration(c.Costs.CtxSwitch),
			QueuePush: simtime.Duration(c.Costs.QueuePush),
			QueuePop:  simtime.Duration(c.Costs.QueuePop),
		}
	}
	return sc, nil
}

// Fingerprint returns the scenario's content address: the hex SHA-256
// of a domain-separation tag and the canonical JSON encoding. Because
// simulation is deterministic, equal fingerprints imply bit-identical
// Run results (for the same code version — cache layers must mix in a
// build identifier, see internal/serve).
func Fingerprint(sc Scenario) (string, error) {
	data, err := sc.CanonicalJSON()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write([]byte("repro/scenario/v1\n"))
	h.Write(data)
	return hex.EncodeToString(h.Sum(nil)), nil
}
