package core

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/arm"
	"repro/internal/curves"
	"repro/internal/guestos"
	"repro/internal/hv"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/workload"
)

// fullScenario exercises every canonical field: guests, windows, all
// three monitoring conditions, shared IRQs, costs and actual BH times.
func fullScenario(t *testing.T) Scenario {
	t.Helper()
	g := guestos.New("app1")
	if _, err := g.AddTask(guestos.Task{Name: "ctrl", Period: simtime.Micros(5000), WCET: simtime.Micros(400)}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddTask(guestos.Task{Name: "spor", WCET: simtime.Micros(100), Sporadic: true}); err != nil {
		t.Fatal(err)
	}
	delta, err := curves.NewDelta([]simtime.Duration{simtime.Micros(500), simtime.Micros(1500)})
	if err != nil {
		t.Fatal(err)
	}
	bound, err := curves.NewDelta([]simtime.Duration{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	arr := workload.Timestamps(workload.Exponential(rng.New(7), simtime.Micros(1000), 200))
	costs := arm.DefaultCosts()
	task1 := 1
	return Scenario{
		Mode:   hv.Monitored,
		Policy: hv.SplitOnSlotEnd,
		Partitions: []PartitionSpec{
			{Name: "app1", Slot: simtime.Micros(6000), Guest: g},
			{Name: "app2", Slot: simtime.Micros(6000)},
			{Name: "hk", Slot: simtime.Micros(2000)},
		},
		Windows: []WindowSpec{
			{Partition: 0, Length: simtime.Micros(4000)},
			{Partition: 1, Length: simtime.Micros(6000)},
			{Partition: 0, Length: simtime.Micros(2000)},
			{Partition: 2, Length: simtime.Micros(2000)},
		},
		IRQs: []IRQSpec{
			{
				Name: "timer0", Partition: 0,
				CTH: simtime.Micros(6), CBH: simtime.Micros(30),
				Arrivals: arr, DMin: simtime.Micros(1000),
				SignalsGuest: true, GuestTask: task1,
				ActualBH: []simtime.Duration{simtime.Micros(10), simtime.Micros(30)},
			},
			{
				Name: "can0", Partition: 1, SharedWith: []int{2},
				CTH: simtime.Micros(4), CBH: simtime.Micros(20),
				Arrivals: arr[:50],
			},
			{
				Name: "uart", Partition: 2,
				CTH: simtime.Micros(4), CBH: simtime.Micros(20),
				Arrivals: arr[:80], Condition: delta,
			},
			{
				Name: "ecu", Partition: 1,
				CTH: simtime.Micros(4), CBH: simtime.Micros(20),
				Arrivals: arr[:100],
				Learn:    &LearnSpec{L: 3, Events: 10, Bound: bound},
			},
		},
		Costs: &costs,
	}
}

func TestCanonicalRoundTrip(t *testing.T) {
	sc := fullScenario(t)
	enc, err := sc.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ScenarioFromCanonicalJSON(enc)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := back.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatalf("round trip not byte-identical:\n%s\n----\n%s", enc, enc2)
	}
	f1, err := Fingerprint(sc)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Fingerprint(back)
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Fatalf("fingerprint changed across round trip: %s != %s", f1, f2)
	}
}

// TestRoundTrippedScenarioRunsIdentically is the semantic half of the
// round-trip contract: the reconstructed scenario simulates to the
// same results, which is what makes the fingerprint a content address.
func TestRoundTrippedScenarioRunsIdentically(t *testing.T) {
	sc := fullScenario(t)
	enc, err := sc.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ScenarioFromCanonicalJSON(enc)
	if err != nil {
		t.Fatal(err)
	}
	// Run the reconstruction first so any shared-state bug in the
	// encoder would surface as a difference.
	resBack, err := Run(back)
	if err != nil {
		t.Fatal(err)
	}
	resOrig, err := Run(fullScenario(t))
	if err != nil {
		t.Fatal(err)
	}
	if resOrig.Summary != resBack.Summary {
		t.Fatalf("summaries differ:\n%+v\n%+v", resOrig.Summary, resBack.Summary)
	}
	if resOrig.Stats != resBack.Stats {
		t.Fatalf("stats differ:\n%+v\n%+v", resOrig.Stats, resBack.Stats)
	}
	if len(resOrig.Log.Records) != len(resBack.Log.Records) {
		t.Fatalf("record counts differ: %d != %d", len(resOrig.Log.Records), len(resBack.Log.Records))
	}
	for i := range resOrig.Log.Records {
		if resOrig.Log.Records[i] != resBack.Log.Records[i] {
			t.Fatalf("record %d differs: %+v != %+v", i, resOrig.Log.Records[i], resBack.Log.Records[i])
		}
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base, err := Fingerprint(fullScenario(t))
	if err != nil {
		t.Fatal(err)
	}
	mutations := map[string]func(*Scenario){
		"policy":    func(sc *Scenario) { sc.Policy = hv.ResumeAcrossSlots },
		"mode":      func(sc *Scenario) { sc.Mode = hv.Original },
		"slot":      func(sc *Scenario) { sc.Partitions[1].Slot += simtime.Microsecond },
		"dmin":      func(sc *Scenario) { sc.IRQs[0].DMin += simtime.Microsecond },
		"arrival":   func(sc *Scenario) { sc.IRQs[1].Arrivals = sc.IRQs[1].Arrivals[:49] },
		"cbh":       func(sc *Scenario) { sc.IRQs[3].CBH += simtime.Microsecond },
		"costs":     func(sc *Scenario) { sc.Costs.CtxSwitch += simtime.Microsecond },
		"windows":   func(sc *Scenario) { sc.Windows = sc.Windows[:3] },
		"guesttask": func(sc *Scenario) { sc.IRQs[0].GuestTask = 0 },
	}
	for name, mutate := range mutations {
		sc := fullScenario(t)
		if name == "costs" {
			c := sc.CostModel()
			sc.Costs = &c
		}
		mutate(&sc)
		got, err := Fingerprint(sc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got == base {
			t.Errorf("mutation %q did not change the fingerprint", name)
		}
	}
	// Tracer is excluded by design: attaching one must NOT change the
	// address (results are independent of observation).
	sc := fullScenario(t)
	sc.Tracer = nil
	same, err := Fingerprint(sc)
	if err != nil {
		t.Fatal(err)
	}
	if same != base {
		t.Error("fingerprint not stable for identical scenarios")
	}
}

func TestCanonicalRejectsUnknownFields(t *testing.T) {
	if _, err := ScenarioFromCanonicalJSON([]byte(`{"v":1,"mode":"original","policy":"deny","partitions":[],"irqs":[],"bogus":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ScenarioFromCanonicalJSON([]byte(`{"v":99,"mode":"original","policy":"deny","partitions":[],"irqs":[]}`)); err == nil {
		t.Fatal("future version accepted")
	}
}

func TestRunManyCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sc := fullScenario(t)
	if _, err := RunManyCtx(ctx, []Scenario{sc, sc}, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
