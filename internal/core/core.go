// Package core is the library entry point of the reproduction: it wires
// the paper's contribution — monitored interposed interrupt handling in a
// TDMA-scheduled real-time hypervisor — into a single Scenario/Run API on
// top of the substrates (internal/hv, internal/monitor, internal/curves,
// internal/analysis).
//
// A Scenario declares partitions, IRQ sources with pre-generated arrival
// streams, per-source monitoring conditions and the handling mode
// (Original = Fig. 4a, Monitored = Fig. 4b). Run simulates it and returns
// per-IRQ latency records, handling-mode shares, interference and
// overhead accounting. Analyze computes the matching worst-case bounds
// (eqs. 11–16) so measured and analytic results can be compared the way
// the paper's evaluation does.
package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/analysis"
	"repro/internal/arm"
	"repro/internal/curves"
	"repro/internal/guestos"
	"repro/internal/hv"
	"repro/internal/monitor"
	"repro/internal/runner"
	"repro/internal/schedtrace"
	"repro/internal/simtime"
	"repro/internal/tracerec"
)

// PartitionSpec declares one TDMA partition.
type PartitionSpec struct {
	Name string
	// Slot is the partition's fixed TDMA slot length T_i.
	Slot simtime.Duration
	// Guest optionally attaches a guest OS model whose task scheduling
	// is simulated over the partition's CPU supply.
	Guest *guestos.OS
}

// LearnSpec configures the self-learning monitor of Appendix A.
type LearnSpec struct {
	// L is the number of δ⁻ entries to learn (the paper uses l = 5).
	L int
	// Events is the length of the learning phase in activations (the
	// paper uses the first 10 % of the trace).
	Events int
	// Bound is the predefined upper bound δ⁻_b the learned function is
	// lifted to (Algorithm 2).
	Bound *curves.Delta
}

// IRQSpec declares one interrupt source.
type IRQSpec struct {
	Name string
	// Partition is the index of the subscriber partition.
	Partition int
	// SharedWith, when non-empty, makes this a shared IRQ delivered to
	// Partition and every listed partition (never interposed; §4).
	SharedWith []int
	// CTH and CBH are the top-/bottom-handler WCETs.
	CTH simtime.Duration
	CBH simtime.Duration
	// Arrivals is the pre-generated stream of hardware IRQ times.
	Arrivals []simtime.Time
	// Exactly one of the following selects the monitoring condition
	// (all zero/nil = unmonitored; the source is never interposed):
	// DMin enforces a minimum distance (l = 1, §5); Condition enforces
	// an explicit δ⁻[l]; Learn learns the condition online.
	DMin      simtime.Duration
	Condition *curves.Delta
	Learn     *LearnSpec
	// SignalsGuest activates sporadic guest task GuestTask in the
	// processing partition on every bottom-handler completion.
	SignalsGuest bool
	GuestTask    int
	// ActualBH optionally gives per-delivery actual bottom-handler
	// execution times (default: CBH). Overrunning interposed handlers
	// are cut at the C_BH budget (see hv.SourceConfig.ActualBH).
	ActualBH []simtime.Duration
}

// WindowSpec is one entry of an explicit ARINC653-style window schedule.
type WindowSpec struct {
	Partition int
	Length    simtime.Duration
}

// Scenario is a complete system description.
type Scenario struct {
	Partitions []PartitionSpec
	// Windows optionally replaces the default one-slot-per-partition
	// rotation with an explicit cyclic window schedule (a partition
	// may own several windows per TDMA cycle).
	Windows []WindowSpec
	IRQs    []IRQSpec
	// Costs are the hypervisor overhead WCETs; nil selects the
	// paper's measured §6.2 values (arm.DefaultCosts).
	Costs *arm.CostModel
	// Mode selects the top-handler variant.
	Mode hv.Mode
	// Policy selects the slot-end collision policy for interposed
	// bottom handlers.
	Policy hv.SlotEndPolicy
	// Tracer, when set, records every CPU execution span for Gantt /
	// CSV inspection (see internal/schedtrace).
	Tracer *schedtrace.Recorder
	// DisableMonitor is the chaos-oracle ablation hook: monitors run
	// but their verdicts are ignored, so conforming-stream shaping is
	// off (see hv.Config.DisableMonitor). Part of the canonical
	// encoding — it changes simulation results.
	DisableMonitor bool
}

// CycleLength returns T_TDMA.
func (sc Scenario) CycleLength() simtime.Duration {
	var sum simtime.Duration
	if len(sc.Windows) > 0 {
		for _, w := range sc.Windows {
			sum += w.Length
		}
		return sum
	}
	for _, p := range sc.Partitions {
		sum += p.Slot
	}
	return sum
}

// PartitionWindows returns the windows of one partition within the
// cyclic schedule, as [start, end) offsets from the cycle start — the
// input of the supply-bound analysis.
func (sc Scenario) PartitionWindows(idx int) []analysis.Window {
	var out []analysis.Window
	var t simtime.Duration
	if len(sc.Windows) > 0 {
		for _, w := range sc.Windows {
			if w.Partition == idx {
				out = append(out, analysis.Window{Start: t, End: t + w.Length})
			}
			t += w.Length
		}
		return out
	}
	for i, p := range sc.Partitions {
		if i == idx {
			out = append(out, analysis.Window{Start: t, End: t + p.Slot})
		}
		t += p.Slot
	}
	return out
}

// CostModel returns the effective hypervisor cost model: Costs if set,
// otherwise the paper's measured §6.2 values.
func (sc Scenario) CostModel() arm.CostModel {
	if sc.Costs != nil {
		return *sc.Costs
	}
	return arm.DefaultCosts()
}

// Build constructs the hypervisor system for a scenario without running
// it, for callers that want stepwise control.
func Build(sc Scenario) (*hv.System, error) {
	cfg, err := buildConfig(sc)
	if err != nil {
		return nil, err
	}
	return hv.New(cfg)
}

// BuildReuse is Build into an existing system arena: sys's allocations
// (simulator, event freelist, partition and source structs, interrupt
// rings, latency log backing array) are reset in place and rewired for
// sc instead of being reallocated. A nil sys builds fresh. Results are
// byte-identical to a fresh Build — the hv.Reinit contract, enforced by
// the engine's equivalence tests.
func BuildReuse(sys *hv.System, sc Scenario) (*hv.System, error) {
	cfg, err := buildConfig(sc)
	if err != nil {
		return nil, err
	}
	if sys == nil {
		return hv.New(cfg)
	}
	if err := sys.Reinit(cfg); err != nil {
		return nil, err
	}
	return sys, nil
}

// Horizon returns the run-to-completion guard horizon for sc: the last
// injected arrival plus a generous number of TDMA cycles.
func Horizon(sc Scenario) simtime.Time {
	var last simtime.Time
	for _, q := range sc.IRQs {
		if n := len(q.Arrivals); n > 0 && q.Arrivals[n-1] > last {
			last = q.Arrivals[n-1]
		}
	}
	return last.Add(1000 * sc.CycleLength())
}

// buildConfig translates a Scenario into the hv.Config encoding shared
// by Build and BuildReuse.
func buildConfig(sc Scenario) (hv.Config, error) {
	cfg := hv.Config{
		Costs:          sc.CostModel(),
		Mode:           sc.Mode,
		Policy:         sc.Policy,
		Tracer:         sc.Tracer,
		DisableMonitor: sc.DisableMonitor,
	}
	for _, p := range sc.Partitions {
		cfg.Slots = append(cfg.Slots, hv.SlotConfig{Name: p.Name, Length: p.Slot, Guest: p.Guest})
	}
	for _, w := range sc.Windows {
		cfg.Windows = append(cfg.Windows, hv.WindowConfig{Partition: w.Partition, Length: w.Length})
	}
	for i, q := range sc.IRQs {
		scfg := hv.SourceConfig{
			Name:         q.Name,
			Subscriber:   q.Partition,
			CTH:          q.CTH,
			CBH:          q.CBH,
			Arrivals:     q.Arrivals,
			SignalsGuest: q.SignalsGuest,
			GuestTask:    q.GuestTask,
			ActualBH:     q.ActualBH,
		}
		if len(q.SharedWith) > 0 {
			scfg.Subscribers = append([]int{q.Partition}, q.SharedWith...)
		}
		set := 0
		if q.DMin > 0 {
			scfg.Monitor = monitor.NewDMin(q.DMin)
			set++
		}
		if q.Condition != nil {
			// A degenerate or non-monotone condition would pass hv
			// validation (the monitor only compares distances) but
			// panic later inside the analysis when the oracle budget
			// takes its η⁺ — reject it at build time with the typed
			// analysis error instead.
			if err := analysis.ValidateModel(fmt.Sprintf("irq %d (%s) condition", i, q.Name), q.Condition); err != nil {
				return hv.Config{}, err
			}
			scfg.Monitor = monitor.New(q.Condition)
			set++
		}
		if q.Learn != nil {
			m, err := monitor.NewLearning(q.Learn.L)
			if err != nil {
				return hv.Config{}, fmt.Errorf("core: irq %d (%s): %w", i, q.Name, err)
			}
			scfg.Monitor = m
			scfg.LearnEvents = q.Learn.Events
			scfg.LearnBound = q.Learn.Bound
			set++
		}
		if set > 1 {
			return hv.Config{}, fmt.Errorf("core: irq %d (%s): multiple monitoring conditions", i, q.Name)
		}
		cfg.Sources = append(cfg.Sources, scfg)
	}
	return cfg, nil
}

// PartitionReport summarises one partition after a run.
type PartitionReport struct {
	Name             string
	Slot             simtime.Duration
	GuestTime        simtime.Duration
	BHTime           simtime.Duration
	StolenInterposed simtime.Duration
	StolenTop        simtime.Duration
	InterposedHits   uint64
}

// SourceReport summarises one IRQ source after a run.
type SourceReport struct {
	Name    string
	Raised  uint64
	Lost    uint64
	Monitor *monitor.Stats // nil when unmonitored
}

// Result is the outcome of Run.
type Result struct {
	Log        *tracerec.Log
	Summary    tracerec.Summary
	Stats      hv.Stats
	Partitions []PartitionReport
	Sources    []SourceReport
	// Duration is the simulated time the run covered.
	Duration simtime.Duration
}

// Run simulates the scenario until every injected IRQ completed. The
// horizon guard is derived from the workload (last arrival plus a
// generous number of TDMA cycles).
func Run(sc Scenario) (*Result, error) {
	sys, err := Build(sc)
	if err != nil {
		return nil, err
	}
	if err := sys.RunToCompletion(Horizon(sc)); err != nil {
		return nil, err
	}
	if err := sys.CheckInvariants(); err != nil {
		return nil, err
	}
	return Report(sys), nil
}

// RunMany simulates independent scenarios across a worker pool and
// returns their results in scenario order. Each simulation owns all of
// its mutable state (system, simulator, log), so the only sharing is
// read-only scenario data; results are byte-identical to running the
// scenarios sequentially. workers == 1 forces the sequential path,
// 0 selects the runner default (REPRO_WORKERS or GOMAXPROCS).
func RunMany(scenarios []Scenario, workers int) ([]*Result, error) {
	return RunManyCtx(context.Background(), scenarios, workers)
}

// RunManyCtx is RunMany with cooperative cancellation: once ctx is
// done no further scenario starts (a simulation already in flight runs
// to completion) and the call returns a non-nil error. The long-running
// service path (internal/serve) uses this to honour per-job deadlines
// without tearing down a simulation mid-flight.
func RunManyCtx(ctx context.Context, scenarios []Scenario, workers int) ([]*Result, error) {
	return runner.MapCtx(ctx, workers, len(scenarios), func(i int) (*Result, error) {
		return Run(scenarios[i])
	})
}

// Report assembles a Result from a (fully or partially) run system.
func Report(sys *hv.System) *Result {
	res := &Result{
		Log:      sys.Log(),
		Summary:  sys.Log().Summarize(),
		Stats:    sys.Stats(),
		Duration: sys.Now().Sub(0),
	}
	for _, p := range sys.Partitions() {
		res.Partitions = append(res.Partitions, PartitionReport{
			Name:             p.Name,
			Slot:             p.SlotLen,
			GuestTime:        p.GuestTime,
			BHTime:           p.BHTime,
			StolenInterposed: p.StolenInterposed,
			StolenTop:        p.StolenTop,
			InterposedHits:   p.InterposedHits,
		})
	}
	for _, s := range sys.Sources() {
		sr := SourceReport{Name: s.Name, Raised: s.Raised, Lost: s.Lost}
		if s.Monitor != nil {
			st := s.Monitor.Stats()
			sr.Monitor = &st
		}
		res.Sources = append(res.Sources, sr)
	}
	return res
}

// ReportOwned is Report with the latency records copied out of the
// system: the Result does not alias the system's log, so an arena-held
// system can be Reinit-ed and reused while the Result lives on. Every
// arena-based caller must use this instead of Report — retaining
// Report's aliased log across a reuse is a use-after-reset bug (the
// reprolint arenaretain analyzer flags it in arena-adopting packages).
func ReportOwned(sys *hv.System) *Result {
	res := Report(sys)
	res.Log = &tracerec.Log{Records: append([]tracerec.Record(nil), res.Log.Records...)}
	return res
}

// Analyze computes the worst-case latency bounds of eqs. (11)–(16) for
// IRQ source idx of the scenario, using model as the source's activation
// bound (η⁺/δ⁻) and treating every other source as a top-handler
// interferer.
func Analyze(sc Scenario, idx int, model curves.Model) (analysis.Comparison, error) {
	if idx < 0 || idx >= len(sc.IRQs) {
		return analysis.Comparison{}, errors.New("core: IRQ index out of range")
	}
	costs := sc.CostModel()
	target := sc.IRQs[idx]
	// The simulated handlers additionally pay the interrupt-queue push
	// (top handler) and pop (bottom-handler dispatch); fold them into
	// the WCETs so the bounds envelope the simulation.
	irq := analysis.IRQ{
		Name:  target.Name,
		CTH:   target.CTH + costs.QueuePush,
		CBH:   target.CBH + costs.QueuePop,
		Model: model,
	}
	tdma := analysis.TDMA{
		Cycle:     sc.CycleLength(),
		Slot:      sc.Partitions[target.Partition].Slot,
		SlotEntry: costs.CtxSwitch,
	}
	var others []analysis.IRQ
	for i, q := range sc.IRQs {
		if i == idx {
			continue
		}
		m := interfererModel(q)
		others = append(others, analysis.IRQ{Name: q.Name, CTH: q.CTH + costs.QueuePush, CBH: q.CBH, Model: m})
	}
	return analysis.Compare(irq, tdma, costs, others, analysis.DefaultHorizon)
}

// AnalyzeSchedule computes the classic (delayed-handling) worst-case
// latency bound using the generalised multi-window supply analysis —
// required when the scenario uses an explicit window schedule, and at
// least as tight as eq. (8) for single-slot rotations.
func AnalyzeSchedule(sc Scenario, idx int, model curves.Model) (analysis.ResponseTimeResult, error) {
	if idx < 0 || idx >= len(sc.IRQs) {
		return analysis.ResponseTimeResult{}, errors.New("core: IRQ index out of range")
	}
	costs := sc.CostModel()
	target := sc.IRQs[idx]
	windows := sc.PartitionWindows(target.Partition)
	sched, err := analysis.NewSchedule(sc.CycleLength(), windows, costs.CtxSwitch)
	if err != nil {
		return analysis.ResponseTimeResult{}, err
	}
	irq := analysis.IRQ{
		Name:  target.Name,
		CTH:   target.CTH + costs.QueuePush,
		CBH:   target.CBH + costs.QueuePop,
		Model: model,
	}
	var others []analysis.IRQ
	for i, q := range sc.IRQs {
		if i == idx {
			continue
		}
		others = append(others, analysis.IRQ{Name: q.Name, CTH: q.CTH + costs.QueuePush, CBH: q.CBH, Model: interfererModel(q)})
	}
	return analysis.ClassicLatencySchedule(irq, sched, others, analysis.DefaultHorizon)
}

// ClassicBoundUnder computes the classic delayed-handling worst-case
// latency bound of eqs. (11)–(12) for IRQ idx with additional foreign
// interposed interference folded in (analysis.ClassicLatencyUnder) —
// the victim-side bound of the temporal-independence oracle: under a
// *monitored* adversary the extra term is the adversary's eq. (14)
// budget, and the victim's measured latency must stay below the result.
func ClassicBoundUnder(sc Scenario, idx int, model curves.Model, extra analysis.Interference) (analysis.ResponseTimeResult, error) {
	return ClassicBoundUnderHorizon(sc, idx, model, extra, analysis.DefaultHorizon)
}

// ClassicBoundUnderHorizon is ClassicBoundUnder with an explicit
// busy-window horizon. Callers that sweep many generated systems (the
// differential fuzzer) pass a horizon near the simulated span so that
// overloaded configurations are rejected quickly instead of crawling
// the fixed point toward the default one-hour horizon.
func ClassicBoundUnderHorizon(sc Scenario, idx int, model curves.Model, extra analysis.Interference, horizon simtime.Duration) (analysis.ResponseTimeResult, error) {
	if idx < 0 || idx >= len(sc.IRQs) {
		return analysis.ResponseTimeResult{}, errors.New("core: IRQ index out of range")
	}
	costs := sc.CostModel()
	target := sc.IRQs[idx]
	irq := analysis.IRQ{
		Name:  target.Name,
		CTH:   target.CTH + costs.QueuePush,
		CBH:   target.CBH + costs.QueuePop,
		Model: model,
	}
	tdma := analysis.TDMA{
		Cycle:     sc.CycleLength(),
		Slot:      sc.Partitions[target.Partition].Slot,
		SlotEntry: costs.CtxSwitch,
	}
	var others []analysis.IRQ
	for i, q := range sc.IRQs {
		if i == idx {
			continue
		}
		// Interferer top handlers fire for the *actual* stream, not
		// the monitoring condition — a violating arrival is denied
		// interposing but still pays its top handler. Bound them by
		// the concrete trace, never the (possibly violated) condition.
		m := traceModel(q.Arrivals)
		others = append(others, analysis.IRQ{Name: q.Name, CTH: interfererCTH(q, costs), CBH: q.CBH, Model: m})
	}
	return analysis.ClassicLatencyUnder(irq, tdma, others, extra, horizon)
}

// ScheduleBoundUnder is ClassicBoundUnder for scenarios with an
// explicit multi-window schedule: the TDMA term of eq. (11) is replaced
// by the supply-function interference bound of the partition's windows
// (analysis.ClassicLatencyScheduleUnder), with the same trace-derived
// interferer models and the same extra term.
func ScheduleBoundUnder(sc Scenario, idx int, model curves.Model, extra analysis.Interference) (analysis.ResponseTimeResult, error) {
	return ScheduleBoundUnderHorizon(sc, idx, model, extra, analysis.DefaultHorizon)
}

// ScheduleBoundUnderHorizon is ScheduleBoundUnder with an explicit
// busy-window horizon (see ClassicBoundUnderHorizon).
func ScheduleBoundUnderHorizon(sc Scenario, idx int, model curves.Model, extra analysis.Interference, horizon simtime.Duration) (analysis.ResponseTimeResult, error) {
	if idx < 0 || idx >= len(sc.IRQs) {
		return analysis.ResponseTimeResult{}, errors.New("core: IRQ index out of range")
	}
	costs := sc.CostModel()
	target := sc.IRQs[idx]
	sched, err := analysis.NewSchedule(sc.CycleLength(), sc.PartitionWindows(target.Partition), costs.CtxSwitch)
	if err != nil {
		return analysis.ResponseTimeResult{}, err
	}
	irq := analysis.IRQ{
		Name:  target.Name,
		CTH:   target.CTH + costs.QueuePush,
		CBH:   target.CBH + costs.QueuePop,
		Model: model,
	}
	var others []analysis.IRQ
	for i, q := range sc.IRQs {
		if i == idx {
			continue
		}
		others = append(others, analysis.IRQ{Name: q.Name, CTH: interfererCTH(q, costs), CBH: q.CBH, Model: traceModel(q.Arrivals)})
	}
	return analysis.ClassicLatencyScheduleUnder(irq, sched, others, extra, horizon)
}

// interfererCTH is the top-handler blocking cost one interfering source
// charges the victim. A monitored source's modified top handler (Fig.
// 4b) additionally runs the monitoring function for every foreign-slot
// arrival — and an arrival that blocks the victim is by definition
// foreign to the interferer — so C_Mon must be folded in or the eq.
// (11) blocking term undercounts by C_Mon per interfering activation.
// (Found by the differential fuzzer: the simulated worst case exceeded
// the bound by exactly C_Mon.)
func interfererCTH(q IRQSpec, costs arm.CostModel) simtime.Duration {
	cth := q.CTH + costs.QueuePush
	if q.DMin > 0 || q.Condition != nil || q.Learn != nil {
		cth += costs.Monitor
	}
	return cth
}

// traceModel returns the tightest δ⁻ of a concrete arrival stream, or
// an effectively silent model for streams too short to derive one.
func traceModel(arrivals []simtime.Time) curves.Model {
	if len(arrivals) >= 2 {
		if d, err := curves.DeltaFromTrace(arrivals, 8); err == nil {
			return d
		}
	}
	return curves.Sporadic{DMin: simtime.Infinity / 2}
}

// interfererModel derives a conservative activation model for an
// interfering source: its declared monitoring condition if any,
// otherwise the tightest δ⁻ of its concrete arrival stream.
func interfererModel(q IRQSpec) curves.Model {
	switch {
	case q.DMin > 0:
		return curves.Sporadic{DMin: q.DMin}
	case q.Condition != nil:
		return q.Condition
	default:
		if len(q.Arrivals) >= 2 {
			if d, err := curves.DeltaFromTrace(q.Arrivals, 8); err == nil {
				return d
			}
		}
		// Single-shot or empty stream: effectively no interference
		// beyond one event per window.
		return curves.Sporadic{DMin: simtime.Infinity / 2}
	}
}

// InterferenceBound returns the eq. (14) bound on the interference the
// scenario's IRQ idx may impose on other partitions within any window dt.
// The source must carry a static monitoring condition.
func InterferenceBound(sc Scenario, idx int, dt simtime.Duration) (simtime.Duration, error) {
	q := sc.IRQs[idx]
	costs := sc.CostModel()
	switch {
	case q.DMin > 0:
		return analysis.InterposedInterference(dt, q.DMin, costs, q.CBH), nil
	case q.Condition != nil:
		return analysis.InterposedInterferenceDelta(dt, q.Condition, costs, q.CBH), nil
	default:
		return 0, fmt.Errorf("core: irq %d (%s) has no static monitoring condition", idx, q.Name)
	}
}
