package core

import (
	"testing"

	"repro/internal/arm"
	"repro/internal/curves"
	"repro/internal/guestos"
	"repro/internal/hv"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/tracerec"
	"repro/internal/workload"
)

func us(v int64) simtime.Duration { return simtime.Micros(v) }

func paperPartitions() []PartitionSpec {
	return []PartitionSpec{
		{Name: "app1", Slot: us(6000)},
		{Name: "app2", Slot: us(6000)},
		{Name: "hk", Slot: us(2000)},
	}
}

func expArrivals(seed uint64, mean simtime.Duration, n int) []simtime.Time {
	return workload.Timestamps(workload.Exponential(rng.New(seed), mean, n))
}

func TestRunBasicScenario(t *testing.T) {
	sc := Scenario{
		Partitions: paperPartitions(),
		IRQs: []IRQSpec{{
			Name: "t0", Partition: 0, CTH: us(6), CBH: us(30),
			Arrivals: expArrivals(1, us(1500), 200),
		}},
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Count == 0 {
		t.Fatal("no records")
	}
	if res.Summary.Count+int(res.Sources[0].Lost) != 200 {
		t.Fatalf("records %d + lost %d != 200", res.Summary.Count, res.Sources[0].Lost)
	}
	if len(res.Partitions) != 3 || len(res.Sources) != 1 {
		t.Fatal("report shape")
	}
	if res.Duration <= 0 {
		t.Fatal("duration")
	}
	if res.Sources[0].Monitor != nil {
		t.Fatal("unmonitored source reported a monitor")
	}
}

func TestBuildRejectsMultipleConditions(t *testing.T) {
	d, _ := curves.NewDelta([]simtime.Duration{us(10)})
	sc := Scenario{
		Partitions: paperPartitions(),
		IRQs: []IRQSpec{{
			Name: "t0", Partition: 0, CTH: us(6), CBH: us(30),
			DMin: us(100), Condition: d,
		}},
	}
	if _, err := Build(sc); err == nil {
		t.Fatal("multiple monitoring conditions accepted")
	}
}

func TestBuildWiresMonitors(t *testing.T) {
	d, _ := curves.NewDelta([]simtime.Duration{us(10), us(50)})
	sc := Scenario{
		Partitions: paperPartitions(),
		Mode:       hv.Monitored,
		IRQs: []IRQSpec{
			{Name: "a", Partition: 0, CTH: us(6), CBH: us(30), DMin: us(100),
				Arrivals: expArrivals(2, us(1000), 50)},
			{Name: "b", Partition: 1, CTH: us(6), CBH: us(30), Condition: d,
				Arrivals: expArrivals(3, us(1000), 50)},
		},
	}
	sys, err := Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Sources()[0].Monitor == nil || sys.Sources()[1].Monitor == nil {
		t.Fatal("monitors not attached")
	}
	if sys.Sources()[1].Monitor.L() != 2 {
		t.Fatal("condition length not preserved")
	}
}

func TestScenarioCostDefaults(t *testing.T) {
	var sc Scenario
	if got := sc.CostModel(); got != arm.DefaultCosts() {
		t.Fatal("nil Costs must default to the paper's values")
	}
	zero := arm.ZeroCosts()
	sc.Costs = &zero
	if got := sc.CostModel(); got != zero {
		t.Fatal("explicit Costs ignored")
	}
}

func TestCycleLengthSum(t *testing.T) {
	sc := Scenario{Partitions: paperPartitions()}
	if sc.CycleLength() != us(14000) {
		t.Fatalf("cycle = %v", sc.CycleLength())
	}
}

func TestAnalyzeBoundsEnvelopeSimulation(t *testing.T) {
	// The measured worst case of a PJD-conforming stream must stay
	// below the analytic classic bound in original mode.
	model := curves.PJD{Period: us(2000), Jitter: us(300), DMin: us(1500)}
	gen := rng.New(5)
	var dist []simtime.Duration
	for i := 0; i < 500; i++ {
		d := model.Period - model.Jitter + simtime.Duration(gen.Int63n(int64(2*model.Jitter)))
		if d < model.DMin {
			d = model.DMin
		}
		dist = append(dist, d)
	}
	sc := Scenario{
		Partitions: paperPartitions(),
		IRQs: []IRQSpec{{
			Name: "t0", Partition: 0, CTH: us(6), CBH: us(30),
			Arrivals: workload.Timestamps(dist),
		}},
	}
	cmp, err := Analyze(sc, 0, model)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Max > cmp.Classic.WCRT {
		t.Fatalf("measured max %v exceeds classic bound %v", res.Summary.Max, cmp.Classic.WCRT)
	}
	if cmp.Interposed.WCRT >= cmp.Classic.WCRT {
		t.Fatal("interposed bound not below classic bound")
	}
}

func TestAnalyzeIndexValidation(t *testing.T) {
	sc := Scenario{Partitions: paperPartitions()}
	if _, err := Analyze(sc, 0, curves.Sporadic{DMin: us(1)}); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestInterferenceBound(t *testing.T) {
	costs := arm.DefaultCosts()
	sc := Scenario{
		Partitions: paperPartitions(),
		IRQs: []IRQSpec{
			{Name: "a", Partition: 0, CTH: us(6), CBH: us(30), DMin: us(1000)},
			{Name: "b", Partition: 0, CTH: us(6), CBH: us(30)},
		},
	}
	got, err := InterferenceBound(sc, 0, us(3000))
	if err != nil {
		t.Fatal(err)
	}
	want := 3 * costs.EffectiveBH(us(30))
	if got != want {
		t.Fatalf("bound = %v, want %v", got, want)
	}
	if _, err := InterferenceBound(sc, 1, us(3000)); err == nil {
		t.Fatal("unmonitored source accepted")
	}
}

func TestGuestTemporalIndependence(t *testing.T) {
	// The paper's safety property end-to-end: guest task worst-case
	// response times in a victim partition may degrade by at most the
	// eq. (14) interference bound when foreign interposed handling is
	// enabled.
	dmin := us(2000)
	cbh := us(40)
	costs := arm.DefaultCosts()
	arrivals := workload.Timestamps(workload.ExponentialClamped(rng.New(8), us(2500), dmin, 1500))

	build := func(mode hv.Mode) (*Result, *guestos.OS) {
		guest := guestos.New("victim")
		if _, err := guest.AddTask(guestos.Task{Name: "ctrl", Period: 20 * simtime.Millisecond, WCET: 2 * simtime.Millisecond}); err != nil {
			t.Fatal(err)
		}
		if _, err := guest.AddTask(guestos.Task{Name: "bg", Period: 0}); err != nil {
			t.Fatal(err)
		}
		sc := Scenario{
			Partitions: []PartitionSpec{
				{Name: "victim", Slot: us(10000), Guest: guest},
				{Name: "io", Slot: us(5000)},
			},
			Mode:   mode,
			Policy: hv.ResumeAcrossSlots,
			IRQs: []IRQSpec{{
				Name: "net", Partition: 1, CTH: us(8), CBH: cbh,
				Arrivals: arrivals, DMin: dmin,
			}},
		}
		res, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		if err := guest.SanityCheck(); err != nil {
			t.Fatal(err)
		}
		return res, guest
	}

	resOrig, gOrig := build(hv.Original)
	resMon, gMon := build(hv.Monitored)
	if resMon.Stats.InterposedGrants == 0 {
		t.Fatal("no interposing happened; test is vacuous")
	}
	// IRQ latency improves.
	if resMon.Summary.Mean >= resOrig.Summary.Mean {
		t.Fatalf("monitored mean %v not below original %v", resMon.Summary.Mean, resOrig.Summary.Mean)
	}
	// Victim guest degradation bounded by eq. (14) over a response
	// window: the WCRT delta cannot exceed the interference bound over
	// the degraded response time window.
	a, b := gOrig.Stats(0), gMon.Stats(0)
	window := simtime.Duration(b.WCRT)
	bound := simtime.Duration(simtime.CeilDiv(window, dmin)) * costs.EffectiveBH(cbh)
	if delta := b.WCRT - a.WCRT; delta > bound {
		t.Fatalf("guest WCRT degraded by %v, eq.14 bound over %v is %v", delta, window, bound)
	}
	// Measured partition interference also within the global bound.
	victim := resMon.Partitions[0]
	globalBound := simtime.Duration(simtime.CeilDiv(resMon.Duration, dmin)) * costs.EffectiveBH(cbh)
	if victim.StolenInterposed > globalBound {
		t.Fatalf("partition interference %v exceeds bound %v", victim.StolenInterposed, globalBound)
	}
}

func TestLearningScenarioEndToEnd(t *testing.T) {
	trace, err := workload.ECUTrace(workload.ECUConfig{Events: 1500, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	learn := len(trace) / 10
	recorded, err := curves.DeltaFromTrace(trace[:learn], 5)
	if err != nil {
		t.Fatal(err)
	}
	bound := recorded.ScaleDistances(4)
	sc := Scenario{
		Partitions: paperPartitions(),
		Mode:       hv.Monitored,
		Policy:     hv.ResumeAcrossSlots,
		IRQs: []IRQSpec{{
			Name: "ecu", Partition: 0, CTH: us(6), CBH: us(30),
			Arrivals: trace,
			Learn:    &LearnSpec{L: 5, Events: learn, Bound: bound},
		}},
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	// During learning, no grants happen: every interposed execution
	// completes after the learning phase ended (a learning-phase IRQ
	// may still be *served* by a later grant via the FIFO queue).
	if res.Stats.DeniedLearning == 0 {
		t.Fatal("no learning-phase denials recorded")
	}
	learnEnd := trace[learn-1]
	for i, rec := range res.Log.Records {
		if rec.Mode == tracerec.Interposed && rec.Done < learnEnd {
			t.Fatalf("record %d interposed before learning finished", i)
		}
	}
	// After learning, interposing happens.
	if res.Stats.InterposedGrants == 0 {
		t.Fatal("no grants after learning")
	}
	mon := res.Sources[0].Monitor
	if mon == nil || mon.Learned == 0 {
		t.Fatal("monitor stats missing learning phase")
	}
}
