package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/curves"
	"repro/internal/hv"
	"repro/internal/simtime"
	"repro/internal/workload"
)

// ExampleRun simulates the paper's three-partition system with one
// monitored timer IRQ under interposed handling and reports the
// handling-mode split. The arrival stream is strictly periodic at dmin,
// so every foreign-slot IRQ conforms.
func ExampleRun() {
	dmin := simtime.Micros(2000)
	arrivals := workload.Timestamps(func() []simtime.Duration {
		out := make([]simtime.Duration, 70)
		for i := range out {
			out[i] = dmin
		}
		return out
	}())
	sc := core.Scenario{
		Partitions: []core.PartitionSpec{
			{Name: "app1", Slot: simtime.Micros(6000)},
			{Name: "app2", Slot: simtime.Micros(6000)},
			{Name: "housekeeping", Slot: simtime.Micros(2000)},
		},
		Mode:   hv.Monitored,
		Policy: hv.ResumeAcrossSlots,
		IRQs: []core.IRQSpec{{
			Name: "timer0", Partition: 0,
			CTH: simtime.Micros(6), CBH: simtime.Micros(30),
			Arrivals: arrivals,
			DMin:     dmin,
		}},
	}
	res, err := core.Run(sc)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("IRQs: %d, delayed: %d, grants: %d\n",
		res.Summary.Count, res.Summary.ByMode[2], res.Stats.InterposedGrants)
	// Output:
	// IRQs: 70, delayed: 0, grants: 50
}

// ExampleAnalyze computes the worst-case latency bounds of the paper's
// analysis (eqs. 11–16) for the same system and shows that the
// interposed bound is independent of the TDMA cycle.
func ExampleAnalyze() {
	sc := core.Scenario{
		Partitions: []core.PartitionSpec{
			{Name: "app1", Slot: simtime.Micros(6000)},
			{Name: "app2", Slot: simtime.Micros(6000)},
			{Name: "housekeeping", Slot: simtime.Micros(2000)},
		},
		IRQs: []core.IRQSpec{{
			Name: "timer0", Partition: 0,
			CTH: simtime.Micros(6), CBH: simtime.Micros(30),
		}},
	}
	model := curves.Sporadic{DMin: simtime.Micros(2000)}
	cmp, err := core.Analyze(sc, 0, model)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("classic %.1fµs, interposed %.1fµs\n",
		cmp.Classic.WCRT.MicrosF(), cmp.Interposed.WCRT.MicrosF())
	// Output:
	// classic 8111.2µs, interposed 141.4µs
}
