package core

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/arm"
	"repro/internal/curves"
	"repro/internal/hv"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/tracerec"
	"repro/internal/workload"
)

// TestMultiSourceInterposedBound validates the compositional extension
// of eq. (16): with two monitored sources subscribed to different
// partitions, the measured latency of each stays below the
// InterposedLatencyMulti bound that accounts for the other source's
// grants. The streams are clamped so neither violates its condition.
func TestMultiSourceInterposedBound(t *testing.T) {
	costs := arm.DefaultCosts()
	dminA := us(2500)
	dminB := us(3500)
	arrA := workload.Timestamps(workload.ExponentialClamped(rng.New(61), us(3000), dminA, 600))
	arrB := workload.Timestamps(workload.ExponentialClamped(rng.New(62), us(4200), dminB, 450))

	sc := Scenario{
		Partitions: paperPartitions(),
		Mode:       hv.Monitored,
		Policy:     hv.ResumeAcrossSlots,
		IRQs: []IRQSpec{
			{Name: "a", Partition: 0, CTH: us(6), CBH: us(30), Arrivals: arrA, DMin: dminA},
			{Name: "b", Partition: 1, CTH: us(4), CBH: us(20), Arrivals: arrB, DMin: dminB},
		},
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.InterposedGrants == 0 {
		t.Fatal("nothing interposed; test is vacuous")
	}

	// Bound for source a under source b's interference. Handler WCETs
	// inflated by queue costs like core.Analyze does.
	irqA := analysis.IRQ{
		Name:  "a",
		CTH:   us(6) + costs.QueuePush,
		CBH:   us(30) + costs.QueuePop,
		Model: curves.Sporadic{DMin: dminA},
	}
	monB := analysis.MonitoredSource{
		Name:   "b",
		CTH:    costs.EffectiveTH(us(4) + costs.QueuePush),
		CBHEff: costs.EffectiveBH(us(20) + costs.QueuePop),
		Arrive: curves.Sporadic{DMin: dminB},
		Grants: curves.Sporadic{DMin: dminB},
	}
	bound, err := analysis.InterposedLatencyMulti(irqA, costs, []analysis.MonitoredSource{monB}, analysis.DefaultHorizon)
	if err != nil {
		t.Fatal(err)
	}

	// Compare against measured *backlog-free interposed* latencies of
	// source a: eq. (16) models conforming IRQs served by their own
	// grant. A direct IRQ cut by its own slot end leaves a remnant in
	// the FIFO queue that later grants must serve first (one-behind
	// backlog); those entangled latencies are governed by the classic
	// TDMA envelope instead. An IRQ is backlog-free when the previous
	// record of the source completed before it arrived.
	var maxInterposed simtime.Duration
	var prevDone simtime.Time
	for _, rec := range res.Log.Records {
		if rec.Source != 0 {
			continue
		}
		clean := rec.Arrival >= prevDone && !rec.Deferred
		prevDone = rec.Done
		if !clean || rec.Mode != tracerec.Interposed {
			continue
		}
		if l := rec.Latency(); l > maxInterposed {
			maxInterposed = l
		}
	}
	if maxInterposed == 0 {
		t.Fatal("source a never interposed")
	}
	// Grants can additionally be delayed by slot switches they resume
	// across (ResumeAcrossSlots re-pays a context switch and the TDMA
	// switch itself) — extend the envelope by one TDMA switch plus the
	// re-entry switch per crossing.
	envelope := bound.WCRT + 2*costs.CtxSwitch
	if maxInterposed > envelope {
		t.Fatalf("measured interposed max %v exceeds multi-source bound %v (+slack %v)",
			maxInterposed, bound.WCRT, envelope)
	}
}
