package core

import (
	"testing"

	"repro/internal/curves"
	"repro/internal/hv"
	"repro/internal/simtime"
	"repro/internal/tracerec"
)

func TestWindowScenarioRuns(t *testing.T) {
	sc := Scenario{
		Partitions: []PartitionSpec{{Name: "a"}, {Name: "b"}},
		Windows: []WindowSpec{
			{Partition: 0, Length: us(3000)},
			{Partition: 1, Length: us(6000)},
			{Partition: 0, Length: us(3000)},
			{Partition: 1, Length: us(2000)},
		},
		IRQs: []IRQSpec{{
			Name: "t0", Partition: 0, CTH: us(6), CBH: us(30),
			Arrivals: expArrivals(41, us(1200), 300),
		}},
	}
	if sc.CycleLength() != us(14000) {
		t.Fatalf("cycle = %v", sc.CycleLength())
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Count == 0 {
		t.Fatal("no records")
	}
	// With two windows per cycle, the worst delayed wait is well below
	// a full cycle minus slot.
	if res.Summary.Max > us(9000) {
		t.Fatalf("max latency %v too large for a two-window schedule", res.Summary.Max)
	}
}

func TestPartitionWindows(t *testing.T) {
	sc := Scenario{
		Partitions: []PartitionSpec{{Name: "a", Slot: us(4000)}, {Name: "b", Slot: us(6000)}},
	}
	ws := sc.PartitionWindows(1)
	if len(ws) != 1 || ws[0].Start != us(4000) || ws[0].End != us(10000) {
		t.Fatalf("windows = %v", ws)
	}
	sc.Windows = []WindowSpec{
		{Partition: 1, Length: us(2000)},
		{Partition: 0, Length: us(3000)},
		{Partition: 1, Length: us(1000)},
	}
	ws = sc.PartitionWindows(1)
	if len(ws) != 2 {
		t.Fatalf("windows = %v", ws)
	}
	if ws[0].Start != 0 || ws[0].End != us(2000) || ws[1].Start != us(5000) || ws[1].End != us(6000) {
		t.Fatalf("windows = %v", ws)
	}
}

func TestAnalyzeScheduleTighterForSplitWindows(t *testing.T) {
	model := curves.PJD{Period: us(2500), Jitter: us(200), DMin: us(2000)}
	mkScenario := func(windows []WindowSpec) Scenario {
		return Scenario{
			Partitions: []PartitionSpec{{Name: "a", Slot: us(6000)}, {Name: "b", Slot: us(8000)}},
			Windows:    windows,
			IRQs: []IRQSpec{{
				Name: "t0", Partition: 0, CTH: us(6), CBH: us(30),
			}},
		}
	}
	single, err := AnalyzeSchedule(mkScenario(nil), 0, model)
	if err != nil {
		t.Fatal(err)
	}
	split, err := AnalyzeSchedule(mkScenario([]WindowSpec{
		{Partition: 0, Length: us(3000)},
		{Partition: 1, Length: us(4000)},
		{Partition: 0, Length: us(3000)},
		{Partition: 1, Length: us(4000)},
	}), 0, model)
	if err != nil {
		t.Fatal(err)
	}
	if split.WCRT >= single.WCRT {
		t.Fatalf("split-window bound %v not below single-slot %v", split.WCRT, single.WCRT)
	}
}

func TestAnalyzeScheduleEnvelopesWindowSimulation(t *testing.T) {
	model := curves.PJD{Period: us(2500), Jitter: us(200), DMin: us(2000)}
	// A concrete conforming stream: strictly periodic at the period.
	var arrivals []simtime.Time
	for i := 1; i <= 400; i++ {
		arrivals = append(arrivals, simtime.Time(us(2500))*simtime.Time(i))
	}
	sc := Scenario{
		Partitions: []PartitionSpec{{Name: "a"}, {Name: "b"}},
		Windows: []WindowSpec{
			{Partition: 0, Length: us(3000)},
			{Partition: 1, Length: us(4000)},
			{Partition: 0, Length: us(3000)},
			{Partition: 1, Length: us(4000)},
		},
		IRQs: []IRQSpec{{
			Name: "t0", Partition: 0, CTH: us(6), CBH: us(30),
			Arrivals: arrivals,
		}},
	}
	bound, err := AnalyzeSchedule(sc, 0, model)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Max > bound.WCRT {
		t.Fatalf("measured max %v exceeds schedule bound %v", res.Summary.Max, bound.WCRT)
	}
}

func TestSharedIRQScenario(t *testing.T) {
	sc := Scenario{
		Partitions: []PartitionSpec{
			{Name: "a", Slot: us(6000)},
			{Name: "b", Slot: us(6000)},
			{Name: "c", Slot: us(2000)},
		},
		Mode: hv.Monitored,
		IRQs: []IRQSpec{{
			Name: "can", Partition: 0, SharedWith: []int{1, 2},
			CTH: us(6), CBH: us(20),
			Arrivals: expArrivals(43, us(2500), 100),
		}},
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	raised := int(res.Sources[0].Raised)
	if res.Summary.Count != 3*raised {
		t.Fatalf("records = %d for %d raised (want 3 deliveries each)", res.Summary.Count, raised)
	}
	if res.Stats.InterposedGrants != 0 {
		t.Fatal("shared IRQ interposed")
	}
	// Every delivery partition appears.
	seen := map[int]bool{}
	for _, r := range res.Log.Records {
		seen[r.Partition] = true
		if r.Mode == tracerec.Interposed {
			t.Fatal("interposed shared record")
		}
	}
	if len(seen) != 3 {
		t.Fatalf("deliveries reached %d partitions, want 3", len(seen))
	}
}
