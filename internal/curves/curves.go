// Package curves implements the event models used throughout the paper:
// upper arrival functions η⁺(Δt) and their dual minimum-distance
// functions δ⁻(q).
//
// η⁺(Δt) bounds the number of events of a stream that can fall into any
// time window of length Δt; δ⁻(q) is the minimum distance between the
// first and the last of any q consecutive events (δ⁻(0) = δ⁻(1) = 0).
// The two are duals:
//
//	η⁺(Δt) = max{ q ≥ 0 : δ⁻(q) ≤ Δt }      (closed windows, conservative)
//	δ⁻(q)  = min{ Δt ≥ 0 : η⁺(Δt) ≥ q }
//
// The busy-window analysis of §4 consumes η⁺; the activation monitor of §5
// and Appendix A operates on finite δ⁻ prefixes.
package curves

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/simtime"
)

// Model describes an event stream by its arrival bounds.
type Model interface {
	// EtaPlus returns the maximum number of events in any closed time
	// window of length dt. EtaPlus(d) for d < 0 is 0.
	EtaPlus(dt simtime.Duration) int64
	// DeltaMin returns the minimum distance between the first and last
	// of q consecutive events. DeltaMin(q) for q <= 1 is 0.
	DeltaMin(q int64) simtime.Duration
}

// EtaFromDelta derives η⁺(Δt) from a δ⁻ function by duality. delta must
// be non-decreasing in q and unbounded (δ⁻(q) → ∞), otherwise the search
// cannot terminate; limit caps the returned value as a safety net for
// degenerate inputs.
func EtaFromDelta(delta func(q int64) simtime.Duration, dt simtime.Duration, limit int64) int64 {
	if dt < 0 {
		return 0
	}
	// Exponential search for an upper bracket, then binary search for
	// the largest q with δ⁻(q) ≤ dt.
	lo, hi := int64(1), int64(2)
	for delta(hi) <= dt {
		lo = hi
		hi *= 2
		if hi >= limit {
			hi = limit
			break
		}
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if delta(mid) <= dt {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// DeltaFromEta derives δ⁻(q) from an η⁺ function by duality: the smallest
// window that can hold q events. eta must be non-decreasing; horizon caps
// the search.
func DeltaFromEta(eta func(dt simtime.Duration) int64, q int64, horizon simtime.Duration) simtime.Duration {
	if q <= 1 {
		return 0
	}
	lo, hi := simtime.Duration(0), simtime.Duration(1)
	for eta(hi) < q {
		lo = hi
		hi *= 2
		if hi >= horizon {
			hi = horizon
			break
		}
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if eta(mid) >= q {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Periodic is a strictly periodic event stream.
type Periodic struct {
	Period simtime.Duration
}

// EtaPlus implements Model.
func (p Periodic) EtaPlus(dt simtime.Duration) int64 {
	if dt < 0 {
		return 0
	}
	if p.Period <= 0 {
		panic("curves: Periodic with non-positive period")
	}
	return int64(dt/p.Period) + 1
}

// DeltaMin implements Model.
func (p Periodic) DeltaMin(q int64) simtime.Duration {
	if q <= 1 {
		return 0
	}
	return simtime.Duration(q-1) * p.Period
}

// PJD is the standard event model of compositional performance analysis
// (Richter 2004): a periodic stream with release jitter and a minimum
// inter-event distance.
type PJD struct {
	Period simtime.Duration
	Jitter simtime.Duration
	DMin   simtime.Duration // minimum distance between consecutive events
}

// Validate reports whether the model parameters are consistent.
func (m PJD) Validate() error {
	if m.Period <= 0 {
		return errors.New("curves: PJD period must be positive")
	}
	if m.Jitter < 0 {
		return errors.New("curves: PJD jitter must be non-negative")
	}
	if m.DMin < 0 {
		return errors.New("curves: PJD dmin must be non-negative")
	}
	if m.DMin > m.Period {
		return errors.New("curves: PJD dmin must not exceed period")
	}
	return nil
}

// DeltaMin implements Model:
// δ⁻(q) = max((q−1)·dmin, (q−1)·P − J).
func (m PJD) DeltaMin(q int64) simtime.Duration {
	if q <= 1 {
		return 0
	}
	byDMin := simtime.Duration(q-1) * m.DMin
	byPeriod := simtime.Duration(q-1)*m.Period - m.Jitter
	return simtime.Max(byDMin, byPeriod)
}

// EtaPlus implements Model, via duality with DeltaMin. A closed form
// exists but the dual keeps η⁺ and δ⁻ consistent by construction.
func (m PJD) EtaPlus(dt simtime.Duration) int64 {
	if dt < 0 {
		return 0
	}
	return EtaFromDelta(m.DeltaMin, dt, 1<<40)
}

// Sporadic is an event stream constrained only by a minimum distance
// between consecutive events — the l = 1 monitoring condition of §5.
type Sporadic struct {
	DMin simtime.Duration
}

// EtaPlus implements Model: ⌊Δt/dmin⌋ + 1 events fit in a closed window.
func (s Sporadic) EtaPlus(dt simtime.Duration) int64 {
	if dt < 0 {
		return 0
	}
	if s.DMin <= 0 {
		panic("curves: Sporadic with non-positive dmin")
	}
	return int64(dt/s.DMin) + 1
}

// DeltaMin implements Model.
func (s Sporadic) DeltaMin(q int64) simtime.Duration {
	if q <= 1 {
		return 0
	}
	return simtime.Duration(q-1) * s.DMin
}

// Delta is an explicit finite δ⁻ function, as learned and enforced by the
// activation monitor (Appendix A). Dist[i] holds δ⁻(i+2): the minimum
// distance between i+2 consecutive events, i.e. Dist[0] is the minimum
// distance between any two consecutive events. Beyond the recorded prefix
// the function is extended conservatively (see Extend).
type Delta struct {
	Dist []simtime.Duration
}

// NewDelta returns a Delta over a copy of dist. It returns an error when
// dist is empty or not non-decreasing (a δ⁻ function is non-decreasing in
// q by definition).
func NewDelta(dist []simtime.Duration) (*Delta, error) {
	if len(dist) == 0 {
		return nil, errors.New("curves: empty δ⁻ function")
	}
	for i, d := range dist {
		if d < 0 {
			return nil, fmt.Errorf("curves: δ⁻[%d] = %v is negative", i, d)
		}
		if i > 0 && d < dist[i-1] {
			return nil, fmt.Errorf("curves: δ⁻ not non-decreasing at index %d (%v < %v)", i, d, dist[i-1])
		}
	}
	return &Delta{Dist: append([]simtime.Duration(nil), dist...)}, nil
}

// Len returns l, the number of recorded entries.
func (d *Delta) Len() int { return len(d.Dist) }

// DeltaMin implements Model. For q beyond the recorded prefix, δ⁻ is
// extended by the superadditive sliding rule
//
//	δ⁻(q) = δ⁻(l+1) + δ⁻(q−l)   for q > l+1,
//
// which treats the recorded window as repeatable — the standard
// conservative extension for monitored δ⁻ prefixes.
func (d *Delta) DeltaMin(q int64) simtime.Duration {
	if q <= 1 {
		return 0
	}
	l := int64(len(d.Dist))
	if q-2 < l {
		return d.Dist[q-2]
	}
	last := d.Dist[l-1] // δ⁻(l+1)
	if last <= 0 {
		// A degenerate all-zero prefix admits unbounded bursts; the
		// extension stays zero.
		return 0
	}
	full := (q - 1 - l) / l
	rem := (q - 1 - l) % l // remaining events beyond the full windows
	v := simtime.Duration(full+1) * last
	if rem > 0 {
		v += d.Dist[rem-1]
	}
	return v
}

// EtaPlus implements Model via duality.
func (d *Delta) EtaPlus(dt simtime.Duration) int64 {
	if dt < 0 {
		return 0
	}
	if d.Dist[len(d.Dist)-1] <= 0 {
		panic("curves: η⁺ of a degenerate all-zero δ⁻ is unbounded")
	}
	return EtaFromDelta(d.DeltaMin, dt, 1<<40)
}

// ScaleDistances returns a copy of d with every distance multiplied by
// factor. Multiplying distances by k divides the admissible long-term
// load by k; Appendix A's "allow 25 % of the recorded load" corresponds
// to factor 4.
func (d *Delta) ScaleDistances(factor float64) *Delta {
	if factor <= 0 {
		panic("curves: non-positive scale factor")
	}
	out := make([]simtime.Duration, len(d.Dist))
	for i, v := range d.Dist {
		out[i] = simtime.FromMicrosF(v.MicrosF() * factor)
	}
	return &Delta{Dist: out}
}

// DeltaFromTrace computes the tightest l-entry δ⁻ prefix of an event
// trace given as non-decreasing timestamps: Dist[i] is the minimum
// observed distance spanned by i+2 consecutive events. This is the batch
// equivalent of Appendix A's Algorithm 1.
func DeltaFromTrace(ts []simtime.Time, l int) (*Delta, error) {
	if l <= 0 {
		return nil, errors.New("curves: l must be positive")
	}
	if len(ts) < 2 {
		return nil, errors.New("curves: trace needs at least two events")
	}
	if !sort.SliceIsSorted(ts, func(i, j int) bool { return ts[i] < ts[j] }) {
		return nil, errors.New("curves: trace timestamps must be non-decreasing")
	}
	dist := make([]simtime.Duration, l)
	for i := range dist {
		dist[i] = simtime.Infinity
	}
	for i := range ts {
		for k := 1; k <= l && i+k < len(ts); k++ {
			d := ts[i+k].Sub(ts[i])
			if d < dist[k-1] {
				dist[k-1] = d
			}
		}
	}
	// Entries never observed (trace shorter than l+1 events) fall back
	// to the superadditive extension of the observed prefix.
	for i := range dist {
		if dist[i] == simtime.Infinity {
			dist[i] = dist[i-1]
		}
	}
	// Enforce monotonicity, which can be violated only by the fallback
	// above or a pathological trace with equal timestamps.
	for i := 1; i < len(dist); i++ {
		if dist[i] < dist[i-1] {
			dist[i] = dist[i-1]
		}
	}
	return &Delta{Dist: dist}, nil
}

// FitPJD derives a conservative PJD model from a concrete event trace:
// the period is the mean interarrival distance, dmin the minimum
// observed distance, and the jitter the largest deviation of any
// timestamp from the best-fitting periodic grid. The returned model
// admits the trace: δ⁻_model(q) ≤ every observed q-event span.
func FitPJD(ts []simtime.Time, maxQ int64) (PJD, error) {
	if len(ts) < 2 {
		return PJD{}, errors.New("curves: FitPJD needs at least two events")
	}
	n := int64(len(ts))
	span := ts[n-1].Sub(ts[0])
	if span <= 0 {
		return PJD{}, errors.New("curves: FitPJD needs a positive trace span")
	}
	period := simtime.Duration(int64(span) / (n - 1))
	if period <= 0 {
		period = 1
	}
	dmin := simtime.Infinity
	for i := 1; i < len(ts); i++ {
		if d := ts[i].Sub(ts[i-1]); d < dmin {
			dmin = d
		}
	}
	if dmin > period {
		dmin = period
	}
	if dmin < 1 {
		dmin = 1
	}
	// Jitter: the amount the periodic lower bound must be relaxed so
	// that δ⁻(q) = (q−1)·P − J admits every observed q-span.
	var jitter simtime.Duration
	for q := int64(2); q <= maxQ; q++ {
		for i := int64(0); i+q-1 < n; i++ {
			observed := ts[i+q-1].Sub(ts[i])
			lower := simtime.Duration(q-1) * period
			if need := lower - observed; need > jitter {
				jitter = need
			}
		}
	}
	m := PJD{Period: period, Jitter: jitter, DMin: dmin}
	if err := m.Validate(); err != nil {
		return PJD{}, err
	}
	return m, nil
}

// Admits reports whether the model admits the concrete trace: every
// observed q-event span (q up to maxQ) is at least δ⁻(q).
func Admits(m Model, ts []simtime.Time, maxQ int64) bool {
	n := int64(len(ts))
	for q := int64(2); q <= maxQ && q <= n; q++ {
		for i := int64(0); i+q-1 < n; i++ {
			if ts[i+q-1].Sub(ts[i]) < m.DeltaMin(q) {
				return false
			}
		}
	}
	return true
}

// Utilization returns the long-term event rate admitted by a model in
// events per second, estimated from δ⁻ at a large q. For a PJD model this
// converges to 1/Period; for a monitored δ⁻ prefix it is the admitted
// load's rate.
func Utilization(m Model, q int64) float64 {
	d := m.DeltaMin(q)
	if d <= 0 {
		return 0
	}
	return float64(q-1) / (float64(d) / float64(simtime.ClockHz))
}

// CheckModel verifies the defining properties of an event model over a
// range of q and Δt values: δ⁻ non-decreasing with δ⁻(q≤1) = 0, η⁺
// non-decreasing, and mutual consistency η⁺(δ⁻(q)) ≥ q.
func CheckModel(m Model, maxQ int64, maxDt simtime.Duration) error {
	if m.DeltaMin(0) != 0 || m.DeltaMin(1) != 0 {
		return errors.New("curves: δ⁻(0) and δ⁻(1) must be 0")
	}
	prev := simtime.Duration(0)
	for q := int64(2); q <= maxQ; q++ {
		d := m.DeltaMin(q)
		if d < prev {
			return fmt.Errorf("curves: δ⁻ decreasing at q=%d (%v < %v)", q, d, prev)
		}
		if m.EtaPlus(d) < q {
			return fmt.Errorf("curves: η⁺(δ⁻(%d)) = %d < %d", q, m.EtaPlus(d), q)
		}
		prev = d
	}
	prevN := int64(-1)
	step := maxDt / 64
	if step <= 0 {
		step = 1
	}
	for dt := simtime.Duration(0); dt <= maxDt; dt += step {
		n := m.EtaPlus(dt)
		if n < prevN {
			return fmt.Errorf("curves: η⁺ decreasing at Δt=%v", dt)
		}
		prevN = n
	}
	return nil
}
