package curves

import (
	"testing"
	"testing/quick"

	"repro/internal/simtime"
)

func us(v int64) simtime.Duration { return simtime.Micros(v) }

func TestPeriodicClosedForms(t *testing.T) {
	p := Periodic{Period: us(100)}
	cases := []struct {
		dt   simtime.Duration
		want int64
	}{
		{0, 1}, {us(1), 1}, {us(99), 1}, {us(100), 2}, {us(250), 3}, {us(1000), 11},
	}
	for _, c := range cases {
		if got := p.EtaPlus(c.dt); got != c.want {
			t.Errorf("Periodic.EtaPlus(%v) = %d, want %d", c.dt, got, c.want)
		}
	}
	if p.EtaPlus(-1) != 0 {
		t.Error("EtaPlus of negative window must be 0")
	}
	if p.DeltaMin(0) != 0 || p.DeltaMin(1) != 0 {
		t.Error("δ⁻(0), δ⁻(1) must be 0")
	}
	if got := p.DeltaMin(5); got != us(400) {
		t.Errorf("Periodic.DeltaMin(5) = %v, want 400µs", got)
	}
}

func TestSporadicClosedForms(t *testing.T) {
	s := Sporadic{DMin: us(50)}
	if got := s.EtaPlus(us(100)); got != 3 {
		t.Errorf("Sporadic.EtaPlus(100µs) = %d, want 3", got)
	}
	if got := s.DeltaMin(3); got != us(100) {
		t.Errorf("Sporadic.DeltaMin(3) = %v, want 100µs", got)
	}
}

func TestPJDDelta(t *testing.T) {
	m := PJD{Period: us(100), Jitter: us(30), DMin: us(20)}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// δ⁻(2) = max(dmin, P−J) = max(20, 70) = 70.
	if got := m.DeltaMin(2); got != us(70) {
		t.Errorf("δ⁻(2) = %v, want 70µs", got)
	}
	// δ⁻(3) = max(2·20, 2·100−30) = 170.
	if got := m.DeltaMin(3); got != us(170) {
		t.Errorf("δ⁻(3) = %v, want 170µs", got)
	}
	// Large jitter: bursts limited by dmin.
	b := PJD{Period: us(100), Jitter: us(500), DMin: us(10)}
	if got := b.DeltaMin(2); got != us(10) {
		t.Errorf("bursty δ⁻(2) = %v, want dmin 10µs", got)
	}
}

func TestPJDValidate(t *testing.T) {
	bad := []PJD{
		{Period: 0},
		{Period: us(10), Jitter: -1},
		{Period: us(10), DMin: -1},
		{Period: us(10), DMin: us(20)},
	}
	for i, m := range bad {
		if m.Validate() == nil {
			t.Errorf("case %d: Validate accepted %+v", i, m)
		}
	}
}

func TestDualityConsistency(t *testing.T) {
	models := []Model{
		Periodic{Period: us(100)},
		Sporadic{DMin: us(33)},
		PJD{Period: us(100), Jitter: us(40), DMin: us(25)},
		PJD{Period: us(1344), Jitter: us(200), DMin: us(1344)},
	}
	for _, m := range models {
		if err := CheckModel(m, 64, us(5000)); err != nil {
			t.Errorf("%T: %v", m, err)
		}
	}
}

func TestEtaFromDeltaMatchesClosedForm(t *testing.T) {
	// For the sporadic model the duality must agree with the closed form.
	s := Sporadic{DMin: us(50)}
	for dt := simtime.Duration(0); dt <= us(1000); dt += us(7) {
		viaDual := EtaFromDelta(s.DeltaMin, dt, 1<<30)
		if got := s.EtaPlus(dt); got != viaDual {
			t.Fatalf("EtaPlus(%v) = %d, dual = %d", dt, got, viaDual)
		}
	}
}

func TestDeltaFromEtaInverse(t *testing.T) {
	m := PJD{Period: us(100), Jitter: us(40), DMin: us(25)}
	for q := int64(2); q <= 20; q++ {
		d := DeltaFromEta(m.EtaPlus, q, simtime.Second)
		// The smallest window holding q events: η⁺(d) ≥ q and
		// η⁺(d−1) < q.
		if m.EtaPlus(d) < q {
			t.Fatalf("η⁺(δ(%d)) = %d < %d", q, m.EtaPlus(d), q)
		}
		if d > 0 && m.EtaPlus(d-1) >= q {
			t.Fatalf("δ(%d) = %v not minimal", q, d)
		}
	}
	if DeltaFromEta(m.EtaPlus, 1, simtime.Second) != 0 {
		t.Error("δ(1) must be 0")
	}
}

func TestNewDeltaValidation(t *testing.T) {
	if _, err := NewDelta(nil); err == nil {
		t.Error("empty δ⁻ accepted")
	}
	if _, err := NewDelta([]simtime.Duration{us(10), us(5)}); err == nil {
		t.Error("decreasing δ⁻ accepted")
	}
	if _, err := NewDelta([]simtime.Duration{-1}); err == nil {
		t.Error("negative δ⁻ accepted")
	}
	d, err := NewDelta([]simtime.Duration{us(10), us(30), us(60)})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 {
		t.Errorf("Len = %d", d.Len())
	}
}

func TestDeltaExtension(t *testing.T) {
	// l = 2: δ⁻(2) = 10, δ⁻(3) = 30. Extension: δ⁻(4) = wrap.
	d, err := NewDelta([]simtime.Duration{us(10), us(30)})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.DeltaMin(2); got != us(10) {
		t.Errorf("δ⁻(2) = %v", got)
	}
	if got := d.DeltaMin(3); got != us(30) {
		t.Errorf("δ⁻(3) = %v", got)
	}
	// Sliding extension: δ⁻(q) = δ⁻(3) + δ⁻(q−2) for q > 3.
	if got, want := d.DeltaMin(4), us(30)+us(10); got != want {
		t.Errorf("δ⁻(4) = %v, want %v", got, want)
	}
	if got, want := d.DeltaMin(5), us(30)+us(30); got != want {
		t.Errorf("δ⁻(5) = %v, want %v", got, want)
	}
	if got, want := d.DeltaMin(6), 2*us(30)+us(10); got != want {
		t.Errorf("δ⁻(6) = %v, want %v", got, want)
	}
	// The extension must remain a valid event model.
	if err := CheckModel(d, 64, us(500)); err != nil {
		t.Error(err)
	}
}

func TestDeltaExtensionSuperadditive(t *testing.T) {
	d, err := NewDelta([]simtime.Duration{us(5), us(25), us(70)})
	if err != nil {
		t.Fatal(err)
	}
	// δ⁻(n+q−1) ≥ δ⁻(n) + δ⁻(q) would be full superadditivity; our
	// sliding extension guarantees at least monotone growth with
	// bounded long-run rate = l / δ⁻(l+1).
	prev := simtime.Duration(0)
	for q := int64(2); q < 100; q++ {
		v := d.DeltaMin(q)
		if v < prev {
			t.Fatalf("δ⁻ decreasing at q=%d", q)
		}
		prev = v
	}
	// Long-run admitted rate ≈ l/δ⁻(l+1) = 3 events per 70 µs.
	rate := Utilization(d, 1000)
	want := 3.0 / (70e-6)
	if rate < want*0.95 || rate > want*1.05 {
		t.Errorf("long-run rate = %g, want ≈ %g", rate, want)
	}
}

func TestDeltaAllZeroDegenerate(t *testing.T) {
	d, err := NewDelta([]simtime.Duration{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if d.DeltaMin(100) != 0 {
		t.Error("all-zero δ⁻ must extend to zero")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("EtaPlus of degenerate δ⁻ did not panic")
		}
	}()
	d.EtaPlus(us(10))
}

func TestScaleDistances(t *testing.T) {
	d, _ := NewDelta([]simtime.Duration{us(10), us(30)})
	s := d.ScaleDistances(4)
	if s.Dist[0] != us(40) || s.Dist[1] != us(120) {
		t.Errorf("scaled = %v", s.Dist)
	}
	// Scaling distances by 4 divides the admitted rate by 4.
	r0 := Utilization(d, 1000)
	r1 := Utilization(s, 1000)
	if r1 < r0/4*0.95 || r1 > r0/4*1.05 {
		t.Errorf("rate %g vs %g: not a 4× reduction", r0, r1)
	}
}

func TestScaleDistancesPanics(t *testing.T) {
	d, _ := NewDelta([]simtime.Duration{us(10)})
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive factor did not panic")
		}
	}()
	d.ScaleDistances(0)
}

func TestDeltaFromTrace(t *testing.T) {
	ts := []simtime.Time{0, 100, 150, 400, 420}
	d, err := DeltaFromTrace(ts, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Pairwise gaps: 100, 50, 250, 20 → δ⁻(2) = 20.
	if d.Dist[0] != 20 {
		t.Errorf("δ⁻(2) = %v, want 20", d.Dist[0])
	}
	// Spans of 3: 150, 300, 270 → δ⁻(3) = 150.
	if d.Dist[1] != 150 {
		t.Errorf("δ⁻(3) = %v, want 150", d.Dist[1])
	}
	// Spans of 4: 400, 320 → δ⁻(4) = 320.
	if d.Dist[2] != 320 {
		t.Errorf("δ⁻(4) = %v, want 320", d.Dist[2])
	}
}

func TestDeltaFromTraceErrors(t *testing.T) {
	if _, err := DeltaFromTrace([]simtime.Time{0}, 2); err == nil {
		t.Error("short trace accepted")
	}
	if _, err := DeltaFromTrace([]simtime.Time{0, 10}, 0); err == nil {
		t.Error("l=0 accepted")
	}
	if _, err := DeltaFromTrace([]simtime.Time{10, 0}, 2); err == nil {
		t.Error("unsorted trace accepted")
	}
}

func TestDeltaFromTraceLongerThanTrace(t *testing.T) {
	// l exceeding the trace length: unobserved entries fall back to the
	// last observed one and stay monotone.
	d, err := DeltaFromTrace([]simtime.Time{0, 10, 30}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckModel(d, 32, 200); err != nil {
		t.Error(err)
	}
}

func TestDeltaFromTraceBruteForceProperty(t *testing.T) {
	// Against a brute-force reference on random traces.
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		ts := make([]simtime.Time, len(raw))
		var cur simtime.Time
		for i, g := range raw {
			cur += simtime.Time(g%1000) + 1
			ts[i] = cur
		}
		const l = 4
		d, err := DeltaFromTrace(ts, l)
		if err != nil {
			return false
		}
		for k := 1; k <= l; k++ {
			want := simtime.Infinity
			for i := 0; i+k < len(ts); i++ {
				if span := ts[i+k].Sub(ts[i]); span < want {
					want = span
				}
			}
			if want == simtime.Infinity {
				continue // unobserved; fallback applies
			}
			// The recorded entry may only be tightened upward by
			// the monotonicity pass, never below the true minimum.
			if d.Dist[k-1] < want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUtilizationPeriodic(t *testing.T) {
	p := Periodic{Period: simtime.Millisecond}
	// 1 event per ms = 1000 events/s.
	u := Utilization(p, 10001)
	if u < 995 || u > 1005 {
		t.Errorf("Utilization = %g, want ≈ 1000", u)
	}
	if Utilization(p, 1) != 0 {
		t.Error("Utilization at q=1 must be 0 (δ⁻=0)")
	}
}

func TestEtaFromDeltaLimit(t *testing.T) {
	// A degenerate zero δ⁻ must clamp at the limit, not hang.
	zero := func(int64) simtime.Duration { return 0 }
	if got := EtaFromDelta(zero, us(10), 1024); got != 1024 {
		t.Errorf("EtaFromDelta clamped to %d, want 1024", got)
	}
}
