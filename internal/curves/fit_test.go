package curves

import (
	"testing"
	"testing/quick"

	"repro/internal/simtime"
)

func TestFitPJDPeriodicTrace(t *testing.T) {
	var ts []simtime.Time
	for i := 0; i < 50; i++ {
		ts = append(ts, simtime.Time(us(int64(i)*100)))
	}
	m, err := FitPJD(ts, 8)
	if err != nil {
		t.Fatal(err)
	}
	if m.Period != us(100) {
		t.Fatalf("period = %v, want 100µs", m.Period)
	}
	if m.Jitter != 0 {
		t.Fatalf("jitter = %v, want 0", m.Jitter)
	}
	if m.DMin != us(100) {
		t.Fatalf("dmin = %v, want 100µs", m.DMin)
	}
	if !Admits(m, ts, 8) {
		t.Fatal("fitted model does not admit its own trace")
	}
}

func TestFitPJDJitteredTrace(t *testing.T) {
	base := []int64{0, 110, 190, 300, 410, 490, 600}
	var ts []simtime.Time
	for _, b := range base {
		ts = append(ts, simtime.Time(us(b)))
	}
	m, err := FitPJD(ts, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m.Jitter == 0 {
		t.Fatal("jittered trace fitted with zero jitter")
	}
	if !Admits(m, ts, 5) {
		t.Fatal("fitted model does not admit its own trace")
	}
}

func TestFitPJDErrors(t *testing.T) {
	if _, err := FitPJD([]simtime.Time{0}, 4); err == nil {
		t.Error("single event accepted")
	}
	if _, err := FitPJD([]simtime.Time{5, 5}, 4); err == nil {
		t.Error("zero-span trace accepted")
	}
}

func TestFitPJDAdmitsProperty(t *testing.T) {
	// For any strictly increasing trace, the fitted model admits it.
	f := func(gaps []uint16) bool {
		if len(gaps) < 2 {
			return true
		}
		if len(gaps) > 60 {
			gaps = gaps[:60]
		}
		var ts []simtime.Time
		var cur simtime.Time
		for _, g := range gaps {
			cur += simtime.Time(us(int64(g%2000) + 1))
			ts = append(ts, cur)
		}
		m, err := FitPJD(ts, 6)
		if err != nil {
			return false
		}
		return Admits(m, ts, 6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestAdmitsRejects(t *testing.T) {
	// A model with dmin larger than an observed gap must be rejected.
	ts := []simtime.Time{0, simtime.Time(us(50)), simtime.Time(us(500))}
	m := Sporadic{DMin: us(100)}
	if Admits(m, ts, 4) {
		t.Fatal("model admits a trace violating dmin")
	}
}
