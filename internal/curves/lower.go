package curves

import (
	"errors"

	"repro/internal/simtime"
)

// LowerModel describes the lower bounds of an event stream: η⁻(Δt), the
// minimum number of events in any closed window of length Δt, and its
// dual δ⁺(q), the maximum distance spanned by q consecutive events.
// Lower bounds complement the η⁺/δ⁻ upper bounds when reasoning about
// guaranteed progress (e.g. the minimum number of monitoring grants a
// stream is guaranteed to receive).
type LowerModel interface {
	// EtaMinus returns the minimum number of events in any closed
	// window of length dt.
	EtaMinus(dt simtime.Duration) int64
	// DeltaMax returns the maximum distance between the first and last
	// of q consecutive events; q <= 1 yields 0.
	DeltaMax(q int64) simtime.Duration
}

// PJDLower is the lower-bound counterpart of the PJD model: a periodic
// stream with release jitter guarantees
//
//	δ⁺(q) = (q−1)·P + J
//	η⁻(Δt) = max(0, ⌊(Δt−J)/P⌋)
type PJDLower struct {
	Period simtime.Duration
	Jitter simtime.Duration
}

// Validate reports whether the parameters are consistent.
func (m PJDLower) Validate() error {
	if m.Period <= 0 {
		return errors.New("curves: PJDLower period must be positive")
	}
	if m.Jitter < 0 {
		return errors.New("curves: PJDLower jitter must be non-negative")
	}
	return nil
}

// DeltaMax implements LowerModel.
func (m PJDLower) DeltaMax(q int64) simtime.Duration {
	if q <= 1 {
		return 0
	}
	return simtime.Duration(q-1)*m.Period + m.Jitter
}

// EtaMinus implements LowerModel, by duality with DeltaMax: the largest
// q with δ⁺(q) ≤ Δt is guaranteed within any closed window of length Δt
// minus one boundary event — conservatively, max{q ≥ 0 : δ⁺(q+1) ≤ Δt}.
func (m PJDLower) EtaMinus(dt simtime.Duration) int64 {
	if dt < m.Jitter {
		return 0
	}
	return int64((dt - m.Jitter) / m.Period)
}

// DeltaMaxFromTrace computes the loosest observed l-entry δ⁺ prefix of a
// trace: DeltaMax[i] is the maximum observed distance spanned by i+2
// consecutive events — the batch counterpart of DeltaFromTrace for lower
// bounds.
func DeltaMaxFromTrace(ts []simtime.Time, l int) ([]simtime.Duration, error) {
	if l <= 0 {
		return nil, errors.New("curves: l must be positive")
	}
	if len(ts) < 2 {
		return nil, errors.New("curves: trace needs at least two events")
	}
	out := make([]simtime.Duration, l)
	for i := range ts {
		for k := 1; k <= l && i+k < len(ts); k++ {
			if d := ts[i+k].Sub(ts[i]); d > out[k-1] {
				out[k-1] = d
			}
		}
	}
	// Unobserved entries extend the last observed one (conservative:
	// larger δ⁺ is weaker).
	for i := 1; i < len(out); i++ {
		if out[i] < out[i-1] {
			out[i] = out[i-1]
		}
	}
	return out, nil
}

// GuaranteedGrants lower-bounds the number of interposed grants a
// conforming stream receives in any window of length dt: the stream
// delivers at least η⁻(Δt) events, and the monitor admits every one of
// them when the stream's δ⁻ dominates the monitoring condition. The
// caller must have established conformance (e.g. via Admits).
func GuaranteedGrants(lower LowerModel, dt simtime.Duration) int64 {
	return lower.EtaMinus(dt)
}
