package curves

import (
	"testing"

	"repro/internal/simtime"
)

func TestPJDLowerClosedForms(t *testing.T) {
	m := PJDLower{Period: us(100), Jitter: us(30)}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := m.DeltaMax(1); got != 0 {
		t.Errorf("δ⁺(1) = %v", got)
	}
	if got := m.DeltaMax(3); got != us(230) {
		t.Errorf("δ⁺(3) = %v, want 230µs", got)
	}
	// η⁻: ⌊(Δt−J)/P⌋.
	cases := []struct {
		dt   simtime.Duration
		want int64
	}{
		{us(10), 0}, {us(30), 0}, {us(129), 0}, {us(130), 1}, {us(530), 5},
	}
	for _, c := range cases {
		if got := m.EtaMinus(c.dt); got != c.want {
			t.Errorf("η⁻(%v) = %d, want %d", c.dt, got, c.want)
		}
	}
}

func TestPJDLowerValidate(t *testing.T) {
	if (PJDLower{Period: 0}).Validate() == nil {
		t.Error("zero period accepted")
	}
	if (PJDLower{Period: us(10), Jitter: -1}).Validate() == nil {
		t.Error("negative jitter accepted")
	}
}

func TestLowerUpperConsistency(t *testing.T) {
	// For the same (P, J) stream, δ⁻(q) ≤ δ⁺(q) and η⁻(Δt) ≤ η⁺(Δt).
	up := PJD{Period: us(100), Jitter: us(30), DMin: us(10)}
	lo := PJDLower{Period: us(100), Jitter: us(30)}
	for q := int64(2); q <= 32; q++ {
		if up.DeltaMin(q) > lo.DeltaMax(q) {
			t.Fatalf("δ⁻(%d) = %v > δ⁺(%d) = %v", q, up.DeltaMin(q), q, lo.DeltaMax(q))
		}
	}
	for dt := us(0); dt <= us(3000); dt += us(77) {
		if lo.EtaMinus(dt) > up.EtaPlus(dt) {
			t.Fatalf("η⁻(%v) > η⁺(%v)", dt, dt)
		}
	}
}

func TestDeltaMaxFromTrace(t *testing.T) {
	ts := []simtime.Time{0, 100, 150, 400, 420}
	dmax, err := DeltaMaxFromTrace(ts, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Pairwise gaps: 100, 50, 250, 20 → δ⁺(2) = 250.
	if dmax[0] != 250 {
		t.Errorf("δ⁺(2) = %v, want 250", dmax[0])
	}
	// Spans of 3: 150, 300, 270 → δ⁺(3) = 300.
	if dmax[1] != 300 {
		t.Errorf("δ⁺(3) = %v, want 300", dmax[1])
	}
	// Spans of 4: 400, 320 → δ⁺(4) = 400.
	if dmax[2] != 400 {
		t.Errorf("δ⁺(4) = %v, want 400", dmax[2])
	}
	// Trace bounds are mutually consistent with the recorded δ⁻.
	dmin, err := DeltaFromTrace(ts, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dmax {
		if dmin.Dist[i] > dmax[i] {
			t.Errorf("δ⁻[%d] %v > δ⁺[%d] %v", i, dmin.Dist[i], i, dmax[i])
		}
	}
}

func TestDeltaMaxFromTraceErrors(t *testing.T) {
	if _, err := DeltaMaxFromTrace([]simtime.Time{0}, 2); err == nil {
		t.Error("short trace accepted")
	}
	if _, err := DeltaMaxFromTrace([]simtime.Time{0, 1}, 0); err == nil {
		t.Error("l=0 accepted")
	}
}

func TestGuaranteedGrants(t *testing.T) {
	lo := PJDLower{Period: us(1000), Jitter: us(200)}
	// In any 10.2 ms window a (1000, 200) stream delivers ≥ 10 events.
	if got := GuaranteedGrants(lo, us(10200)); got != 10 {
		t.Fatalf("guaranteed grants = %d, want 10", got)
	}
}
