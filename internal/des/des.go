// Package des implements a minimal discrete-event simulation kernel.
//
// The hypervisor reproduction (internal/hv) is driven entirely by this
// kernel: hardware IRQ arrivals, TDMA slot boundaries, bottom-handler
// budget expiry and execution completions are all events on one timeline.
// Events at the same timestamp fire in scheduling order (FIFO), which
// makes every simulation fully deterministic.
//
// The kernel is on the hot path of every experiment (a figure run fires
// millions of events), so it avoids the generic container/heap in favour
// of a concrete 4-ary min-heap with the ordering key stored inline,
// recycles fired and canceled Event structs through a per-simulator
// freelist, and cancels lazily (mark-and-skip at pop) instead of
// restructuring the heap. Consequence of the freelist: an *Event handle
// is only valid until the event fires or is skipped after cancellation —
// holders must not retain it past that point (see Cancel).
package des

import (
	"fmt"

	"repro/internal/simtime"
)

// Event is a scheduled callback. Its fields are managed by the Simulator;
// holders may only Cancel it or query its Time. Once the event has fired
// (or a canceled event has been skipped at pop), the Simulator may
// recycle the struct for a future At/After call, so handles must not be
// retained past the callback's execution.
type Event struct {
	when     simtime.Time
	seq      uint64
	queued   bool
	canceled bool
	fn       func()
	label    string
}

// Time returns the timestamp the event is (or was) scheduled for.
func (e *Event) Time() simtime.Time { return e.when }

// Canceled reports whether the event has been canceled.
func (e *Event) Canceled() bool { return e.canceled }

// Label returns the debug label given at scheduling time.
func (e *Event) Label() string { return e.label }

// Simulator owns the virtual clock and the pending event queue.
// The zero value is a simulator at time 0 with no events.
type Simulator struct {
	now     simtime.Time
	queue   eventHeap
	seq     uint64
	fired   uint64
	live    int // queued events that are not canceled
	free    []*Event
	running bool
	savers  []StateSaver // model state captured by Snapshot (snapshot.go)
}

// New returns a simulator with its clock at time zero.
func New() *Simulator { return &Simulator{} }

// Now returns the current simulated time.
func (s *Simulator) Now() simtime.Time { return s.now }

// Fired returns the number of events executed so far; useful for
// progress accounting and as a watchdog in tests.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending returns the number of events currently queued and not
// canceled. Canceled events may still occupy heap slots until they are
// skipped at pop (lazy cancellation), but are never counted here.
func (s *Simulator) Pending() int { return s.live }

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: the hypervisor model never needs it and allowing it would mask
// bookkeeping bugs.
func (s *Simulator) At(t simtime.Time, label string, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("des: scheduling %q at %v before now %v", label, t, s.now))
	}
	e := s.acquire()
	e.when = t
	e.seq = s.seq
	e.fn = fn
	e.label = label
	e.queued = true
	s.seq++
	s.live++
	s.queue.push(heapEntry{when: e.when, seq: e.seq, ev: e})
	return e
}

// After schedules fn to run d after the current time.
func (s *Simulator) After(d simtime.Duration, label string, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("des: scheduling %q with negative delay %v", label, d))
	}
	return s.At(s.now.Add(d), label, fn)
}

// Cancel marks e canceled; the heap slot is reclaimed lazily when the
// event surfaces at a pop (mark-and-skip), avoiding the O(log n)
// restructuring of an eager removal. Canceling nil, an already-canceled
// or an already-fired event is a no-op — but note that after an event
// has fired its struct may be recycled for a new event, so a retained
// stale handle must never reach Cancel.
func (s *Simulator) Cancel(e *Event) {
	if e == nil || e.canceled || !e.queued {
		return
	}
	e.canceled = true
	s.live--
}

// acquire takes an Event struct from the freelist, or allocates one.
// Fields are reset here (on acquire, not on release) so that a handle
// to a fired or canceled event keeps answering Time/Canceled/Label
// until the struct is actually reused.
func (s *Simulator) acquire() *Event {
	if n := len(s.free); n > 0 {
		e := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		// Every other field is overwritten by At; only the cancel mark
		// must be cleared explicitly.
		e.canceled = false
		return e
	}
	return &Event{}
}

// release returns a popped event to the freelist. The closure reference
// is dropped so the callback can be collected.
func (s *Simulator) release(e *Event) {
	e.fn = nil
	e.queued = false
	s.free = append(s.free, e)
}

// Step fires the earliest pending event and advances the clock to it.
// It returns false when the queue is empty.
func (s *Simulator) Step() bool {
	for s.queue.len() > 0 {
		ent := s.queue.pop()
		e := ent.ev
		if e.canceled {
			s.release(e)
			continue
		}
		e.queued = false
		s.now = ent.when
		s.fired++
		s.live--
		// Release before firing so a self-rescheduling callback reuses
		// this very struct; the handle is dead once the event fires.
		fn := e.fn
		s.release(e)
		fn()
		return true
	}
	return false
}

// RunUntil fires events in order until the next event would be after
// horizon or the queue drains. The clock ends at min(horizon, last event).
func (s *Simulator) RunUntil(horizon simtime.Time) {
	if s.running {
		panic("des: re-entrant RunUntil")
	}
	s.running = true
	defer func() { s.running = false }()
	for s.queue.len() > 0 {
		top := s.queue.a[0]
		if top.ev.canceled {
			// Reclaim lazily-canceled heads even past the horizon;
			// they cost nothing to fire-skip now.
			s.release(s.queue.pop().ev)
			continue
		}
		if top.when > horizon {
			break
		}
		ent := s.queue.pop()
		e := ent.ev
		e.queued = false
		s.now = ent.when
		s.fired++
		s.live--
		fn := e.fn
		s.release(e)
		fn()
	}
	if s.now < horizon {
		s.now = horizon
	}
}

// Drain fires every remaining event. Intended for tests and short
// self-terminating scenarios; a scenario with self-rescheduling events
// will not terminate under Drain.
func (s *Simulator) Drain() {
	for s.Step() {
	}
}

// Reset returns the simulator to its zero state in place: clock at 0,
// no events, no registered state savers. Queued events are recycled
// through the freelist and the heap keeps its capacity, so a reset
// simulator re-runs a same-shaped scenario without allocating — the
// arena contract of DESIGN.md §11.
func (s *Simulator) Reset() {
	if s.running {
		panic("des: Reset during RunUntil")
	}
	s.recycleQueue()
	s.now = 0
	s.seq = 0
	s.fired = 0
	s.savers = s.savers[:0]
}

// recycleQueue releases every queued event (canceled or not) back to the
// freelist and empties the heap, keeping its capacity.
func (s *Simulator) recycleQueue() {
	for i := range s.queue.a {
		s.release(s.queue.a[i].ev)
		s.queue.a[i] = heapEntry{}
	}
	s.queue.a = s.queue.a[:0]
	s.live = 0
}

// heapEntry is one queued event with its ordering key stored inline, so
// sift operations compare without chasing the Event pointer.
type heapEntry struct {
	when simtime.Time
	seq  uint64
	ev   *Event
}

// before is the strict heap order: earliest time first, FIFO within a
// timestamp.
func (a heapEntry) before(b heapEntry) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// eventHeap is a 4-ary min-heap on (when, seq). A wider node halves the
// tree depth versus a binary heap, trading a few extra comparisons per
// level for fewer cache-missing levels — the classic d-ary trade that
// favours pop-heavy workloads like a DES event queue.
type eventHeap struct {
	a []heapEntry
}

func (h *eventHeap) len() int { return len(h.a) }

// push inserts e, sifting up with a hole instead of pairwise swaps.
func (h *eventHeap) push(e heapEntry) {
	h.a = append(h.a, heapEntry{})
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !e.before(h.a[p]) {
			break
		}
		h.a[i] = h.a[p]
		i = p
	}
	h.a[i] = e
}

// pop removes and returns the minimum entry.
func (h *eventHeap) pop() heapEntry {
	a := h.a
	top := a[0]
	n := len(a) - 1
	last := a[n]
	a[n] = heapEntry{} // release the slot's Event reference
	a = a[:n]
	h.a = a
	if n > 0 {
		// Sift last down from the root with a hole.
		i := 0
		for {
			c := 4*i + 1
			if c >= n {
				break
			}
			m := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if a[j].before(a[m]) {
					m = j
				}
			}
			if !a[m].before(last) {
				break
			}
			a[i] = a[m]
			i = m
		}
		a[i] = last
	}
	return top
}
