// Package des implements a minimal discrete-event simulation kernel.
//
// The hypervisor reproduction (internal/hv) is driven entirely by this
// kernel: hardware IRQ arrivals, TDMA slot boundaries, bottom-handler
// budget expiry and execution completions are all events on one timeline.
// Events at the same timestamp fire in scheduling order (FIFO), which
// makes every simulation fully deterministic.
package des

import (
	"container/heap"
	"fmt"

	"repro/internal/simtime"
)

// Event is a scheduled callback. Its fields are managed by the Simulator;
// holders may only Cancel it or query its Time.
type Event struct {
	when     simtime.Time
	seq      uint64
	index    int // heap index, -1 when not queued
	canceled bool
	fn       func()
	label    string
}

// Time returns the timestamp the event is (or was) scheduled for.
func (e *Event) Time() simtime.Time { return e.when }

// Canceled reports whether the event has been canceled.
func (e *Event) Canceled() bool { return e.canceled }

// Label returns the debug label given at scheduling time.
func (e *Event) Label() string { return e.label }

// Simulator owns the virtual clock and the pending event queue.
// The zero value is a simulator at time 0 with no events.
type Simulator struct {
	now     simtime.Time
	queue   eventHeap
	seq     uint64
	fired   uint64
	running bool
}

// New returns a simulator with its clock at time zero.
func New() *Simulator { return &Simulator{} }

// Now returns the current simulated time.
func (s *Simulator) Now() simtime.Time { return s.now }

// Fired returns the number of events executed so far; useful for
// progress accounting and as a watchdog in tests.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending returns the number of events currently queued.
func (s *Simulator) Pending() int { return s.queue.Len() }

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: the hypervisor model never needs it and allowing it would mask
// bookkeeping bugs.
func (s *Simulator) At(t simtime.Time, label string, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("des: scheduling %q at %v before now %v", label, t, s.now))
	}
	e := &Event{when: t, seq: s.seq, fn: fn, label: label, index: -1}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// After schedules fn to run d after the current time.
func (s *Simulator) After(d simtime.Duration, label string, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("des: scheduling %q with negative delay %v", label, d))
	}
	return s.At(s.now.Add(d), label, fn)
}

// Cancel removes e from the queue. Canceling an already-fired or
// already-canceled event is a no-op.
func (s *Simulator) Cancel(e *Event) {
	if e == nil || e.canceled {
		return
	}
	e.canceled = true
	if e.index >= 0 {
		heap.Remove(&s.queue, e.index)
	}
}

// Step fires the earliest pending event and advances the clock to it.
// It returns false when the queue is empty.
func (s *Simulator) Step() bool {
	for s.queue.Len() > 0 {
		e := heap.Pop(&s.queue).(*Event)
		if e.canceled {
			continue
		}
		s.now = e.when
		s.fired++
		e.fn()
		return true
	}
	return false
}

// RunUntil fires events in order until the next event would be after
// horizon or the queue drains. The clock ends at min(horizon, last event).
func (s *Simulator) RunUntil(horizon simtime.Time) {
	if s.running {
		panic("des: re-entrant RunUntil")
	}
	s.running = true
	defer func() { s.running = false }()
	for s.queue.Len() > 0 {
		e := s.queue[0]
		if e.when > horizon {
			break
		}
		heap.Pop(&s.queue)
		if e.canceled {
			continue
		}
		s.now = e.when
		s.fired++
		e.fn()
	}
	if s.now < horizon {
		s.now = horizon
	}
}

// Drain fires every remaining event. Intended for tests and short
// self-terminating scenarios; a scenario with self-rescheduling events
// will not terminate under Drain.
func (s *Simulator) Drain() {
	for s.Step() {
	}
}

// eventHeap is a min-heap on (when, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}
