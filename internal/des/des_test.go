package des

import (
	"testing"

	"repro/internal/simtime"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New()
	var order []int
	s.At(30, "c", func() { order = append(order, 3) })
	s.At(10, "a", func() { order = append(order, 1) })
	s.At(20, "b", func() { order = append(order, 2) })
	s.Drain()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 30 {
		t.Fatalf("clock = %v, want 30", s.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(100, "e", func() { order = append(order, i) })
	}
	s.Drain()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-timestamp events fired out of scheduling order: %v", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	s := New()
	var at simtime.Time
	s.At(50, "outer", func() {
		s.After(25, "inner", func() { at = s.Now() })
	})
	s.Drain()
	if at != 75 {
		t.Fatalf("inner fired at %v, want 75", at)
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	e := s.At(10, "x", func() { fired = true })
	s.Cancel(e)
	s.Drain()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !e.Canceled() {
		t.Fatal("event not marked canceled")
	}
	// Double cancel and nil cancel are no-ops.
	s.Cancel(e)
	s.Cancel(nil)
}

func TestCancelFromWithinEarlierEvent(t *testing.T) {
	s := New()
	fired := false
	var victim *Event
	s.At(5, "canceler", func() { s.Cancel(victim) })
	victim = s.At(10, "victim", func() { fired = true })
	s.Drain()
	if fired {
		t.Fatal("victim fired despite cancellation")
	}
}

func TestRunUntilStopsAtHorizon(t *testing.T) {
	s := New()
	var fired []simtime.Time
	for _, tt := range []simtime.Time{10, 20, 30, 40} {
		tt := tt
		s.At(tt, "e", func() { fired = append(fired, tt) })
	}
	s.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %v before horizon 25", fired)
	}
	if s.Now() != 25 {
		t.Fatalf("clock = %v, want horizon 25", s.Now())
	}
	s.RunUntil(100)
	if len(fired) != 4 {
		t.Fatalf("remaining events did not fire: %v", fired)
	}
}

func TestRunUntilAdvancesEmptyClock(t *testing.T) {
	s := New()
	s.RunUntil(1000)
	if s.Now() != 1000 {
		t.Fatalf("clock = %v, want 1000", s.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(100, "x", func() {})
	s.Drain()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(50, "past", func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	s.After(-1, "neg", func() {})
}

func TestSelfRescheduling(t *testing.T) {
	s := New()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			s.After(10, "tick", tick)
		}
	}
	s.After(10, "tick", tick)
	s.Drain()
	if count != 5 {
		t.Fatalf("ticked %d times, want 5", count)
	}
	if s.Now() != 50 {
		t.Fatalf("clock = %v, want 50", s.Now())
	}
}

func TestFiredAndPendingCounters(t *testing.T) {
	s := New()
	s.At(1, "a", func() {})
	s.At(2, "b", func() {})
	e := s.At(3, "c", func() {})
	if s.Pending() != 3 {
		t.Fatalf("Pending = %d, want 3", s.Pending())
	}
	s.Cancel(e)
	if s.Pending() != 2 {
		t.Fatalf("Pending after cancel = %d, want 2", s.Pending())
	}
	s.Drain()
	if s.Fired() != 2 {
		t.Fatalf("Fired = %d, want 2", s.Fired())
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending after drain = %d", s.Pending())
	}
}

func TestStep(t *testing.T) {
	s := New()
	n := 0
	s.At(1, "a", func() { n++ })
	s.At(2, "b", func() { n++ })
	if !s.Step() || n != 1 {
		t.Fatal("first step")
	}
	if !s.Step() || n != 2 {
		t.Fatal("second step")
	}
	if s.Step() {
		t.Fatal("step on empty queue returned true")
	}
}

func TestEventAccessors(t *testing.T) {
	s := New()
	e := s.At(42, "label", func() {})
	if e.Time() != 42 {
		t.Errorf("Time() = %v", e.Time())
	}
	if e.Label() != "label" {
		t.Errorf("Label() = %q", e.Label())
	}
}

func TestManyEventsStressOrdering(t *testing.T) {
	s := New()
	// Interleave scheduling from within events; verify global
	// non-decreasing firing order.
	var last simtime.Time
	violations := 0
	var spawn func(depth int)
	count := 0
	spawn = func(depth int) {
		if s.Now() < last {
			violations++
		}
		last = s.Now()
		count++
		if depth < 3 {
			for i := 1; i <= 3; i++ {
				d := simtime.Duration(i * 7)
				s.After(d, "spawn", func() { spawn(depth + 1) })
			}
		}
	}
	s.At(0, "root", func() { spawn(0) })
	s.Drain()
	if violations > 0 {
		t.Fatalf("%d time-order violations", violations)
	}
	if count != 1+3+9+27 {
		t.Fatalf("fired %d events, want 40", count)
	}
}
