package des

import (
	"container/heap"
	"testing"
	"testing/quick"

	"repro/internal/simtime"
)

// oracleHeap is the seed kernel's container/heap implementation over
// (when, seq), kept as the reference the 4-ary heap is checked against.
type oracleEntry struct {
	when simtime.Time
	seq  uint64
}

type oracleHeap []oracleEntry

func (h oracleHeap) Len() int { return len(h) }
func (h oracleHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h oracleHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *oracleHeap) Push(x any)   { *h = append(*h, x.(oracleEntry)) }
func (h *oracleHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// TestQuickHeapMatchesOracle drives the 4-ary heap and the seed's
// container/heap with the same pseudo-random push/pop interleavings and
// requires every popped (when, seq) pair to match exactly.
func TestQuickHeapMatchesOracle(t *testing.T) {
	property := func(times []uint32, popEvery uint8) bool {
		var h eventHeap
		var o oracleHeap
		step := int(popEvery%5) + 1
		seq := uint64(0)
		check := func() bool {
			got := h.pop()
			want := heap.Pop(&o).(oracleEntry)
			return got.when == want.when && got.seq == want.seq
		}
		for i, raw := range times {
			// Compress the time range so duplicate timestamps (the
			// FIFO tie-break path) occur frequently.
			when := simtime.Time(raw % 64)
			h.push(heapEntry{when: when, seq: seq, ev: &Event{}})
			heap.Push(&o, oracleEntry{when: when, seq: seq})
			seq++
			if i%step == step-1 {
				if !check() {
					return false
				}
			}
		}
		for h.len() > 0 {
			if !check() {
				return false
			}
		}
		return o.Len() == 0
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestFreelistReusesEvents asserts the kernel recycles fired and
// canceled Event structs instead of allocating fresh ones.
func TestFreelistReusesEvents(t *testing.T) {
	s := New()
	e1 := s.At(10, "first", func() {})
	s.Drain()
	e2 := s.At(20, "second", func() {})
	if e1 != e2 {
		t.Fatal("fired event was not recycled for the next At")
	}
	if e2.Time() != 20 || e2.Label() != "second" || e2.Canceled() {
		t.Fatalf("recycled event carries stale state: %v %q %v", e2.Time(), e2.Label(), e2.Canceled())
	}
	s.Cancel(e2)
	s.Drain() // skips the canceled event, releasing it
	e3 := s.At(30, "third", func() {})
	if e3 != e2 {
		t.Fatal("canceled event was not recycled after being skipped")
	}
}

// TestLazyCancellationCounts asserts Pending ignores canceled events
// even while their heap slots are still occupied, and that skipped
// events never fire nor count as fired.
func TestLazyCancellationCounts(t *testing.T) {
	s := New()
	fired := 0
	var evs []*Event
	for i := 1; i <= 6; i++ {
		evs = append(evs, s.At(simtime.Time(i*10), "e", func() { fired++ }))
	}
	s.Cancel(evs[1])
	s.Cancel(evs[3])
	s.Cancel(evs[5])
	if s.Pending() != 3 {
		t.Fatalf("Pending = %d with 3 live events, want 3", s.Pending())
	}
	s.Drain()
	if fired != 3 {
		t.Fatalf("fired %d callbacks, want 3", fired)
	}
	if s.Fired() != 3 {
		t.Fatalf("Fired() = %d, want 3", s.Fired())
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending after drain = %d", s.Pending())
	}
}

// TestCancelBeyondHorizon exercises the RunUntil path that reclaims a
// lazily-canceled queue head sitting past the horizon.
func TestCancelBeyondHorizon(t *testing.T) {
	s := New()
	fired := false
	e := s.At(100, "far", func() { fired = true })
	s.Cancel(e)
	s.RunUntil(50)
	if fired {
		t.Fatal("canceled event fired")
	}
	if s.Now() != 50 {
		t.Fatalf("clock = %v, want 50", s.Now())
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d", s.Pending())
	}
}
