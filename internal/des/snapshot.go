// Snapshot/restore of a simulator: the fork primitive for warm-prefix
// campaigns. A snapshot captures the clock, the sequence counter and
// every queued (non-canceled) event with its original scheduling
// sequence number; restoring re-acquires the events from the freelist
// with those exact sequence numbers, so the strict (when, seq) total
// order — and therefore every same-timestamp FIFO tie — replays
// identically. Model state (hypervisor, guest OS, monitors, queues)
// rides along through registered StateSavers.
//
// Event callbacks are captured as function values. This is sound only
// because restore targets the *same* system the snapshot was taken
// from: the long-lived callbacks (arrival chains, slot boundaries,
// activity completions) close over objects that survive across the
// snapshot/restore boundary. Restoring into a different system would
// resurrect closures over foreign state and is not supported.
package des

import (
	"fmt"
	"sort"

	"repro/internal/simtime"
)

// StateSaver captures and restores one model's mutable state alongside
// the event queue. Savers are registered with RegisterState and invoked
// in registration order.
type StateSaver interface {
	// SaveState returns a deep copy of the model's mutable state. The
	// snapshot is passed so retained *Event handles can be translated
	// into stable tokens (Snapshot.Token) that survive the freelist.
	SaveState(sn *Snapshot) any
	// RestoreState reinstates a state previously returned by SaveState,
	// recovering retained event handles via Restorer.Event.
	RestoreState(rs *Restorer, state any)
}

// RegisterState adds sv to the set of model states captured by Snapshot
// and reinstated by Restore. Reset drops all registered savers.
func (s *Simulator) RegisterState(sv StateSaver) {
	s.savers = append(s.savers, sv)
}

// entSnap is one queued, non-canceled event in a snapshot.
type entSnap struct {
	when  simtime.Time
	seq   uint64
	label string
	fn    func()
}

// Snapshot is a resumable copy of a simulator's clock and event queue,
// plus the states of all registered savers. It stays valid across any
// number of Restore calls (fork many tails from one warm prefix).
type Snapshot struct {
	now     simtime.Time
	seq     uint64
	fired   uint64
	entries []entSnap
	tokens  map[*Event]uint64
	states  []any
}

// Now returns the simulated time the snapshot was taken at.
func (sn *Snapshot) Now() simtime.Time { return sn.now }

// Pending returns the number of queued events the snapshot holds.
func (sn *Snapshot) Pending() int { return len(sn.entries) }

// Token translates a live *Event handle into a stable token that can be
// stored in a saver's state and resolved after Restore. The second
// result is false when e is not a queued, non-canceled event of the
// snapshot — savers must treat that as "no event retained".
func (sn *Snapshot) Token(e *Event) (uint64, bool) {
	tok, ok := sn.tokens[e]
	return tok, ok
}

// Restorer resolves tokens back to the events re-created by Restore.
type Restorer struct {
	events map[uint64]*Event
}

// Event returns the re-created event for a token obtained from
// Snapshot.Token. Unknown tokens panic: a saver that stored a token is
// holding state the snapshot does not cover, which is a bug.
func (rs *Restorer) Event(token uint64) *Event {
	e, ok := rs.events[token]
	if !ok {
		panic(fmt.Sprintf("des: restore of unknown event token %d", token))
	}
	return e
}

// Snapshot captures the simulator for later Restore. Canceled events
// are dropped (they would be skipped at pop anyway); live entries are
// stored sorted by their (when, seq) key so restore order — and hence
// the freelist assignment of Event structs — is deterministic.
func (s *Simulator) Snapshot() *Snapshot {
	if s.running {
		panic("des: Snapshot during RunUntil")
	}
	sn := &Snapshot{
		now:     s.now,
		seq:     s.seq,
		fired:   s.fired,
		entries: make([]entSnap, 0, s.live),
		tokens:  make(map[*Event]uint64, s.live),
	}
	for _, ent := range s.queue.a {
		if ent.ev.canceled {
			continue
		}
		sn.entries = append(sn.entries, entSnap{when: ent.when, seq: ent.seq, label: ent.ev.label, fn: ent.ev.fn})
		sn.tokens[ent.ev] = ent.seq
	}
	sort.Slice(sn.entries, func(i, j int) bool {
		if sn.entries[i].when != sn.entries[j].when {
			return sn.entries[i].when < sn.entries[j].when
		}
		return sn.entries[i].seq < sn.entries[j].seq
	})
	for _, sv := range s.savers {
		sn.states = append(sn.states, sv.SaveState(sn))
	}
	return sn
}

// Restore rewinds the simulator to the snapshot: current queued events
// are recycled, the snapshot's events are re-acquired with their
// original sequence numbers (so pop order replays exactly), and every
// registered saver reinstates its state. The saver set must be the one
// the snapshot was taken with.
func (s *Simulator) Restore(sn *Snapshot) {
	if s.running {
		panic("des: Restore during RunUntil")
	}
	if len(s.savers) != len(sn.states) {
		panic(fmt.Sprintf("des: Restore with %d savers but snapshot has %d states", len(s.savers), len(sn.states)))
	}
	s.recycleQueue()
	s.now = sn.now
	s.seq = sn.seq
	s.fired = sn.fired
	rs := &Restorer{events: make(map[uint64]*Event, len(sn.entries))}
	for _, es := range sn.entries {
		e := s.acquire()
		e.when = es.when
		e.seq = es.seq
		e.fn = es.fn
		e.label = es.label
		e.queued = true
		s.live++
		s.queue.push(heapEntry{when: es.when, seq: es.seq, ev: e})
		rs.events[es.seq] = e
	}
	for i, sv := range s.savers {
		sv.RestoreState(rs, sn.states[i])
	}
}
