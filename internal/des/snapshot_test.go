package des

import (
	"testing"

	"repro/internal/simtime"
)

func TestResetReturnsToZeroState(t *testing.T) {
	s := New()
	fired := 0
	s.At(10, "a", func() { fired++ })
	e := s.At(20, "b", func() { fired++ })
	s.Cancel(e)
	s.At(30, "c", func() { fired++ })
	s.Step()
	s.Reset()
	if s.Now() != 0 || s.Pending() != 0 || s.Fired() != 0 {
		t.Fatalf("after Reset: now=%v pending=%d fired=%d, want all zero", s.Now(), s.Pending(), s.Fired())
	}
	// A reset simulator schedules from seq 0 again: same-timestamp FIFO
	// replays identically to a fresh simulator.
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		s.At(5, "e", func() { order = append(order, i) })
	}
	s.Drain()
	for i, v := range order {
		if v != i {
			t.Fatalf("post-reset FIFO order broken: %v", order)
		}
	}
	if fired != 1 {
		t.Fatalf("pre-reset events leaked across Reset: fired=%d", fired)
	}
}

func TestResetRecyclesEventsWithoutAllocating(t *testing.T) {
	s := New()
	// Warm the freelist and heap.
	for i := 0; i < 64; i++ {
		s.At(simtime.Time(i), "warm", func() {})
	}
	s.Reset()
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			s.At(simtime.Time(i), "warm", func() {})
		}
		s.Reset()
	})
	if allocs != 0 {
		t.Fatalf("schedule+Reset cycle allocates %v per run, want 0", allocs)
	}
}

func TestSnapshotRestoreReplaysIdentically(t *testing.T) {
	// Two interleaved self-rescheduling tickers plus one-shot events:
	// run a prefix, snapshot, record the tail twice (original + after
	// restore), and require identical firing sequences.
	type firing struct {
		at  simtime.Time
		who int
	}
	s := New()
	var log []firing
	var tickA, tickB func()
	tickA = func() {
		log = append(log, firing{s.Now(), 1})
		if s.Now() < 200 {
			s.After(7, "a", tickA)
		}
	}
	tickB = func() {
		log = append(log, firing{s.Now(), 2})
		if s.Now() < 200 {
			s.After(11, "b", tickB)
		}
	}
	s.At(0, "a", tickA)
	s.At(0, "b", tickB)
	s.At(50, "one", func() { log = append(log, firing{s.Now(), 3}) })
	s.At(150, "two", func() { log = append(log, firing{s.Now(), 4}) })

	s.RunUntil(100)
	sn := s.Snapshot()
	if sn.Now() != 100 {
		t.Fatalf("snapshot at %v, want 100", sn.Now())
	}

	log = nil
	s.RunUntil(300)
	tail1 := append([]firing(nil), log...)

	s.Restore(sn)
	if s.Now() != 100 {
		t.Fatalf("restored clock %v, want 100", s.Now())
	}
	log = nil
	s.RunUntil(300)
	tail2 := append([]firing(nil), log...)

	if len(tail1) == 0 {
		t.Fatal("empty tail; test is vacuous")
	}
	if len(tail1) != len(tail2) {
		t.Fatalf("tail lengths differ: %d vs %d", len(tail1), len(tail2))
	}
	for i := range tail1 {
		if tail1[i] != tail2[i] {
			t.Fatalf("tail diverges at %d: %v vs %v", i, tail1[i], tail2[i])
		}
	}
}

func TestSnapshotSkipsCanceledEvents(t *testing.T) {
	s := New()
	fired := false
	e := s.At(10, "victim", func() { fired = true })
	s.Cancel(e)
	sn := s.Snapshot()
	if sn.Pending() != 0 {
		t.Fatalf("snapshot holds %d events, want 0 (canceled dropped)", sn.Pending())
	}
	if _, ok := sn.Token(e); ok {
		t.Fatal("canceled event got a token")
	}
	s.Restore(sn)
	s.Drain()
	if fired {
		t.Fatal("canceled event fired after restore")
	}
}

// saverBox is a StateSaver retaining an event handle across the
// snapshot boundary, exercising the token translation.
type saverBox struct {
	value int
	ev    *Event
}

type saverBoxState struct {
	value  int
	evTok  uint64
	hasTok bool
}

func (b *saverBox) SaveState(sn *Snapshot) any {
	st := saverBoxState{value: b.value}
	if b.ev != nil {
		st.evTok, st.hasTok = sn.Token(b.ev)
	}
	return st
}

func (b *saverBox) RestoreState(rs *Restorer, state any) {
	st := state.(saverBoxState)
	b.value = st.value
	b.ev = nil
	if st.hasTok {
		b.ev = rs.Event(st.evTok)
	}
}

func TestStateSaverRoundTripsEventHandles(t *testing.T) {
	s := New()
	box := &saverBox{}
	s.RegisterState(box)
	box.ev = s.At(40, "held", func() { box.value += 100 })
	box.value = 7
	sn := s.Snapshot()

	// Mutate and run past the held event.
	box.value = 999
	s.Drain()
	if box.value != 999+100 {
		t.Fatalf("pre-restore run: value=%d", box.value)
	}

	s.Restore(sn)
	if box.value != 7 {
		t.Fatalf("restored value=%d, want 7", box.value)
	}
	if box.ev == nil {
		t.Fatal("event handle not restored")
	}
	// The restored handle must be live: cancel it and verify it never
	// fires.
	s.Cancel(box.ev)
	s.Drain()
	if box.value != 7 {
		t.Fatalf("canceled restored event fired: value=%d", box.value)
	}
}

func TestRestoreIsRepeatable(t *testing.T) {
	s := New()
	var sum simtime.Time
	var tick func()
	tick = func() {
		sum += s.Now()
		if s.Now() < 100 {
			s.After(3, "t", tick)
		}
	}
	s.At(0, "t", tick)
	s.RunUntil(50)
	sn := s.Snapshot()
	base := sum

	var totals []simtime.Time
	for i := 0; i < 3; i++ {
		s.Restore(sn)
		sum = base
		s.RunUntil(200)
		totals = append(totals, sum)
	}
	if totals[0] != totals[1] || totals[1] != totals[2] {
		t.Fatalf("restore not repeatable: %v", totals)
	}
}
