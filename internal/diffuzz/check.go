package diffuzz

import (
	"errors"
	"fmt"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/curves"
	"repro/internal/engine"
	"repro/internal/hv"
	"repro/internal/simtime"
)

// Plant names the deliberately-planted analysis bugs the smoke harness
// uses to prove the fuzzer catches real unsoundness. Planting never
// touches internal/analysis — the bug lives in the checker's choice of
// bound, so production bounds stay correct while the self-test runs.
const (
	// PlantNone checks against the real bounds.
	PlantNone = ""
	// PlantDropBlocking drops the interposed-interference blocking term
	// (the eq. (14) budget I(Δt) folded into eq. (11)) from every victim
	// bound — the classic "forgot one blocking term" analysis bug: the
	// bound is correct for an isolated victim but ignores the slot time
	// monitored foreign sources may legally steal.
	PlantDropBlocking = "drop-blocking"
)

// Options parameterise a differential check.
type Options struct {
	// Plant selects a deliberately unsound bound (see Plant*).
	Plant string
}

// Validate rejects unknown plant names.
func (o Options) Validate() error {
	if o.Plant != PlantNone && o.Plant != PlantDropBlocking {
		return fmt.Errorf("diffuzz: unknown plant %q", o.Plant)
	}
	return nil
}

// Outcome is the result of one differential check.
type Outcome struct {
	Class  string
	Seed   uint64
	Events int

	// Scenario shape.
	Sources    int
	Partitions int
	Tasks      int

	// Invalid marks scenarios the analysis rejected as malformed
	// (typed analysis.ErrInvalidSystem) — counted separately from
	// violations; a generated spec reaching this state is a generator
	// bug, a minimizer-mutated spec reaching it just cancels the step.
	Invalid       bool
	InvalidReason string

	// Simulation summary.
	Grants          uint64
	DeniedViolation uint64

	// Whole-run eq. (14) admission agreement: measured worst foreign
	// interference vs the analytic budget over the full run.
	Interference simtime.Duration
	Budget       simtime.Duration

	// Bound tightness over checked victims: gap = bound − observed
	// worst latency, per victim; Min/Sum fold over GapCount victims.
	GapCount int
	MinGap   simtime.Duration
	SumGap   simtime.Duration

	// BoundNotes records victims whose analytic bound was declined
	// (e.g. unbounded busy window): those latency checks are skipped.
	BoundNotes []string

	// Oracle is the full verdict; OK is its summary.
	Oracle hv.OracleReport
	OK     bool
	// Fingerprint is the content address of the checked scenario,
	// filled when the oracle found a violation.
	Fingerprint string
}

// Violation returns the first offending event, or nil.
func (o *Outcome) Violation() *hv.OracleViolation {
	if len(o.Oracle.Violations) == 0 {
		return nil
	}
	return &o.Oracle.Violations[0]
}

// CheckSeed generates the (class, seed) scenario and differentially
// checks it inside the caller's arena.
func CheckSeed(a *engine.SimArena, class string, seed uint64, events int, opt Options) (Outcome, error) {
	spec, err := Generate(class, seed, events)
	if err != nil {
		return Outcome{}, err
	}
	return CheckSpec(a, spec, opt)
}

// CheckSpec runs one differential check: materialize, simulate under
// the eq. (14) oracle, compute per-victim analytic bounds, and judge.
func CheckSpec(a *engine.SimArena, spec SystemSpec, opt Options) (Outcome, error) {
	if err := opt.Validate(); err != nil {
		return Outcome{}, err
	}
	out := Outcome{
		Class:      spec.Class,
		Seed:       spec.Seed,
		Events:     spec.Events,
		Sources:    len(spec.Srcs),
		Partitions: len(spec.Parts),
		Tasks:      spec.Tasks(),
	}
	sc, err := spec.Scenario()
	if err != nil {
		out.Invalid = true
		out.InvalidReason = err.Error()
		out.OK = true
		return out, nil
	}
	sys, err := a.Build(sc)
	if err != nil {
		if errors.Is(err, analysis.ErrInvalidSystem) {
			out.Invalid = true
			out.InvalidReason = err.Error()
			out.OK = true
			return out, nil
		}
		return out, fmt.Errorf("diffuzz: build %s/%d: %w", spec.Class, spec.Seed, err)
	}
	budget := interferenceBudget(sc, sys)
	sys.InstallOracle(budget)

	if err := sys.RunToCompletion(core.Horizon(sc)); err != nil {
		return out, fmt.Errorf("diffuzz: run %s/%d: %w", spec.Class, spec.Seed, err)
	}
	if err := sys.CheckInvariants(); err != nil {
		return out, fmt.Errorf("diffuzz: invariants %s/%d: %w", spec.Class, spec.Seed, err)
	}
	out.Grants = sys.Stats().InterposedGrants
	out.DeniedViolation = sys.Stats().DeniedViolation

	// Whole-run admission agreement: worst foreign interposed steal on
	// any partition that hosts an unmonitored source vs its budget.
	elapsed := sys.Now().Sub(0)
	for _, p := range sys.Partitions() {
		if !hostsMonitored(spec, p.Index) {
			if p.StolenInterposed > out.Interference {
				out.Interference = p.StolenInterposed
			}
			if b := budget(p.Index, elapsed); b > out.Budget {
				out.Budget = b
			}
		}
	}

	// Per-victim latency bounds. A victim is checkable when it is
	// unmonitored and the sole source of its partition — the eq. (11)
	// busy window models no same-queue competitors.
	bounds := map[int]simtime.Duration{}
	for i, q := range spec.Srcs {
		if q.Monitored() || !soleSource(spec, i) || len(q.Arrivals) < 2 {
			continue
		}
		victimModel, err := curves.DeltaFromTrace(q.Arrivals, 16)
		if err != nil {
			out.BoundNotes = append(out.BoundNotes, fmt.Sprintf("%s trace: %v", q.Name, err))
			continue
		}
		extra := func(dt simtime.Duration) simtime.Duration { return budget(q.Partition, dt) }
		rt, err := victimBound(sc, spec, i, victimModel, extra, opt.Plant, boundHorizon(sc))
		if err != nil {
			out.BoundNotes = append(out.BoundNotes, fmt.Sprintf("%s bound: %v", q.Name, err))
			continue
		}
		bounds[i] = rt.WCRT
	}

	// Observed worst latency per bounded victim; tightness gap folds.
	observed := map[int]simtime.Duration{}
	for _, r := range sys.Log().Records {
		if _, ok := bounds[r.Source]; ok {
			if lat := r.Done.Sub(r.Arrival); lat > observed[r.Source] {
				observed[r.Source] = lat
			}
		}
	}
	for i := range spec.Srcs {
		b, ok := bounds[i]
		if !ok {
			continue
		}
		gap := b - observed[i]
		if out.GapCount == 0 || gap < out.MinGap {
			out.MinGap = gap
		}
		out.SumGap += gap
		out.GapCount++
	}

	out.Oracle = sys.CheckTemporalIndependence(bounds)
	out.OK = out.Oracle.OK()
	if !out.OK {
		fp, err := core.Fingerprint(sc)
		if err != nil {
			fp = fmt.Sprintf("unavailable: %v", err)
		}
		out.Fingerprint = fp
	}
	return out, nil
}

// hostsMonitored reports whether partition pi subscribes a monitored
// source (whose own interposed grants are load, not interference).
func hostsMonitored(spec SystemSpec, pi int) bool {
	for _, q := range spec.Srcs {
		if q.Partition == pi && q.Monitored() {
			return true
		}
	}
	return false
}

// soleSource reports whether source i is the only source subscribed by
// its partition.
func soleSource(spec SystemSpec, i int) bool {
	for j, q := range spec.Srcs {
		if j != i && q.Partition == spec.Srcs[i].Partition {
			return false
		}
	}
	return true
}

// boundHorizon returns the busy-window horizon for fuzz bounds: a small
// multiple of the simulated span rather than analysis.DefaultHorizon
// (one hour), so overloaded random systems fail fast as BoundNotes
// instead of crawling the fixed point for millions of iterations. Any
// true bound beyond this horizon could never be witnessed by the run
// anyway.
func boundHorizon(sc core.Scenario) simtime.Duration {
	var last simtime.Time
	for _, q := range sc.IRQs {
		if n := len(q.Arrivals); n > 0 && q.Arrivals[n-1] > last {
			last = q.Arrivals[n-1]
		}
	}
	return 2*last.Sub(0) + 32*sc.CycleLength()
}

// victimBound computes the victim's analytic delayed-handling bound —
// the multi-window variant when the spec carries a window schedule —
// optionally with a planted unsoundness (see Plant*).
func victimBound(sc core.Scenario, spec SystemSpec, idx int, model curves.Model, extra analysis.Interference, plant string, horizon simtime.Duration) (analysis.ResponseTimeResult, error) {
	if plant == PlantDropBlocking {
		// The planted bug: same bound, eq. (14) blocking term dropped.
		// With at least one monitored foreign source earning grants, the
		// result is genuinely below the true worst case, the simulation
		// beats it, and the oracle fires.
		extra = nil
	}
	if len(spec.Windows) > 0 {
		return core.ScheduleBoundUnderHorizon(sc, idx, model, extra, horizon)
	}
	return core.ClassicBoundUnderHorizon(sc, idx, model, extra, horizon)
}

// interferenceBudget builds the oracle's eq. (14) budget, mirroring the
// chaos campaign: for each victim partition, the summed conditions of
// monitored single-subscriber sources subscribed elsewhere.
func interferenceBudget(sc core.Scenario, sys *hv.System) hv.InterferenceBudget {
	costs := sc.CostModel()
	srcs := sys.Sources()
	return func(victim int, dt simtime.Duration) simtime.Duration {
		var total simtime.Duration
		for _, src := range srcs {
			if src.Monitor == nil || len(src.Subscribers) != 1 || src.Subscribers[0] == victim {
				continue
			}
			cond := src.Monitor.Condition()
			if cond == nil {
				continue // still learning: interposing is denied
			}
			total += analysis.InterposedInterferenceDelta(dt, cond, costs, src.CBH+costs.QueuePop)
		}
		return total
	}
}
