package diffuzz

import (
	"reflect"
	"testing"

	"repro/internal/engine"
)

// TestGenerateDeterministic: the generator is a pure function of
// (class, seed, events).
func TestGenerateDeterministic(t *testing.T) {
	for _, class := range Classes() {
		a, err := Generate(class, 42, DefaultEvents)
		if err != nil {
			t.Fatalf("%s: %v", class, err)
		}
		b, err := Generate(class, 42, DefaultEvents)
		if err != nil {
			t.Fatalf("%s: %v", class, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: same seed generated different specs", class)
		}
		c, err := Generate(class, 43, DefaultEvents)
		if err != nil {
			t.Fatalf("%s: %v", class, err)
		}
		if reflect.DeepEqual(a, c) {
			t.Fatalf("%s: different seeds generated identical specs", class)
		}
	}
}

// TestCheckSeedDeterministic: the whole differential check — generate,
// simulate, bound, fold gaps — replays bit-identically from the seed.
func TestCheckSeedDeterministic(t *testing.T) {
	a := engine.NewArena()
	for _, class := range Classes() {
		o1, err := CheckSeed(a, class, 7, DefaultEvents, Options{})
		if err != nil {
			t.Fatalf("%s: %v", class, err)
		}
		o2, err := CheckSeed(a, class, 7, DefaultEvents, Options{})
		if err != nil {
			t.Fatalf("%s: %v", class, err)
		}
		if !reflect.DeepEqual(o1, o2) {
			t.Fatalf("%s: same seed produced different outcomes:\n%+v\n%+v", class, o1, o2)
		}
	}
}

// TestBoundsHoldOverSweep is the soundness core of the PR: across a
// seed sweep of every scenario class, the DES never beats the analytic
// worst case — zero violations — while the sweep measures a real
// (positive, nonzero) tightness gap, proving the latency comparison
// actually engaged rather than vacuously passing.
func TestBoundsHoldOverSweep(t *testing.T) {
	const seeds = 40
	a := engine.NewArena()
	var gaps, checked int
	for _, class := range Classes() {
		for seed := uint64(1); seed <= seeds; seed++ {
			out, err := CheckSeed(a, class, seed, DefaultEvents, Options{})
			if err != nil {
				t.Fatalf("%s/%d: %v", class, seed, err)
			}
			if out.Invalid {
				continue
			}
			checked++
			if !out.OK {
				t.Fatalf("%s/%d: %v", class, seed, out.Violation())
			}
			if out.GapCount > 0 {
				gaps += out.GapCount
				if out.MinGap < 0 {
					t.Fatalf("%s/%d: negative gap %v escaped the oracle", class, seed, out.MinGap)
				}
			}
		}
	}
	if checked < seeds { // at least one full class's worth must be valid
		t.Fatalf("only %d valid scenarios in the sweep", checked)
	}
	if gaps == 0 {
		t.Fatal("sweep folded zero tightness gaps; the latency oracle never engaged")
	}
}

// TestPlantedBugCaught: with the eq. (14) blocking term dropped from
// the checker's victim bounds, known seeds must flag a violation — the
// fuzzer's self-test that it can actually catch a bound-tightening bug.
func TestPlantedBugCaught(t *testing.T) {
	a := engine.NewArena()
	plant := Options{Plant: PlantDropBlocking}
	for _, tc := range []struct {
		class string
		seed  uint64
	}{{ClassSporadic, 18}, {ClassGuest, 57}, {ClassFaulty, 70}} {
		out, err := CheckSeed(a, tc.class, tc.seed, DefaultEvents, plant)
		if err != nil {
			t.Fatalf("%s/%d: %v", tc.class, tc.seed, err)
		}
		if out.OK {
			t.Fatalf("%s/%d: planted bound bug not caught", tc.class, tc.seed)
		}
		if out.Fingerprint == "" {
			t.Fatalf("%s/%d: violation without fingerprint", tc.class, tc.seed)
		}
		// The same seed without the plant passes: the violation is the
		// plant's, not the system's.
		clean, err := CheckSeed(a, tc.class, tc.seed, DefaultEvents, Options{})
		if err != nil {
			t.Fatalf("%s/%d clean: %v", tc.class, tc.seed, err)
		}
		if !clean.OK {
			t.Fatalf("%s/%d violates without the plant: %s", tc.class, tc.seed, clean.Violation())
		}
	}
}

// TestOptionsValidate rejects unknown plant names.
func TestOptionsValidate(t *testing.T) {
	if err := (Options{}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Options{Plant: PlantDropBlocking}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Options{Plant: "no-such-plant"}).Validate(); err == nil {
		t.Fatal("unknown plant accepted")
	}
}
