package diffuzz

import (
	"testing"

	"repro/internal/engine"
)

// FuzzDifferential is the go-native entry point over the differential
// oracle: any (class, seed, events) triple the fuzzer invents must
// either be rejected as invalid or satisfy the temporal-independence
// bounds — the DES beating an analytic worst case is a crash-grade
// finding. The committed corpus pins one seed per scenario class plus
// the seeds the planted-bug self-test relies on.
func FuzzDifferential(f *testing.F) {
	for i, class := range Classes() {
		f.Add(class, uint64(i+1), DefaultEvents)
	}
	f.Add(ClassSporadic, uint64(18), DefaultEvents)
	f.Add(ClassGuest, uint64(57), DefaultEvents)
	f.Add(ClassFaulty, uint64(70), DefaultEvents)
	a := engine.NewArena()
	f.Fuzz(func(t *testing.T, class string, seed uint64, events int) {
		if !ValidClass(class) || events < 2 || events > MaxEvents {
			t.Skip()
		}
		out, err := CheckSeed(a, class, seed, events, Options{})
		if err != nil {
			t.Fatalf("%s/%d/%d: %v", class, seed, events, err)
		}
		if out.Invalid || out.OK {
			return
		}
		// A genuine soundness violation: shrink it before reporting so
		// the failure carries a minimal reproducer.
		rep, err := Minimize(a, SystemSpecFor(t, class, seed, events), Options{})
		if err != nil {
			t.Fatalf("%s/%d/%d violates (%v) and minimize failed: %v", class, seed, events, out.Violation(), err)
		}
		t.Fatalf("%s/%d/%d: bound violation %v; minimal reproducer fingerprint %s (%d srcs, %d tasks)",
			class, seed, events, out.Violation(), rep.Fingerprint, len(rep.Spec.Srcs), rep.Spec.Tasks())
	})
}

// SystemSpecFor regenerates a spec inside a fuzz failure path, fataling
// on generator errors.
func SystemSpecFor(t *testing.T, class string, seed uint64, events int) SystemSpec {
	t.Helper()
	spec, err := Generate(class, seed, events)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}
