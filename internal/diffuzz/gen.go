// Package diffuzz is the differential scenario fuzzer: it generates
// random-but-valid systems, runs each through both the analytic bounds
// (internal/analysis) and the discrete-event simulation (internal/hv),
// and asserts the differential invariant — the simulation never exceeds
// the analytic worst case, and the eq. (14) window-budget oracle agrees
// with the analytic admission decision. When the invariant holds it
// records how tight the bounds were; when it breaks, a deterministic
// delta-debugging minimizer shrinks the scenario to a minimal
// fingerprint+seed reproducer.
//
// Everything is a pure function of (class, seed, events): generation
// draws from rng.NewStream(seed, role) with fixed per-role stream ids,
// so any outcome is replayable from three integers.
package diffuzz

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/curves"
	"repro/internal/faults"
	"repro/internal/guestos"
	"repro/internal/hv"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/workload"
)

// Scenario classes. Each class is one region of the scenario grammar;
// the per-class tightness statistics in campaign aggregates are keyed
// by these names.
const (
	// ClassSporadic: random TDMA layouts, one source per partition,
	// monitored attackers with l = 1 (dmin) conditions, unmonitored
	// victims with benign exponential streams.
	ClassSporadic = "sporadic"
	// ClassDelta: attackers carry explicit l-entry δ⁻ monitoring
	// conditions instead of a single minimum distance.
	ClassDelta = "delta"
	// ClassFaulty: the attacker stream is drawn from a random
	// internal/faults model (babbling idiot, jitter drift, …) at a
	// random intensity.
	ClassFaulty = "faulty"
	// ClassGuest: like sporadic, plus guest OSes with random task sets;
	// victim IRQs signal sporadic guest tasks.
	ClassGuest = "guest"
	// ClassWindows: ARINC653-style multi-window schedules instead of
	// single-slot rotations; bounds use the supply-function analysis.
	ClassWindows = "windows"
)

// classes lists every class in deterministic order.
var classes = []string{ClassSporadic, ClassDelta, ClassFaulty, ClassGuest, ClassWindows}

// Classes returns the registered scenario classes in deterministic order.
func Classes() []string { return append([]string(nil), classes...) }

// ValidClass reports whether name is a registered scenario class.
func ValidClass(name string) bool {
	for _, c := range classes {
		if c == name {
			return true
		}
	}
	return false
}

// MaxEvents caps the per-stream arrival count a generated scenario may
// carry; Generate clamps to it.
const MaxEvents = 2000

// DefaultEvents is the per-stream arrival count when the caller passes 0.
const DefaultEvents = 120

// TaskSpec is one guest task in the serializable intermediate form.
type TaskSpec struct {
	Name     string
	Period   simtime.Duration // 0 for sporadic tasks
	WCET     simtime.Duration
	Sporadic bool
}

// SourceSpec is one IRQ source in the serializable intermediate form.
type SourceSpec struct {
	Name      string
	Partition int
	CTH       simtime.Duration
	CBH       simtime.Duration
	// DMin > 0 arms an l = 1 monitor; Cond non-empty arms an explicit
	// δ⁻ monitor. At most one may be set; both zero means unmonitored
	// (a victim).
	DMin     simtime.Duration
	Cond     []simtime.Duration
	Arrivals []simtime.Time
	// SignalsGuest activates guest task GuestTask of the subscriber
	// partition from the bottom handler.
	SignalsGuest bool
	GuestTask    int
}

// Monitored reports whether the source carries a monitoring condition.
func (s SourceSpec) Monitored() bool { return s.DMin > 0 || len(s.Cond) > 0 }

// PartSpec is one partition in the serializable intermediate form.
type PartSpec struct {
	Name  string
	Slot  simtime.Duration
	Tasks []TaskSpec
}

// WindowSpec is one window of a multi-window schedule.
type WindowSpec struct {
	Partition int
	Length    simtime.Duration
}

// SystemSpec is the generator's serializable intermediate form: unlike
// core.Scenario it holds guest *task declarations* rather than a built
// (stateful) guest OS, so every check materializes a fresh scenario and
// the minimizer can drop tasks and re-check without state leaking
// between runs.
type SystemSpec struct {
	Class   string
	Seed    uint64
	Events  int
	Parts   []PartSpec
	Windows []WindowSpec // empty: single-slot rotation over Parts
	Srcs    []SourceSpec
}

// Tasks returns the total guest task count.
func (s SystemSpec) Tasks() int {
	n := 0
	for _, p := range s.Parts {
		n += len(p.Tasks)
	}
	return n
}

// Clone returns a deep copy; the minimizer mutates clones only.
func (s SystemSpec) Clone() SystemSpec {
	out := s
	out.Parts = make([]PartSpec, len(s.Parts))
	for i, p := range s.Parts {
		out.Parts[i] = p
		out.Parts[i].Tasks = append([]TaskSpec(nil), p.Tasks...)
	}
	out.Windows = append([]WindowSpec(nil), s.Windows...)
	out.Srcs = make([]SourceSpec, len(s.Srcs))
	for i, q := range s.Srcs {
		out.Srcs[i] = q
		out.Srcs[i].Cond = append([]simtime.Duration(nil), q.Cond...)
		out.Srcs[i].Arrivals = append([]simtime.Time(nil), q.Arrivals...)
	}
	return out
}

// Scenario materializes the spec into a runnable core.Scenario with
// freshly built guest OSes. It returns an error when the spec is
// malformed (possible for minimizer-mutated specs; generated specs are
// valid by construction).
func (s SystemSpec) Scenario() (core.Scenario, error) {
	sc := core.Scenario{
		Mode:   hv.Monitored,
		Policy: hv.DenyNearSlotEnd,
	}
	for pi, p := range s.Parts {
		ps := core.PartitionSpec{Name: p.Name, Slot: p.Slot}
		if len(p.Tasks) > 0 {
			g := guestos.New(fmt.Sprintf("guest-%d", pi))
			for _, t := range p.Tasks {
				task := guestos.Task{Name: t.Name, WCET: t.WCET, Sporadic: t.Sporadic}
				if !t.Sporadic {
					task.Period = t.Period
				}
				if _, err := g.AddTask(task); err != nil {
					return core.Scenario{}, fmt.Errorf("diffuzz: partition %d task %q: %w", pi, t.Name, err)
				}
			}
			ps.Guest = g
		}
		sc.Partitions = append(sc.Partitions, ps)
	}
	for _, w := range s.Windows {
		sc.Windows = append(sc.Windows, core.WindowSpec{Partition: w.Partition, Length: w.Length})
	}
	for i, q := range s.Srcs {
		irq := core.IRQSpec{
			Name:         q.Name,
			Partition:    q.Partition,
			CTH:          q.CTH,
			CBH:          q.CBH,
			DMin:         q.DMin,
			Arrivals:     q.Arrivals,
			SignalsGuest: q.SignalsGuest,
			GuestTask:    q.GuestTask,
		}
		if len(q.Cond) > 0 {
			cond, err := curves.NewDelta(q.Cond)
			if err != nil {
				return core.Scenario{}, fmt.Errorf("diffuzz: source %d condition: %w", i, err)
			}
			irq.Condition = cond
		}
		sc.IRQs = append(sc.IRQs, irq)
	}
	return sc, nil
}

// Stream ids: every random draw comes from rng.NewStream(seed, id) with
// a fixed role id, so adding draws to one role never shifts another.
const (
	streamLayout  = 0 // partition count, slot lengths, roles
	streamAttack  = 1 // attacker conditions and arrival streams
	streamVictim  = 2 // victim arrival streams
	streamGuest   = 3 // guest task sets
	streamWindows = 4 // multi-window schedules
)

// Generate produces the scenario spec for (class, seed): a random-but-
// valid system drawn from the class's region of the grammar. events
// bounds the arrival count per stream (0 = DefaultEvents, clamped to
// [2, MaxEvents]).
func Generate(class string, seed uint64, events int) (SystemSpec, error) {
	if !ValidClass(class) {
		return SystemSpec{}, fmt.Errorf("diffuzz: unknown class %q (have %v)", class, classes)
	}
	if events <= 0 {
		events = DefaultEvents
	}
	if events < 2 {
		events = 2
	}
	if events > MaxEvents {
		events = MaxEvents
	}
	spec := SystemSpec{Class: class, Seed: seed, Events: events}
	layout := rng.NewStream(seed, streamLayout)

	nParts := 2 + layout.Intn(3)
	for i := 0; i < nParts; i++ {
		spec.Parts = append(spec.Parts, PartSpec{
			Name: fmt.Sprintf("p%d", i),
			Slot: simtime.Micros(int64(2500 + 600*layout.Intn(5))),
		})
	}

	// One source per partition at most, so every unmonitored victim is
	// the sole source of its partition and the eq. (11) bound (which
	// models no same-queue competitors) applies. At least one victim
	// and, where the class calls for it, at least one attacker. Roles
	// are fixed up front so attacker inter-arrival floors can be scaled
	// by the attacker count: each interposed grant costs roughly
	// C_BH + T_Sched + 2·T_Ctx ≈ 150 µs of foreign slot time, so the
	// summed eq. (14) utilization must stay well below the thinnest
	// partition's supply share or every victim bound diverges.
	nSrcs := 1 + layout.Intn(nParts)
	roles := make([]bool, nSrcs)
	nMon := 0
	for i := 1; i < nSrcs; i++ {
		roles[i] = layout.Intn(2) == 0
		if i == 1 && class != ClassSporadic && class != ClassWindows {
			roles[i] = true // delta/faulty/guest exercise monitored paths
		}
		if roles[i] {
			nMon++
		}
	}
	attack := rng.NewStream(seed, streamAttack)
	victim := rng.NewStream(seed, streamVictim)
	for i := 0; i < nSrcs; i++ {
		src := SourceSpec{
			Name:      fmt.Sprintf("irq%d", i),
			Partition: i,
			CTH:       simtime.Micros(int64(2 + layout.Intn(7))),
			CBH:       simtime.Micros(int64(10 + layout.Intn(30))),
		}
		if roles[i] {
			genAttacker(&src, class, attack, events, nMon)
		} else {
			mean := simtime.Micros(int64(3000 + victim.Intn(3000)))
			dmin := simtime.Micros(int64(1500 + victim.Intn(1500)))
			src.Arrivals = workload.Timestamps(workload.ExponentialClamped(victim, mean, dmin, events))
		}
		spec.Srcs = append(spec.Srcs, src)
	}

	switch class {
	case ClassGuest:
		genGuests(&spec, rng.NewStream(seed, streamGuest))
	case ClassWindows:
		genWindows(&spec, rng.NewStream(seed, streamWindows))
	}
	return spec, nil
}

// genAttacker fills in a monitored source: its condition per the class
// and an arrival stream that is conforming, violating, or fault-shaped.
// The inter-arrival floor scales with the total attacker count nMon so
// the summed interposed-interference utilization stays bounded.
func genAttacker(src *SourceSpec, class string, r *rng.Source, events, nMon int) {
	if nMon < 1 {
		nMon = 1
	}
	dmin := simtime.Micros(int64(4000*nMon + r.Intn(4000)))
	switch class {
	case ClassDelta:
		l := 2 + r.Intn(3)
		cond := make([]simtime.Duration, l)
		d := dmin
		for i := range cond {
			cond[i] = d
			d += simtime.Micros(int64(200 + r.Intn(1800)))
		}
		src.Cond = cond
	case ClassFaulty:
		src.DMin = dmin
		// Any fault model except mode-flip, whose learning monitor is
		// outside the static-condition differential contract.
		names := faults.Names()
		var pool []string
		for _, n := range names {
			if n != "mode-flip" {
				pool = append(pool, n)
			}
		}
		model, _ := faults.Lookup(pool[r.Intn(len(pool))])
		p := faults.Params{
			DMin:      dmin,
			Events:    events,
			Intensity: 0.25 + float64(r.Intn(4))*0.25,
		}
		src.Arrivals = model.Arrivals(r, p)
		return
	default:
		src.DMin = dmin
	}
	// Conforming (clamped at dmin) or hostile (clamped well below dmin,
	// so the monitor demotes part of the stream) — both must stay
	// within every bound.
	clamp := dmin
	if r.Intn(2) == 0 {
		clamp = dmin / 3
		if clamp <= 0 {
			clamp = 1
		}
	}
	mean := clamp + simtime.Micros(int64(r.Intn(2000)))
	src.Arrivals = workload.Timestamps(workload.ExponentialClamped(r, mean, clamp, events))
}

// genGuests adds random task sets: periodic background load everywhere,
// plus one sporadic task per victim source, signalled from its bottom
// handler.
func genGuests(spec *SystemSpec, r *rng.Source) {
	for pi := range spec.Parts {
		n := r.Intn(3)
		for t := 0; t < n; t++ {
			period := simtime.Micros(int64(2000 + r.Intn(18000)))
			spec.Parts[pi].Tasks = append(spec.Parts[pi].Tasks, TaskSpec{
				Name:   fmt.Sprintf("p%dt%d", pi, t),
				Period: period,
				WCET:   simtime.Micros(int64(1 + r.Intn(250))),
			})
		}
	}
	for si := range spec.Srcs {
		src := &spec.Srcs[si]
		if src.Monitored() {
			continue
		}
		pi := src.Partition
		spec.Parts[pi].Tasks = append(spec.Parts[pi].Tasks, TaskSpec{
			Name:     fmt.Sprintf("p%dsig", pi),
			WCET:     simtime.Micros(int64(1 + r.Intn(150))),
			Sporadic: true,
		})
		src.SignalsGuest = true
		src.GuestTask = len(spec.Parts[pi].Tasks) - 1
	}
}

// genWindows replaces the single-slot rotation with an ARINC653-style
// schedule: each partition gets one or two windows per major frame, in
// an interleaved order.
func genWindows(spec *SystemSpec, r *rng.Source) {
	var order []int
	for pi := range spec.Parts {
		order = append(order, pi)
		if r.Intn(2) == 0 {
			order = append(order, pi)
		}
	}
	// Deterministic Fisher-Yates over the window order.
	for i := len(order) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		order[i], order[j] = order[j], order[i]
	}
	total := make([]simtime.Duration, len(spec.Parts))
	for _, pi := range order {
		length := simtime.Micros(int64(2000 + 500*r.Intn(5)))
		spec.Windows = append(spec.Windows, WindowSpec{Partition: pi, Length: length})
		total[pi] += length
	}
	// Keep PartitionSpec.Slot consistent with the windowed supply so
	// CycleLength and validation agree.
	for pi := range spec.Parts {
		spec.Parts[pi].Slot = total[pi]
	}
}
