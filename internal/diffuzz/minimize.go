package diffuzz

import (
	"fmt"

	"repro/internal/engine"
)

// MaxMinimizeChecks bounds the number of differential re-checks one
// minimization may spend; the fixed point over the shrink passes stops
// when the budget is exhausted and returns the best spec so far.
const MaxMinimizeChecks = 600

// MinimizeStats summarises one minimization run.
type MinimizeStats struct {
	// Checks is the number of differential re-checks spent.
	Checks int
	// Steps is the number of accepted shrink steps.
	Steps int
}

// Reproducer is the minimizer's output: the smallest spec that still
// violates, plus its content address. Seed/Class/Events on the spec
// replay the original generation; the spec itself replays the minimal
// counterexample directly.
type Reproducer struct {
	Spec        SystemSpec
	Fingerprint string
	Outcome     Outcome
	Stats       MinimizeStats
}

// Minimize shrinks a violating spec to a minimal counterexample by
// deterministic delta debugging: drop sources, drop guest tasks, drop
// empty partitions, truncate arrival streams, coarsen δ⁻ conditions to
// l = 1 — re-checking after every candidate step and keeping it only if
// the violation persists. Passes repeat to a fixed point (or until the
// check budget runs out). It returns an error if spec does not violate
// in the first place.
func Minimize(a *engine.SimArena, spec SystemSpec, opt Options) (Reproducer, error) {
	var st MinimizeStats
	out, err := checkStep(a, spec, opt, &st)
	if err != nil {
		return Reproducer{}, err
	}
	if out == nil {
		return Reproducer{}, fmt.Errorf("diffuzz: minimize: spec %s/%d does not violate", spec.Class, spec.Seed)
	}
	cur, best := spec.Clone(), *out
	for {
		progressed := false
		for _, pass := range []func(*engine.SimArena, *SystemSpec, *Outcome, Options, *MinimizeStats) bool{
			passDropSources,
			passDropTasks,
			passDropParts,
			passTruncateArrivals,
			passCoarsenConds,
		} {
			if pass(a, &cur, &best, opt, &st) {
				progressed = true
			}
			if st.Checks >= MaxMinimizeChecks {
				progressed = false
				break
			}
		}
		if !progressed {
			break
		}
	}
	return Reproducer{Spec: cur, Fingerprint: best.Fingerprint, Outcome: best, Stats: st}, nil
}

// checkStep re-checks a candidate spec; it returns the outcome when the
// candidate still violates, nil when it does not (including when the
// mutation made the spec invalid — that just cancels the step).
func checkStep(a *engine.SimArena, spec SystemSpec, opt Options, st *MinimizeStats) (*Outcome, error) {
	st.Checks++
	out, err := CheckSpec(a, spec, opt)
	if err != nil {
		return nil, err
	}
	if out.Invalid || out.OK {
		return nil, nil
	}
	return &out, nil
}

// tryStep accepts candidate iff it still violates, folding it into
// (cur, best).
func tryStep(a *engine.SimArena, candidate SystemSpec, cur *SystemSpec, best *Outcome, opt Options, st *MinimizeStats) bool {
	out, err := checkStep(a, candidate, opt, st)
	if err != nil || out == nil {
		return false
	}
	*cur, *best = candidate, *out
	st.Steps++
	return true
}

// passDropSources removes sources one at a time (highest index first so
// earlier indices stay stable across a sweep).
func passDropSources(a *engine.SimArena, cur *SystemSpec, best *Outcome, opt Options, st *MinimizeStats) bool {
	progress := false
	for i := len(cur.Srcs) - 1; i >= 0; i-- {
		if st.Checks >= MaxMinimizeChecks || len(cur.Srcs) <= 1 {
			break
		}
		cand := cur.Clone()
		cand.Srcs = append(cand.Srcs[:i], cand.Srcs[i+1:]...)
		if tryStep(a, cand, cur, best, opt, st) {
			progress = true
		}
	}
	return progress
}

// passDropTasks removes guest tasks one at a time, remapping the
// signalled-task indices of sources targeting the same partition.
func passDropTasks(a *engine.SimArena, cur *SystemSpec, best *Outcome, opt Options, st *MinimizeStats) bool {
	progress := false
	for pi := range cur.Parts {
		for ti := len(cur.Parts[pi].Tasks) - 1; ti >= 0; ti-- {
			if st.Checks >= MaxMinimizeChecks {
				return progress
			}
			cand := cur.Clone()
			cand.Parts[pi].Tasks = append(cand.Parts[pi].Tasks[:ti], cand.Parts[pi].Tasks[ti+1:]...)
			for si := range cand.Srcs {
				src := &cand.Srcs[si]
				if !src.SignalsGuest || src.Partition != pi {
					continue
				}
				switch {
				case src.GuestTask == ti:
					src.SignalsGuest, src.GuestTask = false, 0
				case src.GuestTask > ti:
					src.GuestTask--
				}
			}
			if tryStep(a, cand, cur, best, opt, st) {
				progress = true
			}
		}
	}
	return progress
}

// passDropParts removes partitions that subscribe no source, remapping
// source partition indices and dropping the partition's windows.
func passDropParts(a *engine.SimArena, cur *SystemSpec, best *Outcome, opt Options, st *MinimizeStats) bool {
	progress := false
	for pi := len(cur.Parts) - 1; pi >= 0; pi-- {
		if st.Checks >= MaxMinimizeChecks || len(cur.Parts) <= 1 {
			break
		}
		used := false
		for _, q := range cur.Srcs {
			if q.Partition == pi {
				used = true
				break
			}
		}
		if used {
			continue
		}
		cand := cur.Clone()
		cand.Parts = append(cand.Parts[:pi], cand.Parts[pi+1:]...)
		var wins []WindowSpec
		for _, w := range cand.Windows {
			if w.Partition == pi {
				continue
			}
			if w.Partition > pi {
				w.Partition--
			}
			wins = append(wins, w)
		}
		cand.Windows = wins
		for si := range cand.Srcs {
			if cand.Srcs[si].Partition > pi {
				cand.Srcs[si].Partition--
			}
		}
		if tryStep(a, cand, cur, best, opt, st) {
			progress = true
		}
	}
	return progress
}

// passTruncateArrivals shortens arrival streams: first by halving while
// the violation persists, then by dropping single trailing arrivals.
func passTruncateArrivals(a *engine.SimArena, cur *SystemSpec, best *Outcome, opt Options, st *MinimizeStats) bool {
	progress := false
	for si := range cur.Srcs {
		for len(cur.Srcs[si].Arrivals) >= 4 && st.Checks < MaxMinimizeChecks {
			cand := cur.Clone()
			cand.Srcs[si].Arrivals = cand.Srcs[si].Arrivals[:len(cand.Srcs[si].Arrivals)/2]
			if !tryStep(a, cand, cur, best, opt, st) {
				break
			}
			progress = true
		}
		for len(cur.Srcs[si].Arrivals) > 2 && st.Checks < MaxMinimizeChecks {
			cand := cur.Clone()
			cand.Srcs[si].Arrivals = cand.Srcs[si].Arrivals[:len(cand.Srcs[si].Arrivals)-1]
			if !tryStep(a, cand, cur, best, opt, st) {
				break
			}
			progress = true
		}
	}
	return progress
}

// passCoarsenConds rewrites explicit l-entry δ⁻ conditions as l = 1
// minimum-distance monitors, the simplest condition shape.
func passCoarsenConds(a *engine.SimArena, cur *SystemSpec, best *Outcome, opt Options, st *MinimizeStats) bool {
	progress := false
	for si := range cur.Srcs {
		if st.Checks >= MaxMinimizeChecks {
			break
		}
		q := cur.Srcs[si]
		if len(q.Cond) == 0 {
			continue
		}
		cand := cur.Clone()
		cand.Srcs[si].DMin = q.Cond[0]
		cand.Srcs[si].Cond = nil
		if tryStep(a, cand, cur, best, opt, st) {
			progress = true
		}
	}
	return progress
}
