package diffuzz

import (
	"testing"

	"repro/internal/engine"
)

// TestMinimizeShrinksPlantedViolation: delta-debugging a seed that
// catches the planted bound bug must converge on a counterexample no
// bigger than 2 interrupt sources and 3 guest tasks, still violating.
func TestMinimizeShrinksPlantedViolation(t *testing.T) {
	a := engine.NewArena()
	plant := Options{Plant: PlantDropBlocking}
	for _, tc := range []struct {
		class string
		seed  uint64
	}{{ClassSporadic, 18}, {ClassGuest, 57}} {
		spec, err := Generate(tc.class, tc.seed, DefaultEvents)
		if err != nil {
			t.Fatalf("%s/%d: %v", tc.class, tc.seed, err)
		}
		rep, err := Minimize(a, spec, plant)
		if err != nil {
			t.Fatalf("%s/%d: %v", tc.class, tc.seed, err)
		}
		if rep.Outcome.OK || rep.Outcome.Invalid {
			t.Fatalf("%s/%d: minimized spec no longer violates", tc.class, tc.seed)
		}
		if n := len(rep.Spec.Srcs); n > 2 {
			t.Fatalf("%s/%d: minimized to %d sources, want <= 2", tc.class, tc.seed, n)
		}
		if n := rep.Spec.Tasks(); n > 3 {
			t.Fatalf("%s/%d: minimized to %d tasks, want <= 3", tc.class, tc.seed, n)
		}
		if rep.Fingerprint == "" {
			t.Fatalf("%s/%d: reproducer without fingerprint", tc.class, tc.seed)
		}
		if rep.Stats.Checks > MaxMinimizeChecks {
			t.Fatalf("%s/%d: %d checks, above the %d budget", tc.class, tc.seed, rep.Stats.Checks, MaxMinimizeChecks)
		}
		// The minimal spec replays standalone: re-checking it violates
		// again with the same fingerprint.
		again, err := CheckSpec(a, rep.Spec, plant)
		if err != nil {
			t.Fatalf("%s/%d replay: %v", tc.class, tc.seed, err)
		}
		if again.OK || again.Fingerprint != rep.Fingerprint {
			t.Fatalf("%s/%d: reproducer does not replay (ok=%v fp=%s want %s)",
				tc.class, tc.seed, again.OK, again.Fingerprint, rep.Fingerprint)
		}
	}
}

// TestMinimizeRejectsPassingSpec: minimizing a spec that does not
// violate is an error, not a silent no-op.
func TestMinimizeRejectsPassingSpec(t *testing.T) {
	a := engine.NewArena()
	spec, err := Generate(ClassSporadic, 1, DefaultEvents)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Minimize(a, spec, Options{}); err == nil {
		t.Fatal("minimize accepted a passing spec")
	}
}
