// Package engine is the zero-alloc simulation engine core: per-worker
// arenas that amortize the substrate's allocations across many runs,
// and warm-prefix campaign forking on top of the DES snapshot/restore
// primitive (DESIGN.md §11).
//
// A SimArena owns one hv.System — simulator, event freelist, partition
// and source structs, interrupt rings, guest task state and the latency
// log backing array — and rewires it in place (core.BuildReuse →
// hv.Reinit) for every scenario it runs, so the steady-state cost of a
// campaign cell is O(1) allocations instead of O(events).
//
// Ownership contract: the arena owns everything the system allocated;
// results handed out of an arena are deep copies (core.ReportOwned).
// Retaining a pointer into arena memory across the next Build/Run is a
// use-after-reset bug — the reprolint arenaretain analyzer flags the
// aliasing entry points (core.Report, hv.System.Log) in arena-adopting
// packages.
//
// Arenas are single-goroutine: no internal locking, exactly one owner.
// The fan-out entry points (RunManyCtx and callers of
// runner.MapCtxPool) create one arena per pool worker, which is what
// makes reuse free of synchronization.
package engine

import (
	"fmt"

	"context"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/hv"
	"repro/internal/runner"
	"repro/internal/simtime"
)

// SimArena is a reusable simulation workspace. The zero value is ready
// to use; the first Build allocates the system, every later Build
// rewires it in place.
type SimArena struct {
	sys *hv.System
}

// NewArena returns a fresh arena — the newLocal hook for
// runner.MapCtxPool call sites.
func NewArena() *SimArena { return &SimArena{} }

// Build constructs the hypervisor system for sc inside the arena,
// reusing the previous system's allocations when one exists. The
// returned system is arena-owned: it is invalidated by the arena's next
// Build/Run/ForkCampaign call.
func (a *SimArena) Build(sc core.Scenario) (*hv.System, error) {
	sys, err := core.BuildReuse(a.sys, sc)
	if err != nil {
		return nil, err
	}
	a.sys = sys
	return sys, nil
}

// Run simulates sc to completion inside the arena and returns an owned
// result (no aliasing into arena memory). It is byte-identical to
// core.Run — the equivalence tests and the byte-identity suite hold it
// to that.
func (a *SimArena) Run(sc core.Scenario) (*core.Result, error) {
	sys, err := a.Build(sc)
	if err != nil {
		return nil, err
	}
	if err := sys.RunToCompletion(core.Horizon(sc)); err != nil {
		return nil, err
	}
	if err := sys.CheckInvariants(); err != nil {
		return nil, err
	}
	return core.ReportOwned(sys), nil
}

// RunMany is core.RunMany on arenas: one SimArena per pool worker, so a
// campaign of n scenarios costs a handful of system allocations instead
// of n. Results are byte-identical to core.RunMany.
func RunMany(scenarios []core.Scenario, workers int) ([]*core.Result, error) {
	return RunManyCtx(context.Background(), scenarios, workers)
}

// RunManyCtx is RunMany with the runner.MapCtx cancellation contract.
func RunManyCtx(ctx context.Context, scenarios []core.Scenario, workers int) ([]*core.Result, error) {
	return runner.MapCtxPool(ctx, workers, len(scenarios),
		func() *SimArena { return &SimArena{} },
		func(a *SimArena, i int) (*core.Result, error) { return a.Run(scenarios[i]) })
}

// Campaign is a warm-prefix fork point: a snapshot of the arena's
// system taken after the shared prefix completed. Each Cell rewinds to
// the snapshot and pays only for its suffix.
type Campaign struct {
	arena *SimArena
	sn    *des.Snapshot
	cycle simtime.Duration
	nsrc  int
}

// ForkCampaign runs sc — the campaign's shared warm prefix — to
// completion inside the arena and snapshots the end state. The prefix
// must be untraced (trace recordings cannot be rewound). The arena is
// pinned to the campaign: using it for other runs invalidates the
// campaign, not the other way around.
func (a *SimArena) ForkCampaign(sc core.Scenario) (*Campaign, error) {
	sys, err := a.Build(sc)
	if err != nil {
		return nil, err
	}
	if err := sys.RunToCompletion(core.Horizon(sc)); err != nil {
		return nil, err
	}
	if err := sys.CheckInvariants(); err != nil {
		return nil, err
	}
	sn, err := sys.Snapshot()
	if err != nil {
		return nil, err
	}
	return &Campaign{arena: a, sn: sn, cycle: sc.CycleLength(), nsrc: len(sc.IRQs)}, nil
}

// Now returns the simulation clock at the fork point. Suffix arrivals
// passed to Cell must not precede it.
func (c *Campaign) Now() simtime.Time {
	return c.sn.Now()
}

// Cell rewinds the arena to the fork point, appends suffixes[i] to IRQ
// source i (an empty entry extends nothing; suffixes must cover every
// source) and runs the extended scenario to completion. The result is
// owned and covers prefix plus suffix, byte-identical to a straight
// two-phase run of the same arrivals — the fork-determinism fuzz test
// holds it to that.
func (c *Campaign) Cell(suffixes [][]simtime.Time) (*core.Result, error) {
	if len(suffixes) != c.nsrc {
		return nil, fmt.Errorf("engine: campaign has %d IRQ sources, got %d suffixes", c.nsrc, len(suffixes))
	}
	sys := c.arena.sys
	sys.Restore(c.sn)
	last := sys.Now()
	for i, sfx := range suffixes {
		if len(sfx) == 0 {
			continue
		}
		if err := sys.ExtendArrivals(i, sfx); err != nil {
			return nil, err
		}
		if t := sfx[len(sfx)-1]; t > last {
			last = t
		}
	}
	if err := sys.RunToCompletion(last.Add(1000 * c.cycle)); err != nil {
		return nil, err
	}
	if err := sys.CheckInvariants(); err != nil {
		return nil, err
	}
	return core.ReportOwned(sys), nil
}
