package engine

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/hv"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/workload"
)

func us(v int64) simtime.Duration { return simtime.Micros(v) }

// testScenario builds a §6.1-style two-source scenario: a monitored
// timer on partition 0 and an unmonitored interferer on partition 1.
func testScenario(seed uint64, events int) core.Scenario {
	mon := workload.ExponentialClamped(rng.New(seed), us(1344), us(1344), events)
	itf := workload.ExponentialClamped(rng.NewStream(seed, 7), us(2500), us(500), events/2)
	return core.Scenario{
		Mode: hv.Monitored,
		Partitions: []core.PartitionSpec{
			{Name: "app1", Slot: us(6000)},
			{Name: "app2", Slot: us(6000)},
			{Name: "hk", Slot: us(2000)},
		},
		IRQs: []core.IRQSpec{
			{Name: "timer0", Partition: 0, CTH: us(6), CBH: us(30),
				Arrivals: workload.Timestamps(mon), DMin: us(1344)},
			{Name: "eth0", Partition: 1, CTH: us(8), CBH: us(45),
				Arrivals: workload.Timestamps(itf)},
		},
	}
}

func requireEqualResults(t testing.TB, want, got *core.Result, label string) {
	t.Helper()
	if !reflect.DeepEqual(want.Log.Records, got.Log.Records) {
		t.Fatalf("%s: latency records diverge (want %d, got %d records)",
			label, len(want.Log.Records), len(got.Log.Records))
	}
	if !reflect.DeepEqual(want.Stats, got.Stats) {
		t.Fatalf("%s: stats diverge:\nwant %+v\ngot  %+v", label, want.Stats, got.Stats)
	}
	if !reflect.DeepEqual(want.Summary, got.Summary) {
		t.Fatalf("%s: summaries diverge", label)
	}
	if !reflect.DeepEqual(want.Partitions, got.Partitions) {
		t.Fatalf("%s: partition reports diverge", label)
	}
	if !reflect.DeepEqual(want.Sources, got.Sources) {
		t.Fatalf("%s: source reports diverge", label)
	}
	if want.Duration != got.Duration {
		t.Fatalf("%s: durations diverge: want %v got %v", label, want.Duration, got.Duration)
	}
}

// TestArenaRunMatchesCoreRun reuses one arena across different
// scenarios and requires every run to be byte-identical to the
// allocate-fresh core.Run path.
func TestArenaRunMatchesCoreRun(t *testing.T) {
	var arena SimArena
	for _, seed := range []uint64{3, 14, 159} {
		sc := testScenario(seed, 300)
		want, err := core.Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		got, err := arena.Run(testScenario(seed, 300))
		if err != nil {
			t.Fatal(err)
		}
		requireEqualResults(t, want, got, "arena reuse")
	}
}

// TestResultsOutliveArenaReuse pins the ownership contract: a Result
// handed out of an arena must not alias arena memory, so it survives
// the arena's next run untouched.
func TestResultsOutliveArenaReuse(t *testing.T) {
	var arena SimArena
	first, err := arena.Run(testScenario(5, 200))
	if err != nil {
		t.Fatal(err)
	}
	wantLen := first.Log.Len()
	wantFirst := first.Log.Records[0]
	if _, err := arena.Run(testScenario(99, 400)); err != nil {
		t.Fatal(err)
	}
	if first.Log.Len() != wantLen || first.Log.Records[0] != wantFirst {
		t.Fatal("earlier result mutated by arena reuse: Result aliases arena memory")
	}
}

// TestRunManyMatchesSequential compares the pooled arena fan-out
// against the sequential allocate-fresh path — the byte-identity
// contract of runner.MapCtxPool locals.
func TestRunManyMatchesSequential(t *testing.T) {
	var scenarios []core.Scenario
	for seed := uint64(0); seed < 6; seed++ {
		scenarios = append(scenarios, testScenario(seed, 200))
	}
	want, err := core.RunMany(scenarios, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunMany(scenarios, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		requireEqualResults(t, want[i], got[i], "pooled fan-out")
	}
}

// forkReference runs prefix + suffix as a straight two-phase run on a
// fresh system: build, run the prefix out, extend, run again. This is
// the ground truth a snapshot fork must match (a single merged stream
// is *not* equivalent — event sequence numbers interleave differently).
func forkReference(t testing.TB, sc core.Scenario, suffixes [][]simtime.Time) *core.Result {
	sys, err := core.Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RunToCompletion(core.Horizon(sc)); err != nil {
		t.Fatal(err)
	}
	last := sys.Now()
	for i, sfx := range suffixes {
		if len(sfx) == 0 {
			continue
		}
		if err := sys.ExtendArrivals(i, sfx); err != nil {
			t.Fatal(err)
		}
		if e := sfx[len(sfx)-1]; e > last {
			last = e
		}
	}
	if err := sys.RunToCompletion(last.Add(1000 * sc.CycleLength())); err != nil {
		t.Fatal(err)
	}
	if err := sys.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return core.ReportOwned(sys)
}

// suffixAfter generates a seeded arrival suffix strictly after the fork
// point.
func suffixAfter(from simtime.Time, seed uint64, stream uint64, mean, dmin simtime.Duration, n int) []simtime.Time {
	out := workload.Timestamps(workload.ExponentialClamped(rng.NewStream(seed, stream), mean, dmin, n))
	for i := range out {
		out[i] = out[i].Add(from.Sub(0) + us(500))
	}
	return out
}

// checkForkDeterminism is the core property: snapshot → fork → run is
// byte-identical to a straight two-phase run from cycle zero, for any
// seed and fork point, and repeatably so from the same snapshot.
func checkForkDeterminism(t testing.TB, seed uint64, prefixEvents, suffixEvents int) {
	var arena SimArena
	c, err := arena.ForkCampaign(testScenario(seed, prefixEvents))
	if err != nil {
		t.Fatal(err)
	}
	suffixes := [][]simtime.Time{
		suffixAfter(c.Now(), seed, 21, us(1344), us(1344), suffixEvents),
		suffixAfter(c.Now(), seed, 22, us(2000), us(400), suffixEvents/2),
	}
	want := forkReference(t, testScenario(seed, prefixEvents), suffixes)
	for trial := 0; trial < 2; trial++ {
		got, err := c.Cell(suffixes)
		if err != nil {
			t.Fatal(err)
		}
		requireEqualResults(t, want, got, "warm-prefix fork")
	}
}

func TestForkCampaignMatchesStraightRun(t *testing.T) {
	for _, tc := range []struct {
		seed           uint64
		prefix, suffix int
	}{
		{seed: 1, prefix: 150, suffix: 80},
		{seed: 2, prefix: 10, suffix: 200},
		{seed: 3, prefix: 400, suffix: 5},
	} {
		checkForkDeterminism(t, tc.seed, tc.prefix, tc.suffix)
	}
}

// FuzzForkDeterminism fuzzes the fork-determinism property over seeds
// and fork points. The seed corpus runs in every `go test` (including
// the -race tier-1 pass); `go test -fuzz=FuzzForkDeterminism` explores
// further.
func FuzzForkDeterminism(f *testing.F) {
	f.Add(uint64(5), uint8(100), uint8(50))
	f.Add(uint64(1234), uint8(3), uint8(180))
	f.Add(uint64(42), uint8(250), uint8(1))
	f.Fuzz(func(t *testing.T, seed uint64, prefixEvents, suffixEvents uint8) {
		checkForkDeterminism(t, seed, int(prefixEvents)+2, int(suffixEvents)+2)
	})
}

// TestCellRejectsWrongSuffixCount pins the Cell argument contract.
func TestCellRejectsWrongSuffixCount(t *testing.T) {
	var arena SimArena
	c, err := arena.ForkCampaign(testScenario(8, 50))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cell([][]simtime.Time{nil}); err == nil {
		t.Fatal("Cell accepted a suffix slice not covering every source")
	}
}
