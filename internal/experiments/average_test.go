package experiments

import (
	"math"
	"testing"

	"repro/internal/analysis"
	"repro/internal/arm"
	"repro/internal/simtime"
)

// TestAverageModelMatchesSimulation cross-validates the analytic
// expected-latency model (analysis.AverageModel) against the simulated
// Fig. 6 averages — prediction and measurement must agree within a
// modest tolerance, which ties the simulator's averages to first
// principles rather than to tuning.
func TestAverageModelMatchesSimulation(t *testing.T) {
	cfg := DefaultFig6()
	cfg.EventsPerLoad = 2000
	model := analysis.AverageModel{
		Cycle: simtime.Micros(14000),
		Slot:  simtime.Micros(6000),
		CTH:   cfg.CTH,
		CBH:   cfg.CBH,
		Costs: arm.DefaultCosts(),
	}
	if err := model.Validate(); err != nil {
		t.Fatal(err)
	}

	// Fig. 6a: the unmonitored prediction.
	a, err := Fig6(Fig6a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	predA := model.Unmonitored().MicrosF()
	measA := a.Summary.Mean.MicrosF()
	if rel := math.Abs(predA-measA) / measA; rel > 0.05 {
		t.Errorf("Fig6a: predicted %.1fµs vs measured %.1fµs (%.1f%% off)", predA, measA, 100*rel)
	}

	// Fig. 6c: fully conforming. The simulation adds queueing/remnant
	// effects the expectation model excludes, so allow a wider band.
	c, err := Fig6(Fig6c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	predC := model.Monitored(1).MicrosF()
	measC := c.Summary.Mean.MicrosF()
	if measC < predC*0.9 || measC > predC*1.8 {
		t.Errorf("Fig6c: predicted %.1fµs vs measured %.1fµs", predC, measC)
	}

	// Fig. 6b: derive the conforming fraction from the measured grant
	// share and check the prediction against the measured mean.
	b, err := Fig6(Fig6b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	foreign := 1 - model.DirectShare()
	conforming := b.Summary.Share(1) / foreign // interposed share / foreign share
	predB := model.Monitored(conforming).MicrosF()
	measB := b.Summary.Mean.MicrosF()
	if rel := math.Abs(predB-measB) / measB; rel > 0.15 {
		t.Errorf("Fig6b: predicted %.1fµs (conf %.2f) vs measured %.1fµs (%.1f%% off)",
			predB, conforming, measB, 100*rel)
	}
}
