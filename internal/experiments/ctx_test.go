package experiments

import (
	"context"
	"errors"
	"testing"

	"repro/internal/metrics"
)

// smallFig6 keeps the cancellation tests fast.
func smallFig6() Fig6Config {
	cfg := DefaultFig6()
	cfg.EventsPerLoad = 200
	cfg.Workers = 1
	return cfg
}

func TestFig6CtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Fig6Ctx(ctx, Fig6a, smallFig6()); !errors.Is(err, context.Canceled) {
		t.Fatalf("Fig6Ctx err = %v, want context.Canceled", err)
	}
}

func TestFig7CtxCancelled(t *testing.T) {
	cfg := DefaultFig7()
	cfg.ECU.Events = 600
	cfg.Workers = 1
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Fig7Ctx(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("Fig7Ctx err = %v, want context.Canceled", err)
	}
}

func TestOverheadCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := OverheadCtx(ctx, smallFig6()); !errors.Is(err, context.Canceled) {
		t.Fatalf("OverheadCtx err = %v, want context.Canceled", err)
	}
}

// TestCtxBackgroundMatchesPlainCall: the ctx variants with a live
// context are the plain functions — same results, byte for byte.
func TestCtxBackgroundMatchesPlainCall(t *testing.T) {
	cfg := smallFig6()
	a, err := Fig6(Fig6b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig6Ctx(context.Background(), Fig6b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary != b.Summary {
		t.Fatalf("summaries differ: %+v != %+v", a.Summary, b.Summary)
	}
	if len(a.Combined.Records) != len(b.Combined.Records) {
		t.Fatal("record counts differ")
	}
	for i := range a.Combined.Records {
		if a.Combined.Records[i] != b.Combined.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

// TestExperimentMetricsRecorded: the CLI/server instrumentation hook
// fires once per successful run.
func TestExperimentMetricsRecorded(t *testing.T) {
	c := metrics.Default().Counter("repro_experiment_fig6a_runs_total")
	before := c.Value()
	if _, err := Fig6(Fig6a, smallFig6()); err != nil {
		t.Fatal(err)
	}
	if got := c.Value(); got != before+1 {
		t.Fatalf("fig6a runs_total = %d, want %d", got, before+1)
	}
}
