package experiments

import (
	"strings"
	"testing"

	"repro/internal/simtime"
	"repro/internal/tracerec"
)

// reducedFig6 keeps test runtime low while preserving statistics.
func reducedFig6() Fig6Config {
	cfg := DefaultFig6()
	cfg.EventsPerLoad = 1500
	return cfg
}

func TestFig6aShape(t *testing.T) {
	r, err := Fig6(Fig6a, reducedFig6())
	if err != nil {
		t.Fatal(err)
	}
	s := r.Summary
	// Paper: ~40 % direct (T_i/T_TDMA = 43 %), no interposed, rest
	// delayed.
	if sh := s.Share(tracerec.Direct); sh < 0.35 || sh > 0.50 {
		t.Errorf("direct share = %.2f, want ≈ 0.43", sh)
	}
	if s.ByMode[tracerec.Interposed] != 0 {
		t.Error("interposed IRQs with monitoring disabled")
	}
	// Delayed latencies approximately uniform on (0, 8000 µs]:
	// mean over all IRQs ≈ 2500 µs, worst case ≈ T_TDMA − T_i.
	if s.Mean < simtime.Micros(1800) || s.Mean > simtime.Micros(3000) {
		t.Errorf("mean = %v, want ≈ 2500µs", s.Mean)
	}
	if s.Max < simtime.Micros(7000) || s.Max > simtime.Micros(8500) {
		t.Errorf("max = %v, want ≈ 8000µs (TDMA-bound)", s.Max)
	}
}

func TestFig6bShape(t *testing.T) {
	r, err := Fig6(Fig6b, reducedFig6())
	if err != nil {
		t.Fatal(err)
	}
	s := r.Summary
	// Paper: direct 40 %, interposed 40 %, delayed 20 % with a
	// significantly reduced average but an unchanged worst case.
	if sh := s.Share(tracerec.Interposed); sh < 0.20 || sh > 0.50 {
		t.Errorf("interposed share = %.2f, want ≈ 0.40", sh)
	}
	if sh := s.Share(tracerec.Delayed); sh < 0.10 || sh > 0.35 {
		t.Errorf("delayed share = %.2f, want ≈ 0.20", sh)
	}
	if s.Mean < simtime.Micros(600) || s.Mean > simtime.Micros(1800) {
		t.Errorf("mean = %v, want ≈ 1200µs", s.Mean)
	}
	// Violating IRQs still wait for their slot: TDMA-bound worst case.
	if s.Max < simtime.Micros(6000) {
		t.Errorf("max = %v, want TDMA-bound", s.Max)
	}
}

func TestFig6cShape(t *testing.T) {
	r, err := Fig6(Fig6c, reducedFig6())
	if err != nil {
		t.Fatal(err)
	}
	s := r.Summary
	// Paper: no violations → essentially nothing delayed; average
	// improves by an order of magnitude.
	if sh := s.Share(tracerec.Delayed); sh > 0.02 {
		t.Errorf("delayed share = %.2f, want ≈ 0", sh)
	}
	if sh := s.Share(tracerec.Interposed); sh < 0.45 {
		t.Errorf("interposed share = %.2f, want ≈ 0.57", sh)
	}
	if s.Mean > simtime.Micros(300) {
		t.Errorf("mean = %v, want ≈ 100µs", s.Mean)
	}
	// No monitoring violations can occur with a conforming stream.
	for _, pl := range r.PerLoad {
		if pl.Result.Stats.DeniedViolation != 0 {
			t.Errorf("load %.2f: %d violations on a conforming stream",
				pl.Load, pl.Result.Stats.DeniedViolation)
		}
	}
}

func TestFig6ImprovementFactor(t *testing.T) {
	// The paper's headline number: scenario 3 improves the average
	// latency by roughly an order of magnitude (16× on their platform;
	// the exact factor depends on the unpublished C_BH).
	cfg := reducedFig6()
	a, err := Fig6(Fig6a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Fig6(Fig6c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	factor := float64(a.Summary.Mean) / float64(c.Summary.Mean)
	if factor < 8 {
		t.Fatalf("improvement factor = %.1f, want ≥ 8 (paper: ~16)", factor)
	}
}

func TestFig6MeansOrdered(t *testing.T) {
	cfg := reducedFig6()
	a, _ := Fig6(Fig6a, cfg)
	b, _ := Fig6(Fig6b, cfg)
	c, _ := Fig6(Fig6c, cfg)
	if !(c.Summary.Mean < b.Summary.Mean && b.Summary.Mean < a.Summary.Mean) {
		t.Fatalf("means not ordered: a=%v b=%v c=%v",
			a.Summary.Mean, b.Summary.Mean, c.Summary.Mean)
	}
}

func TestFig6LambdaFollowsEq17(t *testing.T) {
	cfg := reducedFig6()
	r, err := Fig6(Fig6b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	costs := defaultScenario(cfg).CostModel()
	cbhEff := costs.EffectiveBH(cfg.CBH)
	for i, pl := range r.PerLoad {
		want := simtime.FromMicrosF(cbhEff.MicrosF() / cfg.Loads[i])
		if pl.Lambda != want {
			t.Errorf("load %.2f: λ = %v, want %v (eq. 17)", pl.Load, pl.Lambda, want)
		}
	}
}

func TestFig6HistogramAccountsEverything(t *testing.T) {
	r, err := Fig6(Fig6a, reducedFig6())
	if err != nil {
		t.Fatal(err)
	}
	sum := r.Histogram.Overflow
	for _, c := range r.Histogram.Bins {
		sum += c
	}
	if sum != r.Summary.Count {
		t.Fatalf("histogram total %d != records %d", sum, r.Summary.Count)
	}
}

func TestFig6UnknownVariant(t *testing.T) {
	if _, err := Fig6('x', reducedFig6()); err == nil {
		t.Fatal("unknown variant accepted")
	}
}

func TestFig6WriteOutput(t *testing.T) {
	r, err := Fig6(Fig6a, reducedFig6())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	r.Write(&sb)
	out := sb.String()
	for _, want := range []string{"Figure 6a", "cumulative", "load"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func reducedFig7() Fig7Config {
	cfg := DefaultFig7()
	cfg.ECU.Events = 3000
	return cfg
}

func TestFig7RunAveragesMonotone(t *testing.T) {
	r, err := Fig7(reducedFig7())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Graphs) != 4 {
		t.Fatalf("graphs = %d", len(r.Graphs))
	}
	// Paper: tightening the admitted load (a → d) monotonically
	// increases the run-phase average latency.
	for i := 1; i < len(r.Graphs); i++ {
		if r.Graphs[i].RunAvg <= r.Graphs[i-1].RunAvg {
			t.Errorf("run averages not increasing: graph %c %.1f ≤ graph %c %.1f",
				'a'+i, r.Graphs[i].RunAvg, 'a'+i-1, r.Graphs[i-1].RunAvg)
		}
	}
	// Learning phases are identical across graphs (same trace, no
	// monitoring decisions yet).
	for _, g := range r.Graphs[1:] {
		if g.LearnAvg != r.Graphs[0].LearnAvg {
			t.Errorf("learning averages differ: %.1f vs %.1f", g.LearnAvg, r.Graphs[0].LearnAvg)
		}
	}
}

func TestFig7UnboundedDropsSharply(t *testing.T) {
	r, err := Fig7(reducedFig7())
	if err != nil {
		t.Fatal(err)
	}
	g := r.Graphs[0] // non-binding bound
	// Paper: ~2200 µs → ~120 µs on entering the monitored run mode.
	if g.RunAvg > g.LearnAvg/5 {
		t.Fatalf("run avg %.1f not ≪ learn avg %.1f", g.RunAvg, g.LearnAvg)
	}
	// With a non-binding bound, essentially every foreign IRQ is
	// interposed in run mode: few delayed IRQs remain.
	s := g.Result.Summary
	if sh := s.Share(tracerec.Delayed); sh > 0.20 {
		t.Errorf("delayed share %.2f with non-binding bound", sh)
	}
}

func TestFig7BoundsScaleRecorded(t *testing.T) {
	r, err := Fig7(reducedFig7())
	if err != nil {
		t.Fatal(err)
	}
	// Graph b admits 25 % of the recorded load: its bound distances
	// are 4× the recorded ones.
	for i, d := range r.Graphs[1].Bound.Dist {
		want := simtime.FromMicrosF(r.Recorded.Dist[i].MicrosF() * 4)
		if d != want {
			t.Errorf("bound[%d] = %v, want %v", i, d, want)
		}
	}
}

func TestFig7SeriesCSV(t *testing.T) {
	r, err := Fig7(reducedFig7())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	r.SeriesCSV(&sb, 100)
	out := sb.String()
	if !strings.HasPrefix(out, "idx,") {
		t.Fatalf("CSV header: %q", out[:20])
	}
	if len(strings.Split(out, "\n")) < 10 {
		t.Fatal("series CSV too short")
	}
	var sb2 strings.Builder
	r.Write(&sb2)
	if !strings.Contains(sb2.String(), "graph a)") {
		t.Fatal("Write output missing graphs")
	}
}

func TestOverheadTable(t *testing.T) {
	cfg := DefaultFig6()
	cfg.EventsPerLoad = 600
	r, err := Overhead(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Paper constants are carried through.
	if r.CodeBytesTotal != 1120 || r.DataBytesMonitorL1 != 28 {
		t.Fatalf("memory table: %d B code, %d B data", r.CodeBytesTotal, r.DataBytesMonitorL1)
	}
	if r.MonitorInstr != 128 || r.SchedInstr != 877 {
		t.Fatal("instruction counts")
	}
	// Monitoring adds context switches (2 per grant) but the increase
	// stays bounded (paper: ~10 %; ours depends on C_BH, see
	// EXPERIMENTS.md).
	if r.CumCtxMonitored <= r.CumCtxBaseline {
		t.Fatal("monitored run has no extra context switches")
	}
	if r.CumIncreasePct <= 0 || r.CumIncreasePct > 100 {
		t.Fatalf("context switch increase = %.1f%%", r.CumIncreasePct)
	}
	for _, ol := range r.PerLoad {
		extra := ol.CtxMonitored - ol.CtxBaseline
		if extra > 2*ol.Grants+20 {
			t.Errorf("load %.2f: %d extra switches for %d grants", ol.Load, extra, ol.Grants)
		}
	}
	var sb strings.Builder
	r.Write(&sb)
	if !strings.Contains(sb.String(), "C_sched") {
		t.Fatal("overhead table output")
	}
}

func TestFig6Deterministic(t *testing.T) {
	cfg := reducedFig6()
	cfg.EventsPerLoad = 300
	a, err := Fig6(Fig6b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig6(Fig6b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary.Mean != b.Summary.Mean || a.Summary.Max != b.Summary.Max {
		t.Fatal("same-seed runs differ")
	}
}
