// Package experiments regenerates every table and figure of the paper's
// evaluation (§6 and Appendix A): the latency histograms of Fig. 6, the
// automotive-trace average-latency series of Fig. 7, and the memory /
// runtime overhead table of §6.2.
package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hv"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/runner"
	"repro/internal/simtime"
	"repro/internal/tracerec"
	"repro/internal/workload"
)

// Fig6Variant selects the sub-figure.
type Fig6Variant byte

const (
	// Fig6a: monitoring disabled (original top handler).
	Fig6a Fig6Variant = 'a'
	// Fig6b: monitoring enabled, arrivals may violate dmin.
	Fig6b Fig6Variant = 'b'
	// Fig6c: monitoring enabled, arrivals clamped to dmin (no
	// violations).
	Fig6c Fig6Variant = 'c'
)

// Fig6Config parameterises the §6.1 experiments. The defaults reproduce
// the paper's setup: two application partitions of 6000 µs, a 2000 µs
// housekeeping partition (T_TDMA = 14000 µs), one monitored IRQ source
// subscribed to partition 1, 5000 IRQs per load at U_IRQ ∈ {1, 5, 10 %}
// with exponentially distributed interarrival times of mean
// λ = C'_BH / U_IRQ (eq. 17) and dmin = λ.
type Fig6Config struct {
	Loads         []float64 // long-term bottom-handler loads U_IRQ
	EventsPerLoad int
	Seed          uint64
	CTH           simtime.Duration
	CBH           simtime.Duration
	Slots         []simtime.Duration // partition slot lengths; subscriber is slot 0
	Policy        hv.SlotEndPolicy
	// Workers bounds the worker pool the per-load simulations fan out
	// over: 1 forces the sequential path, 0 selects the runner default
	// (REPRO_WORKERS or GOMAXPROCS). Results are byte-identical for
	// every setting — each load draws from its own seeded RNG stream
	// and results merge in load order.
	Workers int
}

// DefaultFig6 returns the paper's parameters. C_TH and C_BH are not
// published; the defaults are chosen so that direct latencies stay inside
// the paper's first histogram bin (≤ 50 µs), see DESIGN.md §2.
func DefaultFig6() Fig6Config {
	return Fig6Config{
		Loads:         []float64{0.01, 0.05, 0.10},
		EventsPerLoad: 5000,
		Seed:          2014,
		CTH:           simtime.Micros(6),
		CBH:           simtime.Micros(30),
		Slots: []simtime.Duration{
			simtime.Micros(6000), // application partition 1 (subscriber)
			simtime.Micros(6000), // application partition 2
			simtime.Micros(2000), // hypervisor housekeeping
		},
		// The paper's modified TDMA scheduler shows neither delayed
		// IRQs nor TDMA-bound worst cases in Fig. 6c, so grants
		// resume across slot boundaries (see hv.SlotEndPolicy).
		Policy: hv.ResumeAcrossSlots,
	}
}

// Fig6LoadResult is the outcome for one interrupt load.
type Fig6LoadResult struct {
	Load    float64
	Lambda  simtime.Duration // mean interarrival time = dmin
	Result  *core.Result
	Summary tracerec.Summary
}

// Fig6Result is the cumulative outcome over all loads, matching the
// paper's cumulative histogram over 15000 IRQs.
type Fig6Result struct {
	Variant   Fig6Variant
	Config    Fig6Config
	PerLoad   []Fig6LoadResult
	Combined  *tracerec.Log
	Summary   tracerec.Summary
	Histogram *tracerec.Histogram
}

// Fig6 runs one sub-figure of Fig. 6.
func Fig6(variant Fig6Variant, cfg Fig6Config) (*Fig6Result, error) {
	return Fig6Ctx(context.Background(), variant, cfg)
}

// Fig6Ctx is Fig6 with cooperative cancellation: once ctx is done no
// further per-load simulation starts and the call returns a non-nil
// error (see runner.MapCtx). The serve daemon uses this to enforce
// per-job deadlines.
func Fig6Ctx(ctx context.Context, variant Fig6Variant, cfg Fig6Config) (*Fig6Result, error) {
	if variant != Fig6a && variant != Fig6b && variant != Fig6c {
		return nil, fmt.Errorf("experiments: unknown Fig6 variant %q", variant)
	}
	//reprolint:allow metricname the experiment family is variant-suffixed (fig6a/fig6b/fig6c); the set is closed by the variant check above
	stop := metrics.Timer("fig6" + string(variant))
	out := &Fig6Result{Variant: variant, Config: cfg}
	costs := defaultScenario(cfg).CostModel()
	cbhEff := costs.EffectiveBH(cfg.CBH) // C'_BH of eq. (13)

	// The per-load runs are independent simulations: each derives its
	// workload from its own seeded RNG stream, so they fan out across
	// the worker pool and merge in load order — byte-identical to the
	// sequential loop. Each worker reuses one simulation arena across
	// the loads it claims (zero-alloc steady state, DESIGN.md §11).
	perLoad, err := runner.MapCtxPool(ctx, cfg.Workers, len(cfg.Loads), engine.NewArena, func(a *engine.SimArena, li int) (Fig6LoadResult, error) {
		load := cfg.Loads[li]
		lambda := simtime.FromMicrosF(cbhEff.MicrosF() / load) // eq. (17)
		src := rng.NewStream(cfg.Seed, uint64(li)+1)
		var dist []simtime.Duration
		if variant == Fig6c {
			dist = workload.ExponentialClamped(src, lambda, lambda, cfg.EventsPerLoad)
		} else {
			dist = workload.Exponential(src, lambda, cfg.EventsPerLoad)
		}
		arrivals := workload.Timestamps(dist)

		sc := defaultScenario(cfg)
		irq := core.IRQSpec{
			Name:      "timer0",
			Partition: 0,
			CTH:       cfg.CTH,
			CBH:       cfg.CBH,
			Arrivals:  arrivals,
		}
		if variant != Fig6a {
			sc.Mode = hv.Monitored
			irq.DMin = lambda
		}
		sc.IRQs = []core.IRQSpec{irq}

		res, err := a.Run(sc)
		if err != nil {
			return Fig6LoadResult{}, fmt.Errorf("experiments: fig6%c load %.0f%%: %w", variant, 100*load, err)
		}
		return Fig6LoadResult{
			Load:    load,
			Lambda:  lambda,
			Result:  res,
			Summary: res.Summary,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	out.PerLoad = perLoad
	total := 0
	for _, pl := range perLoad {
		total += pl.Result.Log.Len()
	}
	out.Combined = tracerec.NewLog(total)
	for _, pl := range perLoad {
		out.Combined.Records = append(out.Combined.Records, pl.Result.Log.Records...)
	}
	out.Summary = out.Combined.Summarize()
	// The paper's histogram spans 0..8000 µs (= T_TDMA − T_i) with the
	// first bin at 50 µs granularity; we use uniform 50 µs bins over a
	// slightly larger range to catch boundary effects.
	cycle := simtime.Duration(0)
	for _, s := range cfg.Slots {
		cycle += s
	}
	hrange := cycle - cfg.Slots[0] + simtime.Micros(500)
	out.Histogram = out.Combined.NewHistogram(simtime.Micros(50), hrange)
	stop()
	return out, nil
}

// defaultScenario builds the three-partition system of §6.1 without IRQs.
func defaultScenario(cfg Fig6Config) core.Scenario {
	sc := core.Scenario{Policy: cfg.Policy, Mode: hv.Original}
	names := []string{"app1", "app2", "housekeeping"}
	for i, slot := range cfg.Slots {
		name := fmt.Sprintf("p%d", i)
		if i < len(names) {
			name = names[i]
		}
		sc.Partitions = append(sc.Partitions, core.PartitionSpec{Name: name, Slot: slot})
	}
	return sc
}

// Write renders the Fig. 6 result the way the paper reports it: handling
// shares, average latency per load and cumulative, and the histogram.
func (r *Fig6Result) Write(w io.Writer) {
	fmt.Fprintf(w, "== Figure 6%c", r.Variant)
	switch r.Variant {
	case Fig6a:
		fmt.Fprintln(w, " — monitoring disabled ==")
	case Fig6b:
		fmt.Fprintln(w, " — monitoring enabled ==")
	case Fig6c:
		fmt.Fprintln(w, " — monitoring enabled, no violations ==")
	}
	for _, pl := range r.PerLoad {
		fmt.Fprintf(w, "load %4.1f%%  λ = dmin = %8.1fµs  ", 100*pl.Load, pl.Lambda.MicrosF())
		pl.Summary.WriteSummary(w)
	}
	fmt.Fprintf(w, "cumulative over %d IRQs: ", r.Summary.Count)
	r.Summary.WriteSummary(w)
	fmt.Fprintln(w)
	r.Histogram.WriteASCII(w, 60)
}
