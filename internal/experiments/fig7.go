package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/curves"
	"repro/internal/engine"
	"repro/internal/hv"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/simtime"
	"repro/internal/tracerec"
	"repro/internal/workload"
)

// Fig7Config parameterises the Appendix A testcase: a real-life
// activation trace drives the IRQ source, the first 10 % of it trains a
// self-learning δ⁻[l] monitor (Algorithm 1), the learned function is
// bounded by a predefined δ⁻_b (Algorithm 2), and the remaining 90 % runs
// in monitored mode. Four bounds are compared: one that does not bind the
// recorded function (graph a) and three that admit only 25 %, 12.5 % and
// 6.25 % of the recorded load (graphs b–d).
type Fig7Config struct {
	ECU           workload.ECUConfig
	LearnFraction float64   // share of the trace used for learning (paper: 0.10)
	L             int       // δ⁻ entries (paper: 5)
	LoadFractions []float64 // admitted share of the recorded load per graph
	CTH           simtime.Duration
	CBH           simtime.Duration
	Slots         []simtime.Duration
	Policy        hv.SlotEndPolicy
	// Window is the sliding-window length (in events) of the average
	// latency series, the y-axis of Fig. 7.
	Window int
	// Workers bounds the worker pool the per-bound runs fan out over:
	// 1 forces the sequential path, 0 selects the runner default. The
	// trace and the recorded δ⁻ are shared read-only; results merge in
	// graph order, byte-identical to the sequential loop.
	Workers int
}

// DefaultFig7 returns the paper's parameters.
func DefaultFig7() Fig7Config {
	return Fig7Config{
		ECU:           workload.DefaultECU(),
		LearnFraction: 0.10,
		L:             5,
		LoadFractions: []float64{1.0, 0.25, 0.125, 0.0625},
		CTH:           simtime.Micros(6),
		CBH:           simtime.Micros(30),
		Slots: []simtime.Duration{
			simtime.Micros(6000),
			simtime.Micros(6000),
			simtime.Micros(2000),
		},
		Policy: hv.ResumeAcrossSlots,
		Window: 500,
	}
}

// Fig7Graph is the outcome of one bound (one curve of Fig. 7).
type Fig7Graph struct {
	LoadFraction float64
	Bound        *curves.Delta // δ⁻_b handed to Algorithm 2
	Result       *core.Result
	// LearnAvg and RunAvg are the mean latencies of the learning and
	// monitored phases in µs.
	LearnAvg float64
	RunAvg   float64
	// Series is the sliding-window average latency per event index.
	Series []float64
}

// Fig7Result is the full Appendix A experiment.
type Fig7Result struct {
	Config      Fig7Config
	Trace       []simtime.Time
	LearnEvents int
	// Recorded is the tightest δ⁻[l] of the learning segment — what
	// Algorithm 1 converges to.
	Recorded *curves.Delta
	Graphs   []Fig7Graph
}

// Fig7 runs the Appendix A testcase.
func Fig7(cfg Fig7Config) (*Fig7Result, error) {
	return Fig7Ctx(context.Background(), cfg)
}

// Fig7Ctx is Fig7 with cooperative cancellation: once ctx is done no
// further per-bound simulation starts and the call returns a non-nil
// error (see runner.MapCtx).
func Fig7Ctx(ctx context.Context, cfg Fig7Config) (*Fig7Result, error) {
	stop := metrics.Timer("fig7")
	trace, err := workload.ECUTrace(cfg.ECU)
	if err != nil {
		return nil, err
	}
	learnEvents := int(float64(len(trace)) * cfg.LearnFraction)
	if learnEvents < cfg.L+1 {
		return nil, fmt.Errorf("experiments: learning segment of %d events too short for l=%d", learnEvents, cfg.L)
	}
	recorded, err := curves.DeltaFromTrace(trace[:learnEvents], cfg.L)
	if err != nil {
		return nil, fmt.Errorf("experiments: recording δ⁻ prefix: %w", err)
	}
	out := &Fig7Result{
		Config:      cfg,
		Trace:       trace,
		LearnEvents: learnEvents,
		Recorded:    recorded,
	}

	// One independent simulation per bound: the trace and recorded δ⁻
	// are only read, so the graphs fan out across the worker pool and
	// merge in graph order, each worker reusing one simulation arena.
	out.Graphs, err = runner.MapCtxPool(ctx, cfg.Workers, len(cfg.LoadFractions), engine.NewArena, func(a *engine.SimArena, gi int) (Fig7Graph, error) {
		frac := cfg.LoadFractions[gi]
		var bound *curves.Delta
		if frac >= 1.0 {
			// Graph a: a bound that does not constrain the
			// recorded function — Algorithm 2 leaves the learned
			// δ⁻ unchanged.
			zeros := make([]simtime.Duration, cfg.L)
			var err error
			bound, err = curves.NewDelta(zeros)
			if err != nil {
				return Fig7Graph{}, err
			}
		} else {
			// Admitting a fraction f of the recorded load means
			// scaling every minimum distance by 1/f.
			bound = recorded.ScaleDistances(1.0 / frac)
		}

		sc := core.Scenario{Mode: hv.Monitored, Policy: cfg.Policy}
		names := []string{"app1", "app2", "housekeeping"}
		for i, slot := range cfg.Slots {
			sc.Partitions = append(sc.Partitions, core.PartitionSpec{Name: names[i%len(names)], Slot: slot})
		}
		sc.IRQs = []core.IRQSpec{{
			Name:      "ecu",
			Partition: 0,
			CTH:       cfg.CTH,
			CBH:       cfg.CBH,
			Arrivals:  trace,
			Learn:     &core.LearnSpec{L: cfg.L, Events: learnEvents, Bound: bound},
		}}
		res, err := a.Run(sc)
		if err != nil {
			return Fig7Graph{}, fmt.Errorf("experiments: fig7 fraction %.4f: %w", frac, err)
		}

		g := Fig7Graph{LoadFraction: frac, Bound: bound, Result: res}
		g.Series = res.Log.RollingAverage(cfg.Window)
		var learnSum, runSum float64
		var nLearn, nRun int
		for i, rec := range res.Log.Records {
			if i < learnEvents {
				learnSum += rec.Latency().MicrosF()
				nLearn++
			} else {
				runSum += rec.Latency().MicrosF()
				nRun++
			}
		}
		if nLearn > 0 {
			g.LearnAvg = learnSum / float64(nLearn)
		}
		if nRun > 0 {
			g.RunAvg = runSum / float64(nRun)
		}
		return g, nil
	})
	if err != nil {
		return nil, err
	}
	stop()
	return out, nil
}

// Write renders the Fig. 7 result: per-graph learn/run averages and the
// handling-mode split of the monitored phase.
func (r *Fig7Result) Write(w io.Writer) {
	fmt.Fprintf(w, "== Figure 7 — ECU trace (%d activations, learn %d) ==\n", len(r.Trace), r.LearnEvents)
	fmt.Fprintf(w, "recorded δ⁻[%d] of learning segment (µs):", r.Recorded.Len())
	for _, d := range r.Recorded.Dist {
		fmt.Fprintf(w, " %.1f", d.MicrosF())
	}
	fmt.Fprintln(w)
	for i, g := range r.Graphs {
		s := g.Result.Summary
		fmt.Fprintf(w, "graph %c). load %6.2f%%  learn-avg %7.1fµs  run-avg %7.1fµs  (direct %.1f%%, interposed %.1f%%, delayed %.1f%%)\n",
			'a'+i, 100*g.LoadFraction, g.LearnAvg, g.RunAvg,
			100*s.Share(tracerec.Direct), 100*s.Share(tracerec.Interposed), 100*s.Share(tracerec.Delayed))
	}
}

// SeriesCSV writes the four average-latency curves aligned by event
// index, downsampled by k to keep the output figure-sized.
func (r *Fig7Result) SeriesCSV(w io.Writer, k int) {
	var series []tracerec.Series
	for i, g := range r.Graphs {
		series = append(series, tracerec.Series{
			Name: fmt.Sprintf("%c_load_%.4f", 'a'+i, g.LoadFraction),
			Y:    tracerec.Downsample(g.Series, k),
		})
	}
	tracerec.WriteSeriesCSV(w, series...)
}
