package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/arm"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hv"
	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/rng"
	"repro/internal/runner"
	"repro/internal/simtime"
	"repro/internal/workload"
)

// OverheadLoad captures the context-switch accounting of one interrupt
// load, comparing the original against the modified hypervisor on the
// identical arrival stream.
type OverheadLoad struct {
	Load              float64
	Lambda            simtime.Duration
	CtxBaseline       uint64 // context switches, original top handler
	CtxMonitored      uint64 // context switches, modified top handler
	IncreasePct       float64
	Grants            uint64
	MonitorTime       simtime.Duration
	SchedTime         simtime.Duration
	MonitorTimeShare  float64 // of total simulated time
	InterposedPerSec  float64
	SimulatedDuration simtime.Duration
}

// OverheadResult reproduces the §6.2 memory and runtime overhead table.
type OverheadResult struct {
	// Code/data footprint of the reference C implementation (gcc -O1),
	// reported by the paper; not reproducible in Go and carried as the
	// paper's constants (see DESIGN.md §2).
	CodeBytesTotal      int
	CodeBytesScheduler  int
	CodeBytesTopHandler int
	CodeBytesMonitor    int
	DataBytesMonitorL1  int // our monitor's state accounting at l = 1

	// Runtime overheads: the paper's measured instruction counts and
	// the cycle costs the simulation charges.
	MonitorInstr       int
	SchedInstr         int
	CtxSwitchInstr     int
	CtxWritebackCycles int
	Costs              arm.CostModel

	// Scenario-2 context-switch accounting per load and cumulative
	// (the paper reports ~10 % more context switches for dmin = λ).
	PerLoad            []OverheadLoad
	CumIncreasePct     float64
	CumCtxBaseline     uint64
	CumCtxMonitored    uint64
	EffectiveBH        simtime.Duration // C'_BH of eq. (13)
	EffectiveTHDelta   simtime.Duration // C_Mon added to C_TH (eq. 15)
	InterposedOverhead simtime.Duration // C_sched + 2·C_ctx
}

// Overhead regenerates the §6.2 table. cfg supplies the scenario-2
// parameters (DefaultFig6 for the paper's setup).
func Overhead(cfg Fig6Config) (*OverheadResult, error) {
	return OverheadCtx(context.Background(), cfg)
}

// OverheadCtx is Overhead with cooperative cancellation: once ctx is
// done no further per-load baseline/monitored pair starts and the call
// returns a non-nil error (see runner.MapCtx).
func OverheadCtx(ctx context.Context, cfg Fig6Config) (*OverheadResult, error) {
	stop := metrics.Timer("overhead")
	costs := defaultScenario(cfg).CostModel()
	mon := monitor.NewDMin(simtime.Millisecond)
	out := &OverheadResult{
		CodeBytesTotal:      arm.CodeBytesTotal,
		CodeBytesScheduler:  arm.CodeBytesScheduler,
		CodeBytesTopHandler: arm.CodeBytesTopHandler,
		CodeBytesMonitor:    arm.CodeBytesMonitor,
		DataBytesMonitorL1:  mon.DataBytes(),
		MonitorInstr:        arm.MonitorInstr,
		SchedInstr:          arm.SchedInstr,
		CtxSwitchInstr:      arm.CtxSwitchInstr,
		CtxWritebackCycles:  arm.CtxSwitchWritebackCycles,
		Costs:               costs,
		EffectiveBH:         costs.EffectiveBH(cfg.CBH),
		EffectiveTHDelta:    costs.Monitor,
		InterposedOverhead:  costs.InterposedOverhead(),
	}

	cbhEff := costs.EffectiveBH(cfg.CBH)
	// One job per load; each job runs its baseline and monitored
	// simulation back to back on its own workload stream (sharing the
	// worker's arena), so the pairs fan out across the worker pool with
	// load-ordered merging.
	perLoad, err := runner.MapCtxPool(ctx, cfg.Workers, len(cfg.Loads), engine.NewArena, func(a *engine.SimArena, li int) (OverheadLoad, error) {
		load := cfg.Loads[li]
		lambda := simtime.FromMicrosF(cbhEff.MicrosF() / load)
		src := rng.NewStream(cfg.Seed, uint64(li)+1) //nolint:gosec
		dist := workload.Exponential(src, lambda, cfg.EventsPerLoad)
		arrivals := workload.Timestamps(dist)

		run := func(mode hv.Mode) (*core.Result, error) {
			sc := defaultScenario(cfg)
			sc.Mode = mode
			irq := core.IRQSpec{
				Name: "timer0", Partition: 0,
				CTH: cfg.CTH, CBH: cfg.CBH, Arrivals: arrivals,
			}
			if mode == hv.Monitored {
				irq.DMin = lambda
			}
			sc.IRQs = []core.IRQSpec{irq}
			return a.Run(sc)
		}
		base, err := run(hv.Original)
		if err != nil {
			return OverheadLoad{}, fmt.Errorf("experiments: overhead baseline %.0f%%: %w", 100*load, err)
		}
		monRes, err := run(hv.Monitored)
		if err != nil {
			return OverheadLoad{}, fmt.Errorf("experiments: overhead monitored %.0f%%: %w", 100*load, err)
		}
		ol := OverheadLoad{
			Load:              load,
			Lambda:            lambda,
			CtxBaseline:       base.Stats.CtxSwitches,
			CtxMonitored:      monRes.Stats.CtxSwitches,
			Grants:            monRes.Stats.InterposedGrants,
			MonitorTime:       monRes.Stats.MonitorTime,
			SchedTime:         monRes.Stats.SchedTime,
			SimulatedDuration: monRes.Duration,
		}
		if ol.CtxBaseline > 0 {
			ol.IncreasePct = 100 * (float64(ol.CtxMonitored) - float64(ol.CtxBaseline)) / float64(ol.CtxBaseline)
		}
		if ol.SimulatedDuration > 0 {
			ol.MonitorTimeShare = float64(ol.MonitorTime) / float64(ol.SimulatedDuration)
			ol.InterposedPerSec = float64(ol.Grants) / (float64(ol.SimulatedDuration) / float64(simtime.Second))
		}
		return ol, nil
	})
	if err != nil {
		return nil, err
	}
	out.PerLoad = perLoad
	for _, ol := range perLoad {
		out.CumCtxBaseline += ol.CtxBaseline
		out.CumCtxMonitored += ol.CtxMonitored
	}
	if out.CumCtxBaseline > 0 {
		out.CumIncreasePct = 100 * (float64(out.CumCtxMonitored) - float64(out.CumCtxBaseline)) / float64(out.CumCtxBaseline)
	}
	stop()
	return out, nil
}

// Write renders the overhead table.
func (r *OverheadResult) Write(w io.Writer) {
	fmt.Fprintln(w, "== §6.2 Memory and runtime overhead ==")
	fmt.Fprintln(w, "memory (reference C implementation, gcc -O1, paper-reported):")
	fmt.Fprintf(w, "  code total        %5d B\n", r.CodeBytesTotal)
	fmt.Fprintf(w, "  - TDMA scheduler  %5d B\n", r.CodeBytesScheduler)
	fmt.Fprintf(w, "  - top handler     %5d B\n", r.CodeBytesTopHandler)
	fmt.Fprintf(w, "  - monitor         %5d B\n", r.CodeBytesMonitor)
	fmt.Fprintf(w, "  data (monitor, l=1) %3d B\n", r.DataBytesMonitorL1)
	fmt.Fprintln(w, "runtime (charged by the simulation):")
	fmt.Fprintf(w, "  C_Mon    %4d instr = %7.2fµs\n", r.MonitorInstr, r.Costs.Monitor.MicrosF())
	fmt.Fprintf(w, "  C_sched  %4d instr = %7.2fµs\n", r.SchedInstr, r.Costs.Sched.MicrosF())
	fmt.Fprintf(w, "  C_ctx    %4d instr + %d cycles writeback = %7.2fµs\n",
		r.CtxSwitchInstr, r.CtxWritebackCycles, r.Costs.CtxSwitch.MicrosF())
	fmt.Fprintf(w, "  per interposed IRQ: C_sched + 2·C_ctx = %7.2fµs; C'_BH = %7.2fµs\n",
		r.InterposedOverhead.MicrosF(), r.EffectiveBH.MicrosF())
	fmt.Fprintln(w, "context switches (scenario 2, dmin = λ):")
	for _, ol := range r.PerLoad {
		fmt.Fprintf(w, "  load %4.1f%%: baseline %6d → monitored %6d (%+.1f%%, %d grants)\n",
			100*ol.Load, ol.CtxBaseline, ol.CtxMonitored, ol.IncreasePct, ol.Grants)
	}
	fmt.Fprintf(w, "  cumulative: %d → %d (%+.1f%%)\n", r.CumCtxBaseline, r.CumCtxMonitored, r.CumIncreasePct)
}
