package experiments

import (
	"reflect"
	"runtime"
	"testing"
)

// Parallel execution must be indistinguishable from sequential: every
// job derives its randomness from a per-index seeded stream and results
// merge in index order, so the worker count is not allowed to leak into
// any result field (DESIGN.md §5 determinism invariant).

func parallelWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w < 2 {
		// Still exercises the goroutine pool path of runner.Map even
		// when the host has a single core.
		w = 4
	}
	return w
}

func TestFig6ParallelEqualsSequential(t *testing.T) {
	cfg := reducedFig6()
	cfg.EventsPerLoad = 800

	seqCfg := cfg
	seqCfg.Workers = 1
	parCfg := cfg
	parCfg.Workers = parallelWorkers()

	for _, v := range []Fig6Variant{Fig6a, Fig6b, Fig6c} {
		seq, err := Fig6(v, seqCfg)
		if err != nil {
			t.Fatalf("fig6%c sequential: %v", v, err)
		}
		par, err := Fig6(v, parCfg)
		if err != nil {
			t.Fatalf("fig6%c parallel: %v", v, err)
		}
		// The result echoes its config; only the Workers knob may differ.
		seq.Config.Workers = 0
		par.Config.Workers = 0
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("fig6%c: workers=1 and workers=%d diverge", v, parCfg.Workers)
		}
	}
}

func TestFig7ParallelEqualsSequential(t *testing.T) {
	cfg := DefaultFig7()
	cfg.ECU.Events = 600

	seqCfg := cfg
	seqCfg.Workers = 1
	parCfg := cfg
	parCfg.Workers = parallelWorkers()

	seq, err := Fig7(seqCfg)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	par, err := Fig7(parCfg)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	// The result echoes its config; only the Workers knob may differ.
	seq.Config.Workers = 0
	par.Config.Workers = 0
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("fig7: workers=1 and workers=%d diverge", parCfg.Workers)
	}
}

func TestOverheadParallelEqualsSequential(t *testing.T) {
	cfg := DefaultFig6()
	cfg.EventsPerLoad = 600

	seqCfg := cfg
	seqCfg.Workers = 1
	parCfg := cfg
	parCfg.Workers = parallelWorkers()

	seq, err := Overhead(seqCfg)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	par, err := Overhead(parCfg)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("overhead: workers=1 and workers=%d diverge", parCfg.Workers)
	}
}
