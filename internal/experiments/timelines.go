package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/hv"
	"repro/internal/schedtrace"
	"repro/internal/simtime"
)

// Timelines regenerates the paper's two timing diagrams as Gantt charts
// from actual simulation runs:
//
//   - Figure 3: a hardware IRQ arrives during partition 1's slot, its
//     top handler runs immediately, and the bottom handler waits for
//     partition 2's slot (delayed handling),
//   - Figure 5: the same arrival under the modified top handler, where
//     the bottom handler is interposed into partition 1's slot between
//     two context switches.
//
// Unlike the paper's hand-drawn figures these are produced by the
// hypervisor itself, so they double as executable documentation.
func Timelines(w io.Writer) error {
	if err := timeline(w, hv.Original,
		"Figure 3 — interrupt latency under delayed handling"); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return timeline(w, hv.Monitored,
		"Figure 5 — interrupt latency for an interposed IRQ")
}

func timeline(w io.Writer, mode hv.Mode, title string) error {
	tracer := &schedtrace.Recorder{}
	// Two partitions, as in the figures. The IRQ subscribes to
	// partition 2 and arrives in the middle of partition 1's slot.
	sc := core.Scenario{
		Partitions: []core.PartitionSpec{
			{Name: "partition1", Slot: simtime.Micros(2000)},
			{Name: "partition2", Slot: simtime.Micros(2000)},
		},
		Mode:   mode,
		Policy: hv.ResumeAcrossSlots,
		Tracer: tracer,
		IRQs: []core.IRQSpec{{
			Name: "hw-irq", Partition: 1,
			CTH: simtime.Micros(20), CBH: simtime.Micros(120),
			Arrivals: []simtime.Time{simtime.Time(simtime.Micros(600))},
			DMin:     simtime.Micros(500),
		}},
	}
	res, err := core.Run(sc)
	if err != nil {
		return err
	}
	rec := res.Log.Records[0]
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "HW IRQ at %.0fµs; bottom handler done at %.0fµs → latency %.1fµs (%s)\n",
		rec.Arrival.MicrosF(), rec.Done.MicrosF(), rec.Latency().MicrosF(), rec.Mode)
	tracer.Gantt(w, 0, simtime.Time(simtime.Micros(4200)), simtime.Micros(42),
		[]string{"partition1", "partition2"})
	return nil
}
