package experiments

import (
	"strings"
	"testing"
)

func TestTimelinesReproduceFigures3And5(t *testing.T) {
	var sb strings.Builder
	if err := Timelines(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Figure 3") || !strings.Contains(out, "Figure 5") {
		t.Fatal("figure titles missing")
	}
	// Figure 3: the bottom handler appears in the delayed timeline
	// (B glyph) and the latency is slot-bound (> 1000 µs).
	if !strings.Contains(out, "(delayed)") {
		t.Error("figure 3 run was not delayed")
	}
	if !strings.Contains(out, "B") {
		t.Error("no bottom-handler glyph in the delayed timeline")
	}
	// Figure 5: interposed, with the I glyph inside partition1's slot
	// and a much smaller latency.
	if !strings.Contains(out, "(interposed)") {
		t.Error("figure 5 run was not interposed")
	}
	if !strings.Contains(out, "I") {
		t.Error("no interposed glyph in the interposed timeline")
	}
	// Both charts carry the legend and partition rows.
	if strings.Count(out, "partition1 |") != 2 || strings.Count(out, "hv |") != 2 {
		t.Error("gantt rows missing")
	}
}
