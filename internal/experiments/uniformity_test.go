package experiments

import (
	"testing"

	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/tracerec"
)

// TestFig6aDelayedUniform checks the paper's distribution claim: delayed
// latencies are "approximately uniformly distributed" over
// (0, T_TDMA − T_i] because arrivals hit arbitrary points of the TDMA
// cycle. We bin the delayed records into eight equal bins over the
// interval and require every bin to hold a reasonable share.
func TestFig6aDelayedUniform(t *testing.T) {
	cfg := DefaultFig6()
	cfg.EventsPerLoad = 2000
	r, err := Fig6(Fig6a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	span := simtime.Micros(8000)
	const bins = 8
	counts := make([]int, bins)
	total := 0
	for _, rec := range r.Combined.Records {
		if rec.Mode != tracerec.Delayed {
			continue
		}
		lat := rec.Latency()
		if lat >= span {
			continue // boundary effects (context switches) overflow slightly
		}
		idx := int(lat * bins / span)
		counts[idx]++
		total++
	}
	if total < 1000 {
		t.Fatalf("too few delayed records: %d", total)
	}
	expected := float64(total) / bins
	for i, c := range counts {
		ratio := float64(c) / expected
		if ratio < 0.75 || ratio > 1.25 {
			t.Errorf("bin %d holds %.0f%% of expected uniform share (counts %v)",
				i, 100*ratio, counts)
		}
	}
}

// TestFig6aDelayedUniformKS is the sharper statistical version: the
// Kolmogorov–Smirnov distance of the delayed latencies (minus the fixed
// handler/switch overheads) against a uniform distribution over the
// foreign interval must not reject at a strict significance level.
func TestFig6aDelayedUniformKS(t *testing.T) {
	cfg := DefaultFig6()
	cfg.EventsPerLoad = 2000
	r, err := Fig6(Fig6a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var xs []float64
	for _, rec := range r.Combined.Records {
		if rec.Mode == tracerec.Delayed {
			xs = append(xs, rec.Latency().MicrosF())
		}
	}
	// The latency is wait + fixed overheads; the wait is uniform on
	// (0, 8000]. Fit the offset from the observed minimum.
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	ok, d, err := stats.KSTest(xs, stats.UniformCDF(lo, hi), 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("delayed latencies rejected as uniform (D = %.4f, n = %d)", d, len(xs))
	}
}

// TestWorkloadIsExponential validates the §6.1 generator statistically:
// the interarrival distances of the Fig. 6 workload pass a KS test
// against the exponential distribution with the configured mean.
func TestWorkloadIsExponential(t *testing.T) {
	cfg := DefaultFig6()
	cfg.EventsPerLoad = 4000
	r, err := Fig6(Fig6a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pl := r.PerLoad[2] // 10 % load
	recs := pl.Result.Log.Records
	var xs []float64
	for i := 1; i < len(recs); i++ {
		xs = append(xs, recs[i].Arrival.Sub(recs[i-1].Arrival).MicrosF())
	}
	ok, d, err := stats.KSTest(xs, stats.ExponentialCDF(pl.Lambda.MicrosF()), 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("interarrival distances rejected as exponential (D = %.4f)", d)
	}
}

// TestFig6cWorstCaseNotDelayed checks Fig. 6c's structural claim about
// the worst case: with a conforming stream the TDMA-bound tail consists
// only of *direct* IRQs cut by their own slot end — no delayed IRQ waits
// a cycle, and interposed latencies stay far below the TDMA gap.
func TestFig6cWorstCaseNotDelayed(t *testing.T) {
	cfg := DefaultFig6()
	cfg.EventsPerLoad = 2000
	r, err := Fig6(Fig6c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range r.Combined.Records {
		lat := rec.Latency()
		if rec.Mode == tracerec.Interposed && lat > simtime.Micros(6000) {
			t.Errorf("interposed latency %v near the TDMA bound", lat)
		}
		if rec.Mode == tracerec.Delayed && lat > simtime.Micros(6000) {
			t.Errorf("delayed latency %v at the TDMA bound in scenario 3", lat)
		}
	}
}
