package faults

import (
	"context"
	"fmt"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/curves"
	"repro/internal/engine"
	"repro/internal/hv"
	"repro/internal/rng"
	"repro/internal/runner"
	"repro/internal/simtime"
	"repro/internal/workload"
)

// The chaos campaign: every registered fault model is aimed at the
// paper's reference system (§6.1 slots and dmin) across a sweep of
// intensities, and every run is judged by the temporal-independence
// oracle (internal/hv). A run that breaks an invariant yields a
// minimal Reproducer — the (fault, intensity, stream) triple plus the
// scenario fingerprint and the first offending event — which is all
// that is needed to replay it, because streams are pure functions of
// their seeds.

// Campaign scenario constants: the paper's reference system (§6.1).
const (
	slotApp1         = 6000 // µs
	slotApp2         = 6000 // µs
	slotHousekeeping = 2000 // µs
	attackerDMinUs   = 1344 // µs, the paper's l = 1 condition
	handlerCTHUs     = 6    // µs
	handlerCBHUs     = 30   // µs
	victimMeanUs     = 2500 // µs, benign victim interarrival mean
	victimDMinUs     = 500  // µs, benign victim clamp
)

// Config parameterises a campaign.
type Config struct {
	// Faults lists the model names to sweep; empty selects every
	// registered model.
	Faults []string
	// Intensities lists the per-model intensities; empty selects
	// 0.25, 0.5 and 1.0.
	Intensities []float64
	// Events is the number of attacker arrivals per run (the victim
	// stream has the same length). 0 selects 300.
	Events int
	// Seed is the campaign seed; each run draws its streams from
	// rng.NewStream(Seed, streamID) with a per-case stream id, so the
	// campaign is reproducible case by case.
	Seed uint64
	// Workers sizes the worker pool (0 = runner default).
	Workers int
	// DisableMonitor runs the whole campaign with the hv ablation
	// hook set: monitors run but their verdicts are ignored. Used to
	// prove the oracle catches regressions; see TestOracleCatches*.
	DisableMonitor bool
}

// DefaultConfig returns the campaign defaults.
func DefaultConfig() Config {
	return Config{Events: 300, Seed: 1}
}

// DefaultIntensities returns the default intensity sweep.
func DefaultIntensities() []float64 { return []float64{0.25, 0.5, 1.0} }

func (c *Config) fill() error {
	if len(c.Faults) == 0 {
		c.Faults = Names()
	}
	for _, f := range c.Faults {
		if _, ok := Lookup(f); !ok {
			return fmt.Errorf("faults: unknown fault model %q (have %v)", f, Names())
		}
	}
	if len(c.Intensities) == 0 {
		c.Intensities = DefaultIntensities()
	}
	if c.Events <= 0 {
		c.Events = 300
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return nil
}

// Reproducer is the minimal replay recipe for a failed run.
type Reproducer struct {
	// Fingerprint is the core.Fingerprint of the exact scenario that
	// failed (the content address of its canonical JSON).
	Fingerprint string
	// Seed and StreamID regenerate the run's arrival streams:
	// attacker = rng.NewStream(Seed, 2·StreamID), victim =
	// rng.NewStream(Seed, 2·StreamID+1).
	Seed     uint64
	StreamID uint64
	// Fault, Intensity, Events and DisableMonitor restate the case.
	Fault          string
	Intensity      float64
	Events         int
	DisableMonitor bool
	// First is the first offending event of the first violated
	// invariant.
	First hv.OracleViolation
}

// String renders the reproducer as a single replay line.
func (r Reproducer) String() string {
	return fmt.Sprintf("fault=%s intensity=%g seed=%d stream=%d events=%d disable_monitor=%v scenario=%s first{%s}",
		r.Fault, r.Intensity, r.Seed, r.StreamID, r.Events, r.DisableMonitor, r.Fingerprint, r.First)
}

// RunReport is the outcome of one campaign case.
type RunReport struct {
	Fault     string
	Intensity float64
	StreamID  uint64

	// Workload and shaping summary.
	AttackerArrivals int
	Grants           uint64 // interposed grants admitted
	DeniedViolation  uint64 // arrivals demoted by the monitor

	// Invariant (a) aggregate: the worst victim interference over the
	// whole run vs the whole-run eq. (14) budget.
	Interference simtime.Duration
	Budget       simtime.Duration

	// Invariant (b): measured vs analytic victim latency. A zero
	// bound with non-empty BoundNote means the analysis declined
	// (e.g. unbounded busy window) and the latency check was skipped.
	VictimMaxLatency   simtime.Duration
	VictimLatencyBound simtime.Duration
	BoundNote          string

	Oracle hv.OracleReport
	// Repro is non-nil iff the oracle found a violation.
	Repro *Reproducer
}

// Result is a full campaign outcome.
type Result struct {
	DisableMonitor bool
	Events         int
	Seed           uint64
	Runs           []RunReport
	// FailedRuns counts runs with at least one oracle violation.
	FailedRuns int
}

// Run executes the campaign: every fault × intensity cell as one
// simulation, fanned out over the worker pool deterministically
// (results are byte-identical for any worker count).
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	type cell struct {
		fault     string
		intensity float64
	}
	var cells []cell
	for _, f := range cfg.Faults {
		for _, in := range cfg.Intensities {
			cells = append(cells, cell{fault: f, intensity: in})
		}
	}
	runs, err := runner.MapCtxPool(ctx, cfg.Workers, len(cells), engine.NewArena, func(a *engine.SimArena, i int) (RunReport, error) {
		return runCase(a, Case{
			Fault:          cells[i].fault,
			Intensity:      cells[i].intensity,
			Seed:           cfg.Seed,
			StreamID:       uint64(i), //nolint:gosec // small non-negative index
			Events:         cfg.Events,
			DisableMonitor: cfg.DisableMonitor,
		})
	})
	if err != nil {
		return nil, err
	}
	res := &Result{
		DisableMonitor: cfg.DisableMonitor,
		Events:         cfg.Events,
		Seed:           cfg.Seed,
		Runs:           runs,
	}
	for _, r := range runs {
		if !r.Oracle.OK() {
			res.FailedRuns++
		}
	}
	return res, nil
}

// Case identifies one campaign cell.
type Case struct {
	Fault          string
	Intensity      float64
	Seed           uint64
	StreamID       uint64
	Events         int
	DisableMonitor bool
}

// RunCase executes one cell: build the adversarial scenario, arm the
// oracle, simulate, and judge.
func RunCase(c Case) (RunReport, error) {
	return runCase(engine.NewArena(), c)
}

// runCase is RunCase inside a caller-owned simulation arena; the report
// it returns holds no pointers into arena memory, so the arena is free
// for reuse immediately.
func runCase(a *engine.SimArena, c Case) (RunReport, error) {
	model, ok := Lookup(c.Fault)
	if !ok {
		return RunReport{}, fmt.Errorf("faults: unknown fault model %q", c.Fault)
	}
	sc, meta := caseScenario(model, c)
	sys, err := a.Build(sc)
	if err != nil {
		return RunReport{}, fmt.Errorf("faults: %s@%g: %w", c.Fault, c.Intensity, err)
	}
	budget := interferenceBudget(sc, sys)
	sys.InstallOracle(budget)

	if err := sys.RunToCompletion(core.Horizon(sc)); err != nil {
		return RunReport{}, fmt.Errorf("faults: %s@%g: %w", c.Fault, c.Intensity, err)
	}
	if err := sys.CheckInvariants(); err != nil {
		return RunReport{}, fmt.Errorf("faults: %s@%g: %w", c.Fault, c.Intensity, err)
	}

	rep := RunReport{
		Fault:            c.Fault,
		Intensity:        c.Intensity,
		StreamID:         c.StreamID,
		AttackerArrivals: len(sc.IRQs[meta.attacker].Arrivals),
		Grants:           sys.Stats().InterposedGrants,
		DeniedViolation:  sys.Stats().DeniedViolation,
	}

	// Whole-run aggregate of invariant (a), for the report tables.
	elapsed := sys.Now().Sub(0)
	rep.Budget = budget(meta.victimPart, elapsed)
	for _, p := range sys.Partitions() {
		if p.Index != meta.attackerPart && p.StolenInterposed > rep.Interference {
			rep.Interference = p.StolenInterposed
		}
	}

	// Invariant (b): the victim's analytic delayed-handling bound with
	// the adversary's eq. (14) interference folded in. The enforced
	// condition is read post-run so learning monitors are covered.
	bounds := map[int]simtime.Duration{}
	victimModel, err := curves.DeltaFromTrace(sc.IRQs[meta.victim].Arrivals, 16)
	if err != nil {
		rep.BoundNote = fmt.Sprintf("victim trace model: %v", err)
	} else {
		extra := func(dt simtime.Duration) simtime.Duration { return budget(meta.victimPart, dt) }
		rt, err := core.ClassicBoundUnder(sc, meta.victim, victimModel, extra)
		if err != nil {
			rep.BoundNote = fmt.Sprintf("victim bound: %v", err)
		} else {
			rep.VictimLatencyBound = rt.WCRT
			bounds[meta.victim] = rt.WCRT
		}
	}
	//reprolint:allow arenaretain latency scan completes inside this job, before the worker's arena is reused
	for _, r := range sys.Log().Records {
		if r.Source == meta.victim {
			if lat := r.Done.Sub(r.Arrival); lat > rep.VictimMaxLatency {
				rep.VictimMaxLatency = lat
			}
		}
	}

	rep.Oracle = sys.CheckTemporalIndependence(bounds)
	if !rep.Oracle.OK() {
		fp, err := core.Fingerprint(sc)
		if err != nil {
			fp = fmt.Sprintf("unavailable: %v", err)
		}
		rep.Repro = &Reproducer{
			Fingerprint:    fp,
			Seed:           c.Seed,
			StreamID:       c.StreamID,
			Fault:          c.Fault,
			Intensity:      c.Intensity,
			Events:         c.Events,
			DisableMonitor: c.DisableMonitor,
			First:          rep.Oracle.Violations[0],
		}
	}
	return rep, nil
}

// caseMeta locates the scenario's actors.
type caseMeta struct {
	attacker     int // attacker IRQ index
	victim       int // victim IRQ index
	attackerPart int
	victimPart   int
}

// caseScenario builds the adversarial scenario for one cell: the
// paper's three-partition reference system with the fault model wired
// into partition 0's IRQ source and a benign victim source on
// partition 1. The attacker's monitoring condition depends on the
// model: burst-after-silence gets an l = 4 condition (it attacks the
// trace buffer), mode-flip gets a learning monitor whose learning
// phase exactly covers the model's benign prefix, everything else gets
// the paper's dmin.
func caseScenario(model Model, c Case) (core.Scenario, caseMeta) {
	us := simtime.Micros
	dmin := us(attackerDMinUs)
	asrc := rng.NewStream(c.Seed, 2*c.StreamID)
	vsrc := rng.NewStream(c.Seed, 2*c.StreamID+1)

	p := Params{DMin: dmin, Events: c.Events, Intensity: c.Intensity}
	attacker := core.IRQSpec{
		Name:      "attacker-" + model.Name(),
		Partition: 0,
		CTH:       us(handlerCTHUs),
		CBH:       us(handlerCBHUs),
	}
	switch model.Name() {
	case "burst-after-silence":
		cond, err := curves.NewDelta([]simtime.Duration{
			dmin, 22 * dmin / 10, 36 * dmin / 10, 5 * dmin,
		})
		if err != nil {
			panic(fmt.Sprintf("faults: l=4 condition: %v", err))
		}
		p.Condition = cond
		attacker.Condition = cond
	case "mode-flip":
		p.BenignEvents = c.Events / 3
		bound, err := curves.NewDelta([]simtime.Duration{
			dmin, 2 * dmin, 3 * dmin, 4 * dmin,
		})
		if err != nil {
			panic(fmt.Sprintf("faults: learn bound: %v", err))
		}
		attacker.Learn = &core.LearnSpec{L: 4, Events: p.BenignEvents, Bound: bound}
	default:
		attacker.DMin = dmin
	}
	attacker.Arrivals = model.Arrivals(asrc, p)

	victim := core.IRQSpec{
		Name:      "victim",
		Partition: 1,
		CTH:       us(handlerCTHUs),
		CBH:       us(handlerCBHUs),
		Arrivals: workload.Timestamps(workload.ExponentialClamped(
			vsrc, us(victimMeanUs), us(victimDMinUs), c.Events)),
	}

	sc := core.Scenario{
		Partitions: []core.PartitionSpec{
			{Name: "app1", Slot: us(slotApp1)},
			{Name: "app2", Slot: us(slotApp2)},
			{Name: "housekeeping", Slot: us(slotHousekeeping)},
		},
		IRQs:           []core.IRQSpec{attacker, victim},
		Mode:           hv.Monitored,
		Policy:         hv.DenyNearSlotEnd,
		DisableMonitor: c.DisableMonitor,
	}
	return sc, caseMeta{attacker: 0, victim: 1, attackerPart: 0, victimPart: 1}
}

// interferenceBudget builds the oracle's eq. (14) budget for a built
// system: for each victim partition, the sum over monitored sources
// subscribed elsewhere of η⁺_cond(Δt)·C'_BH. The enforced condition is
// read lazily from each monitor, so a learning source contributes
// nothing until FinishLearning — exact, because the hypervisor denies
// interposing while learning. The per-grant cost folds in the queue
// pop the simulated dispatcher pays on top of C_BH, mirroring how
// core.Analyze folds push/pop into the handler WCETs.
func interferenceBudget(sc core.Scenario, sys *hv.System) hv.InterferenceBudget {
	costs := sc.CostModel()
	srcs := sys.Sources()
	return func(victim int, dt simtime.Duration) simtime.Duration {
		var total simtime.Duration
		for _, src := range srcs {
			if src.Monitor == nil || len(src.Subscribers) != 1 || src.Subscribers[0] == victim {
				continue
			}
			cond := src.Monitor.Condition()
			if cond == nil {
				continue // still learning: interposing is denied
			}
			total += analysis.InterposedInterferenceDelta(dt, cond, costs, src.CBH+costs.QueuePop)
		}
		return total
	}
}
