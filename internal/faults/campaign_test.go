package faults

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/hv"
)

// With the monitor enabled, every fault model at every intensity must
// pass all three oracle invariants: interposed interference stays
// within the eq. (14) budget, the victim's measured latency stays
// under its analytic bound, and every monitor violation is demoted.
func TestCampaignMonitorOnPasses(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Events = 200
	cfg.Workers = 4
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Runs) != len(Names())*3 {
		t.Fatalf("got %d runs, want %d", len(res.Runs), len(Names())*3)
	}
	for _, r := range res.Runs {
		if !r.Oracle.OK() {
			t.Errorf("%s@%g: oracle violations: %v", r.Fault, r.Intensity, r.Oracle.Violations)
		}
		if r.Repro != nil {
			t.Errorf("%s@%g: unexpected reproducer: %s", r.Fault, r.Intensity, r.Repro)
		}
		if !r.Oracle.InterferenceChecked {
			t.Errorf("%s@%g: interference invariant not armed", r.Fault, r.Intensity)
		}
		if r.Oracle.LatencyChecked == 0 && r.BoundNote == "" {
			t.Errorf("%s@%g: latency invariant silently skipped", r.Fault, r.Intensity)
		}
		if r.Interference > r.Budget {
			t.Errorf("%s@%g: interference %v exceeds whole-run budget %v",
				r.Fault, r.Intensity, r.Interference, r.Budget)
		}
	}
	if res.FailedRuns != 0 {
		t.Fatalf("FailedRuns = %d, want 0", res.FailedRuns)
	}
	// The campaign must exercise both monitor outcomes somewhere:
	// admitted grants and demoted violations.
	var grants, denied uint64
	for _, r := range res.Runs {
		grants += r.Grants
		denied += r.DeniedViolation
	}
	if grants == 0 {
		t.Error("no run admitted a single interposed grant")
	}
	if denied == 0 {
		t.Error("no run demoted a single violation")
	}
}

// Ablation: with the monitor's verdict discarded, every babbling-idiot
// run must break the eq. (14) interference invariant and carry a
// reproducer naming the first offending event.
func TestCampaignAblationBabblingFails(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = []string{"babbling-idiot"}
	cfg.Events = 200
	cfg.DisableMonitor = true
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Runs) != 3 {
		t.Fatalf("got %d runs, want 3", len(res.Runs))
	}
	if res.FailedRuns != len(res.Runs) {
		t.Fatalf("FailedRuns = %d, want %d", res.FailedRuns, len(res.Runs))
	}
	for _, r := range res.Runs {
		var eq14 bool
		for _, v := range r.Oracle.Violations {
			if v.Invariant == hv.InvariantInterference {
				eq14 = true
				if v.Measured <= v.Bound {
					t.Errorf("%s@%g: violation measured %v within bound %v",
						r.Fault, r.Intensity, v.Measured, v.Bound)
				}
			}
		}
		if !eq14 {
			t.Errorf("%s@%g: no %s violation: %v", r.Fault, r.Intensity,
				hv.InvariantInterference, r.Oracle.Violations)
		}
		if r.Repro == nil {
			t.Fatalf("%s@%g: failed run without a reproducer", r.Fault, r.Intensity)
		}
		line := r.Repro.String()
		for _, want := range []string{"babbling-idiot", "seed=", "stream=", "scenario=", "disable_monitor=true"} {
			if !strings.Contains(line, want) {
				t.Errorf("reproducer %q missing %q", line, want)
			}
		}
		if r.Repro.Fingerprint == "" || strings.HasPrefix(r.Repro.Fingerprint, "unavailable") {
			t.Errorf("reproducer without a scenario fingerprint: %q", r.Repro.Fingerprint)
		}
	}
}

// Campaign results must be byte-identical regardless of worker count.
func TestCampaignDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Events = 120
	cfg.Intensities = []float64{0.5}
	one, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Run(workers=0): %v", err)
	}
	cfg.Workers = 8
	eight, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Run(workers=8): %v", err)
	}
	if !reflect.DeepEqual(one, eight) {
		t.Fatal("campaign results differ across worker counts")
	}
}

func TestRunCaseUnknownFault(t *testing.T) {
	if _, err := RunCase(Case{Fault: "no-such"}); err == nil {
		t.Fatal("RunCase accepted an unknown fault model")
	}
	cfg := Config{Faults: []string{"no-such"}}
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Fatal("Run accepted an unknown fault model")
	}
}
