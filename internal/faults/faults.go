// Package faults is the adversarial counterpart of internal/workload:
// a registry of deterministic, seed-reproducible fault models that
// generate hostile IRQ arrival streams for chaos campaigns. Where
// workload produces the well-behaved streams of §6.1, faults produces
// the misbehaving sources the paper's defense mechanism exists for —
// babbling idiots, drifting clocks, trace-buffer attacks, flaky lines
// and sources that turn hostile after the monitor's learning phase.
//
// Every model is a pure function of (rng stream, Params): no global
// state, no wall clock, so a campaign run is reproducible from its
// (fault, intensity, seed) triple alone — the precondition for the
// minimal reproducers the oracle emits (see campaign.go).
//
// Intensity semantics: 0 is the most benign variant of the fault and 1
// the most aggressive; every model degrades monotonically in between.
// Even at intensity 0 a model may violate its monitoring condition —
// the point of the registry is that the δ⁻ monitor, not the workload,
// is what keeps interference bounded.
package faults

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/curves"
	"repro/internal/rng"
	"repro/internal/simtime"
)

// Params parameterises one adversarial stream.
type Params struct {
	// DMin is δ⁻[0] of the monitoring condition under attack: the
	// minimum distance the monitor will enforce between grants.
	DMin simtime.Duration
	// Condition optionally gives the full l-entry condition; models
	// that attack the trace buffer (burst-after-silence) shape their
	// bursts against it. Nil falls back to an l = 1 condition of DMin.
	Condition *curves.Delta
	// Events is the number of arrivals to generate. Models that
	// simulate a dying line (stuck-line) may emit fewer.
	Events int
	// Intensity in [0, 1] scales aggressiveness (see package comment).
	Intensity float64
	// BenignEvents is the length of the well-behaved prefix for models
	// that flip mid-run (mode-flip): the attacker conforms for this
	// many arrivals — long enough to cover a monitor's learning phase —
	// then turns hostile.
	BenignEvents int
}

// cond returns the effective monitoring condition.
func (p Params) cond() *curves.Delta {
	if p.Condition != nil {
		return p.Condition
	}
	d, err := curves.NewDelta([]simtime.Duration{p.DMin})
	if err != nil {
		panic(fmt.Sprintf("faults: invalid dmin %v: %v", p.DMin, err))
	}
	return d
}

// Model is one named fault model. Arrivals must be deterministic given
// the rng stream and params, and must return sorted timestamps.
type Model interface {
	Name() string
	// Describe returns a one-line description for reports and -faults
	// listings.
	Describe() string
	// Arrivals generates the adversarial stream.
	Arrivals(src *rng.Source, p Params) []simtime.Time
}

// models is the registry, in stable report order.
var models = []Model{
	babblingIdiot{},
	jitterDrift{},
	burstAfterSilence{},
	stuckLine{},
	modeFlip{},
}

// Models returns the registered fault models in stable order.
func Models() []Model { return append([]Model(nil), models...) }

// Names returns the registered model names in stable order.
func Names() []string {
	out := make([]string, len(models))
	for i, m := range models {
		out[i] = m.Name()
	}
	return out
}

// Lookup resolves a model by name.
func Lookup(name string) (Model, bool) {
	for _, m := range models {
		if m.Name() == name {
			return m, true
		}
	}
	return nil, false
}

// scale interpolates linearly between lo (intensity 0) and hi
// (intensity 1), clamping intensity into [0, 1].
func scale(lo, hi float64, intensity float64) float64 {
	if intensity < 0 {
		intensity = 0
	}
	if intensity > 1 {
		intensity = 1
	}
	return lo + (hi-lo)*intensity
}

// clampDur floors a duration at one cycle: simultaneous arrivals on one
// line would just be lost at the non-counting controller anyway.
func clampDur(d simtime.Duration) simtime.Duration {
	if d < 1 {
		return 1
	}
	return d
}

// babblingIdiot emits sustained bursts far below dmin — the canonical
// misbehaving partition of the temporal-independence claim. Burst size
// grows with intensity; intra-burst spacing is a small fraction of dmin
// so (nearly) every burst event violates the monitoring condition.
type babblingIdiot struct{}

func (babblingIdiot) Name() string { return "babbling-idiot" }
func (babblingIdiot) Describe() string {
	return "sustained bursts at a fraction of dmin (classic babbling-idiot failure)"
}

func (babblingIdiot) Arrivals(src *rng.Source, p Params) []simtime.Time {
	burst := 2 + int(math.Round(scale(2, 14, p.Intensity)))
	gap := simtime.Duration(scale(2, 1, p.Intensity) * float64(p.DMin))
	intra := clampDur(p.DMin / 16)
	out := make([]simtime.Time, 0, p.Events)
	t := simtime.Time(clampDur(p.DMin / 4))
	for len(out) < p.Events {
		for b := 0; b < burst && len(out) < p.Events; b++ {
			out = append(out, t)
			t = t.Add(intra)
		}
		// Jittered inter-burst gap: bursts must not phase-lock with
		// the TDMA grid, or the stream only ever attacks one slot.
		t = t.Add(gap + simtime.Duration(src.Int63n(int64(p.DMin))))
	}
	return out
}

// jitterDrift models a degrading periodic source: nominally conforming
// (period above dmin) but with growing duty-cycle jitter and a slow
// clock drift that compresses the period over the run until pairs of
// arrivals violate dmin.
type jitterDrift struct{}

func (jitterDrift) Name() string { return "jitter-drift" }
func (jitterDrift) Describe() string {
	return "periodic source with duty-cycle jitter and clock drift compressing below dmin"
}

func (jitterDrift) Arrivals(src *rng.Source, p Params) []simtime.Time {
	if p.Events <= 0 {
		return nil
	}
	start := 1.25 * float64(p.DMin)
	end := scale(1.25, 0.4, p.Intensity) * float64(p.DMin)
	jitter := scale(0.05, 0.6, p.Intensity) * float64(p.DMin)
	out := make([]simtime.Time, 0, p.Events)
	t := simtime.Time(clampDur(p.DMin / 2))
	for i := 0; i < p.Events; i++ {
		// Linear drift of the nominal period across the run.
		frac := float64(i) / float64(p.Events)
		period := start + (end-start)*frac
		// Jitter is uniform in ±jitter/2 around the nominal release.
		j := (src.Float64() - 0.5) * jitter
		d := clampDur(simtime.Duration(math.Round(period + j)))
		t = t.Add(d)
		out = append(out, t)
	}
	return out
}

// burstAfterSilence attacks the l-entry δ⁻ trace buffer: after a long
// silence the buffer only holds stale grants, so a run of events can be
// admitted back to back. The model emits exactly such trains — silences
// beyond δ⁻[l−1] followed by bursts spaced around δ⁻[0] — tightening
// below the condition as intensity grows.
type burstAfterSilence struct{}

func (burstAfterSilence) Name() string { return "burst-after-silence" }
func (burstAfterSilence) Describe() string {
	return "correlated silence-then-burst trains shaped against the l-entry trace buffer"
}

func (burstAfterSilence) Arrivals(src *rng.Source, p Params) []simtime.Time {
	cond := p.cond()
	l := cond.Len()
	dmax := cond.Dist[l-1]
	// Burst spacing shrinks from exactly δ⁻[0] (legal) to δ⁻[0]/4.
	spacing := clampDur(simtime.Duration(scale(1.0, 0.25, p.Intensity) * float64(cond.Dist[0])))
	burst := 2 * (l + 1)
	out := make([]simtime.Time, 0, p.Events)
	t := simtime.Time(clampDur(simtime.Duration(dmax)))
	for len(out) < p.Events {
		for b := 0; b < burst && len(out) < p.Events; b++ {
			out = append(out, t)
			t = t.Add(spacing)
		}
		// Silence long enough to age every trace-buffer entry out.
		silence := 2*dmax + simtime.Duration(src.Int63n(int64(dmax)))
		t = t.Add(silence)
	}
	return out
}

// stuckLine models a flaky interrupt line: a benign stream that loses
// random arrivals (dropped edges) and eventually sticks — goes
// permanently silent partway through the run. The oracle must hold
// trivially; the robustness target is the machinery around it (empty
// tails, short streams, zero-grant runs).
type stuckLine struct{}

func (stuckLine) Name() string { return "stuck-line" }
func (stuckLine) Describe() string {
	return "benign stream with randomly lost edges that goes permanently silent mid-run"
}

func (stuckLine) Arrivals(src *rng.Source, p Params) []simtime.Time {
	if p.Events <= 0 {
		return nil
	}
	dropProb := scale(0, 0.5, p.Intensity)
	alive := p.Events - int(math.Round(scale(0, 0.8, p.Intensity)*float64(p.Events)))
	if alive < 1 {
		alive = 1
	}
	mean := 1.5 * float64(p.DMin)
	out := make([]simtime.Time, 0, alive)
	t := simtime.Time(0)
	for i := 0; i < p.Events && len(out) < alive; i++ {
		d := clampDur(simtime.Duration(math.Round(src.Exp(mean))))
		if d < p.DMin {
			d = p.DMin
		}
		t = t.Add(d)
		if src.Float64() < dropProb {
			continue // edge lost before the controller latched it
		}
		out = append(out, t)
	}
	if len(out) == 0 {
		out = append(out, simtime.Time(clampDur(p.DMin)))
	}
	return out
}

// modeFlip is the insider threat: a source that behaves during the
// monitor's learning phase — a clean sporadic pattern Algorithm 1 will
// happily learn — and turns into a babbling idiot the moment the
// learning window closes. The lifted condition (Algorithm 2) is what
// keeps the hostile phase bounded.
type modeFlip struct{}

func (modeFlip) Name() string { return "mode-flip" }
func (modeFlip) Describe() string {
	return "conforming during the learning phase, babbling-idiot bursts afterwards"
}

func (modeFlip) Arrivals(src *rng.Source, p Params) []simtime.Time {
	benign := p.BenignEvents
	if benign <= 0 {
		benign = p.Events / 3
	}
	if benign > p.Events {
		benign = p.Events
	}
	out := make([]simtime.Time, 0, p.Events)
	t := simtime.Time(clampDur(p.DMin))
	for i := 0; i < benign; i++ {
		d := p.DMin + simtime.Duration(math.Round(src.Exp(0.5*float64(p.DMin))))
		t = t.Add(clampDur(d))
		out = append(out, t)
	}
	// Hostile phase: dense bursts like babbling-idiot, scaled by
	// intensity.
	burst := 2 + int(math.Round(scale(2, 12, p.Intensity)))
	intra := clampDur(p.DMin / 12)
	for len(out) < p.Events {
		for b := 0; b < burst && len(out) < p.Events; b++ {
			t = t.Add(intra)
			out = append(out, t)
		}
		t = t.Add(p.DMin + simtime.Duration(src.Int63n(int64(p.DMin))))
	}
	return out
}

// Wrap superimposes a fault model's adversarial stream onto an existing
// benign arrival stream (merging and re-sorting): the idiom for
// injecting a fault into one source of a larger scenario without
// replacing its nominal workload.
func Wrap(base []simtime.Time, m Model, src *rng.Source, p Params) []simtime.Time {
	adv := m.Arrivals(src, p)
	out := make([]simtime.Time, 0, len(base)+len(adv))
	out = append(out, base...)
	out = append(out, adv...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	// Nudge exact collisions apart by one cycle: the engine and the
	// monitor both require strictly increasing arrival times.
	for i := 1; i < len(out); i++ {
		if out[i] <= out[i-1] {
			out[i] = out[i-1].Add(1)
		}
	}
	return out
}
