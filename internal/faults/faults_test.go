package faults

import (
	"reflect"
	"testing"

	"repro/internal/rng"
	"repro/internal/simtime"
)

func testParams(events int) Params {
	return Params{DMin: simtime.Micros(1344), Events: events}
}

func TestRegistry(t *testing.T) {
	names := Names()
	want := []string{"babbling-idiot", "jitter-drift", "burst-after-silence", "stuck-line", "mode-flip"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for _, n := range names {
		m, ok := Lookup(n)
		if !ok {
			t.Fatalf("Lookup(%q) missing", n)
		}
		if m.Name() != n {
			t.Errorf("Lookup(%q).Name() = %q", n, m.Name())
		}
		if m.Describe() == "" {
			t.Errorf("%s: empty description", n)
		}
	}
	if _, ok := Lookup("no-such-model"); ok {
		t.Fatal("Lookup accepted an unknown name")
	}
}

// Every model must emit a strictly increasing, positive arrival
// sequence — the hv engine and curves.DeltaFromTrace both require it.
func TestArrivalsStrictlyMonotone(t *testing.T) {
	for _, m := range Models() {
		for _, intensity := range []float64{0, 0.25, 0.5, 1.0} {
			p := testParams(200)
			p.Intensity = intensity
			arr := m.Arrivals(rng.New(7), p)
			if len(arr) == 0 {
				t.Fatalf("%s@%g: no arrivals", m.Name(), intensity)
			}
			if arr[0] <= 0 {
				t.Fatalf("%s@%g: first arrival %v not positive", m.Name(), intensity, arr[0])
			}
			for i := 1; i < len(arr); i++ {
				if arr[i] <= arr[i-1] {
					t.Fatalf("%s@%g: arrivals[%d]=%v <= arrivals[%d]=%v",
						m.Name(), intensity, i, arr[i], i-1, arr[i-1])
				}
			}
		}
	}
}

// Same seed → byte-identical streams; the whole chaos layer leans on
// this for reproducers.
func TestArrivalsDeterministic(t *testing.T) {
	for _, m := range Models() {
		p := testParams(150)
		p.Intensity = 0.7
		a := m.Arrivals(rng.NewStream(42, 3), p)
		b := m.Arrivals(rng.NewStream(42, 3), p)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: same seed produced different arrivals", m.Name())
		}
		c := m.Arrivals(rng.NewStream(42, 4), p)
		if reflect.DeepEqual(a, c) {
			t.Errorf("%s: different streams produced identical arrivals", m.Name())
		}
	}
}

// The babbling idiot must actually babble: a large share of adjacent
// gaps below dmin.
func TestBabblingIdiotViolatesDMin(t *testing.T) {
	m, _ := Lookup("babbling-idiot")
	p := testParams(300)
	p.Intensity = 1.0
	arr := m.Arrivals(rng.New(1), p)
	var under int
	for i := 1; i < len(arr); i++ {
		if arr[i].Sub(arr[i-1]) < p.DMin {
			under++
		}
	}
	if frac := float64(under) / float64(len(arr)-1); frac < 0.5 {
		t.Fatalf("only %.0f%% of gaps violate dmin, want a majority", 100*frac)
	}
}

// The mode flip must be clean: every gap in the benign prefix honours
// dmin, and the first hostile gap violates it.
func TestModeFlipBenignPrefix(t *testing.T) {
	m, _ := Lookup("mode-flip")
	p := testParams(300)
	p.Intensity = 1.0
	p.BenignEvents = 100
	arr := m.Arrivals(rng.New(9), p)
	if len(arr) <= p.BenignEvents {
		t.Fatalf("only %d arrivals, want benign prefix (%d) plus a hostile phase", len(arr), p.BenignEvents)
	}
	for i := 1; i < p.BenignEvents; i++ {
		if d := arr[i].Sub(arr[i-1]); d < p.DMin {
			t.Fatalf("benign gap %d is %v < dmin %v", i, d, p.DMin)
		}
	}
	var under int
	for i := p.BenignEvents + 1; i < len(arr); i++ {
		if arr[i].Sub(arr[i-1]) < p.DMin {
			under++
		}
	}
	if under == 0 {
		t.Fatal("hostile phase never violates dmin")
	}
}

func TestWrapMerges(t *testing.T) {
	m, _ := Lookup("babbling-idiot")
	p := testParams(50)
	p.Intensity = 0.5
	base := []simtime.Time{simtime.Time(0).Add(simtime.Micros(100)), simtime.Time(0).Add(simtime.Micros(900000))}
	out := Wrap(base, m, rng.New(3), p)
	if len(out) < len(base)+p.Events {
		t.Fatalf("Wrap dropped events: got %d", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i] <= out[i-1] {
			t.Fatalf("Wrap output not strictly increasing at %d", i)
		}
	}
}
