// Package guestos models the guest operating system running inside a
// hypervisor partition — a uC/OS-II-style preemptive fixed-priority RTOS
// (the guest of the paper's uC/OS-MMU platform): up to 64 tasks at unique
// priorities, a ready bitmap, and periodic task activations.
//
// The guest does not execute code; it is advanced over the CPU
// availability windows its partition receives from the hypervisor
// (its own TDMA slots, minus time stolen by interposed bottom handlers).
// Within a window it simulates preemptive priority scheduling
// analytically and records per-task response times — which is exactly
// what "sufficient temporal independence" constrains: integration tests
// compare guest response times with and without foreign interposed IRQs
// against the interference bound of eq. (14).
package guestos

import (
	"errors"
	"fmt"
	"math"
	"math/bits"

	"repro/internal/simtime"
)

// MaxTasks mirrors uC/OS-II's 64 priority levels.
const MaxTasks = 64

// Task is a guest task. Priority equals its index in the OS (lower =
// more urgent), as in uC/OS-II where priority is identity.
type Task struct {
	Name   string
	Period simtime.Duration // 0 = background task (unless Sporadic)
	WCET   simtime.Duration // execution demand per activation
	Offset simtime.Duration // first release (periodic tasks)
	// Deadline for miss accounting; 0 means implicit (= Period).
	Deadline simtime.Duration
	// Sporadic tasks have no periodic release; they are activated
	// externally via OS.Activate — e.g. by an IRQ bottom handler
	// signalling the guest (the hypervisor couples a source to a
	// guest task through hv.SourceConfig.GuestTask).
	Sporadic bool
}

// TaskStats accumulates per-task measurements.
type TaskStats struct {
	Activations uint64
	Completions uint64
	Misses      uint64
	CPUTime     simtime.Duration
	WCRT        simtime.Duration // worst observed response time
	SumRT       simtime.Duration // for mean response time
	Backlog     int64            // pending (released, uncompleted) jobs
}

// MeanRT returns the mean observed response time.
func (s TaskStats) MeanRT() simtime.Duration {
	if s.Completions == 0 {
		return 0
	}
	return simtime.Duration(int64(s.SumRT) / int64(s.Completions))
}

// job is one pending activation.
type job struct {
	release   simtime.Time
	remaining simtime.Duration
}

// OS is the guest operating system state of one partition.
type OS struct {
	Name  string
	tasks []Task
	stats []TaskStats
	// pending activations per task, FIFO (uC/OS-II queues events in
	// order; one entry per released, uncompleted job).
	queues [][]job
	// next release time per periodic task.
	nextRel []simtime.Time
	ready   uint64 // bitmap: bit p set = task p has a pending job
	// ctxSwitches counts intra-guest task switches.
	ctxSwitches uint64
	lastRunning int // task index last given the CPU, -1 initially
	advancedTo  simtime.Time
}

// New returns an empty guest OS.
func New(name string) *OS {
	return &OS{Name: name, lastRunning: -1}
}

// AddTask registers a task at the next free (lowest-urgency) priority
// and returns its priority index.
func (os *OS) AddTask(t Task) (int, error) {
	if len(os.tasks) >= MaxTasks {
		return 0, errors.New("guestos: task limit reached")
	}
	if t.Period < 0 || t.WCET < 0 || t.Offset < 0 {
		return 0, errors.New("guestos: negative task parameter")
	}
	if t.Period > 0 && t.WCET > t.Period {
		return 0, fmt.Errorf("guestos: task %q WCET %v exceeds period %v", t.Name, t.WCET, t.Period)
	}
	if t.Sporadic && t.Period > 0 {
		return 0, fmt.Errorf("guestos: task %q cannot be both periodic and sporadic", t.Name)
	}
	if t.Sporadic && t.WCET <= 0 {
		return 0, fmt.Errorf("guestos: sporadic task %q needs a positive WCET", t.Name)
	}
	if t.Deadline == 0 {
		t.Deadline = t.Period
	}
	os.tasks = append(os.tasks, t)
	os.stats = append(os.stats, TaskStats{})
	os.queues = append(os.queues, nil)
	os.nextRel = append(os.nextRel, simtime.Time(t.Offset))
	p := len(os.tasks) - 1
	if t.Period == 0 && !t.Sporadic {
		// Background task: release one everlasting job immediately.
		os.queues[p] = append(os.queues[p], job{release: 0, remaining: simtime.Infinity})
		os.ready |= 1 << uint(p)
	}
	return p, nil
}

// Activate releases one job of sporadic task p at time t (e.g. from an
// IRQ bottom handler signalling the guest). Activations may arrive while
// the partition has no CPU; the job executes at the next supply window.
func (os *OS) Activate(p int, t simtime.Time) error {
	if p < 0 || p >= len(os.tasks) {
		return fmt.Errorf("guestos: no task %d", p)
	}
	task := os.tasks[p]
	if !task.Sporadic {
		return fmt.Errorf("guestos: task %q is not sporadic", task.Name)
	}
	os.queues[p] = append(os.queues[p], job{release: t, remaining: task.WCET})
	os.stats[p].Activations++
	os.ready |= 1 << uint(p)
	return nil
}

// Tasks returns the number of registered tasks.
func (os *OS) Tasks() int { return len(os.tasks) }

// TaskInfo returns the declaration of task p.
func (os *OS) TaskInfo(p int) (Task, bool) {
	if p < 0 || p >= len(os.tasks) {
		return Task{}, false
	}
	return os.tasks[p], true
}

// Stats returns a copy of task p's statistics.
func (os *OS) Stats(p int) TaskStats {
	st := os.stats[p]
	st.Backlog = int64(len(os.queues[p]))
	if t := os.tasks[p]; t.Period == 0 && !t.Sporadic && st.Backlog > 0 {
		st.Backlog-- // the everlasting background job is not backlog
	}
	return st
}

// CtxSwitches returns the number of intra-guest task switches observed.
func (os *OS) CtxSwitches() uint64 { return os.ctxSwitches }

// releaseUpTo releases all periodic activations due at or before t.
func (os *OS) releaseUpTo(t simtime.Time) {
	for p, task := range os.tasks {
		if task.Period == 0 {
			continue
		}
		for os.nextRel[p] <= t {
			os.queues[p] = append(os.queues[p], job{release: os.nextRel[p], remaining: task.WCET})
			os.stats[p].Activations++
			os.ready |= 1 << uint(p)
			os.nextRel[p] = os.nextRel[p].Add(task.Period)
		}
	}
}

// nextRelease returns the earliest pending periodic release, or Never.
func (os *OS) nextRelease() simtime.Time {
	next := simtime.Never
	for p, task := range os.tasks {
		if task.Period == 0 {
			continue
		}
		if os.nextRel[p] < next {
			next = os.nextRel[p]
		}
	}
	return next
}

// readyAt returns the most urgent task with an eligible (released) job
// at time t, or -1. Sporadic activations may sit in the queue with a
// future release time.
func (os *OS) readyAt(t simtime.Time) int {
	r := os.ready
	for r != 0 {
		p := bits.TrailingZeros64(r)
		if os.queues[p][0].release <= t {
			return p
		}
		r &^= 1 << uint(p)
	}
	return -1
}

// nextQueuedRelease returns the earliest queued-but-not-yet-eligible job
// release after t, or Never.
func (os *OS) nextQueuedRelease(t simtime.Time) simtime.Time {
	next := simtime.Never
	r := os.ready
	for r != 0 {
		p := bits.TrailingZeros64(r)
		if rel := os.queues[p][0].release; rel > t && rel < next {
			next = rel
		}
		r &^= 1 << uint(p)
	}
	return next
}

// Advance gives the guest the CPU over the half-open window [from, to)
// and simulates its scheduling. Windows must be presented in
// non-decreasing order; time between windows (foreign slots, stolen
// interposed time) passes without execution but releases still occur.
func (os *OS) Advance(from, to simtime.Time) {
	if to < from {
		panic(fmt.Sprintf("guestos: Advance window inverted [%v, %v)", from, to))
	}
	if from < os.advancedTo {
		panic(fmt.Sprintf("guestos: Advance window [%v, %v) overlaps previous end %v", from, to, os.advancedTo))
	}
	os.advancedTo = to
	t := from
	os.releaseUpTo(t)
	for t < to {
		p := os.readyAt(t)
		if p < 0 {
			// Idle until the next (periodic or queued sporadic)
			// release or the window end.
			nr := simtime.MinT(os.nextRelease(), os.nextQueuedRelease(t))
			if nr >= to {
				return
			}
			t = nr
			os.releaseUpTo(t)
			continue
		}
		if p != os.lastRunning {
			os.ctxSwitches++
			os.lastRunning = p
		}
		j := &os.queues[p][0]
		// Run until completion, the next release (potential
		// preemption), or the window end — whichever is first.
		end := to
		if done := t.Add(j.remaining); done < end {
			end = done
		}
		if nr := os.nextRelease(); nr > t && nr < end {
			end = nr
		}
		if nr := os.nextQueuedRelease(t); nr > t && nr < end {
			end = nr
		}
		ran := end.Sub(t)
		j.remaining -= ran
		os.stats[p].CPUTime += ran
		t = end
		if j.remaining == 0 {
			os.completeJob(p, t)
		}
		os.releaseUpTo(t)
	}
}

func (os *OS) completeJob(p int, t simtime.Time) {
	q := os.queues[p]
	j := q[0]
	os.queues[p] = q[1:]
	if len(os.queues[p]) == 0 {
		os.ready &^= 1 << uint(p)
	}
	st := &os.stats[p]
	st.Completions++
	rt := t.Sub(j.release)
	st.SumRT += rt
	if rt > st.WCRT {
		st.WCRT = rt
	}
	if dl := os.tasks[p].Deadline; dl > 0 && rt > dl {
		st.Misses++
	}
}

// State is a deep copy of a guest OS's mutable scheduling state, for
// simulation snapshots. The task declarations themselves are not
// captured: they are immutable after construction, and tasks must not
// be added between SaveState and RestoreState.
type State struct {
	stats       []TaskStats
	queues      [][]job
	nextRel     []simtime.Time
	ready       uint64
	ctxSwitches uint64
	lastRunning int
	advancedTo  simtime.Time
}

// SaveState captures the guest's scheduling state.
func (os *OS) SaveState() *State {
	st := &State{
		stats:       append([]TaskStats(nil), os.stats...),
		queues:      make([][]job, len(os.queues)),
		nextRel:     append([]simtime.Time(nil), os.nextRel...),
		ready:       os.ready,
		ctxSwitches: os.ctxSwitches,
		lastRunning: os.lastRunning,
		advancedTo:  os.advancedTo,
	}
	for p, q := range os.queues {
		st.queues[p] = append([]job(nil), q...)
	}
	return st
}

// RestoreState reinstates a state captured from this guest (the task
// set must be unchanged).
func (os *OS) RestoreState(st *State) {
	if len(st.stats) != len(os.tasks) {
		panic(fmt.Sprintf("guestos: restore of %d-task state into %d-task OS", len(st.stats), len(os.tasks)))
	}
	copy(os.stats, st.stats)
	for p, q := range st.queues {
		os.queues[p] = append(os.queues[p][:0], q...)
	}
	copy(os.nextRel, st.nextRel)
	os.ready = st.ready
	os.ctxSwitches = st.ctxSwitches
	os.lastRunning = st.lastRunning
	os.advancedTo = st.advancedTo
}

// Utilization returns the total demand of the periodic task set.
func (os *OS) Utilization() float64 {
	var u float64
	for _, t := range os.tasks {
		if t.Period > 0 {
			u += float64(t.WCET) / float64(t.Period)
		}
	}
	return u
}

// SanityCheck validates invariants after a run: CPU time per task never
// exceeds activations × WCET, completions never exceed activations, and
// the background task absorbed the remaining time.
func (os *OS) SanityCheck() error {
	for p, task := range os.tasks {
		st := os.stats[p]
		if task.Period == 0 && !task.Sporadic {
			continue
		}
		if st.Completions > st.Activations {
			return fmt.Errorf("guestos: task %q completed %d > activated %d", task.Name, st.Completions, st.Activations)
		}
		maxCPU := simtime.Duration(st.Activations) * task.WCET
		if st.CPUTime > maxCPU {
			return fmt.Errorf("guestos: task %q cpu %v exceeds demand %v", task.Name, st.CPUTime, maxCPU)
		}
	}
	return nil
}

// ResponseTimeBoundRM returns the classic rate-monotonic busy-window
// response time of task p assuming the full CPU (no hypervisor), for
// comparison against measured WCRTs in tests. Returns math.MaxInt64 on
// overload.
func (os *OS) ResponseTimeBoundRM(p int) simtime.Duration {
	task := os.tasks[p]
	if task.Period == 0 {
		return simtime.Duration(math.MaxInt64)
	}
	r := task.WCET
	for iter := 0; iter < 10000; iter++ {
		var demand simtime.Duration
		for hp := 0; hp < p; hp++ {
			t := os.tasks[hp]
			if t.Period == 0 {
				return simtime.Duration(math.MaxInt64) // background above p never idles
			}
			demand += simtime.Duration(simtime.CeilDiv(simtime.Duration(r), t.Period)) * t.WCET
		}
		next := task.WCET + demand
		if next == r {
			return r
		}
		r = next
		if r > 1000*task.Period {
			return simtime.Duration(math.MaxInt64)
		}
	}
	return simtime.Duration(math.MaxInt64)
}
