package guestos

import (
	"testing"

	"repro/internal/simtime"
)

func ms(v int64) simtime.Duration { return simtime.Millis(v) }
func us(v int64) simtime.Duration { return simtime.Micros(v) }

func TestSingleTaskFullCPU(t *testing.T) {
	g := New("g")
	p, err := g.AddTask(Task{Name: "t", Period: ms(10), WCET: ms(2)})
	if err != nil {
		t.Fatal(err)
	}
	g.Advance(0, simtime.Time(ms(100)))
	st := g.Stats(p)
	if st.Activations != 10 {
		t.Fatalf("activations = %d, want 10", st.Activations)
	}
	if st.Completions != 10 {
		t.Fatalf("completions = %d, want 10", st.Completions)
	}
	// With the full CPU, response time = WCET.
	if st.WCRT != ms(2) {
		t.Fatalf("WCRT = %v, want 2ms", st.WCRT)
	}
	if st.Misses != 0 {
		t.Fatalf("misses = %d", st.Misses)
	}
	if st.CPUTime != ms(20) {
		t.Fatalf("CPU time = %v, want 20ms", st.CPUTime)
	}
}

func TestPriorityPreemption(t *testing.T) {
	g := New("g")
	hi, _ := g.AddTask(Task{Name: "hi", Period: ms(10), WCET: ms(1)})
	lo, _ := g.AddTask(Task{Name: "lo", Period: ms(50), WCET: ms(20)})
	g.Advance(0, simtime.Time(ms(200)))
	hiSt, loSt := g.Stats(hi), g.Stats(lo)
	// The high-priority task is never delayed.
	if hiSt.WCRT != ms(1) {
		t.Fatalf("hi WCRT = %v, want 1ms", hiSt.WCRT)
	}
	// The low-priority task is preempted twice per invocation:
	// R = 20 + ⌈R/10⌉·1 → 20+3 = 23 (releases at 0, hi at 0/10/20).
	if loSt.WCRT != ms(23) {
		t.Fatalf("lo WCRT = %v, want 23ms", loSt.WCRT)
	}
	if loSt.Misses != 0 {
		t.Fatalf("lo misses = %d", loSt.Misses)
	}
}

func TestRMBoundMatchesSimulation(t *testing.T) {
	g := New("g")
	g.AddTask(Task{Name: "t1", Period: ms(10), WCET: ms(2)})
	g.AddTask(Task{Name: "t2", Period: ms(20), WCET: ms(5)})
	p3, _ := g.AddTask(Task{Name: "t3", Period: ms(40), WCET: ms(8)})
	g.Advance(0, simtime.Time(ms(2000)))
	bound := g.ResponseTimeBoundRM(p3)
	st := g.Stats(p3)
	if st.WCRT > bound {
		t.Fatalf("measured WCRT %v exceeds analytic bound %v", st.WCRT, bound)
	}
	// Synchronous release at t=0 is the critical instant: the bound is
	// attained exactly.
	if st.WCRT != bound {
		t.Fatalf("measured WCRT %v != critical-instant bound %v", st.WCRT, bound)
	}
}

func TestWindowedSupplyDefersWork(t *testing.T) {
	// Same task set, but the guest only owns every other 5 ms window —
	// TDMA-style supply. Work released in the gaps executes later.
	g := New("g")
	p, _ := g.AddTask(Task{Name: "t", Period: ms(10), WCET: ms(2), Deadline: ms(10)})
	for w := int64(0); w < 20; w++ {
		from := simtime.Time(ms(10 * w))
		g.Advance(from, from.Add(ms(5)))
		// [5,10) of each 10ms period belongs to another partition.
	}
	st := g.Stats(p)
	if st.Completions == 0 {
		t.Fatal("no completions under windowed supply")
	}
	if st.WCRT > ms(10) {
		t.Fatalf("WCRT = %v under half supply, want ≤ 10ms", st.WCRT)
	}
	if err := g.SanityCheck(); err != nil {
		t.Fatal(err)
	}
}

func TestReleasesDuringForeignSlots(t *testing.T) {
	// A release entirely inside a foreign window must still be seen at
	// the next own window.
	g := New("g")
	p, _ := g.AddTask(Task{Name: "t", Period: ms(10), WCET: ms(1), Offset: ms(7)})
	g.Advance(0, simtime.Time(ms(5)))
	// Release at 7ms happens here, in foreign time.
	g.Advance(simtime.Time(ms(10)), simtime.Time(ms(15)))
	st := g.Stats(p)
	if st.Activations < 1 || st.Completions < 1 {
		t.Fatalf("activation released in foreign window lost: %+v", st)
	}
	// Completed at 10ms+1ms = 11ms, released at 7ms → RT = 4ms.
	if st.WCRT != ms(4) {
		t.Fatalf("WCRT = %v, want 4ms", st.WCRT)
	}
}

func TestBackgroundTaskSoaksIdle(t *testing.T) {
	g := New("g")
	hi, _ := g.AddTask(Task{Name: "hi", Period: ms(10), WCET: ms(2)})
	bg, _ := g.AddTask(Task{Name: "bg", Period: 0})
	g.Advance(0, simtime.Time(ms(100)))
	hiSt, bgSt := g.Stats(hi), g.Stats(bg)
	if hiSt.CPUTime != ms(20) {
		t.Fatalf("hi CPU = %v", hiSt.CPUTime)
	}
	if bgSt.CPUTime != ms(80) {
		t.Fatalf("bg CPU = %v, want the remaining 80ms", bgSt.CPUTime)
	}
}

func TestDeadlineMisses(t *testing.T) {
	// Overloaded task set: the low-priority task misses deadlines.
	g := New("g")
	g.AddTask(Task{Name: "hog", Period: ms(10), WCET: ms(8)})
	lo, _ := g.AddTask(Task{Name: "lo", Period: ms(20), WCET: ms(6), Deadline: ms(20)})
	g.Advance(0, simtime.Time(ms(400)))
	st := g.Stats(lo)
	if st.Misses == 0 {
		t.Fatal("overloaded task missed no deadlines")
	}
	if st.Backlog == 0 {
		t.Fatal("overloaded task has no backlog")
	}
}

func TestAddTaskValidation(t *testing.T) {
	g := New("g")
	if _, err := g.AddTask(Task{Period: -1}); err == nil {
		t.Error("negative period accepted")
	}
	if _, err := g.AddTask(Task{Period: ms(10), WCET: ms(20)}); err == nil {
		t.Error("WCET > period accepted")
	}
	for i := 0; i < MaxTasks; i++ {
		if _, err := g.AddTask(Task{Name: "f", Period: ms(1000), WCET: us(1)}); err != nil {
			t.Fatalf("task %d rejected: %v", i, err)
		}
	}
	if _, err := g.AddTask(Task{Period: ms(10), WCET: ms(1)}); err == nil {
		t.Error("65th task accepted")
	}
}

func TestAdvanceWindowValidation(t *testing.T) {
	g := New("g")
	g.AddTask(Task{Name: "t", Period: ms(10), WCET: ms(1)})
	g.Advance(0, simtime.Time(ms(10)))
	t.Run("inverted", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("inverted window did not panic")
			}
		}()
		g.Advance(simtime.Time(ms(20)), simtime.Time(ms(15)))
	})
	t.Run("overlapping", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("overlapping window did not panic")
			}
		}()
		g.Advance(simtime.Time(ms(5)), simtime.Time(ms(25)))
	})
}

func TestUtilization(t *testing.T) {
	g := New("g")
	g.AddTask(Task{Name: "a", Period: ms(10), WCET: ms(2)}) // 0.2
	g.AddTask(Task{Name: "b", Period: ms(20), WCET: ms(5)}) // 0.25
	g.AddTask(Task{Name: "bg", Period: 0})                  // excluded
	if u := g.Utilization(); u < 0.449 || u > 0.451 {
		t.Fatalf("Utilization = %g, want 0.45", u)
	}
}

func TestCtxSwitchesCounted(t *testing.T) {
	g := New("g")
	g.AddTask(Task{Name: "hi", Period: ms(10), WCET: ms(1)})
	g.AddTask(Task{Name: "bg", Period: 0})
	g.Advance(0, simtime.Time(ms(100)))
	// Each hi activation preempts bg and returns: ≥ 2 switches per
	// period after the first.
	if g.CtxSwitches() < 19 {
		t.Fatalf("CtxSwitches = %d, want ≥ 19", g.CtxSwitches())
	}
}

func TestSanityCheckCatchesNothingOnHealthyRun(t *testing.T) {
	g := New("g")
	g.AddTask(Task{Name: "a", Period: ms(7), WCET: ms(2)})
	g.AddTask(Task{Name: "b", Period: ms(13), WCET: ms(3)})
	g.Advance(0, simtime.Time(ms(500)))
	if err := g.SanityCheck(); err != nil {
		t.Fatal(err)
	}
}
