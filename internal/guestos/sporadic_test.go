package guestos

import (
	"testing"

	"repro/internal/simtime"
)

func TestSporadicActivation(t *testing.T) {
	g := New("g")
	p, err := g.AddTask(Task{Name: "s", Sporadic: true, WCET: ms(1), Deadline: ms(10)})
	if err != nil {
		t.Fatal(err)
	}
	g.AddTask(Task{Name: "bg"})
	if err := g.Activate(p, simtime.Time(ms(2))); err != nil {
		t.Fatal(err)
	}
	g.Advance(0, simtime.Time(ms(10)))
	st := g.Stats(p)
	if st.Activations != 1 || st.Completions != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Released at 2 ms with the CPU free: completes at 3 ms, RT 1 ms.
	if st.WCRT != ms(1) {
		t.Fatalf("WCRT = %v", st.WCRT)
	}
}

func TestSporadicActivationOutsideSupply(t *testing.T) {
	// Activation while the partition has no CPU: the job waits for the
	// next supply window.
	g := New("g")
	p, _ := g.AddTask(Task{Name: "s", Sporadic: true, WCET: ms(1), Deadline: ms(50)})
	g.Advance(0, simtime.Time(ms(5)))
	if err := g.Activate(p, simtime.Time(ms(7))); err != nil {
		t.Fatal(err)
	}
	g.Advance(simtime.Time(ms(20)), simtime.Time(ms(30)))
	st := g.Stats(p)
	if st.Completions != 1 {
		t.Fatalf("completions = %d", st.Completions)
	}
	// Completes at 21 ms, released at 7 ms → RT = 14 ms.
	if st.WCRT != ms(14) {
		t.Fatalf("WCRT = %v", st.WCRT)
	}
}

func TestSporadicPriorityOverBackground(t *testing.T) {
	g := New("g")
	s, _ := g.AddTask(Task{Name: "s", Sporadic: true, WCET: ms(2)})
	bg, _ := g.AddTask(Task{Name: "bg"})
	g.Activate(s, 0)
	g.Advance(0, simtime.Time(ms(10)))
	if got := g.Stats(s).CPUTime; got != ms(2) {
		t.Fatalf("sporadic CPU = %v", got)
	}
	if got := g.Stats(bg).CPUTime; got != ms(8) {
		t.Fatalf("background CPU = %v", got)
	}
}

func TestSporadicValidation(t *testing.T) {
	g := New("g")
	if _, err := g.AddTask(Task{Name: "bad", Sporadic: true, Period: ms(5), WCET: ms(1)}); err == nil {
		t.Error("sporadic+periodic accepted")
	}
	if _, err := g.AddTask(Task{Name: "bad2", Sporadic: true}); err == nil {
		t.Error("sporadic without WCET accepted")
	}
	p, _ := g.AddTask(Task{Name: "per", Period: ms(5), WCET: ms(1)})
	if err := g.Activate(p, 0); err == nil {
		t.Error("Activate on periodic task accepted")
	}
	if err := g.Activate(99, 0); err == nil {
		t.Error("Activate on unknown task accepted")
	}
}

func TestSporadicBacklogCounted(t *testing.T) {
	g := New("g")
	p, _ := g.AddTask(Task{Name: "s", Sporadic: true, WCET: ms(1)})
	g.Activate(p, 0)
	g.Activate(p, 0)
	g.Activate(p, 0)
	if got := g.Stats(p).Backlog; got != 3 {
		t.Fatalf("backlog = %d", got)
	}
	g.Advance(0, simtime.Time(ms(10)))
	if got := g.Stats(p).Backlog; got != 0 {
		t.Fatalf("backlog after supply = %d", got)
	}
	if err := g.SanityCheck(); err != nil {
		t.Fatal(err)
	}
}
