package holistic

import (
	"fmt"
	"testing"

	"repro/internal/analysis"
	"repro/internal/arm"
	"repro/internal/guestos"
	"repro/internal/rng"
	"repro/internal/simtime"
)

// TestRandomTaskSetsBoundedByAnalysis generates random periodic task
// sets under random TDMA supplies, simulates them with internal/guestos
// over many cycles, and asserts that every measured response time stays
// within the holistic bound. Task sets that the analysis finds
// unschedulable are skipped (no bound is claimed for them).
func TestRandomTaskSetsBoundedByAnalysis(t *testing.T) {
	iterations := 40
	if testing.Short() {
		iterations = 8
	}
	for seed := uint64(1); seed <= uint64(iterations); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			gen := rng.New(seed * 6151)

			// Random supply: slot T_i of a cycle T with T_i ≥ 30 %.
			cycle := ms(int64(10 + gen.Intn(30)))
			slot := simtime.Duration(float64(cycle) * (0.3 + 0.6*gen.Float64()))
			sched, err := analysis.SingleSlot(cycle, slot, 0)
			if err != nil {
				t.Fatal(err)
			}

			// Random task set with bounded total utilisation.
			nTasks := 1 + gen.Intn(4)
			var tasks []TaskSpec
			supplyShare := float64(slot) / float64(cycle)
			budget := 0.5 * supplyShare // demand ≤ half the supply
			for i := 0; i < nTasks; i++ {
				period := ms(int64(20 + gen.Intn(200)))
				maxU := budget / float64(nTasks)
				wcet := simtime.Duration(float64(period) * maxU * (0.3 + 0.7*gen.Float64()))
				if wcet < simtime.Microsecond {
					wcet = simtime.Microsecond
				}
				tasks = append(tasks, TaskSpec{
					Name:   fmt.Sprintf("t%d", i),
					Period: period,
					WCET:   wcet,
				})
			}

			spec := PartitionSpec{
				Name:     "p",
				Schedule: sched,
				Costs:    arm.DefaultCosts(),
				Tasks:    tasks,
			}
			bounds, err := Analyze(spec, analysis.DefaultHorizon)
			if err != nil || !bounds.Schedulable {
				t.Skipf("unschedulable or unbounded configuration (err=%v)", err)
			}

			// Simulate over many cycles: supply windows [k·T, k·T+slot).
			g := guestos.New("p")
			for _, ts := range tasks {
				if _, err := g.AddTask(guestos.Task{
					Name: ts.Name, Period: ts.Period, WCET: ts.WCET,
					// Disable miss accounting; bounds are what we check.
					Deadline: simtime.Infinity / 4,
				}); err != nil {
					t.Fatal(err)
				}
			}
			horizon := 400 * cycle
			for base := simtime.Time(0); base < simtime.Time(horizon); base = base.Add(cycle) {
				g.Advance(base, base.Add(slot))
			}
			if err := g.SanityCheck(); err != nil {
				t.Fatal(err)
			}
			for i, tb := range bounds.Tasks {
				st := g.Stats(i)
				if st.Completions == 0 {
					t.Fatalf("task %s never completed", tb.Name)
				}
				if st.WCRT > tb.WCRT {
					t.Fatalf("task %s (P=%v C=%v slot=%v/%v): measured WCRT %v exceeds bound %v",
						tb.Name, tasks[i].Period, tasks[i].WCET, slot, cycle, st.WCRT, tb.WCRT)
				}
			}
		})
	}
}
