// Package holistic computes whole-system schedulability for guest task
// sets running inside hypervisor partitions — the analysis a system
// integrator needs before enabling interposed interrupt handling: are my
// guest deadlines still met?
//
// For each guest task it bounds the worst-case response time with a
// busy-window iteration whose interference term combines every demand
// the paper's architecture imposes on the task:
//
//   - loss of CPU supply to other partitions' windows (the generalised
//     TDMA term, internal/analysis.Schedule),
//   - top handlers of every IRQ source (they run in hypervisor context
//     whoever is active, eqs. 9/15),
//   - the partition's own bottom handlers (drained before guest work at
//     each dispatch point),
//   - foreign *interposed* bottom handlers, bounded by each monitored
//     source's condition via eq. (14),
//   - higher-priority guest tasks of the same partition.
//
// The bounds are validated against internal/guestos simulation in the
// package tests: measured WCRTs never exceed them.
package holistic

import (
	"errors"
	"fmt"

	"repro/internal/analysis"
	"repro/internal/arm"
	"repro/internal/curves"
	"repro/internal/simtime"
)

// TaskSpec is one periodic guest task, rate-monotonic priority by
// declaration order (matching internal/guestos).
type TaskSpec struct {
	Name     string
	Period   simtime.Duration
	Jitter   simtime.Duration
	WCET     simtime.Duration
	Deadline simtime.Duration // 0 = implicit (= Period)
}

// Model returns the task's activation model.
func (t TaskSpec) Model() curves.PJD {
	return curves.PJD{Period: t.Period, Jitter: t.Jitter, DMin: minDur(t.Period, maxDur(1, t.Period-t.Jitter))}
}

// IRQDemand describes one IRQ source's demand as seen by a partition.
type IRQDemand struct {
	Name string
	// CTH is the top-handler cost charged globally (use C'_TH for
	// monitored sources, eq. 15).
	CTH simtime.Duration
	// CBH is the bottom-handler cost including queue overheads.
	CBH simtime.Duration
	// Model bounds the source's activations.
	Model curves.Model
	// SubscribedHere marks sources whose bottom handlers drain in this
	// partition.
	SubscribedHere bool
	// Cond is the monitoring condition of a monitored source (nil =
	// unmonitored). Foreign monitored sources contribute interposed
	// interference per eq. (14); the effective per-grant cost is
	// C'_BH = CBH + C_sched + 2·C_ctx.
	Cond curves.Model
}

// PartitionSpec is one partition's view of the system.
type PartitionSpec struct {
	Name string
	// Schedule is the partition's CPU supply (windows within the TDMA
	// cycle, entry overhead included).
	Schedule *analysis.Schedule
	// Tasks are the guest tasks, rate-monotonic by order.
	Tasks []TaskSpec
	// IRQs is every source in the system, flagged by subscription.
	IRQs []IRQDemand
	// Costs supplies C_sched / C_ctx for eq. (13).
	Costs arm.CostModel
}

// TaskBound is the analysis outcome for one task.
type TaskBound struct {
	Name     string
	WCRT     simtime.Duration
	Deadline simtime.Duration
	// Schedulable reports WCRT ≤ Deadline.
	Schedulable bool
	// Q is the busy-period length in activations.
	Q int64
}

// Result is the outcome for a partition.
type Result struct {
	Partition string
	Tasks     []TaskBound
	// Schedulable reports whether every task meets its deadline.
	Schedulable bool
}

// interference returns the combined non-guest interference over a window.
func (p PartitionSpec) interference(dt simtime.Duration) simtime.Duration {
	total := p.Schedule.Interference(dt)
	for _, q := range p.IRQs {
		// Top handlers steal from everyone.
		total += simtime.Duration(q.Model.EtaPlus(dt)) * q.CTH
		if q.SubscribedHere {
			// Own bottom handlers drain ahead of guest work.
			total += simtime.Duration(q.Model.EtaPlus(dt)) * q.CBH
		} else if q.Cond != nil {
			// Foreign monitored source: interposed grants charge
			// C'_BH inside this partition's supply (eq. 14).
			cbhEff := p.Costs.EffectiveBH(q.CBH)
			total += simtime.Duration(q.Cond.EtaPlus(dt)) * cbhEff
		}
	}
	return total
}

// Analyze bounds every task's worst-case response time.
func Analyze(p PartitionSpec, horizon simtime.Duration) (*Result, error) {
	if p.Schedule == nil {
		return nil, errors.New("holistic: partition needs a supply schedule")
	}
	if len(p.Tasks) == 0 {
		return nil, errors.New("holistic: no tasks to analyse")
	}
	res := &Result{Partition: p.Name, Schedulable: true}
	for i, task := range p.Tasks {
		if task.Period <= 0 || task.WCET <= 0 {
			return nil, fmt.Errorf("holistic: task %q needs positive period and WCET", task.Name)
		}
		hp := p.Tasks[:i]
		inf := func(dt simtime.Duration) simtime.Duration {
			total := p.interference(dt)
			for _, h := range hp {
				total += simtime.Duration(h.Model().EtaPlus(dt)) * h.WCET
			}
			return total
		}
		rt, err := analysis.ResponseTime(task.WCET, task.Model(), inf, horizon)
		if err != nil {
			return nil, fmt.Errorf("holistic: task %q: %w", task.Name, err)
		}
		deadline := task.Deadline
		if deadline == 0 {
			deadline = task.Period
		}
		tb := TaskBound{
			Name:        task.Name,
			WCRT:        rt.WCRT,
			Deadline:    deadline,
			Schedulable: rt.WCRT <= deadline,
			Q:           rt.Q,
		}
		if !tb.Schedulable {
			res.Schedulable = false
		}
		res.Tasks = append(res.Tasks, tb)
	}
	return res, nil
}

func minDur(a, b simtime.Duration) simtime.Duration {
	if a < b {
		return a
	}
	return b
}

func maxDur(a, b simtime.Duration) simtime.Duration {
	if a > b {
		return a
	}
	return b
}
