package holistic

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/arm"
	"repro/internal/core"
	"repro/internal/curves"
	"repro/internal/guestos"
	"repro/internal/hv"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/workload"
)

func us(v int64) simtime.Duration { return simtime.Micros(v) }
func ms(v int64) simtime.Duration { return simtime.Millis(v) }

func TestAnalyzeValidation(t *testing.T) {
	if _, err := Analyze(PartitionSpec{}, analysis.DefaultHorizon); err == nil {
		t.Error("missing schedule accepted")
	}
	sched, _ := analysis.SingleSlot(us(14000), us(6000), 0)
	if _, err := Analyze(PartitionSpec{Schedule: sched}, analysis.DefaultHorizon); err == nil {
		t.Error("empty task set accepted")
	}
	if _, err := Analyze(PartitionSpec{
		Schedule: sched,
		Tasks:    []TaskSpec{{Name: "bad", Period: 0, WCET: us(1)}},
	}, analysis.DefaultHorizon); err == nil {
		t.Error("zero-period task accepted")
	}
}

func TestAnalyzePureSupply(t *testing.T) {
	// One task with the full CPU: WCRT = WCET.
	full, err := analysis.SingleSlot(ms(10), ms(10), 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(PartitionSpec{
		Name:     "p",
		Schedule: full,
		Costs:    arm.DefaultCosts(),
		Tasks:    []TaskSpec{{Name: "t", Period: ms(10), WCET: ms(2)}},
	}, analysis.DefaultHorizon)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks[0].WCRT != ms(2) {
		t.Fatalf("WCRT = %v, want 2ms", res.Tasks[0].WCRT)
	}
	if !res.Schedulable {
		t.Fatal("trivial system not schedulable")
	}
}

func TestAnalyzeSupplyGapDominates(t *testing.T) {
	// Half supply: a task released right after the window must wait.
	sched, err := analysis.SingleSlot(ms(20), ms(10), 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(PartitionSpec{
		Name:     "p",
		Schedule: sched,
		Costs:    arm.DefaultCosts(),
		Tasks:    []TaskSpec{{Name: "t", Period: ms(40), WCET: ms(1)}},
	}, analysis.DefaultHorizon)
	if err != nil {
		t.Fatal(err)
	}
	// Worst phase: released at window end → wait 10 ms + 1 ms exec.
	if res.Tasks[0].WCRT != ms(11) {
		t.Fatalf("WCRT = %v, want 11ms", res.Tasks[0].WCRT)
	}
}

func TestForeignInterposedInterferenceRaisesBound(t *testing.T) {
	sched, _ := analysis.SingleSlot(us(14000), us(10000), us(50))
	base := PartitionSpec{
		Name:     "victim",
		Schedule: sched,
		Costs:    arm.DefaultCosts(),
		Tasks:    []TaskSpec{{Name: "ctrl", Period: ms(20), WCET: ms(2)}},
	}
	without, err := Analyze(base, analysis.DefaultHorizon)
	if err != nil {
		t.Fatal(err)
	}
	withIRQ := base
	withIRQ.IRQs = []IRQDemand{{
		Name:  "net",
		CTH:   us(8),
		CBH:   us(40),
		Model: curves.Sporadic{DMin: us(2000)},
		Cond:  curves.Sporadic{DMin: us(2000)},
	}}
	with, err := Analyze(withIRQ, analysis.DefaultHorizon)
	if err != nil {
		t.Fatal(err)
	}
	if with.Tasks[0].WCRT <= without.Tasks[0].WCRT {
		t.Fatal("foreign interposed source did not raise the bound")
	}
	// And the increase stays within the eq. (14) budget over the
	// response window.
	window := with.Tasks[0].WCRT
	budget := analysis.InterposedInterference(window, us(2000), arm.DefaultCosts(), us(40))
	// Top handlers also contribute; allow their share.
	topShare := simtime.Duration(curves.Sporadic{DMin: us(2000)}.EtaPlus(window)) * us(8)
	if delta := with.Tasks[0].WCRT - without.Tasks[0].WCRT; delta > budget+topShare+us(100) {
		t.Fatalf("bound increase %v exceeds eq.14 budget %v", delta, budget)
	}
}

// TestBoundsEnvelopeGuestSimulation is the package's reason to exist:
// the analytic WCRTs must envelope the measured guest response times of
// a full hypervisor simulation with a monitored foreign IRQ source.
func TestBoundsEnvelopeGuestSimulation(t *testing.T) {
	costs := arm.DefaultCosts()
	dmin := us(2000)
	cbh := us(40)
	cth := us(8)

	// Guest task set in the victim partition.
	tasks := []TaskSpec{
		{Name: "ctrl", Period: ms(20), WCET: ms(2)},
		{Name: "nav", Period: ms(40), WCET: ms(4)},
	}
	guest := guestos.New("victim")
	for _, ts := range tasks {
		if _, err := guest.AddTask(guestos.Task{Name: ts.Name, Period: ts.Period, WCET: ts.WCET}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := guest.AddTask(guestos.Task{Name: "bg"}); err != nil {
		t.Fatal(err)
	}

	arrivals := workload.Timestamps(workload.ExponentialClamped(rng.New(23), us(2600), dmin, 2500))
	sc := core.Scenario{
		Partitions: []core.PartitionSpec{
			{Name: "victim", Slot: us(10000), Guest: guest},
			{Name: "io", Slot: us(4000)},
		},
		Mode:   hv.Monitored,
		Policy: hv.ResumeAcrossSlots,
		IRQs: []core.IRQSpec{{
			Name: "net", Partition: 1, CTH: cth, CBH: cbh,
			Arrivals: arrivals, DMin: dmin,
		}},
	}
	res, err := core.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.InterposedGrants == 0 {
		t.Fatal("nothing interposed; test is vacuous")
	}
	if err := guest.SanityCheck(); err != nil {
		t.Fatal(err)
	}

	// Matching holistic model. Handler costs include queue operations,
	// C'_TH includes the monitoring overhead.
	sched, err := analysis.SingleSlot(us(14000), us(10000), costs.CtxSwitch)
	if err != nil {
		t.Fatal(err)
	}
	spec := PartitionSpec{
		Name:     "victim",
		Schedule: sched,
		Costs:    costs,
		Tasks:    tasks,
		IRQs: []IRQDemand{{
			Name:  "net",
			CTH:   costs.EffectiveTH(cth) + costs.QueuePush,
			CBH:   cbh + costs.QueuePop,
			Model: curves.Sporadic{DMin: dmin},
			Cond:  curves.Sporadic{DMin: dmin},
		}},
	}
	bounds, err := Analyze(spec, analysis.DefaultHorizon)
	if err != nil {
		t.Fatal(err)
	}
	if !bounds.Schedulable {
		t.Fatalf("configuration analysed unschedulable: %+v", bounds.Tasks)
	}
	for i, tb := range bounds.Tasks {
		measured := guest.Stats(i).WCRT
		if measured > tb.WCRT {
			t.Errorf("task %s: measured WCRT %v exceeds bound %v", tb.Name, measured, tb.WCRT)
		}
		if measured == 0 {
			t.Errorf("task %s never completed", tb.Name)
		}
	}
}

func TestHigherPriorityTasksIncluded(t *testing.T) {
	sched, _ := analysis.SingleSlot(ms(10), ms(10), 0)
	p := PartitionSpec{
		Name:     "p",
		Schedule: sched,
		Costs:    arm.DefaultCosts(),
		Tasks: []TaskSpec{
			{Name: "hi", Period: ms(10), WCET: ms(1)},
			{Name: "lo", Period: ms(50), WCET: ms(20)},
		},
	}
	res, err := Analyze(p, analysis.DefaultHorizon)
	if err != nil {
		t.Fatal(err)
	}
	// Matches the guestos hand-check: R_lo = 20 + ⌈R/10⌉·1 → 23 ms
	// under full supply (closed windows make it ≥ 23).
	if res.Tasks[1].WCRT < ms(23) {
		t.Fatalf("lo WCRT = %v, want ≥ 23ms", res.Tasks[1].WCRT)
	}
	if res.Tasks[1].WCRT > ms(26) {
		t.Fatalf("lo WCRT = %v, want ≈ 23ms", res.Tasks[1].WCRT)
	}
}
