package hv

import (
	"testing"

	"repro/internal/arm"
	"repro/internal/curves"
	"repro/internal/monitor"
	"repro/internal/simtime"
	"repro/internal/tracerec"
)

func TestDeniedBusyWhileGrantInProgress(t *testing.T) {
	// A second conforming IRQ arriving while a grant is mid-flight is
	// denied with DeniedBusy and handled as delayed. Craft it with a
	// long bottom handler so the grant window is wide.
	costs := arm.DefaultCosts()
	cfg := Config{
		Slots: paperSlots(),
		Costs: costs,
		Mode:  Monitored,
		Sources: []SourceConfig{
			{
				Name: "slow", Subscriber: 0, CTH: us(6), CBH: us(400),
				Arrivals: []simtime.Time{tt(7000)},
				Monitor:  monitor.NewDMin(us(100)),
			},
			{
				// Arrives during slow's grant (which spans roughly
				// 7007..7500 µs).
				Name: "fast", Subscriber: 0, CTH: us(6), CBH: us(30),
				Arrivals: []simtime.Time{tt(7200)},
				Monitor:  monitor.NewDMin(us(100)),
			},
		},
	}
	sys := build(t, cfg)
	runAll(t, sys)
	st := sys.Stats()
	if st.DeniedBusy != 1 {
		t.Fatalf("DeniedBusy = %d, want 1", st.DeniedBusy)
	}
	if st.InterposedGrants != 1 {
		t.Fatalf("grants = %d, want 1", st.InterposedGrants)
	}
	// The denied IRQ consumed no monitor budget.
	if sys.Sources()[1].Monitor.Stats().Commits != 0 {
		t.Fatal("denied-busy IRQ committed to the monitor")
	}
}

func TestLearningChargesMonitorCost(t *testing.T) {
	// Algorithm 1 runs in the top handler for every IRQ during the
	// learning phase; C_Mon must be charged.
	lm, err := monitor.NewLearning(2)
	if err != nil {
		t.Fatal(err)
	}
	costs := arm.DefaultCosts()
	zeros := make([]simtime.Duration, 2)
	bound, err := curves.NewDelta(zeros)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Slots: paperSlots(),
		Costs: costs,
		Mode:  Monitored,
		Sources: []SourceConfig{{
			Name: "t0", Subscriber: 0, CTH: us(6), CBH: us(30),
			Arrivals:    []simtime.Time{tt(1000), tt(3000), tt(7000)},
			Monitor:     lm,
			LearnEvents: 2,
			LearnBound:  bound,
		}},
	}
	sys := build(t, cfg)
	runAll(t, sys)
	st := sys.Stats()
	// 2 learning IRQs + 1 foreign run-mode IRQ, each charging C_Mon.
	if want := 3 * costs.Monitor; st.MonitorTime != want {
		t.Fatalf("monitor time = %v, want %v", st.MonitorTime, want)
	}
	if st.DeniedLearning == 0 && sys.Log().Records[2].Mode != tracerec.Interposed {
		t.Fatal("run-mode IRQ after learning not processed")
	}
}

func TestStolenTopAccounting(t *testing.T) {
	// Top-handler time is charged against the partition whose slot it
	// interrupts, whoever the subscriber is.
	costs := arm.DefaultCosts()
	cfg := Config{
		Slots: paperSlots(),
		Costs: costs,
		Sources: []SourceConfig{{
			Name: "t0", Subscriber: 0, CTH: us(6), CBH: us(30),
			Arrivals: []simtime.Time{tt(7000), tt(8000)}, // in app2's slot
		}},
	}
	sys := build(t, cfg)
	runAll(t, sys)
	want := 2 * (us(6) + costs.QueuePush)
	if got := sys.Partitions()[1].StolenTop; got != want {
		t.Fatalf("app2 StolenTop = %v, want %v", got, want)
	}
	if got := sys.Partitions()[0].StolenTop; got != 0 {
		t.Fatalf("app1 StolenTop = %v, want 0", got)
	}
}

func TestTimeConservation(t *testing.T) {
	// Over a completed idle-flushed run, guest + BH + top + sched +
	// ctx time accounts for every cycle the CPU was not idle; with a
	// guest-less system, elapsed == sum + idle.
	costs := arm.DefaultCosts()
	cfg := Config{
		Slots: paperSlots(),
		Costs: costs,
		Mode:  Monitored,
		Sources: []SourceConfig{{
			Name: "t0", Subscriber: 0, CTH: us(6), CBH: us(30),
			Arrivals: []simtime.Time{tt(1000), tt(7000), tt(9000), tt(20000)},
			Monitor:  monitor.NewDMin(us(500)),
		}},
	}
	sys := build(t, cfg)
	runAll(t, sys)
	st := sys.Stats()
	sum := st.GuestTime + st.BHTime + st.TopTime + st.SchedTime + st.CtxTime
	elapsed := sys.Now().Sub(0)
	if sum > elapsed {
		t.Fatalf("accounted %v exceeds elapsed %v", sum, elapsed)
	}
	// Partitions without guests idle-execute; GuestTime covers that,
	// so the gap should be tiny (scheduling instants only).
	if elapsed-sum > us(1) {
		t.Fatalf("unaccounted time %v", elapsed-sum)
	}
}
