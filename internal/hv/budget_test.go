package hv

import (
	"testing"

	"repro/internal/arm"
	"repro/internal/monitor"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/tracerec"
	"repro/internal/workload"
)

func TestActualBHEarlyCompletion(t *testing.T) {
	// A handler finishing below its WCET yields a shorter latency.
	costs := arm.DefaultCosts()
	cfg := Config{
		Slots: paperSlots(),
		Costs: costs,
		Sources: []SourceConfig{{
			Name: "t0", Subscriber: 0, CTH: us(6), CBH: us(30),
			ActualBH: []simtime.Duration{us(10)},
			Arrivals: []simtime.Time{tt(1000)},
		}},
	}
	sys := build(t, cfg)
	runAll(t, sys)
	want := us(6) + costs.QueuePush + costs.QueuePop + us(10)
	if got := sys.Log().Records[0].Latency(); got != want {
		t.Fatalf("latency = %v, want %v", got, want)
	}
}

func TestBudgetCutsOverrunningInterposedHandler(t *testing.T) {
	// An interposed handler overrunning its declared C_BH is cut off
	// at the budget; the remainder completes in the subscriber's own
	// slot. The victim partition loses at most C'_BH (eq. 14 holds
	// even under the overrun).
	costs := arm.DefaultCosts()
	cfg := Config{
		Slots:  paperSlots(),
		Costs:  costs,
		Mode:   Monitored,
		Policy: ResumeAcrossSlots,
		Sources: []SourceConfig{{
			Name: "t0", Subscriber: 0, CTH: us(6), CBH: us(30),
			ActualBH: []simtime.Duration{us(500)}, // massive overrun
			Arrivals: []simtime.Time{tt(7000)},    // foreign slot
			Monitor:  monitor.NewDMin(us(1000)),
		}},
	}
	sys := build(t, cfg)
	runAll(t, sys)
	st := sys.Stats()
	if st.BudgetCuts != 1 {
		t.Fatalf("budget cuts = %d, want 1", st.BudgetCuts)
	}
	rec := sys.Log().Records[0]
	// The remnant completed in app1's own slot (after 14000).
	if rec.Done < tt(14000) {
		t.Fatalf("overrunning handler completed at %v inside the foreign slot", rec.Done)
	}
	// The victim (app2) lost at most the enforced budget plus grant
	// overheads — not the full 500 µs overrun.
	victim := sys.Partitions()[1]
	maxSteal := costs.EffectiveBH(us(30)) + costs.QueuePop
	if victim.StolenInterposed > maxSteal {
		t.Fatalf("victim lost %v, enforcement allows at most %v", victim.StolenInterposed, maxSteal)
	}
}

func TestBudgetEnforcementUnderOverrunWorkload(t *testing.T) {
	// Sustained 2× overruns: the per-partition interference must still
	// respect eq. (14) with the *declared* C_BH, because the budget is
	// enforced per grant.
	costs := arm.DefaultCosts()
	dmin := us(1500)
	cbh := us(30)
	src := rng.New(77)
	arrivals := workload.Timestamps(workload.ExponentialClamped(src, us(1800), dmin, 400))
	actual := make([]simtime.Duration, len(arrivals))
	for i := range actual {
		actual[i] = 2 * cbh // every handler overruns
	}
	cfg := Config{
		Slots:  paperSlots(),
		Costs:  costs,
		Mode:   Monitored,
		Policy: ResumeAcrossSlots,
		Sources: []SourceConfig{{
			Name: "t0", Subscriber: 0, CTH: us(6), CBH: cbh,
			ActualBH: actual,
			Arrivals: arrivals,
			Monitor:  monitor.NewDMin(dmin),
		}},
	}
	sys := build(t, cfg)
	runAll(t, sys)
	st := sys.Stats()
	if st.BudgetCuts == 0 {
		t.Fatal("no budget cuts under sustained overruns")
	}
	elapsed := sys.Now().Sub(0)
	bound := simtime.Duration(simtime.CeilDiv(elapsed, dmin)) * costs.EffectiveBH(cbh+costs.QueuePop)
	for _, p := range sys.Partitions() {
		if p.Index == 0 {
			continue
		}
		if p.StolenInterposed > bound {
			t.Fatalf("partition %s interference %v exceeds enforced bound %v",
				p.Name, p.StolenInterposed, bound)
		}
	}
	// All IRQs still complete (remnants drain in the own slot).
	if sys.Log().Len() != int(sys.Sources()[0].Raised) {
		t.Fatalf("records %d != raised %d", sys.Log().Len(), sys.Sources()[0].Raised)
	}
}

func TestActualBHValidation(t *testing.T) {
	cfg := Config{
		Slots: paperSlots(),
		Sources: []SourceConfig{{
			Name: "t0", Subscriber: 0, CTH: us(6), CBH: us(30),
			ActualBH: []simtime.Duration{us(10), 0},
		}},
	}
	if cfg.Validate() == nil {
		t.Fatal("non-positive ActualBH accepted")
	}
}

func TestBudgetCutRecordStaysFIFO(t *testing.T) {
	// A cut remnant stays at the queue head; later IRQs complete after
	// it (FIFO preserved under enforcement).
	costs := arm.DefaultCosts()
	cfg := Config{
		Slots:  paperSlots(),
		Costs:  costs,
		Mode:   Monitored,
		Policy: ResumeAcrossSlots,
		Sources: []SourceConfig{{
			Name: "t0", Subscriber: 0, CTH: us(6), CBH: us(30),
			ActualBH: []simtime.Duration{us(300), us(30)},
			Arrivals: []simtime.Time{tt(7000), tt(9000)},
			Monitor:  monitor.NewDMin(us(1000)),
		}},
	}
	sys := build(t, cfg)
	runAll(t, sys)
	recs := sys.Log().Records
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0].Seq != 0 || recs[1].Seq != 1 {
		t.Fatal("FIFO order broken by budget cut")
	}
	if recs[1].Done < recs[0].Done {
		t.Fatal("completion order broken")
	}
	// The cut remnant completed via delayed processing in its own slot.
	if recs[0].Mode != tracerec.Delayed {
		t.Fatalf("cut remnant mode = %v, want delayed", recs[0].Mode)
	}
}
