package hv

import (
	"errors"
	"fmt"

	"repro/internal/arm"
	"repro/internal/des"
	"repro/internal/intc"
	"repro/internal/monitor"
	"repro/internal/schedtrace"
	"repro/internal/simtime"
	"repro/internal/tracerec"
)

// execKind classifies what the CPU is executing in partition context.
type execKind int

const (
	execGuest   execKind = iota // guest/background work (open-ended)
	execBH                      // bottom handler in the partition's own slot
	execGrantBH                 // interposed bottom handler in a foreign slot
)

// execState tracks the current partition-side execution span.
type execState struct {
	running bool
	kind    execKind
	part    *Partition
	start   simtime.Time
	done    *des.Event // completion event for BH kinds; nil for guest
}

// grantState tracks an interposed-IRQ grant through its phases:
// scheduler manipulation → context switch in → bottom handler →
// context switch back (§5, eq. 13).
type grantState struct {
	target int // subscriber partition index
	phase  int // 0: need sched, 1: need ctx-in, 2: exec BH, 3: need ctx-out
	// Triggering delivery, to distinguish a grant serving its own IRQ
	// from one serving an older FIFO-queued delivery. trigAt anchors
	// the oracle's sliding-window interference check (oracle.go).
	trigSrc int
	trigSeq uint64
	trigAt  simtime.Time
	// C_BH execution budget enforced by the hypervisor (§5); set on
	// first bottom-handler entry.
	budget    simtime.Duration
	budgetSet bool
}

// actDoneKind selects the completion handler of the in-flight
// hypervisor activity. hvActivity guarantees at most one activity is in
// flight, so a single set of pend* parameter fields on System carries
// each handler's arguments — replacing the per-call closures (one
// allocation per top handler, slot switch and grant phase) the hot
// path used to pay for.
type actDoneKind int

const (
	doneNone actDoneKind = iota
	doneSlotSwitch
	doneTopHandler
	doneSharedTop
	doneGrantSched
	doneGrantCtxIn
	doneGrantCtxOut
)

// System is one simulated hypervisor run.
type System struct {
	cfg   Config
	sim   *des.Simulator
	ic    *intc.Controller
	costs arm.CostModel
	parts []*Partition
	srcs  []*Source
	log   *tracerec.Log
	stats Stats

	// runErr records the first fatal inconsistency hit while the event
	// loop runs (e.g. a guest rejecting an IRQ signal). Runtime faults
	// must surface as errors from RunToCompletion, never as panics: a
	// fuzzer-generated scenario must not take down the worker that runs
	// it. Once set, the run is poisoned and completion reports it.
	runErr error

	windows       []WindowConfig // effective cyclic window schedule
	winBuf        []WindowConfig // owned buffer behind windows when derived from Slots
	winIdx        int            // index of the current window
	active        int            // TDMA-active partition index
	slotEnd       simtime.Time   // grid end of the current window
	pendingSwitch bool           // a boundary fired while the hypervisor was busy

	hvBusy bool
	grant  *grantState
	// grantBuf is the backing store for grant: each interposed grant
	// reuses it instead of allocating (only one grant is in flight at a
	// time; DeniedBusy enforces it).
	grantBuf grantState
	exec     execState

	// oracle, when armed via InstallOracle, checks every interference
	// increment against the eq. (14) budget online (see oracle.go).
	oracle *oracleState

	// In-flight hypervisor activity (at most one at a time; hvActivity
	// panics on nesting). Keeping the state here lets one prebuilt
	// completion callback (actFire) serve every activity instead of
	// allocating a closure per top handler / switch / grant phase.
	actStart simtime.Time
	actDur   simtime.Duration
	actKind  schedtrace.Kind
	actSrc   int
	actLabel string
	actDone  actDoneKind
	actFire  func()

	// Prebuilt method-value callbacks (built once; a method value used
	// directly as a des callback would allocate per call site).
	slotBoundaryFn func()
	dispatchFn     func()

	// Completion parameters of the single in-flight activity, keyed by
	// actDone. Plain data (no closures) so snapshots capture them.
	pendNext      int          // doneSlotSwitch: next window index
	pendBoundary  simtime.Time // doneSlotSwitch: grid boundary
	pendSrcIdx    int          // doneTopHandler/doneSharedTop: source (-1 none)
	pendArrival   simtime.Time // doneTopHandler/doneSharedTop
	pendSub       int          // doneTopHandler: subscriber partition
	pendDecision  tracerec.Mode
	pendInterpose bool // doneTopHandler: grant on completion
	pendEffActive int  // doneSharedTop: effective active partition
	pendVictim    int  // doneGrant*: interference victim
}

// New builds a system from cfg and arms the first TDMA slot and all
// first arrivals. The configuration is validated.
func New(cfg Config) (*System, error) {
	s := &System{}
	if err := s.Reinit(cfg); err != nil {
		return nil, err
	}
	return s, nil
}

// Reinit reconfigures the system in place for a fresh run of cfg,
// reusing the simulator (event freelist and heap), the latency log, the
// interrupt controller, and the partition/source structs with their
// prebuilt callbacks wherever the shapes match — the arena Reset
// contract of DESIGN.md §11. A system built by New and one Reinit-ed
// into the same configuration are behaviorally indistinguishable: the
// golden and byte-identity suites hold across both paths.
func (s *System) Reinit(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	// Every raised IRQ eventually produces one latency record per
	// subscriber; pre-size the log so recording never reallocates
	// (lost IRQs only make this an upper bound).
	expect := 0
	for _, sc := range cfg.Sources {
		subs := len(sc.Subscribers)
		if subs == 0 {
			subs = 1
		}
		expect += len(sc.Arrivals) * subs
	}
	s.cfg = cfg
	s.costs = cfg.Costs
	s.runErr = nil
	if s.sim == nil {
		s.sim = des.New()
	} else {
		s.sim.Reset()
	}
	if s.log == nil {
		s.log = tracerec.NewLog(expect)
	} else {
		s.log.Reset(expect)
	}
	s.stats = Stats{}

	// Partitions: reuse structs (and their prebuilt bhDone callbacks).
	if len(s.parts) > len(cfg.Slots) {
		for i := len(cfg.Slots); i < len(s.parts); i++ {
			s.parts[i] = nil
		}
		s.parts = s.parts[:len(cfg.Slots)]
	}
	for i, sc := range cfg.Slots {
		if i < len(s.parts) {
			p := s.parts[i]
			p.Name = sc.Name
			p.Guest = sc.Guest
			p.queue.reset()
			p.headStarted = false
			p.headLeft = 0
			p.GuestTime = 0
			p.BHTime = 0
			p.StolenInterposed = 0
			p.StolenTop = 0
			p.InterposedHits = 0
		} else {
			p := &Partition{Index: i, Name: sc.Name, Guest: sc.Guest}
			p.bhDone = s.bhDoneFor(p)
			s.parts = append(s.parts, p)
		}
	}

	nLines := len(cfg.Sources)
	if nLines == 0 {
		nLines = 1
	}
	if s.ic == nil || s.ic.Lines() != nLines {
		ic, err := intc.New(nLines)
		if err != nil {
			return err
		}
		s.ic = ic
	} else {
		s.ic.Reset()
	}

	// Hypervisor execution state, before arming any events.
	s.hvBusy = false
	s.pendingSwitch = false
	s.grant = nil
	s.grantBuf = grantState{}
	s.exec = execState{}
	s.oracle = nil
	s.actDone = doneNone
	s.actLabel = ""
	s.pendSrcIdx = -1
	if s.actFire == nil {
		s.actFire = s.activityFire
		s.slotBoundaryFn = s.slotBoundary
		s.dispatchFn = s.dispatch
	}

	// Sources: reuse structs (and their prebuilt arrive callbacks and
	// label strings when name and sharedness are unchanged).
	if len(s.srcs) > len(cfg.Sources) {
		for i := len(cfg.Sources); i < len(s.srcs); i++ {
			s.srcs[i] = nil
		}
		s.srcs = s.srcs[:len(cfg.Sources)]
	}
	for i, sc := range cfg.Sources {
		var src *Source
		if i < len(s.srcs) {
			src = s.srcs[i]
		} else {
			src = &Source{Index: i}
			src.arrive = func() { s.irqArrive(src) }
			s.srcs = append(s.srcs, src)
		}
		subs := append(src.Subscribers[:0], sc.Subscribers...)
		if len(subs) == 0 {
			subs = append(subs, sc.Subscriber)
		}
		src.Subscribers = subs
		shared := len(subs) > 1
		if src.Name != sc.Name || src.sharedTop != shared || src.irqLabel == "" {
			src.irqLabel = "irq:" + sc.Name
			src.bhLabel = "bh:" + sc.Name
			if shared {
				src.topLabel = "top-shared:" + sc.Name
			} else {
				src.topLabel = "top:" + sc.Name
			}
			src.sharedTop = shared
		}
		src.Name = sc.Name
		src.Line = intc.Line(i)
		src.CTH = sc.CTH
		src.CBH = sc.CBH
		src.Monitor = sc.Monitor
		src.arrivals = sc.Arrivals
		src.actualBH = sc.ActualBH
		src.next = 0
		src.learnEvents = sc.LearnEvents
		src.learnBound = sc.LearnBound
		src.signalsGuest = sc.SignalsGuest
		src.guestTask = sc.GuestTask
		src.latchedAt = 0
		src.seq = 0
		src.armed = false
		src.Raised = 0
		src.Lost = 0
		s.scheduleArrival(src)
	}

	// Effective window schedule. An explicit cfg.Windows is referenced
	// as-is (read-only); the default rotation is rebuilt into an owned
	// buffer so Reinit never writes into a caller's slice.
	if len(cfg.Windows) > 0 {
		s.windows = cfg.Windows
	} else {
		if cap(s.winBuf) < len(cfg.Slots) {
			s.winBuf = make([]WindowConfig, 0, len(cfg.Slots))
		}
		s.winBuf = s.winBuf[:0]
		for i, sl := range cfg.Slots {
			s.winBuf = append(s.winBuf, WindowConfig{Partition: i, Length: sl.Length})
		}
		s.windows = s.winBuf
	}
	// Report each partition's per-cycle supply as its SlotLen.
	for i := range s.parts {
		s.parts[i].SlotLen = 0
	}
	for _, w := range s.windows {
		s.parts[w.Partition].SlotLen += w.Length
	}
	s.winIdx = 0
	s.active = s.windows[0].Partition
	s.slotEnd = simtime.Time(s.windows[0].Length)
	s.sim.At(s.slotEnd, "slot-boundary", s.slotBoundaryFn)
	// Boot: hand the CPU to the first partition at time zero (after
	// any arrivals scheduled exactly at zero).
	s.sim.At(0, "boot", s.dispatchFn)
	// Snapshot support: the system saves/restores its state alongside
	// the event queue (see snapshot.go).
	s.sim.RegisterState(s)
	return nil
}

// Sim exposes the simulator clock for callers that interleave their own
// events (tests).
func (s *System) Sim() *des.Simulator { return s.sim }

// Now returns the current simulated time.
func (s *System) Now() simtime.Time { return s.sim.Now() }

// Log returns the latency log.
func (s *System) Log() *tracerec.Log { return s.log }

// Stats returns a copy of the system counters.
func (s *System) Stats() Stats { return s.stats }

// Partitions returns the runtime partitions.
func (s *System) Partitions() []*Partition { return s.parts }

// Sources returns the runtime sources.
func (s *System) Sources() []*Source { return s.srcs }

// Controller returns the interrupt controller (for inspection).
func (s *System) Controller() *intc.Controller { return s.ic }

// ActivePartition returns the index of the TDMA-active partition.
func (s *System) ActivePartition() int { return s.active }

// scheduleArrival arms the next hardware IRQ of src.
func (s *System) scheduleArrival(src *Source) {
	if src.next >= len(src.arrivals) {
		src.armed = false
		return
	}
	t := src.arrivals[src.next]
	src.next++
	src.armed = true
	s.sim.At(t, src.irqLabel, src.arrive)
}

// ExtendArrivals appends further hardware-IRQ times to source idx and
// re-arms its (possibly exhausted) arrival chain — the fork primitive
// of warm-prefix campaigns: restore a snapshot, extend each source's
// stream with a per-cell suffix, and run to completion. Times must be
// sorted, not before the source's last configured arrival, and not
// before the current simulated time.
func (s *System) ExtendArrivals(idx int, times []simtime.Time) error {
	if idx < 0 || idx >= len(s.srcs) {
		return fmt.Errorf("hv: ExtendArrivals: no source %d", idx)
	}
	if len(times) == 0 {
		return nil
	}
	src := s.srcs[idx]
	prev := s.sim.Now()
	if n := len(src.arrivals); n > 0 && src.arrivals[n-1] > prev {
		prev = src.arrivals[n-1]
	}
	for i, t := range times {
		if t < prev {
			return fmt.Errorf("hv: ExtendArrivals: time %v at index %d precedes %v", t, i, prev)
		}
		prev = t
	}
	src.arrivals = append(src.arrivals, times...)
	if !src.armed {
		s.scheduleArrival(src)
	}
	return nil
}

// irqArrive models the hardware interrupt line going high.
func (s *System) irqArrive(src *Source) {
	s.stats.Arrivals++
	if s.ic.Raise(src.Line) {
		src.latchedAt = s.sim.Now()
		src.Raised++
	} else {
		// Non-counting flag: the event is lost (§4).
		src.Lost++
		s.stats.LostIRQs++
	}
	s.scheduleArrival(src)
	if !s.hvBusy {
		s.preempt()
		s.dispatch()
	}
}

// slotBoundary fires on the fixed TDMA grid.
func (s *System) slotBoundary() {
	if s.hvBusy {
		// The hypervisor is in a critical section (IRQs masked);
		// the switch happens right after it completes, like a
		// deferred timer IRQ.
		s.pendingSwitch = true
		return
	}
	s.preempt()
	s.doSlotSwitch()
}

// doSlotSwitch performs the TDMA partition switch: one context switch of
// C_ctx, then the next partition on the static order becomes active.
// The grid is absolute: deferred switches do not shift later boundaries.
func (s *System) doSlotSwitch() {
	s.pendingSwitch = false
	if s.grant != nil {
		s.abortGrant()
	}
	s.pendNext = (s.winIdx + 1) % len(s.windows)
	s.pendBoundary = s.slotEnd
	s.hvActivity(s.costs.CtxSwitch, schedtrace.CtxSwitch, -1, "tdma-switch", doneSlotSwitch)
}

// finishSlotSwitch completes the TDMA switch armed by doSlotSwitch.
func (s *System) finishSlotSwitch(span simtime.Duration) {
	s.stats.CtxTime += span
	s.stats.TDMASwitches++
	s.stats.CtxSwitches++
	s.winIdx = s.pendNext
	s.active = s.windows[s.pendNext].Partition
	s.slotEnd = s.pendBoundary.Add(s.windows[s.pendNext].Length)
	at := s.slotEnd
	if at < s.sim.Now() {
		// Pathological configuration (slot shorter than the
		// switch overhead); fire as soon as possible.
		at = s.sim.Now()
	}
	s.sim.At(at, "slot-boundary", s.slotBoundaryFn)
}

// abortGrant resolves an in-flight interposed grant at a slot boundary
// according to the configured policy. Any partially executed bottom
// handler is already saved in the subscriber partition's context (queue
// head + headLeft).
func (s *System) abortGrant() {
	g := s.grant
	if s.cfg.Policy == ResumeAcrossSlots {
		switch g.phase {
		case 0, 1:
			// Scheduler manipulation / switch-in still ahead; the
			// grant simply continues after the TDMA switch.
			s.stats.ResumedGrants++
		case 2:
			// Bottom handler (partially) pending: switch in again
			// after the TDMA switch and finish it there.
			g.phase = 1
			s.stats.ResumedGrants++
		case 3, 4:
			// Bottom handler done; the TDMA switch replaces the
			// switch-back.
			s.grant = nil
		}
		return
	}
	// DenyNearSlotEnd (rare: only after nested-top-handler delays) and
	// SplitOnSlotEnd: drop the grant; a saved remnant completes in the
	// subscriber's own slot.
	if g.phase <= 2 {
		s.stats.SplitGrants++
	}
	s.grant = nil
}

// traceSpan records an execution span ending now, when tracing is on.
func (s *System) traceSpan(kind schedtrace.Kind, part, src int, start simtime.Time, label string) {
	if s.cfg.Tracer == nil {
		return
	}
	s.cfg.Tracer.Record(schedtrace.Span{
		Kind: kind, Partition: part, Source: src,
		Start: start, End: s.sim.Now(), Label: label,
	})
}

// hvActivity runs a non-preemptible hypervisor activity of length d with
// interrupts masked, then runs the done completion and re-dispatches.
// Arrivals during the activity latch at the controller. The completion's
// parameters travel in the pend* fields, set by the caller before this
// call — safe because at most one activity is ever in flight.
func (s *System) hvActivity(d simtime.Duration, kind schedtrace.Kind, srcIdx int, label string, done actDoneKind) {
	if s.hvBusy {
		panic("hv: nested hypervisor activity")
	}
	if s.exec.running {
		panic("hv: hypervisor activity while partition executing")
	}
	s.hvBusy = true
	s.ic.MaskAll()
	s.actStart = s.sim.Now()
	s.actDur = d
	s.actKind = kind
	s.actSrc = srcIdx
	s.actLabel = label
	s.actDone = done
	s.sim.After(d, label, s.actFire)
}

// activityFire completes the in-flight hypervisor activity. It reads the
// act* fields before handing control onward, since the completion and
// dispatch may start the next activity and overwrite them.
func (s *System) activityFire() {
	s.hvBusy = false
	s.ic.UnmaskAll()
	s.traceSpan(s.actKind, -1, s.actSrc, s.actStart, s.actLabel)
	done, d := s.actDone, s.actDur
	s.actDone = doneNone
	switch done {
	case doneSlotSwitch:
		s.finishSlotSwitch(d)
	case doneTopHandler:
		s.finishTopHandler(d)
	case doneSharedTop:
		s.finishSharedTopHandler(d)
	case doneGrantSched:
		s.finishGrantSched(d)
	case doneGrantCtxIn:
		s.finishGrantCtxIn(d)
	case doneGrantCtxOut:
		s.finishGrantCtxOut(d)
	default:
		panic("hv: activity completion without a pending activity")
	}
	s.dispatch()
}

// preempt closes the current partition-side execution span, saving any
// partially executed bottom handler.
func (s *System) preempt() {
	if !s.exec.running {
		return
	}
	now := s.sim.Now()
	span := now.Sub(s.exec.start)
	p := s.exec.part
	switch s.exec.kind {
	case execGuest:
		p.GuestTime += span
		s.stats.GuestTime += span
		if p.Guest != nil && span > 0 {
			p.Guest.Advance(s.exec.start, now)
		}
		s.traceSpan(schedtrace.Guest, p.Index, -1, s.exec.start, "guest")
	case execBH, execGrantBH:
		s.sim.Cancel(s.exec.done)
		p.headLeft -= span
		p.BHTime += span
		s.stats.BHTime += span
		kind := schedtrace.BottomHandler
		if s.exec.kind == execGrantBH {
			kind = schedtrace.InterposedBH
			s.grant.budget -= span
			if s.active != p.Index {
				s.noteInterference(s.active, span)
			}
		}
		head := p.queue.front()
		s.traceSpan(kind, p.Index, head.src.Index, s.exec.start, head.src.bhLabel)
	}
	s.exec.running = false
	s.exec.done = nil
}

// dispatch decides what the CPU does next. It must only be called when
// neither a hypervisor activity nor a partition span is in progress.
func (s *System) dispatch() {
	if s.hvBusy || s.exec.running {
		return
	}
	if s.pendingSwitch {
		s.doSlotSwitch()
		return
	}
	if line, ok := s.ic.AnyPending(); ok {
		s.startTopHandler(line)
		return
	}
	if s.grant != nil {
		s.advanceGrant()
		return
	}
	s.runPartition(s.parts[s.active])
}

// effSlot returns the partition that will next execute application code
// and the (grid) end of its slot — the active one, or its successor when
// a slot switch is pending.
func (s *System) effSlot() (int, simtime.Time) {
	if s.pendingSwitch {
		next := (s.winIdx + 1) % len(s.windows)
		return s.windows[next].Partition, s.slotEnd.Add(s.windows[next].Length)
	}
	return s.active, s.slotEnd
}

// startTopHandler services a latched IRQ line: the hypervisor IRQ context
// of Fig. 2, including the modified handler's monitoring step (Fig. 4b).
func (s *System) startTopHandler(line intc.Line) {
	src := s.srcs[line]
	arrival := src.latchedAt
	s.ic.Clear(line)
	s.stats.TopHandlers++

	if len(src.Subscribers) > 1 {
		s.startSharedTopHandler(src, arrival)
		return
	}

	effActive, effEnd := s.effSlot()
	subscriber := src.Subscribers[0]
	foreign := effActive != subscriber
	dur := src.CTH + s.costs.QueuePush
	interpose := false

	if s.cfg.Mode == Monitored && src.Monitor != nil {
		if src.Monitor.LearningActive() {
			// Appendix A, Algorithm 1: every IRQ feeds the
			// learning monitor from the top handler.
			src.Monitor.Learn(arrival)
			dur += s.costs.Monitor
			s.stats.MonitorTime += s.costs.Monitor
			if int(src.Monitor.Stats().Learned) >= src.learnEvents { //nolint:gosec
				if err := src.Monitor.FinishLearning(src.learnBound); err != nil {
					s.failRun(fmt.Errorf("hv: finish learning: %w", err))
				}
			}
			if foreign {
				s.stats.DeniedLearning++
			}
		} else if foreign {
			// Fig. 4b: the monitoring function runs for every
			// foreign-slot IRQ and charges C_Mon.
			dur += s.costs.Monitor
			s.stats.MonitorTime += s.costs.Monitor
			verdict := src.Monitor.Check(arrival)
			if s.cfg.DisableMonitor {
				// Ablation hook: the monitoring function still runs
				// (and charges C_Mon) but its verdict is discarded —
				// see Config.DisableMonitor.
				verdict = monitor.Conforming
			}
			switch {
			case verdict == monitor.Violation:
				s.stats.DeniedViolation++
			case s.grant != nil:
				s.stats.DeniedBusy++
			case s.pendingSwitch:
				s.stats.DeniedPending++
			case s.cfg.Policy == DenyNearSlotEnd &&
				s.sim.Now().Add(dur+s.costs.Sched+2*s.costs.CtxSwitch+s.costs.QueuePop+src.CBH) > effEnd:
				s.stats.DeniedFit++
			default:
				interpose = true
				if !s.cfg.DisableMonitor {
					src.Monitor.Commit(arrival)
				}
			}
		}
	} else if s.cfg.Mode == Monitored && foreign {
		s.stats.DeniedNoMonitor++
	}

	decision := tracerec.Delayed
	if !foreign {
		decision = tracerec.Direct
	}

	s.pendSrcIdx = src.Index
	s.pendArrival = arrival
	s.pendSub = subscriber
	s.pendDecision = decision
	s.pendInterpose = interpose
	s.hvActivity(dur, schedtrace.TopHandler, src.Index, src.topLabel, doneTopHandler)
}

// finishTopHandler completes the top handler armed by startTopHandler:
// the delivery is queued at the subscriber and, when admitted, an
// interposed grant is opened.
func (s *System) finishTopHandler(span simtime.Duration) {
	src := s.srcs[s.pendSrcIdx]
	s.stats.TopTime += span
	s.parts[s.active].StolenTop += span
	s.parts[s.pendSub].queue.push(pendingIRQ{
		src:      src,
		arrival:  s.pendArrival,
		seq:      src.seq,
		decision: s.pendDecision,
	})
	if s.pendInterpose {
		s.grantBuf = grantState{target: s.pendSub, trigSrc: src.Index, trigSeq: src.seq, trigAt: s.pendArrival}
		s.grant = &s.grantBuf
		s.stats.InterposedGrants++
	}
	src.seq++
}

// startSharedTopHandler services a shared IRQ: the top handler pushes an
// event into every subscriber's interrupt queue; each copy is processed
// direct (own slot) or delayed (foreign slot). Shared IRQs are never
// interposed (§4).
func (s *System) startSharedTopHandler(src *Source, arrival simtime.Time) {
	effActive, _ := s.effSlot()
	// One queue push per subscriber on top of C_TH.
	dur := src.CTH + simtime.Duration(len(src.Subscribers))*s.costs.QueuePush
	s.pendSrcIdx = src.Index
	s.pendArrival = arrival
	s.pendEffActive = effActive
	s.hvActivity(dur, schedtrace.TopHandler, src.Index, src.topLabel, doneSharedTop)
}

// finishSharedTopHandler completes a shared top handler: one queued
// delivery per subscriber.
func (s *System) finishSharedTopHandler(span simtime.Duration) {
	src := s.srcs[s.pendSrcIdx]
	s.stats.TopTime += span
	s.parts[s.active].StolenTop += span
	for _, subIdx := range src.Subscribers {
		decision := tracerec.Delayed
		if subIdx == s.pendEffActive {
			decision = tracerec.Direct
		}
		s.parts[subIdx].queue.push(pendingIRQ{
			src:      src,
			arrival:  s.pendArrival,
			seq:      src.seq,
			decision: decision,
		})
		src.seq++
	}
}

// advanceGrant drives an interposed grant through its phases.
func (s *System) advanceGrant() {
	g := s.grant
	switch g.phase {
	case 0: // scheduler manipulation, C_sched
		g.phase = 1
		s.pendVictim = s.active
		s.hvActivity(s.costs.Sched, schedtrace.SchedOverhead, -1, "grant-sched", doneGrantSched)
	case 1: // context switch into the subscriber partition
		g.phase = 2
		s.pendVictim = s.active
		s.hvActivity(s.costs.CtxSwitch, schedtrace.CtxSwitch, -1, "grant-ctx-in", doneGrantCtxIn)
	case 2: // execute the subscriber's queue head (FIFO order, §5)
		sub := s.parts[g.target]
		if sub.queue.len() == 0 {
			panic("hv: interposed grant with empty queue")
		}
		s.startBH(sub, execGrantBH)
	case 3: // context switch back
		g.phase = 4
		s.pendVictim = s.active
		s.hvActivity(s.costs.CtxSwitch, schedtrace.CtxSwitch, -1, "grant-ctx-out", doneGrantCtxOut)
	default:
		panic(fmt.Sprintf("hv: grant in impossible phase %d", g.phase))
	}
}

// grantSteal accounts a grant-phase overhead as interference on the
// victim recorded at phase start. The grant cannot change between the
// hvActivity call and its completion (activities mask IRQs and defer
// slot boundaries), so s.grant is the phase's own grant here.
func (s *System) grantSteal(span simtime.Duration) {
	if s.active != s.grant.target {
		s.noteInterference(s.pendVictim, span)
	}
}

func (s *System) finishGrantSched(span simtime.Duration) {
	s.stats.SchedTime += span
	s.grantSteal(span)
}

func (s *System) finishGrantCtxIn(span simtime.Duration) {
	s.stats.CtxTime += span
	s.stats.CtxSwitches++
	s.grantSteal(span)
}

func (s *System) finishGrantCtxOut(span simtime.Duration) {
	s.stats.CtxTime += span
	s.stats.CtxSwitches++
	s.grantSteal(span)
	s.grant = nil
}

// runPartition executes in the context of partition p: first drain the
// interrupt queue (bottom handlers, Fig. 2 step 6), then guest work.
func (s *System) runPartition(p *Partition) {
	if p.queue.len() > 0 {
		s.startBH(p, execBH)
		return
	}
	s.exec = execState{running: true, kind: execGuest, part: p, start: s.sim.Now()}
}

// startBH begins (or resumes) execution of p's queue head. In a grant
// context the execution is additionally limited by the grant's C_BH
// budget (§5: the hypervisor switches back after at most C_BHi).
func (s *System) startBH(p *Partition, kind execKind) {
	head := p.queue.front()
	if !p.headStarted {
		p.headStarted = true
		p.headLeft = s.costs.QueuePop + head.src.actual(head.seq)
	}
	if p.headLeft <= 0 {
		s.finishBH(p, kind)
		return
	}
	dur := p.headLeft
	if kind == execGrantBH {
		g := s.grant
		if !g.budgetSet {
			g.budget = s.costs.QueuePop + head.src.CBH
			g.budgetSet = true
		}
		if g.budget <= 0 {
			s.cutGrantBudget(p)
			return
		}
		dur = simtime.Min(dur, g.budget)
	}
	s.exec = execState{running: true, kind: kind, part: p, start: s.sim.Now()}
	s.exec.done = s.sim.After(dur, head.src.bhLabel, p.bhDone)
}

// bhDoneFor builds p's bottom-handler completion callback once; startBH
// re-arms it for every BH span instead of allocating a closure per span.
func (s *System) bhDoneFor(p *Partition) func() {
	return func() {
		now := s.sim.Now()
		span := now.Sub(s.exec.start)
		p.headLeft -= span
		p.BHTime += span
		s.stats.BHTime += span
		tkind := schedtrace.BottomHandler
		if s.exec.kind == execGrantBH {
			tkind = schedtrace.InterposedBH
			s.grant.budget -= span
			if s.active != p.Index {
				s.noteInterference(s.active, span)
			}
		}
		head := p.queue.front()
		s.traceSpan(tkind, p.Index, head.src.Index, s.exec.start, head.src.bhLabel)
		k := s.exec.kind
		s.exec.running = false
		s.exec.done = nil
		if k == execGrantBH && p.headLeft > 0 {
			// Budget exhausted before the (overrunning) handler
			// finished: the hypervisor cuts it off; the remnant
			// completes in the subscriber's own slot.
			s.cutGrantBudget(p)
			s.dispatch()
			return
		}
		s.finishBH(p, k)
		s.dispatch()
	}
}

// cutGrantBudget ends a grant whose C_BH budget is spent while the
// bottom handler still has work: enforcement per §5.
func (s *System) cutGrantBudget(p *Partition) {
	s.stats.BudgetCuts++
	s.grant.phase = 3 // switch back; the remnant stays queued
	_ = p
}

// finishBH completes p's queue head: pop, record latency, classify.
func (s *System) finishBH(p *Partition, kind execKind) {
	rec := p.queue.pop()
	p.headStarted = false
	p.headLeft = 0
	mode := rec.decision
	deferred := false
	if kind == execGrantBH {
		// Served via a grant: a delivery other than the grant's own
		// trigger is deferred — its latency includes FIFO queueing
		// delay outside the eq. (16) model.
		deferred = rec.src.Index != s.grant.trigSrc || rec.seq != s.grant.trigSeq
		mode = tracerec.Interposed
		if s.active != p.Index {
			s.parts[s.active].InterposedHits++
		}
		s.grant.phase = 3
	}
	s.log.Add(tracerec.Record{
		Source:    rec.src.Index,
		Partition: p.Index,
		Seq:       rec.seq,
		Arrival:   rec.arrival,
		Done:      s.sim.Now(),
		Mode:      mode,
		Deferred:  deferred,
	})
	if rec.src.signalsGuest && p.Guest != nil {
		if err := p.Guest.Activate(rec.src.guestTask, s.sim.Now()); err != nil {
			s.failRun(fmt.Errorf("hv: guest signal: %w", err))
		}
	}
}

// expectedRecords returns the number of latency records the raised IRQs
// will eventually produce (shared sources deliver one per subscriber).
func (s *System) expectedRecords() uint64 {
	var n uint64
	for _, src := range s.srcs {
		n += src.Raised * uint64(len(src.Subscribers))
	}
	return n
}

// done reports whether all arrivals have been injected and every raised
// (non-lost) IRQ has its latency record(s).
func (s *System) done() bool {
	for _, src := range s.srcs {
		if src.next < len(src.arrivals) {
			return false
		}
	}
	return uint64(s.log.Len()) == s.expectedRecords() //nolint:gosec
}

// Run advances the simulation to the given horizon.
func (s *System) Run(horizon simtime.Time) {
	s.sim.RunUntil(horizon)
}

// RunToCompletion advances the simulation until every injected IRQ has
// been fully processed, or maxHorizon is reached (then an error is
// returned). Trailing guest execution is closed out so time accounting
// is exact.
func (s *System) RunToCompletion(maxHorizon simtime.Time) error {
	chunk := 4 * s.cfg.CycleLength()
	if chunk <= 0 {
		chunk = simtime.Millisecond
	}
	for {
		s.sim.RunUntil(s.sim.Now().Add(chunk))
		if s.runErr != nil {
			return s.runErr
		}
		if s.done() {
			// Let any in-flight hypervisor activity (e.g. the final
			// grant switch-back) drain so overhead accounting is
			// complete, then close the trailing partition span.
			s.sim.RunUntil(s.sim.Now().Add(chunk))
			s.preempt()
			return s.runErr
		}
		if s.sim.Now() >= maxHorizon {
			return errors.New("hv: simulation did not complete before horizon")
		}
	}
}

// failRun records the first fatal runtime inconsistency; the event loop
// keeps draining (the DES has no abort primitive) but RunToCompletion
// reports the failure instead of a clean completion.
func (s *System) failRun(err error) {
	if s.runErr == nil {
		s.runErr = err
	}
}

// RunErr returns the recorded fatal runtime error, if any — for callers
// driving the simulation with Run instead of RunToCompletion.
func (s *System) RunErr() error { return s.runErr }

// FlushAccounting closes the currently open partition execution span so
// time accounting is exact up to Now(). Call after Run when inspecting
// guest/partition time; RunToCompletion flushes automatically.
func (s *System) FlushAccounting() {
	s.preempt()
	s.dispatch()
}

// CheckInvariants verifies global accounting invariants after a run:
// every raised IRQ is either recorded or still queued, counters are
// consistent, and no partition's interference exceeds the run duration.
func (s *System) CheckInvariants() error {
	var queued int
	for _, p := range s.parts {
		queued += p.queue.len()
	}
	recorded := uint64(s.log.Len()) //nolint:gosec // count is small
	expected := s.expectedRecords()
	var raised uint64
	pendingDeliveries := uint64(0)
	for _, src := range s.srcs {
		raised += src.Raised
		if s.ic.Pending(src.Line) {
			pendingDeliveries += uint64(len(src.Subscribers))
		}
	}
	if recorded+uint64(queued)+pendingDeliveries != expected {
		return fmt.Errorf("hv: recorded %d + queued %d + pending %d != expected %d",
			recorded, queued, pendingDeliveries, expected)
	}
	if s.stats.Arrivals != raised+s.stats.LostIRQs {
		return fmt.Errorf("hv: arrivals %d != raised %d + lost %d",
			s.stats.Arrivals, raised, s.stats.LostIRQs)
	}
	elapsed := s.sim.Now().Sub(0)
	for _, p := range s.parts {
		if p.StolenInterposed > elapsed {
			return fmt.Errorf("hv: partition %s interference %v exceeds elapsed %v",
				p.Name, p.StolenInterposed, elapsed)
		}
	}
	if s.stats.CtxSwitches < s.stats.TDMASwitches {
		return errors.New("hv: context switch counter inconsistent")
	}
	return nil
}
