package hv

import (
	"testing"

	"repro/internal/arm"
	"repro/internal/monitor"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/tracerec"
	"repro/internal/workload"
)

func us(v int64) simtime.Duration { return simtime.Micros(v) }
func tt(v int64) simtime.Time     { return simtime.Time(simtime.Micros(v)) }

// paperSlots is the §6.1 partition layout: subscriber 6000 µs, second
// application partition 6000 µs, housekeeping 2000 µs.
func paperSlots() []SlotConfig {
	return []SlotConfig{
		{Name: "app1", Length: us(6000)},
		{Name: "app2", Length: us(6000)},
		{Name: "hk", Length: us(2000)},
	}
}

func build(t *testing.T, cfg Config) *System {
	t.Helper()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func runAll(t *testing.T, sys *System) {
	t.Helper()
	if err := sys.RunToCompletion(tt(100_000_000)); err != nil {
		t.Fatal(err)
	}
	if err := sys.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDirectLatencyExact(t *testing.T) {
	costs := arm.DefaultCosts()
	cfg := Config{
		Slots: paperSlots(),
		Costs: costs,
		Sources: []SourceConfig{{
			Name: "t0", Subscriber: 0, CTH: us(6), CBH: us(30),
			Arrivals: []simtime.Time{tt(1000)}, // inside app1's slot
		}},
	}
	sys := build(t, cfg)
	runAll(t, sys)
	recs := sys.Log().Records
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0].Mode != tracerec.Direct {
		t.Fatalf("mode = %v", recs[0].Mode)
	}
	want := us(6) + costs.QueuePush + costs.QueuePop + us(30)
	if got := recs[0].Latency(); got != want {
		t.Fatalf("direct latency = %v, want %v", got, want)
	}
}

func TestDelayedLatencyExact(t *testing.T) {
	costs := arm.DefaultCosts()
	cfg := Config{
		Slots: paperSlots(),
		Costs: costs,
		Sources: []SourceConfig{{
			Name: "t0", Subscriber: 0, CTH: us(6), CBH: us(30),
			Arrivals: []simtime.Time{tt(7000)}, // inside app2's slot
		}},
	}
	sys := build(t, cfg)
	runAll(t, sys)
	recs := sys.Log().Records
	if recs[0].Mode != tracerec.Delayed {
		t.Fatalf("mode = %v", recs[0].Mode)
	}
	// Waits for app1's next slot at 14000, pays the TDMA context
	// switch, then queue pop + bottom handler.
	wantDone := tt(14000).Add(costs.CtxSwitch + costs.QueuePop + us(30))
	if recs[0].Done != wantDone {
		t.Fatalf("done = %v, want %v", recs[0].Done, wantDone)
	}
}

func TestInterposedLatencyExact(t *testing.T) {
	costs := arm.DefaultCosts()
	cfg := Config{
		Slots: paperSlots(),
		Costs: costs,
		Mode:  Monitored,
		Sources: []SourceConfig{{
			Name: "t0", Subscriber: 0, CTH: us(6), CBH: us(30),
			Arrivals: []simtime.Time{tt(7000)},
			Monitor:  monitor.NewDMin(us(1000)),
		}},
	}
	sys := build(t, cfg)
	runAll(t, sys)
	recs := sys.Log().Records
	if recs[0].Mode != tracerec.Interposed {
		t.Fatalf("mode = %v", recs[0].Mode)
	}
	// Top handler (C_TH + push + C_Mon), scheduler manipulation,
	// context switch in, queue pop, bottom handler.
	want := us(6) + costs.QueuePush + costs.Monitor +
		costs.Sched + costs.CtxSwitch + costs.QueuePop + us(30)
	if got := recs[0].Latency(); got != want {
		t.Fatalf("interposed latency = %v, want %v", got, want)
	}
	st := sys.Stats()
	if st.InterposedGrants != 1 {
		t.Fatalf("grants = %d", st.InterposedGrants)
	}
	// The grant charges exactly two extra context switches (eq. 13).
	if st.CtxSwitches != st.TDMASwitches+2 {
		t.Fatalf("ctx switches = %d, TDMA = %d", st.CtxSwitches, st.TDMASwitches)
	}
}

func TestMonitorViolationDelaysSecondIRQ(t *testing.T) {
	cfg := Config{
		Slots: paperSlots(),
		Costs: arm.DefaultCosts(),
		Mode:  Monitored,
		Sources: []SourceConfig{{
			Name: "t0", Subscriber: 0, CTH: us(6), CBH: us(30),
			// Both in app2's slot, 400 µs apart with dmin 1000 µs.
			Arrivals: []simtime.Time{tt(7000), tt(7400)},
			Monitor:  monitor.NewDMin(us(1000)),
		}},
	}
	sys := build(t, cfg)
	runAll(t, sys)
	recs := sys.Log().Records
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0].Mode != tracerec.Interposed {
		t.Fatalf("first mode = %v", recs[0].Mode)
	}
	if recs[1].Mode != tracerec.Delayed {
		t.Fatalf("second mode = %v", recs[1].Mode)
	}
	if st := sys.Stats(); st.DeniedViolation != 1 {
		t.Fatalf("denied violations = %d", st.DeniedViolation)
	}
}

func TestFIFOOrderAcrossModes(t *testing.T) {
	// A violating IRQ queues ahead of a conforming one; the later
	// grant must execute the queue head (the older IRQ) first — the
	// paper's "queues prevent out-of-order execution".
	cfg := Config{
		Slots: paperSlots(),
		Costs: arm.DefaultCosts(),
		Mode:  Monitored,
		Sources: []SourceConfig{{
			Name: "t0", Subscriber: 0, CTH: us(6), CBH: us(30),
			// First conforms and is granted; second violates
			// (queued); third conforms → its grant serves #2.
			Arrivals: []simtime.Time{tt(6500), tt(6900), tt(8000)},
			Monitor:  monitor.NewDMin(us(1000)),
		}},
	}
	sys := build(t, cfg)
	runAll(t, sys)
	recs := sys.Log().Records
	if len(recs) != 3 {
		t.Fatalf("records = %d", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i) {
			t.Fatalf("completion order broken: record %d has seq %d", i, r.Seq)
		}
		if i > 0 && r.Done < recs[i-1].Done {
			t.Fatalf("completion times out of order")
		}
	}
	// The third grant executed the second (violating) IRQ: it is
	// classified interposed because it ran in a foreign slot.
	if recs[1].Mode != tracerec.Interposed {
		t.Fatalf("queued IRQ served by grant has mode %v", recs[1].Mode)
	}
}

func TestNonCountingFlagsLoseBurst(t *testing.T) {
	// Two arrivals during the masked TDMA switch at 6000–6050 µs: the
	// first latches, the second is lost (§4: flags are not counting).
	cfg := Config{
		Slots: paperSlots(),
		Costs: arm.DefaultCosts(),
		Sources: []SourceConfig{{
			Name: "t0", Subscriber: 0, CTH: us(6), CBH: us(30),
			Arrivals: []simtime.Time{tt(6010), tt(6020)},
		}},
	}
	sys := build(t, cfg)
	runAll(t, sys)
	if got := sys.Sources()[0].Lost; got != 1 {
		t.Fatalf("lost = %d, want 1", got)
	}
	if got := sys.Log().Len(); got != 1 {
		t.Fatalf("records = %d, want 1", got)
	}
	if sys.Controller().TotalLost() != 1 {
		t.Fatal("controller lost counter")
	}
}

func TestDenyNearSlotEndPolicy(t *testing.T) {
	costs := arm.DefaultCosts()
	cfg := Config{
		Slots:  paperSlots(),
		Costs:  costs,
		Mode:   Monitored,
		Policy: DenyNearSlotEnd,
		Sources: []SourceConfig{{
			Name: "t0", Subscriber: 0, CTH: us(6), CBH: us(30),
			// 50 µs before app2's slot ends at 12000: the full
			// interposed sequence (~141 µs) cannot fit.
			Arrivals: []simtime.Time{tt(11950)},
			Monitor:  monitor.NewDMin(us(1000)),
		}},
	}
	sys := build(t, cfg)
	runAll(t, sys)
	recs := sys.Log().Records
	if recs[0].Mode != tracerec.Delayed {
		t.Fatalf("mode = %v, want delayed (fit denial)", recs[0].Mode)
	}
	if st := sys.Stats(); st.DeniedFit != 1 {
		t.Fatalf("denied fit = %d", st.DeniedFit)
	}
	// The conforming-but-denied IRQ consumed no monitor budget: a
	// following conforming IRQ in the next foreign window interposes.
	if sys.Sources()[0].Monitor.Stats().Commits != 0 {
		t.Fatal("denied IRQ consumed monitor budget")
	}
}

func TestSplitOnSlotEndPolicy(t *testing.T) {
	cfg := Config{
		Slots:  paperSlots(),
		Costs:  arm.DefaultCosts(),
		Mode:   Monitored,
		Policy: SplitOnSlotEnd,
		Sources: []SourceConfig{{
			Name: "t0", Subscriber: 0, CTH: us(6), CBH: us(30),
			Arrivals: []simtime.Time{tt(11950)},
			Monitor:  monitor.NewDMin(us(1000)),
		}},
	}
	sys := build(t, cfg)
	runAll(t, sys)
	st := sys.Stats()
	if st.SplitGrants != 1 {
		t.Fatalf("split grants = %d", st.SplitGrants)
	}
	recs := sys.Log().Records
	// The remnant completes in app1's own slot at 14000+.
	if recs[0].Done < tt(14000) {
		t.Fatalf("split remnant completed at %v, before own slot", recs[0].Done)
	}
}

func TestResumeAcrossSlotsPolicy(t *testing.T) {
	cfg := Config{
		Slots:  paperSlots(),
		Costs:  arm.DefaultCosts(),
		Mode:   Monitored,
		Policy: ResumeAcrossSlots,
		Sources: []SourceConfig{{
			Name: "t0", Subscriber: 0, CTH: us(6), CBH: us(30),
			Arrivals: []simtime.Time{tt(11950)},
			Monitor:  monitor.NewDMin(us(1000)),
		}},
	}
	sys := build(t, cfg)
	runAll(t, sys)
	st := sys.Stats()
	if st.ResumedGrants != 1 {
		t.Fatalf("resumed grants = %d", st.ResumedGrants)
	}
	recs := sys.Log().Records
	if recs[0].Mode != tracerec.Interposed {
		t.Fatalf("mode = %v", recs[0].Mode)
	}
	// Completes shortly after the 12000 boundary — far before app1's
	// own slot at 14000.
	if recs[0].Done >= tt(14000) || recs[0].Done <= tt(12000) {
		t.Fatalf("resumed grant completed at %v", recs[0].Done)
	}
}

func TestPendingSlotSwitchDeferredByMaskedHandler(t *testing.T) {
	// An IRQ 1 µs before a boundary keeps interrupts masked across it;
	// the switch happens right after, and the grid is preserved.
	cfg := Config{
		Slots: paperSlots(),
		Costs: arm.DefaultCosts(),
		Sources: []SourceConfig{{
			Name: "t0", Subscriber: 0, CTH: us(6), CBH: us(30),
			Arrivals: []simtime.Time{tt(5999)},
		}},
	}
	sys := build(t, cfg)
	sys.Run(tt(14100))
	sys.FlushAccounting()
	// After one full cycle the system must be back in app1's slot:
	// the deferred switch did not shift the grid.
	if got := sys.ActivePartition(); got != 0 {
		t.Fatalf("active partition = %d at 14100, want 0", got)
	}
	if st := sys.Stats(); st.TDMASwitches != 3 {
		t.Fatalf("TDMA switches = %d, want 3", st.TDMASwitches)
	}
}

func TestBHTimeInvariant(t *testing.T) {
	// Total bottom-handler execution equals records × (pop + C_BH),
	// regardless of preemptions, splits and resumes.
	costs := arm.DefaultCosts()
	for _, policy := range []SlotEndPolicy{DenyNearSlotEnd, SplitOnSlotEnd, ResumeAcrossSlots} {
		src := rng.New(uint64(policy) + 5)
		arrivals := workload.Timestamps(workload.Exponential(src, us(900), 400))
		cfg := Config{
			Slots:  paperSlots(),
			Costs:  costs,
			Mode:   Monitored,
			Policy: policy,
			Sources: []SourceConfig{{
				Name: "t0", Subscriber: 0, CTH: us(6), CBH: us(30),
				Arrivals: arrivals,
				Monitor:  monitor.NewDMin(us(900)),
			}},
		}
		sys := build(t, cfg)
		runAll(t, sys)
		want := simtime.Duration(sys.Log().Len()) * (costs.QueuePop + us(30))
		if got := sys.Stats().BHTime; got != want {
			t.Fatalf("policy %v: BHTime = %v, want %v", policy, got, want)
		}
	}
}

func TestInterferenceNeverExceedsEq14Bound(t *testing.T) {
	// The paper's safety claim: interference from interposed bottom
	// handlers on any partition within any window Δt is bounded by
	// ⌈Δt/dmin⌉·C'_BH. Checked over the whole run for each partition.
	costs := arm.DefaultCosts()
	dmin := us(800)
	cbh := us(30)
	for seed := uint64(1); seed <= 5; seed++ {
		src := rng.New(seed)
		arrivals := workload.Timestamps(workload.Exponential(src, us(600), 500))
		cfg := Config{
			Slots:  paperSlots(),
			Costs:  costs,
			Mode:   Monitored,
			Policy: ResumeAcrossSlots,
			Sources: []SourceConfig{{
				Name: "t0", Subscriber: 0, CTH: us(6), CBH: cbh,
				Arrivals: arrivals,
				Monitor:  monitor.NewDMin(dmin),
			}},
		}
		sys := build(t, cfg)
		runAll(t, sys)
		elapsed := sys.Now().Sub(0)
		bound := simtime.Duration(simtime.CeilDiv(elapsed, dmin)) * costs.EffectiveBH(cbh)
		for _, p := range sys.Partitions() {
			if p.Index == 0 {
				continue // the subscriber is not a victim
			}
			if p.StolenInterposed > bound {
				t.Fatalf("seed %d: partition %s interference %v exceeds eq.14 bound %v",
					seed, p.Name, p.StolenInterposed, bound)
			}
		}
	}
}

func TestOriginalModeNeverInterposes(t *testing.T) {
	src := rng.New(9)
	arrivals := workload.Timestamps(workload.Exponential(src, us(700), 300))
	cfg := Config{
		Slots: paperSlots(),
		Costs: arm.DefaultCosts(),
		Mode:  Original,
		Sources: []SourceConfig{{
			Name: "t0", Subscriber: 0, CTH: us(6), CBH: us(30),
			Arrivals: arrivals,
			Monitor:  monitor.NewDMin(us(1)), // present but unused
		}},
	}
	sys := build(t, cfg)
	runAll(t, sys)
	st := sys.Stats()
	if st.InterposedGrants != 0 {
		t.Fatalf("original mode granted %d interposed IRQs", st.InterposedGrants)
	}
	for _, p := range sys.Partitions() {
		if p.StolenInterposed != 0 {
			t.Fatalf("partition %s has interposed interference in original mode", p.Name)
		}
	}
	for _, r := range sys.Log().Records {
		if r.Mode == tracerec.Interposed {
			t.Fatal("interposed record in original mode")
		}
	}
}

func TestMonitoredWithoutMonitorDelays(t *testing.T) {
	cfg := Config{
		Slots: paperSlots(),
		Costs: arm.DefaultCosts(),
		Mode:  Monitored,
		Sources: []SourceConfig{{
			Name: "t0", Subscriber: 0, CTH: us(6), CBH: us(30),
			Arrivals: []simtime.Time{tt(7000)},
		}},
	}
	sys := build(t, cfg)
	runAll(t, sys)
	if st := sys.Stats(); st.DeniedNoMonitor != 1 {
		t.Fatalf("DeniedNoMonitor = %d", st.DeniedNoMonitor)
	}
	if sys.Log().Records[0].Mode != tracerec.Delayed {
		t.Fatal("unmonitored source was not delayed")
	}
}

func TestMultipleSourcesMultipleSubscribers(t *testing.T) {
	s1 := rng.New(21)
	s2 := rng.New(22)
	cfg := Config{
		Slots:  paperSlots(),
		Costs:  arm.DefaultCosts(),
		Mode:   Monitored,
		Policy: ResumeAcrossSlots,
		Sources: []SourceConfig{
			{
				Name: "a", Subscriber: 0, CTH: us(6), CBH: us(30),
				Arrivals: workload.Timestamps(workload.Exponential(s1, us(1100), 300)),
				Monitor:  monitor.NewDMin(us(1100)),
			},
			{
				Name: "b", Subscriber: 1, CTH: us(4), CBH: us(20),
				Arrivals: workload.Timestamps(workload.Exponential(s2, us(1700), 200)),
				Monitor:  monitor.NewDMin(us(1700)),
			},
		},
	}
	sys := build(t, cfg)
	runAll(t, sys)
	// Per-source FIFO: completion order must match sequence order.
	var lastSeq [2]int64
	lastSeq[0], lastSeq[1] = -1, -1
	for _, r := range sys.Log().Records {
		if int64(r.Seq) <= lastSeq[r.Source] {
			t.Fatalf("source %d completed seq %d after %d", r.Source, r.Seq, lastSeq[r.Source])
		}
		lastSeq[r.Source] = int64(r.Seq)
	}
	if sys.Log().Len() < 490 {
		t.Fatalf("records = %d", sys.Log().Len())
	}
}

func TestIdleSystemGuestAccounting(t *testing.T) {
	costs := arm.DefaultCosts()
	cfg := Config{
		Slots: paperSlots(),
		Costs: costs,
		Sources: []SourceConfig{{
			Name: "t0", Subscriber: 0, CTH: us(6), CBH: us(30),
			Arrivals: []simtime.Time{}, // no IRQs: pure TDMA rotation
		}},
	}
	sys := build(t, cfg)
	sys.Run(tt(28000)) // exactly two TDMA cycles
	sys.FlushAccounting()
	// app1 executes [0,6000) and [14050,20000): the second slot loses
	// the TDMA switch overhead.
	p := sys.Partitions()[0]
	want := us(6000) + (us(6000) - costs.CtxSwitch)
	if p.GuestTime != want {
		t.Fatalf("app1 guest time = %v, want %v", p.GuestTime, want)
	}
}

func TestConfigValidation(t *testing.T) {
	good := Config{
		Slots: paperSlots(),
		Sources: []SourceConfig{{
			Name: "t0", Subscriber: 0, CTH: us(6), CBH: us(30),
		}},
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{},
		{Slots: []SlotConfig{{Name: "x", Length: 0}}},
		{Slots: paperSlots(), Sources: []SourceConfig{{Subscriber: 9, CTH: 1, CBH: 1}}},
		{Slots: paperSlots(), Sources: []SourceConfig{{Subscriber: 0, CTH: 0, CBH: 1}}},
		{Slots: paperSlots(), Sources: []SourceConfig{{Subscriber: 0, CTH: 1, CBH: 1,
			Arrivals: []simtime.Time{tt(10), tt(5)}}}},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	// A learning monitor needs LearnEvents and LearnBound.
	lm, _ := monitor.NewLearning(2)
	c := Config{
		Slots: paperSlots(),
		Mode:  Monitored,
		Sources: []SourceConfig{{
			Name: "t0", Subscriber: 0, CTH: us(6), CBH: us(30), Monitor: lm,
		}},
	}
	if c.Validate() == nil {
		t.Error("learning monitor without bound accepted")
	}
}

func TestCycleLength(t *testing.T) {
	c := Config{Slots: paperSlots()}
	if got := c.CycleLength(); got != us(14000) {
		t.Fatalf("cycle = %v", got)
	}
}

func TestStringers(t *testing.T) {
	if Original.String() != "original" || Monitored.String() != "monitored" {
		t.Fatal("mode strings")
	}
	if Mode(7).String() == "" {
		t.Fatal("unknown mode")
	}
	for _, p := range []SlotEndPolicy{DenyNearSlotEnd, SplitOnSlotEnd, ResumeAcrossSlots, SlotEndPolicy(9)} {
		if p.String() == "" {
			t.Fatal("policy string empty")
		}
	}
}
