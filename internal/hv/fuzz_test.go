package hv

import (
	"fmt"
	"testing"

	"repro/internal/arm"
	"repro/internal/monitor"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/tracerec"
	"repro/internal/workload"
)

// randomConfig builds a random-but-valid system: 2–5 partitions with
// random slot lengths (optionally a random multi-window schedule), 1–4
// IRQ sources with random handler WCETs, subscribers, arrival streams and
// monitoring conditions, under a random mode and policy.
func randomConfig(src *rng.Source) Config {
	nParts := 2 + src.Intn(4)
	cfg := Config{Costs: arm.DefaultCosts()}
	for i := 0; i < nParts; i++ {
		cfg.Slots = append(cfg.Slots, SlotConfig{
			Name:   fmt.Sprintf("p%d", i),
			Length: us(int64(1000 + src.Intn(8000))),
		})
	}
	if src.Intn(3) == 0 {
		// Random explicit window schedule: 3–8 windows.
		nWin := 3 + src.Intn(6)
		for i := 0; i < nWin; i++ {
			cfg.Windows = append(cfg.Windows, WindowConfig{
				Partition: src.Intn(nParts),
				Length:    us(int64(800 + src.Intn(5000))),
			})
		}
	}
	cfg.Mode = Mode(src.Intn(2))
	cfg.Policy = SlotEndPolicy(src.Intn(3))

	// Per-partition supply share within the cycle, to keep generated
	// workloads feasible (a genuinely overloaded partition grows its
	// queue without bound — correct behaviour, but not a terminating
	// test case).
	cycle := cfg.CycleLength()
	supply := make([]simtime.Duration, nParts)
	for _, w := range cfg.schedule() {
		supply[w.Partition] += w.Length
	}

	// Only partitions that actually own windows can subscribe (a
	// partition without supply never drains its queue).
	var supplied []int
	for p, sup := range supply {
		if sup > 0 {
			supplied = append(supplied, p)
		}
	}

	nSrc := 1 + src.Intn(4)
	for i := 0; i < nSrc; i++ {
		sc := SourceConfig{
			Name:       fmt.Sprintf("irq%d", i),
			Subscriber: supplied[src.Intn(len(supplied))],
			CTH:        us(int64(1 + src.Intn(10))),
			CBH:        us(int64(5 + src.Intn(60))),
		}
		subs := []int{sc.Subscriber}
		switch src.Intn(3) {
		case 0:
			// Unmonitored.
		case 1:
			sc.Monitor = monitor.NewDMin(us(int64(100 + src.Intn(3000))))
		case 2:
			if len(supplied) >= 2 {
				a := src.Intn(len(supplied))
				b := (a + 1 + src.Intn(len(supplied)-1)) % len(supplied)
				sc.Subscribers = []int{supplied[a], supplied[b]}
				subs = sc.Subscribers
			}
		}
		// Mean interarrival long enough that the bottom-handler load
		// stays below ~25 % of the tightest subscriber's supply share.
		minSupply := supply[subs[0]]
		for _, p := range subs[1:] {
			if supply[p] < minSupply {
				minSupply = supply[p]
			}
		}
		demandPerEvent := sc.CBH + cfg.Costs.QueuePop
		minMean := simtime.FromMicrosF(demandPerEvent.MicrosF() * 4 * float64(cycle) / float64(minSupply))
		mean := minMean + us(int64(src.Intn(4000)))
		events := 50 + src.Intn(250)
		sc.Arrivals = workload.Timestamps(workload.Exponential(src, mean, events))
		cfg.Sources = append(cfg.Sources, sc)
	}
	return cfg
}

// TestFuzzInvariants runs many random systems to completion and checks
// every global invariant: accounting closure, per-source-per-partition
// FIFO, BH time conservation, eq. (14) interference bounds for monitored
// sources, and monotone completion of each queue.
func TestFuzzInvariants(t *testing.T) {
	iterations := 60
	if testing.Short() {
		iterations = 10
	}
	for seed := uint64(1); seed <= uint64(iterations); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			gen := rng.New(seed * 7919)
			cfg := randomConfig(gen)
			sys, err := New(cfg)
			if err != nil {
				t.Fatalf("config rejected: %v", err)
			}
			if err := sys.RunToCompletion(tt(10_000_000_000)); err != nil {
				t.Fatal(err)
			}
			if err := sys.CheckInvariants(); err != nil {
				t.Fatal(err)
			}

			// Per-(source, partition) FIFO.
			type key struct{ src, part int }
			last := map[key]int64{}
			for _, r := range sys.Log().Records {
				k := key{r.Source, r.Partition}
				if prev, ok := last[k]; ok && int64(r.Seq) <= prev {
					t.Fatalf("FIFO violated for source %d partition %d", r.Source, r.Partition)
				}
				last[k] = int64(r.Seq)
			}

			// BH time conservation: Σ per-record (pop + C_BH).
			var wantBH simtime.Duration
			for _, r := range sys.Log().Records {
				wantBH += cfg.Costs.QueuePop + sys.Sources()[r.Source].CBH
			}
			if got := sys.Stats().BHTime; got != wantBH {
				t.Fatalf("BHTime = %v, want %v", got, wantBH)
			}

			// eq. (14): per-partition interposed interference within
			// the summed bound of all monitored sources.
			elapsed := sys.Now().Sub(0)
			var bound simtime.Duration
			for _, s := range sys.Sources() {
				if s.Monitor == nil {
					continue
				}
				cond := s.Monitor.Condition()
				if cond == nil || cond.Dist[0] <= 0 {
					continue
				}
				grants := simtime.CeilDiv(elapsed, cond.Dist[0])
				bound += simtime.Duration(grants) * cfg.Costs.EffectiveBH(s.CBH)
			}
			for _, p := range sys.Partitions() {
				if p.StolenInterposed > bound {
					t.Fatalf("partition %s interference %v exceeds bound %v",
						p.Name, p.StolenInterposed, bound)
				}
			}

			// Mode constraints.
			if cfg.Mode == Original {
				if sys.Stats().InterposedGrants != 0 {
					t.Fatal("grants in original mode")
				}
				for _, r := range sys.Log().Records {
					if r.Mode == tracerec.Interposed {
						t.Fatal("interposed record in original mode")
					}
				}
			}
		})
	}
}
