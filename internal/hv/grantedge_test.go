package hv

import (
	"testing"

	"repro/internal/arm"
	"repro/internal/monitor"
	"repro/internal/simtime"
	"repro/internal/tracerec"
)

func TestGrantResumesAcrossMultipleBoundaries(t *testing.T) {
	// A very long interposed handler (huge declared C_BH so the budget
	// never cuts) spans several short windows; with ResumeAcrossSlots
	// it keeps resuming until done.
	costs := arm.DefaultCosts()
	cfg := Config{
		Slots: []SlotConfig{
			{Name: "sub", Length: us(2000)},
			{Name: "a", Length: us(700)},
			{Name: "b", Length: us(700)},
		},
		Costs:  costs,
		Mode:   Monitored,
		Policy: ResumeAcrossSlots,
		Sources: []SourceConfig{{
			Name: "t0", Subscriber: 0, CTH: us(6), CBH: us(1500),
			Arrivals: []simtime.Time{tt(2100)}, // start of window "a"
			Monitor:  monitor.NewDMin(us(100)),
		}},
	}
	sys := build(t, cfg)
	runAll(t, sys)
	st := sys.Stats()
	if st.ResumedGrants < 2 {
		t.Fatalf("resumed grants = %d, want ≥ 2 (multiple boundary crossings)", st.ResumedGrants)
	}
	rec := sys.Log().Records[0]
	if rec.Mode != tracerec.Interposed {
		t.Fatalf("mode = %v", rec.Mode)
	}
	// Faster than delayed handling, which would only *start* the
	// 1500 µs handler at the subscriber's window (3400 + C_ctx) and
	// finish around 4950 µs.
	delayedDone := tt(3400) + simtime.Time(costs.CtxSwitch+costs.QueuePop+us(1500))
	if rec.Done >= delayedDone {
		t.Fatalf("done = %v — no faster than delayed handling (%v)", rec.Done, delayedDone)
	}
}

func TestInterposingUnderWindowSchedule(t *testing.T) {
	// Monitored interposing works with explicit window schedules: an
	// IRQ arriving in a foreign window is interposed there.
	cfg := Config{
		Slots: arincSlots(),
		Windows: []WindowConfig{
			{Partition: 0, Length: us(3000)},
			{Partition: 1, Length: us(6000)},
			{Partition: 0, Length: us(3000)},
			{Partition: 2, Length: us(2000)},
		},
		Costs:  arm.DefaultCosts(),
		Mode:   Monitored,
		Policy: ResumeAcrossSlots,
		Sources: []SourceConfig{{
			Name: "t0", Subscriber: 0, CTH: us(6), CBH: us(30),
			Arrivals: []simtime.Time{tt(5000)}, // app2's window
			Monitor:  monitor.NewDMin(us(1000)),
		}},
	}
	sys := build(t, cfg)
	runAll(t, sys)
	rec := sys.Log().Records[0]
	if rec.Mode != tracerec.Interposed {
		t.Fatalf("mode = %v", rec.Mode)
	}
	// Completed inside app2's window, well before app1's next window
	// at 9000.
	if rec.Done >= tt(9000) {
		t.Fatalf("done = %v, want before 9000µs", rec.Done)
	}
}

func TestDenyFitUsesCurrentWindowEnd(t *testing.T) {
	// Under DenyNearSlotEnd with a window schedule, the fit check
	// applies to the current *window*, not the nominal slot sum.
	cfg := Config{
		Slots: arincSlots(),
		Windows: []WindowConfig{
			{Partition: 0, Length: us(3000)},
			{Partition: 1, Length: us(6000)},
			{Partition: 0, Length: us(3000)},
			{Partition: 2, Length: us(2000)},
		},
		Costs:  arm.DefaultCosts(),
		Mode:   Monitored,
		Policy: DenyNearSlotEnd,
		Sources: []SourceConfig{{
			Name: "t0", Subscriber: 0, CTH: us(6), CBH: us(30),
			// 50 µs before app2's window ends at 9000.
			Arrivals: []simtime.Time{tt(8950)},
			Monitor:  monitor.NewDMin(us(1000)),
		}},
	}
	sys := build(t, cfg)
	runAll(t, sys)
	if st := sys.Stats(); st.DeniedFit != 1 {
		t.Fatalf("denied fit = %d, want 1", st.DeniedFit)
	}
	// Delayed — but only to app1's next window at 9000, not a cycle.
	rec := sys.Log().Records[0]
	if rec.Mode != tracerec.Delayed {
		t.Fatalf("mode = %v", rec.Mode)
	}
	if rec.Done >= tt(10000) {
		t.Fatalf("done = %v, want shortly after 9000µs", rec.Done)
	}
}

func TestMonitorRecoversAfterViolations(t *testing.T) {
	// Violating IRQs do not poison the monitor: once spacing recovers,
	// interposing resumes (the monitor tracks grants, not violations).
	cfg := Config{
		Slots: paperSlots(),
		Costs: arm.DefaultCosts(),
		Mode:  Monitored,
		Sources: []SourceConfig{{
			Name: "t0", Subscriber: 0, CTH: us(6), CBH: us(30),
			Arrivals: []simtime.Time{
				tt(7000),  // granted
				tt(7200),  // violation
				tt(7400),  // violation
				tt(8100),  // ≥ dmin after the grant at 7000: granted
				tt(11000), // granted
			},
			Monitor: monitor.NewDMin(us(1000)),
		}},
	}
	sys := build(t, cfg)
	runAll(t, sys)
	st := sys.Stats()
	if st.DeniedViolation != 2 {
		t.Fatalf("violations = %d, want 2", st.DeniedViolation)
	}
	if st.InterposedGrants != 3 {
		t.Fatalf("grants = %d, want 3 (recovery after violations)", st.InterposedGrants)
	}
}
