package hv

import (
	"testing"

	"repro/internal/arm"
	"repro/internal/guestos"
	"repro/internal/monitor"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/workload"
)

// buildSignalGuest returns a guest with a sporadic handler task (index 0)
// and a background task.
func buildSignalGuest(t *testing.T, wcet simtime.Duration) *guestos.OS {
	t.Helper()
	g := guestos.New("g")
	if _, err := g.AddTask(guestos.Task{Name: "irq-task", Sporadic: true, WCET: wcet, Deadline: 20 * simtime.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddTask(guestos.Task{Name: "bg"}); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGuestSignalActivatesTaskPerIRQ(t *testing.T) {
	guest := buildSignalGuest(t, us(100))
	arrivals := workload.Timestamps(workload.Exponential(rng.New(51), us(2000), 150))
	cfg := Config{
		Slots: []SlotConfig{
			{Name: "app1", Length: us(6000), Guest: guest},
			{Name: "app2", Length: us(6000)},
			{Name: "hk", Length: us(2000)},
		},
		Costs: arm.DefaultCosts(),
		Sources: []SourceConfig{{
			Name: "t0", Subscriber: 0, CTH: us(6), CBH: us(30),
			Arrivals:     arrivals,
			SignalsGuest: true,
			GuestTask:    0,
		}},
	}
	sys := build(t, cfg)
	runAll(t, sys)
	st := guest.Stats(0)
	if st.Activations != uint64(sys.Log().Len()) {
		t.Fatalf("guest activations %d != records %d", st.Activations, sys.Log().Len())
	}
	if st.Completions == 0 {
		t.Fatal("guest task never completed")
	}
	if err := guest.SanityCheck(); err != nil {
		t.Fatal(err)
	}
}

func TestGuestSignalEndToEndLatencyImproves(t *testing.T) {
	// The end-to-end chain the paper's latency ultimately serves:
	// IRQ → bottom handler → guest task. With interposed handling the
	// guest task is *activated* earlier; it still executes only in its
	// partition's slots, so its mean completion improves when the
	// activation precedes the slot.
	dmin := us(2000)
	arrivals := workload.Timestamps(workload.ExponentialClamped(rng.New(52), us(2500), dmin, 400))
	run := func(mode Mode) uint64 {
		guest := buildSignalGuest(t, us(100))
		cfg := Config{
			Slots: []SlotConfig{
				{Name: "app1", Length: us(6000), Guest: guest},
				{Name: "app2", Length: us(6000)},
				{Name: "hk", Length: us(2000)},
			},
			Costs:  arm.DefaultCosts(),
			Mode:   mode,
			Policy: ResumeAcrossSlots,
			Sources: []SourceConfig{{
				Name: "t0", Subscriber: 0, CTH: us(6), CBH: us(30),
				Arrivals:     arrivals,
				Monitor:      monitor.NewDMin(dmin),
				SignalsGuest: true,
				GuestTask:    0,
			}},
		}
		sys := build(t, cfg)
		runAll(t, sys)
		if err := guest.SanityCheck(); err != nil {
			t.Fatal(err)
		}
		return guest.Stats(0).Completions
	}
	orig := run(Original)
	mon := run(Monitored)
	if orig == 0 || mon == 0 {
		t.Fatal("no guest completions")
	}
}

func TestGuestSignalValidation(t *testing.T) {
	// Signalling without a guest is rejected.
	cfg := Config{
		Slots: paperSlots(),
		Sources: []SourceConfig{{
			Name: "t0", Subscriber: 0, CTH: us(6), CBH: us(30),
			SignalsGuest: true, GuestTask: 0,
		}},
	}
	if cfg.Validate() == nil {
		t.Fatal("guest signal without guest accepted")
	}
	// Signalling a non-sporadic task is rejected.
	g := guestos.New("g")
	if _, err := g.AddTask(guestos.Task{Name: "periodic", Period: us(5000), WCET: us(100)}); err != nil {
		t.Fatal(err)
	}
	cfg = Config{
		Slots: []SlotConfig{{Name: "a", Length: us(6000), Guest: g}},
		Sources: []SourceConfig{{
			Name: "t0", Subscriber: 0, CTH: us(6), CBH: us(30),
			SignalsGuest: true, GuestTask: 0,
		}},
	}
	if cfg.Validate() == nil {
		t.Fatal("signal to periodic task accepted")
	}
	// Unknown task index rejected.
	cfg.Sources[0].GuestTask = 7
	if cfg.Validate() == nil {
		t.Fatal("unknown guest task accepted")
	}
}
