// Package hv simulates the paper's real-time hypervisor (uC/OS-MMU
// style, §3) cycle-accurately on a discrete-event timeline:
//
//   - TDMA partition scheduling with fixed slot lengths and a static
//     order; unused slot capacity is left unused (complete temporal
//     isolation of partition CPU supply),
//   - split interrupt handling: hardware IRQs are latched by a
//     non-counting interrupt controller (internal/intc), served by a top
//     handler in hypervisor context, and completed by a bottom handler in
//     the subscriber partition's context via per-partition FIFO interrupt
//     queues (Fig. 2),
//   - the original top handler (Fig. 4a: direct or delayed handling) and
//     the modified top handler (Fig. 4b: additionally *interposed*
//     handling into foreign slots, admitted by a δ⁻ activation monitor
//     and budget-enforced to C_BH by the hypervisor),
//   - every overhead of §6.2: monitor execution C_Mon, scheduler
//     manipulation C_sched, and two extra context switches C_ctx per
//     interposed IRQ.
//
// The simulation measures exactly what the paper measures: per-IRQ
// latency from hardware arrival to bottom-handler completion, the
// handling mode split (direct/interposed/delayed), context-switch counts,
// and — beyond the paper's measurements — the interference each partition
// actually suffers from foreign interposed bottom handlers, so tests can
// check it against the analytic bound of eq. (14).
package hv

import (
	"errors"
	"fmt"

	"repro/internal/arm"
	"repro/internal/curves"
	"repro/internal/guestos"
	"repro/internal/intc"
	"repro/internal/monitor"
	"repro/internal/schedtrace"
	"repro/internal/simtime"
	"repro/internal/tracerec"
)

// Mode selects the top-handler variant.
type Mode int

const (
	// Original is the unmodified top handler of Fig. 4a: direct or
	// delayed handling only.
	Original Mode = iota
	// Monitored is the modified top handler of Fig. 4b: foreign-slot
	// IRQs are checked against the activation monitor and interposed
	// when conforming.
	Monitored
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Original:
		return "original"
	case Monitored:
		return "monitored"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// SlotEndPolicy decides what happens when an interposed bottom handler
// would collide with the end of the current TDMA slot. The paper does not
// specify this corner; both defensible choices are implemented (see
// DESIGN.md §5).
type SlotEndPolicy int

const (
	// DenyNearSlotEnd refuses to interpose when the full sequence
	// (C_sched + 2·C_ctx + C_BH) does not fit into the remaining slot;
	// the IRQ is handled as delayed instead. Default.
	DenyNearSlotEnd SlotEndPolicy = iota
	// SplitOnSlotEnd allows the grant and, if the slot ends first,
	// saves the partially executed bottom handler into its partition
	// context; it completes at the partition's next own slot.
	SplitOnSlotEnd
	// ResumeAcrossSlots allows the grant and, if the slot ends first,
	// resumes the interposed bottom handler right after the TDMA
	// switch in the next slot (one extra context switch in). This
	// models the paper's modified TDMA scheduler, whose Fig. 6c shows
	// neither delayed IRQs nor TDMA-bound worst-case latencies.
	ResumeAcrossSlots
)

// String implements fmt.Stringer.
func (p SlotEndPolicy) String() string {
	switch p {
	case DenyNearSlotEnd:
		return "deny-near-slot-end"
	case SplitOnSlotEnd:
		return "split-on-slot-end"
	case ResumeAcrossSlots:
		return "resume-across-slots"
	default:
		return fmt.Sprintf("SlotEndPolicy(%d)", int(p))
	}
}

// SlotConfig describes one TDMA partition.
type SlotConfig struct {
	Name string
	// Length is the partition's fixed TDMA slot length T_i.
	Length simtime.Duration
	// Guest optionally attaches a guest OS whose task scheduling is
	// simulated over the partition's execution windows.
	Guest *guestos.OS
}

// WindowConfig is one entry of an explicit window schedule: the given
// partition executes for Length, then the hypervisor switches to the
// next entry. An explicit schedule generalises the one-slot-per-partition
// rotation to ARINC653-style major frames where a partition may own
// several windows per cycle.
type WindowConfig struct {
	Partition int
	Length    simtime.Duration
}

// SourceConfig describes one IRQ source.
type SourceConfig struct {
	Name string
	// Subscriber is the index of the partition whose bottom handler
	// processes this source.
	Subscriber int
	// Subscribers, when non-empty, makes this a *shared* IRQ delivered
	// to several partitions (overriding Subscriber): the top handler
	// pushes an event into every listed partition's queue. §4 notes
	// shared IRQs make interposing "particularly complicated" — this
	// implementation delivers them but never interposes them; each
	// copy is handled direct/delayed by its own partition.
	Subscribers []int
	// CTH and CBH are the top- and bottom-handler WCETs (eq. 6). By
	// default handlers execute for exactly their WCET.
	CTH simtime.Duration
	CBH simtime.Duration
	// ActualBH optionally gives per-arrival actual bottom-handler
	// execution times (indexed by arrival order, last entry repeated).
	// Values below CBH model early completion; values above CBH model
	// WCET overruns — an interposed overrunning handler is cut off at
	// the C_BH budget by the hypervisor (§5: "may execute for at most
	// C_BHi") and its remainder completes in the subscriber's own
	// slot, so the eq. (14) interference bound holds regardless.
	ActualBH []simtime.Duration
	// Arrivals are the absolute hardware-IRQ times, pre-generated as
	// in §6.1.
	Arrivals []simtime.Time
	// Monitor optionally attaches an activation monitor (required for
	// interposing this source in Monitored mode).
	Monitor *monitor.Monitor
	// LearnEvents, when the monitor starts in learning mode, is the
	// number of observed activations after which the hypervisor calls
	// FinishLearning with LearnBound (Appendix A: the first 10 % of
	// the trace).
	LearnEvents int
	LearnBound  *curves.Delta
	// SignalsGuest couples the source to a guest task: every bottom-
	// handler completion activates sporadic task GuestTask in the
	// processing partition's guest OS (the usual RTOS pattern of an
	// ISR signalling a waiting task).
	SignalsGuest bool
	GuestTask    int
}

// Config assembles a simulated system.
type Config struct {
	Slots   []SlotConfig
	Sources []SourceConfig
	Costs   arm.CostModel
	Mode    Mode
	Policy  SlotEndPolicy
	// Windows optionally replaces the default one-slot-per-partition
	// rotation with an explicit cyclic window schedule. Slot lengths
	// in Slots are ignored when Windows is set (partition identity,
	// names and guests still come from Slots).
	Windows []WindowConfig
	// Tracer, when set, records every CPU execution span (guest,
	// handlers, context switches) for Gantt/CSV inspection.
	Tracer *schedtrace.Recorder
	// DisableMonitor, in Monitored mode, makes the modified top
	// handler run the monitoring function (charging C_Mon) but ignore
	// its verdict: every foreign-slot IRQ that passes the remaining
	// admission checks is interposed, and nothing is committed to the
	// trace buffer. This is an ablation hook for the chaos oracle
	// (internal/faults): with the monitor out of the loop a
	// babbling-idiot source must break the eq. (14) invariant, which
	// proves the oracle detects real regressions. Never set it in a
	// production scenario.
	DisableMonitor bool
}

// schedule returns the effective cyclic window schedule.
func (c Config) schedule() []WindowConfig {
	if len(c.Windows) > 0 {
		return c.Windows
	}
	ws := make([]WindowConfig, len(c.Slots))
	for i, s := range c.Slots {
		ws[i] = WindowConfig{Partition: i, Length: s.Length}
	}
	return ws
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if len(c.Slots) == 0 {
		return errors.New("hv: need at least one partition")
	}
	for i, s := range c.Slots {
		// With an explicit window schedule the per-partition slot
		// lengths are ignored and may be zero.
		if len(c.Windows) == 0 && s.Length <= 0 {
			return fmt.Errorf("hv: partition %d (%s) has non-positive slot length", i, s.Name)
		}
	}
	for i, w := range c.Windows {
		if w.Partition < 0 || w.Partition >= len(c.Slots) {
			return fmt.Errorf("hv: window %d references unknown partition %d", i, w.Partition)
		}
		if w.Length <= 0 {
			return fmt.Errorf("hv: window %d has non-positive length", i)
		}
	}
	for i, s := range c.Sources {
		subs := s.Subscribers
		if len(subs) == 0 {
			subs = []int{s.Subscriber}
		}
		for _, sub := range subs {
			if sub < 0 || sub >= len(c.Slots) {
				return fmt.Errorf("hv: source %d (%s) subscribes to unknown partition %d", i, s.Name, sub)
			}
		}
		if len(s.Subscribers) > 0 && s.Monitor != nil {
			return fmt.Errorf("hv: source %d (%s) is shared and cannot be monitored/interposed", i, s.Name)
		}
		for j, a := range s.ActualBH {
			if a <= 0 {
				return fmt.Errorf("hv: source %d (%s) ActualBH[%d] must be positive", i, s.Name, j)
			}
		}
		if s.SignalsGuest {
			for _, sub := range subs {
				g := c.Slots[sub].Guest
				if g == nil {
					return fmt.Errorf("hv: source %d (%s) signals a guest but partition %d has none", i, s.Name, sub)
				}
				task, ok := g.TaskInfo(s.GuestTask)
				if !ok {
					return fmt.Errorf("hv: source %d (%s) signals unknown guest task %d", i, s.Name, s.GuestTask)
				}
				if !task.Sporadic {
					return fmt.Errorf("hv: source %d (%s) signals non-sporadic guest task %q", i, s.Name, task.Name)
				}
			}
		}
		if s.CTH <= 0 || s.CBH <= 0 {
			return fmt.Errorf("hv: source %d (%s) needs positive handler WCETs", i, s.Name)
		}
		for j := 1; j < len(s.Arrivals); j++ {
			if s.Arrivals[j] < s.Arrivals[j-1] {
				return fmt.Errorf("hv: source %d (%s) arrivals not sorted at %d", i, s.Name, j)
			}
		}
		if c.Mode == Monitored && s.Monitor != nil && s.Monitor.LearningActive() {
			if s.LearnEvents <= 0 || s.LearnBound == nil {
				return fmt.Errorf("hv: source %d (%s) has a learning monitor but no LearnEvents/LearnBound", i, s.Name)
			}
			if s.LearnBound.Len() != s.Monitor.L() {
				return fmt.Errorf("hv: source %d (%s) LearnBound length %d != monitor l %d", i, s.Name, s.LearnBound.Len(), s.Monitor.L())
			}
		}
	}
	return nil
}

// CycleLength returns T_TDMA, the sum of all window lengths of the
// effective schedule.
func (c Config) CycleLength() simtime.Duration {
	var sum simtime.Duration
	for _, w := range c.schedule() {
		sum += w.Length
	}
	return sum
}

// Partition is the runtime state of one TDMA partition.
type Partition struct {
	Index   int
	Name    string
	SlotLen simtime.Duration
	Guest   *guestos.OS

	queue       irqRing
	headStarted bool             // head bottom handler partially executed
	headLeft    simtime.Duration // remaining time of the head BH
	bhDone      func()           // prebuilt completion callback (see bhDoneFor)

	// Measured supply/interference accounting.
	GuestTime simtime.Duration // execution given to guest/background work
	BHTime    simtime.Duration // execution spent on own bottom handlers
	// StolenInterposed is processing time taken from this partition's
	// slots by foreign interposed bottom handlers including their
	// C_sched and context-switch overheads — the quantity bounded by
	// eq. (14).
	StolenInterposed simtime.Duration
	// StolenTop is slot time consumed by top handlers (all sources).
	StolenTop simtime.Duration
	// InterposedHits counts foreign interposed grants that executed
	// (at least partially) during this partition's slots.
	InterposedHits uint64
}

// QueueLen returns the number of pending bottom-handler activations.
func (p *Partition) QueueLen() int { return p.queue.len() }

// pendingIRQ is one entry in a partition's interrupt queue.
type pendingIRQ struct {
	src      *Source
	arrival  simtime.Time
	seq      uint64
	decision tracerec.Mode
}

// irqRing is a growable FIFO ring buffer of pending IRQ deliveries.
// Partition queues used to be plain slices advanced by re-slicing
// (queue = queue[1:]), which abandons the consumed prefix so the next
// append reallocates — roughly one allocation per delivered IRQ. The
// ring reuses its buffer indefinitely; steady-state queue traffic
// allocates nothing.
type irqRing struct {
	buf  []pendingIRQ
	head int
	n    int
}

func (r *irqRing) len() int { return r.n }

func (r *irqRing) push(p pendingIRQ) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)%len(r.buf)] = p
	r.n++
}

func (r *irqRing) grow() {
	newCap := 2 * len(r.buf)
	if newCap == 0 {
		newCap = 8
	}
	nb := make([]pendingIRQ, newCap)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf, r.head = nb, 0
}

func (r *irqRing) front() *pendingIRQ {
	if r.n == 0 {
		panic("hv: empty interrupt queue")
	}
	return &r.buf[r.head]
}

func (r *irqRing) pop() pendingIRQ {
	if r.n == 0 {
		panic("hv: pop from empty interrupt queue")
	}
	p := r.buf[r.head]
	r.buf[r.head] = pendingIRQ{} // drop the Source reference
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	if r.n == 0 {
		r.head = 0
	}
	return p
}

// reset empties the ring, keeping its buffer.
func (r *irqRing) reset() {
	for i := range r.buf {
		r.buf[i] = pendingIRQ{}
	}
	r.head, r.n = 0, 0
}

// save copies the queued deliveries out in FIFO order (snapshots).
func (r *irqRing) save() []pendingIRQ {
	if r.n == 0 {
		return nil
	}
	out := make([]pendingIRQ, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	return out
}

// load replaces the ring contents with ps (FIFO order).
func (r *irqRing) load(ps []pendingIRQ) {
	r.reset()
	for _, p := range ps {
		r.push(p)
	}
}

// Source is the runtime state of one IRQ source.
type Source struct {
	Index int
	Name  string
	Line  intc.Line
	// Subscribers lists every partition that processes this source's
	// bottom handler (one entry for ordinary sources).
	Subscribers []int
	CTH         simtime.Duration
	CBH         simtime.Duration
	Monitor     *monitor.Monitor

	arrivals     []simtime.Time
	actualBH     []simtime.Duration
	next         int
	learnEvents  int
	learnBound   *curves.Delta
	signalsGuest bool
	guestTask    int

	latchedAt simtime.Time // arrival time of the currently latched IRQ
	seq       uint64
	// armed tracks whether an arrival event is currently scheduled for
	// this source; ExtendArrivals re-arms an exhausted chain.
	armed bool

	// Hot-path caches: the event labels are built once instead of
	// concatenated per delivery, and arrive is the one arrival callback
	// shared by every scheduled arrival of this source (scheduling a
	// fresh closure per IRQ was a measurable allocation cost).
	irqLabel  string // "irq:" + Name
	topLabel  string // "top:" + Name (or "top-shared:")
	bhLabel   string // "bh:" + Name
	sharedTop bool   // labels built for the shared-top variant
	arrive    func()

	// Stats.
	Raised uint64
	Lost   uint64
}

// Remaining returns the number of not-yet-scheduled arrivals.
func (s *Source) Remaining() int { return len(s.arrivals) - s.next }

// actual returns the actual bottom-handler execution time of delivery
// seq: the configured per-delivery value (last entry repeated), or the
// WCET C_BH by default.
func (s *Source) actual(seq uint64) simtime.Duration {
	if len(s.actualBH) == 0 {
		return s.CBH
	}
	if seq >= uint64(len(s.actualBH)) {
		return s.actualBH[len(s.actualBH)-1]
	}
	return s.actualBH[seq]
}

// Stats aggregates system-wide counters.
type Stats struct {
	Arrivals    uint64
	LostIRQs    uint64
	TopHandlers uint64

	// Context switches, split by cause. CtxSwitches = TDMASwitches +
	// 2·InterposedGrants (+ aborted-grant switch-backs).
	CtxSwitches      uint64
	TDMASwitches     uint64
	InterposedGrants uint64
	SplitGrants      uint64 // grants aborted by a slot boundary
	ResumedGrants    uint64 // grants resumed across a slot boundary
	BudgetCuts       uint64 // interposed handlers cut off at the C_BH budget

	// Interposing denials by reason.
	DeniedViolation uint64 // monitoring condition violated
	DeniedFit       uint64 // DenyNearSlotEnd: sequence does not fit
	DeniedBusy      uint64 // a grant was already in progress
	DeniedLearning  uint64 // monitor still learning
	DeniedPending   uint64 // slot switch pending at decision time
	DeniedNoMonitor uint64 // source has no monitor attached

	// Time accounting (sums over the whole run).
	TopTime     simtime.Duration // top handlers incl. C_Mon
	MonitorTime simtime.Duration // C_Mon share of TopTime
	SchedTime   simtime.Duration // C_sched for grants
	CtxTime     simtime.Duration // all context switches
	BHTime      simtime.Duration // all bottom-handler execution
	GuestTime   simtime.Duration // partition guest/background execution
}
