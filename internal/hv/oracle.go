// The temporal-independence oracle: per-run invariant checks that turn
// the paper's headline safety claim into an enforced contract.
//
// Three invariants are checked (ISSUE: sufficient temporal
// independence, §5/eq. 14):
//
//	(a) eq14-interference — the processing time foreign interposed
//	    bottom handlers steal from every victim partition stays within
//	    the eq. (14) budget Σ η⁺_cond(Δt)·C'_BH for *every* window Δt,
//	    not just the whole run. Each steal is recorded online with the
//	    arrival time of the activation that triggered its grant; the
//	    check then slides a window over every pair of activation
//	    anchors, so a burst that is far under the whole-run average
//	    rate but locally violent (the babbling-idiot signature) is
//	    still caught, and the first offending grant is identified;
//	(b) victim-latency — no victim IRQ latency exceeds the analytic
//	    delayed-handling bound supplied by the caller (computed from
//	    internal/analysis with the eq. (14) interference folded in);
//	(c) violation-demotion — every monitor Violation verdict was
//	    demoted to delayed handling and every interposed grant was a
//	    committed (budget-consuming) activation: the counter identities
//	    DeniedViolation = Σ Violations and InterposedGrants = Σ Commits.
//
// A violation of any invariant carries the first offending event
// (source, sequence number, time) so a campaign layer can emit a
// minimal reproducer; see internal/faults.
package hv

import (
	"fmt"

	"repro/internal/simtime"
)

// Invariant names, as reported in OracleViolation.Invariant.
const (
	InvariantInterference = "eq14-interference"
	InvariantLatency      = "victim-latency"
	InvariantDemotion     = "violation-demotion"
)

// InterferenceBudget returns the interference budget for a victim
// partition over a window of length dt — normally the eq. (14) bound
// summed over the monitored sources not subscribed by that partition.
// Implementations may consult monitor state lazily (a learning monitor
// has no condition until FinishLearning; before that no interposing
// happens, so an infinite budget during learning is exact).
type InterferenceBudget func(victim int, dt simtime.Duration) simtime.Duration

// OracleViolation is one invariant failure with its first offending
// event.
type OracleViolation struct {
	Invariant string
	// Partition is the victim partition index (-1 when not applicable).
	Partition int
	// Source and Seq identify the offending delivery (-1 unknown).
	Source int
	Seq    uint64
	// At is the time of the first offending event.
	At simtime.Time
	// Measured and Bound quantify the breach.
	Measured simtime.Duration
	Bound    simtime.Duration
	Detail   string
}

// String formats the violation for logs and reproducers.
func (v OracleViolation) String() string {
	return fmt.Sprintf("%s: partition=%d source=%d seq=%d t=%v measured=%v bound=%v (%s)",
		v.Invariant, v.Partition, v.Source, v.Seq, v.At, v.Measured, v.Bound, v.Detail)
}

// OracleReport is the outcome of CheckTemporalIndependence.
type OracleReport struct {
	// InterferenceChecked reports whether the online eq. (14) check
	// was armed (InstallOracle was called before the run).
	InterferenceChecked bool
	// LatencyChecked is the number of sources a latency bound was
	// checked for.
	LatencyChecked int
	// Violations lists every invariant failure in deterministic order:
	// interference by victim partition, latency by source, demotion
	// last. Empty means the run upheld temporal independence.
	Violations []OracleViolation
}

// OK reports whether every checked invariant held.
func (r OracleReport) OK() bool { return len(r.Violations) == 0 }

// stealRec is one interference contribution on a victim partition,
// anchored at the arrival time of the activation whose grant caused it
// (a grant's scheduler, context-switch and bottom-handler phases merge
// into one record).
type stealRec struct {
	src  int
	seq  uint64
	act  simtime.Time // triggering activation's arrival time
	span simtime.Duration
}

// oracleState is the interference recorder armed by InstallOracle.
type oracleState struct {
	budget InterferenceBudget
	steals [][]stealRec // per victim partition, in steal order
}

// InstallOracle arms the eq. (14) interference check: every increment
// of a partition's StolenInterposed is recorded together with the
// activation that triggered the grant, and CheckTemporalIndependence
// later verifies every activation-anchored window against the budget.
// Must be called before the run so no increment escapes the record.
func (s *System) InstallOracle(budget InterferenceBudget) {
	if budget == nil {
		panic("hv: InstallOracle with nil budget")
	}
	s.oracle = &oracleState{
		budget: budget,
		steals: make([][]stealRec, len(s.parts)),
	}
}

// noteInterference is the single accounting point for interposed
// interference: it adds span to the victim's StolenInterposed and, when
// the oracle is armed, records the contribution under the triggering
// activation.
func (s *System) noteInterference(victim int, span simtime.Duration) {
	s.parts[victim].StolenInterposed += span
	o := s.oracle
	if o == nil {
		return
	}
	rec := stealRec{src: -1, span: span}
	if g := s.grant; g != nil {
		rec.src, rec.seq, rec.act = g.trigSrc, g.trigSeq, g.trigAt
	} else {
		rec.act = s.sim.Now()
	}
	rs := o.steals[victim]
	if n := len(rs); n > 0 && rs[n-1].src == rec.src && rs[n-1].seq == rec.seq && rs[n-1].act == rec.act {
		rs[n-1].span += span
		return
	}
	o.steals[victim] = append(rs, rec)
}

// interferenceBreach slides a window over the victim's steal records
// and returns the first breach of the eq. (14) budget: the smallest
// end index j (and within it the widest window start i) whose summed
// steals exceed budget(victim, act_j − act_i). Soundness: committed
// activations conform to each source's δ⁻ condition, so any closed
// window of length Δt holds at most η⁺_cond(Δt) of them per source,
// each granting at most one interposed execution of cost ≤ C'_BH.
func (o *oracleState) interferenceBreach(victim int, name string) *OracleViolation {
	recs := o.steals[victim]
	// Steals are recorded in grant order; grants are admitted at their
	// activation's arrival, so anchors are already non-decreasing.
	prefix := make([]simtime.Duration, len(recs)+1)
	for i, r := range recs {
		prefix[i+1] = prefix[i] + r.span
	}
	for j := range recs {
		for i := 0; i <= j; i++ {
			sum := prefix[j+1] - prefix[i]
			dt := recs[j].act.Sub(recs[i].act)
			bound := o.budget(victim, dt)
			if sum <= bound {
				continue
			}
			return &OracleViolation{
				Invariant: InvariantInterference,
				Partition: victim,
				Source:    recs[j].src,
				Seq:       recs[j].seq,
				At:        recs[j].act,
				Measured:  sum,
				Bound:     bound,
				Detail: fmt.Sprintf("steals on %s from %d grants over the window [%v, %v] exceed the eq. (14) budget",
					name, j-i+1, recs[i].act, recs[j].act),
			}
		}
	}
	return nil
}

// CheckTemporalIndependence evaluates the oracle invariants after a
// run. latencyBounds maps source index → analytic worst-case latency
// bound for invariant (b); sources absent from the map are not latency-
// checked (an attacker's own delayed latency is deliberately unbounded).
// Invariant (a) requires InstallOracle before the run; (c) needs no
// setup.
func (s *System) CheckTemporalIndependence(latencyBounds map[int]simtime.Duration) OracleReport {
	rep := OracleReport{InterferenceChecked: s.oracle != nil}

	// (a) eq. (14) interference, first breach per victim partition.
	if s.oracle != nil {
		for idx, p := range s.parts {
			if v := s.oracle.interferenceBreach(idx, p.Name); v != nil {
				rep.Violations = append(rep.Violations, *v)
			}
		}
	}

	// (b) victim latency against the analytic bound, first offending
	// record in completion order per source.
	for idx := 0; idx < len(s.srcs); idx++ {
		bound, ok := latencyBounds[idx]
		if !ok {
			continue
		}
		rep.LatencyChecked++
		for _, r := range s.log.Records {
			if r.Source != idx {
				continue
			}
			if lat := r.Done.Sub(r.Arrival); lat > bound {
				rep.Violations = append(rep.Violations, OracleViolation{
					Invariant: InvariantLatency,
					Partition: r.Partition,
					Source:    r.Source,
					Seq:       r.Seq,
					At:        r.Arrival,
					Measured:  lat,
					Bound:     bound,
					Detail: fmt.Sprintf("%s latency (mode %v) exceeds the delayed-handling bound",
						s.srcs[idx].Name, r.Mode),
				})
				break
			}
		}
	}

	// (c) violation demotion: counter identities across hypervisor and
	// monitors. A grant without a commit (or a violation without a
	// denial) means an IRQ bypassed the shaping path.
	var violations, commits uint64
	for _, src := range s.srcs {
		if src.Monitor == nil {
			continue
		}
		st := src.Monitor.Stats()
		violations += st.Violations
		commits += st.Commits
	}
	if s.stats.DeniedViolation != violations {
		rep.Violations = append(rep.Violations, OracleViolation{
			Invariant: InvariantDemotion,
			Partition: -1,
			Source:    -1,
			At:        s.sim.Now(),
			Detail: fmt.Sprintf("DeniedViolation=%d but monitors counted %d violations",
				s.stats.DeniedViolation, violations),
		})
	}
	if s.stats.InterposedGrants != commits {
		rep.Violations = append(rep.Violations, OracleViolation{
			Invariant: InvariantDemotion,
			Partition: -1,
			Source:    -1,
			At:        s.sim.Now(),
			Detail: fmt.Sprintf("InterposedGrants=%d but monitors committed %d activations",
				s.stats.InterposedGrants, commits),
		})
	}
	return rep
}
