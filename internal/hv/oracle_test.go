package hv

import (
	"strings"
	"testing"

	"repro/internal/arm"
	"repro/internal/monitor"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/workload"
)

// sporadicBudget is the eq. (14) budget for a single l = 1 monitored
// source: η⁺(Δt)·C'_BH with η⁺ over closed windows (⌊Δt/dmin⌋ + 1).
// The per-grant cost folds in the dispatcher's queue pop, as
// core.Analyze folds push/pop into the handler WCETs. The subscriber
// partition is never a victim of its own source, so its budget is
// zero — any steal recorded there is a bug.
func sporadicBudget(dmin, cbh simtime.Duration, costs arm.CostModel, subscriber int) InterferenceBudget {
	eff := costs.EffectiveBH(cbh + costs.QueuePop)
	return func(victim int, dt simtime.Duration) simtime.Duration {
		if victim == subscriber {
			return 0
		}
		return (dt/dmin + 1) * eff
	}
}

func TestInstallOracleNilPanics(t *testing.T) {
	sys := build(t, Config{
		Slots: paperSlots(),
		Costs: arm.DefaultCosts(),
		Mode:  Monitored,
	})
	defer func() {
		if recover() == nil {
			t.Fatal("InstallOracle(nil) did not panic")
		}
	}()
	sys.InstallOracle(nil)
}

// A conforming sporadic stream under an armed oracle must pass all
// three invariants, and the report must show the checks actually ran.
func TestOracleConformingRunPasses(t *testing.T) {
	costs := arm.DefaultCosts()
	dmin, cbh := us(900), us(30)
	src := rng.New(3)
	cfg := Config{
		Slots:  paperSlots(),
		Costs:  costs,
		Mode:   Monitored,
		Policy: DenyNearSlotEnd,
		Sources: []SourceConfig{{
			Name: "t0", Subscriber: 0, CTH: us(6), CBH: cbh,
			Arrivals: workload.Timestamps(workload.ExponentialClamped(src, us(1500), dmin, 400)),
			Monitor:  monitor.NewDMin(dmin),
		}},
	}
	sys := build(t, cfg)
	sys.InstallOracle(sporadicBudget(dmin, cbh, costs, 0))
	runAll(t, sys)
	if sys.Stats().InterposedGrants == 0 {
		t.Fatal("conforming stream was never interposed; test is vacuous")
	}
	rep := sys.CheckTemporalIndependence(nil)
	if !rep.OK() {
		t.Fatalf("conforming run violated the oracle: %v", rep.Violations)
	}
	if !rep.InterferenceChecked {
		t.Fatal("interference check not armed")
	}
}

// With the ablation hook set, a bursty stream must break both the
// eq. (14) sliding-window invariant and the demotion identities — and
// the interference violation must name the offending delivery.
func TestOracleCatchesBurstWithMonitorDisabled(t *testing.T) {
	costs := arm.DefaultCosts()
	dmin, cbh := us(1000), us(30)
	var arrivals []simtime.Time
	for b := int64(0); b < 40; b++ {
		start := tt(3000 * (b + 1))
		for k := int64(0); k < 6; k++ {
			arrivals = append(arrivals, start.Add(us(100*k)))
		}
	}
	cfg := Config{
		Slots:  paperSlots(),
		Costs:  costs,
		Mode:   Monitored,
		Policy: DenyNearSlotEnd,
		Sources: []SourceConfig{{
			Name: "burst", Subscriber: 0, CTH: us(6), CBH: cbh,
			Arrivals: arrivals,
			Monitor:  monitor.NewDMin(dmin),
		}},
		DisableMonitor: true,
	}
	sys := build(t, cfg)
	sys.InstallOracle(sporadicBudget(dmin, cbh, costs, 0))
	runAll(t, sys)
	rep := sys.CheckTemporalIndependence(nil)
	if rep.OK() {
		t.Fatal("oracle passed a monitor-disabled burst run")
	}
	var eq14, demotion bool
	for _, v := range rep.Violations {
		switch v.Invariant {
		case InvariantInterference:
			eq14 = true
			if v.Partition == 0 {
				t.Errorf("interference breach on the subscriber partition: %v", v)
			}
			if v.Source != 0 || v.At == 0 {
				t.Errorf("breach does not name the offending delivery: %v", v)
			}
			if v.Measured <= v.Bound {
				t.Errorf("breach with measured %v <= bound %v", v.Measured, v.Bound)
			}
		case InvariantDemotion:
			demotion = true
		}
	}
	if !eq14 {
		t.Errorf("no %s violation: %v", InvariantInterference, rep.Violations)
	}
	if !demotion {
		t.Errorf("no %s violation: %v", InvariantDemotion, rep.Violations)
	}
}

// The same burst run with the monitor *enabled* must shape the stream
// back under the budget: violations are demoted, identities hold.
func TestOracleMonitorShapesBurst(t *testing.T) {
	costs := arm.DefaultCosts()
	dmin, cbh := us(1000), us(30)
	var arrivals []simtime.Time
	for b := int64(0); b < 40; b++ {
		start := tt(3000 * (b + 1))
		for k := int64(0); k < 6; k++ {
			arrivals = append(arrivals, start.Add(us(100*k)))
		}
	}
	cfg := Config{
		Slots:  paperSlots(),
		Costs:  costs,
		Mode:   Monitored,
		Policy: DenyNearSlotEnd,
		Sources: []SourceConfig{{
			Name: "burst", Subscriber: 0, CTH: us(6), CBH: cbh,
			Arrivals: arrivals,
			Monitor:  monitor.NewDMin(dmin),
		}},
	}
	sys := build(t, cfg)
	sys.InstallOracle(sporadicBudget(dmin, cbh, costs, 0))
	runAll(t, sys)
	if sys.Stats().DeniedViolation == 0 {
		t.Fatal("burst stream produced no demotions; test is vacuous")
	}
	rep := sys.CheckTemporalIndependence(nil)
	if !rep.OK() {
		t.Fatalf("monitored burst run violated the oracle: %v", rep.Violations)
	}
}

// An impossibly tight latency bound must surface as a victim-latency
// violation naming the first offending record in completion order.
func TestOracleLatencyViolation(t *testing.T) {
	costs := arm.DefaultCosts()
	dmin := us(900)
	src := rng.New(5)
	cfg := Config{
		Slots: paperSlots(),
		Costs: costs,
		Mode:  Monitored,
		Sources: []SourceConfig{{
			Name: "t0", Subscriber: 0, CTH: us(6), CBH: us(30),
			Arrivals: workload.Timestamps(workload.ExponentialClamped(src, us(1500), dmin, 100)),
			Monitor:  monitor.NewDMin(dmin),
		}},
	}
	sys := build(t, cfg)
	runAll(t, sys)
	rep := sys.CheckTemporalIndependence(map[int]simtime.Duration{0: simtime.Cycles(1)})
	if rep.LatencyChecked != 1 {
		t.Fatalf("LatencyChecked = %d, want 1", rep.LatencyChecked)
	}
	if rep.OK() {
		t.Fatal("1-cycle latency bound not violated")
	}
	v := rep.Violations[0]
	if v.Invariant != InvariantLatency || v.Source != 0 {
		t.Fatalf("unexpected violation: %v", v)
	}
	if v.Measured <= v.Bound {
		t.Fatalf("latency violation with measured %v <= bound %v", v.Measured, v.Bound)
	}
	if !strings.Contains(v.String(), InvariantLatency) {
		t.Fatalf("String() lacks the invariant name: %q", v.String())
	}
}

// Without InstallOracle the interference invariant is reported as
// unchecked rather than silently passing.
func TestOracleNotArmed(t *testing.T) {
	src := rng.New(7)
	cfg := Config{
		Slots: paperSlots(),
		Costs: arm.DefaultCosts(),
		Mode:  Monitored,
		Sources: []SourceConfig{{
			Name: "t0", Subscriber: 0, CTH: us(6), CBH: us(30),
			Arrivals: workload.Timestamps(workload.Exponential(src, us(500), 200)),
			Monitor:  monitor.NewDMin(us(400)),
		}},
	}
	sys := build(t, cfg)
	runAll(t, sys)
	rep := sys.CheckTemporalIndependence(nil)
	if rep.InterferenceChecked {
		t.Fatal("InterferenceChecked without InstallOracle")
	}
	for _, v := range rep.Violations {
		if v.Invariant == InvariantInterference {
			t.Fatalf("interference violation without an armed oracle: %v", v)
		}
	}
}
