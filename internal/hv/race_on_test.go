//go:build race

package hv

// raceEnabled gates allocation-count assertions: the race detector's
// instrumentation allocates, so AllocsPerRun budgets only hold without
// it (the non-race tier-1 pass runs them; see scripts/check.sh).
const raceEnabled = true
