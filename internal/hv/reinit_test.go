package hv

import (
	"reflect"
	"testing"

	"repro/internal/arm"
	"repro/internal/monitor"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/workload"
)

func monitorDMin(d simtime.Duration) *monitor.Monitor { return monitor.NewDMin(d) }

// reinitTestCfg builds a monitored §6.1-style configuration with a
// seeded exponential stream. Monitors are built per call (run state).
func reinitTestCfg(seed uint64, events int) Config {
	src := rng.New(seed)
	dist := workload.ExponentialClamped(src, us(1344), us(1344), events)
	return Config{
		Slots: paperSlots(),
		Costs: arm.DefaultCosts(),
		Mode:  Monitored,
		Sources: []SourceConfig{{
			Name: "t0", Subscriber: 0, CTH: us(6), CBH: us(30),
			Arrivals: workload.Timestamps(dist),
			Monitor:  monitorDMin(us(1344)),
		}},
	}
}

func runReinitCfg(t *testing.T, sys *System) (Stats, int) {
	t.Helper()
	runAll(t, sys)
	return sys.Stats(), sys.Log().Len()
}

// TestReinitMatchesFreshSystem runs cfg A on a fresh system, then
// reuses that system for cfg B via Reinit, and requires results that
// are identical to a fresh system running cfg B — the arena reuse
// contract.
func TestReinitMatchesFreshSystem(t *testing.T) {
	warmCfg := reinitTestCfg(7, 200)
	cfgFresh := reinitTestCfg(42, 400)
	cfgReuse := reinitTestCfg(42, 400)

	fresh := build(t, cfgFresh)
	runAll(t, fresh)

	reused := build(t, warmCfg)
	runAll(t, reused)
	if err := reused.Reinit(cfgReuse); err != nil {
		t.Fatal(err)
	}
	runAll(t, reused)

	if !reflect.DeepEqual(fresh.Stats(), reused.Stats()) {
		t.Fatalf("stats diverge:\nfresh  %+v\nreused %+v", fresh.Stats(), reused.Stats())
	}
	if !reflect.DeepEqual(fresh.Log().Records, reused.Log().Records) {
		t.Fatal("latency records diverge between fresh and reinit-ed system")
	}
	fp, rp := fresh.Partitions(), reused.Partitions()
	for i := range fp {
		if fp[i].GuestTime != rp[i].GuestTime || fp[i].StolenInterposed != rp[i].StolenInterposed ||
			fp[i].StolenTop != rp[i].StolenTop || fp[i].BHTime != rp[i].BHTime {
			t.Fatalf("partition %d accounting diverges", i)
		}
	}
}

// TestReinitSteadyStateDoesNotAllocate verifies the zero-alloc arena
// contract: after a warm-up run, Reinit + RunToCompletion of the same
// shape stays under a tight allocation budget (workload slices and
// monitors are built by the caller and excluded here).
func TestReinitSteadyStateDoesNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unstable under -race")
	}
	cfg := reinitTestCfg(11, 300)
	sys := build(t, cfg)
	runAll(t, sys)
	// Steady state: reinit with the identical config (monitor reset via
	// a fresh monitor is the caller's job; here we rebuild it, which is
	// the one tolerated allocation source).
	allocs := testing.AllocsPerRun(5, func() {
		c := cfg
		c.Sources[0].Monitor = monitorDMin(us(1344))
		if err := sys.Reinit(c); err != nil {
			t.Fatal(err)
		}
		if err := sys.RunToCompletion(tt(100_000_000)); err != nil {
			t.Fatal(err)
		}
	})
	// 300 IRQs used to cost ~3 allocations each; the arena path must be
	// O(1) per run, not O(events).
	if allocs > 40 {
		t.Fatalf("warm Reinit+run allocates %.0f per run, want O(1) (≤ 40)", allocs)
	}
}

// TestSnapshotForkByteIdentical runs a warm prefix, snapshots, extends
// with a suffix and completes — twice from the same snapshot — and
// compares against a single two-phase straight run. All three must
// agree exactly.
func TestSnapshotForkByteIdentical(t *testing.T) {
	prefix := workload.Timestamps(workload.ExponentialClamped(rng.New(5), us(1344), us(1344), 150))

	mk := func() *System {
		cfg := Config{
			Slots: paperSlots(),
			Costs: arm.DefaultCosts(),
			Mode:  Monitored,
			Sources: []SourceConfig{{
				Name: "t0", Subscriber: 0, CTH: us(6), CBH: us(30),
				Arrivals: append([]simtime.Time(nil), prefix...),
				Monitor:  monitorDMin(us(900)),
			}},
		}
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	var suffix []simtime.Time
	finish := func(sys *System) {
		t.Helper()
		if err := sys.ExtendArrivals(0, suffix); err != nil {
			t.Fatal(err)
		}
		if err := sys.RunToCompletion(tt(100_000_000)); err != nil {
			t.Fatal(err)
		}
		if err := sys.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}

	// Reference: straight two-phase run (prefix, then extend + finish).
	// The suffix starts after the prefix run's final clock (identical
	// for the forked system, which replays the same prefix).
	ref := mk()
	runAll(t, ref)
	suffix = workload.Timestamps(workload.ExponentialClamped(rng.NewStream(5, 1), us(900), us(900), 150))
	for i := range suffix {
		suffix[i] = suffix[i].Add(ref.Now().Sub(0) + us(2000))
	}
	finish(ref)

	// Forked: run the prefix, snapshot, then finish twice from the same
	// snapshot.
	sys := mk()
	runAll(t, sys)
	sn, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 2; trial++ {
		sys.Restore(sn)
		finish(sys)
		if !reflect.DeepEqual(ref.Log().Records, sys.Log().Records) {
			t.Fatalf("trial %d: forked records diverge from straight run", trial)
		}
		if !reflect.DeepEqual(ref.Stats(), sys.Stats()) {
			t.Fatalf("trial %d: forked stats diverge:\nref  %+v\nfork %+v", trial, ref.Stats(), sys.Stats())
		}
	}
}

// TestSnapshotMidQueueRestores snapshots while deliveries are queued
// and a grant may be pending, at an arbitrary RunUntil cut, and checks
// the continuation is identical to an uninterrupted run.
func TestSnapshotMidQueueRestores(t *testing.T) {
	dist := workload.ExponentialClamped(rng.New(99), us(400), us(200), 200)
	cfg := Config{
		Slots: paperSlots(),
		Costs: arm.DefaultCosts(),
		Mode:  Monitored,
		Sources: []SourceConfig{{
			Name: "burst", Subscriber: 0, CTH: us(6), CBH: us(30),
			Arrivals: workload.Timestamps(dist),
			Monitor:  monitorDMin(us(200)),
		}},
	}
	sys := build(t, cfg)
	// Cut mid-flight (not at a completion boundary).
	sys.Run(tt(13_337))
	sn, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	runAll(t, sys)
	want := sys.Stats()
	wantLog := sys.Log().Len()

	sys.Restore(sn)
	runAll(t, sys)
	if sys.Log().Len() != wantLog {
		t.Fatalf("restored run recorded %d, want %d", sys.Log().Len(), wantLog)
	}
	if !reflect.DeepEqual(sys.Stats(), want) {
		t.Fatalf("restored stats diverge:\nwant %+v\ngot  %+v", want, sys.Stats())
	}
}
