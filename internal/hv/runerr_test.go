package hv

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/arm"
	"repro/internal/simtime"
)

// TestRunErrSurfaces: a fatal runtime inconsistency recorded via
// failRun is returned by RunToCompletion instead of panicking the
// worker — the contract the differential fuzzer relies on.
func TestRunErrSurfaces(t *testing.T) {
	cfg := Config{
		Slots: paperSlots(),
		Costs: arm.DefaultCosts(),
		Sources: []SourceConfig{{
			Name: "t0", Subscriber: 0, CTH: us(6), CBH: us(30),
			Arrivals: []simtime.Time{tt(1000), tt(5000)},
		}},
	}
	sys := build(t, cfg)
	poison := errors.New("hv: injected runtime fault")
	sys.failRun(poison)
	// Later failures must not mask the first.
	sys.failRun(errors.New("hv: second fault"))
	err := sys.RunToCompletion(tt(100_000_000))
	if !errors.Is(err, poison) {
		t.Fatalf("RunToCompletion = %v, want the injected fault", err)
	}
	if sys.RunErr() == nil || !strings.Contains(sys.RunErr().Error(), "injected") {
		t.Fatalf("RunErr = %v, want the injected fault", sys.RunErr())
	}
}

// TestRunErrClearedByReinit: Reinit resets the poisoned state so a
// reused arena system starts clean.
func TestRunErrClearedByReinit(t *testing.T) {
	cfg := Config{
		Slots: paperSlots(),
		Costs: arm.DefaultCosts(),
		Sources: []SourceConfig{{
			Name: "t0", Subscriber: 0, CTH: us(6), CBH: us(30),
			Arrivals: []simtime.Time{tt(1000)},
		}},
	}
	sys := build(t, cfg)
	sys.failRun(errors.New("hv: poisoned"))
	if err := sys.Reinit(cfg); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunToCompletion(tt(100_000_000)); err != nil {
		t.Fatalf("reinit-ed system still poisoned: %v", err)
	}
}

// TestHostileArrivalsNoPanics: bursty duplicate-timestamp arrival
// streams — valid input (non-decreasing) at maximum hostility — run to
// completion without panicking, and invariants hold.
func TestHostileArrivalsNoPanics(t *testing.T) {
	var arr []simtime.Time
	for i := 0; i < 20; i++ {
		// Five coincident arrivals per burst, bursts 400 µs apart.
		base := tt(int64(500 + 400*i))
		for j := 0; j < 5; j++ {
			arr = append(arr, base)
		}
	}
	cfg := Config{
		Slots: paperSlots(),
		Costs: arm.DefaultCosts(),
		Mode:  Monitored,
		Sources: []SourceConfig{
			{
				Name: "burst", Subscriber: 1, CTH: us(6), CBH: us(30),
				Arrivals: arr,
			},
			{
				Name: "victim", Subscriber: 0, CTH: us(4), CBH: us(20),
				Arrivals: []simtime.Time{tt(1000), tt(9000), tt(30000)},
			},
		},
	}
	sys := build(t, cfg)
	runAll(t, sys)
	if sys.RunErr() != nil {
		t.Fatalf("hostile arrivals: %v", sys.RunErr())
	}
}
