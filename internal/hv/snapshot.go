// Snapshot/restore of a running system: the hypervisor's side of the
// warm-prefix fork primitive (see internal/des/snapshot.go for the
// event-queue side and DESIGN.md §11 for the contract).
//
// The system registers itself as a des.StateSaver at Reinit, so a
// single Simulator.Snapshot/Restore round-trips the entire simulation:
// clock and event queue (des), hypervisor scheduling and accounting
// state (here), per-partition interrupt rings and guest OS state,
// per-source delivery state and monitor state, the interrupt
// controller, the latency log (append-only, so restore is truncation)
// and the oracle's steal records.
//
// Not captured: schedtrace recordings — a Tracer's span log cannot be
// rewound, so System.Snapshot refuses traced systems.
package hv

import (
	"errors"

	"repro/internal/des"
	"repro/internal/guestos"
	"repro/internal/intc"
	"repro/internal/monitor"
	"repro/internal/schedtrace"
	"repro/internal/simtime"
	"repro/internal/tracerec"
)

// Snapshot captures the complete mutable state of the system and its
// simulator for later Restore. It must be taken outside RunUntil (i.e.
// between Run/RunToCompletion calls). Traced systems cannot be
// snapshotted: trace recordings are append-only.
func (s *System) Snapshot() (*des.Snapshot, error) {
	if s.cfg.Tracer != nil {
		return nil, errors.New("hv: cannot snapshot a traced system (trace recordings cannot be rewound)")
	}
	return s.sim.Snapshot(), nil
}

// Restore rewinds the system and its simulator to a snapshot taken
// from this very system. Continuing the run afterwards is byte-
// identical to continuing from the snapshot point the first time.
func (s *System) Restore(sn *des.Snapshot) {
	s.sim.Restore(sn)
}

// partState is the snapshot of one partition's mutable state.
type partState struct {
	queue            []pendingIRQ
	headStarted      bool
	headLeft         simtime.Duration
	guestTime        simtime.Duration
	bhTime           simtime.Duration
	stolenInterposed simtime.Duration
	stolenTop        simtime.Duration
	interposedHits   uint64
	guest            *guestos.State // nil when the partition has no guest
}

// srcState is the snapshot of one source's mutable state.
type srcState struct {
	arrivals  []simtime.Time // slice header: ExtendArrivals may have grown it
	next      int
	latchedAt simtime.Time
	seq       uint64
	armed     bool
	raised    uint64
	lost      uint64
	monitor   *monitor.State // nil when unmonitored
}

// systemState is the System's des.StateSaver payload.
type systemState struct {
	stats  Stats
	runErr error

	winIdx        int
	active        int
	slotEnd       simtime.Time
	pendingSwitch bool

	hvBusy      bool
	grantActive bool
	grant       grantState

	execRunning bool
	execKind    execKind
	execPart    int // -1 when no span is open
	execStart   simtime.Time
	execHasDone bool
	execDoneTok uint64

	actStart simtime.Time
	actDur   simtime.Duration
	actKind  schedtrace.Kind
	actSrc   int
	actLabel string
	actDone  actDoneKind

	pendNext      int
	pendBoundary  simtime.Time
	pendSrcIdx    int
	pendArrival   simtime.Time
	pendSub       int
	pendDecision  tracerec.Mode
	pendInterpose bool
	pendEffActive int
	pendVictim    int

	logLen int // latency log length; restore truncates back to it

	parts []partState
	srcs  []srcState
	ic    intc.State

	oracleArmed  bool
	oracleSteals [][]stealRec
}

// SaveState implements des.StateSaver: a deep copy of everything the
// engine mutates during a run. The one retained event handle — the
// bottom-handler completion event — is translated to a token.
func (s *System) SaveState(sn *des.Snapshot) any {
	st := &systemState{
		stats:         s.stats,
		runErr:        s.runErr,
		winIdx:        s.winIdx,
		active:        s.active,
		slotEnd:       s.slotEnd,
		pendingSwitch: s.pendingSwitch,
		hvBusy:        s.hvBusy,
		grantActive:   s.grant != nil,
		execRunning:   s.exec.running,
		execKind:      s.exec.kind,
		execPart:      -1,
		execStart:     s.exec.start,
		actStart:      s.actStart,
		actDur:        s.actDur,
		actKind:       s.actKind,
		actSrc:        s.actSrc,
		actLabel:      s.actLabel,
		actDone:       s.actDone,
		pendNext:      s.pendNext,
		pendBoundary:  s.pendBoundary,
		pendSrcIdx:    s.pendSrcIdx,
		pendArrival:   s.pendArrival,
		pendSub:       s.pendSub,
		pendDecision:  s.pendDecision,
		pendInterpose: s.pendInterpose,
		pendEffActive: s.pendEffActive,
		pendVictim:    s.pendVictim,
		logLen:        s.log.Len(),
		ic:            s.ic.SaveState(),
	}
	if s.grant != nil {
		st.grant = *s.grant
	}
	if s.exec.part != nil {
		st.execPart = s.exec.part.Index
	}
	if s.exec.done != nil {
		tok, ok := sn.Token(s.exec.done)
		if !ok {
			panic("hv: snapshot: completion event not in the queue")
		}
		st.execHasDone = true
		st.execDoneTok = tok
	}
	st.parts = make([]partState, len(s.parts))
	for i, p := range s.parts {
		ps := partState{
			queue:            p.queue.save(),
			headStarted:      p.headStarted,
			headLeft:         p.headLeft,
			guestTime:        p.GuestTime,
			bhTime:           p.BHTime,
			stolenInterposed: p.StolenInterposed,
			stolenTop:        p.StolenTop,
			interposedHits:   p.InterposedHits,
		}
		if p.Guest != nil {
			ps.guest = p.Guest.SaveState()
		}
		st.parts[i] = ps
	}
	st.srcs = make([]srcState, len(s.srcs))
	for i, src := range s.srcs {
		ss := srcState{
			arrivals:  src.arrivals,
			next:      src.next,
			latchedAt: src.latchedAt,
			seq:       src.seq,
			armed:     src.armed,
			raised:    src.Raised,
			lost:      src.Lost,
		}
		if src.Monitor != nil {
			ss.monitor = src.Monitor.SaveState()
		}
		st.srcs[i] = ss
	}
	if s.oracle != nil {
		st.oracleArmed = true
		st.oracleSteals = make([][]stealRec, len(s.oracle.steals))
		for i, recs := range s.oracle.steals {
			st.oracleSteals[i] = append([]stealRec(nil), recs...)
		}
	}
	return st
}

// RestoreState implements des.StateSaver.
func (s *System) RestoreState(rs *des.Restorer, state any) {
	st := state.(*systemState)
	s.stats = st.stats
	s.runErr = st.runErr
	s.winIdx = st.winIdx
	s.active = st.active
	s.slotEnd = st.slotEnd
	s.pendingSwitch = st.pendingSwitch
	s.hvBusy = st.hvBusy
	if st.grantActive {
		s.grantBuf = st.grant
		s.grant = &s.grantBuf
	} else {
		s.grant = nil
	}
	s.exec = execState{running: st.execRunning, kind: st.execKind, start: st.execStart}
	if st.execPart >= 0 {
		s.exec.part = s.parts[st.execPart]
	}
	if st.execHasDone {
		s.exec.done = rs.Event(st.execDoneTok)
	}
	s.actStart = st.actStart
	s.actDur = st.actDur
	s.actKind = st.actKind
	s.actSrc = st.actSrc
	s.actLabel = st.actLabel
	s.actDone = st.actDone
	s.pendNext = st.pendNext
	s.pendBoundary = st.pendBoundary
	s.pendSrcIdx = st.pendSrcIdx
	s.pendArrival = st.pendArrival
	s.pendSub = st.pendSub
	s.pendDecision = st.pendDecision
	s.pendInterpose = st.pendInterpose
	s.pendEffActive = st.pendEffActive
	s.pendVictim = st.pendVictim
	s.log.Truncate(st.logLen)
	for i, ps := range st.parts {
		p := s.parts[i]
		p.queue.load(ps.queue)
		p.headStarted = ps.headStarted
		p.headLeft = ps.headLeft
		p.GuestTime = ps.guestTime
		p.BHTime = ps.bhTime
		p.StolenInterposed = ps.stolenInterposed
		p.StolenTop = ps.stolenTop
		p.InterposedHits = ps.interposedHits
		if ps.guest != nil {
			p.Guest.RestoreState(ps.guest)
		}
	}
	for i, ss := range st.srcs {
		src := s.srcs[i]
		src.arrivals = ss.arrivals
		src.next = ss.next
		src.latchedAt = ss.latchedAt
		src.seq = ss.seq
		src.armed = ss.armed
		src.Raised = ss.raised
		src.Lost = ss.lost
		if ss.monitor != nil {
			src.Monitor.RestoreState(ss.monitor)
		}
	}
	s.ic.RestoreState(st.ic)
	if st.oracleArmed {
		if s.oracle == nil {
			panic("hv: restore carries oracle state but no oracle is installed")
		}
		for i, recs := range st.oracleSteals {
			s.oracle.steals[i] = append(s.oracle.steals[i][:0], recs...)
		}
	} else {
		s.oracle = nil
	}
}
