package hv

import (
	"strings"
	"testing"

	"repro/internal/arm"
	"repro/internal/monitor"
	"repro/internal/schedtrace"
	"repro/internal/simtime"
)

func TestTraceRecordsInterposedSequence(t *testing.T) {
	rec := &schedtrace.Recorder{}
	cfg := Config{
		Slots:  paperSlots(),
		Costs:  arm.DefaultCosts(),
		Mode:   Monitored,
		Tracer: rec,
		Sources: []SourceConfig{{
			Name: "t0", Subscriber: 0, CTH: us(6), CBH: us(30),
			Arrivals: []simtime.Time{tt(7000)},
			Monitor:  monitor.NewDMin(us(1000)),
		}},
	}
	sys := build(t, cfg)
	runAll(t, sys)
	if err := rec.Validate(); err != nil {
		t.Fatal(err)
	}
	// The interposed grant must appear as the canonical sequence
	// ... top-handler, sched, ctx, interposed-bh, ctx ...
	var kinds []schedtrace.Kind
	for _, s := range rec.Spans {
		kinds = append(kinds, s.Kind)
	}
	want := []schedtrace.Kind{
		schedtrace.TopHandler,
		schedtrace.SchedOverhead,
		schedtrace.CtxSwitch,
		schedtrace.InterposedBH,
		schedtrace.CtxSwitch,
	}
	found := false
	for i := 0; i+len(want) <= len(kinds); i++ {
		match := true
		for j, k := range want {
			if kinds[i+j] != k {
				match = false
				break
			}
		}
		if match {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("interposed sequence not found in trace: %v", kinds)
	}
	// The interposed BH span must carry the subscriber partition.
	for _, s := range rec.Spans {
		if s.Kind == schedtrace.InterposedBH && s.Partition != 0 {
			t.Fatalf("interposed span attributed to partition %d", s.Partition)
		}
	}
}

func TestTraceAccountingMatchesStats(t *testing.T) {
	rec := &schedtrace.Recorder{}
	cfg := Config{
		Slots:  paperSlots(),
		Costs:  arm.DefaultCosts(),
		Mode:   Monitored,
		Tracer: rec,
		Sources: []SourceConfig{{
			Name: "t0", Subscriber: 0, CTH: us(6), CBH: us(30),
			Arrivals: []simtime.Time{tt(1000), tt(7000), tt(9500)},
			Monitor:  monitor.NewDMin(us(1000)),
		}},
	}
	sys := build(t, cfg)
	runAll(t, sys)
	by := rec.ByKind()
	st := sys.Stats()
	if by[schedtrace.BottomHandler]+by[schedtrace.InterposedBH] != st.BHTime {
		t.Fatalf("trace BH time %v+%v != stats %v",
			by[schedtrace.BottomHandler], by[schedtrace.InterposedBH], st.BHTime)
	}
	if by[schedtrace.TopHandler] != st.TopTime {
		t.Fatalf("trace top time %v != stats %v", by[schedtrace.TopHandler], st.TopTime)
	}
	if by[schedtrace.SchedOverhead] != st.SchedTime {
		t.Fatalf("trace sched time %v != stats %v", by[schedtrace.SchedOverhead], st.SchedTime)
	}
	if by[schedtrace.CtxSwitch] != st.CtxTime {
		t.Fatalf("trace ctx time %v != stats %v", by[schedtrace.CtxSwitch], st.CtxTime)
	}
	if by[schedtrace.Guest] != st.GuestTime {
		t.Fatalf("trace guest time %v != stats %v", by[schedtrace.Guest], st.GuestTime)
	}
}

func TestTraceGanttRendersRun(t *testing.T) {
	rec := &schedtrace.Recorder{}
	cfg := Config{
		Slots:  paperSlots(),
		Costs:  arm.DefaultCosts(),
		Mode:   Monitored,
		Tracer: rec,
		Sources: []SourceConfig{{
			Name: "t0", Subscriber: 0, CTH: us(6), CBH: us(30),
			Arrivals: []simtime.Time{tt(7000)},
			Monitor:  monitor.NewDMin(us(1000)),
		}},
	}
	sys := build(t, cfg)
	runAll(t, sys)
	var sb strings.Builder
	rec.Gantt(&sb, 0, tt(14000), us(200), []string{"app1", "app2", "hk"})
	out := sb.String()
	if !strings.Contains(out, "app1 |") || !strings.Contains(out, "hv |") {
		t.Fatalf("gantt rows missing:\n%s", out)
	}
}
