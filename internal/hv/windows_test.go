package hv

import (
	"testing"

	"repro/internal/arm"
	"repro/internal/monitor"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/tracerec"
	"repro/internal/workload"
)

// arincSlots declares the partitions of a multi-window configuration.
func arincSlots() []SlotConfig {
	return []SlotConfig{
		{Name: "app1", Length: us(6000)}, // length overridden by Windows
		{Name: "app2", Length: us(6000)},
		{Name: "hk", Length: us(2000)},
	}
}

// arincWindows gives app1 two windows per cycle:
// [0,3000) app1 | [3000,9000) app2 | [9000,12000) app1 | [12000,14000) hk.
func arincWindows() []WindowConfig {
	return []WindowConfig{
		{Partition: 0, Length: us(3000)},
		{Partition: 1, Length: us(6000)},
		{Partition: 0, Length: us(3000)},
		{Partition: 2, Length: us(2000)},
	}
}

func TestWindowScheduleRotation(t *testing.T) {
	cfg := Config{
		Slots:   arincSlots(),
		Windows: arincWindows(),
		Costs:   arm.ZeroCosts(),
		Sources: []SourceConfig{{
			Name: "t0", Subscriber: 0, CTH: us(1), CBH: us(1),
		}},
	}
	sys := build(t, cfg)
	// Probe the active partition mid-window (zero costs: switches are
	// instantaneous).
	probes := []struct {
		at   int64
		want int
	}{
		{1500, 0}, {6000, 1}, {10000, 0}, {13000, 2},
		{14000 + 1500, 0}, {14000 + 6000, 1},
	}
	for _, p := range probes {
		sys.Run(tt(p.at))
		if got := sys.ActivePartition(); got != p.want {
			t.Fatalf("at %dµs active = %d, want %d", p.at, got, p.want)
		}
	}
	if got := sys.Partitions()[0].SlotLen; got != us(6000) {
		t.Fatalf("app1 per-cycle supply = %v, want 6000µs", got)
	}
}

func TestWindowScheduleHalvesDelayedWait(t *testing.T) {
	// A delayed IRQ arriving right after app1's first window completes
	// at app1's *second* window — not a full cycle later.
	cfg := Config{
		Slots:   arincSlots(),
		Windows: arincWindows(),
		Costs:   arm.DefaultCosts(),
		Sources: []SourceConfig{{
			Name: "t0", Subscriber: 0, CTH: us(6), CBH: us(30),
			Arrivals: []simtime.Time{tt(3500)},
		}},
	}
	sys := build(t, cfg)
	runAll(t, sys)
	rec := sys.Log().Records[0]
	if rec.Mode != tracerec.Delayed {
		t.Fatalf("mode = %v", rec.Mode)
	}
	// Completes shortly after 9000 (app1's second window), not 14000.
	if rec.Done < tt(9000) || rec.Done > tt(9200) {
		t.Fatalf("done = %v, want shortly after 9000µs", rec.Done)
	}
}

func TestWindowValidation(t *testing.T) {
	bad := Config{
		Slots:   arincSlots(),
		Windows: []WindowConfig{{Partition: 5, Length: us(100)}},
	}
	if bad.Validate() == nil {
		t.Fatal("unknown partition in window accepted")
	}
	bad = Config{
		Slots:   arincSlots(),
		Windows: []WindowConfig{{Partition: 0, Length: 0}},
	}
	if bad.Validate() == nil {
		t.Fatal("zero-length window accepted")
	}
}

func TestSharedIRQDeliversToAllSubscribers(t *testing.T) {
	costs := arm.DefaultCosts()
	cfg := Config{
		Slots: paperSlots(),
		Costs: costs,
		Sources: []SourceConfig{{
			Name: "can", Subscribers: []int{0, 1}, CTH: us(6), CBH: us(30),
			Arrivals: []simtime.Time{tt(1000)},
		}},
	}
	sys := build(t, cfg)
	runAll(t, sys)
	recs := sys.Log().Records
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2 (one per subscriber)", len(recs))
	}
	seen := map[int]tracerec.Mode{}
	for _, r := range recs {
		seen[r.Partition] = r.Mode
	}
	// Arrival in app1's slot: app1's copy direct, app2's delayed.
	if seen[0] != tracerec.Direct {
		t.Fatalf("app1 copy mode = %v", seen[0])
	}
	if seen[1] != tracerec.Delayed {
		t.Fatalf("app2 copy mode = %v", seen[1])
	}
}

func TestSharedIRQNeverInterposed(t *testing.T) {
	cfg := Config{
		Slots: paperSlots(),
		Costs: arm.DefaultCosts(),
		Mode:  Monitored,
		Sources: []SourceConfig{{
			Name: "can", Subscribers: []int{0, 1}, CTH: us(6), CBH: us(30),
			Arrivals: workload.Timestamps(workload.Exponential(rng.New(31), us(900), 200)),
		}},
	}
	sys := build(t, cfg)
	runAll(t, sys)
	if sys.Stats().InterposedGrants != 0 {
		t.Fatal("shared IRQ was interposed")
	}
	if sys.Log().Len() != 2*int(sys.Sources()[0].Raised) {
		t.Fatalf("records = %d for %d raised", sys.Log().Len(), sys.Sources()[0].Raised)
	}
}

func TestSharedIRQWithMonitorRejected(t *testing.T) {
	cfg := Config{
		Slots: paperSlots(),
		Sources: []SourceConfig{{
			Name: "can", Subscribers: []int{0, 1}, CTH: us(6), CBH: us(30),
			Monitor: monitor.NewDMin(us(100)),
		}},
	}
	if cfg.Validate() == nil {
		t.Fatal("shared monitored source accepted")
	}
}

func TestSharedIRQFIFOPerPartition(t *testing.T) {
	cfg := Config{
		Slots: paperSlots(),
		Costs: arm.DefaultCosts(),
		Sources: []SourceConfig{{
			Name: "can", Subscribers: []int{0, 1}, CTH: us(6), CBH: us(30),
			Arrivals: workload.Timestamps(workload.Exponential(rng.New(32), us(1200), 150)),
		}},
	}
	sys := build(t, cfg)
	runAll(t, sys)
	last := map[int]int64{0: -1, 1: -1}
	for _, r := range sys.Log().Records {
		if int64(r.Seq) <= last[r.Partition] {
			t.Fatalf("partition %d completed seq %d after %d", r.Partition, r.Seq, last[r.Partition])
		}
		last[r.Partition] = int64(r.Seq)
	}
}
