// Package intc models the platform interrupt controller (a VIC-style
// controller as on the ARM926ej-s evaluation board).
//
// The model captures exactly the properties the paper's argument relies
// on (§4): pending flags are per-source and *non-counting* — a second
// arrival of an already-pending source is lost — which is the stated
// reason top handlers must run even in foreign slots (disabling a source
// while outside the subscriber's partition may drop IRQs). The hypervisor
// (internal/hv) is the only component with direct access, mirroring the
// isolation requirement that partitions never touch the controller.
package intc

import (
	"errors"
	"fmt"
)

// Line identifies one interrupt source at the controller.
type Line int

// Controller is a non-counting, maskable interrupt controller.
// The zero value is unusable; construct with New.
type Controller struct {
	pending []bool
	enabled []bool
	masked  bool // global CPU-side mask (IRQs disabled)

	// statistics
	raised  []uint64
	lost    []uint64
	cleared []uint64
}

// New returns a controller with lines [0, n), all enabled, none pending.
func New(n int) (*Controller, error) {
	if n <= 0 {
		return nil, errors.New("intc: need at least one line")
	}
	c := &Controller{
		pending: make([]bool, n),
		enabled: make([]bool, n),
		raised:  make([]uint64, n),
		lost:    make([]uint64, n),
		cleared: make([]uint64, n),
	}
	for i := range c.enabled {
		c.enabled[i] = true
	}
	return c, nil
}

// Lines returns the number of lines.
func (c *Controller) Lines() int { return len(c.pending) }

func (c *Controller) check(l Line) {
	if int(l) < 0 || int(l) >= len(c.pending) {
		panic(fmt.Sprintf("intc: line %d out of range [0,%d)", l, len(c.pending)))
	}
}

// Raise latches an interrupt on line l. Because flags are non-counting,
// raising an already-pending line loses the event; Raise reports whether
// the event was latched (false = lost).
func (c *Controller) Raise(l Line) bool {
	c.check(l)
	if !c.enabled[l] {
		c.lost[l]++
		return false
	}
	if c.pending[l] {
		c.lost[l]++
		return false
	}
	c.pending[l] = true
	c.raised[l]++
	return true
}

// Clear acknowledges line l (the "resetting IRQ flags" step of the top
// handler, §3). Clearing a non-pending line is a no-op.
func (c *Controller) Clear(l Line) {
	c.check(l)
	if c.pending[l] {
		c.pending[l] = false
		c.cleared[l]++
	}
}

// Pending reports whether line l is latched.
func (c *Controller) Pending(l Line) bool {
	c.check(l)
	return c.pending[l]
}

// AnyPending returns the lowest-numbered enabled pending line and true,
// or 0 and false when none is deliverable. Lower line numbers have
// higher priority, as on the VIC.
func (c *Controller) AnyPending() (Line, bool) {
	if c.masked {
		return 0, false
	}
	for i, p := range c.pending {
		if p && c.enabled[i] {
			return Line(i), true
		}
	}
	return 0, false
}

// MaskAll disables CPU-side interrupt delivery (CPSR I-bit set); pending
// flags keep latching.
func (c *Controller) MaskAll() { c.masked = true }

// UnmaskAll re-enables CPU-side delivery.
func (c *Controller) UnmaskAll() { c.masked = false }

// Masked reports whether CPU-side delivery is disabled.
func (c *Controller) Masked() bool { return c.masked }

// Enable enables latching and delivery for line l.
func (c *Controller) Enable(l Line) {
	c.check(l)
	c.enabled[l] = true
}

// Disable disables line l; raises while disabled are lost (the failure
// mode §4 warns about).
func (c *Controller) Disable(l Line) {
	c.check(l)
	c.enabled[l] = false
}

// Enabled reports whether line l is enabled.
func (c *Controller) Enabled(l Line) bool {
	c.check(l)
	return c.enabled[l]
}

// Stats returns the per-line counters (raised, lost, cleared).
func (c *Controller) Stats(l Line) (raised, lost, cleared uint64) {
	c.check(l)
	return c.raised[l], c.lost[l], c.cleared[l]
}

// TotalLost returns the number of events lost across all lines — the
// quantity that must stay zero in the paper's experiments (the timer is
// reloaded from the top handler precisely to guarantee it).
func (c *Controller) TotalLost() uint64 {
	var n uint64
	for _, v := range c.lost {
		n += v
	}
	return n
}

// Reset returns the controller to its just-constructed state (all lines
// enabled, none pending, counters zeroed) without reallocating.
func (c *Controller) Reset() {
	for i := range c.pending {
		c.pending[i] = false
		c.enabled[i] = true
		c.raised[i] = 0
		c.lost[i] = 0
		c.cleared[i] = 0
	}
	c.masked = false
}

// State is a deep copy of a controller's mutable state, for simulation
// snapshots.
type State struct {
	pending []bool
	enabled []bool
	masked  bool
	raised  []uint64
	lost    []uint64
	cleared []uint64
}

// SaveState captures the controller state.
func (c *Controller) SaveState() State {
	return State{
		pending: append([]bool(nil), c.pending...),
		enabled: append([]bool(nil), c.enabled...),
		masked:  c.masked,
		raised:  append([]uint64(nil), c.raised...),
		lost:    append([]uint64(nil), c.lost...),
		cleared: append([]uint64(nil), c.cleared...),
	}
}

// RestoreState reinstates a state captured from this controller (the
// line count must match).
func (c *Controller) RestoreState(st State) {
	if len(st.pending) != len(c.pending) {
		panic(fmt.Sprintf("intc: restore of %d-line state into %d-line controller", len(st.pending), len(c.pending)))
	}
	copy(c.pending, st.pending)
	copy(c.enabled, st.enabled)
	c.masked = st.masked
	copy(c.raised, st.raised)
	copy(c.lost, st.lost)
	copy(c.cleared, st.cleared)
}
