package intc

import "testing"

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("0 lines accepted")
	}
	c, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Lines() != 4 {
		t.Fatalf("Lines = %d", c.Lines())
	}
}

func TestRaiseAndClear(t *testing.T) {
	c, _ := New(2)
	if !c.Raise(0) {
		t.Fatal("first raise lost")
	}
	if !c.Pending(0) {
		t.Fatal("line not pending after raise")
	}
	c.Clear(0)
	if c.Pending(0) {
		t.Fatal("line pending after clear")
	}
	// Clearing a non-pending line is a no-op.
	c.Clear(0)
}

func TestNonCountingFlags(t *testing.T) {
	// §4: IRQ flags are not counting — a second raise while pending is
	// lost.
	c, _ := New(1)
	if !c.Raise(0) {
		t.Fatal("first raise lost")
	}
	if c.Raise(0) {
		t.Fatal("second raise while pending was latched")
	}
	raised, lost, _ := c.Stats(0)
	if raised != 1 || lost != 1 {
		t.Fatalf("raised=%d lost=%d", raised, lost)
	}
	if c.TotalLost() != 1 {
		t.Fatalf("TotalLost = %d", c.TotalLost())
	}
	// After clearing, the line latches again.
	c.Clear(0)
	if !c.Raise(0) {
		t.Fatal("raise after clear lost")
	}
}

func TestMasking(t *testing.T) {
	c, _ := New(2)
	c.MaskAll()
	if !c.Masked() {
		t.Fatal("not masked")
	}
	// Pending flags keep latching while masked.
	if !c.Raise(1) {
		t.Fatal("raise while masked lost")
	}
	if _, ok := c.AnyPending(); ok {
		t.Fatal("AnyPending delivered while masked")
	}
	c.UnmaskAll()
	l, ok := c.AnyPending()
	if !ok || l != 1 {
		t.Fatalf("AnyPending = %d, %v", l, ok)
	}
}

func TestPriorityOrdering(t *testing.T) {
	// Lower line number = higher priority, as on the VIC.
	c, _ := New(4)
	c.Raise(3)
	c.Raise(1)
	l, ok := c.AnyPending()
	if !ok || l != 1 {
		t.Fatalf("AnyPending = %d, want 1", l)
	}
	c.Clear(1)
	l, ok = c.AnyPending()
	if !ok || l != 3 {
		t.Fatalf("AnyPending = %d, want 3", l)
	}
}

func TestDisable(t *testing.T) {
	c, _ := New(1)
	c.Disable(0)
	if c.Enabled(0) {
		t.Fatal("still enabled")
	}
	// Raises while disabled are lost (the §4 failure mode).
	if c.Raise(0) {
		t.Fatal("raise on disabled line latched")
	}
	if c.TotalLost() != 1 {
		t.Fatalf("TotalLost = %d", c.TotalLost())
	}
	c.Enable(0)
	if !c.Raise(0) {
		t.Fatal("raise after enable lost")
	}
	// Disabled pending lines are not delivered.
	c.Disable(0)
	if _, ok := c.AnyPending(); ok {
		t.Fatal("disabled pending line delivered")
	}
}

func TestStatsCleared(t *testing.T) {
	c, _ := New(1)
	c.Raise(0)
	c.Clear(0)
	c.Raise(0)
	c.Clear(0)
	raised, lost, cleared := c.Stats(0)
	if raised != 2 || lost != 0 || cleared != 2 {
		t.Fatalf("stats = %d/%d/%d", raised, lost, cleared)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	c, _ := New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range line did not panic")
		}
	}()
	c.Raise(5)
}
