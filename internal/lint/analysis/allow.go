package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// allowPrefix starts a suppression comment:
//
//	//reprolint:allow <analyzer> <reason>
//
// placed on the diagnosed line or the line directly above it. A space
// after the // is tolerated.
const allowPrefix = "reprolint:allow"

// Allow is one parsed suppression directive.
type Allow struct {
	Analyzer string
	Reason   string
	File     string
	Line     int
	Pos      token.Pos
	// Used is set by Suppress when the directive suppressed at least
	// one diagnostic; the driver reports unused directives so stale
	// suppressions cannot accumulate.
	Used bool
}

// ParseAllows extracts every reprolint:allow directive from files.
// Malformed directives — a missing analyzer or reason, or an analyzer
// name not in known — are returned as diagnostics: a suppression whose
// meaning cannot be checked must not silently suppress.
func ParseAllows(fset *token.FileSet, files []*ast.File, known map[string]bool) (allows []*Allow, invalid []Diagnostic) {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, allowPrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				pos := fset.Position(c.Pos())
				if len(fields) == 0 {
					invalid = append(invalid, Diagnostic{
						Pos:     c.Pos(),
						Message: "reprolint:allow needs an analyzer name and a reason",
					})
					continue
				}
				if !known[fields[0]] {
					invalid = append(invalid, Diagnostic{
						Pos:     c.Pos(),
						Message: "reprolint:allow names unknown analyzer " + strconv.Quote(fields[0]),
					})
					continue
				}
				if len(fields) < 2 {
					invalid = append(invalid, Diagnostic{
						Pos:     c.Pos(),
						Message: "reprolint:allow " + fields[0] + " needs a reason",
					})
					continue
				}
				allows = append(allows, &Allow{
					Analyzer: fields[0],
					Reason:   strings.Join(fields[1:], " "),
					File:     pos.Filename,
					Line:     pos.Line,
					Pos:      c.Pos(),
				})
			}
		}
	}
	return allows, invalid
}

// Suppress drops every diagnostic covered by a matching directive (same
// file, same line or the line above, same analyzer), marking the
// directives it uses, and returns the survivors.
func Suppress(fset *token.FileSet, diags []Diagnostic, analyzer string, allows []*Allow) []Diagnostic {
	var kept []Diagnostic
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		suppressed := false
		for _, a := range allows {
			if a.Analyzer != analyzer || a.File != pos.Filename {
				continue
			}
			if a.Line == pos.Line || a.Line == pos.Line-1 {
				a.Used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}
