// Package analysis is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis surface that reprolint needs:
// an Analyzer owns a name, a doc string and a Run function; a Pass
// hands the Run function one type-checked package and collects
// diagnostics.
//
// The container this repository builds in has no module proxy access,
// so golang.org/x/tools cannot be added to go.mod (see DESIGN.md §10).
// The field and method names here deliberately mirror the upstream
// package: if the dependency ever becomes available, switching is a
// mechanical import rewrite — analyzer Run functions compile against
// either.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //reprolint:allow comments. By convention it is a short
	// lower-case word.
	Name string

	// Doc is the one-paragraph description printed by `reprolint -help`.
	Doc string

	// Run applies the analyzer to one package. Diagnostics are
	// delivered through pass.Report / pass.Reportf; the result value
	// is unused by reprolint and exists for upstream compatibility.
	Run func(*Pass) (interface{}, error)
}

// Pass is the interface between the driver and one (analyzer, package)
// pairing.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Module carries the driver's module-wide interprocedural result
	// (an *interproc.Module), shared by every pass of one run. It is
	// reprolint's stand-in for upstream's Facts mechanism: typed as
	// interface{} here so this package stays a pure analysis surface
	// with no dependency on the call-graph builder.
	Module interface{}

	// Report delivers one diagnostic. The driver installs it.
	Report func(Diagnostic)
}

// Reportf formats and delivers a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
