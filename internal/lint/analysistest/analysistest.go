// Package analysistest runs one reprolint analyzer over a fixture
// package and checks its diagnostics against `// want` expectations,
// mirroring golang.org/x/tools/go/analysis/analysistest (unavailable
// in this proxy-less build container, see DESIGN.md §10).
//
// A fixture line that should be diagnosed carries a trailing comment
// with one quoted regexp per expected diagnostic on that line:
//
//	for k := range m { // want `nondeterministic iteration order`
//
// Both backquoted and double-quoted regexps are accepted.
// //reprolint:allow directives are honored exactly as the driver
// honors them, so fixtures can assert suppression by carrying an allow
// comment and no want expectation.
//
// The fixture directory is loaded recursively: a fixture may be a tree
// of packages (the interprocedural analyzers need helper subpackages
// to model cross-package taint), and the module-wide summaries are
// built over the whole tree before any package is analyzed. Want
// expectations are collected and checked across every package of the
// tree.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/interproc"
	"repro/internal/lint/load"
)

var (
	wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)
	tokRe  = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")
)

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// Run loads the fixture tree rooted at dir, applies a to every package
// in it, and reports every mismatch between produced diagnostics and
// // want expectations through t.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	pkgs, err := load.Load(strings.TrimSuffix(dir, "/") + "/...")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s: no packages", dir)
	}
	mod := interproc.Build(pkgs)

	wants := map[string][]*expectation{} // "file:line" -> expectations
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					for _, tok := range tokRe.FindAllString(m[1], -1) {
						pat, err := strconv.Unquote(tok)
						if err != nil {
							t.Fatalf("%s: cannot unquote want pattern %s: %v", key, tok, err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", key, pat, err)
						}
						wants[key] = append(wants[key], &expectation{re: re})
					}
				}
			}
		}
	}

	for _, pkg := range pkgs {
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Module:    mod,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if _, err := a.Run(pass); err != nil {
			t.Fatalf("%s on %s: %v", a.Name, pkg.PkgPath, err)
		}
		allows, invalid := analysis.ParseAllows(pkg.Fset, pkg.Syntax, map[string]bool{a.Name: true})
		for _, d := range invalid {
			t.Errorf("%s: invalid directive: %s", position(pkg.Fset, d.Pos), d.Message)
		}
		diags = analysis.Suppress(pkg.Fset, diags, a.Name, allows)

		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
			found := false
			for _, w := range wants[key] {
				if !w.matched && w.re.MatchString(d.Message) {
					w.matched = true
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
			}
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, w.re)
			}
		}
	}
}

func position(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", p.Filename, p.Line)
}
