package lint

import (
	"fmt"

	"repro/internal/lint/analysis"
	"repro/internal/lint/interproc"
)

// Arenaescape is the dataflow successor to Arenaretain. Arenaretain
// flags the two hard-coded arena entry points (core.Report,
// (*hv.System).Log) at the call site; Arenaescape follows the *value*:
// any expression aliasing arena-owned memory — through helper returns,
// field selection, slicing, composite-literal laundering — that is
// stored into a struct field, package-level variable, map entry or
// channel in an arena-adopting package. Such a store survives the
// arena's next Reset and silently changes bytes when the worker's
// arena is handed the next scenario (the use-after-reset class the
// zero-alloc engine core makes possible, DESIGN.md §11).
var Arenaescape = &analysis.Analyzer{
	Name: "arenaescape",
	Doc: "forbids storing values that alias arena-owned memory (core.Report results, " +
		"(*hv.System).Log records, and anything derived from them) into struct fields, " +
		"globals, maps or channels in arena-adopting packages; dataflow-based, subsumes " +
		"arenaretain's call-site check",
	Run: runArenaescape,
}

// arenaescapeScope: the arenaretain scope plus internal/campaign, which
// executes cells through per-worker arenas since PR 7.
var arenaescapeScope = append([]string{
	modulePath + "/internal/campaign",
}, arenaretainScope...)

func runArenaescape(pass *analysis.Pass) (interface{}, error) {
	mod, ok := pass.Module.(*interproc.Module)
	if !ok {
		return nil, fmt.Errorf("arenaescape needs the interprocedural module summaries (driver did not set Pass.Module)")
	}
	path := pass.Pkg.Path()
	if !pkgMatches(path, arenaescapeScope) && !isFixtureFor(path, "arenaescape") {
		return nil, nil
	}
	for _, fi := range mod.Funcs(path) {
		for _, e := range fi.Escapes {
			pass.Reportf(e.Pos,
				"arena-aliased value stored into %s outlives the simulation arena's next Reset; "+
					"deep-copy first (core.ReportOwned) or keep the alias local",
				e.What)
		}
	}
	return nil, nil
}
