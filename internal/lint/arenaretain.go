package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// arenaretainScope lists the arena-adopting packages (DESIGN.md §11):
// everything that runs simulations through engine.SimArena and must
// therefore treat hypervisor-owned state as borrowed until the next
// Reset. Packages below the arena seam (hv, core, des, ...) own or
// copy that state legitimately and are out of scope.
var arenaretainScope = []string{
	modulePath + "/internal/engine",
	modulePath + "/internal/experiments",
	modulePath + "/internal/sweep",
	modulePath + "/internal/faults",
	modulePath + "/internal/serve",
}

// arenaretain entry points: the core package whose Report aliases the
// live trace log, and the hv package whose System.Log hands out the
// arena-owned record slice directly.
const (
	arenaCorePkg = modulePath + "/internal/core"
	arenaHvPkg   = modulePath + "/internal/hv"
)

// Arenaretain flags expressions in arena-adopting packages that retain
// pointers into arena-owned memory past the point where the arena may
// be Reset and reused: core.Report (its Result aliases the live
// tracerec.Log) and (*hv.System).Log (the record slice is recycled by
// Reinit). A Result built from either would silently change bytes when
// the worker's arena is handed the next scenario — exactly the
// use-after-reset class the zero-alloc engine core makes possible.
// Arena-adopting code returns results via core.ReportOwned, which
// deep-copies the records into caller-owned memory.
var Arenaretain = &analysis.Analyzer{
	Name: "arenaretain",
	Doc: "arena-adopting packages (engine, experiments, sweep, faults, serve) must not retain " +
		"arena-owned memory: use core.ReportOwned instead of core.Report, and do not hold " +
		"(*hv.System).Log() results across arena reuse",
	Run: runArenaretain,
}

func runArenaretain(pass *analysis.Pass) (interface{}, error) {
	path := pass.Pkg.Path()
	if !pkgMatches(path, arenaretainScope) && !isFixtureFor(path, "arenaretain") {
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok {
				return true
			}
			switch {
			case fn.Pkg().Path() == arenaCorePkg && sig.Recv() == nil && fn.Name() == "Report":
				pass.Reportf(call.Pos(),
					"core.Report aliases the arena-owned trace log; use core.ReportOwned so the "+
						"Result survives the arena's next Reset")
			case fn.Pkg().Path() == arenaHvPkg && sig.Recv() != nil && fn.Name() == "Log":
				pass.Reportf(call.Pos(),
					"(*hv.System).Log returns arena-owned records that are recycled on Reinit; "+
						"copy what you need (or use core.ReportOwned) before the arena is reused")
			}
			return true
		})
	}
	return nil, nil
}
