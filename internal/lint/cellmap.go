package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// campaignPkg is the campaign orchestrator package whose cell-result
// documents this analyzer tracks.
const campaignPkg = modulePath + "/internal/campaign"

// Cellmap bans `range` over any map holding campaign cell results.
// The campaign aggregate is a commutative monoid precisely so the fold
// never has to care about arrival order — but that guarantee is only
// as strong as the code paths that feed it. A map keyed by cell id is
// the tempting intermediate ("collect results, then merge"), and the
// moment someone folds by ranging over it, the merge order becomes
// Go's randomized map order. Today the monoid absorbs that; the first
// future field that is not perfectly commutative (a "first violation
// seen" tag, a capped reproducer list filled on arrival) silently
// breaks byte-identity only under map iteration, which no unit test
// reproduces deterministically. So the contract is structural: cells
// reach MergeCell from a deterministic sequence — the generator's
// expansion order, a journal replay, a sorted slice — never from map
// iteration. Unlike detmap there is no sorted-keys escape hatch here:
// if the cells are worth sorting they are worth keeping in a slice.
var Cellmap = &analysis.Analyzer{
	Name: "cellmap",
	Doc: "aggregate merge code must not range over a map of campaign cell " +
		"results; feed MergeCell from a deterministic sequence (expansion " +
		"order, journal order, or a sorted slice)",
	Run: runCellmap,
}

func runCellmap(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok {
				return true
			}
			m, ok := tv.Type.Underlying().(*types.Map)
			if !ok || !isCellResult(m.Elem()) {
				return true
			}
			pass.Reportf(rs.For,
				"range over a map of campaign cell results has nondeterministic merge order; fold cells from a deterministic sequence instead")
			return true
		})
	}
	return nil, nil
}

// isCellResult reports whether t is campaign.CellResult, a pointer to
// it, or a named type whose underlying chain reaches it.
func isCellResult(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == campaignPkg && obj.Name() == "CellResult"
}
