package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// ctxCancelCtors are the context constructors returning a (ctx, cancel)
// pair.
var ctxCancelCtors = map[string]bool{
	"WithCancel": true, "WithTimeout": true, "WithDeadline": true,
	"WithCancelCause": true, "WithTimeoutCause": true, "WithDeadlineCause": true,
}

// CtxErrOrder flags reading ctx.Err() after the corresponding cancel()
// has been called in the same function: by that point ctx.Err() is
// unconditionally non-nil (context.Canceled), so using it to decide
// "was this job cancelled?" misclassifies every other failure. This is
// exactly the PR 3 serve bug (real executor errors reported as
// cancellations); the fix is to capture ctx.Err() before cancelling.
// Deferred cancels and cancels inside nested function literals do not
// count — only a straight-line cancel followed by a later ctx.Err()
// read.
var CtxErrOrder = &analysis.Analyzer{
	Name: "ctxerrorder",
	Doc: "flags ctx.Err() read after the corresponding cancel() in the same " +
		"function; capture ctx.Err() before cancelling (the PR 3 misclassification bug)",
	Run: runCtxErrOrder,
}

func runCtxErrOrder(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body != nil {
				checkCtxErrOrder(pass, body)
			}
			return true
		})
	}
	return nil, nil
}

func checkCtxErrOrder(pass *analysis.Pass, body *ast.BlockStmt) {
	// ctx object -> cancel object, for every `ctx, cancel := context.WithX(...)`
	// assignment in this function body (nested literals excluded).
	pairs := map[types.Object]types.Object{}
	walkShallow(body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 2 || len(as.Rhs) != 1 {
			return
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		if pkgPath, ok := pkgNameOf(pass, sel.X); !ok || pkgPath != "context" || !ctxCancelCtors[sel.Sel.Name] {
			return
		}
		ctxID, ok1 := as.Lhs[0].(*ast.Ident)
		cancelID, ok2 := as.Lhs[1].(*ast.Ident)
		if !ok1 || !ok2 {
			return
		}
		ctxObj, cancelObj := objOf(pass, ctxID), objOf(pass, cancelID)
		if ctxObj != nil && cancelObj != nil {
			pairs[ctxObj] = cancelObj
		}
	})
	if len(pairs) == 0 {
		return
	}

	// A deferred cancel runs at return, after any ctx.Err() read in the
	// body, so it never establishes the hazardous ordering.
	deferred := map[*ast.CallExpr]bool{}
	walkShallow(body, func(n ast.Node) {
		if df, ok := n.(*ast.DeferStmt); ok {
			deferred[df.Call] = true
		}
	})

	// Earliest non-deferred direct call position per cancel object.
	cancelled := map[types.Object]token.Pos{}
	walkShallow(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || deferred[call] {
			return
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			return
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return
		}
		isCancel := false
		for _, c := range pairs {
			if c == obj {
				isCancel = true
				break
			}
		}
		if !isCancel {
			return
		}
		if pos, seen := cancelled[obj]; !seen || call.Pos() < pos {
			cancelled[obj] = call.Pos()
		}
	})
	if len(cancelled) == 0 {
		return
	}

	// Any ctx.Err() read positioned after the paired cancel call.
	walkShallow(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Err" {
			return
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return
		}
		ctxObj := pass.TypesInfo.Uses[id]
		if ctxObj == nil {
			return
		}
		cancelObj, ok := pairs[ctxObj]
		if !ok {
			return
		}
		cancelPos, ok := cancelled[cancelObj]
		if !ok || call.Pos() <= cancelPos {
			return
		}
		pass.Reportf(call.Pos(),
			"%s.Err() read after %s() was called at %s; it is always non-nil by then, misclassifying real errors as cancellation — capture %s.Err() before cancelling",
			id.Name, cancelObj.Name(), pass.Fset.Position(cancelPos), id.Name)
	})
}

// walkShallow visits the nodes of body without descending into nested
// function literals: their bodies run on their own schedule (often a
// different goroutine), so textual order proves nothing there, and
// they are analyzed as functions in their own right.
func walkShallow(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}
