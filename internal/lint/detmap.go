package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// detmapScope lists the determinism-critical packages: anything whose
// output is hashed into a cache key, rendered into a golden file, or
// exposed byte-identically (canonical scenario JSON, report encoders,
// SVG rendering, metrics exposition, serve cache-key construction).
var detmapScope = []string{
	modulePath + "/internal/core",
	modulePath + "/internal/report",
	modulePath + "/internal/viz",
	modulePath + "/internal/metrics",
	modulePath + "/internal/serve",
	modulePath + "/internal/campaign",
}

// Detmap flags `range` over a map in determinism-critical packages:
// Go randomizes map iteration order, so any encoded, rendered or
// hashed output assembled in iteration order diverges between two
// runs of the same (scenario, seed, revision) triple. The canonical
// collect-keys-then-sort idiom is recognized and allowed: a range
// whose body only appends to slices that are each passed to a
// sort.*/slices.Sort* call later in the same function.
var Detmap = &analysis.Analyzer{
	Name: "detmap",
	Doc: "flags map iteration in determinism-critical packages " +
		"(internal/core, internal/report, internal/viz, internal/metrics, " +
		"internal/serve, internal/campaign) unless the keys are collected and sorted",
	Run: runDetmap,
}

func runDetmap(pass *analysis.Pass) (interface{}, error) {
	path := pass.Pkg.Path()
	if !pkgMatches(path, detmapScope) && !isFixtureFor(path, "detmap") {
		return nil, nil
	}
	for _, file := range pass.Files {
		inspectWithStack(file, func(n ast.Node, stack []ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			// With neither key nor value bound, the body cannot
			// observe the iteration order.
			if rs.Key == nil && rs.Value == nil {
				return true
			}
			if isSortedKeyCollection(pass, rs, stack) {
				return true
			}
			pass.Reportf(rs.For,
				"range over map has nondeterministic iteration order in determinism-critical package %s; iterate sorted keys instead (collect keys, sort, then index)",
				path)
			return true
		})
	}
	return nil, nil
}

// isSortedKeyCollection reports whether rs is the canonical
// collect-then-sort idiom: every statement in its body is
// `s = append(s, ...)` for some local slice s, and each such s is
// passed to a recognized sort call after the loop in the enclosing
// function.
func isSortedKeyCollection(pass *analysis.Pass, rs *ast.RangeStmt, stack []ast.Node) bool {
	if len(rs.Body.List) == 0 {
		return false
	}
	targets := map[types.Object]bool{}
	for _, stmt := range rs.Body.List {
		obj := appendTarget(pass, stmt)
		if obj == nil {
			return false
		}
		targets[obj] = true
	}
	fnBody := enclosingFuncBody(stack)
	if fnBody == nil {
		return false
	}
	for obj := range targets {
		if !sortedAfter(pass, fnBody, obj, rs.End()) {
			return false
		}
	}
	return true
}

// appendTarget returns the object of s when stmt has the exact shape
// `s = append(s, ...)` (or `s = append(s, ...)` with :=), else nil.
func appendTarget(pass *analysis.Pass, stmt ast.Stmt) types.Object {
	as, ok := stmt.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" || len(call.Args) < 2 {
		return nil
	}
	if b, ok := pass.TypesInfo.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	arg0, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return nil
	}
	lobj := objOf(pass, lhs)
	if lobj == nil || lobj != pass.TypesInfo.Uses[arg0] {
		return nil
	}
	return lobj
}

func objOf(pass *analysis.Pass, id *ast.Ident) types.Object {
	if o := pass.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return pass.TypesInfo.Defs[id]
}

// enclosingFuncBody returns the body of the innermost function literal
// or declaration on the ancestor stack.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// sortedAfter reports whether obj is handed to a sort.* / slices.Sort*
// call positioned after `after` within body.
func sortedAfter(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object, after token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < after || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgPath, ok := pkgNameOf(pass, sel.X)
		if !ok {
			return true
		}
		switch {
		case pkgPath == "sort" && sortFuncs[sel.Sel.Name],
			pkgPath == "slices" && slicesSortFuncs[sel.Sel.Name]:
		default:
			return true
		}
		if arg, ok := call.Args[0].(*ast.Ident); ok && pass.TypesInfo.Uses[arg] == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

var sortFuncs = map[string]bool{
	"Strings": true, "Ints": true, "Float64s": true,
	"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
}

var slicesSortFuncs = map[string]bool{
	"Sort": true, "SortFunc": true, "SortStableFunc": true,
}
