package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/lint/analysis"
	"repro/internal/lint/interproc"
	"repro/internal/lint/load"
)

// Finding is one diagnostic attributed to the analyzer that produced
// it. File is relative to the working directory when that is shorter,
// mirroring go vet.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
	Analyzer string `json:"analyzer"`
}

// RunFindings loads the packages matched by patterns, builds the
// module-wide interprocedural summaries once, applies every analyzer,
// and honors //reprolint:allow directives. The returned findings are in
// deterministic order (file, line, column, analyzer, message). A
// non-nil error means the load or an analyzer itself failed, not that
// findings exist.
func RunFindings(analyzers []*analysis.Analyzer, patterns []string) ([]Finding, error) {
	pkgs, err := load.Load(patterns...)
	if err != nil {
		return nil, err
	}
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	// One call graph for the whole run: per-function summaries are
	// module-global facts, so building them per package would both
	// waste work and lose cross-package edges.
	mod := interproc.Build(pkgs)

	var findings []Finding
	for _, pkg := range pkgs {
		allows, invalid := analysis.ParseAllows(pkg.Fset, pkg.Syntax, known)
		for _, d := range invalid {
			p := pkg.Fset.Position(d.Pos)
			findings = append(findings, Finding{p.Filename, p.Line, p.Column, d.Message, "reprolint"})
		}
		for _, a := range analyzers {
			var diags []analysis.Diagnostic
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Module:    mod,
				Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
			}
			for _, d := range analysis.Suppress(pkg.Fset, diags, a.Name, allows) {
				p := pkg.Fset.Position(d.Pos)
				findings = append(findings, Finding{p.Filename, p.Line, p.Column, d.Message, a.Name})
			}
		}
		// Every directive must earn its keep: the full suite just ran,
		// so an unused allow is stale and must go.
		for _, al := range allows {
			if !al.Used {
				p := pkg.Fset.Position(al.Pos)
				findings = append(findings, Finding{
					p.Filename, p.Line, p.Column,
					fmt.Sprintf("reprolint:allow %s suppresses nothing; delete it", al.Analyzer),
					"reprolint",
				})
			}
		}
	}

	cwd, _ := os.Getwd()
	for i := range findings {
		name := findings[i].File
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && len(rel) < len(name) {
				findings[i].File = rel
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return findings, nil
}

// Run applies analyzers to patterns and writes `go vet`-style
// file:line:col diagnostics to w. It returns the number of diagnostics
// printed; a non-nil error means the run itself failed (driver exit 2).
func Run(w io.Writer, analyzers []*analysis.Analyzer, patterns []string) (int, error) {
	findings, err := RunFindings(analyzers, patterns)
	if err != nil {
		return 0, err
	}
	for _, f := range findings {
		fmt.Fprintf(w, "%s:%d:%d: %s [%s]\n", f.File, f.Line, f.Col, f.Message, f.Analyzer)
	}
	return len(findings), nil
}

// RunJSON applies analyzers to patterns and writes the findings to w as
// one JSON array (machine-readable CI mode: each element carries file,
// line, col, message, analyzer). The count return mirrors Run.
func RunJSON(w io.Writer, analyzers []*analysis.Analyzer, patterns []string) (int, error) {
	findings, err := RunFindings(analyzers, patterns)
	if err != nil {
		return 0, err
	}
	if findings == nil {
		findings = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(findings); err != nil {
		return 0, err
	}
	return len(findings), nil
}
