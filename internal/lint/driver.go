package lint

import (
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// finding is one diagnostic attributed to the analyzer that produced
// it.
type finding struct {
	pos      token.Position
	message  string
	analyzer string
}

// Run loads the packages matched by patterns, applies every analyzer,
// honors //reprolint:allow directives, and writes `go vet`-style
// file:line:col diagnostics to w in deterministic order. It returns
// the number of diagnostics printed; a non-nil error means the load or
// an analyzer itself failed (driver exit 2), not that findings exist.
func Run(w io.Writer, analyzers []*analysis.Analyzer, patterns []string) (int, error) {
	pkgs, err := load.Load(patterns...)
	if err != nil {
		return 0, err
	}
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var findings []finding
	for _, pkg := range pkgs {
		allows, invalid := analysis.ParseAllows(pkg.Fset, pkg.Syntax, known)
		for _, d := range invalid {
			findings = append(findings, finding{pkg.Fset.Position(d.Pos), d.Message, "reprolint"})
		}
		for _, a := range analyzers {
			var diags []analysis.Diagnostic
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
			}
			if _, err := a.Run(pass); err != nil {
				return 0, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
			}
			for _, d := range analysis.Suppress(pkg.Fset, diags, a.Name, allows) {
				findings = append(findings, finding{pkg.Fset.Position(d.Pos), d.Message, a.Name})
			}
		}
		// Every directive must earn its keep: the full suite just ran,
		// so an unused allow is stale and must go.
		for _, al := range allows {
			if !al.Used {
				findings = append(findings, finding{
					pkg.Fset.Position(al.Pos),
					fmt.Sprintf("reprolint:allow %s suppresses nothing; delete it", al.Analyzer),
					"reprolint",
				})
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		if a.pos.Column != b.pos.Column {
			return a.pos.Column < b.pos.Column
		}
		if a.analyzer != b.analyzer {
			return a.analyzer < b.analyzer
		}
		return a.message < b.message
	})

	cwd, _ := os.Getwd()
	for _, f := range findings {
		name := f.pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && len(rel) < len(name) {
				name = rel
			}
		}
		fmt.Fprintf(w, "%s:%d:%d: %s [%s]\n", name, f.pos.Line, f.pos.Column, f.message, f.analyzer)
	}
	return len(findings), nil
}
