package lint

import (
	"fmt"

	"repro/internal/lint/analysis"
	"repro/internal/lint/interproc"
)

// Durableerr guards the durability contract (DESIGN.md §9): the error
// results of durable writes — journal append/compact, store.Put (the
// persistence of every EncodeFrame'd body), cluster handoff and
// dispatch POSTs — must be checked. A dropped one silently breaks the
// no-acked-job-lost invariant: the daemon acks work whose accept
// record, result bytes, or handoff never reached disk, and a crash
// then loses it without a trace.
//
// The obligation is interprocedural: a helper that *returns* a durable
// error passes the obligation to its callers (interproc propagates the
// Durable summary), so refactoring an append behind a helper cannot
// wash the check away. Discarding means a bare call statement, go/defer
// operand, or assignment to _; returning or examining the error
// discharges the obligation.
var Durableerr = &analysis.Analyzer{
	Name: "durableerr",
	Doc: "requires checking error results of durable writes (journal append/compact, " +
		"store.Put, cluster handoff/dispatch) and of any helper returning such an error; " +
		"a dropped one breaks the no-acked-job-lost invariant",
	Run: runDurableerr,
}

// durableerrScope: the packages that perform durable writes or own
// helpers returning their errors.
var durableerrScope = []string{
	modulePath + "/internal/serve",
	modulePath + "/internal/store",
	modulePath + "/internal/cluster",
}

func runDurableerr(pass *analysis.Pass) (interface{}, error) {
	mod, ok := pass.Module.(*interproc.Module)
	if !ok {
		return nil, fmt.Errorf("durableerr needs the interprocedural module summaries (driver did not set Pass.Module)")
	}
	path := pass.Pkg.Path()
	if !pkgMatches(path, durableerrScope) && !isFixtureFor(path, "durableerr") {
		return nil, nil
	}
	for _, fi := range mod.Funcs(path) {
		for _, d := range fi.Drops {
			pass.Reportf(d.Pos, "%s; durable-write errors carry the no-acked-job-lost invariant and must be checked", d.What)
		}
	}
	return nil, nil
}
