package interproc

import (
	"go/ast"
	"go/token"
	"go/types"
)

// arenaScan is the intra-procedural escape analysis for arena-owned
// memory. A value is tainted when it aliases the simulation arena:
// directly from a base fact (core.Report, (*hv.System).Log), from a
// callee whose Arena summary is set, or derived from a tainted value
// through selection, indexing, slicing, address-taking, composite
// literals (the "laundered through a local struct" case), range
// statements and builtin append.
//
// A tainted value stored into a struct field, package-level variable,
// map entry or channel escapes the current call and is recorded (on
// the recording pass); a tainted value returned sets the function's
// Arena summary so callers inherit the taint. Taint through call
// arguments is not tracked (documented caveat, DESIGN.md §15).
//
// The scan iterates until the local taint set stops growing, so
// ordinary forward def-use chains and simple cycles both converge; the
// recording pass reruns once more with the stable set so escapes are
// complete.
func (m *Module) arenaScan(fi *FuncInfo, record bool) bool {
	info := fi.info
	tainted := map[types.Object]bool{}
	returns := false
	var escapes []Escape
	seen := map[token.Pos]bool{}

	var taintOf func(e ast.Expr) bool
	taintOf = func(e ast.Expr) bool {
		switch e := e.(type) {
		case *ast.Ident:
			obj := info.Uses[e]
			return obj != nil && tainted[obj]
		case *ast.CallExpr:
			if k := calleeOf(info, e); k != "" {
				if m.cutAt(fi.fset, e.Pos(), famArena) {
					return false // allowed alias: deliberately borrowed, not propagated
				}
				return m.arenaFn(k)
			}
			// Builtins: append carries element taint into the result.
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" {
				for _, a := range e.Args {
					if taintOf(a) {
						return true
					}
				}
			}
			return false
		case *ast.SelectorExpr:
			return taintOf(e.X)
		case *ast.IndexExpr:
			return taintOf(e.X)
		case *ast.SliceExpr:
			return taintOf(e.X)
		case *ast.StarExpr:
			return taintOf(e.X)
		case *ast.UnaryExpr:
			return taintOf(e.X)
		case *ast.ParenExpr:
			return taintOf(e.X)
		case *ast.TypeAssertExpr:
			return taintOf(e.X)
		case *ast.CompositeLit:
			for _, el := range e.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					if taintOf(kv.Value) {
						return true
					}
				} else if taintOf(el) {
					return true
				}
			}
			return false
		}
		return false
	}

	escape := func(pos token.Pos, what string) {
		if record && !seen[pos] {
			seen[pos] = true
			escapes = append(escapes, Escape{Pos: pos, What: what})
		}
	}

	// objOf resolves an assignment target identifier to its object,
	// whether this statement defines it (:=) or reuses it (=).
	objOf := func(id *ast.Ident) types.Object {
		if obj := info.Defs[id]; obj != nil {
			return obj
		}
		return info.Uses[id]
	}

	added := false
	taint := func(obj types.Object) {
		if obj != nil && !tainted[obj] {
			tainted[obj] = true
			added = true
		}
	}

	// sink classifies one assignment target receiving a tainted value.
	sink := func(lhs ast.Expr) {
		switch lhs := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if lhs.Name == "_" {
				return
			}
			obj := objOf(lhs)
			if obj == nil {
				return
			}
			if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				escape(lhs.Pos(), "package-level variable "+lhs.Name)
				return
			}
			taint(obj)
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[lhs]; ok && sel.Kind() == types.FieldVal {
				escape(lhs.Pos(), "struct field "+lhs.Sel.Name)
				// The rooted value is now tainted too: reading the field
				// back must not launder the alias away.
				if id, ok := ast.Unparen(lhs.X).(*ast.Ident); ok {
					taint(objOf(id))
				}
			}
		case *ast.IndexExpr:
			t := info.Types[lhs.X].Type
			if t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					escape(lhs.Pos(), "map entry")
					return
				}
			}
			// Slice/array element store: propagate taint to the root so
			// a later store of the container still reports.
			if id, ok := ast.Unparen(lhs.X).(*ast.Ident); ok {
				taint(objOf(id))
			}
		}
	}

	insideFuncLit := func(stack []ast.Node) bool {
		for _, n := range stack {
			if _, ok := n.(*ast.FuncLit); ok {
				return true
			}
		}
		return false
	}

	scan := func() {
		inspectStack(fi.decl.Body, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
					// Multi-value: one tainted producer taints every target.
					if taintOf(n.Rhs[0]) {
						for _, lhs := range n.Lhs {
							sink(lhs)
						}
					}
					return true
				}
				for i, rhs := range n.Rhs {
					if i < len(n.Lhs) && taintOf(rhs) {
						sink(n.Lhs[i])
					}
				}
			case *ast.ValueSpec:
				for i, v := range n.Values {
					if taintOf(v) {
						if i < len(n.Names) {
							taint(info.Defs[n.Names[i]])
						}
					}
				}
			case *ast.RangeStmt:
				if taintOf(n.X) {
					for _, v := range []ast.Expr{n.Key, n.Value} {
						if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
							taint(objOf(id))
						}
					}
				}
			case *ast.SendStmt:
				if taintOf(n.Value) {
					escape(n.Pos(), "a channel")
				}
			case *ast.ReturnStmt:
				if insideFuncLit(stack) {
					return true
				}
				for _, r := range n.Results {
					if taintOf(r) {
						returns = true
					}
				}
			}
			return true
		})
	}

	// Iterate to a local fixpoint: each round may discover new tainted
	// objects whose later uses only classify correctly on the next one.
	for range [4]int{} {
		added = false
		returns = false
		escapes = escapes[:0]
		for p := range seen {
			delete(seen, p)
		}
		scan()
		if !added {
			break
		}
	}
	if record {
		fi.Escapes = append(fi.Escapes[:0], escapes...)
	}
	return returns
}
