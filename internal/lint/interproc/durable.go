package interproc

import (
	"go/ast"
	"go/types"
)

var errorType = types.Universe.Lookup("error").Type()

// errorResultIndex locates the error in call's result list: the index
// of the last error-typed result and the total result count, or
// (-1, n) when the callee returns no error.
func errorResultIndex(info *types.Info, call *ast.CallExpr) (idx, n int) {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return -1, 0
	}
	if tup, ok := tv.Type.(*types.Tuple); ok {
		idx = -1
		for i := 0; i < tup.Len(); i++ {
			if types.Identical(tup.At(i).Type(), errorType) {
				idx = i
			}
		}
		return idx, tup.Len()
	}
	if types.Identical(tv.Type, errorType) {
		return 0, 1
	}
	return -1, 1
}

// durableScan finds discarded durable-write errors. A durable call is
// one whose key is a base fact (journal append/compact, Store.Put,
// cluster Handoff/Dispatch) or whose Durable summary is set because it
// returns such an error. Its error result is dropped when the call is
// a bare expression statement, the operand of go/defer, or assigned to
// the blank identifier. Returning the error (directly, or via a local
// variable the error was assigned to) marks the function Durable so
// callers inherit the obligation; anything else — comparison, wrapping,
// assignment to a named variable — counts as checked, the same line
// the errcheck family draws.
func (m *Module) durableScan(fi *FuncInfo, record bool) bool {
	info := fi.info
	returns := false
	errObjs := map[types.Object]bool{}
	var drops []Drop

	insideFuncLit := func(stack []ast.Node) bool {
		for _, n := range stack {
			if _, ok := n.(*ast.FuncLit); ok {
				return true
			}
		}
		return false
	}
	// parentOf skips parens between the call and its consuming node.
	parentOf := func(stack []ast.Node) ast.Node {
		for i := len(stack) - 1; i >= 0; i-- {
			if _, ok := stack[i].(*ast.ParenExpr); ok {
				continue
			}
			return stack[i]
		}
		return nil
	}
	isBlank := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "_"
	}

	drop := func(call *ast.CallExpr, key, how string) {
		if record {
			drops = append(drops, Drop{
				Pos:  call.Pos(),
				What: "error from " + Short(key) + " " + how,
			})
		}
	}

	inspectStack(fi.decl.Body, func(n ast.Node, stack []ast.Node) bool {
		if ret, ok := n.(*ast.ReturnStmt); ok && !insideFuncLit(stack) {
			for _, r := range ret.Results {
				if id, ok := ast.Unparen(r).(*ast.Ident); ok && errObjs[info.Uses[id]] {
					returns = true
				}
			}
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		key := calleeOf(info, call)
		if key == "" || !m.durableFn(key) {
			return true
		}
		errIdx, nres := errorResultIndex(info, call)
		if errIdx < 0 {
			return true
		}
		switch p := parentOf(stack).(type) {
		case *ast.ExprStmt:
			drop(call, key, "is discarded")
		case *ast.GoStmt:
			if p.Call == call {
				drop(call, key, "is dropped by the go statement")
			}
		case *ast.DeferStmt:
			if p.Call == call {
				drop(call, key, "is dropped by the defer statement")
			}
		case *ast.ReturnStmt:
			if !insideFuncLit(stack) {
				returns = true
			}
		case *ast.AssignStmt:
			// Locate the targets this call feeds.
			if len(p.Rhs) == 1 && ast.Unparen(p.Rhs[0]) == call && len(p.Lhs) == nres {
				lhs := p.Lhs[errIdx]
				if isBlank(lhs) {
					drop(call, key, "is assigned to _")
				} else if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if obj := info.Defs[id]; obj != nil {
						errObjs[obj] = true
					} else if obj := info.Uses[id]; obj != nil {
						errObjs[obj] = true
					}
				}
			} else {
				for i, r := range p.Rhs {
					if ast.Unparen(r) != call || i >= len(p.Lhs) || nres != 1 {
						continue
					}
					if isBlank(p.Lhs[i]) {
						drop(call, key, "is assigned to _")
					} else if id, ok := ast.Unparen(p.Lhs[i]).(*ast.Ident); ok {
						if obj := info.Defs[id]; obj != nil {
							errObjs[obj] = true
						} else if obj := info.Uses[id]; obj != nil {
							errObjs[obj] = true
						}
					}
				}
			}
		}
		return true
	})

	if record {
		fi.Drops = drops
	}
	return returns
}
