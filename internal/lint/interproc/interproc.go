// Package interproc builds the module-wide call graph and per-function
// summaries that back reprolint's interprocedural analyzers
// (DESIGN.md §15). The existing single-package analyzers see one
// statement at a time; the contracts they guard — determinism,
// durability, admission-path lock discipline — are routinely broken one
// call away from the statement that matters: a time.Now two helpers
// deep, an arena pointer laundered through a local struct, a journal
// append whose error a refactored helper drops.
//
// Build runs four phases over every loaded package:
//
//  1. collect: one FuncInfo per function declaration, recording call
//     sites (with go-statement asynchrony), channel operations, and
//     which //reprolint:allow directives cut a site out of summary
//     propagation (an allowed site must not re-taint every caller).
//  2. propagate: bottom-up fixpoint of the boolean summary lattice —
//     Clock (transitively reads the wall clock) and Block (may block:
//     sleeps, network, fsync, channel waits). Operational packages
//     (serve, store, runner, metrics, cluster) are a sanctioned clock
//     boundary and stay Clock-clean.
//  3. dataflow: per-function intra-procedural scans iterated to a
//     fixpoint for the value-flow summaries — Arena (returns memory
//     aliasing the simulation arena) and Durable (returns an error
//     originating at a durable write).
//  4. reportables: with summaries stable, a final scan records the
//     per-function findings the analyzers surface — arena escapes,
//     dropped durable errors, and blocking operations inside an
//     admission-mutex (jmu) critical section.
//
// Soundness caveats are deliberate and documented in DESIGN.md §15:
// dynamic calls through function values and interface methods are
// unresolved (the callee key names the interface, not implementations),
// function literals are attributed to their enclosing declaration,
// taint passed through parameters is not tracked (only through return
// values), and branch merges in the lock scanner favor no-false-
// positives over completeness.
package interproc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// modulePath mirrors lint.modulePath; interproc cannot import lint
// (lint imports interproc).
const modulePath = "repro"

// OperationalClockPkgs are the packages where wall-clock reads are the
// point (timeouts, heartbeats, latency observation). They are both the
// wallclock/wallclock2 scope exclusion and a propagation boundary:
// calls into them never taint a simulation caller with Clock.
var OperationalClockPkgs = []string{
	modulePath + "/internal/serve",
	modulePath + "/internal/store",
	modulePath + "/internal/runner",
	modulePath + "/internal/metrics",
	modulePath + "/internal/cluster",
}

// arenaAdoptingPkgs run simulations through reusable arenas and must
// treat hypervisor-owned state as borrowed (DESIGN.md §11). Only these
// packages (plus the arenaescape fixture tree) get arena dataflow
// scans; packages below the arena seam own that memory legitimately.
var arenaAdoptingPkgs = []string{
	modulePath + "/internal/engine",
	modulePath + "/internal/experiments",
	modulePath + "/internal/sweep",
	modulePath + "/internal/faults",
	modulePath + "/internal/serve",
	modulePath + "/internal/campaign",
}

// family indexes the summary a //reprolint:allow directive cuts:
// allowing a finding at a call site must also stop that site from
// tainting every transitive caller, or the suppression would just move
// the diagnostic up the call chain.
type family int

const (
	famClock family = iota
	famBlock
	famArena
	famDurable
	numFamilies
)

// familyOf maps analyzer names to the summary family their allows cut.
var familyOf = map[string]family{
	"wallclock":   famClock,
	"wallclock2":  famClock,
	"lockheld":    famBlock,
	"arenaretain": famArena,
	"arenaescape": famArena,
	"durableerr":  famDurable,
}

// clockTimeFuncs / clockRandOK mirror the wallclock analyzer's base
// fact tables: time package entry points that read or wait on the host
// clock, and the math/rand constructors that are fine because a locally
// seeded source is deterministic.
var clockTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

var clockRandOK = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true,
	"NewZipf": true,
}

// BaseClock reports whether key names a leaf function that reads host
// time or implicitly host-seeded randomness. These terminate clock
// chains; calls to them directly are old wallclock's business, calls
// that merely reach them are wallclock2's.
func BaseClock(key string) bool {
	if name, ok := strings.CutPrefix(key, "time."); ok {
		return clockTimeFuncs[name]
	}
	if name, ok := strings.CutPrefix(key, "math/rand/v2."); ok {
		return !clockRandOK[name]
	}
	if name, ok := strings.CutPrefix(key, "math/rand."); ok {
		return !clockRandOK[name]
	}
	return false
}

// baseBlock names leaf operations that can block the calling goroutine:
// sleeps, network round trips, fsync, and synchronization waits.
// sync.Mutex.Lock is deliberately absent — the serve lock order
// jmu → cmu → job.mu is sanctioned design, and flagging nested
// acquisition would bury the real findings. The module-local entries
// keep fixture runs (where only the fixture tree is loaded, so no
// summaries exist for real packages) honest.
var baseBlock = map[string]bool{
	"time.Sleep":                              true,
	"(os.File).Sync":                          true,
	"(net/http.Client).Do":                    true,
	"(net/http.Client).Get":                   true,
	"(net/http.Client).Post":                  true,
	"(net/http.Client).PostForm":              true,
	"(net/http.Client).Head":                  true,
	"net/http.Get":                            true,
	"net/http.Post":                           true,
	"net/http.PostForm":                       true,
	"net/http.Head":                           true,
	"net.Dial":                                true,
	"net.DialTimeout":                         true,
	"(net.Dialer).Dial":                       true,
	"(net.Dialer).DialContext":                true,
	"(sync.WaitGroup).Wait":                   true,
	"(sync.Cond).Wait":                        true,
	modulePath + "/internal/cluster.Dispatch": true, // free funcs, if any
	"(" + modulePath + "/internal/cluster.Cluster).Dispatch":    true,
	"(" + modulePath + "/internal/cluster.Cluster).FetchResult": true,
	"(" + modulePath + "/internal/cluster.Cluster).Handoff":     true,
	"(" + modulePath + "/internal/serve.journal).append":        true,
	"(" + modulePath + "/internal/serve.journal).compact":       true,
}

// BaseBlock reports whether key names a leaf blocking operation.
func BaseBlock(key string) bool { return baseBlock[key] }

// baseArena names the two arena seams: core.Report's Result aliases the
// live trace log, and (*hv.System).Log hands out the arena-owned record
// slice directly.
var baseArena = map[string]bool{
	modulePath + "/internal/core.Report":          true,
	"(" + modulePath + "/internal/hv.System).Log": true,
}

// baseDurable names the durable-write leaves whose error results carry
// the no-acked-job-lost invariant (DESIGN.md §9): the write-ahead
// journal, the content-addressed store (EncodeFrame itself is
// infallible — the framed bytes persist via Store.Put), and the
// cluster RPCs that move acked work between nodes. The fixture journal
// stand-in keeps the durableerr fixture self-contained (the real
// serve.journal is unexported).
var baseDurable = map[string]bool{
	"(" + modulePath + "/internal/serve.journal).append":                        true,
	"(" + modulePath + "/internal/serve.journal).compact":                       true,
	"(" + modulePath + "/internal/store.Store).Put":                             true,
	"(" + modulePath + "/internal/cluster.Cluster).Handoff":                     true,
	"(" + modulePath + "/internal/cluster.Cluster).Dispatch":                    true,
	"(" + modulePath + "/internal/lint/testdata/src/durableerr.journal).append": true,
}

// BaseDurable reports whether key names a durable-write leaf.
func BaseDurable(key string) bool { return baseDurable[key] }

// CallSite is one static call recorded during collection.
type CallSite struct {
	Pos    token.Pos
	Callee string // stable key, "" when unresolvable (func values, type conversions)
	Async  bool   // evaluated on a goroutine spawned by a go statement
	cut    [numFamilies]bool
}

// chanOp is a channel operation that can block: a send or receive
// outside select, or a select with no default clause.
type chanOp struct {
	pos   token.Pos
	kind  string // "channel send", "channel receive", "select without default"
	async bool
	cut   bool // famBlock allow on the line
}

// Summary is the per-function boolean lattice, propagated bottom-up to
// a fixpoint.
type Summary struct {
	Clock   bool // transitively reads wall clock / global rand
	Block   bool // may block the calling goroutine
	Arena   bool // returns memory aliasing the simulation arena
	Durable bool // returns an error originating at a durable write

	clockVia string // next hop toward the base fact, for witness chains
	blockVia string
}

// LockedOp is a blocking operation found inside a jmu critical section.
type LockedOp struct {
	Pos  token.Pos
	What string
}

// Drop is a durable-write error that the function discards.
type Drop struct {
	Pos  token.Pos
	What string
}

// Escape is an arena-aliasing value stored somewhere that outlives the
// enclosing call: a struct field, package-level variable, map entry, or
// channel.
type Escape struct {
	Pos  token.Pos
	What string
}

// FuncInfo carries everything interproc knows about one function
// declaration.
type FuncInfo struct {
	Key     string
	Pkg     string
	Calls   []CallSite
	Summary Summary

	LockedOps []LockedOp
	Drops     []Drop
	Escapes   []Escape

	chans []chanOp
	decl  *ast.FuncDecl
	info  *types.Info
	fset  *token.FileSet
}

// Module is the analysis result over one load.Load call. The driver
// builds it once and hands it to every analyzer pass via
// analysis.Pass.Module.
type Module struct {
	funcs map[string]*FuncInfo
	byPkg map[string][]*FuncInfo
	all   []*FuncInfo                // deterministic order: sorted package, then source order
	cuts  map[string]map[family]bool // "file:line" → families cut by allows
}

// Key returns the stable cross-package identity of fn:
// "pkg/path.Name" for package functions, "(pkg/path.Recv).Name" for
// methods (receiver pointer-ness erased). The source importer
// type-checks dependencies once per loaded directory, so *types.Func
// pointers do not survive across packages — string keys do.
func Key(fn *types.Func) string {
	fn = fn.Origin()
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		var recv string
		switch t := rt.(type) {
		case *types.Named:
			obj := t.Obj()
			if obj.Pkg() != nil {
				recv = obj.Pkg().Path() + "." + obj.Name()
			} else {
				recv = obj.Name() // universe types: error
			}
		default:
			recv = rt.String()
		}
		return "(" + recv + ")." + fn.Name()
	}
	if fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// Short compresses a key for diagnostics: package paths shrink to their
// last segment ("repro/internal/serve.journalAccept" →
// "serve.journalAccept", "(os.File).Sync" stays).
func Short(key string) string {
	if key == "" {
		return "?"
	}
	if strings.HasPrefix(key, "channel ") || strings.HasPrefix(key, "select ") {
		return key
	}
	lastSeg := func(p string) string {
		if i := strings.LastIndex(p, "/"); i >= 0 {
			return p[i+1:]
		}
		return p
	}
	if rest, ok := strings.CutPrefix(key, "("); ok {
		if i := strings.Index(rest, ")."); i > 0 {
			recv, name := rest[:i], rest[i+2:]
			if j := strings.LastIndex(recv, "."); j > 0 {
				recv = lastSeg(recv[:j]) + "." + recv[j+1:]
			}
			return "(" + recv + ")." + name
		}
	}
	if j := strings.LastIndex(key, "."); j > 0 {
		return lastSeg(key[:j]) + "." + key[j+1:]
	}
	return key
}

// Build constructs the module summaries for pkgs. It never fails: a
// function it cannot model simply gets an empty (optimistic) summary,
// which is the documented soundness posture — reprolint under-reports
// rather than cries wolf.
func Build(pkgs []*load.Package) *Module {
	m := &Module{
		funcs: map[string]*FuncInfo{},
		byPkg: map[string][]*FuncInfo{},
		cuts:  map[string]map[family]bool{},
	}
	famKnown := map[string]bool{}
	for name := range familyOf {
		famKnown[name] = true
	}
	for _, pkg := range pkgs {
		allows, _ := analysis.ParseAllows(pkg.Fset, pkg.Syntax, famKnown)
		for _, al := range allows {
			fam := familyOf[al.Analyzer]
			// An allow covers diagnostics on its own line and the line
			// below (analysis.Suppress); cuts mirror that exactly.
			for _, line := range []int{al.Line, al.Line + 1} {
				k := fmt.Sprintf("%s:%d", al.File, line)
				if m.cuts[k] == nil {
					m.cuts[k] = map[family]bool{}
				}
				m.cuts[k][fam] = true
			}
		}
		for _, f := range pkg.Syntax {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{
					Key:  Key(obj),
					Pkg:  pkg.PkgPath,
					decl: fd,
					info: pkg.TypesInfo,
					fset: pkg.Fset,
				}
				m.collect(fi)
				m.funcs[fi.Key] = fi
				m.byPkg[pkg.PkgPath] = append(m.byPkg[pkg.PkgPath], fi)
			}
		}
	}
	paths := make([]string, 0, len(m.byPkg))
	for p := range m.byPkg {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		m.all = append(m.all, m.byPkg[p]...)
	}

	m.propagate()
	m.dataflow()
	return m
}

// Funcs returns the functions declared in the package at path, in
// source order.
func (m *Module) Funcs(path string) []*FuncInfo { return m.byPkg[path] }

// Lookup returns the FuncInfo for key, or nil.
func (m *Module) Lookup(key string) *FuncInfo { return m.funcs[key] }

// ClockTainted reports whether calling key reaches a wall-clock read:
// either key is itself a base fact or its propagated summary says so.
func (m *Module) ClockTainted(key string) bool {
	if BaseClock(key) {
		return true
	}
	if fi := m.funcs[key]; fi != nil {
		return fi.Summary.Clock
	}
	return false
}

// BlockTainted reports whether calling key may block.
func (m *Module) BlockTainted(key string) bool {
	if BaseBlock(key) {
		return true
	}
	if fi := m.funcs[key]; fi != nil {
		return fi.Summary.Block
	}
	return false
}

// durableFn reports whether key's error result originates at a durable
// write.
func (m *Module) durableFn(key string) bool {
	if BaseDurable(key) {
		return true
	}
	if fi := m.funcs[key]; fi != nil {
		return fi.Summary.Durable
	}
	return false
}

// arenaFn reports whether key returns arena-aliasing memory.
func (m *Module) arenaFn(key string) bool {
	if baseArena[key] {
		return true
	}
	if fi := m.funcs[key]; fi != nil {
		return fi.Summary.Arena
	}
	return false
}

// ClockChain renders the witness path from key to the clock read it
// reaches, e.g. "campaign.stamp → clockutil.Stamp → time.Now".
func (m *Module) ClockChain(key string) string { return m.chain(key, famClock) }

// BlockChain renders the witness path from key to the blocking leaf.
func (m *Module) BlockChain(key string) string { return m.chain(key, famBlock) }

func (m *Module) chain(key string, fam family) string {
	parts := []string{Short(key)}
	cur := key
	for range [8]int{} {
		fi := m.funcs[cur]
		if fi == nil {
			break // base fact: the chain ends at cur itself
		}
		var via string
		if fam == famClock {
			via = fi.Summary.clockVia
		} else {
			via = fi.Summary.blockVia
		}
		if via == "" {
			break
		}
		parts = append(parts, Short(via))
		cur = via
	}
	return strings.Join(parts, " → ")
}

// cutAt reports whether an allow of fam's family covers pos.
func (m *Module) cutAt(fset *token.FileSet, pos token.Pos, fam family) bool {
	p := fset.Position(pos)
	fams := m.cuts[fmt.Sprintf("%s:%d", p.Filename, p.Line)]
	return fams != nil && fams[fam]
}

// inspectStack walks root like ast.Inspect, also handing fn the stack
// of ancestor nodes (outermost first, excluding n).
func inspectStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// calleeOf resolves the static callee of call to its key, or "" for
// dynamic calls (function values), conversions, and builtins.
func calleeOf(info *types.Info, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return Key(fn)
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return Key(fn)
		}
	}
	return ""
}

// collect records fi's call sites and channel operations. Function
// literal bodies are attributed to the enclosing declaration; work
// spawned by go statements is marked Async (it reads the clock on the
// caller's behalf but does not block the caller).
func (m *Module) collect(fi *FuncInfo) {
	// First pass: mark the nodes that execute asynchronously — the call
	// of a `go f(...)` statement (arguments still evaluate in the
	// caller), and everything inside a `go func(){...}` literal body.
	async := map[ast.Node]bool{}
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(x ast.Node) bool {
				if x != nil {
					async[x] = true
				}
				return true
			})
		} else {
			async[gs.Call] = true
		}
		return true
	})

	cutsFor := func(pos token.Pos) [numFamilies]bool {
		var c [numFamilies]bool
		for f := famClock; f < numFamilies; f++ {
			c[f] = m.cutAt(fi.fset, pos, f)
		}
		return c
	}

	inspectStack(fi.decl.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if callee := calleeOf(fi.info, n); callee != "" {
				fi.Calls = append(fi.Calls, CallSite{
					Pos:    n.Pos(),
					Callee: callee,
					Async:  async[n],
					cut:    cutsFor(n.Pos()),
				})
			}
		case *ast.SendStmt:
			if !isSelectComm(stack, n) {
				fi.chans = append(fi.chans, chanOp{
					pos: n.Pos(), kind: "channel send",
					async: async[n], cut: m.cutAt(fi.fset, n.Pos(), famBlock),
				})
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !isSelectComm(stack, n) {
				fi.chans = append(fi.chans, chanOp{
					pos: n.Pos(), kind: "channel receive",
					async: async[n], cut: m.cutAt(fi.fset, n.Pos(), famBlock),
				})
			}
		case *ast.SelectStmt:
			if !hasDefaultClause(n) {
				fi.chans = append(fi.chans, chanOp{
					pos: n.Pos(), kind: "select without default",
					async: async[n], cut: m.cutAt(fi.fset, n.Pos(), famBlock),
				})
			}
		}
		return true
	})
}

// isSelectComm reports whether n sits inside the communication clause
// of an enclosing select statement (the select's readiness choice, not
// a blocking operation of its own).
func isSelectComm(stack []ast.Node, n ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		cc, ok := stack[i].(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm != nil && n.Pos() >= cc.Comm.Pos() && n.End() <= cc.Comm.End() {
			return true
		}
		return false
	}
	return false
}

func hasDefaultClause(sel *ast.SelectStmt) bool {
	for _, s := range sel.Body.List {
		if cc, ok := s.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// clockForcedClean reports whether pkg sits on the sanctioned side of
// the wall-clock boundary: its functions may read time freely and
// never propagate Clock to callers.
func clockForcedClean(pkg string) bool {
	for _, p := range OperationalClockPkgs {
		if pkg == p || strings.HasPrefix(pkg, p+"/") {
			return true
		}
	}
	return false
}

// arenaScanPkg reports whether pkg gets the arena dataflow scan.
func arenaScanPkg(pkg string) bool {
	for _, p := range arenaAdoptingPkgs {
		if pkg == p || strings.HasPrefix(pkg, p+"/") {
			return true
		}
	}
	return strings.Contains(pkg, "testdata/src/arenaescape")
}

// propagate runs the Clock/Block fixpoint over call edges. Channel
// operations and base-fact calls seed Block; each round then lifts
// callee summaries into callers until nothing changes. Iteration is in
// deterministic (m.all) order so witness chains are stable.
func (m *Module) propagate() {
	for _, fi := range m.all {
		for _, ch := range fi.chans {
			if ch.async || ch.cut {
				continue
			}
			fi.Summary.Block = true
			fi.Summary.blockVia = ch.kind
			break
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range m.all {
			if !fi.Summary.Clock && !clockForcedClean(fi.Pkg) {
				for _, c := range fi.Calls {
					if c.cut[famClock] || !m.ClockTainted(c.Callee) {
						continue
					}
					fi.Summary.Clock = true
					fi.Summary.clockVia = c.Callee
					changed = true
					break
				}
			}
			if !fi.Summary.Block {
				for _, c := range fi.Calls {
					if c.Async || c.cut[famBlock] || !m.BlockTainted(c.Callee) {
						continue
					}
					fi.Summary.Block = true
					fi.Summary.blockVia = c.Callee
					changed = true
					break
				}
			}
		}
	}
}

// dataflow iterates the intra-procedural Arena/Durable scans to a
// fixpoint (a helper's return summary can depend on another helper's),
// then runs the final recording pass that fills Escapes, Drops and
// LockedOps.
func (m *Module) dataflow() {
	for changed := true; changed; {
		changed = false
		for _, fi := range m.all {
			if arenaScanPkg(fi.Pkg) && !fi.Summary.Arena && m.arenaScan(fi, false) {
				fi.Summary.Arena = true
				changed = true
			}
			if !fi.Summary.Durable && m.durableScan(fi, false) {
				fi.Summary.Durable = true
				changed = true
			}
		}
	}
	for _, fi := range m.all {
		if arenaScanPkg(fi.Pkg) {
			m.arenaScan(fi, true)
		}
		m.durableScan(fi, true)
		m.lockScan(fi)
	}
}
