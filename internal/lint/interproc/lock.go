package interproc

import (
	"go/ast"
	"go/token"
	"go/types"
)

// lockScan finds operations that can block — RPC/network calls, fsync,
// sleeps, channel waits — inside a critical section of the serve
// admission mutex. The admission mutex is identified structurally: a
// sync.Mutex reached through a selector or identifier named "jmu"
// (Server.jmu in internal/serve; fixtures mirror the shape). Other
// mutexes are ignored: the sanctioned lock order jmu → cmu → job.mu
// means nested acquisition is design, not defect.
//
// The walker tracks the held state through straight-line code. Branches
// are scanned with the entry state; a branch that terminates (returns,
// panics, breaks) does not leak its lock transitions into the
// fall-through path, and when the surviving branches disagree the state
// degrades to "not held" — under-reporting, never false positives.
// `defer jmu.Unlock()` holds to the end of the function. Function
// literal bodies and go statements are skipped: the spawned goroutine
// does not hold the caller's lock.
func (m *Module) lockScan(fi *FuncInfo) {
	info := fi.info
	var ops []LockedOp

	// Allows are NOT consulted here: the analyzer reports every locked
	// operation and the driver's Suppress honors (and marks used) the
	// //reprolint:allow lockheld directives. The famBlock cut applies
	// only to summary propagation during collect.
	flag := func(pos token.Pos, what string) {
		ops = append(ops, LockedOp{Pos: pos, What: what})
	}

	// check scans one statement or expression (already known to execute
	// with jmu held) for blocking operations.
	var check func(n ast.Node)
	check = func(n ast.Node) {
		if n == nil {
			return
		}
		inspectStack(n, func(x ast.Node, stack []ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit, *ast.GoStmt:
				return false
			case *ast.CallExpr:
				if _, ok := jmuOp(info, x); ok {
					return true
				}
				key := calleeOf(info, x)
				if key != "" && m.BlockTainted(key) {
					flag(x.Pos(), "call to "+Short(key)+" may block ("+m.BlockChain(key)+") while holding the admission mutex jmu")
				}
			case *ast.SendStmt:
				if !isSelectComm(stack, x) {
					flag(x.Pos(), "channel send while holding the admission mutex jmu")
				}
			case *ast.UnaryExpr:
				if x.Op == token.ARROW && !isSelectComm(stack, x) {
					flag(x.Pos(), "channel receive while holding the admission mutex jmu")
				}
			case *ast.SelectStmt:
				if !hasDefaultClause(x) {
					flag(x.Pos(), "select without default blocks while holding the admission mutex jmu")
				}
				// Clause bodies run after the select commits; they still
				// hold the lock and are reached by this same walk.
			}
			return true
		})
	}

	// scanStmt threads the held state through s and returns the state
	// after it.
	var scanStmt func(s ast.Stmt, held bool) bool
	scanList := func(stmts []ast.Stmt, held bool) bool {
		for _, s := range stmts {
			held = scanStmt(s, held)
		}
		return held
	}
	// merge reconciles the held state after divergent paths: agreement
	// propagates, disagreement degrades to not-held (no false positives
	// downstream of a conditional unlock).
	merge := func(states ...bool) bool {
		all := true
		for _, s := range states {
			all = all && s
		}
		return all
	}
	scanStmt = func(s ast.Stmt, held bool) bool {
		switch s := s.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if op, ok := jmuOp(info, call); ok {
					return op == "Lock"
				}
			}
			if held {
				check(s)
			}
			return held
		case *ast.DeferStmt:
			// defer jmu.Unlock(): held for the remainder of the body.
			// Other deferred calls run at exit, possibly after the
			// unlock — not modeled, not flagged.
			return held
		case *ast.GoStmt:
			return held
		case *ast.BlockStmt:
			return scanList(s.List, held)
		case *ast.IfStmt:
			if held {
				check(s.Init)
				check(s.Cond)
			}
			afterBody := scanList(s.Body.List, held)
			if terminates(s.Body) {
				afterBody = held
			}
			afterElse := held
			if s.Else != nil {
				switch e := s.Else.(type) {
				case *ast.BlockStmt:
					afterElse = scanList(e.List, held)
					if terminates(e) {
						afterElse = held
					}
				case *ast.IfStmt:
					afterElse = scanStmt(e, held)
				}
			}
			return merge(afterBody, afterElse)
		case *ast.ForStmt:
			if held {
				check(s.Init)
				check(s.Cond)
				check(s.Post)
			}
			after := scanList(s.Body.List, held)
			return merge(held, after)
		case *ast.RangeStmt:
			if held {
				check(s.X)
			}
			after := scanList(s.Body.List, held)
			return merge(held, after)
		case *ast.SwitchStmt:
			if held {
				check(s.Init)
				check(s.Tag)
			}
			states := []bool{held}
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					after := scanList(cc.Body, held)
					if !terminatesList(cc.Body) {
						states = append(states, after)
					}
				}
			}
			return merge(states...)
		case *ast.TypeSwitchStmt:
			if held {
				check(s.Init)
				check(s.Assign)
			}
			states := []bool{held}
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					after := scanList(cc.Body, held)
					if !terminatesList(cc.Body) {
						states = append(states, after)
					}
				}
			}
			return merge(states...)
		case *ast.SelectStmt:
			if held {
				check(s)
				return held
			}
			// Not held: clause bodies may lock; scan them for nested
			// regions but keep the entry state afterwards (which clause
			// ran is unknown).
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					scanList(cc.Body, held)
				}
			}
			return held
		case *ast.LabeledStmt:
			return scanStmt(s.Stmt, held)
		default:
			if held {
				check(s)
			}
			return held
		}
	}

	scanList(fi.decl.Body.List, false)
	fi.LockedOps = ops
}

// terminates reports whether the block always transfers control out
// (return, branch, panic) as its final statement.
func terminates(b *ast.BlockStmt) bool { return terminatesList(b.List) }

func terminatesList(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// jmuOp recognizes jmu.Lock / jmu.Unlock: a Lock or Unlock selector
// call whose receiver chain ends in an identifier or field named "jmu"
// of type sync.Mutex.
func jmuOp(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if sel.Sel.Name != "Lock" && sel.Sel.Name != "Unlock" {
		return "", false
	}
	var name string
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		name = x.Sel.Name
	case *ast.Ident:
		name = x.Name
	default:
		return "", false
	}
	if name != "jmu" {
		return "", false
	}
	t := info.Types[sel.X].Type
	if t == nil {
		return "", false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	if named.Obj().Pkg().Path() != "sync" || named.Obj().Name() != "Mutex" {
		return "", false
	}
	return sel.Sel.Name, true
}
