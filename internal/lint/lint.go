// Package lint is reprolint: the static enforcement of this
// repository's determinism contract (DESIGN.md §10). Every analyzer
// here guards an invariant that the content-addressed result cache,
// the crash-recovery byte-identity checks and the eq. (14) oracle all
// assume — a (scenario, seed, code revision) triple must always
// produce the same bytes.
//
// Analyzers report through `go vet`-style file:line:col diagnostics.
// A finding that is a genuine false positive is suppressed with a
// comment on the offending line or the line above:
//
//	//reprolint:allow <analyzer> <reason>
//
// The reason is mandatory, unknown analyzer names are themselves
// diagnostics, and an allow comment that suppresses nothing is
// reported as unused, so stale suppressions cannot accumulate.
package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// modulePath is this repository's module path; the analyzer scope
// lists below are rooted at it.
const modulePath = "repro"

// All returns the reprolint analyzer suite in its fixed run order: the
// single-package statement checks first, then the interprocedural
// analyzers built on the module call graph (DESIGN.md §15).
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Detmap, Wallclock, CtxErrOrder, MetricName, Arenaretain, Cellmap,
		Wallclock2, Lockheld, Durableerr, Arenaescape,
	}
}

// pkgMatches reports whether path is one of the listed packages or a
// child of one (prefix match on path segments).
func pkgMatches(path string, pkgs []string) bool {
	for _, p := range pkgs {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// isFixtureFor reports whether path is the analysistest fixture package
// for the named analyzer, so the fixtures under
// internal/lint/testdata/src/<name> are always in that analyzer's
// scope regardless of the production scope lists.
func isFixtureFor(path, name string) bool {
	return strings.HasSuffix(path, "testdata/src/"+name)
}

// isAnyFixture reports whether path is any analysistest fixture package
// (or a helper subpackage of one). Analyzers with catch-all scopes
// exclude these: a fixture belongs only to the analyzers that opt into
// it via isFixtureFor, otherwise every fixture would have to stay clean
// under every catch-all analyzer simultaneously.
func isAnyFixture(path string) bool {
	return strings.Contains(path, "/testdata/src/")
}

// inspectWithStack walks root like ast.Inspect but also hands fn the
// stack of ancestor nodes (outermost first, not including n).
func inspectWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// pkgNameOf resolves expr to the imported package it names, if it is a
// bare package identifier (e.g. the `time` in `time.Now`), and returns
// that package's import path.
func pkgNameOf(pass *analysis.Pass, expr ast.Expr) (string, bool) {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return "", false
	}
	if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path(), true
	}
	return "", false
}
