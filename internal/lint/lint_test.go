package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestDetmap(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "detmap"), lint.Detmap)
}

func TestWallclock(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "wallclock"), lint.Wallclock)
}

func TestCtxErrOrder(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "ctxerrorder"), lint.CtxErrOrder)
}

func TestMetricName(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "metricname"), lint.MetricName)
}

func TestArenaretain(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "arenaretain"), lint.Arenaretain)
}

func TestCellmap(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "cellmap"), lint.Cellmap)
}

// moduleRoot walks up from the test's working directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			t.Fatalf("no go.mod above %s", dir)
		}
		d = parent
	}
}

// TestRepositoryIsClean is the self-gate: the full analyzer suite over
// the whole repository tree must produce zero findings — exactly what
// `go run ./cmd/reprolint ./...` asserts in scripts/check.sh. A
// finding here means either new code broke the determinism contract or
// an //reprolint:allow directive went stale.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repository; skipped in -short")
	}
	var out strings.Builder
	n, err := lint.Run(&out, lint.All(), []string{moduleRoot(t) + "/..."})
	if err != nil {
		t.Fatalf("reprolint failed to run: %v", err)
	}
	if n != 0 {
		t.Errorf("reprolint on the repository tree: %d finding(s), want 0:\n%s", n, out.String())
	}
}

// TestFixturesFailTheDriver mirrors the acceptance criterion: the
// driver (with allow-directive handling active) must exit non-zero on
// every analyzer fixture, proving the gate actually bites.
func TestFixturesFailTheDriver(t *testing.T) {
	for _, name := range []string{"detmap", "wallclock", "ctxerrorder", "metricname", "arenaretain", "cellmap"} {
		t.Run(name, func(t *testing.T) {
			var out strings.Builder
			n, err := lint.Run(&out, lint.All(), []string{filepath.Join("testdata", "src", name)})
			if err != nil {
				t.Fatalf("driver error: %v", err)
			}
			if n == 0 {
				t.Errorf("driver found nothing in the %s fixture; the gate would not bite", name)
			}
			if !strings.Contains(out.String(), "["+name+"]") {
				t.Errorf("driver output has no [%s] finding:\n%s", name, out.String())
			}
		})
	}
}

// TestAllowDirectiveHandling drives the allowlint fixture through the
// driver: the valid directive suppresses its wall-clock finding, and
// the malformed, unknown-analyzer and unused directives each surface
// as reprolint meta-findings.
func TestAllowDirectiveHandling(t *testing.T) {
	var out strings.Builder
	n, err := lint.Run(&out, lint.All(), []string{filepath.Join("testdata", "src", "allowlint")})
	if err != nil {
		t.Fatalf("driver error: %v", err)
	}
	got := out.String()
	if strings.Contains(got, "[wallclock]") {
		t.Errorf("valid allow directive did not suppress the wallclock finding:\n%s", got)
	}
	for _, want := range []string{
		`unknown analyzer "nosuchanalyzer"`,
		"reprolint:allow wallclock needs a reason",
		"reprolint:allow detmap suppresses nothing",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("driver output missing %q:\n%s", want, got)
		}
	}
	if n != 3 {
		t.Errorf("got %d findings, want exactly 3:\n%s", n, got)
	}
}

// TestAnalyzerMetadata pins the suite composition: six analyzers with
// stable names, each documented — the names are part of the allow
// directive syntax, so renaming one silently breaks suppressions.
func TestAnalyzerMetadata(t *testing.T) {
	want := []string{"detmap", "wallclock", "ctxerrorder", "metricname", "arenaretain", "cellmap"}
	all := lint.All()
	if len(all) != len(want) {
		t.Fatalf("lint.All() has %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("analyzer %d is %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %s has no Run", a.Name)
		}
	}
}
