package lint_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestDetmap(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "detmap"), lint.Detmap)
}

func TestWallclock(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "wallclock"), lint.Wallclock)
}

func TestCtxErrOrder(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "ctxerrorder"), lint.CtxErrOrder)
}

func TestMetricName(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "metricname"), lint.MetricName)
}

func TestArenaretain(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "arenaretain"), lint.Arenaretain)
}

func TestCellmap(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "cellmap"), lint.Cellmap)
}

func TestWallclock2(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "wallclock2"), lint.Wallclock2)
}

func TestLockheld(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "lockheld"), lint.Lockheld)
}

func TestDurableerr(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "durableerr"), lint.Durableerr)
}

func TestArenaescape(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "arenaescape"), lint.Arenaescape)
}

// moduleRoot walks up from the test's working directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			t.Fatalf("no go.mod above %s", dir)
		}
		d = parent
	}
}

// TestRepositoryIsClean is the self-gate: the full analyzer suite over
// the whole repository tree must produce zero findings — exactly what
// `go run ./cmd/reprolint ./...` asserts in scripts/check.sh. A
// finding here means either new code broke the determinism contract or
// an //reprolint:allow directive went stale.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repository; skipped in -short")
	}
	var out strings.Builder
	n, err := lint.Run(&out, lint.All(), []string{moduleRoot(t) + "/..."})
	if err != nil {
		t.Fatalf("reprolint failed to run: %v", err)
	}
	if n != 0 {
		t.Errorf("reprolint on the repository tree: %d finding(s), want 0:\n%s", n, out.String())
	}
}

// TestFixturesFailTheDriver mirrors the acceptance criterion: the
// driver (with allow-directive handling active) must exit non-zero on
// every analyzer fixture, proving the gate actually bites.
func TestFixturesFailTheDriver(t *testing.T) {
	names := []string{
		"detmap", "wallclock", "ctxerrorder", "metricname", "arenaretain",
		"cellmap", "wallclock2", "lockheld", "durableerr", "arenaescape",
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			var out strings.Builder
			// The /... suffix pulls in fixture helper subpackages
			// (wallclock2/clockutil) so the call graph sees the full
			// chain; flat fixtures load identically either way.
			n, err := lint.Run(&out, lint.All(), []string{filepath.Join("testdata", "src", name) + "/..."})
			if err != nil {
				t.Fatalf("driver error: %v", err)
			}
			if n == 0 {
				t.Errorf("driver found nothing in the %s fixture; the gate would not bite", name)
			}
			if !strings.Contains(out.String(), "["+name+"]") {
				t.Errorf("driver output has no [%s] finding:\n%s", name, out.String())
			}
			// Every allow inside a fixture must suppress something real
			// under the full suite — a stale directive here means an
			// analyzer quietly stopped firing where the fixture says it
			// must.
			if strings.Contains(out.String(), "suppresses nothing") {
				t.Errorf("stale //reprolint:allow in the %s fixture:\n%s", name, out.String())
			}
		})
	}
}

// TestAllowDirectiveHandling drives the allowlint fixture through the
// driver: the valid directive suppresses its wall-clock finding, and
// the malformed, unknown-analyzer and unused directives each surface
// as reprolint meta-findings.
func TestAllowDirectiveHandling(t *testing.T) {
	var out strings.Builder
	n, err := lint.Run(&out, lint.All(), []string{filepath.Join("testdata", "src", "allowlint")})
	if err != nil {
		t.Fatalf("driver error: %v", err)
	}
	got := out.String()
	if strings.Contains(got, "[wallclock]") {
		t.Errorf("valid allow directive did not suppress the wallclock finding:\n%s", got)
	}
	for _, want := range []string{
		`unknown analyzer "nosuchanalyzer"`,
		"reprolint:allow wallclock needs a reason",
		"reprolint:allow detmap suppresses nothing",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("driver output missing %q:\n%s", want, got)
		}
	}
	if n != 3 {
		t.Errorf("got %d findings, want exactly 3:\n%s", n, got)
	}
}

// TestWallclockBlindSpot is the acceptance case for wallclock2: the
// fixture's clock reads sit two helper calls away in a subpackage, and
// wallclock — which scans this fixture, by explicit opt-in — cannot
// connect them to the entry functions. The direct-call analyzer must
// stay silent on the exact tree where the transitive analyzer fires;
// if wallclock ever starts reporting here, the fixture no longer
// demonstrates the blind spot and must be rethought.
func TestWallclockBlindSpot(t *testing.T) {
	var out strings.Builder
	_, err := lint.Run(&out, lint.All(), []string{filepath.Join("testdata", "src", "wallclock2") + "/..."})
	if err != nil {
		t.Fatalf("driver error: %v", err)
	}
	got := out.String()
	if strings.Contains(got, "[wallclock]") {
		t.Errorf("wallclock reported in the wallclock2 fixture; the blind-spot demonstration is broken:\n%s", got)
	}
	if !strings.Contains(got, "[wallclock2]") {
		t.Errorf("wallclock2 found nothing in its own fixture:\n%s", got)
	}
}

// TestAllowMultiEdgeCases drives the allowmulti fixture, where
// wallclock and wallclock2 fire on the same lines: a directive per
// analyzer silences a paired line, a lone wallclock2 allow leaves the
// wallclock finding standing, a wrong analyzer name suppresses nothing
// and is reported stale, and a directive stranded two lines above its
// finding is out of range.
func TestAllowMultiEdgeCases(t *testing.T) {
	var out strings.Builder
	n, err := lint.Run(&out, lint.All(), []string{filepath.Join("testdata", "src", "allowmulti") + "/..."})
	if err != nil {
		t.Fatalf("driver error: %v", err)
	}
	got := out.String()
	if strings.Contains(got, "[wallclock2]") {
		t.Errorf("a wallclock2 finding survived its allow directive:\n%s", got)
	}
	if c := strings.Count(got, "[wallclock]"); c != 3 {
		t.Errorf("got %d wallclock findings, want 3 (pairOneMissing, wrongName, stacked):\n%s", c, got)
	}
	for _, want := range []string{
		"reprolint:allow detmap suppresses nothing",
		"reprolint:allow wallclock suppresses nothing",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("driver output missing %q:\n%s", want, got)
		}
	}
	if n != 5 {
		t.Errorf("got %d findings, want exactly 5:\n%s", n, got)
	}
}

// TestRunJSON exercises the machine-readable driver mode over the
// allowmulti fixture: the array must parse, carry one element per
// finding, and populate every field the CI tooling keys on.
func TestRunJSON(t *testing.T) {
	var out strings.Builder
	n, err := lint.RunJSON(&out, lint.All(), []string{filepath.Join("testdata", "src", "allowmulti") + "/..."})
	if err != nil {
		t.Fatalf("driver error: %v", err)
	}
	var fs []lint.Finding
	if err := json.Unmarshal([]byte(out.String()), &fs); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(fs) != n {
		t.Errorf("JSON array has %d elements, driver reported %d", len(fs), n)
	}
	for _, f := range fs {
		if f.File == "" || f.Line == 0 || f.Col == 0 || f.Message == "" || f.Analyzer == "" {
			t.Errorf("finding with empty field: %+v", f)
		}
	}
}

// TestAnalyzerMetadata pins the suite composition: ten analyzers with
// stable names, each documented — the names are part of the allow
// directive syntax, so renaming one silently breaks suppressions.
func TestAnalyzerMetadata(t *testing.T) {
	want := []string{
		"detmap", "wallclock", "ctxerrorder", "metricname", "arenaretain",
		"cellmap", "wallclock2", "lockheld", "durableerr", "arenaescape",
	}
	all := lint.All()
	if len(all) != len(want) {
		t.Fatalf("lint.All() has %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("analyzer %d is %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %s has no Run", a.Name)
		}
	}
}
