// Package load turns `go vet`-style package patterns into parsed,
// type-checked packages for the reprolint analyzers.
//
// It is built entirely from the standard library: go/build selects the
// files that belong to the package on this platform (honoring build
// constraints), go/parser produces the syntax trees, and go/types with
// the stdlib source importer resolves every import — including
// module-local ones, which go/build locates by consulting the go
// command. This keeps reprolint working in the proxy-less build
// container where golang.org/x/tools/go/packages is unavailable
// (DESIGN.md §10).
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package.
type Package struct {
	// PkgPath is the import path (module path + directory), e.g.
	// "repro/internal/hv".
	PkgPath string
	// Dir is the absolute directory holding the package sources.
	Dir string
	// Fset is the file set shared by every package of one Load call.
	Fset *token.FileSet
	// Syntax holds the parsed files, with comments.
	Syntax []*ast.File
	// Types and TypesInfo carry the go/types results.
	Types     *types.Package
	TypesInfo *types.Info
}

// Load expands the given patterns relative to the current working
// directory (which must be inside a Go module) and returns one Package
// per matched directory that contains non-test Go files.
//
// Supported pattern forms, mirroring the go tool: a directory path
// ("./internal/hv", "internal/lint/testdata/src/detmap", absolute
// paths), and recursive patterns ending in "/..." ("./...",
// "internal/..."). Recursive walks skip testdata, vendor, hidden and
// underscore-prefixed directories, exactly like the go tool; explicit
// directory arguments are loaded even under testdata, which is how the
// analyzer fixtures are checked.
func Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		return nil, fmt.Errorf("load: no packages to check")
	}
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	modRoot, modPath, err := findModule(cwd)
	if err != nil {
		return nil, err
	}

	dirs, err := expand(cwd, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	// One shared source importer: every dependency is type-checked at
	// most once per Load call.
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := loadDir(fset, imp, modRoot, modPath, dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// findModule walks upward from dir to the enclosing go.mod and returns
// the module root directory and module path.
func findModule(dir string) (root, path string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("load: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("load: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// expand resolves patterns to a sorted, de-duplicated list of absolute
// candidate directories.
func expand(cwd string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if pat == "..." {
			pat, recursive = ".", true
		} else if strings.HasSuffix(pat, "/...") {
			pat, recursive = strings.TrimSuffix(pat, "/..."), true
		}
		if !filepath.IsAbs(pat) {
			pat = filepath.Join(cwd, pat)
		}
		fi, err := os.Stat(pat)
		if err != nil {
			return nil, fmt.Errorf("load: %w", err)
		}
		if !fi.IsDir() {
			return nil, fmt.Errorf("load: %s is not a directory", pat)
		}
		if !recursive {
			add(pat)
			continue
		}
		err = filepath.WalkDir(pat, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != pat && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(p)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// loadDir parses and type-checks the package in dir, or returns
// (nil, nil) when the directory holds no non-test Go files.
func loadDir(fset *token.FileSet, imp types.Importer, modRoot, modPath, dir string) (*Package, error) {
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			return nil, nil
		}
		return nil, fmt.Errorf("load: %s: %w", dir, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	pkgPath := modPath
	if rel, err := filepath.Rel(modRoot, dir); err == nil && rel != "." {
		pkgPath = modPath + "/" + filepath.ToSlash(rel)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %w", pkgPath, err)
	}
	return &Package{
		PkgPath:   pkgPath,
		Dir:       dir,
		Fset:      fset,
		Syntax:    files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
