package lint

import (
	"fmt"

	"repro/internal/lint/analysis"
	"repro/internal/lint/interproc"
)

// Lockheld guards the serve admission path's lock discipline: nothing
// that can block — network I/O, cluster Dispatch/peer fetch, channel
// operations, journal fsync — may run while holding the admission
// mutex (Server.jmu). The jmu critical section serializes every
// submit/ack decision; a blocking operation inside it turns one slow
// peer or full channel into a stalled admission queue for the whole
// daemon (the PR 8 scatter path is the motivating customer).
//
// The write-ahead journal append under jmu is the one *deliberate*
// exception — ack-after-durable ordering requires it — and each such
// site carries a reasoned //reprolint:allow lockheld documenting that
// tradeoff. interproc.lockScan supplies the per-function regions and
// blocking witnesses; this analyzer only scopes and formats them.
var Lockheld = &analysis.Analyzer{
	Name: "lockheld",
	Doc: "forbids blocking operations (network/RPC, channel ops, fsync, sleeps) while " +
		"holding the serve admission mutex jmu; write-ahead journal appends are the " +
		"documented exception and carry reasoned allows",
	Run: runLockheld,
}

func runLockheld(pass *analysis.Pass) (interface{}, error) {
	mod, ok := pass.Module.(*interproc.Module)
	if !ok {
		return nil, fmt.Errorf("lockheld needs the interprocedural module summaries (driver did not set Pass.Module)")
	}
	path := pass.Pkg.Path()
	if !pkgMatches(path, []string{modulePath + "/internal/serve"}) && !isFixtureFor(path, "lockheld") {
		return nil, nil
	}
	for _, fi := range mod.Funcs(path) {
		for _, op := range fi.LockedOps {
			pass.Reportf(op.Pos, "%s; admission must stay non-blocking — move the operation outside the critical section", op.What)
		}
	}
	return nil, nil
}
