package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"

	"repro/internal/lint/analysis"
)

// metricsPkg is the instrumentation package whose registration entry
// points this analyzer guards.
const metricsPkg = modulePath + "/internal/metrics"

var (
	// Full instrument names registered on a Registry.
	metricFullNameRe = regexp.MustCompile(`^repro_[a-z0-9_]+$`)
	// Experiment-name fragments: ObserveExperiment and Timer wrap them
	// into repro_experiment_<name>_{runs_total,seconds}.
	metricFragmentRe = regexp.MustCompile(`^[a-z0-9_]+$`)
)

// metricRegistryMethods are the (*metrics.Registry) entry points whose
// first argument is a full instrument name.
var metricRegistryMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
}

// metricFragmentFuncs are the package-level helpers whose first
// argument is an experiment-name fragment.
var metricFragmentFuncs = map[string]bool{
	"ObserveExperiment": true, "Timer": true,
}

// MetricName pins every metric registration to a constant name the
// exposition and the docs can be greped for: Registry.Counter/Gauge/
// Histogram take a constant string matching ^repro_[a-z0-9_]+$, and
// ObserveExperiment/Timer take a constant ^[a-z0-9_]+$ fragment. A
// computed name cannot drift silently between the /metrics endpoint,
// the tests that assert on exposition bytes, and the documentation.
// The metrics package itself is exempt (it re-looks-up instruments by
// the names it is rendering).
var MetricName = &analysis.Analyzer{
	Name: "metricname",
	Doc: "metric names passed to internal/metrics registration must be constant " +
		"strings matching ^repro_[a-z0-9_]+$ (fragments for ObserveExperiment/Timer: ^[a-z0-9_]+$)",
	Run: runMetricName,
}

func runMetricName(pass *analysis.Pass) (interface{}, error) {
	if pass.Pkg.Path() == metricsPkg {
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != metricsPkg {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok {
				return true
			}
			var re *regexp.Regexp
			switch {
			case sig.Recv() != nil && metricRegistryMethods[fn.Name()]:
				re = metricFullNameRe
			case sig.Recv() == nil && metricFragmentFuncs[fn.Name()]:
				re = metricFragmentRe
			default:
				return true
			}
			arg := call.Args[0]
			tv, ok := pass.TypesInfo.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(arg.Pos(),
					"metric name passed to metrics.%s must be a constant string so exposition, tests and docs cannot drift",
					fn.Name())
				return true
			}
			name := constant.StringVal(tv.Value)
			if !re.MatchString(name) {
				pass.Reportf(arg.Pos(),
					"metric name %q passed to metrics.%s must match %s",
					name, fn.Name(), re)
			}
			return true
		})
	}
	return nil, nil
}
