// Package allowlint is the driver-level fixture for //reprolint:allow
// directive handling: a valid directive suppresses, a malformed or
// unknown one is itself a finding, and an unused one is reported so
// stale suppressions cannot accumulate.
package allowlint

import "time"

func operationalTimestamp() time.Time {
	//reprolint:allow wallclock fixture: operator-facing timestamp, not part of result bytes
	return time.Now()
}

//reprolint:allow nosuchanalyzer the analyzer name is checked

//reprolint:allow wallclock

//reprolint:allow detmap this directive suppresses nothing and must be reported unused
func nothingToSuppress() int { return 42 }
