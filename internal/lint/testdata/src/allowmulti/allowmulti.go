// Package allowmulti exercises //reprolint:allow edge cases across two
// analyzers that can fire on the same line: wallclock (direct time.Now)
// and wallclock2 (transitive reach via clockdeep.Stamp). The driver
// test pins the exact findings: one allow per analyzer fully silences a
// paired line, a lone allow leaves the other analyzer's finding
// standing, a wrong analyzer name suppresses nothing and is itself
// reported stale, and an allow two lines above its finding does not
// reach.
package allowmulti

import (
	"time"

	"repro/internal/lint/testdata/src/allowmulti/clockdeep"
)

// pairSuppressed: both analyzers fire on one line; each needs its own
// directive, and both directives count as used.
func pairSuppressed() int64 {
	//reprolint:allow wallclock fixture: operator-facing stamp, paired with the inline wallclock2 allow
	return time.Now().UnixNano() + clockdeep.Stamp() //reprolint:allow wallclock2 fixture: same line, other analyzer
}

// pairOneMissing: only the transitive finding is allowed; the direct
// time.Now still surfaces as a wallclock finding.
func pairOneMissing() int64 {
	return time.Now().UnixNano() + clockdeep.Stamp() //reprolint:allow wallclock2 fixture: direct call left for wallclock
}

// wrongName: the directive names an analyzer that has no finding here,
// so the wallclock finding stands and the directive is reported stale.
func wrongName() int64 {
	return time.Now().UnixNano() //reprolint:allow detmap fixture: wrong analyzer on purpose
}

// stacked: a directive covers its own line and the next one only; two
// lines of separation is out of range, so the finding stands and the
// directive is stale.
func stacked() int64 {
	//reprolint:allow wallclock fixture: deliberately stranded two lines above the call
	// (an intervening comment pushes the call out of the covered range)
	return time.Now().UnixNano()
}
