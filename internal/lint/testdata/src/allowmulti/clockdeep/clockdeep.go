// Package clockdeep holds the wall-clock source for the allowmulti
// fixture, one package removed from the entry file: calls to Stamp are
// wallclock2 findings at the caller while the time.Now itself sits
// outside every analyzer's scope, so the entry lines can carry a
// direct wallclock finding and a transitive wallclock2 finding with
// independent allow directives.
package clockdeep

import "time"

// Stamp hands host time to whoever calls it.
func Stamp() int64 { return time.Now().UnixNano() }
