// Package arenaescape is the analysistest fixture for the arena escape
// analyzer: values aliasing arena-owned memory (core.Report results,
// (*hv.System).Log records, and anything derived from them through
// helper returns, selection, or composite-literal laundering) must not
// be stored anywhere that outlives the arena's next Reset.
package arenaescape

import (
	"repro/internal/core"
	"repro/internal/hv"
	"repro/internal/tracerec"
)

type holder struct {
	res  *core.Result
	recs []tracerec.Record
}

var latest *core.Result

// alias returns arena-owned memory; callers inherit the taint through
// the Arena summary.
func alias(sys *hv.System) *core.Result {
	return core.Report(sys)
}

// fieldStore is the acceptance case arenaretain provably misses: no
// core.Report or Log call appears here at all — the alias arrives
// through a helper return and a local variable before landing in a
// struct field.
func fieldStore(h *holder, sys *hv.System) {
	r := alias(sys)
	h.res = r // want `stored into struct field res`
}

// globalStore: package-level variables outlive every arena.
func globalStore(sys *hv.System) {
	latest = alias(sys) // want `package-level variable latest`
}

// mapStore and chanStore: containers with indefinite lifetime.
func mapStore(sys *hv.System, idx map[string][]tracerec.Record) {
	idx["last"] = sys.Log().Records // want `map entry`
}

func chanStore(sys *hv.System, out chan []tracerec.Record) {
	out <- sys.Log().Records // want `a channel`
}

// laundered: the alias hides inside a composite literal in a local
// struct before the field store — the laundering path the dataflow
// pass exists to follow.
func laundered(h *holder, sys *hv.System) {
	wrapped := holder{recs: sys.Log().Records}
	h.recs = wrapped.recs // want `stored into struct field recs`
}

// owned: the deep copy is the sanctioned path out of the arena.
func owned(h *holder, sys *hv.System) {
	h.res = core.ReportOwned(sys)
}

// localOnly: an alias that never escapes the call is borrowing as
// designed.
func localOnly(sys *hv.System) int {
	recs := sys.Log().Records
	return len(recs)
}
