// Package arenaretain is the analysistest fixture for the arenaretain
// analyzer.
package arenaretain

import (
	"repro/internal/core"
	"repro/internal/hv"
	"repro/internal/tracerec"
)

// ReportOwned deep-copies the trace records into caller-owned memory,
// so it is the sanctioned way to carry a Result out of an arena.
func owned(sys *hv.System) *core.Result {
	return core.ReportOwned(sys)
}

func aliased(sys *hv.System) *core.Result {
	return core.Report(sys) // want `use core\.ReportOwned`
}

func retained(sys *hv.System) []tracerec.Record {
	return sys.Log().Records // want `arena-owned records`
}

// A read that provably completes before the arena's next Reset carries
// an allow directive with its justification.
func inspected(sys *hv.System) int {
	//reprolint:allow arenaretain aggregate read finishes before the worker reuses the arena
	return sys.Log().Len()
}
