// Package cellmap is the analysistest fixture for the cellmap
// analyzer.
package cellmap

import (
	"sort"

	"repro/internal/campaign"
)

// Folding from the generator's expansion slice is the sanctioned path:
// the sequence is deterministic by construction.
func foldSlice(agg *campaign.Aggregate, cells []*campaign.CellResult) {
	for i, cr := range cells {
		agg.MergeCell(i, cr)
	}
}

// Ranging over a map of cell results folds in Go's randomized map
// order — banned no matter how the key and value are bound.
func foldMap(agg *campaign.Aggregate, byID map[string]*campaign.CellResult) {
	for _, cr := range byID { // want `nondeterministic merge order`
		agg.MergeCell(0, cr)
	}
}

func foldMapValue(agg *campaign.Aggregate, byIdx map[int]campaign.CellResult) {
	for i, cr := range byIdx { // want `nondeterministic merge order`
		cr := cr
		agg.MergeCell(i, &cr)
	}
}

// Unlike detmap, the collect-keys-then-sort idiom is not an escape
// hatch here: if cells are worth sorting they belong in a slice.
func foldSorted(agg *campaign.Aggregate, byID map[string]*campaign.CellResult) {
	var ids []string
	for id := range byID { // want `nondeterministic merge order`
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		agg.MergeCell(0, byID[id])
	}
}

// Maps of anything else are detmap's business, not cellmap's.
func countStatuses(byID map[string]string) int {
	n := 0
	for range byID {
		n++
	}
	return n
}

// A reviewed exception carries an allow directive.
func allowedDrain(agg *campaign.Aggregate, byID map[string]*campaign.CellResult) {
	//reprolint:allow cellmap diagnostic dump, output never hashed or compared
	for _, cr := range byID {
		_ = cr
		_ = agg
	}
}
