// Package ctxerrorder is the analysistest fixture for the ctxerrorder
// analyzer — the PR 3 serve bug class: cancel() first, ctx.Err() read
// afterwards, so every real failure classifies as a cancellation.
package ctxerrorder

import (
	"context"
	"errors"
)

func work(ctx context.Context) error { return ctx.Err() }

// The bug: ctx.Err() is read after cancel() has run, so it is always
// context.Canceled regardless of what err actually was.
func misclassifies(parent context.Context) error {
	ctx, cancel := context.WithCancel(parent)
	err := work(ctx)
	cancel()
	if ctx.Err() != nil { // want `Err\(\) read after cancel\(\)`
		return context.Canceled
	}
	return err
}

// The PR 3 fix shape: capture ctx.Err() before cancelling, compare
// with errors.Is.
func capturesBefore(parent context.Context) error {
	ctx, cancel := context.WithCancel(parent)
	err := work(ctx)
	ctxErr := ctx.Err()
	cancel()
	if ctxErr != nil && errors.Is(err, context.Canceled) {
		return context.Canceled
	}
	return err
}

// A deferred cancel runs at return, after every read in the body: fine.
func deferredCancel(parent context.Context, d interface{ Deadline() }) error {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	err := work(ctx)
	if ctx.Err() != nil {
		return context.Canceled
	}
	return err
}

// Two independent pairs: cancelling one does not taint reads of the
// other.
func independentPairs(parent context.Context) error {
	a, cancelA := context.WithCancel(parent)
	b, cancelB := context.WithCancel(parent)
	defer cancelB()
	_ = work(a)
	cancelA()
	if b.Err() != nil {
		return context.Canceled
	}
	if a.Err() != nil { // want `Err\(\) read after cancelA\(\)`
		return context.Canceled
	}
	return nil
}

// An allow directive records a reviewed exception.
func allowedPostCancelRead(parent context.Context) bool {
	ctx, cancel := context.WithCancel(parent)
	cancel()
	//reprolint:allow ctxerrorder deliberately asserting the cancelled state itself
	return ctx.Err() != nil
}
