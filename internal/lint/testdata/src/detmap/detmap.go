// Package detmap is the analysistest fixture for the detmap analyzer.
package detmap

import "sort"

// Direct iteration feeding an order-sensitive accumulation: flagged.
func concatValues(m map[string]string) string {
	out := ""
	for _, v := range m { // want `range over map has nondeterministic iteration order`
		out += v
	}
	return out
}

// The canonical collect-then-sort idiom: the body only appends keys
// and the slice is sorted before use, so the map's order never
// reaches the output.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sort.Slice with a comparator counts too.
func sortedPairs(m map[string]int) []string {
	pairs := make([]string, 0, len(m))
	for k, v := range m {
		pairs = append(pairs, k+string(rune('0'+v)))
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i] < pairs[j] })
	return pairs
}

// Collecting keys without ever sorting them: flagged.
func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // want `range over map has nondeterministic iteration order`
		keys = append(keys, k)
	}
	return keys
}

// Sorting a different slice does not launder the collection: flagged.
func sortsTheWrongSlice(m map[string]int, other []string) []string {
	var keys []string
	for k := range m { // want `range over map has nondeterministic iteration order`
		keys = append(keys, k)
	}
	sort.Strings(other)
	return keys
}

// Neither key nor value is bound, so the body cannot observe the
// iteration order: not flagged.
func countAll(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Ranging over a slice is always fine.
func sliceSum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// A genuine false positive carries an allow directive with a reason.
func allowedSum(m map[string]int) int {
	s := 0
	//reprolint:allow detmap integer addition is order-insensitive
	for _, v := range m {
		s += v
	}
	return s
}
