// Package durableerr is the analysistest fixture for the durable-error
// analyzer. The journal type mirrors the serve write-ahead journal
// (which is unexported there); its append is a durable base fact by
// key, and the store import exercises the real Store.Put obligation.
package durableerr

import (
	"errors"

	"repro/internal/store"
)

type record struct{ op string }

type journal struct{ dead bool }

var errDead = errors.New("journal is not accepting writes")

// append mirrors (*serve.journal).append: its error carries the
// write-ahead durability of the record.
func (j *journal) append(rec record) error {
	if j.dead {
		return errDead
	}
	_ = rec
	return nil
}

// droppedAppend is the acceptance case: a journal append whose error
// simply vanishes — the daemon would ack work with no durable accept
// record.
func droppedAppend(j *journal) {
	j.append(record{op: "accept"}) // want `error from \(durableerr\.journal\)\.append is discarded`
}

// blankAppend: discarding to _ is the same loss, made explicit.
func blankAppend(j *journal) {
	_ = j.append(record{op: "accept"}) // want `assigned to _`
}

// checked discharges the obligation.
func checked(j *journal) bool {
	if err := j.append(record{op: "accept"}); err != nil {
		return false
	}
	return true
}

// propagate hands the obligation to its callers: the summary marks it
// durable because it returns the append's error.
func propagate(j *journal) error {
	return j.append(record{op: "accept"})
}

// dropPropagated is the refactoring hazard the propagation exists for:
// the append moved behind a helper, and the caller's drop would pass a
// direct-call check.
func dropPropagated(j *journal) {
	propagate(j) // want `error from durableerr\.propagate is discarded`
}

// viaVariable: the error rides a local before being returned; callers
// still inherit the obligation.
func viaVariable(j *journal) error {
	err := j.append(record{op: "accept"})
	return err
}

func dropViaVariable(j *journal) {
	viaVariable(j) // want `error from durableerr\.viaVariable is discarded`
}

// storePut: the real durable store write, dropped.
func storePut(st *store.Store, key string, body []byte) {
	_ = st.Put(key, body) // want `error from \(store\.Store\)\.Put is assigned to _`
}

// allowedDrop: a best-effort flush on a shutdown path may deliberately
// drop, with the reason on record.
func allowedDrop(j *journal) {
	//reprolint:allow durableerr fixture: best-effort flush on shutdown, replay re-derives the record
	j.append(record{op: "flush"})
}
