// Package lockheld is the analysistest fixture for the admission-mutex
// analyzer: RPC, HTTP, channel and fsync-reaching operations inside a
// jmu critical section are findings; the same operations outside the
// section, behind a go statement, or as a select-with-default probe are
// not. The struct mirrors the serve.Server shape — a sync.Mutex field
// named jmu is the admission mutex by definition.
package lockheld

import (
	"context"
	"net/http"
	"sync"

	"repro/internal/cluster"
)

type server struct {
	jmu   sync.Mutex
	queue chan int
	cl    *cluster.Cluster
	hc    *http.Client
}

// dispatchUnderLock is the PR 8 scatter shape the analyzer exists for:
// a cluster RPC issued while the admission mutex is held.
func (s *server) dispatchUnderLock(ctx context.Context) {
	s.jmu.Lock()
	_, _ = s.cl.Dispatch(ctx, "peer", nil) // want `may block .* admission mutex`
	s.jmu.Unlock()
}

// httpUnderLock: deferred unlock holds the section to the end of the
// function, so the round trip is inside it.
func (s *server) httpUnderLock(req *http.Request) {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	resp, err := s.hc.Do(req) // want `may block .* admission mutex`
	if err == nil {
		resp.Body.Close()
	}
}

// sendUnderLock: a bare channel send can park the goroutine with the
// admission mutex held.
func (s *server) sendUnderLock(v int) {
	s.jmu.Lock()
	s.queue <- v // want `channel send while holding`
	s.jmu.Unlock()
}

// probeUnderLock is the sanctioned shape: select with default never
// parks — exactly how enqueue backpressure works in serve.
func (s *server) probeUnderLock(v int) bool {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	select {
	case s.queue <- v:
		return true
	default:
		return false
	}
}

// outsideLock: the same RPC after Unlock is fine.
func (s *server) outsideLock(ctx context.Context) {
	s.jmu.Lock()
	s.jmu.Unlock()
	_, _ = s.cl.Dispatch(ctx, "peer", nil)
}

// spawned: a goroutine does not hold the caller's lock.
func (s *server) spawned(ctx context.Context) {
	s.jmu.Lock()
	go func() {
		_, _ = s.cl.Dispatch(ctx, "peer", nil)
	}()
	s.jmu.Unlock()
}

// conditionalUnlock: the early-out branch releases and returns; the
// fall-through path still holds the lock and must still be flagged.
func (s *server) conditionalUnlock(ctx context.Context, bad bool) {
	s.jmu.Lock()
	if bad {
		s.jmu.Unlock()
		return
	}
	_, _ = s.cl.Dispatch(ctx, "peer", nil) // want `may block .* admission mutex`
	s.jmu.Unlock()
}

// allowedAppend mirrors the write-ahead journal tradeoff: a blocking
// operation deliberately kept inside the section carries a reasoned
// allow.
func (s *server) allowedAppend(ctx context.Context) {
	s.jmu.Lock()
	//reprolint:allow lockheld fixture: write-ahead ordering requires the durable append before ack
	_, _ = s.cl.Dispatch(ctx, "journal", nil)
	s.jmu.Unlock()
}
