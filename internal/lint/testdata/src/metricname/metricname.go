// Package metricname is the analysistest fixture for the metricname
// analyzer.
package metricname

import (
	"time"

	"repro/internal/metrics"
)

const goodName = "repro_fixture_ops_total"

// Registered names must be constant strings under the repro_ prefix.
func registrations(r *metrics.Registry, dynamic string) {
	r.Counter("repro_fixture_jobs_total")
	r.Counter(goodName)
	r.Gauge("repro_fixture_depth")
	r.Histogram("repro_fixture_seconds", nil)

	r.Counter("fixture_jobs_total")   // want `must match \^repro_`
	r.Gauge("repro_Fixture_Depth")    // want `must match \^repro_`
	r.Counter(dynamic)                // want `must be a constant string`
	r.Counter("repro_" + dynamic)     // want `must be a constant string`
	r.Histogram("repro-fixture", nil) // want `must match \^repro_`
}

// Experiment fragments get the repro_experiment_ wrapping from the
// metrics package, so only the fragment charset is checked.
func fragments(dynamic string) {
	metrics.ObserveExperiment("fixture_run", time.Millisecond)
	stop := metrics.Timer("fixture_run")
	stop()

	metrics.ObserveExperiment("Fixture", time.Millisecond) // want `must match \^\[a-z0-9_\]`
	_ = metrics.Timer(dynamic)                             // want `must be a constant string`
}

// The campaign orchestrator's instrument family follows the same
// rules: constant repro_campaign_* names, never a name assembled from
// the campaign id or spec.
func campaignInstruments(r *metrics.Registry, campID string) {
	r.Counter("repro_campaign_accepted_total")
	r.Counter("repro_campaign_cells_merged_total")
	r.Gauge("repro_campaign_active")

	r.Counter("campaign_accepted_total")            // want `must match \^repro_`
	r.Gauge("repro_campaign_" + campID + "_active") // want `must be a constant string`
	r.Counter("repro_campaign_cells-merged_total")  // want `must match \^repro_`
}

// The cluster layer's instrument family (ring membership, peer
// fetches, scatter dispatch, drain handoff) follows the same rules:
// constant repro_cluster_* names, never a name assembled from a peer
// name or URL.
func clusterInstruments(r *metrics.Registry, peer string) {
	r.Gauge("repro_cluster_peers_alive")
	r.Counter("repro_cluster_health_transitions_total")
	r.Counter("repro_cluster_peer_fetch_hits_total")
	r.Counter("repro_cluster_peer_checksum_failures_total")
	r.Counter("repro_cluster_cells_reowned_total")
	r.Counter("repro_cluster_handoff_adopted_total")

	r.Counter("cluster_peer_fetch_hits_total")       // want `must match \^repro_`
	r.Counter("repro_cluster_" + peer + "_dispatch") // want `must be a constant string`
	r.Counter("repro_cluster_peer-fetch_hits_total") // want `must match \^repro_`
	r.Gauge("repro_Cluster_peers_alive")             // want `must match \^repro_`
}

// The differential fuzzer's instrument family (cells merged into
// diffuzz campaigns, bound violations among them) follows the same
// rules: constant repro_diffuzz_* names, never a name assembled from a
// scenario class or seed.
func diffuzzInstruments(r *metrics.Registry, class string) {
	r.Counter("repro_diffuzz_cells_merged_total")
	r.Counter("repro_diffuzz_violations_total")

	r.Counter("diffuzz_violations_total")          // want `must match \^repro_`
	r.Counter("repro_diffuzz_" + class + "_total") // want `must be a constant string`
	r.Counter("repro_diffuzz_cells-merged_total")  // want `must match \^repro_`
	r.Gauge("repro_Diffuzz_violations")            // want `must match \^repro_`
}

// A reviewed dynamic name carries an allow directive.
func allowedDynamic(r *metrics.Registry, shard string) {
	//reprolint:allow metricname per-shard instrument family, closed set validated at startup
	r.Counter("repro_fixture_shard_" + shard + "_total")
}
