// Package wallclock is the analysistest fixture for the wallclock
// analyzer.
package wallclock

import (
	"math/rand"
	"time"
)

// Host-clock reads in a simulation package: flagged.
func hostClock() time.Duration {
	start := time.Now()          // want `wall-clock time\.Now`
	time.Sleep(time.Millisecond) // want `wall-clock time\.Sleep`
	return time.Since(start)     // want `wall-clock time\.Since`
}

// Implicitly seeded global randomness: flagged.
func globalRand() int64 {
	return rand.Int63() // want `global math/rand\.Int63`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand\.Shuffle`
}

// A locally seeded generator is deterministic: the constructors are
// fine (the stream itself should still come from internal/rng, but
// that is a style question, not an identity hazard).
func seededRand(seed int64) int64 {
	r := rand.New(rand.NewSource(seed))
	return r.Int63()
}

// time.Duration arithmetic and constants never touch the host clock.
func durations(d time.Duration) time.Duration {
	return d + 2*time.Millisecond
}

// An allow directive suppresses a deliberate operational exception.
func allowedProgressLog() time.Time {
	//reprolint:allow wallclock operator-facing progress timestamp, never part of result bytes
	return time.Now()
}
