// Package clockutil stands in for an out-of-scope helper package: the
// wall-clock read lives here, two hops from the fixture entry package,
// where the direct-call wallclock analyzer never connects it to the
// callers it taints.
package clockutil

import "time"

// Stamp hands host time to whoever calls it.
func Stamp() int64 { return now() }

func now() int64 { return time.Now().UnixNano() }
