// Package wallclock2 is the analysistest fixture for the
// interprocedural wall-clock analyzer. No direct time call appears
// anywhere in this package — the clock read sits two helpers away in
// the clockutil subpackage, which stands in for an out-of-scope helper
// package. The direct-call wallclock analyzer scans this package and
// provably finds nothing (a test pins that blind spot); wallclock2
// follows the call graph and flags every hop in reporting scope.
package wallclock2

import "repro/internal/lint/testdata/src/wallclock2/clockutil"

// simulate is deterministic-scope code whose result silently absorbs
// host time through the helper chain.
func simulate() int64 {
	return warmStamp() // want `transitively reads the wall clock`
}

// warmStamp is the first hop: still no direct clock call in sight.
func warmStamp() int64 {
	return clockutil.Stamp() // want `transitively reads the wall clock`
}

// pure never reaches the clock; a clean helper chain stays clean.
func pure() int64 { return fold(41) }

func fold(x int64) int64 { return x + 1 }

// allowedStamp: an allow cuts both the finding and the propagation —
// callers of allowedStamp stay clean instead of inheriting the taint
// one level up.
func allowedStamp() int64 {
	//reprolint:allow wallclock2 fixture: operator-facing timestamp, not part of result bytes
	return clockutil.Stamp()
}

func caller() int64 { return allowedStamp() }
