package lint

import (
	"go/ast"

	"repro/internal/lint/analysis"
)

// wallclockAllow lists the operational packages where real time and
// jittered randomness are the point: the serve daemon and its client
// (timeouts, backoff), the cluster layer (heartbeats, probe timeouts,
// hedging budgets), the disk store (mtimes), the worker pool, and
// the metrics layer (latency observation). Everything else under
// internal/ is simulation or analysis code, where wall-clock reads and
// global math/rand would leak host state into supposedly seeded,
// reproducible results.
var wallclockAllow = []string{
	modulePath + "/internal/serve",
	modulePath + "/internal/store",
	modulePath + "/internal/runner",
	modulePath + "/internal/metrics",
	modulePath + "/internal/cluster",
}

// wallclockTimeFuncs are the time package entry points that read or
// wait on the host clock.
var wallclockTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// wallclockRandOK are the math/rand constructors: a locally seeded
// *rand.Rand is deterministic, so only the implicitly seeded global
// functions are forbidden.
var wallclockRandOK = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true,
	"NewZipf": true,
}

// Wallclock forbids host-clock reads (time.Now, time.Since, ...) and
// global math/rand calls in simulation packages. Simulated time comes
// from internal/simtime (cycle-accurate, part of the result bytes) and
// randomness from internal/rng (seeded PCG streams, part of the cache
// key); a wall-clock read in a sim path makes the same (scenario,
// seed, revision) triple produce different bytes on different hosts.
var Wallclock = &analysis.Analyzer{
	Name: "wallclock",
	Doc: "forbids time.Now/time.Since/global math/rand in simulation packages; " +
		"use internal/simtime and internal/rng (operational packages " +
		"internal/serve, internal/store, internal/runner, internal/metrics, " +
		"internal/cluster are allowlisted)",
	Run: runWallclock,
}

func runWallclock(pass *analysis.Pass) (interface{}, error) {
	path := pass.Pkg.Path()
	inScope := pkgMatches(path, []string{modulePath + "/internal"}) &&
		!pkgMatches(path, wallclockAllow) && !isAnyFixture(path)
	// Beyond its own fixture, this analyzer opts into three more: the
	// wallclock2 fixture entry package (a test pins that the direct-call
	// check finds nothing there — the clock read is a helper chain away,
	// exactly the blind spot wallclock2 closes) and the allow-directive
	// fixtures, whose suppressed findings are wallclock findings.
	if !inScope && !isFixtureFor(path, "wallclock") && !isFixtureFor(path, "wallclock2") &&
		!isFixtureFor(path, "allowlint") && !isFixtureFor(path, "allowmulti") {
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, ok := pkgNameOf(pass, sel.X)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			switch pkgPath {
			case "time":
				if wallclockTimeFuncs[name] {
					pass.Reportf(call.Pos(),
						"wall-clock time.%s in simulation package %s; use internal/simtime (simulated cycles) — real time must not reach deterministic results",
						name, path)
				}
			case "math/rand", "math/rand/v2":
				if !wallclockRandOK[name] {
					pass.Reportf(call.Pos(),
						"global %s.%s in simulation package %s; use internal/rng seeded streams — implicit global seeding breaks run identity",
						pkgPath, name, path)
				}
			}
			return true
		})
	}
	return nil, nil
}
