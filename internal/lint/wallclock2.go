package lint

import (
	"fmt"

	"repro/internal/lint/analysis"
	"repro/internal/lint/interproc"
)

// Wallclock2 is the interprocedural successor to Wallclock: instead of
// flagging only direct time.Now/global-rand calls, it flags any call in
// a deterministic-scope package whose callee *transitively* reaches a
// wall-clock read — the helper-chain blind spot the direct check
// provably cannot see (a time.Now two helpers deep in another package
// taints every caller, but appears in no caller's own statements).
//
// The division of labor is exact: direct base calls (time.Now itself)
// stay Wallclock's findings; Wallclock2 reports only calls to
// module-internal functions whose propagated Clock summary is set, with
// the witness chain in the message. Calls into the operational
// allowlist packages are a sanctioned boundary and never tainted
// (interproc forces their summaries clean).
var Wallclock2 = &analysis.Analyzer{
	Name: "wallclock2",
	Doc: "forbids calls in simulation packages that transitively reach time.Now/" +
		"time.Since/global math/rand through any helper chain; complements wallclock " +
		"(direct calls) using the module call graph, same operational allowlist",
	Run: runWallclock2,
}

func runWallclock2(pass *analysis.Pass) (interface{}, error) {
	mod, ok := pass.Module.(*interproc.Module)
	if !ok {
		return nil, fmt.Errorf("wallclock2 needs the interprocedural module summaries (driver did not set Pass.Module)")
	}
	path := pass.Pkg.Path()
	inScope := pkgMatches(path, []string{modulePath + "/internal"}) &&
		!pkgMatches(path, wallclockAllow) && !isAnyFixture(path)
	// Only the fixture entry packages are in reporting scope — the
	// clockutil subpackage stands in for an out-of-scope helper package
	// (the shape of the real-world miss).
	if !inScope && !isFixtureFor(path, "wallclock2") && !isFixtureFor(path, "allowmulti") {
		return nil, nil
	}
	for _, fi := range mod.Funcs(path) {
		for _, c := range fi.Calls {
			if interproc.BaseClock(c.Callee) || !mod.ClockTainted(c.Callee) {
				continue
			}
			pass.Reportf(c.Pos,
				"call to %s transitively reads the wall clock (%s) in simulation package %s; "+
					"real time must not reach deterministic results",
				interproc.Short(c.Callee), mod.ClockChain(c.Callee), path)
		}
	}
	return nil, nil
}
