// Package metrics is a small, dependency-free instrumentation layer:
// named counters, gauges and fixed-bucket histograms with a
// deterministic Prometheus-style text exposition. It exists so the
// experiment CLIs and the internal/serve daemon report through one
// registry — the daemon's /metrics endpoint and a CLI's -metrics dump
// render the same state the same way.
//
// All instruments are safe for concurrent use. Exposition output is
// sorted by instrument name, so two registries holding the same state
// render byte-identical documents — the same determinism contract the
// rest of the repository keeps for simulation results.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing int64.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n is ignored; counters never decrease).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an int64 that may go up and down (queue depths, pool sizes).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket cumulative histogram over float64
// observations (typically seconds, like the Prometheus convention).
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // upper bounds, strictly increasing
	counts []int64   // per-bucket (non-cumulative) counts; len(bounds)+1 with +Inf last
	sum    float64
	count  int64
}

// DefBuckets covers 1 ms .. ~100 s experiment latencies.
var DefBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 100}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Registry holds named instruments. The zero value is not usable; use
// NewRegistry or the package Default.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry the CLIs and the serve
// daemon share by default.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (nil bounds selects DefBuckets). Later
// calls ignore bounds.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		if bounds == nil {
			bounds = DefBuckets
		}
		b := append([]float64(nil), bounds...)
		h = &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// ObserveExperiment is the shared CLI/server hook: it bumps
// repro_experiment_<name>_runs_total and observes the run latency in
// repro_experiment_<name>_seconds on the default registry.
func ObserveExperiment(name string, d time.Duration) {
	defaultRegistry.Counter("repro_experiment_" + name + "_runs_total").Inc()
	defaultRegistry.Histogram("repro_experiment_"+name+"_seconds", nil).ObserveDuration(d)
}

// Timer starts timing an experiment run and returns the stop function
// that records it via ObserveExperiment. It exists so simulation
// packages never touch the wall clock themselves (reprolint wallclock,
// DESIGN.md §10): the host-time read stays inside this operational
// package, and the measured duration flows only into telemetry, never
// into result bytes.
func Timer(name string) func() {
	start := time.Now()
	return func() { ObserveExperiment(name, time.Since(start)) }
}

// WriteTo renders the registry in the Prometheus text format, sorted by
// instrument name within each kind.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	type namedHist struct {
		name string
		h    *Histogram
	}
	counters := make([]string, 0, len(r.counters))
	for name := range r.counters {
		counters = append(counters, name)
	}
	gauges := make([]string, 0, len(r.gauges))
	for name := range r.gauges {
		gauges = append(gauges, name)
	}
	hists := make([]namedHist, 0, len(r.hists))
	for name, h := range r.hists {
		hists = append(hists, namedHist{name, h})
	}
	r.mu.Unlock()
	sort.Strings(counters)
	sort.Strings(gauges)
	sort.Slice(hists, func(i, j int) bool { return hists[i].name < hists[j].name })

	cw := &countingWriter{w: w}
	for _, name := range counters {
		fmt.Fprintf(cw, "# TYPE %s counter\n%s %d\n", name, name, r.Counter(name).Value())
	}
	for _, name := range gauges {
		fmt.Fprintf(cw, "# TYPE %s gauge\n%s %d\n", name, name, r.Gauge(name).Value())
	}
	for _, nh := range hists {
		fmt.Fprintf(cw, "# TYPE %s histogram\n", nh.name)
		nh.h.mu.Lock()
		cum := int64(0)
		for i, bound := range nh.h.bounds {
			cum += nh.h.counts[i]
			fmt.Fprintf(cw, "%s_bucket{le=%q} %d\n", nh.name, formatBound(bound), cum)
		}
		cum += nh.h.counts[len(nh.h.bounds)]
		fmt.Fprintf(cw, "%s_bucket{le=\"+Inf\"} %d\n", nh.name, cum)
		fmt.Fprintf(cw, "%s_sum %s\n", nh.name, strconv.FormatFloat(nh.h.sum, 'g', -1, 64))
		fmt.Fprintf(cw, "%s_count %d\n", nh.name, nh.h.count)
		nh.h.mu.Unlock()
	}
	return cw.n, cw.err
}

func formatBound(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(b, 'g', -1, 64)
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}
