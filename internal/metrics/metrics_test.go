package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters never decrease
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("jobs_total") != c {
		t.Fatal("Counter not idempotent per name")
	}
	g := r.Gauge("queue_depth")
	g.Set(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %d, want 2", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", []float64{0.1, 1})
	for _, v := range []float64{0.05, 0.1, 0.5, 2} {
		h.Observe(v)
	}
	h.ObserveDuration(50 * time.Millisecond)
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.1"} 3`, // 0.05, 0.1, 0.05s — le bounds are inclusive
		`lat_seconds_bucket{le="1"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		"lat_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

// TestExpositionDeterministic: two registries filled in different
// orders render byte-identical documents.
func TestExpositionDeterministic(t *testing.T) {
	build := func(order []string) string {
		r := NewRegistry()
		for _, name := range order {
			r.Counter(name).Add(7)
		}
		r.Gauge("depth").Set(2)
		r.Histogram("h_seconds", nil).Observe(0.25)
		var sb strings.Builder
		if _, err := r.WriteTo(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	a := build([]string{"b_total", "a_total", "c_total"})
	b := build([]string{"c_total", "b_total", "a_total"})
	if a != b {
		t.Fatalf("exposition depends on registration order:\n%s\n----\n%s", a, b)
	}
}

// TestConcurrent hammers one registry from many goroutines; run under
// -race this is the data-race proof for the serve hot path.
func TestConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("c_total").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h_seconds", nil).Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total").Value(); got != 1600 {
		t.Fatalf("counter = %d, want 1600", got)
	}
	if got := r.Histogram("h_seconds", nil).Count(); got != 1600 {
		t.Fatalf("histogram count = %d, want 1600", got)
	}
}

func TestObserveExperiment(t *testing.T) {
	before := Default().Counter("repro_experiment_unit_test_runs_total").Value()
	ObserveExperiment("unit_test", 10*time.Millisecond)
	if got := Default().Counter("repro_experiment_unit_test_runs_total").Value(); got != before+1 {
		t.Fatalf("runs_total = %d, want %d", got, before+1)
	}
}
