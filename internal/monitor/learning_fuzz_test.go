package monitor

import (
	"testing"

	"repro/internal/curves"
	"repro/internal/rng"
	"repro/internal/simtime"
)

// Properties of the self-learning monitor (Appendix A, Algorithms 1
// and 2), checked against adversarial activation streams:
//
//	(P1) the raw learned δ⁻ prefix admits the very trace it was learned
//	     from — learned[i] is the minimum observed distance, so every
//	     observed distance is ≥ it;
//	(P2) after FinishLearning the enforced condition is a valid δ⁻
//	     (non-negative, non-decreasing) and pointwise ≥ the bound δ⁻_b,
//	     so the admitted load η⁺_cond never exceeds η⁺_bound — the
//	     monitor can only get *stricter* than the configured budget, no
//	     matter what stream it learned from;
//	(P3) a benign learning trace (all distances already ≥ δ⁻_b) is
//	     fully re-admitted by the lifted condition;
//	(P4) in run mode, the stream of *committed* activations satisfies
//	     the enforced condition — the shaping property eq. (14) rests
//	     on.

// genStream derives n strictly increasing activation times whose gaps
// mix bursts (far below dmin) and pauses, steered by burstiness.
func genStream(src *rng.Source, n int, dmin simtime.Duration, burstiness float64) []simtime.Time {
	ts := make([]simtime.Time, n)
	t := simtime.Time(0)
	for i := range ts {
		var gap simtime.Duration
		if src.Float64() < burstiness {
			gap = 1 + simtime.Duration(src.Int63n(int64(dmin)/4+1)) // violent
		} else {
			gap = dmin + simtime.Duration(src.Int63n(2*int64(dmin)))
		}
		t = t.Add(gap)
		ts[i] = t
	}
	return ts
}

// pairDistanceOK reports whether ts satisfies cond as a δ⁻ condition:
// for every event k and depth i, t_k − t_{k−1−i} ≥ cond[i].
func pairDistanceOK(t *testing.T, ts []simtime.Time, cond []simtime.Duration, label string) {
	t.Helper()
	for k := range ts {
		for i := 0; i < len(cond) && k-1-i >= 0; i++ {
			if d := ts[k].Sub(ts[k-1-i]); d < cond[i] {
				t.Fatalf("%s: event %d at %v is %v after depth-%d predecessor, condition wants ≥ %v",
					label, k, ts[k], d, i, cond[i])
			}
		}
	}
}

func checkLearning(t *testing.T, seed uint64, l, n int, burstiness float64, dminB simtime.Duration) {
	t.Helper()
	src := rng.New(seed)
	bound := make([]simtime.Duration, l)
	for i := range bound {
		bound[i] = simtime.Duration(i+1) * dminB
	}
	boundDelta, err := curves.NewDelta(bound)
	if err != nil {
		t.Fatalf("bound: %v", err)
	}

	m, err := NewLearning(l)
	if err != nil {
		t.Fatal(err)
	}
	trace := genStream(src, n, dminB, burstiness)
	for _, ts := range trace {
		m.Learn(ts)
	}

	// (P1) the raw learned prefix admits the observed trace.
	learned := m.Learned()
	raw := make([]simtime.Duration, 0, l)
	for _, d := range learned {
		if d == simtime.Infinity {
			break
		}
		raw = append(raw, d)
	}
	if n > l && len(raw) != l {
		t.Fatalf("trace of %d events left %d of %d learned entries unobserved", n, l-len(raw), l)
	}
	pairDistanceOK(t, trace, raw, "learned prefix vs own trace")

	if err := m.FinishLearning(boundDelta); err != nil {
		t.Fatal(err)
	}
	cond := m.Condition()
	if cond == nil || cond.Len() != l {
		t.Fatalf("condition after FinishLearning: %v", cond)
	}

	// (P2) valid δ⁻, pointwise ≥ bound, η⁺ never above the bound's.
	prev := simtime.Duration(0)
	for i, d := range cond.Dist {
		if d < prev {
			t.Fatalf("condition not non-decreasing at %d: %v < %v", i, d, prev)
		}
		if d < bound[i] {
			t.Fatalf("condition[%d] = %v below bound %v: admits load above δ⁻_b", i, d, bound[i])
		}
		prev = d
	}
	horizon := simtime.Duration(4*l) * dminB
	for dt := simtime.Duration(0); dt <= horizon; dt += dminB / 3 {
		if got, max := cond.EtaPlus(dt), boundDelta.EtaPlus(dt); got > max {
			t.Fatalf("η⁺_cond(%v) = %d exceeds η⁺_bound = %d", dt, got, max)
		}
	}

	// (P4) run mode shapes an adversarial stream: whatever subsequence
	// gets committed satisfies the enforced condition.
	attack := genStream(rng.New(seed+1), n, dminB, 0.9)
	var committed []simtime.Time
	for _, ts := range attack {
		if m.Check(ts) == Conforming {
			m.Commit(ts)
			committed = append(committed, ts)
		}
	}
	if len(committed) == 0 {
		t.Fatal("run mode admitted nothing; shaping property is vacuous")
	}
	pairDistanceOK(t, committed, cond.Dist, "committed grants vs condition")
	st := m.Stats()
	if st.Commits != uint64(len(committed)) || st.Checked != uint64(len(attack)) {
		t.Fatalf("stats %+v inconsistent with %d checks / %d commits", st, len(attack), len(committed))
	}
}

func FuzzLearning(f *testing.F) {
	f.Add(uint64(1), uint8(1), uint16(64), byte(128))
	f.Add(uint64(2014), uint8(4), uint16(200), byte(40))
	f.Add(uint64(7), uint8(8), uint16(300), byte(250))
	f.Add(uint64(42), uint8(3), uint16(10), byte(0)) // shorter than l: unobserved entries
	f.Fuzz(func(t *testing.T, seed uint64, lRaw uint8, nRaw uint16, burstRaw byte) {
		l := 1 + int(lRaw%8)
		n := 2 + int(nRaw%400)
		burstiness := float64(burstRaw) / 255
		checkLearning(t, seed, l, n, burstiness, simtime.Micros(1344))
	})
}

// The fuzz properties at fixed adversarial corners, so plain `go test`
// exercises them without the fuzzing engine.
func TestLearningProperties(t *testing.T) {
	for _, tc := range []struct {
		name       string
		seed       uint64
		l, n       int
		burstiness float64
	}{
		{"l1-calm", 3, 1, 120, 0.1},
		{"l1-violent", 4, 1, 250, 0.95},
		{"l4-mixed", 5, 4, 300, 0.5},
		{"l8-bursty", 6, 8, 400, 0.8},
		{"short-trace", 8, 6, 4, 0.5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			checkLearning(t, tc.seed, tc.l, tc.n, tc.burstiness, simtime.Micros(1344))
		})
	}
}

// (P3) a benign learning trace — every pairwise distance already at or
// above δ⁻_b — is fully re-admitted under the lifted condition.
func TestLearningBenignTraceReadmitted(t *testing.T) {
	const l, n = 4, 200
	dminB := simtime.Micros(1000)
	bound := make([]simtime.Duration, l)
	for i := range bound {
		bound[i] = simtime.Duration(i+1) * dminB
	}
	boundDelta, err := curves.NewDelta(bound)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(11)
	trace := make([]simtime.Time, n)
	tm := simtime.Time(0)
	for i := range trace {
		// Gap ≥ dminB keeps every depth-i distance ≥ (i+1)·dminB ≥
		// bound[i]: the trace conforms to δ⁻_b by construction.
		tm = tm.Add(dminB + simtime.Duration(src.Int63n(int64(dminB))))
		trace[i] = tm
	}

	m, err := NewLearning(l)
	if err != nil {
		t.Fatal(err)
	}
	for _, ts := range trace {
		m.Learn(ts)
	}
	if err := m.FinishLearning(boundDelta); err != nil {
		t.Fatal(err)
	}
	cond := m.Condition()

	// Replay: every activation of the learning trace must conform
	// (FinishLearning cleared the trace buffer, so the replay starts
	// from a fresh run-mode monitor).
	for k, ts := range trace {
		if v := m.Check(ts); v != Conforming {
			t.Fatalf("replayed benign activation %d at %v rejected: %v (condition %v)", k, ts, v, cond.Dist)
		}
		m.Commit(ts)
	}
}
