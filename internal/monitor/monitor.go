// Package monitor implements the δ⁻-based activation-pattern monitor the
// paper uses to shape interposed interrupt handling (§5, Appendix A),
// following Neukirchner et al., "Monitoring arbitrary activation patterns
// in real-time systems" (RTSS 2012).
//
// The monitor guards the stream of *interposed* bottom-handler
// activations: the interference bound of eq. (14) holds because any two
// granted (interposed) activations are at least δ⁻ apart. It keeps the
// timestamps of the last l granted activations in a trace buffer; a new
// activation at time t conforms to the monitoring condition δ⁻[l] iff for
// every i ∈ [0, l−1] with a recorded predecessor
//
//	t − tracebuffer[i] ≥ δ⁻[i]
//
// where tracebuffer[i] is the (i+1)-th most recent grant and δ⁻[i] bounds
// the distance spanned by i+2 consecutive events. With l = 1 this
// degenerates to the minimum-distance condition dmin of §5. Checking and
// recording are split: the hypervisor Checks every foreign-slot IRQ
// (Fig. 4b, "Interposing IRQ denied?") and Commits only those it actually
// interposes — a conforming IRQ that is denied for other reasons (e.g.
// slot-end collision) consumes no budget.
//
// The monitor also supports the self-learning mode of Appendix A:
// Algorithm 1 (Learn) records the tightest δ⁻ prefix of the observed
// stream over all activations, and Algorithm 2 (FinishLearning) lifts it
// to a predefined upper bound δ⁻_b so the admitted load never exceeds the
// configured budget.
package monitor

import (
	"errors"
	"fmt"

	"repro/internal/curves"
	"repro/internal/simtime"
)

// Verdict is the monitor's decision about one activation.
type Verdict int

const (
	// Conforming: the activation satisfies the monitoring condition;
	// its bottom handler may be interposed into a foreign slot.
	Conforming Verdict = iota
	// Violation: the activation arrived too close to previous grants;
	// its bottom handler must be processed as a delayed IRQ.
	Violation
	// Learning: the monitor is still in the learning phase and makes
	// no admission decisions (delayed/direct handling applies).
	Learning
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Conforming:
		return "conforming"
	case Violation:
		return "violation"
	case Learning:
		return "learning"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Stats counts monitor decisions.
type Stats struct {
	Checked    uint64 // Check calls (foreign-slot IRQs in run mode)
	Conforming uint64
	Violations uint64
	Commits    uint64 // granted (interposed) activations
	Learned    uint64 // activations consumed by the learning phase
}

// Monitor is a δ⁻ activation monitor for one IRQ source. It is not
// safe for concurrent use; the simulation is single-threaded by design.
type Monitor struct {
	l        int
	cond     []simtime.Duration // δ⁻[l]; nil while learning
	learned  []simtime.Duration // Algorithm 1 state
	buf      []simtime.Time     // tracebuffer, most recent first
	filled   int
	learning bool
	stats    Stats
}

// New returns a run-mode monitor enforcing the given δ⁻ condition.
func New(cond *curves.Delta) *Monitor {
	return &Monitor{
		l:    cond.Len(),
		cond: append([]simtime.Duration(nil), cond.Dist...),
		buf:  make([]simtime.Time, cond.Len()),
	}
}

// NewDMin returns a run-mode monitor enforcing a minimum distance dmin
// between any two granted activations (l = 1), the condition used in the
// main evaluation (§6.1).
func NewDMin(dmin simtime.Duration) *Monitor {
	d, err := curves.NewDelta([]simtime.Duration{dmin})
	if err != nil {
		panic(err) // single non-negative entry cannot fail
	}
	return New(d)
}

// NewLearning returns a monitor in the learning phase of Appendix A with
// an l-entry trace buffer. Call FinishLearning to enter run mode.
func NewLearning(l int) (*Monitor, error) {
	if l <= 0 {
		return nil, errors.New("monitor: l must be positive")
	}
	m := &Monitor{
		l:        l,
		learned:  make([]simtime.Duration, l),
		buf:      make([]simtime.Time, l),
		learning: true,
	}
	for i := range m.learned {
		m.learned[i] = simtime.Infinity
	}
	return m, nil
}

// L returns the length of the monitoring condition.
func (m *Monitor) L() int { return m.l }

// LearningActive reports whether the monitor is still learning.
func (m *Monitor) LearningActive() bool { return m.learning }

// Stats returns a copy of the decision counters.
func (m *Monitor) Stats() Stats { return m.stats }

// Condition returns the δ⁻ condition currently enforced, or nil while
// learning.
func (m *Monitor) Condition() *curves.Delta {
	if m.cond == nil {
		return nil
	}
	return &curves.Delta{Dist: append([]simtime.Duration(nil), m.cond...)}
}

// Check evaluates the monitoring condition for an activation at time t
// without recording it. In learning mode it returns Learning.
func (m *Monitor) Check(t simtime.Time) Verdict {
	if m.learning {
		return Learning
	}
	m.stats.Checked++
	for i := 0; i < m.filled; i++ {
		if t.Sub(m.buf[i]) < m.cond[i] {
			m.stats.Violations++
			return Violation
		}
	}
	m.stats.Conforming++
	return Conforming
}

// Commit records a granted (interposed) activation at time t into the
// trace buffer. Call it only after Check returned Conforming and the
// hypervisor decided to interpose. Timestamps must be non-decreasing.
func (m *Monitor) Commit(t simtime.Time) {
	if m.learning {
		panic("monitor: Commit while learning")
	}
	m.stats.Commits++
	m.record(t)
}

// Learn processes one activation during the learning phase: Algorithm 1
// tightens the learned δ⁻ prefix against the last l activations and
// records t. Timestamps must be non-decreasing.
func (m *Monitor) Learn(t simtime.Time) {
	if !m.learning {
		panic("monitor: Learn after learning finished")
	}
	for i := 0; i < m.filled; i++ {
		if d := t.Sub(m.buf[i]); d < m.learned[i] {
			m.learned[i] = d
		}
	}
	m.stats.Learned++
	m.record(t)
}

// record right-shifts the trace buffer and stores t at index 0, exactly
// as in Algorithm 1.
func (m *Monitor) record(t simtime.Time) {
	if m.filled > 0 && t < m.buf[0] {
		panic(fmt.Sprintf("monitor: non-monotonic timestamp %v after %v", t, m.buf[0]))
	}
	copy(m.buf[1:], m.buf[:m.l-1])
	m.buf[0] = t
	if m.filled < m.l {
		m.filled++
	}
}

// FinishLearning ends the learning phase and enters run mode. Following
// Algorithm 2, every learned distance smaller than its counterpart in the
// upper bound δ⁻_b is lifted to the bound, so the admitted load never
// exceeds the budget the bound encodes. Entries never observed during
// learning (possible only for very short learning traces) fall back to
// the largest observed entry. The trace buffer is cleared: run mode
// tracks grants, and no grants have happened yet.
func (m *Monitor) FinishLearning(bound *curves.Delta) error {
	if !m.learning {
		return errors.New("monitor: not in learning mode")
	}
	if bound.Len() != m.l {
		return fmt.Errorf("monitor: bound has %d entries, want %d", bound.Len(), m.l)
	}
	cond := make([]simtime.Duration, m.l)
	// Replace never-updated entries by extending the observed prefix,
	// and enforce monotonicity of the learned prefix.
	prev := simtime.Duration(0)
	for i, d := range m.learned {
		if d == simtime.Infinity || d < prev {
			d = prev
		}
		cond[i] = d
		prev = d
	}
	// Algorithm 2.
	for i := range cond {
		if cond[i] < bound.Dist[i] {
			cond[i] = bound.Dist[i]
		}
	}
	// Lifting entries to a monotone bound preserves monotonicity, but
	// guard anyway: the condition must be a valid δ⁻.
	for i := 1; i < len(cond); i++ {
		if cond[i] < cond[i-1] {
			cond[i] = cond[i-1]
		}
	}
	m.cond = cond
	m.learning = false
	m.filled = 0
	return nil
}

// Learned returns the raw learned δ⁻ prefix (Algorithm 1 state). Entries
// never updated are simtime.Infinity. Useful for inspection and tests.
func (m *Monitor) Learned() []simtime.Duration {
	return append([]simtime.Duration(nil), m.learned...)
}

// State is a deep copy of a monitor's mutable state, for simulation
// snapshots.
type State struct {
	// cond is stored by reference: run-mode conditions are never
	// mutated in place (FinishLearning installs a fresh slice), so the
	// snapshot stays valid however the monitor proceeds.
	cond     []simtime.Duration
	learned  []simtime.Duration
	buf      []simtime.Time
	filled   int
	learning bool
	stats    Stats
}

// SaveState captures the monitor state.
func (m *Monitor) SaveState() *State {
	return &State{
		cond:     m.cond,
		learned:  append([]simtime.Duration(nil), m.learned...),
		buf:      append([]simtime.Time(nil), m.buf...),
		filled:   m.filled,
		learning: m.learning,
		stats:    m.stats,
	}
}

// RestoreState reinstates a state captured from this monitor, reusing
// the monitor's own buffers.
func (m *Monitor) RestoreState(st *State) {
	m.cond = st.cond
	copy(m.learned, st.learned)
	copy(m.buf, st.buf)
	m.filled = st.filled
	m.learning = st.learning
	m.stats = st.stats
}

// Reset clears the trace buffer and counters but keeps the condition and
// mode.
func (m *Monitor) Reset() {
	m.filled = 0
	m.stats = Stats{}
	if m.learning {
		for i := range m.learned {
			m.learned[i] = simtime.Infinity
		}
	}
}

// DataBytes returns the data-memory footprint of the monitor state in the
// reference C implementation (§6.2 reports 28 bytes for l = 1): the trace
// buffer and condition entries at 4 bytes each plus fill/index state.
// This mirrors the paper's accounting rather than Go's in-memory size.
func (m *Monitor) DataBytes() int {
	// l timestamps + l condition entries (4-byte each on ARMv5) plus
	// a fill counter and a mode/flags word and spare state.
	return 4*m.l + 4*m.l + 4 + 4 + 12
}
