package monitor

import (
	"testing"
	"testing/quick"

	"repro/internal/curves"
	"repro/internal/simtime"
)

func us(v int64) simtime.Duration { return simtime.Micros(v) }
func tt(v int64) simtime.Time     { return simtime.Time(simtime.Micros(v)) }

func TestDMinBasic(t *testing.T) {
	m := NewDMin(us(100))
	if m.L() != 1 {
		t.Fatalf("L = %d", m.L())
	}
	// First activation always conforms (empty buffer).
	if v := m.Check(tt(0)); v != Conforming {
		t.Fatalf("first check = %v", v)
	}
	m.Commit(tt(0))
	// Too close to the committed grant.
	if v := m.Check(tt(50)); v != Violation {
		t.Fatalf("close check = %v", v)
	}
	// Exactly dmin apart conforms (≥).
	if v := m.Check(tt(100)); v != Conforming {
		t.Fatalf("dmin-apart check = %v", v)
	}
	m.Commit(tt(100))
	if v := m.Check(tt(199)); v != Violation {
		t.Fatalf("check at 199 = %v", v)
	}
}

func TestCheckDoesNotConsumeBudget(t *testing.T) {
	// A denied-but-conforming IRQ (e.g. slot-end fit denial) must not
	// move the reference: only Commit records.
	m := NewDMin(us(100))
	m.Commit(tt(0))
	if m.Check(tt(150)) != Conforming {
		t.Fatal("check at 150")
	}
	// Not committed; distance still measured from t=0.
	if m.Check(tt(160)) != Conforming {
		t.Fatal("check at 160 should conform: last commit is 0")
	}
	m.Commit(tt(160))
	if m.Check(tt(200)) != Violation {
		t.Fatal("check at 200 must violate: last commit is 160")
	}
}

func TestGrantSpacingProperty(t *testing.T) {
	// The fundamental soundness property behind eq. (14): whatever the
	// arrival pattern, committed grants are at least dmin apart.
	f := func(gaps []uint16) bool {
		m := NewDMin(us(100))
		var now simtime.Time
		var lastGrant simtime.Time
		granted := false
		for _, g := range gaps {
			now = now.Add(simtime.Duration(g % 500))
			if m.Check(now) == Conforming {
				if granted && now.Sub(lastGrant) < us(100) {
					return false
				}
				m.Commit(now)
				lastGrant = now
				granted = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiEntryCondition(t *testing.T) {
	// δ⁻(2) = 10, δ⁻(3) = 50: pairs may be 10 apart but any three
	// grants must span 50.
	d, err := curves.NewDelta([]simtime.Duration{us(10), us(50)})
	if err != nil {
		t.Fatal(err)
	}
	m := New(d)
	m.Commit(tt(0))
	if m.Check(tt(10)) != Conforming {
		t.Fatal("pair at distance 10 must conform")
	}
	m.Commit(tt(10))
	// Third grant at 20: pair distance ok (10) but 3-span = 20 < 50.
	if m.Check(tt(20)) != Violation {
		t.Fatal("3-event burst must violate δ⁻(3)")
	}
	// At t=50 the 3-span constraint is met.
	if m.Check(tt(50)) != Conforming {
		t.Fatal("t=50 must conform")
	}
}

func TestMultiEntrySpacingProperty(t *testing.T) {
	// With an l-entry condition, any i+2 consecutive grants span at
	// least δ⁻[i], for all i — checked against a brute-force record of
	// all grants.
	cond, err := curves.NewDelta([]simtime.Duration{us(20), us(90), us(200)})
	if err != nil {
		t.Fatal(err)
	}
	f := func(gaps []uint16) bool {
		m := New(cond)
		var now simtime.Time
		var grants []simtime.Time
		for _, g := range gaps {
			now = now.Add(simtime.Duration(g % 800))
			if m.Check(now) == Conforming {
				m.Commit(now)
				grants = append(grants, now)
			}
		}
		for i := range grants {
			for k := 1; k <= cond.Len() && i+k < len(grants); k++ {
				if grants[i+k].Sub(grants[i]) < cond.Dist[k-1] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLearningMatchesBatchRecording(t *testing.T) {
	// Algorithm 1 incrementally must converge to the same δ⁻ prefix as
	// the batch computation over the trace.
	trace := []simtime.Time{tt(0), tt(30), tt(35), tt(90), tt(100), tt(180), tt(181), tt(260)}
	const l = 4
	m, err := NewLearning(l)
	if err != nil {
		t.Fatal(err)
	}
	for _, ts := range trace {
		m.Learn(ts)
	}
	batch, err := curves.DeltaFromTrace(trace, l)
	if err != nil {
		t.Fatal(err)
	}
	learned := m.Learned()
	for i := 0; i < l; i++ {
		if learned[i] != batch.Dist[i] {
			t.Errorf("learned[%d] = %v, batch = %v", i, learned[i], batch.Dist[i])
		}
	}
}

func TestLearningMatchesBatchProperty(t *testing.T) {
	f := func(gaps []uint16) bool {
		if len(gaps) < 3 {
			return true
		}
		if len(gaps) > 50 {
			gaps = gaps[:50]
		}
		var trace []simtime.Time
		var now simtime.Time
		for _, g := range gaps {
			now = now.Add(simtime.Duration(g%1000) + 1)
			trace = append(trace, now)
		}
		const l = 3
		m, err := NewLearning(l)
		if err != nil {
			return false
		}
		for _, ts := range trace {
			m.Learn(ts)
		}
		batch, err := curves.DeltaFromTrace(trace, l)
		if err != nil {
			return false
		}
		learned := m.Learned()
		for i := 0; i < l; i++ {
			if learned[i] == simtime.Infinity {
				// Never observed (trace shorter than i+2
				// events); the batch fallback has no raw
				// counterpart.
				continue
			}
			// Batch applies a monotonicity pass; raw learned may
			// only differ where that pass raised an entry.
			if learned[i] > batch.Dist[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFinishLearningAppliesBound(t *testing.T) {
	// Algorithm 2: learned entries below the bound are lifted.
	m, _ := NewLearning(2)
	m.Learn(tt(0))
	m.Learn(tt(10)) // learned δ⁻(2) = 10
	m.Learn(tt(25)) // learned δ⁻(3) = 25, δ⁻(2) = 10
	bound, _ := curves.NewDelta([]simtime.Duration{us(40), us(40)})
	if err := m.FinishLearning(bound); err != nil {
		t.Fatal(err)
	}
	cond := m.Condition()
	if cond.Dist[0] != us(40) || cond.Dist[1] != us(40) {
		t.Fatalf("condition = %v, want lifted to bound", cond.Dist)
	}
	if m.LearningActive() {
		t.Fatal("still learning after FinishLearning")
	}
}

func TestFinishLearningKeepsLooserLearned(t *testing.T) {
	m, _ := NewLearning(1)
	m.Learn(tt(0))
	m.Learn(tt(500)) // learned δ⁻(2) = 500
	bound, _ := curves.NewDelta([]simtime.Duration{us(100)})
	if err := m.FinishLearning(bound); err != nil {
		t.Fatal(err)
	}
	if got := m.Condition().Dist[0]; got != us(500) {
		t.Fatalf("condition = %v, want learned 500µs (bound does not bind)", got)
	}
}

func TestFinishLearningErrors(t *testing.T) {
	m := NewDMin(us(10))
	bound, _ := curves.NewDelta([]simtime.Duration{us(10)})
	if err := m.FinishLearning(bound); err == nil {
		t.Fatal("FinishLearning on run-mode monitor accepted")
	}
	lm, _ := NewLearning(2)
	if err := lm.FinishLearning(bound); err == nil {
		t.Fatal("mismatched bound length accepted")
	}
}

func TestFinishLearningUnobservedEntries(t *testing.T) {
	// Learning saw only two events: δ⁻(3..) never observed; they fall
	// back to the observed prefix and the bound.
	m, _ := NewLearning(3)
	m.Learn(tt(0))
	m.Learn(tt(100))
	bound, _ := curves.NewDelta([]simtime.Duration{0, 0, 0})
	if err := m.FinishLearning(bound); err != nil {
		t.Fatal(err)
	}
	cond := m.Condition()
	for i := 1; i < cond.Len(); i++ {
		if cond.Dist[i] < cond.Dist[i-1] {
			t.Fatalf("condition not monotone: %v", cond.Dist)
		}
	}
}

func TestLearnPanicsAfterFinish(t *testing.T) {
	m, _ := NewLearning(1)
	m.Learn(tt(0))
	bound, _ := curves.NewDelta([]simtime.Duration{0})
	if err := m.FinishLearning(bound); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Learn after FinishLearning did not panic")
		}
	}()
	m.Learn(tt(10))
}

func TestCommitPanicsWhileLearning(t *testing.T) {
	m, _ := NewLearning(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Commit while learning did not panic")
		}
	}()
	m.Commit(tt(0))
}

func TestNonMonotonicTimestampPanics(t *testing.T) {
	m := NewDMin(us(10))
	m.Commit(tt(100))
	defer func() {
		if recover() == nil {
			t.Fatal("non-monotonic Commit did not panic")
		}
	}()
	m.Commit(tt(50))
}

func TestStatsCounters(t *testing.T) {
	m := NewDMin(us(100))
	m.Check(tt(0))
	m.Commit(tt(0))
	m.Check(tt(10)) // violation
	m.Check(tt(200))
	m.Commit(tt(200))
	st := m.Stats()
	if st.Checked != 3 || st.Conforming != 2 || st.Violations != 1 || st.Commits != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestReset(t *testing.T) {
	m := NewDMin(us(100))
	m.Commit(tt(0))
	m.Check(tt(10))
	m.Reset()
	if st := m.Stats(); st.Checked != 0 || st.Commits != 0 {
		t.Fatalf("stats after reset = %+v", st)
	}
	// Buffer cleared: an early activation conforms again.
	if m.Check(tt(1)) != Conforming {
		t.Fatal("buffer not cleared by Reset")
	}
}

func TestDataBytesMatchesPaper(t *testing.T) {
	// §6.2: the monitoring scheme's data memory overhead is 28 bytes
	// (for the l = 1 evaluation setup).
	if got := NewDMin(us(1)).DataBytes(); got != 28 {
		t.Fatalf("DataBytes(l=1) = %d, want 28", got)
	}
}

func TestNewLearningValidation(t *testing.T) {
	if _, err := NewLearning(0); err == nil {
		t.Fatal("l=0 accepted")
	}
	if _, err := NewLearning(-1); err == nil {
		t.Fatal("l<0 accepted")
	}
}

func TestVerdictString(t *testing.T) {
	if Conforming.String() != "conforming" || Violation.String() != "violation" || Learning.String() != "learning" {
		t.Fatal("verdict strings")
	}
	if Verdict(99).String() == "" {
		t.Fatal("unknown verdict string empty")
	}
}

func TestConditionCopyIsIsolated(t *testing.T) {
	m := NewDMin(us(100))
	c := m.Condition()
	c.Dist[0] = us(1)
	if m.Check(tt(0)) != Conforming {
		t.Fatal("first check")
	}
	m.Commit(tt(0))
	if m.Check(tt(50)) != Violation {
		t.Fatal("mutating the returned condition affected the monitor")
	}
}
