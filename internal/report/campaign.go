// Stable JSON views of the campaign orchestrator (internal/campaign):
// the per-cell wire document and the streamed/final aggregate. Same
// contract as json.go — no maps, no interface values, fixed field
// order — plus one more: every quantity that enters the aggregate fold
// is integral (cycles, counts, sparse sketch buckets), so two
// aggregates over the same cells encode byte-identically regardless of
// merge order. The derived microsecond floats are computed from that
// integral state at encode time, never folded.
package report

import (
	"encoding/json"
	"fmt"

	"repro/internal/campaign"
	"repro/internal/simtime"
)

// EncodeCell renders a cell result as stable JSON — the byte payload
// stored under the cell's content address. The document is its own wire
// form: DecodeCell inverts it exactly, which is how the aggregation
// tier refolds stored cells after a restart.
func EncodeCell(cr *campaign.CellResult) ([]byte, error) { return encode(cr) }

// DecodeCell parses a stored cell body back into its result document.
func DecodeCell(body []byte) (*campaign.CellResult, error) {
	var cr campaign.CellResult
	if err := json.Unmarshal(body, &cr); err != nil {
		return nil, fmt.Errorf("report: decode cell: %w", err)
	}
	return &cr, nil
}

// CampaignBucketJSON is one row of the sweep table: fault×intensity for
// a chaos campaign, one scenario class for a diffuzz campaign.
type CampaignBucketJSON struct {
	Fault      string  `json:"fault"`
	Class      string  `json:"class,omitempty"`
	Intensity  float64 `json:"intensity"`
	Cells      int     `json:"cells"`
	Errors     int     `json:"errors,omitempty"`
	Violations int     `json:"violations"`
	Count      int64   `json:"count"`
	MinUs      float64 `json:"min_us"`
	MeanUs     float64 `json:"mean_us"`
	MaxUs      float64 `json:"max_us"`
	Grants     uint64  `json:"grants"`
	Denied     uint64  `json:"denied"`
	// Bound tightness (diffuzz rows): microsecond views of the integral
	// gap fold. Meaningful iff GapCount > 0.
	GapCount  int64   `json:"gap_count,omitempty"`
	MinGapUs  float64 `json:"min_gap_us,omitempty"`
	MeanGapUs float64 `json:"mean_gap_us,omitempty"`
	Invalid   int     `json:"invalid,omitempty"`
}

// CampaignReproJSON is one retained violation reproducer.
type CampaignReproJSON struct {
	Index       int     `json:"index"`
	Fault       string  `json:"fault"`
	Class       string  `json:"class,omitempty"`
	Intensity   float64 `json:"intensity"`
	Seed        uint64  `json:"seed"`
	Violation   string  `json:"violation"`
	Fingerprint string  `json:"fingerprint,omitempty"`
}

// CampaignSketchJSON is the sparse latency histogram plus the
// percentiles derived from it.
type CampaignSketchJSON struct {
	Count   uint64                  `json:"count"`
	P50Us   int64                   `json:"p50_us"`
	P90Us   int64                   `json:"p90_us"`
	P99Us   int64                   `json:"p99_us"`
	Buckets []campaign.SketchBucket `json:"buckets,omitempty"`
}

// CampaignJSON is the stable view of a campaign aggregate — the body of
// GET /v1/campaigns/{id}, each stream chunk, and the final document
// stored under the campaign's content address.
type CampaignJSON struct {
	Kind         string   `json:"kind,omitempty"`
	Classes      []string `json:"classes,omitempty"`
	Events       int      `json:"events,omitempty"`
	Faults       []string `json:"faults"`
	IntensityMin float64  `json:"intensity_min"`
	IntensityMax float64  `json:"intensity_max"`
	Steps        int      `json:"steps"`
	SeedBase     uint64   `json:"seed_base"`
	SeedCount    int      `json:"seed_count"`
	PrefixSeed   uint64   `json:"prefix_seed"`
	PrefixEvents int      `json:"prefix_events"`
	SuffixEvents int      `json:"suffix_events"`

	TotalCells int `json:"total_cells"`
	Done       int `json:"done"`
	Errors     int `json:"errors"`
	Violations int `json:"violations"`
	// Invalid counts diffuzz scenarios the analysis rejected as
	// malformed (not violations, not errors).
	Invalid int `json:"invalid,omitempty"`

	Count  int64   `json:"count"`
	MinUs  float64 `json:"min_us"`
	MeanUs float64 `json:"mean_us"`
	MaxUs  float64 `json:"max_us"`
	Grants uint64  `json:"grants"`
	Denied uint64  `json:"denied"`
	// Campaign-wide bound tightness (diffuzz campaigns).
	GapCount  int64                `json:"gap_count,omitempty"`
	MinGapUs  float64              `json:"min_gap_us,omitempty"`
	MeanGapUs float64              `json:"mean_gap_us,omitempty"`
	Latency   CampaignSketchJSON   `json:"latency"`
	Sweep     []CampaignBucketJSON `json:"sweep"`
	Repros    []CampaignReproJSON  `json:"repros,omitempty"`
}

// usF converts integral cycles to the view's microsecond float.
func usF(cycles int64) float64 { return simtime.Duration(cycles).MicrosF() }

// NewCampaignJSON converts an aggregate. The view is a pure function of
// the aggregate's state.
func NewCampaignJSON(a *campaign.Aggregate) *CampaignJSON {
	out := &CampaignJSON{
		Kind:         a.Spec.Kind,
		Classes:      a.Spec.Classes,
		Events:       a.Spec.Events,
		Faults:       a.Spec.Faults,
		IntensityMin: a.Spec.Intensities.Min,
		IntensityMax: a.Spec.Intensities.Max,
		Steps:        a.Spec.Intensities.Steps,
		SeedBase:     a.Spec.Seeds.Base,
		SeedCount:    a.Spec.Seeds.Count,
		PrefixSeed:   a.Spec.PrefixSeed,
		PrefixEvents: a.Spec.PrefixEvents,
		SuffixEvents: a.Spec.SuffixEvents,
		TotalCells:   a.TotalCells,
		Done:         a.Done,
		Errors:       a.Errors,
		Violations:   a.Violations,
		Invalid:      a.Invalid,
		Count:        a.Count,
		MinUs:        usF(a.MinCycles),
		MeanUs:       usF(a.MeanCycles()),
		MaxUs:        usF(a.MaxCycles),
		Grants:       a.Grants,
		Denied:       a.Denied,
		GapCount:     a.GapCount,
		MinGapUs:     usF(a.MinGapCycles),
		MeanGapUs:    usF(a.MeanGapCycles()),
		Latency: CampaignSketchJSON{
			Count:   a.Latency.Count(),
			P50Us:   a.Latency.Quantile(0.50),
			P90Us:   a.Latency.Quantile(0.90),
			P99Us:   a.Latency.Quantile(0.99),
			Buckets: a.Latency.Pairs(),
		},
	}
	for i := range a.Buckets {
		b := &a.Buckets[i]
		out.Sweep = append(out.Sweep, CampaignBucketJSON{
			Fault:      b.Fault,
			Class:      b.Class,
			Intensity:  b.Intensity,
			Cells:      b.Cells,
			Errors:     b.Errors,
			Violations: b.Violations,
			Count:      b.Count,
			MinUs:      usF(b.MinCycles),
			MeanUs:     usF(b.MeanCycles()),
			MaxUs:      usF(b.MaxCycles),
			Grants:     b.Grants,
			Denied:     b.Denied,
			GapCount:   b.GapCount,
			MinGapUs:   usF(b.MinGapCycles),
			MeanGapUs:  usF(b.MeanGapCycles()),
			Invalid:    b.Invalid,
		})
	}
	for _, r := range a.Repros {
		out.Repros = append(out.Repros, CampaignReproJSON{
			Index:       r.Index,
			Fault:       r.Fault,
			Class:       r.Class,
			Intensity:   r.Intensity,
			Seed:        r.Seed,
			Violation:   r.Violation,
			Fingerprint: r.Fingerprint,
		})
	}
	return out
}

// EncodeCampaign renders a campaign aggregate as stable JSON. Two
// aggregates holding identical state — a streamed run, a sequential
// in-process fold, a SIGKILLed-and-resumed run — encode to identical
// bytes; the crashtest oracle and campaignsmoke.sh compare exactly
// these.
func EncodeCampaign(a *campaign.Aggregate) ([]byte, error) { return encode(NewCampaignJSON(a)) }
