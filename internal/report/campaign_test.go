package report

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/campaign"
)

func campaignSpec() campaign.Spec {
	return campaign.Spec{
		Faults:       []string{"babbling-idiot", "stuck-line"},
		Intensities:  campaign.IntensityRange{Min: 0.25, Max: 1.0, Steps: 2},
		Seeds:        campaign.SeedRange{Base: 1, Count: 2},
		PrefixEvents: 60,
		SuffixEvents: 25,
	}
}

func foldCampaign(t *testing.T, workers int) *campaign.Aggregate {
	t.Helper()
	sp := campaignSpec()
	if err := sp.Normalize(); err != nil {
		t.Fatal(err)
	}
	agg, err := campaign.Fold(context.Background(), sp, workers)
	if err != nil {
		t.Fatal(err)
	}
	return agg
}

// Golden-pin the campaign aggregate document: the full 8-cell sweep
// over two fault models × two intensities × two seeds.
func TestEncodeCampaignGolden(t *testing.T) {
	buf, err := EncodeCampaign(foldCampaign(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "campaign.json", buf)
}

// Golden-pin the per-cell wire document — the byte payload stored under
// the cell's content address — and check DecodeCell inverts it exactly.
func TestEncodeCellGoldenRoundTrip(t *testing.T) {
	sp := campaignSpec()
	if err := sp.Normalize(); err != nil {
		t.Fatal(err)
	}
	cells := sp.Expand()
	res, err := campaign.RunCellCold(sp.CellSpec(cells[0]))
	if err != nil {
		t.Fatal(err)
	}
	buf, err := EncodeCell(res)
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "campaign_cell.json", buf)

	back, err := DecodeCell(buf)
	if err != nil {
		t.Fatal(err)
	}
	buf2, err := EncodeCell(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, buf2) {
		t.Fatal("DecodeCell does not invert EncodeCell byte-for-byte")
	}
}

// The encoded aggregate must not depend on fold parallelism: one
// worker folds in generation order, four workers fold in completion
// order, and the commutative-monoid merge makes both encode to the
// same bytes.
func TestEncodeCampaignFoldOrderInvariant(t *testing.T) {
	a, err := EncodeCampaign(foldCampaign(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeCampaign(foldCampaign(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("campaign encoding depends on fold order")
	}
}
