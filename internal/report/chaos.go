// Stable JSON view of a chaos campaign (internal/faults). Same
// contract as json.go: no maps, no interface values, durations in
// microseconds, golden-pinned.
package report

import (
	"repro/internal/faults"
	"repro/internal/hv"
)

// ChaosViolationJSON mirrors hv.OracleViolation.
type ChaosViolationJSON struct {
	Invariant  string  `json:"invariant"`
	Partition  int     `json:"partition"`
	Source     int     `json:"source"`
	Seq        uint64  `json:"seq"`
	AtUs       float64 `json:"at_us"`
	MeasuredUs float64 `json:"measured_us"`
	BoundUs    float64 `json:"bound_us"`
	Detail     string  `json:"detail"`
}

func newChaosViolationJSON(v hv.OracleViolation) ChaosViolationJSON {
	return ChaosViolationJSON{
		Invariant:  v.Invariant,
		Partition:  v.Partition,
		Source:     v.Source,
		Seq:        v.Seq,
		AtUs:       v.At.MicrosF(),
		MeasuredUs: v.Measured.MicrosF(),
		BoundUs:    v.Bound.MicrosF(),
		Detail:     v.Detail,
	}
}

// ChaosReproJSON mirrors faults.Reproducer — everything needed to
// replay a failed run.
type ChaosReproJSON struct {
	Fingerprint    string             `json:"fingerprint"`
	Seed           uint64             `json:"seed"`
	StreamID       uint64             `json:"stream_id"`
	Fault          string             `json:"fault"`
	Intensity      float64            `json:"intensity"`
	Events         int                `json:"events"`
	DisableMonitor bool               `json:"disable_monitor"`
	First          ChaosViolationJSON `json:"first"`
	Replay         string             `json:"replay"`
}

// ChaosRunJSON is the stable view of one campaign cell.
type ChaosRunJSON struct {
	Fault                string               `json:"fault"`
	Intensity            float64              `json:"intensity"`
	StreamID             uint64               `json:"stream_id"`
	AttackerArrivals     int                  `json:"attacker_arrivals"`
	Grants               uint64               `json:"grants"`
	DeniedViolation      uint64               `json:"denied_violation"`
	InterferenceUs       float64              `json:"interference_us"`
	BudgetUs             float64              `json:"budget_us"`
	VictimMaxLatencyUs   float64              `json:"victim_max_latency_us"`
	VictimLatencyBoundUs float64              `json:"victim_latency_bound_us"`
	BoundNote            string               `json:"bound_note,omitempty"`
	OK                   bool                 `json:"ok"`
	Violations           []ChaosViolationJSON `json:"violations,omitempty"`
	Repro                *ChaosReproJSON      `json:"repro,omitempty"`
}

// ChaosJSON is the stable view of a whole campaign.
type ChaosJSON struct {
	DisableMonitor bool           `json:"disable_monitor"`
	Events         int            `json:"events"`
	Seed           uint64         `json:"seed"`
	FailedRuns     int            `json:"failed_runs"`
	Runs           []ChaosRunJSON `json:"runs"`
}

// NewChaosJSON converts a faults.Result.
func NewChaosJSON(r *faults.Result) *ChaosJSON {
	out := &ChaosJSON{
		DisableMonitor: r.DisableMonitor,
		Events:         r.Events,
		Seed:           r.Seed,
		FailedRuns:     r.FailedRuns,
	}
	for _, run := range r.Runs {
		rj := ChaosRunJSON{
			Fault:                run.Fault,
			Intensity:            run.Intensity,
			StreamID:             run.StreamID,
			AttackerArrivals:     run.AttackerArrivals,
			Grants:               run.Grants,
			DeniedViolation:      run.DeniedViolation,
			InterferenceUs:       run.Interference.MicrosF(),
			BudgetUs:             run.Budget.MicrosF(),
			VictimMaxLatencyUs:   run.VictimMaxLatency.MicrosF(),
			VictimLatencyBoundUs: run.VictimLatencyBound.MicrosF(),
			BoundNote:            run.BoundNote,
			OK:                   run.Oracle.OK(),
		}
		for _, v := range run.Oracle.Violations {
			rj.Violations = append(rj.Violations, newChaosViolationJSON(v))
		}
		if run.Repro != nil {
			rj.Repro = &ChaosReproJSON{
				Fingerprint:    run.Repro.Fingerprint,
				Seed:           run.Repro.Seed,
				StreamID:       run.Repro.StreamID,
				Fault:          run.Repro.Fault,
				Intensity:      run.Repro.Intensity,
				Events:         run.Repro.Events,
				DisableMonitor: run.Repro.DisableMonitor,
				First:          newChaosViolationJSON(run.Repro.First),
				Replay:         run.Repro.String(),
			}
		}
		out.Runs = append(out.Runs, rj)
	}
	return out
}

// EncodeChaos renders a chaos campaign result as stable JSON.
func EncodeChaos(r *faults.Result) ([]byte, error) { return encode(NewChaosJSON(r)) }
