package report

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/faults"
)

func chaosResult(t *testing.T, disable bool) *faults.Result {
	t.Helper()
	cfg := faults.Config{
		Faults:         []string{"babbling-idiot"},
		Intensities:    []float64{1.0},
		Events:         120,
		Seed:           1,
		DisableMonitor: disable,
	}
	res, err := faults.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// Golden-pin both campaign shapes: a clean monitored run and an
// ablated run carrying violations and a reproducer.
func TestEncodeChaosGolden(t *testing.T) {
	buf, err := EncodeChaos(chaosResult(t, false))
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "chaos.json", buf)

	buf, err = EncodeChaos(chaosResult(t, true))
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "chaos_ablation.json", buf)
}

func TestEncodeChaosDeterministic(t *testing.T) {
	a, err := EncodeChaos(chaosResult(t, true))
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeChaos(chaosResult(t, true))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("chaos encoding not deterministic")
	}
}
