// Stable JSON encodings of simulation and experiment results.
//
// The serve daemon's content-addressed cache stores *encoded bodies*
// and must hand out byte-identical responses for cache hits and fresh
// computations of the same scenario. Go's encoding/json is
// deterministic for struct values (fixed field order, shortest float
// representation), so these view types — no maps, no interface values
// — make the encoding stable by construction. Changing a view type is
// a serialization change; the golden-file tests pin the output so such
// changes are always deliberate.
//
// All durations are reported in microseconds (the paper's unit),
// counts verbatim.
package report

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/tracerec"
)

// SummaryJSON mirrors tracerec.Summary.
type SummaryJSON struct {
	Count            int     `json:"count"`
	Direct           int     `json:"direct"`
	Interposed       int     `json:"interposed"`
	Delayed          int     `json:"delayed"`
	MeanUs           float64 `json:"mean_us"`
	MinUs            float64 `json:"min_us"`
	MaxUs            float64 `json:"max_us"`
	P50Us            float64 `json:"p50_us"`
	P95Us            float64 `json:"p95_us"`
	P99Us            float64 `json:"p99_us"`
	MeanDirectUs     float64 `json:"mean_direct_us"`
	MeanInterposedUs float64 `json:"mean_interposed_us"`
	MeanDelayedUs    float64 `json:"mean_delayed_us"`
}

// NewSummaryJSON converts a tracerec.Summary.
func NewSummaryJSON(s tracerec.Summary) SummaryJSON {
	return SummaryJSON{
		Count:            s.Count,
		Direct:           s.ByMode[tracerec.Direct],
		Interposed:       s.ByMode[tracerec.Interposed],
		Delayed:          s.ByMode[tracerec.Delayed],
		MeanUs:           s.Mean.MicrosF(),
		MinUs:            s.Min.MicrosF(),
		MaxUs:            s.Max.MicrosF(),
		P50Us:            s.P50.MicrosF(),
		P95Us:            s.P95.MicrosF(),
		P99Us:            s.P99.MicrosF(),
		MeanDirectUs:     s.MeanDirct.MicrosF(),
		MeanInterposedUs: s.MeanIntp.MicrosF(),
		MeanDelayedUs:    s.MeanDelay.MicrosF(),
	}
}

// HistogramJSON mirrors tracerec.Histogram with per-mode splits.
type HistogramJSON struct {
	BinWidthUs float64 `json:"bin_width_us"`
	Bins       []int   `json:"bins"`
	Direct     []int   `json:"direct"`
	Interposed []int   `json:"interposed"`
	Delayed    []int   `json:"delayed"`
	Overflow   int     `json:"overflow"`
	Total      int     `json:"total"`
}

// NewHistogramJSON converts a tracerec.Histogram.
func NewHistogramJSON(h *tracerec.Histogram) *HistogramJSON {
	if h == nil {
		return nil
	}
	out := &HistogramJSON{
		BinWidthUs: h.BinWidth.MicrosF(),
		Bins:       h.Bins,
		Direct:     make([]int, len(h.ByMode)),
		Interposed: make([]int, len(h.ByMode)),
		Delayed:    make([]int, len(h.ByMode)),
		Overflow:   h.Overflow,
		Total:      h.Total,
	}
	for i, m := range h.ByMode {
		out.Direct[i] = m[tracerec.Direct]
		out.Interposed[i] = m[tracerec.Interposed]
		out.Delayed[i] = m[tracerec.Delayed]
	}
	return out
}

// PartitionJSON mirrors core.PartitionReport.
type PartitionJSON struct {
	Name               string  `json:"name"`
	SlotUs             float64 `json:"slot_us"`
	GuestTimeUs        float64 `json:"guest_time_us"`
	BHTimeUs           float64 `json:"bh_time_us"`
	StolenInterposedUs float64 `json:"stolen_interposed_us"`
	StolenTopUs        float64 `json:"stolen_top_us"`
	InterposedHits     uint64  `json:"interposed_hits"`
}

// MonitorJSON mirrors monitor.Stats.
type MonitorJSON struct {
	Checked    uint64 `json:"checked"`
	Conforming uint64 `json:"conforming"`
	Violations uint64 `json:"violations"`
	Commits    uint64 `json:"commits"`
	Learned    uint64 `json:"learned"`
}

// SourceJSON mirrors core.SourceReport.
type SourceJSON struct {
	Name    string       `json:"name"`
	Raised  uint64       `json:"raised"`
	Lost    uint64       `json:"lost"`
	Monitor *MonitorJSON `json:"monitor,omitempty"`
}

// StatsJSON mirrors hv.Stats.
type StatsJSON struct {
	Arrivals         uint64  `json:"arrivals"`
	LostIRQs         uint64  `json:"lost_irqs"`
	TopHandlers      uint64  `json:"top_handlers"`
	CtxSwitches      uint64  `json:"ctx_switches"`
	TDMASwitches     uint64  `json:"tdma_switches"`
	InterposedGrants uint64  `json:"interposed_grants"`
	SplitGrants      uint64  `json:"split_grants"`
	ResumedGrants    uint64  `json:"resumed_grants"`
	BudgetCuts       uint64  `json:"budget_cuts"`
	DeniedViolation  uint64  `json:"denied_violation"`
	DeniedFit        uint64  `json:"denied_fit"`
	DeniedBusy       uint64  `json:"denied_busy"`
	DeniedLearning   uint64  `json:"denied_learning"`
	DeniedPending    uint64  `json:"denied_pending"`
	DeniedNoMonitor  uint64  `json:"denied_no_monitor"`
	TopTimeUs        float64 `json:"top_time_us"`
	MonitorTimeUs    float64 `json:"monitor_time_us"`
	SchedTimeUs      float64 `json:"sched_time_us"`
	CtxTimeUs        float64 `json:"ctx_time_us"`
	BHTimeUs         float64 `json:"bh_time_us"`
	GuestTimeUs      float64 `json:"guest_time_us"`
}

// ResultJSON is the stable view of one core.Result. The raw record log
// is summarised (summary + per-partition/source reports), not dumped:
// result bodies stay figure-sized, not trace-sized.
type ResultJSON struct {
	DurationUs float64         `json:"duration_us"`
	Summary    SummaryJSON     `json:"summary"`
	Partitions []PartitionJSON `json:"partitions"`
	Sources    []SourceJSON    `json:"sources"`
	Stats      StatsJSON       `json:"stats"`
}

// NewResultJSON converts a core.Result.
func NewResultJSON(res *core.Result) *ResultJSON {
	out := &ResultJSON{
		DurationUs: res.Duration.MicrosF(),
		Summary:    NewSummaryJSON(res.Summary),
		Stats: StatsJSON{
			Arrivals:         res.Stats.Arrivals,
			LostIRQs:         res.Stats.LostIRQs,
			TopHandlers:      res.Stats.TopHandlers,
			CtxSwitches:      res.Stats.CtxSwitches,
			TDMASwitches:     res.Stats.TDMASwitches,
			InterposedGrants: res.Stats.InterposedGrants,
			SplitGrants:      res.Stats.SplitGrants,
			ResumedGrants:    res.Stats.ResumedGrants,
			BudgetCuts:       res.Stats.BudgetCuts,
			DeniedViolation:  res.Stats.DeniedViolation,
			DeniedFit:        res.Stats.DeniedFit,
			DeniedBusy:       res.Stats.DeniedBusy,
			DeniedLearning:   res.Stats.DeniedLearning,
			DeniedPending:    res.Stats.DeniedPending,
			DeniedNoMonitor:  res.Stats.DeniedNoMonitor,
			TopTimeUs:        res.Stats.TopTime.MicrosF(),
			MonitorTimeUs:    res.Stats.MonitorTime.MicrosF(),
			SchedTimeUs:      res.Stats.SchedTime.MicrosF(),
			CtxTimeUs:        res.Stats.CtxTime.MicrosF(),
			BHTimeUs:         res.Stats.BHTime.MicrosF(),
			GuestTimeUs:      res.Stats.GuestTime.MicrosF(),
		},
	}
	for _, p := range res.Partitions {
		out.Partitions = append(out.Partitions, PartitionJSON{
			Name:               p.Name,
			SlotUs:             p.Slot.MicrosF(),
			GuestTimeUs:        p.GuestTime.MicrosF(),
			BHTimeUs:           p.BHTime.MicrosF(),
			StolenInterposedUs: p.StolenInterposed.MicrosF(),
			StolenTopUs:        p.StolenTop.MicrosF(),
			InterposedHits:     p.InterposedHits,
		})
	}
	for _, s := range res.Sources {
		sj := SourceJSON{Name: s.Name, Raised: s.Raised, Lost: s.Lost}
		if s.Monitor != nil {
			sj.Monitor = &MonitorJSON{
				Checked:    s.Monitor.Checked,
				Conforming: s.Monitor.Conforming,
				Violations: s.Monitor.Violations,
				Commits:    s.Monitor.Commits,
				Learned:    s.Monitor.Learned,
			}
		}
		out.Sources = append(out.Sources, sj)
	}
	return out
}

// Fig6LoadJSON is one interrupt load of a Fig. 6 run.
type Fig6LoadJSON struct {
	Load     float64     `json:"load"`
	LambdaUs float64     `json:"lambda_us"`
	Summary  SummaryJSON `json:"summary"`
}

// Fig6JSON is the stable view of one Fig. 6 sub-figure.
type Fig6JSON struct {
	Variant   string         `json:"variant"`
	PerLoad   []Fig6LoadJSON `json:"per_load"`
	Summary   SummaryJSON    `json:"summary"`
	Histogram *HistogramJSON `json:"histogram"`
}

// NewFig6JSON converts an experiments.Fig6Result.
func NewFig6JSON(r *experiments.Fig6Result) *Fig6JSON {
	out := &Fig6JSON{
		Variant:   string(r.Variant),
		Summary:   NewSummaryJSON(r.Summary),
		Histogram: NewHistogramJSON(r.Histogram),
	}
	for _, pl := range r.PerLoad {
		out.PerLoad = append(out.PerLoad, Fig6LoadJSON{
			Load:     pl.Load,
			LambdaUs: pl.Lambda.MicrosF(),
			Summary:  NewSummaryJSON(pl.Summary),
		})
	}
	return out
}

// Fig7GraphJSON is one bound of the Fig. 7 experiment.
type Fig7GraphJSON struct {
	LoadFraction float64     `json:"load_fraction"`
	LearnAvgUs   float64     `json:"learn_avg_us"`
	RunAvgUs     float64     `json:"run_avg_us"`
	Summary      SummaryJSON `json:"summary"`
}

// Fig7JSON is the stable view of the Appendix A experiment.
type Fig7JSON struct {
	TraceEvents int             `json:"trace_events"`
	LearnEvents int             `json:"learn_events"`
	RecordedUs  []float64       `json:"recorded_us"`
	Graphs      []Fig7GraphJSON `json:"graphs"`
}

// NewFig7JSON converts an experiments.Fig7Result.
func NewFig7JSON(r *experiments.Fig7Result) *Fig7JSON {
	out := &Fig7JSON{
		TraceEvents: len(r.Trace),
		LearnEvents: r.LearnEvents,
	}
	for _, d := range r.Recorded.Dist {
		out.RecordedUs = append(out.RecordedUs, d.MicrosF())
	}
	for _, g := range r.Graphs {
		out.Graphs = append(out.Graphs, Fig7GraphJSON{
			LoadFraction: g.LoadFraction,
			LearnAvgUs:   g.LearnAvg,
			RunAvgUs:     g.RunAvg,
			Summary:      NewSummaryJSON(g.Result.Summary),
		})
	}
	return out
}

// OverheadLoadJSON is one load of the §6.2 context-switch comparison.
type OverheadLoadJSON struct {
	Load             float64 `json:"load"`
	LambdaUs         float64 `json:"lambda_us"`
	CtxBaseline      uint64  `json:"ctx_baseline"`
	CtxMonitored     uint64  `json:"ctx_monitored"`
	IncreasePct      float64 `json:"increase_pct"`
	Grants           uint64  `json:"grants"`
	MonitorTimeUs    float64 `json:"monitor_time_us"`
	SchedTimeUs      float64 `json:"sched_time_us"`
	MonitorTimeShare float64 `json:"monitor_time_share"`
	InterposedPerSec float64 `json:"interposed_per_sec"`
	DurationUs       float64 `json:"duration_us"`
}

// OverheadJSON is the stable view of the §6.2 table.
type OverheadJSON struct {
	CodeBytesTotal       int                `json:"code_bytes_total"`
	CodeBytesScheduler   int                `json:"code_bytes_scheduler"`
	CodeBytesTopHandler  int                `json:"code_bytes_top_handler"`
	CodeBytesMonitor     int                `json:"code_bytes_monitor"`
	DataBytesMonitorL1   int                `json:"data_bytes_monitor_l1"`
	MonitorInstr         int                `json:"monitor_instr"`
	SchedInstr           int                `json:"sched_instr"`
	CtxSwitchInstr       int                `json:"ctx_switch_instr"`
	CtxWritebackCycles   int                `json:"ctx_writeback_cycles"`
	CMonUs               float64            `json:"c_mon_us"`
	CSchedUs             float64            `json:"c_sched_us"`
	CCtxUs               float64            `json:"c_ctx_us"`
	EffectiveBHUs        float64            `json:"effective_bh_us"`
	InterposedOverheadUs float64            `json:"interposed_overhead_us"`
	PerLoad              []OverheadLoadJSON `json:"per_load"`
	CumCtxBaseline       uint64             `json:"cum_ctx_baseline"`
	CumCtxMonitored      uint64             `json:"cum_ctx_monitored"`
	CumIncreasePct       float64            `json:"cum_increase_pct"`
}

// NewOverheadJSON converts an experiments.OverheadResult.
func NewOverheadJSON(r *experiments.OverheadResult) *OverheadJSON {
	out := &OverheadJSON{
		CodeBytesTotal:       r.CodeBytesTotal,
		CodeBytesScheduler:   r.CodeBytesScheduler,
		CodeBytesTopHandler:  r.CodeBytesTopHandler,
		CodeBytesMonitor:     r.CodeBytesMonitor,
		DataBytesMonitorL1:   r.DataBytesMonitorL1,
		MonitorInstr:         r.MonitorInstr,
		SchedInstr:           r.SchedInstr,
		CtxSwitchInstr:       r.CtxSwitchInstr,
		CtxWritebackCycles:   r.CtxWritebackCycles,
		CMonUs:               r.Costs.Monitor.MicrosF(),
		CSchedUs:             r.Costs.Sched.MicrosF(),
		CCtxUs:               r.Costs.CtxSwitch.MicrosF(),
		EffectiveBHUs:        r.EffectiveBH.MicrosF(),
		InterposedOverheadUs: r.InterposedOverhead.MicrosF(),
		CumCtxBaseline:       r.CumCtxBaseline,
		CumCtxMonitored:      r.CumCtxMonitored,
		CumIncreasePct:       r.CumIncreasePct,
	}
	for _, ol := range r.PerLoad {
		out.PerLoad = append(out.PerLoad, OverheadLoadJSON{
			Load:             ol.Load,
			LambdaUs:         ol.Lambda.MicrosF(),
			CtxBaseline:      ol.CtxBaseline,
			CtxMonitored:     ol.CtxMonitored,
			IncreasePct:      ol.IncreasePct,
			Grants:           ol.Grants,
			MonitorTimeUs:    ol.MonitorTime.MicrosF(),
			SchedTimeUs:      ol.SchedTime.MicrosF(),
			MonitorTimeShare: ol.MonitorTimeShare,
			InterposedPerSec: ol.InterposedPerSec,
			DurationUs:       ol.SimulatedDuration.MicrosF(),
		})
	}
	return out
}

// encode marshals a view with a trailing newline. Indented output so
// curl users can read bodies without a JSON formatter; still stable.
func encode(v any) ([]byte, error) {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("report: encode: %w", err)
	}
	return append(buf, '\n'), nil
}

// EncodeResult renders a core.Result as stable JSON.
func EncodeResult(res *core.Result) ([]byte, error) { return encode(NewResultJSON(res)) }

// EncodeFig6 renders a Fig. 6 result as stable JSON.
func EncodeFig6(r *experiments.Fig6Result) ([]byte, error) { return encode(NewFig6JSON(r)) }

// EncodeFig7 renders a Fig. 7 result as stable JSON.
func EncodeFig7(r *experiments.Fig7Result) ([]byte, error) { return encode(NewFig7JSON(r)) }

// EncodeOverhead renders a §6.2 overhead result as stable JSON.
func EncodeOverhead(r *experiments.OverheadResult) ([]byte, error) { return encode(NewOverheadJSON(r)) }

// DecodeResult parses EncodeResult output; together they round-trip
// byte-identically (the golden test pins this).
func DecodeResult(data []byte) (*ResultJSON, error) {
	var out ResultJSON
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&out); err != nil {
		return nil, fmt.Errorf("report: decode: %w", err)
	}
	return &out, nil
}
