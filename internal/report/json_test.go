package report

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiments"
)

var update = flag.Bool("update", false, "rewrite golden files")

// golden compares got against testdata/<name>, rewriting it under
// -update. Serialization drift — a renamed field, a float formatting
// change — shows up as a diff here before it can poison the serve
// daemon's content-addressed cache.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run `go test ./internal/report -update` after intentional changes): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file; diff the output or rerun with -update if intentional.\ngot:\n%s", name, got)
	}
}

// smallCfg keeps the golden experiments fast while exercising every
// encoder field (monitored mode, histograms, per-load slices).
func smallCfg() experiments.Fig6Config {
	cfg := experiments.DefaultFig6()
	cfg.EventsPerLoad = 300
	cfg.Workers = 1
	return cfg
}

func TestEncodeFig6Golden(t *testing.T) {
	r, err := experiments.Fig6(experiments.Fig6b, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	buf, err := EncodeFig6(r)
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "fig6b.json", buf)
}

func TestEncodeFig7Golden(t *testing.T) {
	cfg := experiments.DefaultFig7()
	cfg.ECU.Events = 800
	cfg.Workers = 1
	r, err := experiments.Fig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := EncodeFig7(r)
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "fig7.json", buf)
}

func TestEncodeOverheadGolden(t *testing.T) {
	r, err := experiments.Overhead(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	buf, err := EncodeOverhead(r)
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "overhead.json", buf)
}

func TestEncodeResultGolden(t *testing.T) {
	r, err := experiments.Fig6(experiments.Fig6b, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	buf, err := EncodeResult(r.PerLoad[0].Result)
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "result.json", buf)
}

// TestEncodeDeterministic: two encodings of independently computed but
// identical results are byte-identical — the property the cache's
// "hit equals fresh" contract rests on.
func TestEncodeDeterministic(t *testing.T) {
	a, err := experiments.Fig6(experiments.Fig6c, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := experiments.Fig6(experiments.Fig6c, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	bufA, err := EncodeFig6(a)
	if err != nil {
		t.Fatal(err)
	}
	bufB, err := EncodeFig6(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA, bufB) {
		t.Fatal("independent runs of the same experiment encode differently")
	}
}

func TestDecodeResultRoundTrip(t *testing.T) {
	r, err := experiments.Fig6(experiments.Fig6a, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	buf, err := EncodeResult(r.PerLoad[0].Result)
	if err != nil {
		t.Fatal(err)
	}
	view, err := DecodeResult(buf)
	if err != nil {
		t.Fatal(err)
	}
	re, err := encode(view)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, re) {
		t.Fatal("decode→encode is not the identity")
	}
	if _, err := DecodeResult([]byte(`{"duration_us": 1, "bogus": true}`)); err == nil {
		t.Fatal("DecodeResult accepted unknown field")
	}
}
