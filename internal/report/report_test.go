package report

import (
	"strings"
	"testing"
)

func TestGenerateReducedReport(t *testing.T) {
	var sb strings.Builder
	opts := Reduced()
	opts.Fig6Events = 400
	opts.Fig7Events = 1200
	if err := Generate(&sb, opts); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# Reproduction report",
		"## Figure 6",
		"Figure 6a",
		"Figure 6b",
		"Figure 6c",
		"## Figure 7",
		"## §6.2",
		"## Worst-case latency bounds",
		"C_sched",
		"| Quantity | Paper | Measured |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Every table row has three cells.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "| ") && !strings.HasPrefix(line, "|---") {
			if got := strings.Count(line, "|"); got != 4 {
				t.Errorf("malformed table row: %q", line)
			}
		}
	}
}

func TestOptionScales(t *testing.T) {
	d := Defaults()
	if d.Fig6Events != 5000 || d.Fig7Events != 11000 {
		t.Fatalf("defaults = %+v", d)
	}
	r := Reduced()
	if r.Fig6Events >= d.Fig6Events || r.Fig7Events >= d.Fig7Events {
		t.Fatal("reduced options not smaller")
	}
}
