// Package rng provides a small, fully deterministic pseudo-random number
// generator for workload generation.
//
// The paper (§6.1) pre-generates all interarrival distances before running
// an experiment so that drawing random numbers adds no overhead inside the
// top handler; this package fills the same role for the simulation. A
// self-contained PCG-XSH-RR generator is used instead of math/rand so that
// generated workloads are stable across Go releases — experiment outputs
// are part of the reproduction and must not drift with the standard
// library's generator.
package rng

import "math"

// multiplier and the default increment of the PCG32 reference
// implementation (O'Neill, 2014).
const (
	pcgMult = 6364136223846793005
	pcgInc  = 1442695040888963407
)

// Source is a deterministic PCG-XSH-RR 64/32 random number generator.
// The zero value is not ready for use; construct with New.
type Source struct {
	state uint64
	inc   uint64
}

// New returns a Source seeded with seed. Two sources with the same seed
// produce identical streams.
func New(seed uint64) *Source {
	s := &Source{inc: pcgInc}
	s.state = 0
	s.next()
	s.state += seed
	s.next()
	return s
}

// NewStream returns a Source with an independent stream selected by id,
// so that multiple IRQ sources can draw from uncorrelated sequences
// derived from one experiment seed.
func NewStream(seed, id uint64) *Source {
	s := &Source{inc: (id << 1) | 1}
	s.state = 0
	s.next()
	s.state += seed
	s.next()
	return s
}

func (s *Source) next() uint32 {
	old := s.state
	s.state = old*pcgMult + s.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint32 returns a uniformly distributed 32-bit value.
func (s *Source) Uint32() uint32 { return s.next() }

// Uint64 returns a uniformly distributed 64-bit value.
func (s *Source) Uint64() uint64 {
	return uint64(s.next())<<32 | uint64(s.next())
}

// Float64 returns a uniformly distributed value in [0, 1).
func (s *Source) Float64() float64 {
	// 53 random bits, the full precision of a float64 mantissa.
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniformly distributed value in [0, n). It panics if
// n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Int63n returns a uniformly distributed value in [0, n). It panics if
// n <= 0.
func (s *Source) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive n")
	}
	return int64(s.Uint64() % uint64(n))
}

// Exp returns an exponentially distributed value with the given mean
// (i.e. rate 1/mean). The paper's first two experiments draw interarrival
// distances from exactly this distribution (§6.1).
func (s *Source) Exp(mean float64) float64 {
	// Inverse transform sampling; guard against log(0).
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return -mean * math.Log(u)
}

// Norm returns a normally distributed value with the given mean and
// standard deviation, via the Box-Muller transform.
func (s *Source) Norm(mean, stddev float64) float64 {
	u1 := s.Float64()
	for u1 == 0 {
		u1 = s.Float64()
	}
	u2 := s.Float64()
	r := math.Sqrt(-2 * math.Log(u1))
	return mean + stddev*r*math.Cos(2*math.Pi*u2)
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
