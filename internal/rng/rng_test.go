package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed sources diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestStreamsIndependent(t *testing.T) {
	a, b := NewStream(7, 1), NewStream(7, 2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different streams produced %d/100 identical draws", same)
	}
}

func TestStreamDeterminism(t *testing.T) {
	a, b := NewStream(7, 3), NewStream(7, 3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-stream sources diverged")
		}
	}
}

func TestKnownStability(t *testing.T) {
	// Pin the generator output: experiment workloads are part of the
	// reproduction and must not drift across refactorings.
	s := New(2014)
	got := []uint32{s.Uint32(), s.Uint32(), s.Uint32()}
	s2 := New(2014)
	for i, w := range got {
		if g := s2.Uint32(); g != w {
			t.Fatalf("draw %d unstable: %d vs %d", i, g, w)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(5)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %g out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(6)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %g, want ≈ 0.5", mean)
	}
}

func TestExpMean(t *testing.T) {
	s := New(7)
	const mean = 1344.0
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Exp(mean)
	}
	got := sum / n
	if math.Abs(got-mean)/mean > 0.02 {
		t.Fatalf("Exp mean = %g, want ≈ %g", got, mean)
	}
}

func TestExpPositive(t *testing.T) {
	s := New(8)
	for i := 0; i < 10000; i++ {
		if v := s.Exp(100); v < 0 {
			t.Fatalf("Exp produced negative %g", v)
		}
	}
}

func TestNormMoments(t *testing.T) {
	s := New(9)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.Norm(10, 3)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("Norm mean = %g, want ≈ 10", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.05 {
		t.Fatalf("Norm stddev = %g, want ≈ 3", math.Sqrt(variance))
	}
}

func TestIntnRange(t *testing.T) {
	s := New(10)
	seen := make([]bool, 10)
	for i := 0; i < 1000; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Errorf("Intn(10) never produced %d in 1000 draws", v)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestInt63nRange(t *testing.T) {
	s := New(11)
	f := func(n int64) bool {
		if n <= 0 {
			return true
		}
		v := s.Int63n(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(12)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make(map[int]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}
