package runner

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// A panicking job must surface as a *PanicError at its index — on both
// the sequential and pooled paths — never as a crashed test process.
func TestMapRecoversPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		before := panicsRecovered.Value()
		_, err := Map(workers, 8, func(i int) (int, error) {
			if i == 3 {
				panic("poisoned job")
			}
			return i, nil
		})
		if err == nil {
			t.Fatalf("workers=%d: no error from a panicking job", workers)
		}
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: error %T is not a *PanicError: %v", workers, err, err)
		}
		if pe.Index != 3 {
			t.Errorf("workers=%d: PanicError.Index = %d, want 3", workers, pe.Index)
		}
		if pe.Value != "poisoned job" {
			t.Errorf("workers=%d: PanicError.Value = %v", workers, pe.Value)
		}
		if !strings.Contains(err.Error(), "poisoned job") || len(pe.Stack) == 0 {
			t.Errorf("workers=%d: error lacks panic message or stack: %v", workers, err)
		}
		if got := panicsRecovered.Value(); got <= before {
			t.Errorf("workers=%d: panics counter did not increment (%d -> %d)", workers, before, got)
		}
	}
}

// The lowest-indexed panic wins when every job panics, matching the
// error contract for plain failures.
func TestMapPanicLowestIndexWins(t *testing.T) {
	_, err := Map(4, 16, func(i int) (int, error) {
		panic(i)
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T is not a *PanicError", err)
	}
	if pe.Index != 0 {
		t.Fatalf("PanicError.Index = %d, want 0", pe.Index)
	}
}

// A panic cancels the batch: with a single worker in the pool path the
// jobs after the panicking one are never claimed.
func TestMapPanicCancelsBatch(t *testing.T) {
	var ran atomic.Int64
	// workers=2 with n=64: job 0 panics immediately; the batch cancel
	// keeps the claim count far below n.
	_, err := MapCtx(context.Background(), 2, 64, func(i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			panic("early poison")
		}
		time.Sleep(time.Millisecond)
		return i, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T is not a *PanicError", err)
	}
	if got := ran.Load(); got >= 64 {
		t.Fatalf("batch ran all %d jobs despite the panic", got)
	}
}

// A plain error does not cancel the batch (existing contract: jobs
// after a failing index may still run) and stays a plain error.
func TestMapPlainErrorIsNotPanicError(t *testing.T) {
	sentinel := errors.New("boom")
	_, err := Map(4, 8, func(i int) (int, error) {
		if i == 2 {
			return 0, sentinel
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		t.Fatal("plain error converted to PanicError")
	}
}

// ForEachCtx shares the recovery path.
func TestForEachRecoversPanic(t *testing.T) {
	err := ForEach(2, 4, func(i int) error {
		if i == 1 {
			panic("side-effect poison")
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T is not a *PanicError: %v", err, err)
	}
	if pe.Index != 1 {
		t.Fatalf("PanicError.Index = %d, want 1", pe.Index)
	}
}
