// Package runner is the deterministic parallel experiment engine: it
// fans independent simulation jobs across a pool of goroutines and
// merges their results in index order, so a parallel run's output is
// byte-identical to a sequential run's.
//
// Determinism is a hard invariant of this repository (DESIGN.md §5).
// The engine preserves it by construction rather than by luck:
//
//   - every job receives only its index and must derive all randomness
//     from per-job seeded RNG streams (rng.NewStream(seed, index)), so
//     job outputs are independent of scheduling order;
//   - results land in a pre-sized slice at the job's own index — no
//     channel ordering, no append races, no merge nondeterminism;
//   - on failure the error of the lowest-indexed failing job is
//     returned, which is exactly the error a sequential loop would have
//     hit first.
//
// Workers selection: an explicit positive count wins, then the
// REPRO_WORKERS environment variable, then runtime.GOMAXPROCS(0).
// Workers == 1 runs the plain sequential loop on the calling goroutine
// (no pool, no synchronization), which keeps the old single-threaded
// path available and trivially race-free.
//
// MapCtx/ForEachCtx are the cancellable variants used by long-running
// callers (the internal/serve job daemon): cancellation is observed
// between jobs — a job that already started runs to completion, jobs
// not yet claimed are skipped — so a cancelled call returns promptly
// without tearing down a simulation mid-flight.
package runner

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
)

// EnvWorkers is the environment knob consulted when no explicit worker
// count is given.
const EnvWorkers = "REPRO_WORKERS"

// warnOut receives the one-time invalid-REPRO_WORKERS warning; a
// variable so tests can capture it.
var warnOut io.Writer = os.Stderr

// warnedInvalid latches the one-time warning (atomic so concurrent
// Default calls race-free agree on who warns).
var warnedInvalid atomic.Bool

// parseWorkers reports whether v is a valid worker count: a parseable
// integer (ok distinguishes syntax from range errors only in the
// warning text) that is strictly positive.
func parseWorkers(v string) (n int, ok bool) {
	n, err := strconv.Atoi(v)
	if err != nil || n <= 0 {
		return 0, false
	}
	return n, true
}

// Default returns the worker count used when a caller passes 0: the
// REPRO_WORKERS environment variable if set to a positive integer,
// otherwise runtime.GOMAXPROCS(0). An invalid value (unparseable, zero
// or negative) is ignored with a one-time warning on stderr rather
// than silently.
func Default() int {
	if v := os.Getenv(EnvWorkers); v != "" {
		if n, ok := parseWorkers(v); ok {
			return n
		}
		if warnedInvalid.CompareAndSwap(false, true) {
			fmt.Fprintf(warnOut, "runner: ignoring invalid %s=%q (want a positive integer); using GOMAXPROCS=%d\n",
				EnvWorkers, v, runtime.GOMAXPROCS(0))
		}
	}
	return runtime.GOMAXPROCS(0)
}

// Resolve maps a caller-supplied worker count to an effective one:
// positive counts pass through, anything else selects Default().
func Resolve(workers int) int {
	if workers > 0 {
		return workers
	}
	return Default()
}

// PanicError is the error a job that panicked resolves to: the engine
// recovers worker panics so one poisoned job cannot take down the
// whole process (the serve daemon runs campaigns on this path). The
// batch still fails — a panic is a bug, not a result — but it fails
// like an error: reported at the job's index with the stack preserved.
type PanicError struct {
	Index int
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: job %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// panicsRecovered counts recovered worker panics process-wide.
var panicsRecovered = metrics.Default().Counter("repro_runner_panics_recovered_total")

// call invokes fn(local, i), converting a panic into a *PanicError.
func call[L, T any](fn func(local L, i int) (T, error), local L, i int) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			panicsRecovered.Inc()
			var zero T
			v, err = zero, &PanicError{Index: i, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(local, i)
}

// Map runs fn(0..n-1) across the pool and returns the results in index
// order. fn must be self-contained: it may only read shared data and
// must derive any randomness from its index (see the package comment).
// The first error by index is returned, matching a sequential loop;
// with workers != 1, jobs after a failing index may still have run.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	return MapCtx(context.Background(), workers, n, fn)
}

// MapCtx is Map with cooperative cancellation: once ctx is done no new
// job index is claimed (jobs already started run to completion) and
// the call returns a non-nil error — the lowest-indexed job error if
// any completed job failed, otherwise ctx.Err(). A cancelled call
// never returns results: partial output would break the byte-identity
// contract.
//
// A job that panics does not propagate the panic to the caller's
// goroutine (or, worse, kill the process from a pool goroutine): the
// panic is recovered into a *PanicError at that job's index, counted
// in repro_runner_panics_recovered_total, and cancels the rest of the
// batch.
func MapCtx[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	return MapCtxPool(ctx, workers, n,
		func() struct{} { return struct{}{} },
		func(_ struct{}, i int) (T, error) { return fn(i) })
}

// MapCtxPool is MapCtx with per-worker local state: newLocal builds one
// L per pool goroutine (exactly one on the sequential workers == 1
// path), and every job a worker claims receives that worker's local.
// This is the arena seam of the zero-alloc engine core (DESIGN.md §11):
// a worker's simulation arena is reused across all jobs it claims, with
// no synchronization, because a local is only ever touched by the
// goroutine that owns it.
//
// Determinism contract: fn's result must not depend on the local's
// history. Locals may carry reusable *capacity* (buffers, freelists,
// arenas with a reset-on-entry contract) but never carry *results* or
// influence control flow, since which jobs share a local depends on
// scheduling. The byte-identity suite cross-checks this by comparing
// pooled parallel output against the sequential path.
func MapCtxPool[L, T any](ctx context.Context, workers, n int, newLocal func() L, fn func(local L, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return out, nil
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		local := newLocal()
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := call(fn, local, i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	// A recovered panic cancels the batch (via batchCtx) so sibling
	// workers stop claiming new jobs: the batch is doomed anyway, and
	// a poisoned input that panics every job should fail fast, not n
	// times. The outer ctx stays untouched — at the end only *it*
	// decides whether the call reads as cancelled.
	batchCtx, batchCancel := context.WithCancel(ctx)
	defer batchCancel()
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			local := newLocal()
			for {
				if batchCtx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = call(fn, local, i)
				if errs[i] != nil {
					var pe *PanicError
					if errors.As(errs[i], &pe) {
						batchCancel()
					}
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ForEach is Map for jobs that only produce side effects into caller-
// owned, per-index storage.
func ForEach(workers, n int, fn func(i int) error) error {
	return ForEachCtx(context.Background(), workers, n, fn)
}

// ForEachCtx is ForEach with the MapCtx cancellation contract.
func ForEachCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	_, err := MapCtx(ctx, workers, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}
