// Package runner is the deterministic parallel experiment engine: it
// fans independent simulation jobs across a pool of goroutines and
// merges their results in index order, so a parallel run's output is
// byte-identical to a sequential run's.
//
// Determinism is a hard invariant of this repository (DESIGN.md §5).
// The engine preserves it by construction rather than by luck:
//
//   - every job receives only its index and must derive all randomness
//     from per-job seeded RNG streams (rng.NewStream(seed, index)), so
//     job outputs are independent of scheduling order;
//   - results land in a pre-sized slice at the job's own index — no
//     channel ordering, no append races, no merge nondeterminism;
//   - on failure the error of the lowest-indexed failing job is
//     returned, which is exactly the error a sequential loop would have
//     hit first.
//
// Workers selection: an explicit positive count wins, then the
// REPRO_WORKERS environment variable, then runtime.GOMAXPROCS(0).
// Workers == 1 runs the plain sequential loop on the calling goroutine
// (no pool, no synchronization), which keeps the old single-threaded
// path available and trivially race-free.
package runner

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// EnvWorkers is the environment knob consulted when no explicit worker
// count is given.
const EnvWorkers = "REPRO_WORKERS"

// Default returns the worker count used when a caller passes 0: the
// REPRO_WORKERS environment variable if set to a positive integer,
// otherwise runtime.GOMAXPROCS(0).
func Default() int {
	if v := os.Getenv(EnvWorkers); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// Resolve maps a caller-supplied worker count to an effective one:
// positive counts pass through, anything else selects Default().
func Resolve(workers int) int {
	if workers > 0 {
		return workers
	}
	return Default()
}

// Map runs fn(0..n-1) across the pool and returns the results in index
// order. fn must be self-contained: it may only read shared data and
// must derive any randomness from its index (see the package comment).
// The first error by index is returned, matching a sequential loop;
// with workers != 1, jobs after a failing index may still have run.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ForEach is Map for jobs that only produce side effects into caller-
// owned, per-index storage.
func ForEach(workers, n int, fn func(i int) error) error {
	_, err := Map(workers, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}
