package runner

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/rng"
)

func TestMapIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		got, err := Map(workers, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapParallelEqualsSequential(t *testing.T) {
	// Jobs draw from per-index seeded streams — the pattern every
	// experiment caller must follow. The parallel result must be
	// byte-identical to the sequential one.
	job := func(i int) ([]uint64, error) {
		src := rng.NewStream(42, uint64(i)+1)
		out := make([]uint64, 50)
		for j := range out {
			out[j] = src.Uint64()
		}
		return out, nil
	}
	seq, err := Map(1, 20, job)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Map(runtime.GOMAXPROCS(0)+3, 20, job)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		for j := range seq[i] {
			if seq[i][j] != par[i][j] {
				t.Fatalf("job %d word %d: sequential %d != parallel %d", i, j, seq[i][j], par[i][j])
			}
		}
	}
}

func TestMapLowestIndexError(t *testing.T) {
	errAt := func(bad ...int) func(int) (int, error) {
		set := map[int]bool{}
		for _, b := range bad {
			set[b] = true
		}
		return func(i int) (int, error) {
			if set[i] {
				return 0, fmt.Errorf("job %d failed", i)
			}
			return i, nil
		}
	}
	for _, workers := range []int{1, 4} {
		_, err := Map(workers, 10, errAt(7, 3, 9))
		if err == nil || err.Error() != "job 3 failed" {
			t.Fatalf("workers=%d: err = %v, want lowest-index job 3", workers, err)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(4, 0, func(i int) (int, error) { return 0, errors.New("never called") })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty map: %v %v", out, err)
	}
}

func TestMapCtxEmptyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := MapCtx(ctx, 4, 0, func(i int) (int, error) { return 0, errors.New("never called") })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out != nil {
		t.Fatalf("out = %v, want nil: a cancelled call must not return results", out)
	}
}

func TestForEach(t *testing.T) {
	out := make([]int, 64)
	if err := ForEach(8, len(out), func(i int) error {
		out[i] = i + 1
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestResolve(t *testing.T) {
	if got := Resolve(3); got != 3 {
		t.Fatalf("Resolve(3) = %d", got)
	}
	t.Setenv(EnvWorkers, "5")
	if got := Resolve(0); got != 5 {
		t.Fatalf("Resolve(0) with %s=5 = %d", EnvWorkers, got)
	}
	t.Setenv(EnvWorkers, "not-a-number")
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(0) with junk env = %d, want GOMAXPROCS", got)
	}
	t.Setenv(EnvWorkers, "-2")
	if got := Resolve(-1); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(-1) with negative env = %d, want GOMAXPROCS", got)
	}
}

func TestParseWorkers(t *testing.T) {
	cases := []struct {
		in string
		n  int
		ok bool
	}{
		{"4", 4, true},
		{"1", 1, true},
		{"four", 0, false}, // unparseable
		{"-2", 0, false},   // parseable but non-positive
		{"0", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		n, ok := parseWorkers(c.in)
		if n != c.n || ok != c.ok {
			t.Errorf("parseWorkers(%q) = (%d, %v), want (%d, %v)", c.in, n, ok, c.n, c.ok)
		}
	}
}

func TestDefaultWarnsOnceOnInvalidEnv(t *testing.T) {
	var buf bytes.Buffer
	prevOut := warnOut
	prevWarned := warnedInvalid.Load()
	warnOut = &buf
	warnedInvalid.Store(false)
	defer func() {
		warnOut = prevOut
		warnedInvalid.Store(prevWarned)
	}()

	t.Setenv(EnvWorkers, "four")
	if got := Default(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Default() with %s=four = %d, want GOMAXPROCS", EnvWorkers, got)
	}
	t.Setenv(EnvWorkers, "-2")
	if got := Default(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Default() with %s=-2 = %d, want GOMAXPROCS", EnvWorkers, got)
	}
	out := buf.String()
	if !strings.Contains(out, `invalid REPRO_WORKERS="four"`) {
		t.Fatalf("warning missing or wrong: %q", out)
	}
	if n := strings.Count(out, "runner: ignoring"); n != 1 {
		t.Fatalf("warning emitted %d times, want exactly once:\n%s", n, out)
	}
	// A valid value keeps working and stays silent.
	t.Setenv(EnvWorkers, "6")
	if got := Default(); got != 6 {
		t.Fatalf("Default() with %s=6 = %d", EnvWorkers, got)
	}
}

func TestMapCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		out, err := MapCtx(ctx, workers, 50, func(i int) (int, error) {
			ran.Add(1)
			return i, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if out != nil {
			t.Fatalf("workers=%d: cancelled call returned results", workers)
		}
		if got := ran.Load(); got != 0 {
			t.Fatalf("workers=%d: %d jobs ran under a pre-cancelled ctx", workers, got)
		}
	}
}

func TestMapCtxCancelMidway(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	_, err := MapCtx(ctx, 1, 100, func(i int) (int, error) {
		if ran.Add(1) == 10 {
			cancel()
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got != 10 {
		t.Fatalf("ran %d jobs, want exactly 10 (cancel observed before job 11)", got)
	}
}

func TestMapCtxJobErrorBeatsCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := MapCtx(ctx, 4, 8, func(i int) (int, error) {
		if i == 2 {
			cancel()
			return 0, fmt.Errorf("job %d failed", i)
		}
		return i, nil
	})
	if err == nil || err.Error() != "job 2 failed" {
		t.Fatalf("err = %v, want the job error", err)
	}
}

func TestForEachCtx(t *testing.T) {
	out := make([]int, 16)
	if err := ForEachCtx(context.Background(), 4, len(out), func(i int) error {
		out[i] = i + 1
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}
